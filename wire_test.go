package misam

import (
	"context"
	"errors"
	"testing"
)

// encodePair renders a test pair as a binary request body (two
// concatenated blobs) and re-parses both views.
func encodePair(t testing.TB, a, b *Matrix) (WireView, WireView) {
	t.Helper()
	buf := AppendMatrixBinary(nil, a)
	buf = AppendMatrixBinary(buf, b)
	va, rest, err := ParseWireMatrix(buf)
	if err != nil {
		t.Fatalf("parse A: %v", err)
	}
	vb, rest, err := ParseWireMatrix(rest)
	if err != nil {
		t.Fatalf("parse B: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after two blobs", len(rest))
	}
	return va, vb
}

// TestAnalyzeFastWireMatchesWorkloadPath: binary ingestion must be a pure
// transport change — two identically trained frameworks, one fed decoded
// workloads (AnalyzeFastOn) and one fed wire views (AnalyzeFastWire),
// produce bit-identical deterministic report fields, identical tier
// decisions, and identical baseline comparisons, across cache misses,
// hits and repeats.
func TestAnalyzeFastWireMatchesWorkloadPath(t *testing.T) {
	opts := TrainOptions{CorpusSize: 90, LatencyCorpusSize: 110, MaxDim: 384, Seed: 5}
	byStruct, err := Train(opts)
	if err != nil {
		t.Fatal(err)
	}
	byWire, err := Train(opts) // deterministic: identical models
	if err != nil {
		t.Fatal(err)
	}
	cfg := FastPathConfig{Confidence: 0.5, VerifySample: 0}
	byStruct.WithCache(8 << 20).WithFastPath(cfg)
	byWire.WithCache(8 << 20).WithFastPath(cfg)
	defer byStruct.Close()
	defer byWire.Close()

	ctx := context.Background()
	var scratch WireScratch
	for i, p := range fastTestPairs() {
		want, err := byStruct.AnalyzeFast(ctx, p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		wantBase := CompareBaselines(p[0], p[1])

		va, vb := encodePair(t, p[0], p[1])
		got, gotBase, err := byWire.AnalyzeFastWire(ctx, byWire.DefaultDevice(), va, vb, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		want.PreprocessSeconds, got.PreprocessSeconds = 0, 0
		want.InferenceSeconds, got.InferenceSeconds = 0, 0
		want.TotalSeconds, got.TotalSeconds = 0, 0
		if want != got {
			t.Fatalf("pair %d: wire and workload reports diverge:\nworkload: %+v\nwire:     %+v", i, want, got)
		}
		if gotBase != wantBase {
			t.Fatalf("pair %d: baselines diverge:\nworkload: %+v\nwire:     %+v", i, wantBase, gotBase)
		}
	}

	// Same requests, same gate, same models — the tier split and the cache
	// traffic must agree exactly.
	ss, _ := byStruct.FastPathStats()
	ws, _ := byWire.FastPathStats()
	if ss.Served != ws.Served || ss.Fast != ws.Fast || ss.Slow != ws.Slow {
		t.Fatalf("tier counters diverge: workload %+v, wire %+v", ss, ws)
	}
	sc, _ := byStruct.CacheStats()
	wc, _ := byWire.CacheStats()
	if sc.FastMisses != wc.FastMisses || sc.Entries != wc.Entries {
		t.Fatalf("cache behaviour diverged: workload %+v, wire %+v", sc, wc)
	}
}

// TestAnalyzeFastWireWarmHitSkipsDecode pins the zero-copy payoff: a warm
// fast hit is answered from the wire fingerprint alone. The probe's
// scratch stays untouched — nothing was decoded — and the baseline
// comparison still arrives, priced from the cached stats.
func TestAnalyzeFastWireWarmHitSkipsDecode(t *testing.T) {
	fw, err := Train(TrainOptions{CorpusSize: 90, LatencyCorpusSize: 110, MaxDim: 384, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fw.WithCache(8 << 20).WithFastPath(FastPathConfig{Confidence: 0, VerifySample: 0})
	defer fw.Close()

	a := RandUniform(3, 300, 300, 0.02)
	b := RandUniform(4, 300, 200, 0.03)
	va, vb := encodePair(t, a, b)
	ctx := context.Background()
	dev := fw.DefaultDevice()

	var warmup WireScratch
	first, firstBase, err := fw.AnalyzeFastWire(ctx, dev, va, vb, &warmup)
	if err != nil {
		t.Fatal(err)
	}
	if first.Path != PathFast {
		t.Fatalf("warmup path %q, want %q (gate at 0 always passes)", first.Path, PathFast)
	}
	if warmup.a.Rows != a.Rows || warmup.b.Rows != b.Rows {
		t.Fatal("warmup miss did not decode into the scratch")
	}

	var probe WireScratch
	second, secondBase, err := fw.AnalyzeFastWire(ctx, dev, va, vb, &probe)
	if err != nil {
		t.Fatal(err)
	}
	if second.Path != PathFast {
		t.Fatalf("warm path %q, want %q", second.Path, PathFast)
	}
	if probe.a.Rows != 0 || probe.b.Rows != 0 || probe.a.RowPtr != nil {
		t.Fatalf("warm hit decoded the operands: scratch %dx%d", probe.a.Rows, probe.a.Cols)
	}
	if secondBase != firstBase {
		t.Fatalf("warm baselines diverge: first %+v, second %+v", firstBase, secondBase)
	}
	if firstBase.CPUSeconds <= 0 || firstBase.GPUSeconds <= 0 {
		t.Fatalf("baseline comparison is empty: %+v", firstBase)
	}
	cs, _ := fw.CacheStats()
	if cs.FastHits < 1 {
		t.Fatalf("no fast hit recorded: %+v", cs)
	}
}

// TestAnalyzeFastWireDimensionMismatch: incompatible operands are an
// ingest error (ErrWire family → client error at the server boundary),
// detected before any decode.
func TestAnalyzeFastWireDimensionMismatch(t *testing.T) {
	fw, err := Train(TrainOptions{CorpusSize: 60, LatencyCorpusSize: 80, MaxDim: 256, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := RandUniform(1, 50, 60, 0.1)
	b := RandUniform(2, 70, 40, 0.1) // 60 != 70
	va, vb := encodePair(t, a, b)
	_, _, err = fw.AnalyzeFastWire(context.Background(), fw.DefaultDevice(), va, vb, nil)
	if !errors.Is(err, ErrWire) {
		t.Fatalf("err = %v, want ErrWire", err)
	}
}

// TestWireKeyMatchesAnalysisKey: the wire-fingerprint key must be the
// exact key the decoded pair produces — in both feature flavours — or
// binary and JSON traffic would split the cache.
func TestWireKeyMatchesAnalysisKey(t *testing.T) {
	fw, err := Train(TrainOptions{CorpusSize: 60, LatencyCorpusSize: 80, MaxDim: 256, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := RandPowerLaw(7, 128, 128, 900, 1.5)
	b := RandUniform(8, 128, 96, 0.05)
	va, vb := encodePair(t, a, b)
	for _, pruned := range []bool{false, true} {
		fw.Options.TopFeaturesOnly = pruned
		if got, want := fw.wireKey(va, vb), fw.analysisKey(a, b); got != want {
			t.Fatalf("pruned=%v: wireKey %+v != analysisKey %+v", pruned, got, want)
		}
	}
}
