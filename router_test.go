package misam

import (
	"testing"
)

func TestDeviceString(t *testing.T) {
	if DeviceCPU.String() != "CPU" || DeviceGPU.String() != "GPU" || DeviceMisam.String() != "Misam" {
		t.Error("device names wrong")
	}
	if Device(9).String() != "Device(9)" {
		t.Error("invalid device formatting")
	}
}

func TestDeviceLatenciesPositive(t *testing.T) {
	a := RandUniform(1, 400, 400, 0.02)
	b := RandDense(2, 400, 64)
	lat, err := DeviceLatencies(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for d := DeviceCPU; d < NumDevices; d++ {
		if lat[d] <= 0 {
			t.Errorf("%v latency %v", d, lat[d])
		}
	}
}

func TestTrainRouterRequiresCorpus(t *testing.T) {
	if _, err := TrainRouter(&Framework{}); err == nil {
		t.Fatal("router trained without a corpus")
	}
}

func TestRouterRoutesSensibly(t *testing.T) {
	fw := trainTest(t)
	router, err := TrainRouter(fw)
	if err != nil {
		t.Fatal(err)
	}

	// Accuracy against the device oracle on the training corpus itself
	// should be high.
	hits := 0
	for i := range fw.Corpus.Samples {
		s := &fw.Corpus.Samples[i]
		if router.Route(s.Features) == deviceLabel(s) {
			hits++
		}
	}
	acc := float64(hits) / float64(len(fw.Corpus.Samples))
	if acc < 0.85 {
		t.Errorf("router training accuracy %.2f, want >= 0.85", acc)
	}

	// A highly sparse workload should not be routed to the CPU: the §6.3
	// premise is that the FPGA (or occasionally GPU) dominates there.
	a := RandUniform(3, 3000, 3000, 0.001)
	bm := RandUniform(4, 3000, 3000, 0.001)
	if got := router.Route(ExtractFeatures(a, bm)); got == DeviceCPU {
		lat, _ := DeviceLatencies(a, bm)
		if lat[DeviceCPU] > lat[DeviceMisam] {
			t.Errorf("router chose CPU for an HS×HS workload where Misam is faster (%v)", lat)
		}
	}
}

func TestMultiObjectiveTraining(t *testing.T) {
	base := trainTest(t)
	// Re-train on the same corpus with an energy-weighted objective.
	energyFW, err := TrainOnCorpus(base.Corpus, nil, TrainOptions{
		CorpusSize: len(base.Corpus.Samples),
		MaxDim:     512,
		Seed:       3,
		// Pure-energy objective.
		LatencyWeight: 0.0001, EnergyWeight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Labels must differ somewhere: lower-power designs win energy on
	// workloads where they narrowly lose latency.
	latLabels := base.Corpus.Labels()
	enLabels := base.Corpus.LabelsFor(0.0001, 1)
	diff := 0
	for i := range latLabels {
		if latLabels[i] != enLabels[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("energy objective never changed the optimal design; objective knob is inert")
	}
	t.Logf("objective changed %d/%d labels", diff, len(latLabels))
	_ = energyFW
}

func TestBestForWeighting(t *testing.T) {
	fw := trainTest(t)
	for i := range fw.Corpus.Samples {
		s := &fw.Corpus.Samples[i]
		// Pure latency weighting must agree with the stored Best label.
		if got := s.BestFor(1, 0); got != s.Best {
			t.Fatalf("sample %d: BestFor(1,0)=%v but Best=%v", i, got, s.Best)
		}
		// The energy-optimal design must actually have minimal energy.
		en := s.BestFor(0, 1)
		for _, l := range s.EnergyJ {
			if l < s.EnergyJ[en]-1e-15 {
				t.Fatalf("sample %d: BestFor(0,1) not energy-minimal", i)
			}
		}
	}
}
