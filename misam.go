// Package misam is a reproduction of "Misam: Machine Learning Assisted
// Dataflow Selection in Accelerators for Sparse Matrix Multiplication"
// (MICRO 2025). It provides the full framework the paper describes:
//
//   - a lightweight decision-tree selector that predicts the best of four
//     FPGA dataflow designs from cheap matrix features (§3.1),
//   - a reconfiguration engine with a latency-predictor model and a
//     cost-benefit threshold that decides when switching bitstreams pays
//     off (§3.3),
//   - a cycle-level simulator of the four designs standing in for the
//     Alveo U55C prototype (§3.2, §4), and
//   - CPU, GPU and Trapezoid baselines, workload generators, and a
//     benchmark harness regenerating every table and figure of the
//     paper's evaluation.
//
// Quick start:
//
//	fw, err := misam.Train(misam.DefaultTrainOptions())
//	a := misam.RandPowerLaw(1, 10000, 10000, 60000, 1.9)
//	b := misam.RandDense(2, 10000, 512)
//	c, report, err := fw.Multiply(a, b)
//
// The returned Report carries the selected design, the measured
// preprocessing/inference overheads, the simulated hardware latency and
// the energy estimate.
package misam

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"misam/internal/baseline"
	"misam/internal/dataset"
	"misam/internal/energy"
	"misam/internal/features"
	"misam/internal/fleet"
	"misam/internal/memo"
	"misam/internal/mltree"
	"misam/internal/online"
	"misam/internal/reconfig"
	"misam/internal/registry"
	"misam/internal/sim"
	"misam/internal/sparse"
	"misam/internal/spgemm"
)

// Design identifies one of the four Misam hardware designs (Table 1).
type Design = sim.DesignID

// The four designs of §3.2.
const (
	Design1 = sim.Design1 // Sextans-style SpMM, 16 PEGs, column traversal
	Design2 = sim.Design2 // wider channels and 24 PEGs for large denser inputs
	Design3 = sim.Design3 // Design 2's bitstream with row-wise scheduling
	Design4 = sim.Design4 // SpGEMM with compressed sparse B
)

// NumDesigns is the design count.
const NumDesigns = int(sim.NumDesigns)

// FeatureVector is the §3.1 feature set extracted from a matrix pair.
type FeatureVector = features.Vector

// TrainOptions configures Train.
type TrainOptions struct {
	// CorpusSize is the number of labelled matrix pairs for the selector
	// (the paper uses 6,219; smaller corpora train in seconds).
	CorpusSize int
	// LatencyCorpusSize is the number of pairs for the latency predictor
	// (the paper uses 19,000 including the selector corpus). Each pair
	// yields one record per design.
	LatencyCorpusSize int
	// MaxDim bounds generated matrix dimensions.
	MaxDim int
	// Seed drives corpus generation.
	Seed int64
	// MaxDepth bounds both trees.
	MaxDepth int
	// TopFeaturesOnly restricts the selector to the four Figure 4
	// features, reproducing the paper's pruned 6 KB deployment.
	TopFeaturesOnly bool
	// Threshold is the reconfiguration engine knob (§3.3, default 0.20).
	Threshold float64
	// LatencyWeight and EnergyWeight set the selection objective (§3.1:
	// "a user may choose to optimize exclusively for performance,
	// prioritize energy efficiency, or apply a weighted combination").
	// Both zero means pure latency.
	LatencyWeight float64
	EnergyWeight  float64
}

// DefaultTrainOptions returns a configuration that trains in a few
// seconds and reaches the paper's accuracy regime.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{
		CorpusSize:        400,
		LatencyCorpusSize: 600,
		MaxDim:            768,
		Seed:              1,
		MaxDepth:          10,
		Threshold:         0.20,
	}
}

func (o TrainOptions) withDefaults() TrainOptions {
	d := DefaultTrainOptions()
	if o.CorpusSize <= 0 {
		o.CorpusSize = d.CorpusSize
	}
	if o.LatencyCorpusSize <= 0 {
		o.LatencyCorpusSize = o.CorpusSize
	}
	if o.MaxDim <= 0 {
		o.MaxDim = d.MaxDim
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = d.MaxDepth
	}
	if o.Threshold <= 0 {
		o.Threshold = d.Threshold
	}
	return o
}

// Selector is the trained design classifier. Inference uses the compiled
// (flattened) tree, mirroring the paper's hand-unrolled decision logic.
type Selector struct {
	Tree     *mltree.Classifier
	compiled *mltree.Compiled
}

// Select predicts the best design for a feature vector.
func (s *Selector) Select(v FeatureVector) Design {
	return Design(s.compiled.PredictClass(v.Slice()))
}

// SelectWithConfidence also reports the leaf's class probability for the
// chosen design — how much of the training mass at that decision region
// agreed. Low confidence flags inputs near a regime boundary, where the
// engine's latency-predictor validation (§5.1: "an additional layer of
// validation") matters most.
func (s *Selector) SelectWithConfidence(v FeatureVector) (Design, float64) {
	class, conf, _ := s.compiled.PredictConfident(v.Slice())
	return Design(class), conf
}

// FeatureImportance returns the normalized gini importance per feature
// (Figure 4), indexed like features.Names().
func (s *Selector) FeatureImportance() []float64 {
	return append([]float64(nil), s.Tree.Importance...)
}

// SizeBytes reports the serialized model size (the paper's 6 KB claim).
func (s *Selector) SizeBytes() (int, error) { return mltree.SizeBytes(s.Tree) }

var _ reconfig.Selector = (*Selector)(nil)

// Framework bundles the trained selector, the reconfiguration pricing
// engine and the training corpus (kept for evaluation drivers). Model
// access is registry-backed: Train/Load publish the trained pair as
// version 1 of a versioned registry, and every Analyze/AnalyzeWith/Stream
// call reads the registry's current snapshot exactly once, so a request
// always sees one complete {selector, latency predictor} pair even while
// the online retrainer hot-swaps a promotion in. The Selector and Engine
// fields remain the *initial* (version 1) models for evaluation drivers
// and stay immutable; serving paths should not read them directly.
//
// Frameworks must be built by Train, TrainOnCorpus or Load. The mutable
// part of the system — which bitstream a given accelerator has loaded —
// lives in Accelerator devices (see NewDevice/NewFleet). For the
// single-accelerator convenience API (Analyze, Stream) the framework
// carries one default device, so existing single-device behavior is
// unchanged.
type Framework struct {
	Selector *Selector
	Engine   *reconfig.Engine
	Corpus   *dataset.Corpus
	Options  TrainOptions

	device *reconfig.Device
	// cache, when enabled via WithCache, memoizes the design-independent
	// analysis artifacts (features, all-design simulations, baseline
	// stats) by operand content. It never holds reconfiguration
	// decisions — those depend on mutable device state and are re-priced
	// per request.
	cache *memo.Cache
	// tileCache, when enabled via WithTileCache, shares per-tile schedule
	// memoization across every workload the framework simulates — cold
	// analyses, pruned verifier audits, labelling — so a re-simulation of
	// a just-served pair reuses its schedules (see sim.TileCache).
	tileCache *sim.TileCache
	// registry is the versioned model store behind snapshot(); always
	// non-nil on a constructed framework.
	registry *registry.Registry
	// traces, when enabled via WithTraceCapture, records served analyses
	// for the online adaptation loop.
	traces *online.Collector
	// fastpath, when enabled via WithFastPath, holds the confidence-gated
	// two-tier serving state (see fastpath.go).
	fastpath *fastPath
}

// Registry exposes the versioned model registry: the current snapshot
// serving requests, the publish history for pinned lookup, and rollback.
func (f *Framework) Registry() *registry.Registry { return f.registry }

// snapshot grabs the model pair serving requests right now. Callers use
// the returned snapshot for their whole request — selector proposal,
// pricing, prediction — so a concurrent promotion can never mix two
// model generations inside one request.
func (f *Framework) snapshot() *registry.Snapshot { return f.registry.Current() }

// WithTraceCapture enables the online trace collector: every analysis
// that computes all four design simulations (the cached path, and the
// uncached path once capture is on) records a training-ready trace —
// feature vector, live proposal, argmin design, per-design outcomes.
// capacity bounds the buffer; sampleEvery admits one in N observations
// (<=1 admits all). Returns f for chaining; enable once at setup.
func (f *Framework) WithTraceCapture(capacity, sampleEvery int) *Framework {
	f.traces = online.NewCollector(capacity, sampleEvery)
	return f
}

// Traces exposes the trace collector (nil unless WithTraceCapture was
// called).
func (f *Framework) Traces() *online.Collector { return f.traces }

// OnlineBaseline builds the drift-detection reference from the training
// corpus: per-feature quantile distributions plus the current model's
// accuracy on its own training set. It fails when the corpus is absent
// (file-loaded frameworks) — the online manager then self-calibrates
// from the first window of served traffic instead.
func (f *Framework) OnlineBaseline() (*online.Baseline, error) {
	if f.Corpus == nil || len(f.Corpus.Samples) == 0 {
		return nil, fmt.Errorf("misam: no training corpus in memory (model loaded from file?)")
	}
	snap := f.snapshot()
	x := f.Corpus.X()
	labels := f.Corpus.Labels()
	preds := make([]int, len(f.Corpus.Samples))
	for i := range f.Corpus.Samples {
		preds[i] = int(snap.Select(f.Corpus.Samples[i].Features))
	}
	return online.NewBaseline(x, labels, preds)
}

// observeTrace records one served analysis into the collector, if
// enabled.
func (f *Framework) observeTrace(an *Analysis, proposed Design, version uint64) {
	if f.traces == nil {
		return
	}
	t := online.Trace{
		Features:     an.Features,
		Predicted:    proposed,
		Best:         sim.BestDesign(an.Results),
		ModelVersion: version,
	}
	for _, id := range sim.AllDesigns {
		t.Seconds[id] = an.Results[id].Seconds
		t.Cycles[id] = an.Results[id].Cycles
	}
	f.traces.Observe(t)
}

// Analysis bundles the design-independent artifacts of one operand pair:
// the extracted feature vector, the cycle simulations of all four
// designs, and the baseline cost-model statistics. See internal/memo.
type Analysis = memo.Analysis

// CacheStats are the analysis cache's counters (see WithCache).
type CacheStats = memo.Stats

// WithCache enables the content-addressed analysis cache with roughly
// budgetBytes of resident entries, returning f for chaining. Enable it
// once at setup, before serving traffic. With the cache on, Analyze and
// Stream share artifacts across requests whose operands are
// byte-identical (keyed by sparse.CSR.Fingerprint), and concurrent
// requests for the same pair coalesce onto one simulation. Per-request
// reconfiguration decisions are never cached.
func (f *Framework) WithCache(budgetBytes int64) *Framework {
	f.cache = memo.New(budgetBytes)
	return f
}

// CacheStats snapshots the analysis cache counters; ok is false when no
// cache is enabled.
func (f *Framework) CacheStats() (st CacheStats, ok bool) {
	if f.cache == nil {
		return CacheStats{}, false
	}
	return f.cache.Stats(), true
}

// TileCacheStats are the shared tile-schedule cache's counters (see
// WithTileCache).
type TileCacheStats = sim.TileCacheStats

// WithTileCache enables the framework-wide tile-schedule cache with
// roughly budgetBytes of memoized (busy, bubbles, makespan) triples,
// returning f for chaining. Every workload the framework simulates —
// cold analyses, the pruned verifier's re-simulations, training labels —
// then shares one schedule pool keyed by tile content and design
// scheduling parameters, instead of each workload memoizing privately.
func (f *Framework) WithTileCache(budgetBytes int64) *Framework {
	f.tileCache = sim.NewTileCache(budgetBytes)
	return f
}

// TileCacheStats snapshots the shared tile-schedule cache counters
// (including the slow tier's bound-abort and coarse-skip counts); ok is
// false when no shared cache is enabled.
func (f *Framework) TileCacheStats() (st TileCacheStats, ok bool) {
	if f.tileCache == nil {
		return TileCacheStats{}, false
	}
	return f.tileCache.Stats(), true
}

// attachTileCache points w at the shared tile-schedule cache, when one is
// enabled. Without one, workloads keep their lazily created private
// caches (intra-workload reuse only).
func (f *Framework) attachTileCache(w *Workload) {
	if f.tileCache != nil {
		w.AttachTileCache(f.tileCache)
	}
}

// prunedKeySalt separates the pruned-deployment feature flavour in the
// cache keyspace: a TopFeaturesOnly framework stores ExtractPruned
// vectors, which must never be confused with the full vectors the
// streaming path (and full-featured frameworks) cache for the same
// operand bytes.
const prunedKeySalt = 0x709c5d3a41fe9b27

// analysisKey is the content address of the (A, B) analysis under the
// framework's extraction flavour.
func (f *Framework) analysisKey(a, b *Matrix) memo.Key {
	k := memo.PairKey(a.Fingerprint(), b.Fingerprint())
	if f.Options.TopFeaturesOnly {
		k.Hi ^= prunedKeySalt
	}
	return k
}

// AnalysisKey exposes the content address of the (A, B) analysis —
// the key the cache shards on, and the key cluster routing hashes to
// pick the owner node, so routing and caching agree by construction.
func (f *Framework) AnalysisKey(a, b *Matrix) memo.Key { return f.analysisKey(a, b) }

// buildAnalysis derives every design-independent artifact from the
// workload: the feature vector in the framework's flavour, all four
// design simulations (shared precompute, parallel fan-out), and the
// baseline statistics.
func (f *Framework) buildAnalysis(ctx context.Context, w *Workload) (*Analysis, error) {
	f.attachTileCache(w)
	an := &Analysis{}
	if f.Options.TopFeaturesOnly {
		an.Features = features.ExtractPruned(w.A, w.B)
	} else {
		an.Features = features.Extract(w.A, w.B)
	}
	var err error
	an.Results, err = w.SimulateAllCtx(ctx)
	if err != nil {
		return nil, err
	}
	an.Baseline = w.BaselineStats()
	return an, nil
}

// AnalysisFor returns the design-independent analysis for w's operand
// pair. With a cache enabled the result is content-addressed: equal
// operand bytes hit regardless of which request built the entry, and
// concurrent misses for the same pair run one simulation. hit reports
// whether this call avoided building (resident entry or coalesced
// share); without a cache it is always false.
func (f *Framework) AnalysisFor(ctx context.Context, w *Workload) (*Analysis, bool, error) {
	if f.cache == nil {
		an, err := f.buildAnalysis(ctx, w)
		return an, false, err
	}
	return f.cache.Do(ctx, f.analysisKey(w.A, w.B), func(ctx context.Context) (*Analysis, error) {
		return f.buildAnalysis(ctx, w)
	})
}

// AnalyzeWith prices one request against dev from a prebuilt Analysis:
// selector inference, the decide/apply transaction, and report assembly
// from the cached simulation of the chosen design. PreprocessSeconds is
// zero — the caller owns the analysis cost (cache hit or build) and may
// fold it in.
func (f *Framework) AnalyzeWith(ctx context.Context, dev *Accelerator, an *Analysis) (Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var rep Report
	rep.Device = dev.Name()
	rep.Path = PathFull
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	// One snapshot per request: proposal, pricing and prediction all come
	// from the same model generation even mid-promotion.
	snap := f.snapshot()
	rep.ModelVersion = snap.Version()
	t1 := time.Now()
	proposed := snap.Select(an.Features)
	dec := dev.DecideApplyWith(snap.Engine(), an.Features, proposed, 1)
	rep.InferenceSeconds = time.Since(t1).Seconds()

	rep.Design = dec.Target
	rep.Reconfigured = dec.Reconfigure
	rep.ReconfigSec = dec.ReconfigSeconds
	rep.PredictedSeconds = snap.Engine().Predictor.Predict(an.Features, dec.Target)

	f.observeTrace(an, proposed, snap.Version())

	res := an.Results[dec.Target]
	rep.SimulatedSeconds = res.Seconds
	rep.PEUtilization = res.PEUtilization
	rep.Cycles = res.Cycles
	rep.EnergyJoules = energy.FPGAEnergy(res)
	rep.TotalSeconds = rep.InferenceSeconds + rep.ReconfigSec + rep.SimulatedSeconds
	return rep, nil
}

// Accelerator is one (simulated) reconfigurable accelerator: it owns the
// loaded-bitstream state and per-device counters, pricing its decisions
// with the framework's immutable Engine. See internal/reconfig.Device.
type Accelerator = reconfig.Device

// AcceleratorStats are an Accelerator's running counters.
type AcceleratorStats = reconfig.DeviceStats

// Fleet is a checkout pool of Accelerators with per-device serialization
// and cross-device concurrency. See internal/fleet.
type Fleet = fleet.Fleet

// NewDevice returns a fresh accelerator (no bitstream loaded) backed by
// the framework's engine.
func (f *Framework) NewDevice(name string) *Accelerator {
	return reconfig.NewDevice(name, f.Engine)
}

// DefaultDevice returns the device behind the single-accelerator
// convenience API (Analyze, Stream).
func (f *Framework) DefaultDevice() *Accelerator { return f.device }

// NewFleet returns a fleet of n fresh devices sharing the framework's
// immutable models.
func (f *Framework) NewFleet(n int) *Fleet {
	return fleet.New(f.Engine, n)
}

// Train generates synthetic corpora, labels them with the design
// simulator, and fits both models (§3.1 selector and §3.3 latency
// predictor).
func Train(opts TrainOptions) (*Framework, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	corpus, err := dataset.GenerateClassifier(rng, opts.CorpusSize, opts.MaxDim)
	if err != nil {
		return nil, fmt.Errorf("misam: corpus generation: %w", err)
	}
	latCorpus := corpus
	if opts.LatencyCorpusSize > opts.CorpusSize {
		extra, err := dataset.GenerateClassifier(rng, opts.LatencyCorpusSize-opts.CorpusSize, opts.MaxDim)
		if err != nil {
			return nil, fmt.Errorf("misam: latency corpus: %w", err)
		}
		latCorpus = &dataset.Corpus{Samples: append(append([]dataset.Sample(nil), corpus.Samples...), extra.Samples...)}
	}
	return TrainOnCorpus(corpus, latCorpus, opts)
}

// TrainOnCorpus fits the selector and latency predictor on pre-labelled
// corpora, allowing several model variants (e.g. the pruned four-feature
// deployment) to share one expensive labelling pass. latCorpus may be nil
// to reuse corpus.
func TrainOnCorpus(corpus, latCorpus *dataset.Corpus, opts TrainOptions) (*Framework, error) {
	opts = opts.withDefaults()
	if latCorpus == nil {
		latCorpus = corpus
	}
	cfg := mltree.Config{MaxDepth: opts.MaxDepth, MinSamplesLeaf: 2}
	latCfg := mltree.Config{MaxDepth: opts.MaxDepth + 6, MinSamplesLeaf: 2}
	if opts.TopFeaturesOnly {
		cfg.Features = append([]int(nil), features.TopFour...)
		// The per-design latency trees get the same pruned features, so
		// the ExtractPruned fast path feeds them too.
		latCfg.Features = append([]int(nil), features.TopFour...)
	}
	var labels []int
	if opts.LatencyWeight == 0 && opts.EnergyWeight == 0 {
		labels = corpus.Labels()
	} else {
		labels = corpus.LabelsFor(opts.LatencyWeight, opts.EnergyWeight)
	}
	cls, err := mltree.TrainClassifier(corpus.X(), labels, NumDesigns,
		mltree.BalancedWeights(labels, NumDesigns), cfg)
	if err != nil {
		return nil, fmt.Errorf("misam: selector training: %w", err)
	}
	pred, err := reconfig.TrainLatencyPredictor(latCorpus, latCfg)
	if err != nil {
		return nil, err
	}
	engine := reconfig.NewEngine(pred, reconfig.DefaultTimeModel(), opts.Threshold)
	snap, err := registry.NewSnapshot(cls, engine, registry.Info{
		Source: registry.SourceTrain,
		Note:   "offline training",
		Traces: len(corpus.Samples),
	})
	if err != nil {
		return nil, fmt.Errorf("misam: initial snapshot: %w", err)
	}
	return &Framework{
		Selector: &Selector{Tree: cls, compiled: cls.Compile()},
		Engine:   engine,
		Corpus:   corpus,
		Options:  opts,
		device:   reconfig.NewDevice("default", engine),
		registry: registry.New(snap),
	}, nil
}

// Report describes one framework invocation: the Figure 12 breakdown
// (preprocessing = feature extraction, inference = selector + engine) and
// the simulated hardware outcome.
type Report struct {
	Design Design
	// Device names the accelerator that served the request.
	Device string
	// Path records which serving tier produced the report: PathFull for
	// the simulate-everything pipeline, PathFast for the confidence-gated
	// tier that prices from the latency regressors alone (see
	// AnalyzeFast).
	Path string
	// Confidence is the selector leaf's probability mass for the proposed
	// design, populated whenever the fast-path gate evaluated it (zero on
	// the plain Analyze pipeline, which never looks at it).
	Confidence float64
	// ModelVersion is the registry version of the model snapshot that
	// served the request (1 for a freshly trained/loaded framework).
	ModelVersion      uint64
	PreprocessSeconds float64
	InferenceSeconds  float64
	// PredictedSeconds is the latency predictor's estimate for the chosen
	// design; SimulatedSeconds is the cycle simulator's result.
	PredictedSeconds float64
	SimulatedSeconds float64
	// TotalSeconds = preprocessing + inference + reconfiguration +
	// simulated hardware time.
	TotalSeconds float64
	Reconfigured bool
	ReconfigSec  float64
	// EnergyJoules is the FPGA energy estimate for the run.
	EnergyJoules float64
	// PEUtilization and Cycles expose the simulator detail.
	PEUtilization float64
	Cycles        int64
}

// Analyze selects a design for A×B and simulates it without computing the
// numeric product — the path a host would take before offloading. State
// transitions happen on the framework's default device; use AnalyzeOn to
// target a specific accelerator. ctx cancellation aborts the simulation
// mid-tile-pool and returns ctx.Err().
func (f *Framework) Analyze(ctx context.Context, a, b *Matrix) (Report, error) {
	w, err := sim.NewWorkload(a, b)
	if err != nil {
		return Report{}, fmt.Errorf("misam: analyze: %w", err)
	}
	return f.AnalyzeOn(ctx, f.device, w)
}

// AnalyzeWorkload is Analyze over a prebuilt simulation workload, letting
// callers that evaluate one pair repeatedly (serving stacks, experiment
// drivers) reuse the design-independent precompute across calls.
func (f *Framework) AnalyzeWorkload(ctx context.Context, w *sim.Workload) (Report, error) {
	return f.AnalyzeOn(ctx, f.device, w)
}

// AnalyzeOn runs the analyze pipeline against one accelerator: feature
// extraction, design selection, the decide/apply transaction on dev's
// bitstream state, and cycle simulation of the chosen design. The
// framework itself stays immutable — all state transitions land on dev.
// AnalyzeOn does not serialize dev across concurrent calls; check
// devices out of a Fleet when requests must own an accelerator
// exclusively.
func (f *Framework) AnalyzeOn(ctx context.Context, dev *Accelerator, w *sim.Workload) (Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if f.cache != nil || f.traces != nil {
		// Cached path: the design-independent analysis (features, all four
		// simulations, baselines) comes from the content-addressed cache;
		// only the per-device decide/apply transaction runs per request.
		// The simulator is deterministic and SimulateAll matches the
		// single-design path bit for bit, so the report's deterministic
		// fields are identical to the uncached pipeline's.
		//
		// Trace capture also routes here: a training-ready trace needs all
		// four simulations (the ground-truth argmin label), and
		// SimulateAll runs the designs concurrently over one shared
		// precompute, so the capture cost is far below 4× the single-
		// design path.
		t0 := time.Now()
		an, _, err := f.AnalysisFor(ctx, w)
		if err != nil {
			return Report{Device: dev.Name()}, fmt.Errorf("misam: analyze: %w", err)
		}
		pre := time.Since(t0).Seconds()
		rep, err := f.AnalyzeWith(ctx, dev, an)
		rep.PreprocessSeconds = pre
		rep.TotalSeconds += pre
		return rep, err
	}
	a, b := w.A, w.B
	var rep Report
	rep.Device = dev.Name()
	rep.Path = PathFull
	t0 := time.Now()
	var v features.Vector
	if f.Options.TopFeaturesOnly {
		// Pruned deployment: pointer-offset features only (§5.5).
		v = features.ExtractPruned(a, b)
	} else {
		v = features.Extract(a, b)
	}
	rep.PreprocessSeconds = time.Since(t0).Seconds()

	if err := ctx.Err(); err != nil {
		return rep, err
	}
	snap := f.snapshot()
	rep.ModelVersion = snap.Version()
	t1 := time.Now()
	proposed := snap.Select(v)
	dec := dev.DecideApplyWith(snap.Engine(), v, proposed, 1)
	rep.InferenceSeconds = time.Since(t1).Seconds()

	rep.Design = dec.Target
	rep.Reconfigured = dec.Reconfigure
	rep.ReconfigSec = dec.ReconfigSeconds
	rep.PredictedSeconds = snap.Engine().Predictor.Predict(v, dec.Target)

	f.attachTileCache(w)
	res, err := w.SimulateDesignCtx(ctx, dec.Target)
	if err != nil {
		return rep, fmt.Errorf("misam: simulate: %w", err)
	}
	rep.SimulatedSeconds = res.Seconds
	rep.PEUtilization = res.PEUtilization
	rep.Cycles = res.Cycles
	rep.EnergyJoules = energy.FPGAEnergy(res)
	rep.TotalSeconds = rep.PreprocessSeconds + rep.InferenceSeconds + rep.ReconfigSec + rep.SimulatedSeconds
	return rep, nil
}

// Multiply runs the full pipeline: design selection, reconfiguration
// decision, hardware simulation, and the numeric product (computed with
// the row-wise reference kernel).
func (f *Framework) Multiply(a, b *Matrix) (*Matrix, Report, error) {
	rep, err := f.Analyze(context.Background(), a, b)
	if err != nil {
		return nil, rep, err
	}
	c, _, err := spgemm.Multiply(spgemm.RowWiseProduct, a, b)
	if err != nil {
		return nil, rep, fmt.Errorf("misam: multiply: %w", err)
	}
	return c, rep, nil
}

// Stream executes A×B tile-by-tile under the reconfiguration engine,
// using random tile heights in [minTile, maxTile] (§3.3's 10k–50k when
// the matrix is large enough). The bitstream state carries across tiles
// (and across calls) on the framework's default device; ctx cancellation
// aborts between tiles.
func (f *Framework) Stream(ctx context.Context, seed int64, a, b *Matrix, minTile, maxTile int) (reconfig.StreamResult, error) {
	rng := rand.New(rand.NewSource(seed))
	// With the analysis cache enabled the per-tile feature extraction and
	// four-design simulations are content-addressed: re-streaming the same
	// matrix (or re-seeing a tile by content) skips straight to pricing.
	// Stream tiles always extract the full feature set, so their entries
	// live under unsalted keys. The selector comes from the registry's
	// current snapshot, grabbed once for the whole stream.
	return f.device.StreamCached(ctx, rng, f.snapshot(), a, b, minTile, maxTile, f.cache)
}

// CompareBaselines estimates the same workload on the CPU, GPU and
// Trapezoid models (Figure 10's comparison points).
type BaselineComparison struct {
	CPUSeconds        float64
	GPUSeconds        float64
	TrapezoidSeconds  float64 // best fixed Trapezoid dataflow
	TrapezoidDataflow string
	CPUEnergyJ        float64
	GPUEnergyJ        float64
}

// CompareBaselines evaluates the baseline cost models on A×B.
func CompareBaselines(a, b *Matrix) BaselineComparison {
	return compareStats(baseline.Collect(a, b))
}

// CompareBaselinesWorkload evaluates the baseline cost models using a
// prebuilt workload's cached precompute (flop count, output estimate, B
// row counts) instead of re-walking the matrices, so serving stacks that
// already built a Workload for Analyze pay only an O(rows) pass here.
func CompareBaselinesWorkload(w *Workload) BaselineComparison {
	return compareStats(w.BaselineStats())
}

// BaselineStats are the collected workload statistics the baseline cost
// models consume; cached Analyses carry them.
type BaselineStats = baseline.Stats

// CompareBaselineStats evaluates the baseline cost models on
// already-collected statistics (e.g. a cached Analysis.Baseline), paying
// no matrix walk at all.
func CompareBaselineStats(s BaselineStats) BaselineComparison {
	return compareStats(s)
}

func compareStats(s baseline.Stats) BaselineComparison {
	cpu := baseline.DefaultCPU().Estimate(s)
	gpu := baseline.DefaultGPU().Estimate(s)
	df, trap := baseline.DefaultTrapezoid().BestDataflow(s)
	return BaselineComparison{
		CPUSeconds:        cpu.Seconds,
		GPUSeconds:        gpu.Seconds,
		TrapezoidSeconds:  trap.Seconds,
		TrapezoidDataflow: df.String(),
		CPUEnergyJ:        energy.Energy(energy.CPUActiveWatts, cpu.Seconds),
		GPUEnergyJ:        energy.Energy(energy.GPUPower(s.BDensity), gpu.Seconds),
	}
}

// savedModels is the gob persistence envelope.
type savedModels struct {
	Classifier *mltree.Classifier
	Regressors [NumDesigns]*mltree.Regressor
	Options    TrainOptions
}

// Model-file framing. Format version 1 is the legacy headerless gob
// stream; version 2 prefixes an ASCII header so mismatched readers can
// say exactly what they got instead of failing with a bare decode error.
const (
	modelMagic         = "misam-model:"
	modelFormatVersion = 2
)

// Save serializes the models of the registry's *current* snapshot (not
// the corpus or device state) — saving after a promotion persists the
// promoted models, so a restart resumes from the adapted generation.
func (f *Framework) Save(w io.Writer) error {
	snap := f.snapshot()
	if _, err := fmt.Fprintf(w, "%s%d\n", modelMagic, modelFormatVersion); err != nil {
		return fmt.Errorf("misam: save models: %w", err)
	}
	return gob.NewEncoder(w).Encode(savedModels{
		Classifier: snap.Classifier(),
		Regressors: snap.Engine().Predictor.Regs,
		Options:    f.Options,
	})
}

// readModels parses a Save-format stream — optional version header, gob
// body, completeness validation — shared by Load and the cluster sync
// receiver.
func readModels(r io.Reader) (savedModels, error) {
	br := bufio.NewReader(r)
	version := 1 // legacy headerless stream
	if peek, err := br.Peek(len(modelMagic)); err == nil && string(peek) == modelMagic {
		header, err := br.ReadString('\n')
		if err != nil {
			return savedModels{}, fmt.Errorf("misam: model file is truncated inside its header (expected %q<version>)", modelMagic)
		}
		verStr := strings.TrimSuffix(strings.TrimPrefix(header, modelMagic), "\n")
		v, err := strconv.Atoi(verStr)
		if err != nil {
			return savedModels{}, fmt.Errorf("misam: model file has malformed format version %q (this build writes version %d)",
				verStr, modelFormatVersion)
		}
		if v != modelFormatVersion {
			return savedModels{}, fmt.Errorf("misam: model file is format version %d, this build expects version %d — retrain or re-save the model",
				v, modelFormatVersion)
		}
		version = v
	}
	var s savedModels
	if err := gob.NewDecoder(br).Decode(&s); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return savedModels{}, fmt.Errorf("misam: model file is truncated (format version %d): %w", version, err)
		}
		return savedModels{}, fmt.Errorf("misam: load models (format version %d): %w", version, err)
	}
	if s.Classifier == nil || s.Classifier.Root == nil {
		return savedModels{}, fmt.Errorf("misam: loaded models are incomplete")
	}
	for _, reg := range s.Regressors {
		if reg == nil || reg.Root == nil {
			return savedModels{}, fmt.Errorf("misam: loaded models are incomplete")
		}
	}
	return s, nil
}

// Load restores a framework from Save's output. The corpus is not
// persisted; Corpus is nil on the loaded framework. Both the current
// headered format and the legacy headerless format are accepted;
// mismatched format versions and truncated files are reported by name.
func Load(r io.Reader) (*Framework, error) {
	s, err := readModels(r)
	if err != nil {
		return nil, err
	}
	engine := reconfig.NewEngine(&reconfig.LatencyPredictor{Regs: s.Regressors},
		reconfig.DefaultTimeModel(), s.Options.Threshold)
	snap, err := registry.NewSnapshot(s.Classifier, engine, registry.Info{
		Source: registry.SourceLoad,
		Note:   "restored from model file",
	})
	if err != nil {
		return nil, fmt.Errorf("misam: initial snapshot: %w", err)
	}
	return &Framework{
		Selector: &Selector{Tree: s.Classifier, compiled: s.Classifier.Compile()},
		Engine:   engine,
		Options:  s.Options,
		device:   reconfig.NewDevice("default", engine),
		registry: registry.New(snap),
	}, nil
}

// SnapshotModelBytes serializes the registry's current snapshot in the
// Save wire format and reports the registry version it corresponds to —
// the payload cluster replication pushes to peers.
func (f *Framework) SnapshotModelBytes() ([]byte, uint64, error) {
	snap := f.snapshot()
	var buf bytes.Buffer
	if _, err := fmt.Fprintf(&buf, "%s%d\n", modelMagic, modelFormatVersion); err != nil {
		return nil, 0, fmt.Errorf("misam: snapshot models: %w", err)
	}
	if err := gob.NewEncoder(&buf).Encode(savedModels{
		Classifier: snap.Classifier(),
		Regressors: snap.Engine().Predictor.Regs,
		Options:    f.Options,
	}); err != nil {
		return nil, 0, fmt.Errorf("misam: snapshot models: %w", err)
	}
	return buf.Bytes(), snap.Version(), nil
}

// PublishSyncedModels installs a model set received from a cluster peer
// (SnapshotModelBytes / Save wire format) as a new registry version with
// SourceSync, returning the minted version. Versions are per-node: the
// same replicated content gets different version numbers on different
// nodes; the replication layer's Lamport stamps, not versions, decide
// which content is newest.
func (f *Framework) PublishSyncedModels(data []byte, note string) (uint64, error) {
	s, err := readModels(bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	engine := reconfig.NewEngine(&reconfig.LatencyPredictor{Regs: s.Regressors},
		reconfig.DefaultTimeModel(), s.Options.Threshold)
	snap, err := registry.NewSnapshot(s.Classifier, engine, registry.Info{
		Source: registry.SourceSync,
		Note:   note,
	})
	if err != nil {
		return 0, fmt.Errorf("misam: synced snapshot: %w", err)
	}
	return f.registry.Publish(snap), nil
}

// ExtractFeatures exposes the §3.1 feature extraction.
func ExtractFeatures(a, b *Matrix) FeatureVector { return features.Extract(a, b) }

// FeatureNames returns the Figure 4 feature names, indexed like
// FeatureVector.
func FeatureNames() []string { return features.Names() }

// SimulateDesign runs the cycle simulator for one design directly.
func SimulateDesign(id Design, a, b *Matrix) (sim.Result, error) {
	return sim.SimulateDesign(id, a, b)
}

// SimulateAllDesigns runs every design on the workload. The four designs
// share one precompute (CSC form, B row counts, tilings, element bins)
// and run concurrently; see NewWorkload to reuse that precompute across
// further Simulate calls.
func SimulateAllDesigns(a, b *Matrix) ([sim.NumDesigns]sim.Result, error) {
	return sim.SimulateAll(a, b)
}

// SimulateAllDesignsPruned is SimulateAllDesigns through the pruned slow
// tier (coarse-then-exact ordering plus early-exit simulation): the
// argmin design and its Result are bit-identical to the exact pass, while
// provably losing designs may return early with a marked lower bound
// (Result.Pruned) instead of a full simulation.
func SimulateAllDesignsPruned(a, b *Matrix) ([sim.NumDesigns]sim.Result, error) {
	return sim.SimulateAllPruned(a, b)
}

// Workload is the design-independent simulation precompute for one A×B
// pair (see sim.NewWorkload). Build it once when the same pair will be
// analyzed or simulated repeatedly.
type Workload = sim.Workload

// NewWorkload validates dimensions and returns a reusable simulation
// precompute for A×B.
func NewWorkload(a, b *Matrix) (*Workload, error) {
	return sim.NewWorkload(a, b)
}

var _ = sparse.Entry{} // keep the alias target imported
