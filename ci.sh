#!/usr/bin/env sh
# CI gate: formatting, vet, build, and the full test suite under the race
# detector (the simulation engine schedules tiles and designs on shared
# Workload caches, so -race is load-bearing, not optional).
set -eu

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race -shuffle=on ./..."
go test -race -shuffle=on ./...

echo "CI green"
