#!/usr/bin/env sh
# CI gate: formatting, vet, build, and the full test suite under the race
# detector (the simulation engine schedules tiles and designs on shared
# Workload caches, so -race is load-bearing, not optional).
set -eu

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race -shuffle=on ./..."
# -timeout raised past the 10m default: internal/reconfig alone runs
# ~10m under the race detector on a single-core host.
go test -race -shuffle=on -timeout 30m ./...

# Benchmark smoke: one iteration of the fingerprint/memo/cache
# benchmarks so their harness code can't rot. Scoped by name — the
# figure-scale benchmarks are far too slow for CI.
echo "==> benchmark smoke (-benchtime=1x)"
go test -run '^$' -bench 'Fingerprint|Memo|Cache' -benchtime=1x ./...

echo "CI green"
