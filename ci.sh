#!/usr/bin/env sh
# CI gate: formatting, vet, build, and the full test suite under the race
# detector (the simulation engine schedules tiles and designs on shared
# Workload caches, so -race is load-bearing, not optional).
set -eu

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race -shuffle=on ./..."
# -timeout raised past the 10m default: internal/reconfig alone runs
# ~10m under the race detector on a single-core host.
go test -race -shuffle=on -timeout 30m ./...

# The registry hammer is the hot-swap safety proof: readers race
# publishes and rollbacks under -race and assert no torn snapshot. It
# already ran inside the full suite above; run it by name here so a
# future -run filter on the main pass can't silently skip it.
echo "==> registry hot-swap hammer (-race)"
go test -race -run 'TestSwapRollbackHammer|TestAnalyzeDuringHotSwap' ./internal/registry/ .

# The early-exit pruned tier races a shared best-so-far bound across the
# design fan-out, and the tile cache races concurrent lookups, stores and
# mid-sim bound aborts on shared striped slots; run both hammers by name
# under -race so a future -run filter on the main pass can't silently
# skip them.
echo "==> early-exit racing bound + tile-cache hammer (-race)"
go test -race -run 'TestEarlyExitRacingBound|TestTileBoundRaceHammer' ./internal/sim/

# The placement pool reorders only idle-device selection; waiter
# handover must stay strictly FIFO or preferred traffic starves plain
# requests. Run the starvation proofs by name under -race so a future
# -run filter on the main pass can't silently skip them.
echo "==> placement pool hammer (-race)"
go test -race -run 'TestAcquirePreferredHammer|TestSaturatedHandoverIsFIFO' ./internal/fleet/

# Benchmark smoke: one iteration of the fingerprint/memo/cache/registry/
# fast-path/steady-state benchmarks so their harness code can't rot.
# Scoped by name — the figure-scale benchmarks are far too slow for CI.
echo "==> benchmark smoke (-benchtime=1x)"
go test -run '^$' -bench 'Fingerprint|Memo|Cache|Registry|FastPath|SteadyState|WriteJSON|Binary|Fused' -benchtime=1x ./...

# Fast-path experiment smoke: one quick-scale pass over the serving
# tiers (baseline + four gate thresholds) without writing BENCH_PR5.json.
echo "==> fastpath experiment smoke"
go run ./cmd/misam-bench -scale quick -experiment fastpath -fastout ""

# Slow-tier (v2, memoized) experiment smoke: one quick-scale pass over
# the exact and pruned tiers. Writing to a scratch path (not the
# committed BENCH_PR10.json) makes the driver run its write/re-read/
# schema validation, and the run itself asserts argmin agreement, winner
# bit-identity and the verifier tile-reuse floor on a real timing stream.
echo "==> slowtier-v2 experiment smoke"
slowout="${TMPDIR:-/tmp}/misam_bench_pr10_smoke.json"
go run ./cmd/misam-bench -scale quick -experiment slowtier -slowout "$slowout"
rm -f "$slowout"

# Placement experiment smoke: one quick-scale replay of the skewed
# stream through the FIFO pool and the placement pool. The scratch path
# exercises the write/re-read/schema validation, and the run itself
# fails unless every analysis is bit-identical between pools and
# placement avoids >= 50% of FIFO's reconfigurations.
echo "==> placement experiment smoke"
placeout="${TMPDIR:-/tmp}/misam_bench_pr7_smoke.json"
go run ./cmd/misam-bench -scale quick -experiment placement -placeout "$placeout"
rm -f "$placeout"

# Ingest experiment smoke: one quick-scale pass over binary-vs-
# MatrixMarket decode, fused extraction, and both e2e serving paths.
# The scratch path exercises the write/re-read/schema validation, and
# the run itself fails unless the decode speedup, zero-alloc, transport
# bit-identity and e2e-p50 gates all hold.
echo "==> ingest experiment smoke"
ingestout="${TMPDIR:-/tmp}/misam_bench_pr8_smoke.json"
go run ./cmd/misam-bench -scale quick -experiment ingest -ingestout "$ingestout"
rm -f "$ingestout"

# Cluster experiment smoke: one quick-scale replay of a repeated-operand
# stream through a two-node loopback cluster and a single node. The
# scratch path exercises the write/re-read/schema validation, and the
# run itself fails unless the deployments answer bit-identically, each
# pair is built on exactly one member, the cluster warm hit stays within
# 2x of the single node, and a mid-stream peer kill loses zero requests.
echo "==> cluster experiment smoke"
clusterout="${TMPDIR:-/tmp}/misam_bench_pr9_smoke.json"
go run ./cmd/misam-bench -scale quick -experiment cluster -clusterout "$clusterout"
rm -f "$clusterout"

# Two-node serving smoke over the public API: real misam-serve processes
# proving ownership routing, forward counters, boot replication and
# rollback propagation (see cluster_smoke.sh).
echo "==> two-node cluster serving smoke"
./cluster_smoke.sh

# Wire-decoder fuzz smoke: 10 s of coverage-guided mutation against the
# binary CSR decoder. The seed corpus + regression entries run inside
# the full suite above; this pass actually mutates.
echo "==> wire decoder fuzz smoke (-fuzztime=10s)"
go test -run '^$' -fuzz 'FuzzDecodeBinary' -fuzztime 10s ./internal/sparse/

# Tile-hash fuzz smoke: 10 s hunting for tile-cache key collisions — a
# collision would let one tile's memoized schedule answer for another's,
# silently corrupting cycle counts. The seed corpus runs in the full
# suite; this pass actually mutates.
echo "==> tile stream hash fuzz smoke (-fuzztime=10s)"
go test -run '^$' -fuzz 'FuzzTileStreamHash' -fuzztime 10s ./internal/sim/

# The zero-alloc ingestion pins guard the binary serving floor: run
# them by name so a future -run filter on the main pass can't silently
# skip them.
echo "==> zero-alloc ingestion pins"
go test -run 'SteadyStateZeroAllocs' ./internal/sparse/ ./internal/features/

# Online-adaptation smoke: replay a tiny shifting stream through the
# collector end to end (drift report + retrain + promotion gate).
echo "==> misam-retrain smoke"
go run ./cmd/misam-retrain -corpus 120 -maxdim 192 -phase1 36 -phase2 60 \
    -window 48 -min-samples 24 -min-traces 40 -checkpoint 24 -force

# Same stream through the confidence-gated fast path: labels now come
# from the background verifier, and the drift detector must still fire.
echo "==> misam-retrain fast-path smoke"
go run ./cmd/misam-retrain -corpus 120 -maxdim 192 -phase1 36 -phase2 60 \
    -window 48 -min-samples 24 -min-traces 40 -checkpoint 24 -force \
    -fastpath -confidence 0.5

echo "CI green"
