package misam_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§5, §6). Each BenchmarkTableN / BenchmarkFigureN runs the
// corresponding experiment driver; run with -v (or cmd/misam-bench) to
// see the rendered rows. The Ablation benchmarks exercise the design
// choices DESIGN.md calls out: class weighting, feature pruning, the
// reconfiguration threshold, the scheduler window, and streaming tile
// sizes.
//
//	go test -bench=. -benchmem
//	go run ./cmd/misam-bench -scale paper   # paper-scale regeneration

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"testing"

	"misam"
	"misam/internal/dataset"
	"misam/internal/experiments"
	"misam/internal/mltree"
	"misam/internal/reconfig"
	"misam/internal/sim"
	"misam/internal/sparse"
	"misam/internal/workload"
)

var (
	benchCtx     *experiments.Context
	benchCtxOnce sync.Once
)

// benchContext shares one trained context across the figure benchmarks.
// Set MISAM_BENCH_SCALE=paper for paper-scale corpora and workloads.
func benchContext() *experiments.Context {
	benchCtxOnce.Do(func() {
		cfg := experiments.DefaultConfig()
		switch os.Getenv("MISAM_BENCH_SCALE") {
		case "paper":
			cfg = experiments.PaperConfig()
		case "quick":
			cfg = experiments.QuickConfig()
		}
		benchCtx = experiments.NewContext(cfg)
	})
	return benchCtx
}

// benchOut returns the experiment output sink: stdout under -v, else
// discard.
func benchOut(b *testing.B) io.Writer {
	if testing.Verbose() {
		return os.Stdout
	}
	return io.Discard
}

func BenchmarkFigure1SparsitySpace(b *testing.B) {
	w := benchOut(b)
	for i := 0; i < b.N; i++ {
		experiments.Figure1(w)
	}
}

func BenchmarkTable1DesignConfigs(b *testing.B) {
	w := benchOut(b)
	for i := 0; i < b.N; i++ {
		experiments.Table1(w)
	}
}

func BenchmarkTable2Resources(b *testing.B) {
	w := benchOut(b)
	for i := 0; i < b.N; i++ {
		experiments.Table2(w)
	}
}

func BenchmarkTable3Matrices(b *testing.B) {
	ctx := benchContext()
	w := benchOut(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table3(ctx, w)
	}
}

func BenchmarkFigure3DesignSuite(b *testing.B) {
	ctx := benchContext()
	w := benchOut(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(ctx, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4FeatureImportance(b *testing.B) {
	ctx := benchContext()
	if _, err := ctx.Framework(); err != nil {
		b.Fatal(err)
	}
	w := benchOut(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(ctx, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6ToyTimelines(b *testing.B) {
	w := benchOut(b)
	for i := 0; i < b.N; i++ {
		experiments.Figure6(w)
	}
}

func BenchmarkTable4CrossSpeedup(b *testing.B) {
	ctx := benchContext()
	if _, err := ctx.Framework(); err != nil {
		b.Fatal(err)
	}
	w := benchOut(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(ctx, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5Confusion(b *testing.B) {
	ctx := benchContext()
	if _, err := ctx.Framework(); err != nil {
		b.Fatal(err)
	}
	w := benchOut(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(ctx, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8Reconfig(b *testing.B) {
	ctx := benchContext()
	if _, err := ctx.Framework(); err != nil {
		b.Fatal(err)
	}
	w := benchOut(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(ctx, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9LatencyPredictor(b *testing.B) {
	ctx := benchContext()
	if _, err := ctx.Framework(); err != nil {
		b.Fatal(err)
	}
	w := benchOut(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(ctx, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10PerfGain(b *testing.B) {
	ctx := benchContext()
	if _, err := ctx.Framework(); err != nil {
		b.Fatal(err)
	}
	ctx.Suite()
	w := benchOut(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure10(ctx, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11Energy(b *testing.B) {
	ctx := benchContext()
	if _, err := ctx.Framework(); err != nil {
		b.Fatal(err)
	}
	ctx.Suite()
	w := benchOut(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure11(ctx, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12Breakdown(b *testing.B) {
	ctx := benchContext()
	if _, err := ctx.Framework(); err != nil {
		b.Fatal(err)
	}
	w := benchOut(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure12(ctx, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13Trapezoid(b *testing.B) {
	ctx := benchContext()
	if _, err := ctx.Framework(); err != nil {
		b.Fatal(err)
	}
	ctx.Suite()
	w := benchOut(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure13(ctx, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSection62MultiTenant(b *testing.B) {
	w := benchOut(b)
	for i := 0; i < b.N; i++ {
		experiments.MultiTenant(w)
	}
}

// --- Ablation benchmarks -------------------------------------------------

// BenchmarkAblationClassWeighting compares selector accuracy with and
// without the §3.1 inverse-frequency class weights.
func BenchmarkAblationClassWeighting(b *testing.B) {
	ctx := benchContext()
	fw, err := ctx.Framework()
	if err != nil {
		b.Fatal(err)
	}
	x, y := fw.Corpus.X(), fw.Corpus.Labels()
	rng := rand.New(rand.NewSource(77))
	cfg := mltree.Config{MaxDepth: 10, MinSamplesLeaf: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		weighted, err := mltree.CrossValidateClassifier(x, y, misam.NumDesigns, true, cfg, 5, rng)
		if err != nil {
			b.Fatal(err)
		}
		plain, err := mltree.CrossValidateClassifier(x, y, misam.NumDesigns, false, cfg, 5, rng)
		if err != nil {
			b.Fatal(err)
		}
		if testing.Verbose() && i == 0 {
			fmt.Printf("class weighting: CV accuracy %.3f weighted vs %.3f unweighted\n",
				mean(weighted), mean(plain))
		}
	}
}

// BenchmarkAblationTopFeatures compares the full-feature selector against
// the pruned four-feature deployment (§5.5).
func BenchmarkAblationTopFeatures(b *testing.B) {
	ctx := benchContext()
	fw, err := ctx.Framework()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pruned, err := misam.TrainOnCorpus(fw.Corpus, nil, misam.TrainOptions{
			CorpusSize: len(fw.Corpus.Samples), MaxDim: ctx.Cfg.MaxDim,
			Seed: 1, TopFeaturesOnly: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if testing.Verbose() && i == 0 {
			fullAcc := mltree.Accuracy(fw.Selector.Tree.PredictBatch(fw.Corpus.X()), fw.Corpus.Labels())
			prunedAcc := mltree.Accuracy(pruned.Selector.Tree.PredictBatch(fw.Corpus.X()), fw.Corpus.Labels())
			fullSz, _ := fw.Selector.SizeBytes()
			prunedSz, _ := pruned.Selector.SizeBytes()
			fmt.Printf("feature pruning: accuracy %.3f/%d B full vs %.3f/%d B pruned\n",
				fullAcc, fullSz, prunedAcc, prunedSz)
		}
	}
}

// BenchmarkAblationThresholdSweep sweeps the §3.3 reconfiguration
// threshold and reports how often the engine switches on a mixed stream.
func BenchmarkAblationThresholdSweep(b *testing.B) {
	ctx := benchContext()
	fw, err := ctx.Framework()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(88))
	a := sparse.Uniform(rng, 40000, 40000, 0.0001)
	bm := sparse.Uniform(rng, 40000, 256, 0.05)
	v := misam.ExtractFeatures(a, bm)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, th := range []float64{0.05, 0.10, 0.20, 0.40, 0.80} {
			eng := reconfig.NewEngine(fw.Engine.Predictor, reconfig.DefaultTimeModel(), th)
			st := reconfig.State{Loaded: sim.Design1, HasLoaded: true}
			switches := 0
			for units := 1000.0; units <= 512000; units *= 2 {
				if d := eng.Decide(st, v, sim.Design4, units); d.Target == sim.Design4 {
					switches++
				}
			}
			if testing.Verbose() && i == 0 {
				fmt.Printf("threshold %.2f: switches at %d of 10 batch scales\n", th, switches)
			}
		}
	}
}

// BenchmarkAblationSchedulerWindow sweeps the scheduler's lookahead
// window, the bubble-filling mechanism of §3.2.2.
func BenchmarkAblationSchedulerWindow(b *testing.B) {
	rng := rand.New(rand.NewSource(99))
	a := sparse.PowerLaw(rng, 4000, 4000, 24000, 1.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, win := range []int{1, 2, 4, 8, 16, 32} {
			groups := sim.ScheduleA(a, sim.ScheduleOptions{
				PEGs: 16, PEsPerPEG: 4, Traversal: sim.ColWise, DepGap: 4, Window: win,
			})
			if testing.Verbose() && i == 0 {
				var bubbles int64
				for _, g := range groups {
					bubbles += g.Bubbles
				}
				fmt.Printf("window %2d: makespan %6d cycles, %6d bubbles\n",
					win, sim.Makespan(groups), bubbles)
			}
		}
	}
}

// BenchmarkAblationTileSize sweeps the §3.3 streaming tile height.
func BenchmarkAblationTileSize(b *testing.B) {
	ctx := benchContext()
	fw, err := ctx.Framework()
	if err != nil {
		b.Fatal(err)
	}
	a := misam.RandUniform(5, 60000, 20000, 0.0002)
	bm := misam.RandDense(6, 20000, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tile := range []int{5000, 10000, 25000, 50000} {
			res, err := fw.Stream(context.Background(), int64(tile), a, bm, tile/2, tile)
			if err != nil {
				b.Fatal(err)
			}
			if testing.Verbose() && i == 0 {
				fmt.Printf("tile ~%5d rows: %2d tiles, compute %.3f ms, %d reconfigs\n",
					tile, len(res.Outcomes), res.ComputeSeconds*1e3, res.Reconfigs)
			}
		}
	}
}

// --- Microbenchmarks of the hot paths ------------------------------------

func BenchmarkSimulateDesign2(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := sparse.Uniform(rng, 4000, 4000, 0.01)
	bm := sparse.DenseRandom(rng, 4000, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.SimulateDesign(sim.Design2, a, bm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectorInference(b *testing.B) {
	ctx := benchContext()
	fw, err := ctx.Framework()
	if err != nil {
		b.Fatal(err)
	}
	a := misam.RandUniform(1, 2000, 2000, 0.01)
	bm := misam.RandDense(2, 2000, 64)
	v := misam.ExtractFeatures(a, bm)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw.Selector.Select(v)
	}
}

func BenchmarkEndToEndAnalyze(b *testing.B) {
	ctx := benchContext()
	fw, err := ctx.Framework()
	if err != nil {
		b.Fatal(err)
	}
	a := misam.RandPowerLaw(3, 20000, 20000, 80000, 1.9)
	bm := misam.RandDense(4, 20000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.Analyze(context.Background(), a, bm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadSuiteGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		workload.Suite(workload.Options{Reduction: 32, DenseCols: 64, Seed: int64(i)})
	}
}

// BenchmarkSimulateAllSerial is the pre-Workload reference: four designs
// simulated back to back, each redoing the design-independent precompute
// and walking its tiles serially.
func BenchmarkSimulateAllSerial(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := sparse.Uniform(rng, 4000, 4000, 0.01)
	bm := sparse.DenseRandom(rng, 4000, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.SimulateAllSerial(a, bm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateAllPrecomputed is the production engine on the same
// workload: one shared Workload precompute, designs fanned over
// goroutines, tiles over the bounded worker pool. The ratio against
// BenchmarkSimulateAllSerial is the headline speedup in BENCH_PR1.json.
func BenchmarkSimulateAllPrecomputed(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := sparse.Uniform(rng, 4000, 4000, 0.01)
	bm := sparse.DenseRandom(rng, 4000, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.SimulateAll(a, bm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCorpusLabelling(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.Label(dataset.RandomPair(rng, 512)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorpusLabellingParallel labels a fixed batch of corpus pairs
// through dataset.LabelAll — the worker fan-out the corpus generator and
// dataset.Label callers ride on.
func BenchmarkCorpusLabellingParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	pairs := make([]dataset.Pair, 16)
	for i := range pairs {
		pairs[i] = dataset.RandomPair(rng, 512)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.LabelAll(context.Background(), pairs); err != nil {
			b.Fatal(err)
		}
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// BenchmarkExtensionRouter runs the §6.3 heterogeneous routing extension.
func BenchmarkExtensionRouter(b *testing.B) {
	ctx := benchContext()
	if _, err := ctx.Framework(); err != nil {
		b.Fatal(err)
	}
	ctx.Suite()
	w := benchOut(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Router(ctx, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionObjective runs the §3.1 multi-objective extension.
func BenchmarkExtensionObjective(b *testing.B) {
	ctx := benchContext()
	if _, err := ctx.Framework(); err != nil {
		b.Fatal(err)
	}
	w := benchOut(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Objective(ctx, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSection61ReconfigModes runs the §6.1 reconfiguration-mechanism
// extension.
func BenchmarkSection61ReconfigModes(b *testing.B) {
	ctx := benchContext()
	if _, err := ctx.Framework(); err != nil {
		b.Fatal(err)
	}
	w := benchOut(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ReconfigModes(ctx, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationForest quantifies the paper's model choice: a single
// decision tree versus a random forest on the same corpus — accuracy vs
// footprint and inference latency (§3.1's "lightweight footprint and
// low-latency inference" argument).
func BenchmarkAblationForest(b *testing.B) {
	ctx := benchContext()
	fw, err := ctx.Framework()
	if err != nil {
		b.Fatal(err)
	}
	x, y := fw.Corpus.X(), fw.Corpus.Labels()
	rng := rand.New(rand.NewSource(55))
	train, test := mltree.StratifiedSplit(y, misam.NumDesigns, 0.7, rng)
	trX := make([][]float64, len(train))
	trY := make([]int, len(train))
	for i, j := range train {
		trX[i], trY[i] = x[j], y[j]
	}
	teX := make([][]float64, len(test))
	teY := make([]int, len(test))
	for i, j := range test {
		teX[i], teY[i] = x[j], y[j]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err := mltree.TrainClassifier(trX, trY, misam.NumDesigns,
			mltree.BalancedWeights(trY, misam.NumDesigns), mltree.Config{MaxDepth: 10, MinSamplesLeaf: 2})
		if err != nil {
			b.Fatal(err)
		}
		forest, err := mltree.TrainForest(trX, trY, misam.NumDesigns,
			mltree.BalancedWeights(trY, misam.NumDesigns),
			mltree.ForestConfig{Trees: 25, Tree: mltree.Config{MaxDepth: 10, MinSamplesLeaf: 2}, FeatureFraction: 0.6, Seed: 55})
		if err != nil {
			b.Fatal(err)
		}
		if testing.Verbose() && i == 0 {
			fmt.Printf("tree: accuracy %.3f, %d nodes; forest: accuracy %.3f, %d nodes\n",
				mltree.Accuracy(tree.PredictBatch(teX), teY), tree.NumNodes(),
				mltree.Accuracy(forest.PredictBatch(teX), teY), forest.NumNodes())
		}
	}
}

// BenchmarkAblationOneHotPredictor compares the production per-design
// latency trees against the single-tree one-hot encoding: the one-hot
// variant can pool all four designs into one leaf, predicting zero gain
// and paralyzing the reconfiguration engine.
func BenchmarkAblationOneHotPredictor(b *testing.B) {
	ctx := benchContext()
	fw, err := ctx.Framework()
	if err != nil {
		b.Fatal(err)
	}
	corpus := fw.Corpus
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One-hot single tree.
		x, y := dataset.GenerateLatency(corpus)
		oneHot, err := mltree.TrainRegressor(x, y, mltree.Config{MaxDepth: 16, MinSamplesLeaf: 2})
		if err != nil {
			b.Fatal(err)
		}
		// Per-design trees (the production predictor).
		perDesign, err := reconfig.TrainLatencyPredictor(corpus, mltree.Config{MaxDepth: 16, MinSamplesLeaf: 2})
		if err != nil {
			b.Fatal(err)
		}
		if testing.Verbose() && i == 0 {
			// How often does each predictor distinguish the best design
			// from the worst on training samples?
			distinct := func(pred func(s *dataset.Sample, id sim.DesignID) float64) float64 {
				n := 0
				for j := range corpus.Samples {
					s := &corpus.Samples[j]
					lo, hi := pred(s, sim.Design1), pred(s, sim.Design1)
					for _, id := range sim.AllDesigns {
						p := pred(s, id)
						if p < lo {
							lo = p
						}
						if p > hi {
							hi = p
						}
					}
					if hi > lo {
						n++
					}
				}
				return float64(n) / float64(len(corpus.Samples))
			}
			oneHotDistinct := distinct(func(s *dataset.Sample, id sim.DesignID) float64 {
				return oneHot.Predict(dataset.LatencyRecordFeatures(s.Features, id))
			})
			perDesignDistinct := distinct(func(s *dataset.Sample, id sim.DesignID) float64 {
				return perDesign.PredictTarget(s.Features, id)
			})
			fmt.Printf("design-distinguishing predictions: one-hot %.1f%%, per-design %.1f%%\n",
				oneHotDistinct*100, perDesignDistinct*100)
		}
	}
}

// BenchmarkExtensionLearningCurve runs the §6.3 retraining study.
func BenchmarkExtensionLearningCurve(b *testing.B) {
	ctx := benchContext()
	if _, err := ctx.Framework(); err != nil {
		b.Fatal(err)
	}
	w := benchOut(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LearningCurve(ctx, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionPhases runs the evolving-sparsity adaptation study.
func BenchmarkExtensionPhases(b *testing.B) {
	ctx := benchContext()
	if _, err := ctx.Framework(); err != nil {
		b.Fatal(err)
	}
	w := benchOut(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Phases(ctx, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDepGap sweeps the accumulator dependency depth — the
// one scheduling constant this reproduction calibrates (Figure 6's toy
// uses 2; the production designs use 4). The design-win distribution over
// a mixed workload set shows how the constant shapes the D1/D2 boundary.
func BenchmarkAblationDepGap(b *testing.B) {
	rng := rand.New(rand.NewSource(66))
	type wl struct{ a, bm *sparse.CSR }
	var wls []wl
	for i := 0; i < 6; i++ {
		n := 300 + i*400
		wls = append(wls, wl{
			a:  sparse.Uniform(rng, n, n, 0.004/float64(i+1)*float64(1+i%3)),
			bm: sparse.DenseRandom(rng, n, 8<<(i%3)),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, gap := range []int64{2, 4, 6, 8} {
			wins := map[sim.DesignID]int{}
			for _, w := range wls {
				best, bestSec := sim.Design1, 0.0
				for _, id := range sim.SpMMDesigns {
					cfg := sim.GetConfig(id)
					cfg.DepGapCycles = gap
					r, err := sim.Simulate(cfg, w.a, w.bm)
					if err != nil {
						b.Fatal(err)
					}
					if bestSec == 0 || r.Seconds < bestSec {
						best, bestSec = id, r.Seconds
					}
				}
				wins[best]++
			}
			if testing.Verbose() && i == 0 {
				fmt.Printf("depgap %d: wins D1=%d D2=%d D3=%d\n",
					gap, wins[sim.Design1], wins[sim.Design2], wins[sim.Design3])
			}
		}
	}
}

var (
	cacheBenchFW   *misam.Framework
	cacheBenchOnce sync.Once
	cacheBenchErr  error
)

// cacheBenchFramework trains a tiny fixed-seed framework shared by the
// analysis-cache benchmarks (separate from benchContext so `-bench
// Cache` pays no figure-scale training).
func cacheBenchFramework(b *testing.B) *misam.Framework {
	b.Helper()
	cacheBenchOnce.Do(func() {
		cacheBenchFW, cacheBenchErr = misam.Train(misam.TrainOptions{
			CorpusSize: 60, LatencyCorpusSize: 80, MaxDim: 256, Seed: 7})
	})
	if cacheBenchErr != nil {
		b.Fatal(cacheBenchErr)
	}
	return cacheBenchFW
}

func cacheBenchOperands() (*misam.Matrix, *misam.Matrix) {
	return misam.RandPowerLaw(61, 4000, 4000, 32000, 1.9), misam.RandDense(62, 4000, 48)
}

func analyzeFresh(b *testing.B, fw *misam.Framework, dev *misam.Accelerator, a, m *misam.Matrix) {
	b.Helper()
	// A fresh workload per call: workload-precompute reuse must not be
	// what the cached variants measure.
	wl, err := misam.NewWorkload(a, m)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := fw.AnalyzeOn(context.Background(), dev, wl); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAnalyzeCacheCold is the uncached serving baseline the warm
// and coalesced variants are read against.
func BenchmarkAnalyzeCacheCold(b *testing.B) {
	fw := cacheBenchFramework(b)
	a, m := cacheBenchOperands()
	dev := fw.NewDevice("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzeFresh(b, fw, dev, a, m)
	}
}

// BenchmarkAnalyzeCacheWarm times repeated requests for one resident
// pair: fingerprint + cache lookup + per-request pricing.
func BenchmarkAnalyzeCacheWarm(b *testing.B) {
	fw := *cacheBenchFramework(b)
	cfw := (&fw).WithCache(64 << 20)
	a, m := cacheBenchOperands()
	dev := cfw.NewDevice("bench")
	analyzeFresh(b, cfw, dev, a, m) // prime the entry
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzeFresh(b, cfw, dev, a, m)
	}
}

// BenchmarkAnalyzeCacheCoalesced times a 16-way burst of identical
// concurrent requests against a cold cache: singleflight runs one
// simulation, the other 15 wait and share it.
func BenchmarkAnalyzeCacheCoalesced(b *testing.B) {
	base := cacheBenchFramework(b)
	a, m := cacheBenchOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw := *base
		cfw := (&fw).WithCache(64 << 20)
		dev := cfw.NewDevice("bench")
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				analyzeFresh(b, cfw, dev, a, m)
			}()
		}
		wg.Wait()
	}
}

func analyzeFastFresh(b *testing.B, fw *misam.Framework, dev *misam.Accelerator, a, m *misam.Matrix) {
	b.Helper()
	wl, err := misam.NewWorkload(a, m)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := fw.AnalyzeFastOn(context.Background(), dev, wl)
	if err != nil {
		b.Fatal(err)
	}
	if rep.Path != misam.PathFast {
		b.Fatalf("request fell to the slow path (path %q)", rep.Path)
	}
}

// BenchmarkAnalyzeFastPathWarm times the fast tier with a resident
// features entry: fingerprint + features-cache hit + tree walk +
// regressor pricing. Read against BenchmarkAnalyzeCacheCold for the
// fast-vs-full-simulation serving gap.
func BenchmarkAnalyzeFastPathWarm(b *testing.B) {
	fw := *cacheBenchFramework(b)
	cfw := (&fw).WithCache(64 << 20).WithFastPath(misam.FastPathConfig{Confidence: 0, VerifySample: 0})
	defer cfw.Close()
	a, m := cacheBenchOperands()
	dev := cfw.NewDevice("bench")
	analyzeFastFresh(b, cfw, dev, a, m) // prime the features entry
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzeFastFresh(b, cfw, dev, a, m)
	}
}

// BenchmarkAnalyzeFastPathCold times the cache-miss fast tier — feature
// extraction plus model serving, no simulation — the latency a distinct
// high-confidence request pays.
func BenchmarkAnalyzeFastPathCold(b *testing.B) {
	fw := *cacheBenchFramework(b)
	// No cache: every request extracts features from the operands.
	cfw := (&fw).WithFastPath(misam.FastPathConfig{Confidence: 0, VerifySample: 0})
	defer cfw.Close()
	a, m := cacheBenchOperands()
	dev := cfw.NewDevice("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzeFastFresh(b, cfw, dev, a, m)
	}
}
