package misam

// Confidence-gated two-tier serving (the paper's §3/§5.3 thesis taken
// seriously): the decision tree was trained to *replace* the expensive
// oracle, so the serving hot path should run the tree, not the
// simulator. AnalyzeFast serves tier 1 — features, compiled-tree
// proposal, and a Decision priced entirely from the snapshot's latency
// regressors — whenever the selector leaf is confident enough. Requests
// the model is unsure about, plus a deterministic 1-in-N audit sample,
// fall through to tier 2, the full four-simulation pipeline (AnalyzeOn).
// A bounded background verifier re-simulates a sample of fast-path hits
// off the request path and feeds the labelled traces to the online
// adaptation loop, which would otherwise starve the moment simulation
// left the request path.

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"misam/internal/features"
	"misam/internal/memo"
	"misam/internal/online"
	"misam/internal/sim"
)

// Report.Path values.
const (
	// PathFull marks a report produced by the full-simulation pipeline.
	PathFull = "full"
	// PathFast marks a report served from the model alone: the chosen
	// design was priced by the latency regressors and never simulated, so
	// SimulatedSeconds, Cycles, PEUtilization and EnergyJoules are zero.
	PathFast = "fast"
)

// FastPathConfig tunes the confidence-gated tier.
type FastPathConfig struct {
	// Confidence is the gate: a request is served from the model when the
	// selector leaf's probability mass for the proposed design is at
	// least this. Values >= 1 disable the fast path entirely — every
	// request takes the full pipeline, bit-identical to a framework
	// without WithFastPath.
	Confidence float64
	// MinMargin additionally requires the leaf's margin over the
	// runner-up design (confidence minus the runner-up's mass). Zero
	// imposes no margin requirement.
	MinMargin float64
	// SlowEvery forces every Nth gate-passing request down the full
	// pipeline anyway, keeping a deterministic simulated sample of the
	// high-confidence slice on the request path. 0 disables.
	SlowEvery int
	// VerifySample offers one in N fast-path hits to the background
	// verifier for asynchronous re-simulation. 0 disables verification.
	VerifySample int
	// VerifyWorkers and VerifyQueue bound the verifier pool (defaulted
	// when <= 0).
	VerifyWorkers int
	VerifyQueue   int
	// PrunedVerify runs background audits through the pruned slow tier
	// (coarse-then-exact + early-exit) instead of the exact four-design
	// pipeline. The audit's argmin and the winner's Result are unchanged
	// — pruning is exactness-preserving for both — but pruned losers
	// carry lower bounds, which the trace marks so the retrainer never
	// fits a regressor to them. Pruned audits bypass the analysis cache:
	// its entries promise exact Results for arbitrary targets.
	PrunedVerify bool
}

// DefaultFastPathConfig serves at 0.9 leaf confidence and audits one in
// eight fast-path hits with two background workers.
func DefaultFastPathConfig() FastPathConfig {
	return FastPathConfig{
		Confidence:    0.9,
		VerifySample:  8,
		VerifyWorkers: 2,
		VerifyQueue:   256,
	}
}

func (c FastPathConfig) withDefaults() FastPathConfig {
	if c.VerifyWorkers <= 0 {
		c.VerifyWorkers = 2
	}
	if c.VerifyQueue <= 0 {
		c.VerifyQueue = 256
	}
	return c
}

// FastPathStats snapshot the two-tier counters. Invariants (pinned by the
// hammer test): Served == Fast + Slow, and in the verifier
// Verified + Errors + queued ≤ Offered with Offered counted only on
// fast-path hits.
type FastPathStats struct {
	// Enabled reports whether the gate can ever pass (Confidence < 1).
	Enabled bool `json:"enabled"`
	// Confidence echoes the configured gate threshold.
	Confidence float64 `json:"confidence"`
	// Served counts every AnalyzeFast request; Fast the ones answered
	// from the model; Slow the ones that fell through to full simulation
	// (low confidence, margin miss, SlowEvery sample, or disabled gate).
	Served int64 `json:"served"`
	Fast   int64 `json:"fast"`
	Slow   int64 `json:"slow"`
	// Verifier holds the background audit counters (zero when
	// verification is disabled).
	Verifier online.VerifierStats `json:"verifier"`
}

// fastPath is the per-framework two-tier state.
type fastPath struct {
	cfg      FastPathConfig
	verifier *online.Verifier

	served    atomic.Int64
	fast      atomic.Int64
	slow      atomic.Int64
	gateSeq   atomic.Int64 // SlowEvery sampling counter
	verifySeq atomic.Int64 // VerifySample sampling counter
}

// WithFastPath enables the confidence-gated tier, returning f for
// chaining. Enable once at setup, before serving traffic; combine with
// WithTraceCapture when the background verifier should feed the online
// adaptation loop (without a collector the verifier still maintains
// agreement counters). Call Close when done to stop the verifier pool.
func (f *Framework) WithFastPath(cfg FastPathConfig) *Framework {
	cfg = cfg.withDefaults()
	fp := &fastPath{cfg: cfg}
	if cfg.VerifySample > 0 {
		fp.verifier = online.NewVerifier(f.traces, cfg.VerifyWorkers, cfg.VerifyQueue)
	}
	f.fastpath = fp
	return f
}

// FastPathStats snapshots the two-tier counters; ok is false when
// WithFastPath was never called.
func (f *Framework) FastPathStats() (st FastPathStats, ok bool) {
	fp := f.fastpath
	if fp == nil {
		return FastPathStats{}, false
	}
	st = FastPathStats{
		Enabled:    fp.cfg.Confidence < 1,
		Confidence: fp.cfg.Confidence,
		Served:     fp.served.Load(),
		Fast:       fp.fast.Load(),
		Slow:       fp.slow.Load(),
	}
	if fp.verifier != nil {
		st.Verifier = fp.verifier.Stats()
	}
	return st, true
}

// DrainVerifier blocks until the background verifier has finished every
// accepted job, or ctx expires. A no-op without an enabled verifier —
// tests and stream-replay drivers use it to flush audit traces before
// checking drift.
func (f *Framework) DrainVerifier(ctx context.Context) error {
	fp := f.fastpath
	if fp == nil || fp.verifier == nil {
		return nil
	}
	return fp.verifier.Drain(ctx)
}

// Close stops the background verifier pool, if any. The framework
// remains usable for serving; only asynchronous verification stops
// (subsequent fast-path hits count their verify offers as drops).
func (f *Framework) Close() {
	if fp := f.fastpath; fp != nil && fp.verifier != nil {
		fp.verifier.Close()
	}
}

// AnalyzeFast is Analyze through the two-tier pipeline on the
// framework's default device.
func (f *Framework) AnalyzeFast(ctx context.Context, a, b *Matrix) (Report, error) {
	w, err := sim.NewWorkload(a, b)
	if err != nil {
		return Report{}, fmt.Errorf("misam: analyze: %w", err)
	}
	return f.AnalyzeFastOn(ctx, f.device, w)
}

// AnalyzeFastOn serves one request through the confidence gate against
// dev. High-confidence requests are answered from the model snapshot
// alone: compiled-tree proposal, decide/apply priced by the latency
// regressors, PredictedSeconds as the latency estimate, and zero
// simulator-derived fields (Path reports which tier answered). Everything
// else — low confidence, thin margin, the SlowEvery audit sample, or a
// framework without WithFastPath — delegates to AnalyzeOn unchanged.
func (f *Framework) AnalyzeFastOn(ctx context.Context, dev *Accelerator, w *sim.Workload) (Report, error) {
	fp := f.fastpath
	if fp == nil {
		return f.AnalyzeOn(ctx, dev, w)
	}
	fp.served.Add(1)
	if fp.cfg.Confidence >= 1 {
		// Gate can never pass: skip straight to the full pipeline without
		// spending a feature extraction on the gate. This is the
		// bit-identical-at-threshold-1.0 contract.
		fp.slow.Add(1)
		return f.AnalyzeOn(ctx, dev, w)
	}
	if ctx == nil {
		ctx = context.Background()
	}

	t0 := time.Now()
	ent, _, err := f.fastEntry(ctx, w)
	if err != nil {
		fp.slow.Add(1)
		return Report{Device: dev.Name(), Path: PathFull}, fmt.Errorf("misam: analyze: %w", err)
	}
	v := ent.Features
	pre := time.Since(t0).Seconds()

	// One snapshot for gate, pricing and prediction (and for stamping the
	// verify job) — a concurrent promotion can never split one request
	// across model generations.
	snap := f.snapshot()
	t1 := time.Now()
	proposed, conf, margin := snap.SelectConfident(v)
	pass := conf >= fp.cfg.Confidence && margin >= fp.cfg.MinMargin
	if pass && fp.cfg.SlowEvery > 0 && fp.gateSeq.Add(1)%int64(fp.cfg.SlowEvery) == 0 {
		pass = false
	}
	if !pass {
		fp.slow.Add(1)
		rep, err := f.AnalyzeOn(ctx, dev, w)
		rep.Confidence = conf
		return rep, err
	}
	fp.fast.Add(1)
	if f.traces != nil {
		// A fast hit never simulates, so it offers no training trace —
		// but its proposal is bitstream demand the portfolio rebalancer
		// must see, or a fast-path-dominated fleet would rebalance on
		// the unrepresentative slow-tier slice alone.
		f.traces.ObserveProposal(proposed)
	}

	dec := dev.DecideApplyWith(snap.Engine(), v, proposed, 1)
	var rep Report
	rep.Device = dev.Name()
	rep.Path = PathFast
	rep.Confidence = conf
	rep.ModelVersion = snap.Version()
	rep.PreprocessSeconds = pre
	rep.InferenceSeconds = time.Since(t1).Seconds()
	rep.Design = dec.Target
	rep.Reconfigured = dec.Reconfigure
	rep.ReconfigSec = dec.ReconfigSeconds
	rep.PredictedSeconds = snap.Engine().Predictor.Predict(v, dec.Target)
	// No simulation ran: the predicted latency stands in for the hardware
	// time, and the simulator-only fields stay zero.
	rep.TotalSeconds = rep.PreprocessSeconds + rep.InferenceSeconds + rep.ReconfigSec + rep.PredictedSeconds

	f.maybeOfferVerify(fp, snap.Version(), v, proposed, func() (*Workload, error) { return w, nil })
	return rep, nil
}

// maybeOfferVerify samples 1-in-VerifySample fast hits into the
// background verifier. workload is resolved at offer time, inside the
// request — the zero-copy wire path uses this to hand the audit an
// independent DecodeCopy, since the job outlives the pooled request
// buffer its own matrices alias. A workload error silently skips the
// offer (the serving answer already shipped; an audit must never fail a
// request).
func (f *Framework) maybeOfferVerify(fp *fastPath, version uint64, v features.Vector, proposed Design, workload func() (*Workload, error)) {
	if fp.verifier == nil || fp.cfg.VerifySample <= 0 ||
		(fp.verifySeq.Add(1)-1)%int64(fp.cfg.VerifySample) != 0 {
		return
	}
	w, err := workload()
	if err != nil {
		return
	}
	// The audit re-simulates a pair the serving path just built; with the
	// shared tile cache attached, its schedules come from that run's
	// memoized tiles instead of being recomputed.
	f.attachTileCache(w)
	fp.verifier.Offer(online.VerifyJob{
		Features:     v,
		Predicted:    proposed,
		ModelVersion: version,
		Simulate: func(ctx context.Context) ([sim.NumDesigns]sim.Result, error) {
			if fp.cfg.PrunedVerify {
				// The pruned tier's loser entries are lower bounds, so
				// they must not populate the (exact-keyed) analysis
				// cache; simulate directly on the shared Workload.
				return w.SimulateAllPrunedCtx(ctx)
			}
			// Route through AnalysisFor: with a cache enabled the audit
			// also warms the pair's full Analysis for future requests.
			an, _, err := f.AnalysisFor(ctx, w)
			if err != nil {
				return [sim.NumDesigns]sim.Result{}, err
			}
			return an.Results, nil
		},
	})
}

// buildFastEntry derives the fast-path artifacts — the feature vector in
// the framework's flavour plus the baseline cost-model stats — from a
// workload. fused, when non-nil, backs the full-flavour extraction with
// pooled one-pass scratch (bit-identical to features.Extract either way).
func (f *Framework) buildFastEntry(ctx context.Context, w *Workload, fused *features.FusedScratch) (memo.FastEntry, error) {
	if err := ctx.Err(); err != nil {
		return memo.FastEntry{}, err
	}
	var e memo.FastEntry
	switch {
	case f.Options.TopFeaturesOnly:
		e.Features = features.ExtractPruned(w.A, w.B)
	case fused != nil:
		e.Features, _ = fused.Extract(w.A, w.B)
	default:
		e.Features = features.Extract(w.A, w.B)
	}
	e.Baseline = w.BaselineStats()
	return e, nil
}

// fastEntry resolves the request's fast-path entry (features + baseline
// stats), through the cache's fast entries when a cache is enabled
// (salted keyspace — never confused with full Analyses).
func (f *Framework) fastEntry(ctx context.Context, w *Workload) (memo.FastEntry, bool, error) {
	if f.cache == nil {
		e, err := f.buildFastEntry(ctx, w, nil)
		return e, false, err
	}
	return f.cache.DoFast(ctx, f.analysisKey(w.A, w.B), func(ctx context.Context) (memo.FastEntry, error) {
		return f.buildFastEntry(ctx, w, nil)
	})
}
