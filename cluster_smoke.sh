#!/usr/bin/env sh
# Two-node loopback cluster smoke: boots two misam-serve processes from
# the same small model file and drives the PR9 serving properties over
# the public API — a repeated operand routes to one owner and warms its
# cache, forwarding counters show up in /v1/cluster, boot replication
# converges the registries, and an operator rollback on one node
# propagates to the other.
set -eu

TMP="${TMPDIR:-/tmp}/misam_cluster_smoke.$$"
mkdir -p "$TMP"

PID_A=""
PID_B=""
cleanup() {
    [ -n "$PID_A" ] && kill "$PID_A" 2>/dev/null || true
    [ -n "$PID_B" ] && kill "$PID_B" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

PORT_A=18097
PORT_B=18098
URL_A="http://127.0.0.1:$PORT_A"
URL_B="http://127.0.0.1:$PORT_B"

# wait_until SECONDS WHAT CMD...: poll CMD until it succeeds.
wait_until() {
    _tries=$(( $1 * 10 )); shift
    _what=$1; shift
    while [ "$_tries" -gt 0 ]; do
        if "$@" >/dev/null 2>&1; then return 0; fi
        _tries=$(( _tries - 1 ))
        sleep 0.1
    done
    echo "cluster smoke: timed out waiting for $_what" >&2
    [ -f "$TMP/a.log" ] && { echo "--- node A log:"; cat "$TMP/a.log"; } >&2
    [ -f "$TMP/b.log" ] && { echo "--- node B log:"; cat "$TMP/b.log"; } >&2
    exit 1
}

echo "==> training a small model for the cluster smoke"
go run ./cmd/misam-train -o "$TMP/model" -corpus 120 -latency-corpus 200 -maxdim 256 >/dev/null

echo "==> booting two loopback misam-serve nodes"
go build -o "$TMP/misam-serve" ./cmd/misam-serve
"$TMP/misam-serve" -addr "127.0.0.1:$PORT_A" -model "$TMP/model" \
    -node-id "$URL_A" -peers "$URL_B" -cluster-sync-interval 200ms \
    >"$TMP/a.log" 2>&1 &
PID_A=$!
"$TMP/misam-serve" -addr "127.0.0.1:$PORT_B" -model "$TMP/model" \
    -node-id "$URL_B" -peers "$URL_A" -cluster-sync-interval 200ms \
    >"$TMP/b.log" 2>&1 &
PID_B=$!
wait_until 30 "node A to come up" curl -fsS "$URL_A/healthz"
wait_until 30 "node B to come up" curl -fsS "$URL_B/healthz"

# Boot replication: both nodes stamp the same file-loaded model (1, self);
# the Lamport origin tie-break makes exactly one node apply the other's
# push, minting a source=sync registry version there.
echo "==> waiting for boot replication to converge"
wait_until 15 "a sync snapshot on one node" \
    sh -c "curl -fsS $URL_A/v1/models $URL_B/v1/models | grep -q '\"source\":\"sync\"'"
if curl -fsS "$URL_A/v1/models" | grep -q '"source":"sync"'; then
    LOSER=$URL_A; WINNER=$URL_B
else
    LOSER=$URL_B; WINNER=$URL_A
fi
echo "    sync winner $WINNER, loser $LOSER"

# Routing: the same operand pair through both nodes, twice each, must be
# served by one owner every time (the "node" response field), leaving the
# owner's cache warm and the non-owner's forward counter hot.
echo "==> repeated operand routes to one owner"
REQ='{"a_spec":"uniform:120:100:0.05","b_spec":"uniform:100:80:0.08","seed":11}'
NODES=""
for u in "$URL_A" "$URL_B" "$URL_A" "$URL_B"; do
    out=$(curl -fsS -X POST "$u/v1/analyze" -d "$REQ")
    node=$(printf '%s' "$out" | sed -n 's/.*"node":"\([^"]*\)".*/\1/p')
    if [ -z "$node" ]; then
        echo "cluster smoke: no node field in response from $u: $out" >&2
        exit 1
    fi
    NODES="$NODES $node"
done
# shellcheck disable=SC2086
set -- $NODES
OWNER=$1
for n in "$@"; do
    if [ "$n" != "$OWNER" ]; then
        echo "cluster smoke: repeated operand served by both $OWNER and $n" >&2
        exit 1
    fi
done
echo "    all 4 requests served by $OWNER"

fwd=$(curl -fsS "$URL_A/v1/cluster" "$URL_B/v1/cluster" |
    grep -o '"forwards":[0-9]*' | cut -d: -f2 | awk '{s+=$1} END {print s+0}')
if [ "$fwd" -lt 2 ]; then
    echo "cluster smoke: only $fwd forwards recorded, want >= 2" >&2
    exit 1
fi
hits=$(curl -fsS "$OWNER/v1/stats" | grep -o '"hits":[0-9]*' | head -1 | cut -d: -f2)
if [ "${hits:-0}" -lt 3 ]; then
    echo "cluster smoke: owner served ${hits:-0} cache hits, want >= 3 (warm after one miss)" >&2
    exit 1
fi
echo "    $fwd forwards, owner cache warm ($hits hits)"

# Operator action propagates: roll the loser back to its boot model (it
# holds two versions); the rollback is a fresh local change that outranks
# every stamp seen, so the winner must apply a new sync snapshot.
echo "==> rollback on one node replicates to the other"
before=$(curl -fsS "$WINNER/v1/models" | grep -c '"source":"sync"' || true)
curl -fsS -X POST "$LOSER/v1/models/rollback" >/dev/null
wait_until 15 "the rollback to replicate" \
    sh -c "[ \$(curl -fsS $WINNER/v1/models | grep -c '\"source\":\"sync\"') -gt $before ]"
echo "    winner applied the loser's rollback"

echo "cluster smoke green"
