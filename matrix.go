package misam

import (
	"fmt"
	"io"
	"math/rand"

	"misam/internal/sparse"
)

// Matrix is a sparse matrix in compressed sparse row form — the format
// every framework entry point consumes.
type Matrix = sparse.CSR

// Entry is one coordinate-format nonzero, used by NewMatrix.
type Entry = sparse.Entry

// NewMatrix builds a CSR matrix from coordinate entries (duplicates are
// summed).
func NewMatrix(rows, cols int, entries []Entry) (*Matrix, error) {
	m := &sparse.COO{Rows: rows, Cols: cols, Entries: append([]Entry(nil), entries...)}
	m.Normalize()
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("misam: %w", err)
	}
	return m.ToCSR(), nil
}

// NewDenseMatrix builds a Matrix from row-major dense data, dropping
// exact zeros.
func NewDenseMatrix(rows, cols int, data []float64) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("misam: dense data length %d, want %d", len(data), rows*cols)
	}
	d := &sparse.Dense{Rows: rows, Cols: cols, Data: data}
	return d.ToCSR(), nil
}

// ReadMatrixMarket parses a MatrixMarket coordinate file (the SuiteSparse
// interchange format).
func ReadMatrixMarket(r io.Reader) (*Matrix, error) { return sparse.ReadMatrixMarket(r) }

// WriteMatrixMarket writes m in MatrixMarket coordinate format.
func WriteMatrixMarket(w io.Writer, m *Matrix) error { return sparse.WriteMatrixMarket(w, m) }

// RandUniform generates a uniformly sparse matrix at the given density.
func RandUniform(seed int64, rows, cols int, density float64) *Matrix {
	return sparse.Uniform(rand.New(rand.NewSource(seed)), rows, cols, density)
}

// RandPowerLaw generates a graph-like matrix with power-law row degrees.
func RandPowerLaw(seed int64, rows, cols, nnz int, alpha float64) *Matrix {
	return sparse.PowerLaw(rand.New(rand.NewSource(seed)), rows, cols, nnz, alpha)
}

// RandBanded generates a scientific-computing style banded matrix.
func RandBanded(seed int64, rows, cols, halfBandwidth int, fill float64) *Matrix {
	return sparse.Banded(rand.New(rand.NewSource(seed)), rows, cols, halfBandwidth, fill)
}

// RandDNNPruned generates a pruned weight-matrix pattern (structured
// groups of 4, as the paper's STR-pruned DNN workloads).
func RandDNNPruned(seed int64, rows, cols int, density float64) *Matrix {
	return sparse.DNNPruned(rand.New(rand.NewSource(seed)), rows, cols, density, true, 4)
}

// RandDense generates a fully dense random matrix.
func RandDense(seed int64, rows, cols int) *Matrix {
	return sparse.DenseRandom(rand.New(rand.NewSource(seed)), rows, cols)
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix { return sparse.Identity(n) }
