package misam

// Bitstream-aware fleet placement: the framework-side wiring of
// internal/placement. A request's predicted winner is known *before* a
// device is acquired — features are cheap (and cached), the compiled
// selector is microseconds — so the serving layer can hand the request
// an idle device that already holds the winning bitstream instead of
// whichever device happens to be longest idle. Placement is strictly
// advisory: the acquired device still runs the same decide/apply
// transaction against the same snapshot-consistent engine, so every
// analysis-derived report field is bit-identical to the FIFO pool's —
// placement changes which device pays, never the analysis result.

import (
	"context"
	"fmt"

	"misam/internal/placement"
)

// PlacementConfig tunes the placement cost model (see
// internal/placement.Request).
type PlacementConfig struct {
	// QueueWeight scales the queue-pressure term: each request queued
	// fleet-wide inflates a candidate's reconfiguration charge by this
	// fraction (<= 0 uses placement.DefaultQueueWeight).
	QueueWeight float64
}

// PlacementRequest is the per-request placement cost model; it
// satisfies the fleet's Scorer and carries the selector's proposal.
type PlacementRequest = placement.Request

// PlanPlacement builds the placement cost model for workload w: the
// feature vector (through the cache's features-only fast entries when a
// cache is enabled), the current snapshot's design proposal, and the
// per-design latency predictions — everything AcquirePlaced needs to
// score (device, design) candidates. One registry snapshot backs the
// whole plan, so scoring stays consistent while a promotion hot-swaps
// the registry; the proposal is advisory and the acquired device
// re-prices it in its own decide/apply transaction.
func (f *Framework) PlanPlacement(ctx context.Context, w *Workload, cfg PlacementConfig) (*PlacementRequest, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ent, _, err := f.fastEntry(ctx, w)
	if err != nil {
		return nil, fmt.Errorf("misam: placement plan: %w", err)
	}
	v := ent.Features
	snap := f.snapshot()
	return placement.NewRequest(snap.Engine(), v, snap.Select(v), cfg.QueueWeight), nil
}

// AcquirePlaced checks the predicted-cheapest device out of fl for
// workload w: the selector's proposed design is passed into
// acquisition, and among the idle devices the placement cost model's
// argmin wins — typically one already holding the winning bitstream.
// When every device is busy, admission falls back to the fleet's FIFO
// queue unchanged. The caller owns the device until fl.Release.
func (f *Framework) AcquirePlaced(ctx context.Context, fl *Fleet, w *Workload, cfg PlacementConfig) (*Accelerator, error) {
	req, err := f.PlanPlacement(ctx, w, cfg)
	if err != nil {
		return nil, err
	}
	return fl.AcquireScored(ctx, req.Proposed(), req)
}
