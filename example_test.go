package misam_test

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"misam"
)

// ExampleNewMatrix builds a matrix from coordinate entries.
func ExampleNewMatrix() {
	m, err := misam.NewMatrix(2, 3, []misam.Entry{
		{Row: 0, Col: 0, Val: 1},
		{Row: 0, Col: 2, Val: 2},
		{Row: 1, Col: 1, Val: 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.Rows, m.Cols, m.NNZ())
	fmt.Println(m.At(0, 2))
	// Output:
	// 2 3 3
	// 2
}

// ExampleReadMatrixMarket parses the SuiteSparse interchange format.
func ExampleReadMatrixMarket() {
	const mtx = `%%MatrixMarket matrix coordinate real general
3 3 2
1 1 4.0
3 2 -1.5
`
	m, err := misam.ReadMatrixMarket(strings.NewReader(mtx))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.NNZ(), m.At(2, 1))
	// Output:
	// 2 -1.5
}

// ExampleWriteMatrixMarket round-trips a matrix through the exchange
// format.
func ExampleWriteMatrixMarket() {
	m := misam.Identity(2)
	var buf bytes.Buffer
	if err := misam.WriteMatrixMarket(&buf, m); err != nil {
		log.Fatal(err)
	}
	back, err := misam.ReadMatrixMarket(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(back.NNZ())
	// Output:
	// 2
}

// ExampleMaxInstances reproduces the §6.2 packing arithmetic.
func ExampleMaxInstances() {
	fmt.Println(misam.MaxInstances(misam.Design1, 100))
	fmt.Println(misam.MaxInstances(misam.Design2, 100))
	// Output:
	// 1
	// 2
}

// ExampleSharedBitstream shows the free Design 2 ↔ Design 3 switch.
func ExampleSharedBitstream() {
	fmt.Println(misam.SharedBitstream(misam.Design2, misam.Design3))
	fmt.Println(misam.SharedBitstream(misam.Design1, misam.Design4))
	// Output:
	// true
	// false
}

// ExampleTrain shows the end-to-end selection pipeline. (Latency and
// design choice depend on the trained model, so nothing model-dependent
// is printed.)
func ExampleTrain() {
	fw, err := misam.Train(misam.TrainOptions{CorpusSize: 60, MaxDim: 256, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	a := misam.RandUniform(1, 500, 500, 0.01)
	b := misam.RandDense(2, 500, 32)
	c, report, err := fw.Multiply(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Rows, c.Cols)
	fmt.Println(report.Design >= misam.Design1 && report.Design <= misam.Design4)
	// Output:
	// 500 32
	// true
}
