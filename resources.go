package misam

import "misam/internal/sim"

// Resources is a design's fabric utilization (Table 2), in percent per
// resource class.
type Resources = sim.Resources

// DesignResources returns the Table 2 utilization estimate for a design.
func DesignResources(id Design) Resources { return sim.DesignResources(id) }

// MaxInstances reports how many independent copies of a design fit on the
// FPGA within `limit` percent of every resource class — the §6.2
// multi-tenancy estimate. Use 100 for raw fabric arithmetic or ~75 to
// reserve shell and routing headroom.
func MaxInstances(id Design, limit float64) int { return sim.MaxInstances(id, limit) }

// CanCoLocate reports whether the given design mix fits on the fabric
// concurrently within `limit` percent of every resource class.
func CanCoLocate(ids []Design, limit float64) bool { return sim.CanCoLocate(ids, limit) }

// SharedBitstream reports whether two designs can be swapped without an
// FPGA reconfiguration (Designs 2 and 3 share a bitstream, §4).
func SharedBitstream(a, b Design) bool { return sim.SharedBitstream(a, b) }

// BitstreamBytes models a design's bitstream size (§6.1: 50–80 MB).
func BitstreamBytes(id Design) int64 { return sim.BitstreamBytes(id) }
