// Command misam-sim drives the cycle-level simulator directly: it runs
// one design (or all four) on a workload, prints the cycle breakdown,
// host-preprocessing statistics (§3.2.1's pointer lists and packed A
// words), and — for small matrices — the per-PE timeline of Figure 6.
//
//	misam-sim -design 2 -a powerlaw:20000:80000 -b dense:64
//	misam-sim -design all -a uniform:4000:4000:0.002 -b self
//	misam-sim -design 1 -a uniform:16:16:0.2 -b dense:8 -timeline
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"misam/internal/sim"
	"misam/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("misam-sim: ")

	design := flag.String("design", "all", "1, 2, 3, 4 or all")
	aSpec := flag.String("a", "uniform:2000:2000:0.01", "matrix A generator spec")
	bSpec := flag.String("b", "dense:64", "matrix B generator spec or 'self'")
	seed := flag.Int64("seed", 1, "generator seed")
	timeline := flag.Bool("timeline", false, "render per-PE timelines (small matrices only)")
	spy := flag.Bool("spy", false, "render the operands' sparsity footprints")
	flag.Parse()

	a, err := parse(*aSpec, *seed, nil)
	if err != nil {
		log.Fatalf("matrix A: %v", err)
	}
	b, err := parse(*bSpec, *seed+1, a)
	if err != nil {
		log.Fatalf("matrix B: %v", err)
	}
	fmt.Printf("A: %dx%d nnz %d | B: %dx%d nnz %d\n\n", a.Rows, a.Cols, a.NNZ(), b.Rows, b.Cols, b.NNZ())
	if *spy {
		fmt.Printf("A footprint:\n%s\nB footprint:\n%s\n", sparse.Spy(a, 48, 16), sparse.Spy(b, 48, 16))
	}

	var designs []sim.DesignID
	if *design == "all" {
		designs = sim.AllDesigns
	} else {
		n, err := strconv.Atoi(*design)
		if err != nil || n < 1 || n > 4 {
			log.Fatalf("bad -design %q", *design)
		}
		designs = []sim.DesignID{sim.DesignID(n - 1)}
	}

	fmt.Printf("%-10s %12s %12s %10s %10s %10s %10s %8s %9s\n",
		"design", "cycles", "time(ms)", "compute", "A-read", "B-read", "C-write", "util", "bubbles")
	for _, id := range designs {
		r, err := sim.SimulateDesign(id, a, b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v %12d %12.4f %10d %10d %10d %10d %7.1f%% %9d\n",
			id, r.Cycles, r.Seconds*1e3, r.ComputeCycles, r.AReadCycles, r.BReadCycles,
			r.CWriteCycles, r.PEUtilization*100, r.Bubbles)

		h, err := sim.BuildHostSchedule(sim.GetConfig(id), a, b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("           host: %d A-words packed, %d tiles, %d host ops, %.1f%% lane padding\n",
			len(h.AWords), len(h.Tiles), h.HostOps, h.PaddingFraction()*100)

		if *timeline {
			if a.NNZ() > 256 {
				fmt.Println("           (timeline skipped: matrix too large; use a toy input)")
				continue
			}
			cfg := sim.GetConfig(id)
			groups := sim.ScheduleA(a, sim.ScheduleOptions{
				PEGs: cfg.PEG, PEsPerPEG: cfg.PEsPerPEG, Traversal: cfg.SchedulerA,
				DepGap: cfg.DepGapCycles, Window: cfg.WindowSize, Trace: true,
			})
			fmt.Fprint(os.Stdout, sim.RenderTimeline(groups, 64))
		}
	}
}

// parse builds a matrix from a generator spec (a subset of misam-run's).
func parse(spec string, seed int64, prev *sparse.CSR) (*sparse.CSR, error) {
	if spec == "self" {
		if prev == nil {
			return nil, fmt.Errorf("'self' only valid for B")
		}
		return prev, nil
	}
	parts := strings.Split(spec, ":")
	rng := rand.New(rand.NewSource(seed))
	atoi := func(i int) (int, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("spec %q missing field %d", spec, i)
		}
		return strconv.Atoi(parts[i])
	}
	switch parts[0] {
	case "uniform":
		rows, err := atoi(1)
		if err != nil {
			return nil, err
		}
		cols, err := atoi(2)
		if err != nil {
			return nil, err
		}
		if len(parts) < 4 {
			return nil, fmt.Errorf("uniform needs a density field")
		}
		dens, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return nil, err
		}
		return sparse.Uniform(rng, rows, cols, dens), nil
	case "dense":
		cols, err := atoi(1)
		if err != nil {
			return nil, err
		}
		rows := cols
		if prev != nil {
			rows = prev.Cols
		}
		return sparse.DenseRandom(rng, rows, cols), nil
	case "powerlaw":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		nnz, err := atoi(2)
		if err != nil {
			return nil, err
		}
		return sparse.PowerLaw(rng, n, n, nnz, 1.9), nil
	case "banded":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		half, err := atoi(2)
		if err != nil {
			return nil, err
		}
		return sparse.Banded(rng, n, n, half, 0.8), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", parts[0])
	}
}
