// Command misam-serve runs the selection service: a host daemon fronting
// a fleet of (simulated) FPGAs that accepts workloads over HTTP and
// answers with the selected design, the reconfiguration verdict, and
// latency/energy estimates. Requests are admitted per device — one
// in-flight analysis per accelerator, devices serving concurrently.
//
//	misam-serve -model misam.model -addr :8080 -devices 4 -timeout 30s
//	curl -s localhost:8080/v1/designs | jq
//	curl -s localhost:8080/v1/fleet | jq
//	curl -s localhost:8080/v1/stats | jq
//	curl -s -X POST localhost:8080/v1/analyze \
//	     -d '{"a_spec":"powerlaw:20000:80000","b_spec":"dense:64"}' | jq
//	curl -s -X POST localhost:8080/v1/analyze/batch \
//	     -d '{"items":[{"a_spec":"powerlaw:20000:80000","b_spec":"dense:64"},
//	                   {"a_spec":"uniform:3000:3000:0.002","b_spec":"self"}]}' | jq
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"misam"
	"misam/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("misam-serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	model := flag.String("model", "", "trained model file (trains a default model if empty)")
	devices := flag.Int("devices", 1, "accelerators in the fleet")
	timeout := flag.Duration("timeout", 0, "per-request deadline including device admission (0 = none)")
	maxBody := flag.Int64("max-body", 0, "request body cap in bytes (0 = default 8 MiB)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "analysis cache budget in bytes (0 disables caching)")
	flag.Parse()

	var fw *misam.Framework
	var err error
	if *model != "" {
		f, err := os.Open(*model)
		if err != nil {
			log.Fatal(err)
		}
		fw, err = misam.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Println("no -model given; training a default model...")
		fw, err = misam.Train(misam.DefaultTrainOptions())
		if err != nil {
			log.Fatal(err)
		}
	}

	srv := server.NewWithConfig(fw, server.Config{
		Devices:        *devices,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		CacheBytes:     *cacheBytes,
	})
	fmt.Printf("serving %d device(s) on %s (GET /healthz, GET /v1/designs, GET /v1/fleet, GET /v1/stats, POST /v1/analyze, POST /v1/analyze/batch)\n",
		*devices, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
