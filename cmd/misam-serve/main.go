// Command misam-serve runs the selection service: a host daemon fronting
// a fleet of (simulated) FPGAs that accepts workloads over HTTP and
// answers with the selected design, the reconfiguration verdict, and
// latency/energy estimates. Requests are admitted per device — one
// in-flight analysis per accelerator, devices serving concurrently.
//
// With -online the daemon also runs the continuous-learning loop:
// served analyses are sampled into a bounded trace buffer, drift against
// the training distribution is watched, and POST /v1/models/retrain (or
// the -retrain-interval background loop) trains a candidate on the
// traces, shadow-evaluates it against the live model, and promotes it
// into the versioned registry only when it wins.
//
//	misam-serve -model misam.model -addr :8080 -devices 4 -timeout 30s \
//	            -online -trace-sample 4 -retrain-interval 5m
//	curl -s localhost:8080/v1/designs | jq
//	curl -s localhost:8080/v1/fleet | jq
//	curl -s localhost:8080/v1/stats | jq
//	curl -s localhost:8080/v1/models | jq
//	curl -s -X POST localhost:8080/v1/models/retrain | jq
//	curl -s -X POST localhost:8080/v1/models/rollback | jq
//	curl -s -X POST localhost:8080/v1/analyze \
//	     -d '{"a_spec":"powerlaw:20000:80000","b_spec":"dense:64"}' | jq
//	curl -s -X POST localhost:8080/v1/analyze/batch \
//	     -d '{"items":[{"a_spec":"powerlaw:20000:80000","b_spec":"dense:64"},
//	                   {"a_spec":"uniform:3000:3000:0.002","b_spec":"self"}]}' | jq
//	misam-bench -dump-binary 'powerlaw:20000:80000,dense:64' |
//	    curl -s -X POST localhost:8080/v1/analyze \
//	         -H 'Content-Type: application/x-misam-csr' --data-binary @- | jq
//
// With -node-id and -peers the daemon joins a fingerprint-sharded
// cluster: requests route to the member owning their operand pair's
// content key, model promotions/rollbacks replicate to peers, and
// GET /v1/cluster (plus /v1/stats?scope=cluster) expose the ring and
// per-peer counters:
//
//	misam-serve -addr :8080 -node-id http://127.0.0.1:8080 -peers http://127.0.0.1:8081
//	misam-serve -addr :8081 -node-id http://127.0.0.1:8081 -peers http://127.0.0.1:8080
//	curl -s localhost:8080/v1/cluster | jq
//
// SIGINT/SIGTERM drain the server gracefully: in-flight requests get
// -drain to finish before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"misam"
	"misam/internal/cluster"
	"misam/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("misam-serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	model := flag.String("model", "", "trained model file (trains a default model if empty)")
	devices := flag.Int("devices", 1, "accelerators in the fleet")
	timeout := flag.Duration("timeout", 0, "per-request deadline including device admission (0 = none)")
	maxBody := flag.Int64("max-body", 0, "request body cap in bytes (0 = default 8 MiB)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "analysis cache budget in bytes (0 disables caching)")
	tileCacheBytes := flag.Int64("tile-cache-bytes", 64<<20, "shared tile-schedule cache budget in bytes (0 = per-workload private caches only)")
	onlineMode := flag.Bool("online", false, "enable trace capture, drift detection and registry-backed retraining")
	traceSample := flag.Int("trace-sample", 1, "record one in N served analyses into the trace buffer")
	traceCap := flag.Int("trace-capacity", 4096, "bounded trace buffer size")
	retrainEvery := flag.Duration("retrain-interval", 0, "background drift-check cadence (0 = retrain on demand only)")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown deadline for in-flight requests")
	fastPath := flag.Bool("fastpath", false, "serve high-confidence requests from the model without simulation")
	confidence := flag.Float64("confidence", 0.9, "fast-path gate: minimum selector leaf confidence (>= 1 disables the fast tier)")
	verifySample := flag.Int("verify-sample", 8, "re-simulate one in N fast-path hits in the background (<= 0 disables)")
	prunedVerify := flag.Bool("pruned-verify", false, "run background audits through the pruned slow tier (same argmin, lower-bound losers)")
	placementOn := flag.Bool("placement", false, "bitstream-aware device selection: route each request to the idle device where serving it is predicted cheapest")
	queueWeight := flag.Float64("queue-weight", 0, "placement cost model queue-pressure weight (<= 0 = package default)")
	rebalanceEvery := flag.Duration("rebalance-interval", 0, "background portfolio rebalancer cadence (0 = off; needs -placement)")
	binary := flag.Bool("binary", true, "accept application/x-misam-csr binary operand bodies on the analyze endpoints")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (own mux; off when empty)")
	nodeID := flag.String("node-id", "", "this node's advertised base URL in a cluster (e.g. http://10.0.0.1:8080; empty = no cluster)")
	peers := flag.String("peers", "", "comma-separated peer base URLs (requires -node-id)")
	syncEvery := flag.Duration("cluster-sync-interval", 2*time.Second, "registry replication push cadence")
	forwardRetries := flag.Int("forward-retries", 1, "extra forward attempts before a peer-owned request is served locally")
	flag.Parse()

	// Cluster flags fail fast: a malformed, duplicate or self-referential
	// -peers entry kills the process here — before the listener binds —
	// with the cluster package's named error, not at the first forward.
	var clusterCfg cluster.Config
	if *nodeID != "" || *peers != "" {
		if *nodeID == "" {
			log.Fatal("-peers needs -node-id (this node's own advertised URL)")
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		self, normalized, err := cluster.ValidateConfig(*nodeID, peerList)
		if err != nil {
			log.Fatal(err)
		}
		clusterCfg = cluster.Config{
			Self:           self,
			Peers:          normalized,
			SyncInterval:   *syncEvery,
			ForwardRetries: *forwardRetries,
		}
	}

	var fw *misam.Framework
	var err error
	if *model != "" {
		f, err := os.Open(*model)
		if err != nil {
			log.Fatal(err)
		}
		fw, err = misam.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Println("no -model given; training a default model...")
		fw, err = misam.Train(misam.DefaultTrainOptions())
		if err != nil {
			log.Fatal(err)
		}
	}

	srv, err := server.NewClustered(fw, server.Config{
		Devices:           *devices,
		RequestTimeout:    *timeout,
		MaxBodyBytes:      *maxBody,
		CacheBytes:        *cacheBytes,
		TileCacheBytes:    *tileCacheBytes,
		Online:            *onlineMode,
		TraceSample:       *traceSample,
		TraceCapacity:     *traceCap,
		RetrainInterval:   *retrainEvery,
		FastPath:          *fastPath,
		Confidence:        *confidence,
		VerifySample:      *verifySample,
		PrunedVerify:      *prunedVerify,
		Placement:         *placementOn,
		QueueWeight:       *queueWeight,
		RebalanceInterval: *rebalanceEvery,
		DisableBinary:     !*binary,
		Cluster:           clusterCfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	if *pprofAddr != "" {
		// The profiling listener gets its own mux so the pprof handlers
		// (which net/http/pprof registers on http.DefaultServeMux) are
		// never reachable through the public API address.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			host := *pprofAddr
			if host[0] == ':' {
				host = "localhost" + host
			}
			fmt.Printf("pprof on %s (e.g. go tool pprof http://%s/debug/pprof/profile?seconds=15)\n",
				*pprofAddr, host)
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	mode := ""
	if *onlineMode {
		mode = ", online adaptation on"
	}
	if *fastPath {
		mode += fmt.Sprintf(", fast path at %.2f confidence", *confidence)
	}
	if *placementOn {
		mode += ", placement on"
		if *rebalanceEvery > 0 {
			mode += fmt.Sprintf(", rebalancing every %s", *rebalanceEvery)
		}
	}
	if clusterCfg.Self != "" {
		mode += fmt.Sprintf(", cluster node %s with %d peer(s), syncing every %s",
			clusterCfg.Self, len(clusterCfg.Peers), *syncEvery)
	}
	fmt.Printf("serving %d device(s) on %s%s (GET /healthz /v1/designs /v1/fleet /v1/stats /v1/models /v1/cluster, POST /v1/analyze /v1/analyze/batch /v1/models/retrain /v1/models/rollback /v1/models/sync)\n",
		*devices, *addr, mode)

	// Graceful shutdown: trap SIGINT/SIGTERM and drain in-flight requests
	// through http.Server.Shutdown instead of dying mid-request.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		stop()
		fmt.Printf("signal received; draining for up to %s...\n", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("drain deadline exceeded: %v", err)
		}
		if st, ok := fw.TileCacheStats(); ok {
			fmt.Printf("slow tier: tile cache %d hits / %d misses (%.1f%% hit rate), %d evictions, %d bound aborts, %d coarse skips\n",
				st.Hits, st.Misses, 100*st.HitRate, st.Evictions, st.BoundAborts, st.CoarseSkips)
		}
		fmt.Println("shut down cleanly")
	}
}
