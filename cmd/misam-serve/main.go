// Command misam-serve runs the selection service: a host daemon fronting
// one (simulated) FPGA that accepts workloads over HTTP and answers with
// the selected design, the reconfiguration verdict, and latency/energy
// estimates.
//
//	misam-serve -model misam.model -addr :8080
//	curl -s localhost:8080/v1/designs | jq
//	curl -s -X POST localhost:8080/v1/analyze \
//	     -d '{"a_spec":"powerlaw:20000:80000","b_spec":"dense:64"}' | jq
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"misam"
	"misam/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("misam-serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	model := flag.String("model", "", "trained model file (trains a default model if empty)")
	flag.Parse()

	var fw *misam.Framework
	var err error
	if *model != "" {
		f, err := os.Open(*model)
		if err != nil {
			log.Fatal(err)
		}
		fw, err = misam.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Println("no -model given; training a default model...")
		fw, err = misam.Train(misam.DefaultTrainOptions())
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("serving on %s (GET /healthz, GET /v1/designs, POST /v1/analyze)\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, server.New(fw).Handler()))
}
