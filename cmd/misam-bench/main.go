// Command misam-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	misam-bench                      # every experiment at the default scale
//	misam-bench -experiment fig10    # one experiment
//	misam-bench -scale paper         # paper-scale corpora and workloads (slow)
//	misam-bench -scale quick         # smallest sizes (CI)
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"misam"
	"misam/internal/experiments"
)

// dumpBinarySpecs encodes each generator spec as a binary wire blob and
// writes the concatenation to w — a ready-made request body for the
// binary analyze endpoints (two specs per analyze pair). The grammar
// mirrors the server's: uniform:rows:cols:density, dense:cols,
// powerlaw:n:nnz, banded:n:halfbw, or "self" to repeat the previous
// matrix. Successive specs draw seeds seed, seed+1, ...
func dumpBinarySpecs(w io.Writer, specs string, seed int64) error {
	var prev *misam.Matrix
	var buf []byte
	for i, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		m, err := genSpec(spec, seed+int64(i), prev)
		if err != nil {
			return fmt.Errorf("spec %d (%q): %w", i, spec, err)
		}
		buf = misam.AppendMatrixBinary(buf, m)
		prev = m
	}
	_, err := w.Write(buf)
	return err
}

func genSpec(spec string, seed int64, prev *misam.Matrix) (*misam.Matrix, error) {
	if spec == "self" {
		if prev == nil {
			return nil, fmt.Errorf("'self' needs a preceding spec")
		}
		return prev, nil
	}
	parts := strings.Split(spec, ":")
	atoi := func(i int) (int, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("missing field %d", i)
		}
		v, err := strconv.Atoi(parts[i])
		if err != nil || v < 1 {
			return 0, fmt.Errorf("bad field %d", i)
		}
		return v, nil
	}
	switch parts[0] {
	case "uniform":
		rows, err := atoi(1)
		if err != nil {
			return nil, err
		}
		cols, err := atoi(2)
		if err != nil {
			return nil, err
		}
		if len(parts) < 4 {
			return nil, fmt.Errorf("uniform needs a density")
		}
		dens, err := strconv.ParseFloat(parts[3], 64)
		if err != nil || dens < 0 || dens > 1 {
			return nil, fmt.Errorf("bad density %q", parts[3])
		}
		return misam.RandUniform(seed, rows, cols, dens), nil
	case "dense":
		cols, err := atoi(1)
		if err != nil {
			return nil, err
		}
		rows := cols
		if prev != nil {
			rows = prev.Cols
		}
		return misam.RandDense(seed, rows, cols), nil
	case "powerlaw":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		nnz, err := atoi(2)
		if err != nil {
			return nil, err
		}
		return misam.RandPowerLaw(seed, n, n, nnz, 1.9), nil
	case "banded":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		half, err := atoi(2)
		if err != nil {
			return nil, err
		}
		return misam.RandBanded(seed, n, n, half, 0.8), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", parts[0])
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("misam-bench: ")

	scale := flag.String("scale", "default", "experiment scale: quick, default, or paper")
	experiment := flag.String("experiment", "all",
		"which experiment to run: all, fig1, fig3, fig4, fig6, fig8, fig9, fig10, fig11, fig12, fig13, table1, table2, table3, table4, table5, multitenant, router, objective, reconfigmodes, learningcurve, phases, heuristics, perf, fastpath, slowtier, placement, ingest, cluster")
	perfout := flag.String("perfout", "BENCH_PR3.json",
		"where the perf experiment writes its machine-readable report (empty to skip the file)")
	fastout := flag.String("fastout", "BENCH_PR5.json",
		"where the fastpath experiment writes its machine-readable report (empty to skip the file)")
	slowout := flag.String("slowout", "BENCH_PR10.json",
		"where the slowtier experiment writes its machine-readable report (empty to skip the file)")
	placeout := flag.String("placeout", "BENCH_PR7.json",
		"where the placement experiment writes its machine-readable report (empty to skip the file)")
	ingestout := flag.String("ingestout", "BENCH_PR8.json",
		"where the ingest experiment writes its machine-readable report (empty to skip the file)")
	clusterout := flag.String("clusterout", "BENCH_PR9.json",
		"where the cluster experiment writes its machine-readable report (empty to skip the file)")
	dumpBinary := flag.String("dump-binary", "",
		"comma-separated generator specs (e.g. 'uniform:200:200:0.05,dense:64'); encodes them as "+
			"concatenated binary wire blobs on stdout — pipe into curl for the binary analyze endpoints")
	dumpSeed := flag.Int64("dump-seed", 1, "seed for -dump-binary generator specs")
	flag.Parse()

	if *dumpBinary != "" {
		if err := dumpBinarySpecs(os.Stdout, *dumpBinary, *dumpSeed); err != nil {
			log.Fatalf("dump-binary: %v", err)
		}
		return
	}

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.QuickConfig()
	case "default":
		cfg = experiments.DefaultConfig()
	case "paper":
		cfg = experiments.PaperConfig()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	ctx := experiments.NewContext(cfg)
	w := os.Stdout

	type driver struct {
		name string
		run  func() error
	}
	drivers := []driver{
		{"fig1", func() error { experiments.Figure1(w); return nil }},
		{"table1", func() error { experiments.Table1(w); return nil }},
		{"table2", func() error { experiments.Table2(w); return nil }},
		{"table3", func() error { experiments.Table3(ctx, w); return nil }},
		{"fig6", func() error { experiments.Figure6(w); return nil }},
		{"fig3", func() error { _, err := experiments.Figure3(ctx, w); return err }},
		{"fig4", func() error { _, err := experiments.Figure4(ctx, w); return err }},
		{"table4", func() error { _, err := experiments.Table4(ctx, w); return err }},
		{"table5", func() error { _, err := experiments.Table5(ctx, w); return err }},
		{"fig8", func() error { _, err := experiments.Figure8(ctx, w); return err }},
		{"fig9", func() error { _, err := experiments.Figure9(ctx, w); return err }},
		{"fig10", func() error { _, err := experiments.Figure10(ctx, w); return err }},
		{"fig11", func() error { _, err := experiments.Figure11(ctx, w); return err }},
		{"fig12", func() error { _, err := experiments.Figure12(ctx, w); return err }},
		{"fig13", func() error { _, err := experiments.Figure13(ctx, w); return err }},
		{"multitenant", func() error { experiments.MultiTenant(w); return nil }},
		{"router", func() error { _, err := experiments.Router(ctx, w); return err }},
		{"objective", func() error { _, err := experiments.Objective(ctx, w); return err }},
		{"reconfigmodes", func() error { _, err := experiments.ReconfigModes(ctx, w); return err }},
		{"learningcurve", func() error { _, err := experiments.LearningCurve(ctx, w); return err }},
		{"phases", func() error { _, err := experiments.Phases(ctx, w); return err }},
		{"heuristics", func() error { _, err := experiments.Heuristics(ctx, w); return err }},
		// perf is opt-in (-experiment perf): it re-times the simulation
		// engine and rewrites the perf trajectory record (BENCH_PR3.json).
		{"perf", func() error { _, err := experiments.PerfReport(*perfout, w); return err }},
		// fastpath is opt-in too (-experiment fastpath): it re-times the
		// confidence-gated serving tiers and rewrites BENCH_PR5.json.
		{"fastpath", func() error { _, err := experiments.FastPathReport(ctx, *fastout, w); return err }},
		// slowtier is opt-in (-experiment slowtier): it re-times the exact
		// and pruned (memoized) simulation tiers and rewrites
		// BENCH_PR10.json.
		{"slowtier", func() error { _, err := experiments.SlowTierReport(ctx, *slowout, w); return err }},
		// placement is opt-in (-experiment placement): it replays a skewed
		// stream through the FIFO and placement pools and rewrites
		// BENCH_PR7.json. It publishes a CGRA-mode pricing snapshot into
		// the shared framework, so it runs with its own context.
		{"placement", func() error {
			_, err := experiments.PlacementReport(experiments.NewContext(cfg), *placeout, w)
			return err
		}},
		// ingest is opt-in (-experiment ingest): it benchmarks the binary
		// wire format against MatrixMarket/JSON ingestion and rewrites
		// BENCH_PR8.json.
		{"ingest", func() error { _, err := experiments.IngestReport(ctx, *ingestout, w); return err }},
		// cluster is opt-in (-experiment cluster): it replays a repeated
		// stream through a 2-node loopback cluster and a single node,
		// gates equivalence / warm-hit latency / peer-kill survival, and
		// rewrites BENCH_PR9.json. Like placement it publishes CGRA-mode
		// pricing snapshots, so it runs with its own context.
		{"cluster", func() error {
			_, err := experiments.ClusterReport(experiments.NewContext(cfg), *clusterout, w)
			return err
		}},
	}

	want := strings.ToLower(*experiment)
	ran := 0
	for _, d := range drivers {
		if want == "all" && (d.name == "perf" || d.name == "fastpath" || d.name == "slowtier" ||
			d.name == "placement" || d.name == "ingest" || d.name == "cluster") {
			continue
		}
		if want != "all" && want != d.name {
			continue
		}
		if err := d.run(); err != nil {
			log.Fatalf("%s: %v", d.name, err)
		}
		ran++
	}
	if ran == 0 {
		log.Fatalf("unknown experiment %q", *experiment)
	}
	fmt.Fprintf(w, "\n%d experiment(s) complete at scale %q\n", ran, *scale)
}
