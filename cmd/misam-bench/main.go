// Command misam-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	misam-bench                      # every experiment at the default scale
//	misam-bench -experiment fig10    # one experiment
//	misam-bench -scale paper         # paper-scale corpora and workloads (slow)
//	misam-bench -scale quick         # smallest sizes (CI)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"misam/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("misam-bench: ")

	scale := flag.String("scale", "default", "experiment scale: quick, default, or paper")
	experiment := flag.String("experiment", "all",
		"which experiment to run: all, fig1, fig3, fig4, fig6, fig8, fig9, fig10, fig11, fig12, fig13, table1, table2, table3, table4, table5, multitenant, router, objective, reconfigmodes, learningcurve, phases, heuristics, perf, fastpath, slowtier, placement")
	perfout := flag.String("perfout", "BENCH_PR3.json",
		"where the perf experiment writes its machine-readable report (empty to skip the file)")
	fastout := flag.String("fastout", "BENCH_PR5.json",
		"where the fastpath experiment writes its machine-readable report (empty to skip the file)")
	slowout := flag.String("slowout", "BENCH_PR6.json",
		"where the slowtier experiment writes its machine-readable report (empty to skip the file)")
	placeout := flag.String("placeout", "BENCH_PR7.json",
		"where the placement experiment writes its machine-readable report (empty to skip the file)")
	flag.Parse()

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.QuickConfig()
	case "default":
		cfg = experiments.DefaultConfig()
	case "paper":
		cfg = experiments.PaperConfig()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	ctx := experiments.NewContext(cfg)
	w := os.Stdout

	type driver struct {
		name string
		run  func() error
	}
	drivers := []driver{
		{"fig1", func() error { experiments.Figure1(w); return nil }},
		{"table1", func() error { experiments.Table1(w); return nil }},
		{"table2", func() error { experiments.Table2(w); return nil }},
		{"table3", func() error { experiments.Table3(ctx, w); return nil }},
		{"fig6", func() error { experiments.Figure6(w); return nil }},
		{"fig3", func() error { _, err := experiments.Figure3(ctx, w); return err }},
		{"fig4", func() error { _, err := experiments.Figure4(ctx, w); return err }},
		{"table4", func() error { _, err := experiments.Table4(ctx, w); return err }},
		{"table5", func() error { _, err := experiments.Table5(ctx, w); return err }},
		{"fig8", func() error { _, err := experiments.Figure8(ctx, w); return err }},
		{"fig9", func() error { _, err := experiments.Figure9(ctx, w); return err }},
		{"fig10", func() error { _, err := experiments.Figure10(ctx, w); return err }},
		{"fig11", func() error { _, err := experiments.Figure11(ctx, w); return err }},
		{"fig12", func() error { _, err := experiments.Figure12(ctx, w); return err }},
		{"fig13", func() error { _, err := experiments.Figure13(ctx, w); return err }},
		{"multitenant", func() error { experiments.MultiTenant(w); return nil }},
		{"router", func() error { _, err := experiments.Router(ctx, w); return err }},
		{"objective", func() error { _, err := experiments.Objective(ctx, w); return err }},
		{"reconfigmodes", func() error { _, err := experiments.ReconfigModes(ctx, w); return err }},
		{"learningcurve", func() error { _, err := experiments.LearningCurve(ctx, w); return err }},
		{"phases", func() error { _, err := experiments.Phases(ctx, w); return err }},
		{"heuristics", func() error { _, err := experiments.Heuristics(ctx, w); return err }},
		// perf is opt-in (-experiment perf): it re-times the simulation
		// engine and rewrites the perf trajectory record (BENCH_PR3.json).
		{"perf", func() error { _, err := experiments.PerfReport(*perfout, w); return err }},
		// fastpath is opt-in too (-experiment fastpath): it re-times the
		// confidence-gated serving tiers and rewrites BENCH_PR5.json.
		{"fastpath", func() error { _, err := experiments.FastPathReport(ctx, *fastout, w); return err }},
		// slowtier is opt-in (-experiment slowtier): it re-times the exact
		// and pruned simulation tiers and rewrites BENCH_PR6.json.
		{"slowtier", func() error { _, err := experiments.SlowTierReport(ctx, *slowout, w); return err }},
		// placement is opt-in (-experiment placement): it replays a skewed
		// stream through the FIFO and placement pools and rewrites
		// BENCH_PR7.json. It publishes a CGRA-mode pricing snapshot into
		// the shared framework, so it runs with its own context.
		{"placement", func() error {
			_, err := experiments.PlacementReport(experiments.NewContext(cfg), *placeout, w)
			return err
		}},
	}

	want := strings.ToLower(*experiment)
	ran := 0
	for _, d := range drivers {
		if want == "all" && (d.name == "perf" || d.name == "fastpath" || d.name == "slowtier" || d.name == "placement") {
			continue
		}
		if want != "all" && want != d.name {
			continue
		}
		if err := d.run(); err != nil {
			log.Fatalf("%s: %v", d.name, err)
		}
		ran++
	}
	if ran == 0 {
		log.Fatalf("unknown experiment %q", *experiment)
	}
	fmt.Fprintf(w, "\n%d experiment(s) complete at scale %q\n", ran, *scale)
}
