// Command misam-retrain exercises the online-adaptation loop offline: it
// replays a synthetic workload stream whose distribution shifts midway
// (dense-ish uniform pairs, then graph-like power-law pairs) through a
// framework with trace capture enabled, prints the drift detector's
// verdict at checkpoints, and — when drift fires or -force is given —
// retrains a candidate on the captured traces, shadow-evaluates it
// against the incumbent, and reports the promotion decision.
//
// Usage:
//
//	misam-retrain -model misam.model -phase1 96 -phase2 160
//	misam-retrain -corpus 400 -maxdim 256 -force
//
// With no -model a default model is trained first (-corpus, -maxdim and
// -seed control that corpus). The exit status is 0 whether or not the
// candidate is promoted — rejection is the gate working, not a failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"misam"
	"misam/internal/online"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("misam-retrain: ")

	model := flag.String("model", "", "trained model file (trains a default model if empty)")
	corpus := flag.Int("corpus", 400, "classifier corpus size when training the default model")
	maxDim := flag.Int("maxdim", 512, "maximum generated matrix dimension")
	seed := flag.Int64("seed", 1, "generation seed (corpus and replayed stream)")
	sample := flag.Int("sample", 1, "record one in N analyses into the trace buffer")
	capacity := flag.Int("capacity", 2048, "trace buffer capacity")
	phase1 := flag.Int("phase1", 96, "dense-ish uniform requests before the shift")
	phase2 := flag.Int("phase2", 160, "power-law requests after the shift")
	window := flag.Int("window", 64, "drift detector sliding window")
	minSamples := flag.Int("min-samples", 32, "traces required before the detector reports")
	minTraces := flag.Int("min-traces", 48, "traces required before retraining")
	checkpoint := flag.Int("checkpoint", 32, "drift-check cadence in requests")
	force := flag.Bool("force", false, "retrain even if the detector never fires")
	fastPath := flag.Bool("fastpath", false, "replay through the confidence-gated fast path (labels come from the background verifier)")
	confidence := flag.Float64("confidence", 0.6, "fast-path gate: minimum selector leaf confidence")
	verifySample := flag.Int("verify-sample", 1, "re-simulate one in N fast-path hits in the background")
	flag.Parse()

	fw := buildFramework(*model, *corpus, *maxDim, *seed)
	fw.WithTraceCapture(*capacity, *sample)
	if *fastPath {
		// The verifier must be wired after trace capture so its audit
		// traces land in the same collector the drift detector reads.
		fw.WithFastPath(misam.FastPathConfig{Confidence: *confidence, VerifySample: *verifySample})
		defer fw.Close()
	}

	// A trained framework carries its corpus, so the baseline is the real
	// training distribution; a file-loaded one self-calibrates on the
	// first full window of replayed traffic.
	baseline, err := fw.OnlineBaseline()
	if err != nil {
		fmt.Printf("no training corpus in model; self-calibrating baseline from first %d traces\n", *window)
	}
	mgr := online.NewManager(fw.Registry(), fw.Traces(), baseline, online.Config{
		Drift:   online.DriftConfig{Window: *window, MinSamples: *minSamples},
		Retrain: online.RetrainConfig{MinTraces: *minTraces, Seed: *seed},
	})

	ctx := context.Background()
	drifted := false
	analyze := fw.Analyze
	if *fastPath {
		analyze = fw.AnalyzeFast
	}
	replay := func(label string, n int, gen func(i int) (*misam.Matrix, *misam.Matrix)) {
		fmt.Printf("\n== %s: %d requests ==\n", label, n)
		for i := 0; i < n; i++ {
			a, b := gen(i)
			if _, err := analyze(ctx, a, b); err != nil {
				log.Fatalf("analyze: %v", err)
			}
			if (i+1)%*checkpoint == 0 || i == n-1 {
				if *fastPath {
					// Fast-path labels arrive asynchronously; let the
					// verifier catch up so the checkpoint reads a
					// complete window.
					dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
					if err := fw.DrainVerifier(dctx); err != nil {
						log.Printf("verifier drain: %v", err)
					}
					cancel()
				}
				rep := mgr.CheckDrift()
				printDrift(i+1, rep)
				if rep.Drifted {
					drifted = true
				}
			}
		}
	}

	// Phase 1: dense-ish uniform pairs — the regime the paper's dense
	// dataflows win. Phase 2 shifts to power-law graph matrices, the
	// regime that favours the sparse dataflows; the feature distribution
	// (density, row variance) moves enough for PSI to trip.
	dim := *maxDim
	if dim < 64 {
		dim = 64
	}
	replay("phase 1 (dense-ish uniform)", *phase1, func(i int) (*misam.Matrix, *misam.Matrix) {
		s := *seed + int64(i)*2
		n := 64 + int(s*37%int64(dim-63))
		return misam.RandUniform(s, n, n, 0.25), misam.RandUniform(s+1, n, n, 0.30)
	})
	replay("phase 2 (power-law shift)", *phase2, func(i int) (*misam.Matrix, *misam.Matrix) {
		s := *seed + 1_000_003 + int64(i)*2
		n := 128 + int(s*53%int64(dim-127))
		nnz := n * 8
		return misam.RandPowerLaw(s, n, n, nnz, 1.8), misam.RandPowerLaw(s+1, n, n, nnz, 1.6)
	})

	stats := fw.Traces().Stats()
	fmt.Printf("\ntraces: observed=%d sampled=%d resident=%d dropped=%d\n",
		stats.Observed, stats.Sampled, stats.Resident, stats.Dropped)
	if st, ok := fw.FastPathStats(); ok {
		fmt.Printf("fast path: served=%d fast=%d slow=%d  verifier offered=%d verified=%d agreed=%d dropped=%d\n",
			st.Served, st.Fast, st.Slow,
			st.Verifier.Offered, st.Verifier.Verified, st.Verifier.Agreed, st.Verifier.Dropped)
	}

	if !drifted && !*force {
		fmt.Println("detector never fired and -force not given; not retraining")
		return
	}
	note := "operator request"
	if drifted {
		note = "drift detected during replay"
	}
	fmt.Printf("\n== retraining (%s) ==\n", note)
	out, err := mgr.RetrainNow(note)
	if err != nil {
		log.Fatalf("retrain: %v", err)
	}
	fmt.Printf("train/holdout traces:  %d / %d\n", out.TrainTraces, out.HoldoutTraces)
	fmt.Printf("geomean slowdown vs oracle:  candidate %.4fx  incumbent %.4fx\n",
		out.CandidateGeomean, out.IncumbentGeomean)
	fmt.Printf("holdout accuracy:      candidate %.1f%%  incumbent %.1f%%\n",
		out.CandidateAccuracy*100, out.IncumbentAccuracy*100)
	if out.CrossValAccuracy > 0 {
		fmt.Printf("candidate cross-val accuracy: %.1f%%\n", out.CrossValAccuracy*100)
	}
	if out.Promote {
		fmt.Printf("PROMOTED: version %d -> %d\n", out.IncumbentVersion, out.CandidateVersion)
	} else {
		fmt.Printf("REJECTED: %s (incumbent version %d stays live)\n", out.Reason, out.IncumbentVersion)
	}

	fmt.Println("\nregistry:")
	cur := fw.Registry().Current().Version()
	for _, info := range fw.Registry().List() {
		marker := " "
		if info.Version == cur {
			marker = "*"
		}
		fmt.Printf("  %s v%d  source=%s  traces=%d  note=%q\n",
			marker, info.Version, info.Source, info.Traces, info.Note)
	}
}

func buildFramework(model string, corpus, maxDim int, seed int64) *misam.Framework {
	if model != "" {
		f, err := os.Open(model)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		fw, err := misam.Load(f)
		if err != nil {
			log.Fatal(err)
		}
		return fw
	}
	fmt.Printf("no -model given; training a default model (corpus %d, maxdim %d)...\n", corpus, maxDim)
	opts := misam.DefaultTrainOptions()
	opts.CorpusSize = corpus
	opts.LatencyCorpusSize = 2 * corpus
	opts.MaxDim = maxDim
	opts.Seed = seed
	fw, err := misam.Train(opts)
	if err != nil {
		log.Fatal(err)
	}
	return fw
}

func printDrift(served int, rep online.DriftReport) {
	if rep.PSI == nil {
		// Still calibrating or below the detector's minimum window.
		reason := "collecting traces"
		if len(rep.Reasons) > 0 {
			reason = rep.Reasons[0]
		}
		fmt.Printf("  [%4d served] %s\n", served, reason)
		return
	}
	verdict := "stable"
	if rep.Drifted {
		verdict = "DRIFT"
	}
	fmt.Printf("  [%4d served] %-6s max PSI %.3f (%s)  window acc %.1f%% (baseline %.1f%%)\n",
		served, verdict, rep.MaxPSI, rep.MaxPSIFeature, rep.WindowAccuracy*100, rep.BaselineAccuracy*100)
}
