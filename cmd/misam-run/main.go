// Command misam-run executes one sparse matrix multiplication through the
// full Misam pipeline: feature extraction, design selection, the
// reconfiguration decision, and cycle-level simulation of the chosen
// design, with CPU/GPU/Trapezoid baseline estimates alongside.
//
// Operands come either from MatrixMarket files or from the built-in
// generators:
//
//	misam-run -model misam.model -a matrix.mtx -b dense:512
//	misam-run -a powerlaw:20000:60000 -b uniform:20000:512:0.4
//	misam-run -a banded:10000:4 -b self
//
// Generator specs: uniform:<rows>:<cols>:<density>, dense:<cols> (rows
// inferred from A), powerlaw:<n>:<nnz>, banded:<n>:<halfbw>,
// dnn:<rows>:<cols>:<density>, self (B = A).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"misam"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("misam-run: ")

	model := flag.String("model", "", "trained model file from misam-train (trains a small model if empty)")
	aSpec := flag.String("a", "powerlaw:10000:40000", "matrix A: a .mtx path or generator spec")
	bSpec := flag.String("b", "dense:512", "matrix B: a .mtx path, generator spec, or 'self'")
	seed := flag.Int64("seed", 7, "generator seed")
	timeout := flag.Duration("timeout", 0, "abort the analysis after this long (0 = no limit)")
	flag.Parse()

	var fw *misam.Framework
	var err error
	if *model != "" {
		f, err := os.Open(*model)
		if err != nil {
			log.Fatal(err)
		}
		fw, err = misam.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Println("no -model given; training a small model (use misam-train for a production one)...")
		fw, err = misam.Train(misam.DefaultTrainOptions())
		if err != nil {
			log.Fatal(err)
		}
	}

	a, err := parseMatrix(*aSpec, *seed, nil)
	if err != nil {
		log.Fatalf("matrix A: %v", err)
	}
	b, err := parseMatrix(*bSpec, *seed+1, a)
	if err != nil {
		log.Fatalf("matrix B: %v", err)
	}
	fmt.Printf("A: %dx%d, %d nonzeros (density %.2e)\n", a.Rows, a.Cols, a.NNZ(), a.Density())
	fmt.Printf("B: %dx%d, %d nonzeros (density %.2e)\n", b.Rows, b.Cols, b.NNZ(), b.Density())

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rep, err := fw.Analyze(ctx, a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselected design : %v\n", rep.Design)
	fmt.Printf("reconfigured    : %v (%.2fs)\n", rep.Reconfigured, rep.ReconfigSec)
	fmt.Printf("preprocessing   : %.3f ms\n", rep.PreprocessSeconds*1e3)
	fmt.Printf("model inference : %.6f ms\n", rep.InferenceSeconds*1e3)
	fmt.Printf("predicted       : %.3f ms\n", rep.PredictedSeconds*1e3)
	fmt.Printf("simulated       : %.3f ms (%d cycles, PE utilization %.1f%%)\n",
		rep.SimulatedSeconds*1e3, rep.Cycles, rep.PEUtilization*100)
	fmt.Printf("energy          : %.3f mJ\n", rep.EnergyJoules*1e3)

	cmp := misam.CompareBaselines(a, b)
	fmt.Printf("\nbaselines (modeled):\n")
	fmt.Printf("  CPU (MKL-like)       : %.3f ms (%.2fx vs Misam)\n", cmp.CPUSeconds*1e3, cmp.CPUSeconds/rep.SimulatedSeconds)
	fmt.Printf("  GPU (cuSPARSE-like)  : %.3f ms (%.2fx vs Misam)\n", cmp.GPUSeconds*1e3, cmp.GPUSeconds/rep.SimulatedSeconds)
	fmt.Printf("  Trapezoid (best %s)  : %.3f ms (%.2fx vs Misam)\n",
		cmp.TrapezoidDataflow, cmp.TrapezoidSeconds*1e3, cmp.TrapezoidSeconds/rep.SimulatedSeconds)
}

// parseMatrix turns a spec into a matrix; prev is A when parsing B (for
// "self" and for inferring dense row counts).
func parseMatrix(spec string, seed int64, prev *misam.Matrix) (*misam.Matrix, error) {
	if spec == "self" {
		if prev == nil {
			return nil, fmt.Errorf("'self' is only valid for matrix B")
		}
		return prev, nil
	}
	if strings.HasSuffix(spec, ".mtx") {
		f, err := os.Open(spec)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return misam.ReadMatrixMarket(f)
	}
	parts := strings.Split(spec, ":")
	atoi := func(i int) (int, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("spec %q: missing field %d", spec, i)
		}
		return strconv.Atoi(parts[i])
	}
	atof := func(i int) (float64, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("spec %q: missing field %d", spec, i)
		}
		return strconv.ParseFloat(parts[i], 64)
	}
	switch parts[0] {
	case "uniform":
		rows, err := atoi(1)
		if err != nil {
			return nil, err
		}
		cols, err := atoi(2)
		if err != nil {
			return nil, err
		}
		dens, err := atof(3)
		if err != nil {
			return nil, err
		}
		return misam.RandUniform(seed, rows, cols, dens), nil
	case "dense":
		cols, err := atoi(1)
		if err != nil {
			return nil, err
		}
		rows := cols
		if prev != nil {
			rows = prev.Cols
		}
		return misam.RandDense(seed, rows, cols), nil
	case "powerlaw":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		nnz, err := atoi(2)
		if err != nil {
			return nil, err
		}
		return misam.RandPowerLaw(seed, n, n, nnz, 1.9), nil
	case "banded":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		half, err := atoi(2)
		if err != nil {
			return nil, err
		}
		return misam.RandBanded(seed, n, n, half, 0.8), nil
	case "dnn":
		rows, err := atoi(1)
		if err != nil {
			return nil, err
		}
		cols, err := atoi(2)
		if err != nil {
			return nil, err
		}
		dens, err := atof(3)
		if err != nil {
			return nil, err
		}
		return misam.RandDNNPruned(seed, rows, cols, dens), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", parts[0])
	}
}
