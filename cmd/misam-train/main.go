// Command misam-train trains the Misam models — the dataflow-selection
// decision tree (§3.1) and the reconfiguration engine's latency predictor
// (§3.3) — on a freshly generated synthetic corpus and writes them to a
// model file loadable by misam-run.
//
// Usage:
//
//	misam-train -o misam.model -corpus 2000 -latency-corpus 4000 -maxdim 1024
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"misam"
	"misam/internal/dataset"
	"misam/internal/mltree"
	"misam/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("misam-train: ")

	out := flag.String("o", "misam.model", "output model file")
	corpus := flag.Int("corpus", 800, "classifier corpus size (paper: 6219)")
	latCorpus := flag.Int("latency-corpus", 1600, "latency-predictor corpus size (paper: 19000)")
	maxDim := flag.Int("maxdim", 1024, "maximum generated matrix dimension")
	seed := flag.Int64("seed", 1, "corpus generation seed")
	depth := flag.Int("depth", 10, "decision tree maximum depth")
	topFeatures := flag.Bool("top-features", false, "prune the selector to the four Figure 4 features")
	threshold := flag.Float64("threshold", 0.20, "reconfiguration threshold (§3.3)")
	corpusFile := flag.String("corpus-file", "", "load the labelled corpus from this file instead of generating (see -save-corpus)")
	saveCorpus := flag.String("save-corpus", "", "after generating, cache the labelled corpus here for reuse")
	flag.Parse()

	opts := misam.TrainOptions{
		CorpusSize:        *corpus,
		LatencyCorpusSize: *latCorpus,
		MaxDim:            *maxDim,
		Seed:              *seed,
		MaxDepth:          *depth,
		TopFeaturesOnly:   *topFeatures,
		Threshold:         *threshold,
	}

	var fw *misam.Framework
	var err error
	if *corpusFile != "" {
		fmt.Printf("loading labelled corpus from %s...\n", *corpusFile)
		f, err := os.Open(*corpusFile)
		if err != nil {
			log.Fatal(err)
		}
		c, err := dataset.ReadCorpus(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("corpus: %d labelled samples\n", len(c.Samples))
		fw, err = misam.TrainOnCorpus(c, nil, opts)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("training on %d-sample corpus (latency corpus %d, maxdim %d)...\n", *corpus, *latCorpus, *maxDim)
		fw, err = misam.Train(opts)
		if err != nil {
			log.Fatal(err)
		}
		if *saveCorpus != "" {
			f, err := os.Create(*saveCorpus)
			if err != nil {
				log.Fatal(err)
			}
			if err := dataset.WriteCorpus(f, fw.Corpus); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("labelled corpus cached to %s\n", *saveCorpus)
		}
	}

	counts := fw.Corpus.ClassCounts()
	fmt.Printf("corpus class balance: D1=%d D2=%d D3=%d D4=%d\n",
		counts[sim.Design1], counts[sim.Design2], counts[sim.Design3], counts[sim.Design4])
	acc := mltree.Accuracy(fw.Selector.Tree.PredictBatch(fw.Corpus.X()), fw.Corpus.Labels())
	fmt.Printf("selector training accuracy: %.1f%%\n", acc*100)
	if sz, err := fw.Selector.SizeBytes(); err == nil {
		fmt.Printf("selector model size: %d bytes (paper: ~6 KB)\n", sz)
	}
	fmt.Printf("selector depth %d, %d nodes\n", fw.Selector.Tree.Depth(), fw.Selector.Tree.NumNodes())

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := fw.Save(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("models written to %s\n", *out)
}
