// Command misam-dataset generates a labelled training corpus and emits it
// as CSV (features, per-design latencies, best-design label) for external
// analysis, plus a summary of the class balance.
//
// Usage:
//
//	misam-dataset -n 2000 -maxdim 1024 -o corpus.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"misam/internal/dataset"
	"misam/internal/features"
	"misam/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("misam-dataset: ")

	n := flag.Int("n", 500, "number of labelled samples (paper: 6219)")
	maxDim := flag.Int("maxdim", 1024, "maximum matrix dimension")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("o", "", "CSV output path (stdout if empty)")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	corpus, err := dataset.GenerateClassifier(rng, *n, *maxDim)
	if err != nil {
		log.Fatal(err)
	}

	var w *bufio.Writer
	if *out == "" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	// Header: family, features..., latencies..., label.
	cols := append([]string{"family"}, features.Names()...)
	for _, id := range sim.AllDesigns {
		cols = append(cols, strings.ReplaceAll(id.String(), " ", "_")+"_sec")
	}
	cols = append(cols, "best")
	fmt.Fprintln(w, strings.Join(cols, ","))

	for _, s := range corpus.Samples {
		fields := []string{s.Pair.Family}
		for _, v := range s.Features {
			fields = append(fields, fmt.Sprintf("%g", v))
		}
		for _, id := range sim.AllDesigns {
			fields = append(fields, fmt.Sprintf("%g", s.LatencySec[id]))
		}
		fields = append(fields, fmt.Sprint(int(s.Best)))
		fmt.Fprintln(w, strings.Join(fields, ","))
	}

	counts := corpus.ClassCounts()
	fmt.Fprintf(os.Stderr, "generated %d samples: D1=%d D2=%d D3=%d D4=%d\n",
		len(corpus.Samples), counts[0], counts[1], counts[2], counts[3])
}
