package misam

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"misam/internal/registry"
)

func TestLoadRejectsFutureFormatVersion(t *testing.T) {
	fw := trainTest(t)
	var buf bytes.Buffer
	if err := fw.Save(&buf); err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(buf.Bytes(), []byte(modelMagic+"2\n"), []byte(modelMagic+"9\n"), 1)
	_, err := Load(bytes.NewReader(tampered))
	if err == nil {
		t.Fatal("loaded a model file with an unknown format version")
	}
	for _, want := range []string{"version 9", "version 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q (expected and actual versions)", err, want)
		}
	}
}

func TestLoadRejectsMalformedVersion(t *testing.T) {
	_, err := Load(strings.NewReader(modelMagic + "banana\n"))
	if err == nil {
		t.Fatal("loaded a model file with a malformed version")
	}
	if !strings.Contains(err.Error(), "malformed format version") {
		t.Errorf("error %q does not say the version is malformed", err)
	}
}

func TestLoadRejectsTruncatedFile(t *testing.T) {
	fw := trainTest(t)
	var buf bytes.Buffer
	if err := fw.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Cut the stream mid-gob, beyond the header.
	cut := buf.Len() / 2
	_, err := Load(bytes.NewReader(buf.Bytes()[:cut]))
	if err == nil {
		t.Fatal("loaded a truncated model file")
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Errorf("error %q does not say the file is truncated", err)
	}
	if !strings.Contains(err.Error(), "format version 2") {
		t.Errorf("error %q does not name the format version", err)
	}
}

func TestLoadedFrameworkHasLoadSourceSnapshot(t *testing.T) {
	fw := trainTest(t)
	var buf bytes.Buffer
	if err := fw.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fw2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cur := fw2.Registry().Current()
	if cur.Version() != 1 || cur.Info().Source != registry.SourceLoad {
		t.Errorf("loaded snapshot = v%d source %q, want v1 source %q",
			cur.Version(), cur.Info().Source, registry.SourceLoad)
	}
}

func TestReportCarriesModelVersion(t *testing.T) {
	fw := trainTest(t)
	a := RandUniform(1, 128, 128, 0.05)
	b := RandUniform(2, 128, 128, 0.05)
	rep, err := fw.Analyze(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ModelVersion != fw.Registry().Current().Version() {
		t.Errorf("report model version %d, registry serves v%d",
			rep.ModelVersion, fw.Registry().Current().Version())
	}
}

// clonePublish republishes the framework's current models as a new
// snapshot — the registry mechanics of a promotion without retraining.
func clonePublish(t testing.TB, fw *Framework) uint64 {
	t.Helper()
	cur := fw.Registry().Current()
	snap, err := registry.NewSnapshot(cur.Classifier(), cur.Engine(),
		registry.Info{Source: registry.SourceRetrain, Note: "hammer clone"})
	if err != nil {
		t.Fatal(err)
	}
	return fw.Registry().Publish(snap)
}

// TestAnalyzeDuringHotSwap hammers Analyze from several goroutines while
// the registry is promoted and rolled back concurrently. Under -race
// this is the end-to-end torn-snapshot check: every request must succeed
// and report a version that was actually published.
func TestAnalyzeDuringHotSwap(t *testing.T) {
	fw, err := Train(TrainOptions{CorpusSize: 60, LatencyCorpusSize: 80, MaxDim: 256, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	fw.WithTraceCapture(256, 1)

	const (
		readers  = 4
		requests = 6
		swaps    = 30
	)
	var failed atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	maxVer := uint64(1 + swaps)

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < requests; i++ {
				a := RandUniform(int64(g*100+i), 96, 96, 0.05)
				b := RandUniform(int64(g*100+i+1), 96, 96, 0.05)
				rep, err := fw.Analyze(context.Background(), a, b)
				if err != nil {
					t.Errorf("analyze during swap: %v", err)
					failed.Add(1)
					continue
				}
				if rep.ModelVersion == 0 || rep.ModelVersion > maxVer {
					t.Errorf("report version %d outside published range 1..%d", rep.ModelVersion, maxVer)
					failed.Add(1)
				}
			}
		}(g)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < swaps; i++ {
			clonePublish(t, fw)
			if i%4 == 3 {
				if _, err := fw.Registry().Rollback(); err != nil {
					t.Errorf("rollback: %v", err)
				}
			}
		}
	}()

	close(start)
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d requests failed during hot-swap", n)
	}
	if got := fw.Traces().Stats().Sampled; got == 0 {
		t.Error("trace collector saw no traffic during the hammer")
	}
}
