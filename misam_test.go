package misam

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"misam/internal/mltree"
	"misam/internal/sim"
)

var (
	sharedFW     *Framework
	sharedFWErr  error
	sharedFWOnce sync.Once
)

// trainTest returns a small framework shared by the public-API tests
// (training once keeps the suite fast).
func trainTest(t *testing.T) *Framework {
	t.Helper()
	sharedFWOnce.Do(func() {
		sharedFW, sharedFWErr = Train(TrainOptions{CorpusSize: 120, LatencyCorpusSize: 150, MaxDim: 512, Seed: 3})
	})
	if sharedFWErr != nil {
		t.Fatal(sharedFWErr)
	}
	return sharedFW
}

func TestTrainProducesWorkingSelector(t *testing.T) {
	fw := trainTest(t)
	// Training accuracy should be strong (the paper reports 90 % CV).
	x, y := fw.Corpus.X(), fw.Corpus.Labels()
	acc := mltree.Accuracy(fw.Selector.Tree.PredictBatch(x), y)
	if acc < 0.85 {
		t.Errorf("training accuracy %.2f, want >= 0.85", acc)
	}
}

func TestSelectorIsCompact(t *testing.T) {
	fw := trainTest(t)
	sz, err := fw.Selector.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's deployed model is ~6 KB; ours should be the same order.
	if sz > 64*1024 {
		t.Errorf("selector serialized to %d bytes; not a lightweight model", sz)
	}
	t.Logf("selector model size: %d bytes", sz)
}

func TestMultiplyMatchesReference(t *testing.T) {
	fw := trainTest(t)
	a := RandUniform(1, 200, 200, 0.05)
	b := RandUniform(2, 200, 100, 0.1)
	c, rep, err := fw.Multiply(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows != 200 || c.Cols != 100 {
		t.Fatalf("product dims %dx%d", c.Rows, c.Cols)
	}
	if rep.SimulatedSeconds <= 0 || rep.TotalSeconds < rep.SimulatedSeconds {
		t.Errorf("implausible report: %+v", rep)
	}
	if rep.EnergyJoules <= 0 {
		t.Error("missing energy estimate")
	}
	// The numeric product must agree with a direct identity check:
	// (A×I) = A.
	id := Identity(200)
	ai, _, err := fw.Multiply(a, id)
	if err != nil {
		t.Fatal(err)
	}
	if ai.NNZ() != a.NNZ() {
		t.Error("A×I lost entries")
	}
}

func TestAnalyzeOverheadsAreSmall(t *testing.T) {
	fw := trainTest(t)
	a := RandUniform(4, 2000, 2000, 0.005)
	b := RandDense(5, 2000, 128)
	rep, err := fw.Analyze(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	// §5.5: inference is ~0.002–0.005 ms; even allowing Go overhead it
	// must stay far below a millisecond.
	if rep.InferenceSeconds > 1e-3 {
		t.Errorf("inference took %.6fs; expected microseconds", rep.InferenceSeconds)
	}
	if rep.PreprocessSeconds <= 0 {
		t.Error("preprocessing time not measured")
	}
}

func TestAnalyzeDimensionMismatch(t *testing.T) {
	fw := trainTest(t)
	a := RandUniform(1, 10, 10, 0.5)
	b := RandUniform(2, 11, 10, 0.5)
	if _, err := fw.Analyze(context.Background(), a, b); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	fw := trainTest(t)
	var buf bytes.Buffer
	if err := fw.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Loaded selector must agree with the original on fresh inputs.
	for seed := int64(0); seed < 10; seed++ {
		a := RandUniform(seed, 300, 300, 0.01*float64(seed+1))
		b := RandDense(seed+100, 300, 64)
		v := ExtractFeatures(a, b)
		if got.Selector.Select(v) != fw.Selector.Select(v) {
			t.Fatal("loaded selector disagrees with original")
		}
	}
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("Load accepted garbage")
	}
}

func TestStreamRuns(t *testing.T) {
	fw := trainTest(t)
	a := RandUniform(6, 4000, 800, 0.01)
	b := RandDense(7, 800, 64)
	res, err := fw.Stream(context.Background(), 8, a, b, 800, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) < 3 {
		t.Fatalf("expected several tiles, got %d", len(res.Outcomes))
	}
}

// TestAnalyzeCancellation: a cancelled context aborts the analyze
// pipeline and surfaces context.Canceled.
func TestAnalyzeCancellation(t *testing.T) {
	fw := trainTest(t)
	a := RandUniform(11, 2000, 2000, 0.005)
	b := RandDense(12, 2000, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fw.Analyze(ctx, a, b); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestAnalyzeOnSeparateDevices: the framework is immutable, so two
// devices evolve independent bitstream state while sharing the models.
func TestAnalyzeOnSeparateDevices(t *testing.T) {
	fw := trainTest(t)
	a := RandUniform(13, 800, 800, 0.01)
	b := RandDense(14, 800, 64)
	w, err := NewWorkload(a, b)
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := fw.NewDevice("one"), fw.NewDevice("two")
	defaultBefore := fw.DefaultDevice().Stats().Requests
	var wg sync.WaitGroup
	for _, dev := range []*Accelerator{d1, d2} {
		wg.Add(1)
		go func(dev *Accelerator) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				rep, err := fw.AnalyzeOn(context.Background(), dev, w)
				if err != nil {
					t.Error(err)
					return
				}
				if rep.Device != dev.Name() {
					t.Errorf("report names device %q, want %q", rep.Device, dev.Name())
				}
			}
		}(dev)
	}
	wg.Wait()
	// Both devices saw the same workload: same design loaded, independent
	// counters, and the default device was never touched.
	l1, ok1 := d1.Loaded()
	l2, ok2 := d2.Loaded()
	if !ok1 || !ok2 || l1 != l2 {
		t.Errorf("device states diverged: %v/%v %v/%v", l1, ok1, l2, ok2)
	}
	if d1.Stats().Requests != 4 || d2.Stats().Requests != 4 {
		t.Errorf("per-device request counts wrong: %+v %+v", d1.Stats(), d2.Stats())
	}
	if got := fw.DefaultDevice().Stats().Requests; got != defaultBefore {
		t.Errorf("AnalyzeOn leaked %d transactions onto the default device", got-defaultBefore)
	}
}

func TestCompareBaselines(t *testing.T) {
	a := RandUniform(9, 1000, 1000, 0.01)
	b := RandDense(10, 1000, 128)
	cmp := CompareBaselines(a, b)
	if cmp.CPUSeconds <= 0 || cmp.GPUSeconds <= 0 || cmp.TrapezoidSeconds <= 0 {
		t.Errorf("nonpositive baseline estimates: %+v", cmp)
	}
	if cmp.CPUEnergyJ <= 0 || cmp.GPUEnergyJ <= 0 {
		t.Error("missing baseline energy")
	}
	if cmp.TrapezoidDataflow == "" {
		t.Error("missing Trapezoid dataflow name")
	}
}

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix(2, 2, []Entry{{Row: 5, Col: 0, Val: 1}}); err == nil {
		t.Error("accepted out-of-range entry")
	}
	m, err := NewMatrix(2, 2, []Entry{{Row: 0, Col: 1, Val: 2}, {Row: 0, Col: 1, Val: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 5 {
		t.Error("duplicate entries not summed")
	}
}

func TestNewDenseMatrix(t *testing.T) {
	if _, err := NewDenseMatrix(2, 2, []float64{1}); err == nil {
		t.Error("accepted wrong-length data")
	}
	m, err := NewDenseMatrix(2, 2, []float64{1, 0, 0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2 (zeros dropped)", m.NNZ())
	}
}

func TestTopFeaturesOnlyTraining(t *testing.T) {
	fw, err := Train(TrainOptions{CorpusSize: 120, MaxDim: 512, Seed: 3, TopFeaturesOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	imp := fw.Selector.FeatureImportance()
	// Only the four Figure 4 features may carry importance.
	allowed := map[int]bool{}
	for _, i := range []int{20, 2, 16, 0} { // Tile1DDensity, BRows, ALoadImbalanceRow, ARows
		allowed[i] = true
	}
	for i, v := range imp {
		if v > 0 && !allowed[i] {
			t.Errorf("pruned model used feature %d (%s)", i, FeatureNames()[i])
		}
	}
}

func TestDesignConstantsAlias(t *testing.T) {
	if Design1 != sim.Design1 || Design4 != sim.Design4 {
		t.Error("design constants drifted from internal/sim")
	}
	if NumDesigns != 4 {
		t.Errorf("NumDesigns = %d", NumDesigns)
	}
}

func TestSelectWithConfidence(t *testing.T) {
	fw := trainTest(t)
	for seed := int64(0); seed < 8; seed++ {
		a := RandUniform(seed, 400, 400, 0.01*float64(seed+1))
		b := RandDense(seed+50, 400, 32)
		v := ExtractFeatures(a, b)
		d, conf := fw.Selector.SelectWithConfidence(v)
		if d != fw.Selector.Select(v) {
			t.Fatal("confidence path disagrees with Select")
		}
		if conf <= 0 || conf > 1 {
			t.Fatalf("confidence %v outside (0,1]", conf)
		}
	}
}
