package misam

import (
	"context"
	"reflect"
	"testing"

	"misam/internal/reconfig"
)

// cachedCopy returns a framework sharing fw's immutable models but with
// its own default device and an analysis cache enabled — the shared
// trainTest framework must not be mutated.
func cachedCopy(fw *Framework, deviceName string, budget int64) *Framework {
	cp := *fw
	cp.device = reconfig.NewDevice(deviceName, cp.Engine)
	return (&cp).WithCache(budget)
}

// sameDeterministicReport compares the report fields that do not depend
// on wall-clock measurement. Preprocess/Inference/Total carry timing and
// legitimately differ between a cache hit and a full build.
func sameDeterministicReport(t *testing.T, tag string, got, want Report) {
	t.Helper()
	if got.Design != want.Design {
		t.Errorf("%s: design %v, want %v", tag, got.Design, want.Design)
	}
	if got.Reconfigured != want.Reconfigured || got.ReconfigSec != want.ReconfigSec {
		t.Errorf("%s: reconfig (%v, %v), want (%v, %v)",
			tag, got.Reconfigured, got.ReconfigSec, want.Reconfigured, want.ReconfigSec)
	}
	if got.PredictedSeconds != want.PredictedSeconds {
		t.Errorf("%s: predicted %v, want %v", tag, got.PredictedSeconds, want.PredictedSeconds)
	}
	if got.SimulatedSeconds != want.SimulatedSeconds || got.Cycles != want.Cycles {
		t.Errorf("%s: simulated (%v s, %d cyc), want (%v s, %d cyc)",
			tag, got.SimulatedSeconds, got.Cycles, want.SimulatedSeconds, want.Cycles)
	}
	if got.PEUtilization != want.PEUtilization || got.EnergyJoules != want.EnergyJoules {
		t.Errorf("%s: util/energy (%v, %v), want (%v, %v)",
			tag, got.PEUtilization, got.EnergyJoules, want.PEUtilization, want.EnergyJoules)
	}
}

// TestCacheAnalyzeBitIdentical: a warm cache hit must reproduce the
// uncached pipeline's report field for field (the acceptance gate of the
// analysis cache). The warm pass uses a separately built workload so the
// hit comes from content addressing, not pointer identity.
func TestCacheAnalyzeBitIdentical(t *testing.T) {
	fw := trainTest(t)
	cfw := cachedCopy(fw, "dev", 64<<20)

	a := RandPowerLaw(31, 2000, 2000, 16000, 1.8)
	b := RandDense(32, 2000, 24)
	ctx := context.Background()

	for pass, tag := range []string{"cold-miss", "warm-hit"} {
		// Fresh devices each pass: both pipelines price against identical
		// (empty) bitstream state, so the decisions must agree too.
		devU := fw.NewDevice("dev")
		devC := cfw.NewDevice("dev")
		wu, err := NewWorkload(a, b)
		if err != nil {
			t.Fatal(err)
		}
		wc, err := NewWorkload(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fw.AnalyzeOn(ctx, devU, wu)
		if err != nil {
			t.Fatalf("pass %d uncached: %v", pass, err)
		}
		got, err := cfw.AnalyzeOn(ctx, devC, wc)
		if err != nil {
			t.Fatalf("pass %d cached: %v", pass, err)
		}
		sameDeterministicReport(t, tag, got, want)
	}

	st, ok := cfw.CacheStats()
	if !ok {
		t.Fatal("cache stats unavailable on a cached framework")
	}
	if st.Misses != 1 || st.Hits < 1 {
		t.Errorf("stats = %+v, want exactly 1 miss and >=1 hit", st)
	}
	if _, ok := fw.CacheStats(); ok {
		t.Error("uncached framework reports cache stats")
	}
}

// TestCacheStreamBitIdentical: streaming over a cached framework must
// reproduce the uncached stream exactly, and re-streaming the same
// matrix must serve every tile from the cache.
func TestCacheStreamBitIdentical(t *testing.T) {
	fw := trainTest(t)
	cold := *fw
	cold.device = reconfig.NewDevice("s", cold.Engine)
	cfw := cachedCopy(fw, "s", 64<<20)

	a := RandPowerLaw(41, 2400, 2400, 19000, 1.8)
	b := RandDense(42, 2400, 16)
	ctx := context.Background()

	want, err := (&cold).Stream(ctx, 7, a, b, 600, 900)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cfw.Stream(ctx, 7, a, b, 600, 900)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cached stream diverged from the uncached stream")
	}

	// Same seed and a fresh device ⇒ identical tiling and decisions, but
	// now every tile analysis is resident.
	before, _ := cfw.CacheStats()
	cfw.device = reconfig.NewDevice("s", cfw.Engine)
	again, err := cfw.Stream(ctx, 7, a, b, 600, 900)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatal("warm re-stream diverged")
	}
	after, _ := cfw.CacheStats()
	if after.Misses != before.Misses {
		t.Errorf("re-stream ran %d new builds, want 0", after.Misses-before.Misses)
	}
	if after.Hits < before.Hits+int64(len(want.Outcomes)) {
		t.Errorf("re-stream hit %d times, want >= %d", after.Hits-before.Hits, len(want.Outcomes))
	}
}

// TestCachePrunedFlavourSalted: a pruned-deployment framework must not
// share cache keys with the full-feature flavour for the same operand
// bytes — the two extraction paths produce different vectors.
func TestCachePrunedFlavourSalted(t *testing.T) {
	fw := trainTest(t)
	pruned := *fw
	pruned.Options.TopFeaturesOnly = true

	a := RandUniform(51, 300, 300, 0.05)
	b := RandDense(52, 300, 8)
	if fw.analysisKey(a, b) == (&pruned).analysisKey(a, b) {
		t.Fatal("pruned and full feature flavours share a cache key")
	}
	// Same flavour, same content: the key is stable.
	if fw.analysisKey(a, b) != fw.analysisKey(a, b) {
		t.Fatal("analysis key is not deterministic")
	}
}
