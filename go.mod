module misam

go 1.22
