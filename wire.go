package misam

// Zero-copy binary ingestion. A binary request body is two concatenated
// sparse.EncodeBinary blobs (A then B); the server parses them into
// WireViews, and AnalyzeFastWire serves the pair with the minimum
// materialization the request actually needs:
//
//   - Warm fast hit: the memo key comes straight from the wire
//     fingerprints (bit-identical to the decoded-struct fingerprints), so
//     the cached features and baseline stats answer the request without
//     decoding a single operand word.
//   - Cold fast hit: the operands are decoded into the caller's pooled
//     WireScratch — slice headers aliasing the request buffer on aligned
//     little-endian hosts, one copy into the scratch arenas otherwise —
//     and the one-pass fused extractor builds the entry.
//   - Slow tier: same decode, then the full pipeline (AnalyzeOn).
//
// Lifetime rule: everything decoded through a WireScratch aliases memory
// that dies with the request (the wire buffer or the pooled arenas), so
// nothing alias-backed may outlive the call. The one consumer that does
// outlive it — the background verify job — gets an independent
// DecodeCopy taken at offer time. Cache entries (FastEntry, Analysis)
// and traces are slice-free value types and safe to share.

import (
	"context"
	"fmt"
	"time"

	"misam/internal/features"
	"misam/internal/memo"
	"misam/internal/sim"
	"misam/internal/sparse"
)

// WireView is a validated window onto one binary-encoded matrix (see
// sparse.ParseWire).
type WireView = sparse.WireView

// ErrWire marks rejected binary matrix bytes (sparse.ErrWire): bad
// framing, truncation, or CSR invariant violations. Ingest boundaries
// map the whole family to a client error.
var ErrWire = sparse.ErrWire

// EncodeMatrixBinary renders m in the binary wire format.
func EncodeMatrixBinary(m *Matrix) []byte { return sparse.EncodeBinary(m) }

// AppendMatrixBinary appends m's wire encoding to dst — request bodies
// are built by appending operand blobs back to back.
func AppendMatrixBinary(dst []byte, m *Matrix) []byte { return sparse.AppendBinary(dst, m) }

// DecodeMatrixBinary validates and decodes one wire blob (the returned
// matrix may alias buf; see sparse.DecodeBinary).
func DecodeMatrixBinary(buf []byte) (*Matrix, error) { return sparse.DecodeBinary(buf) }

// ParseWireMatrix validates one wire blob at the front of buf, returning
// its view and the remaining bytes.
func ParseWireMatrix(buf []byte) (WireView, []byte, error) { return sparse.ParseWire(buf) }

// WireScratch is one request's reusable decode state: CSR arenas for
// both operands plus the fused extractor's count grids. The server keeps
// these in a sync.Pool and threads one through every item of a batch;
// after the first few requests at a given scale, binary decode and
// feature extraction allocate nothing.
type WireScratch struct {
	a, b  Matrix
	fused FusedScratch
}

// FusedScratch re-exports the one-pass extractor's scratch type.
type FusedScratch = features.FusedScratch

// DecodeA decodes a view into the scratch's A-operand arena (aliasing
// the view's buffer where alignment allows). The result shares the
// scratch's lifetime rules.
func (s *WireScratch) DecodeA(v WireView) *Matrix { return v.DecodeInto(&s.a) }

// DecodeB is DecodeA for the B-operand arena.
func (s *WireScratch) DecodeB(v WireView) *Matrix { return v.DecodeInto(&s.b) }

// wireKey is analysisKey computed from wire fingerprints — identical to
// the key the decoded pair would produce, including the pruned-flavour
// salt, so binary and JSON ingestion of the same operands share cache
// entries.
func (f *Framework) wireKey(va, vb WireView) memo.Key {
	k := memo.PairKey(va.Fingerprint(), vb.Fingerprint())
	if f.Options.TopFeaturesOnly {
		k.Hi ^= prunedKeySalt
	}
	return k
}

// WireKey exposes the content address of a binary-ingested pair — equal
// to AnalysisKey of the decoded operands, so cluster routing can pick
// the owner node from the wire views without materializing a matrix.
func (f *Framework) WireKey(va, vb WireView) memo.Key { return f.wireKey(va, vb) }

// decodeWire materializes both operands into the scratch arenas and
// builds the simulation workload.
func decodeWire(va, vb WireView, scratch *WireScratch) (*Workload, error) {
	a := va.DecodeInto(&scratch.a)
	b := vb.DecodeInto(&scratch.b)
	return sim.NewWorkload(a, b)
}

// AnalyzeFastWire serves one binary-ingested request against dev through
// the two-tier pipeline, returning the report and the baseline
// comparison (which the wire path derives from the fast entry's cached
// stats, so a warm hit never walks the operands). scratch may be nil;
// passing a pooled scratch makes the steady-state decode allocation-free.
//
// Semantics match AnalyzeFastOn on the same operands: identical gate,
// identical counters, identical reports — the wire path only changes how
// (and whether) the matrices are materialized.
func (f *Framework) AnalyzeFastWire(ctx context.Context, dev *Accelerator, va, vb WireView, scratch *WireScratch) (Report, BaselineComparison, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if scratch == nil {
		scratch = &WireScratch{}
	}
	if va.Cols() != vb.Rows() {
		return Report{}, BaselineComparison{}, fmt.Errorf("%w: dimension mismatch: A is %dx%d, B is %dx%d",
			ErrWire, va.Rows(), va.Cols(), vb.Rows(), vb.Cols())
	}

	slow := func() (Report, BaselineComparison, error) {
		w, err := decodeWire(va, vb, scratch)
		if err != nil {
			return Report{Device: dev.Name(), Path: PathFull}, BaselineComparison{}, fmt.Errorf("misam: analyze: %w", err)
		}
		rep, err := f.AnalyzeOn(ctx, dev, w)
		if err != nil {
			return rep, BaselineComparison{}, err
		}
		return rep, CompareBaselinesWorkload(w), nil
	}

	fp := f.fastpath
	if fp == nil {
		return slow()
	}
	fp.served.Add(1)
	if fp.cfg.Confidence >= 1 {
		// Gate can never pass — the bit-identical-at-threshold-1.0
		// contract, same as AnalyzeFastOn.
		fp.slow.Add(1)
		return slow()
	}

	// Resolve the fast entry: wire-fingerprint probe first (a warm hit
	// decodes nothing), then decode + build on a miss.
	t0 := time.Now()
	key := f.wireKey(va, vb)
	var ent memo.FastEntry
	var w *Workload // non-nil once the operands are materialized
	var err error
	if f.cache != nil {
		var warm bool
		if ent, warm = f.cache.GetFast(key); !warm {
			w, err = decodeWire(va, vb, scratch)
			if err == nil {
				ent, _, err = f.cache.DoFast(ctx, key, func(ctx context.Context) (memo.FastEntry, error) {
					return f.buildFastEntry(ctx, w, &scratch.fused)
				})
			}
		}
	} else {
		w, err = decodeWire(va, vb, scratch)
		if err == nil {
			ent, err = f.buildFastEntry(ctx, w, &scratch.fused)
		}
	}
	if err != nil {
		fp.slow.Add(1)
		return Report{Device: dev.Name(), Path: PathFull}, BaselineComparison{}, fmt.Errorf("misam: analyze: %w", err)
	}
	pre := time.Since(t0).Seconds()

	snap := f.snapshot()
	t1 := time.Now()
	proposed, conf, margin := snap.SelectConfident(ent.Features)
	pass := conf >= fp.cfg.Confidence && margin >= fp.cfg.MinMargin
	if pass && fp.cfg.SlowEvery > 0 && fp.gateSeq.Add(1)%int64(fp.cfg.SlowEvery) == 0 {
		pass = false
	}
	if !pass {
		fp.slow.Add(1)
		if w == nil {
			// Warm probe answered the gate but the request still needs the
			// full pipeline: decode now.
			w, err = decodeWire(va, vb, scratch)
			if err != nil {
				return Report{Device: dev.Name(), Path: PathFull}, BaselineComparison{}, fmt.Errorf("misam: analyze: %w", err)
			}
		}
		rep, err := f.AnalyzeOn(ctx, dev, w)
		rep.Confidence = conf
		if err != nil {
			return rep, BaselineComparison{}, err
		}
		return rep, CompareBaselineStats(ent.Baseline), nil
	}
	fp.fast.Add(1)
	if f.traces != nil {
		f.traces.ObserveProposal(proposed)
	}

	dec := dev.DecideApplyWith(snap.Engine(), ent.Features, proposed, 1)
	var rep Report
	rep.Device = dev.Name()
	rep.Path = PathFast
	rep.Confidence = conf
	rep.ModelVersion = snap.Version()
	rep.PreprocessSeconds = pre
	rep.InferenceSeconds = time.Since(t1).Seconds()
	rep.Design = dec.Target
	rep.Reconfigured = dec.Reconfigure
	rep.ReconfigSec = dec.ReconfigSeconds
	rep.PredictedSeconds = snap.Engine().Predictor.Predict(ent.Features, dec.Target)
	rep.TotalSeconds = rep.PreprocessSeconds + rep.InferenceSeconds + rep.ReconfigSec + rep.PredictedSeconds

	// The verify job outlives this request, and the scratch-decoded
	// matrices alias the pooled request buffer — so a sampled audit gets
	// its own fully independent copy, taken here, inside the request.
	f.maybeOfferVerify(fp, snap.Version(), ent.Features, proposed, func() (*Workload, error) {
		return sim.NewWorkload(va.DecodeCopy(), vb.DecodeCopy())
	})
	return rep, CompareBaselineStats(ent.Baseline), nil
}
