package misam

import (
	"fmt"

	"misam/internal/baseline"
	"misam/internal/dataset"
	"misam/internal/features"
	"misam/internal/mltree"
	"misam/internal/sim"
)

// Device is a compute target for the §6.3 heterogeneous extension:
// "Misam is also extensible to heterogeneous environments involving CPUs,
// GPUs, FPGAs, and ASICs ... the model can route workloads to the most
// suitable device; for instance, it correctly routes workloads to the GPU
// when it consistently offers better performance."
type Device int

const (
	DeviceCPU Device = iota
	DeviceGPU
	DeviceMisam
	NumDevices
)

// String names the device.
func (d Device) String() string {
	switch d {
	case DeviceCPU:
		return "CPU"
	case DeviceGPU:
		return "GPU"
	case DeviceMisam:
		return "Misam"
	default:
		return fmt.Sprintf("Device(%d)", int(d))
	}
}

// Router classifies matrix features to the fastest device.
type Router struct {
	Tree     *mltree.Classifier
	compiled *mltree.Compiled
}

// Route predicts the fastest device for a feature vector.
func (r *Router) Route(v FeatureVector) Device {
	return Device(r.compiled.PredictClass(v.Slice()))
}

// DeviceLatencies returns the modeled latency of each device on a
// workload: the CPU/GPU analytic models and the best Misam design's
// simulated time.
func DeviceLatencies(a, b *Matrix) ([NumDevices]float64, error) {
	var out [NumDevices]float64
	st := baseline.Collect(a, b)
	out[DeviceCPU] = baseline.DefaultCPU().Estimate(st).Seconds
	out[DeviceGPU] = baseline.DefaultGPU().Estimate(st).Seconds
	w, err := sim.NewWorkload(a, b)
	if err != nil {
		return out, err
	}
	results, err := w.SimulateAll()
	if err != nil {
		return out, err
	}
	out[DeviceMisam] = results[sim.BestDesign(results)].Seconds
	return out, nil
}

// deviceLabel computes the fastest device for a labelled corpus sample,
// reusing the sample's simulated design latencies.
func deviceLabel(s *dataset.Sample) Device {
	st := baseline.Collect(s.Pair.A, s.Pair.B)
	lat := [NumDevices]float64{
		DeviceCPU: baseline.DefaultCPU().Estimate(st).Seconds,
		DeviceGPU: baseline.DefaultGPU().Estimate(st).Seconds,
	}
	best := s.LatencySec[0]
	for _, l := range s.LatencySec {
		if l < best {
			best = l
		}
	}
	lat[DeviceMisam] = best
	out := DeviceCPU
	for d := DeviceCPU; d < NumDevices; d++ {
		if lat[d] < lat[out] {
			out = d
		}
	}
	return out
}

// TrainRouter fits a device router on the framework's training corpus.
func TrainRouter(fw *Framework) (*Router, error) {
	if fw.Corpus == nil || len(fw.Corpus.Samples) == 0 {
		return nil, fmt.Errorf("misam: TrainRouter needs a framework with a training corpus")
	}
	x := make([][]float64, len(fw.Corpus.Samples))
	y := make([]int, len(fw.Corpus.Samples))
	for i := range fw.Corpus.Samples {
		s := &fw.Corpus.Samples[i]
		x[i] = s.Features.Slice()
		y[i] = int(deviceLabel(s))
	}
	// Guard against a degenerate corpus where one device wins everything:
	// the tree still trains (two classes minimum required by mltree), so
	// ensure at least two classes appear; otherwise return a trivial
	// router via a constant-leaf tree trained on a 2-class relabeling.
	classes := map[int]bool{}
	for _, c := range y {
		classes[c] = true
	}
	if len(classes) < 2 {
		// All labels identical: duplicate one sample with a different
		// class so training succeeds; the dominant class still wins every
		// leaf that matters.
		x = append(x, x[0])
		alt := (y[0] + 1) % int(NumDevices)
		y = append(y, alt)
	}
	cls, err := mltree.TrainClassifier(x, y, int(NumDevices),
		mltree.BalancedWeights(y, int(NumDevices)), mltree.Config{MaxDepth: 10, MinSamplesLeaf: 2})
	if err != nil {
		return nil, fmt.Errorf("misam: router training: %w", err)
	}
	return &Router{Tree: cls, compiled: cls.Compile()}, nil
}

var _ = features.NumFeatures
