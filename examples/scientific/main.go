// Scientific-computing example: an iterative solver (conjugate-gradient
// style) re-invokes SpMM against the same system matrix thousands of
// times. This is the paper's cg15 scenario (§5.2): whichever bitstream
// happens to be loaded, the reconfiguration engine weighs a 3–4 second
// switch against the gain amortized over the whole solve — and switches
// when the solve is long enough.
package main

import (
	"fmt"
	"log"

	"misam"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training Misam models...")
	fw, err := misam.Train(misam.DefaultTrainOptions())
	if err != nil {
		log.Fatal(err)
	}

	// A large, very sparse symmetric-structure system matrix with a
	// moderately sparse multi-RHS block.
	const n = 90000
	A := misam.RandUniform(1, n, n, 3.0/float64(n))
	B := misam.RandUniform(2, n, 256, 0.02)
	fmt.Printf("system: %dx%d, %d nonzeros; RHS block %dx%d at density %.2f\n\n",
		n, n, A.NNZ(), B.Rows, B.Cols, B.Density())

	// Per-iteration latency on each design.
	all, err := misam.SimulateAllDesigns(A, B)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-iteration SpMM latency:")
	for id, r := range all {
		fmt.Printf("  %v: %.3f ms\n", misam.Design(id), r.Seconds*1e3)
	}

	// The engine's verdict at different solve lengths, starting from a
	// Design 1 bitstream left over from a previous workload. The device
	// holds the bitstream state; the pure engine just prices each verdict.
	v := misam.ExtractFeatures(A, B)
	proposed := fw.Selector.Select(v)
	fmt.Printf("\nselector proposes %v; Design 1 currently loaded\n", proposed)
	fmt.Printf("%-12s %10s %14s %14s\n", "iterations", "switch?", "stay total", "switch total")
	for _, iters := range []int{100, 1000, 10000, 100000, 1000000} {
		dev := fw.NewDevice("solver")
		dev.ForceLoad(misam.Design1)
		dec := dev.Decide(v, proposed, float64(iters))
		stay := float64(iters) * all[misam.Design1].Seconds
		sw := float64(iters)*all[proposed].Seconds + dec.ReconfigSeconds
		verdict := "keep"
		if dec.Target == proposed && dec.Target != misam.Design1 {
			verdict = "SWITCH"
		}
		fmt.Printf("%-12d %10s %13.2fs %13.2fs\n", iters, verdict, stay, sw)
	}
	fmt.Println("\nThe engine reconfigures only once the solve is long enough for the")
	fmt.Println("3-4s bitstream load to amortize (§3.3, threshold 20% of expected gain).")
}
