// Quickstart: train a small Misam framework, multiply one sparse matrix
// pair, and inspect what the framework decided.
package main

import (
	"fmt"
	"log"

	"misam"
)

func main() {
	log.SetFlags(0)

	// Train the dataflow selector and latency predictor on a synthetic
	// corpus. DefaultTrainOptions trains in a few seconds; production
	// deployments would raise CorpusSize toward the paper's 6,219.
	fmt.Println("training Misam models...")
	fw, err := misam.Train(misam.DefaultTrainOptions())
	if err != nil {
		log.Fatal(err)
	}
	if sz, err := fw.Selector.SizeBytes(); err == nil {
		fmt.Printf("trained selector: %d bytes (the paper's deployed tree is ~6 KB)\n\n", sz)
	}

	// A graph-like sparse matrix times a dense block of feature vectors —
	// a GNN aggregation step.
	a := misam.RandPowerLaw(1, 20000, 20000, 80000, 1.9)
	b := misam.RandDense(2, 20000, 64)
	fmt.Printf("A: %dx%d with %d nonzeros; B: %dx%d dense\n", a.Rows, a.Cols, a.NNZ(), b.Rows, b.Cols)

	c, report, err := fw.Multiply(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C: %dx%d with %d nonzeros\n\n", c.Rows, c.Cols, c.NNZ())

	fmt.Printf("selected design      : %v\n", report.Design)
	fmt.Printf("feature extraction   : %.3f ms\n", report.PreprocessSeconds*1e3)
	fmt.Printf("model inference      : %.6f ms\n", report.InferenceSeconds*1e3)
	fmt.Printf("simulated FPGA time  : %.3f ms (%.0f%% PE utilization)\n",
		report.SimulatedSeconds*1e3, report.PEUtilization*100)
	fmt.Printf("energy estimate      : %.3f mJ\n", report.EnergyJoules*1e3)

	// How would the alternatives have done?
	results, err := misam.SimulateAllDesigns(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall designs on this workload:")
	for id, r := range results {
		marker := "  "
		if misam.Design(id) == report.Design {
			marker = "→ "
		}
		fmt.Printf("%s%v: %.3f ms\n", marker, misam.Design(id), r.Seconds*1e3)
	}
}
