// Multi-tenant example (§6.2): Misam's specialized bitstreams leave most
// of the FPGA fabric free, so independent workloads can co-locate —
// unlike a monolithic ASIC that pays for every dataflow's silicon all the
// time.
package main

import (
	"fmt"

	"misam"
)

func main() {
	designs := []misam.Design{misam.Design1, misam.Design2, misam.Design3, misam.Design4}

	fmt.Println("Table 2 resource footprints (percent of the U55C):")
	fmt.Printf("%-10s %7s %7s %7s %7s %7s\n", "design", "LUT", "FF", "BRAM", "URAM", "DSP")
	for _, id := range designs {
		r := misam.DesignResources(id)
		fmt.Printf("%-10v %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%%\n", id, r.LUT, r.FF, r.BRAM, r.URAM, r.DSP)
	}

	fmt.Println("\nreplication (how many copies fit):")
	for _, id := range designs {
		fmt.Printf("  %v: %d at raw fabric limits, %d with 25%% shell/routing reserve\n",
			id, misam.MaxInstances(id, 100), misam.MaxInstances(id, 75))
	}

	fmt.Println("\nco-location feasibility:")
	mixes := [][]misam.Design{
		{misam.Design1, misam.Design4},
		{misam.Design2, misam.Design4},
		{misam.Design2, misam.Design2},
		{misam.Design1, misam.Design2},
		{misam.Design4, misam.Design4, misam.Design4},
	}
	for _, mix := range mixes {
		verdict := "does NOT fit"
		if misam.CanCoLocate(mix, 100) {
			verdict = "fits"
		}
		fmt.Printf("  %v: %s\n", mix, verdict)
	}

	fmt.Println("\nbitstream logistics:")
	for _, id := range designs {
		fmt.Printf("  %v: %d MB bitstream\n", id, misam.BitstreamBytes(id)>>20)
	}
	fmt.Printf("\nDesigns 2 and 3 share a bitstream: swap is free (%v)\n",
		misam.SharedBitstream(misam.Design2, misam.Design3))
}
