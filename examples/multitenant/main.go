// Multi-tenant example (§6.2): Misam's specialized bitstreams leave most
// of the FPGA fabric free, so independent workloads can co-locate —
// unlike a monolithic ASIC that pays for every dataflow's silicon all the
// time. The second half serves a heterogeneous request mix over a fleet
// of devices (§6.3's serving shape): one immutable framework, N devices
// each tracking their own bitstream, requests checked out per device.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"misam"
)

func main() {
	designs := []misam.Design{misam.Design1, misam.Design2, misam.Design3, misam.Design4}

	fmt.Println("Table 2 resource footprints (percent of the U55C):")
	fmt.Printf("%-10s %7s %7s %7s %7s %7s\n", "design", "LUT", "FF", "BRAM", "URAM", "DSP")
	for _, id := range designs {
		r := misam.DesignResources(id)
		fmt.Printf("%-10v %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%%\n", id, r.LUT, r.FF, r.BRAM, r.URAM, r.DSP)
	}

	fmt.Println("\nreplication (how many copies fit):")
	for _, id := range designs {
		fmt.Printf("  %v: %d at raw fabric limits, %d with 25%% shell/routing reserve\n",
			id, misam.MaxInstances(id, 100), misam.MaxInstances(id, 75))
	}

	fmt.Println("\nco-location feasibility:")
	mixes := [][]misam.Design{
		{misam.Design1, misam.Design4},
		{misam.Design2, misam.Design4},
		{misam.Design2, misam.Design2},
		{misam.Design1, misam.Design2},
		{misam.Design4, misam.Design4, misam.Design4},
	}
	for _, mix := range mixes {
		verdict := "does NOT fit"
		if misam.CanCoLocate(mix, 100) {
			verdict = "fits"
		}
		fmt.Printf("  %v: %s\n", mix, verdict)
	}

	fmt.Println("\nbitstream logistics:")
	for _, id := range designs {
		fmt.Printf("  %v: %d MB bitstream\n", id, misam.BitstreamBytes(id)>>20)
	}
	fmt.Printf("\nDesigns 2 and 3 share a bitstream: swap is free (%v)\n",
		misam.SharedBitstream(misam.Design2, misam.Design3))

	serveFleet()
}

// serveFleet drives a 3-device fleet with a mixed tenant workload: the
// trained models are shared read-only, each request owns one device for
// its duration, and the per-device bitstreams specialize to the traffic.
func serveFleet() {
	fmt.Println("\nfleet serving (3 devices, mixed tenants):")
	fmt.Println("training a small model...")
	fw, err := misam.Train(misam.TrainOptions{CorpusSize: 120, MaxDim: 384, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fl := fw.NewFleet(3)

	// Three tenants with different structure: graph analytics, DNN
	// activations, and sparse-times-sparse.
	type job struct {
		tenant string
		a, b   *misam.Matrix
	}
	var jobs []job
	for i := int64(0); i < 4; i++ {
		jobs = append(jobs,
			job{"graph", misam.RandPowerLaw(i, 4000, 4000, 16000, 1.8), misam.RandDense(i+10, 4000, 32)},
			job{"dnn", misam.RandDNNPruned(i+20, 2048, 1024, 0.2), misam.RandDense(i+30, 1024, 64)},
			job{"spgemm", misam.RandUniform(i+40, 3000, 3000, 0.002), misam.RandUniform(i+50, 3000, 3000, 0.002)},
		)
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			err := fl.Do(context.Background(), func(dev *misam.Accelerator) error {
				w, err := misam.NewWorkload(j.a, j.b)
				if err != nil {
					return err
				}
				rep, err := fw.AnalyzeOn(context.Background(), dev, w)
				if err != nil {
					return err
				}
				mu.Lock()
				fmt.Printf("  %-7s on %s → %v (%.3f ms, reconfig %v)\n",
					j.tenant, rep.Device, rep.Design, rep.SimulatedSeconds*1e3, rep.Reconfigured)
				mu.Unlock()
				return nil
			})
			if err != nil {
				log.Fatal(err)
			}
		}(j)
	}
	wg.Wait()

	fmt.Println("\nper-device totals:")
	for _, dev := range fl.Devices() {
		st := dev.Stats()
		loaded := "-"
		if id, ok := dev.Loaded(); ok {
			loaded = id.String()
		}
		fmt.Printf("  %s: %d requests, %d reconfigs (%.1fs), now holding %s\n",
			dev.Name(), st.Requests, st.Reconfigs, st.ReconfigSeconds, loaded)
	}
}
