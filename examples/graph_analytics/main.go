// Graph analytics example (the paper's HS×HS workloads): A×A
// self-multiplication over power-law graphs — the core of triangle
// counting and multi-hop reachability — where Design 4's compressed-B
// SpGEMM path dominates and the other designs waste bandwidth streaming
// an uncompressed B.
package main

import (
	"context"
	"fmt"
	"log"

	"misam"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training Misam models...")
	fw, err := misam.Train(misam.DefaultTrainOptions())
	if err != nil {
		log.Fatal(err)
	}

	graphs := []struct {
		name string
		n    int
		deg  int
	}{
		{"p2p-like", 26000, 3},
		{"collab-like", 23000, 8},
		{"social-like", 12000, 16},
	}

	fmt.Printf("\n%-12s %10s %12s %12s %14s\n", "graph", "nnz", "design", "misam(ms)", "worst-fixed(ms)")
	for i, g := range graphs {
		a := misam.RandPowerLaw(int64(i+1), g.n, g.n, g.n*g.deg, 1.9)

		// A×A: the two-hop neighborhood structure.
		rep, err := fw.Analyze(context.Background(), a, a)
		if err != nil {
			log.Fatal(err)
		}
		all, err := misam.SimulateAllDesigns(a, a)
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		for _, r := range all {
			if r.Seconds > worst {
				worst = r.Seconds
			}
		}
		fmt.Printf("%-12s %10d %12v %12.3f %14.3f\n",
			g.name, a.NNZ(), rep.Design, rep.SimulatedSeconds*1e3, worst*1e3)

		// Verify the numeric product against the reference kernel through
		// the public API on the smallest graph.
		if g.n <= 12000 {
			c, _, err := fw.Multiply(a, a)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("             A² has %d nonzeros (fill-in %.1fx)\n",
				c.NNZ(), float64(c.NNZ())/float64(a.NNZ()))
		}
	}

	fmt.Println("\nDesign 4 wins these workloads because B is highly sparse: storing B")
	fmt.Println("in 64-bit COO halves read bandwidth per element, which only pays off")
	fmt.Println("when most of an uncompressed stream would be zeros (§3.2.4).")
}
