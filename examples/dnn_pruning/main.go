// DNN pruning example (the paper's MS×D / MS×MS workloads): run the
// layers of a pruned ResNet-style network through Misam and compare the
// adaptive selection against pinning any single design for the whole
// network — the scenario where per-layer sparsity regimes differ enough
// that no fixed dataflow is right everywhere.
package main

import (
	"context"
	"fmt"
	"log"

	"misam"
)

// layer describes one im2col-style weight matrix and its pruned density.
type layer struct {
	name    string
	m, k    int
	density float64
}

func main() {
	log.SetFlags(0)

	fmt.Println("training Misam models...")
	fw, err := misam.Train(misam.DefaultTrainOptions())
	if err != nil {
		log.Fatal(err)
	}

	// A pruned network: early layers keep more weights, later layers are
	// pruned harder (the paper's STR pruning at 0.1/0.2 densities), and
	// the classifier head stays denser.
	layers := []layer{
		{"conv1", 64, 147, 0.5},
		{"conv2_x", 256, 576, 0.2},
		{"conv3_x", 512, 1152, 0.2},
		{"conv4_x", 1024, 2304, 0.1},
		{"conv5_x", 2048, 4608, 0.1},
		{"fc", 1000, 2048, 0.3},
	}
	const seqLen = 512 // activation block width (the paper's MS×D setup)

	var misamTotal float64
	fixedTotal := map[misam.Design]float64{}
	fmt.Printf("\n%-10s %12s %12s %10s\n", "layer", "shape", "design", "time(ms)")
	for i, l := range layers {
		w := misam.RandDNNPruned(int64(i+1), l.m, l.k, l.density)
		act := misam.RandDense(int64(100+i), l.k, seqLen)

		rep, err := fw.Analyze(context.Background(), w, act)
		if err != nil {
			log.Fatal(err)
		}
		misamTotal += rep.SimulatedSeconds
		fmt.Printf("%-10s %6dx%-6d %12v %10.3f\n", l.name, l.m, l.k, rep.Design, rep.SimulatedSeconds*1e3)

		all, err := misam.SimulateAllDesigns(w, act)
		if err != nil {
			log.Fatal(err)
		}
		for id, r := range all {
			fixedTotal[misam.Design(id)] += r.Seconds
		}
	}

	fmt.Printf("\nnetwork total with Misam's per-layer selection: %.3f ms\n", misamTotal*1e3)
	for _, id := range []misam.Design{misam.Design1, misam.Design2, misam.Design3, misam.Design4} {
		fmt.Printf("fixed %v for every layer: %.3f ms (%.2fx vs Misam)\n",
			id, fixedTotal[id]*1e3, fixedTotal[id]/misamTotal)
	}

	cmp := misam.CompareBaselines(
		misam.RandDNNPruned(1, 1024, 2304, 0.1),
		misam.RandDense(2, 2304, seqLen))
	fmt.Printf("\nfor the conv4-sized layer, modeled baselines: CPU %.3f ms, GPU %.3f ms\n",
		cmp.CPUSeconds*1e3, cmp.GPUSeconds*1e3)
}
