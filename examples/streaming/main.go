// Streaming example (§3.3): a large matrix is processed in random-height
// row tiles; per tile, the selector proposes a design and the
// reconfiguration engine decides — amortizing any bitstream switch over
// the remaining tiles — whether switching is worth 3–4 seconds.
package main

import (
	"context"
	"fmt"
	"log"

	"misam"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training Misam models...")
	fw, err := misam.Train(misam.DefaultTrainOptions())
	if err != nil {
		log.Fatal(err)
	}

	// A tall matrix whose upper half is regular/banded and lower half is
	// heavily imbalanced: the optimal design changes partway through the
	// stream.
	const n = 60000
	upper := misam.RandBanded(1, n/2, n, 4, 0.8)
	lower := misam.RandPowerLaw(2, n/2, n, n*3, 1.5)
	var entries []misam.Entry
	for r := 0; r < upper.Rows; r++ {
		cols, vals := upper.Row(r)
		for i, c := range cols {
			entries = append(entries, misam.Entry{Row: r, Col: c, Val: vals[i]})
		}
	}
	for r := 0; r < lower.Rows; r++ {
		cols, vals := lower.Row(r)
		for i, c := range cols {
			entries = append(entries, misam.Entry{Row: n/2 + r, Col: c, Val: vals[i]})
		}
	}
	a, err := misam.NewMatrix(n, n, entries)
	if err != nil {
		log.Fatal(err)
	}
	b := misam.RandDense(3, n, 32)
	fmt.Printf("streaming a %dx%d matrix (%d nonzeros) against a %d-wide dense block\n",
		a.Rows, a.Cols, a.NNZ(), b.Cols)

	res, err := fw.Stream(context.Background(), 4, a, b, 5000, 12000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-6s %14s %10s %12s %8s\n", "tile", "rows", "proposed", "executed", "switch")
	for i, o := range res.Outcomes {
		star := ""
		if o.Decision.Reconfigure {
			star = " *reconfig"
		} else if o.Decision.Target != o.Proposed {
			star = " (kept)"
		}
		fmt.Printf("%-6d [%6d,%6d) %10v %12v%s\n",
			i, o.Tile.Lo, o.Tile.Hi, o.Proposed, o.Decision.Target, star)
	}
	fmt.Printf("\ntiles: %d   reconfigurations: %d\n", len(res.Outcomes), res.Reconfigs)
	fmt.Printf("compute time      : %.3f ms\n", res.ComputeSeconds*1e3)
	fmt.Printf("reconfig overhead : %.3f s\n", res.ReconfigSeconds)
	fmt.Printf("oracle (per-tile best, free switching): %.3f ms\n", res.OracleSeconds*1e3)
	fmt.Printf("efficiency vs oracle: %.1f%%\n", res.OracleSeconds/res.ComputeSeconds*100)
}
