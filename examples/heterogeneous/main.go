// Heterogeneous routing example (§6.3): Misam's selector generalizes
// beyond picking FPGA designs — trained over device-level labels it
// routes each workload to the fastest of {CPU, GPU, Misam}, "correctly
// rout[ing] workloads to the GPU when it consistently offers better
// performance".
package main

import (
	"fmt"
	"log"

	"misam"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training Misam models and the device router...")
	fw, err := misam.Train(misam.DefaultTrainOptions())
	if err != nil {
		log.Fatal(err)
	}
	router, err := misam.TrainRouter(fw)
	if err != nil {
		log.Fatal(err)
	}

	cases := []struct {
		name string
		a, b *misam.Matrix
	}{
		{"dense GEMM-like (MSxD)", misam.RandDNNPruned(1, 1024, 1024, 0.5), misam.RandDense(2, 1024, 512)},
		{"pruned MSxMS", misam.RandDNNPruned(3, 1024, 1024, 0.1), misam.RandDNNPruned(4, 1024, 512, 0.2)},
		{"graph HSxHS", misam.RandPowerLaw(5, 20000, 20000, 80000, 1.9), nil},
		{"solver HSxD", misam.RandBanded(6, 30000, 30000, 4, 0.8), misam.RandDense(7, 30000, 512)},
		{"tiny sparse", misam.RandUniform(8, 400, 400, 0.004), misam.RandDense(9, 400, 8)},
	}

	fmt.Printf("\n%-24s %10s %10s | %12s %12s %12s\n",
		"workload", "routed", "oracle", "CPU(ms)", "GPU(ms)", "Misam(ms)")
	for _, c := range cases {
		b := c.b
		if b == nil {
			b = c.a // self multiplication
		}
		lat, err := misam.DeviceLatencies(c.a, b)
		if err != nil {
			log.Fatal(err)
		}
		oracle := misam.DeviceCPU
		for d := misam.DeviceCPU; d < misam.NumDevices; d++ {
			if lat[d] < lat[oracle] {
				oracle = d
			}
		}
		routed := router.Route(misam.ExtractFeatures(c.a, b))
		fmt.Printf("%-24s %10v %10v | %12.3f %12.3f %12.3f\n",
			c.name, routed, oracle,
			lat[misam.DeviceCPU]*1e3, lat[misam.DeviceGPU]*1e3, lat[misam.DeviceMisam]*1e3)
	}
	fmt.Println("\nThe router reads the same §3.1 features the design selector uses; only")
	fmt.Println("the labels change — any cost model can sit behind a class.")
}
