package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"misam/internal/sparse"
)

func elemsFromRows(rows ...int) []Elem {
	out := make([]Elem, len(rows))
	for i, r := range rows {
		out[i] = Elem{Row: r, Col: i, Service: 1}
	}
	return out
}

func TestSchedulePEEmptyQueue(t *testing.T) {
	s := schedulePE(nil, 2, 16, false)
	if s.Makespan != 0 || s.Busy != 0 || s.Bubbles != 0 {
		t.Errorf("empty schedule = %+v, want zeros", s)
	}
}

func TestSchedulePEIndependentRowsBackToBack(t *testing.T) {
	// Four elements, all different rows: no stalls, makespan 4.
	s := schedulePE(elemsFromRows(0, 1, 2, 3), 2, 16, true)
	if s.Makespan != 4 || s.Bubbles != 0 {
		t.Errorf("makespan %d bubbles %d, want 4, 0", s.Makespan, s.Bubbles)
	}
	for i, is := range s.Issues {
		if is.Cycle != int64(i) {
			t.Errorf("issue %d at cycle %d, want %d", i, is.Cycle, i)
		}
	}
}

func TestSchedulePESameRowStalls(t *testing.T) {
	// Three elements of one row with a 2-cycle gap: issues at 0, 2, 4.
	s := schedulePE(elemsFromRows(7, 7, 7), 2, 16, true)
	if s.Makespan != 5 {
		t.Errorf("makespan %d, want 5 (issue at 4 + 1 service)", s.Makespan)
	}
	if s.Bubbles != 2 {
		t.Errorf("bubbles %d, want 2", s.Bubbles)
	}
	want := []int64{0, 2, 4}
	for i, is := range s.Issues {
		if is.Cycle != want[i] {
			t.Errorf("issue %d at %d, want %d", i, is.Cycle, want[i])
		}
	}
}

func TestSchedulePEFillsBubblesFromOtherRows(t *testing.T) {
	// Rows a,a,b: the same-row stall at cycle 1 is filled by row b
	// ("the scheduler can fill time step t+1 with a nonzero from another
	// row mapped to the same PE", §3.2.2).
	s := schedulePE(elemsFromRows(1, 1, 2), 2, 16, true)
	if s.Makespan != 3 || s.Bubbles != 0 {
		t.Errorf("makespan %d bubbles %d, want 3, 0", s.Makespan, s.Bubbles)
	}
	if s.Issues[1].Elem.Row != 2 {
		t.Errorf("cycle-1 issue is row %d, want bubble-filling row 2", s.Issues[1].Elem.Row)
	}
	if s.Issues[2].Elem.Row != 1 || s.Issues[2].Cycle != 2 {
		t.Errorf("deferred element issued at %d (row %d), want cycle 2 row 1", s.Issues[2].Cycle, s.Issues[2].Elem.Row)
	}
}

func TestSchedulePEWindowLimitsLookahead(t *testing.T) {
	// With window 1 the scheduler cannot reorder: rows a,a,b stalls.
	s := schedulePE(elemsFromRows(1, 1, 2), 2, 1, false)
	if s.Bubbles != 1 {
		t.Errorf("window-1 bubbles = %d, want 1", s.Bubbles)
	}
	if s.Makespan != 4 {
		t.Errorf("window-1 makespan = %d, want 4", s.Makespan)
	}
}

func TestSchedulePEServiceTimes(t *testing.T) {
	elems := []Elem{{Row: 0, Col: 0, Service: 4}, {Row: 1, Col: 1, Service: 4}}
	s := schedulePE(elems, 2, 16, false)
	if s.Makespan != 8 || s.Busy != 8 {
		t.Errorf("makespan %d busy %d, want 8, 8", s.Makespan, s.Busy)
	}
}

func TestSchedulePEZeroServiceClamped(t *testing.T) {
	s := schedulePE([]Elem{{Row: 0, Service: 0}}, 2, 16, false)
	if s.Makespan != 1 || s.Busy != 1 {
		t.Errorf("zero service not clamped to 1: %+v", s)
	}
}

// checkScheduleInvariants verifies the three hard schedule properties:
// every element issued exactly once, dependency gap respected per row,
// and no overlapping service intervals on the PE.
func checkScheduleInvariants(t *testing.T, elems []Elem, depGap int64, window int) {
	t.Helper()
	s := schedulePE(elems, depGap, window, true)
	if len(s.Issues) != len(elems) {
		t.Fatalf("issued %d of %d elements", len(s.Issues), len(elems))
	}
	lastEnd := int64(-1)
	lastRow := map[int]int64{}
	issued := map[[2]int]int{}
	for _, is := range s.Issues {
		if is.Cycle < lastEnd {
			t.Fatalf("overlapping service at cycle %d (prev ends %d)", is.Cycle, lastEnd)
		}
		svc := is.Elem.Service
		if svc < 1 {
			svc = 1
		}
		lastEnd = is.Cycle + svc
		if prev, ok := lastRow[is.Elem.Row]; ok && is.Cycle-prev < depGap {
			t.Fatalf("row %d issued at %d and %d, gap < %d", is.Elem.Row, prev, is.Cycle, depGap)
		}
		lastRow[is.Elem.Row] = is.Cycle
		issued[[2]int{is.Elem.Row, is.Elem.Col}]++
	}
	for _, e := range elems {
		issued[[2]int{e.Row, e.Col}]--
	}
	for k, v := range issued {
		if v != 0 {
			t.Fatalf("element %v scheduled %+d times vs queue", k, v)
		}
	}
	if s.Makespan != lastEnd {
		t.Fatalf("makespan %d != last completion %d", s.Makespan, lastEnd)
	}
}

func TestPropertyScheduleInvariants(t *testing.T) {
	f := func(seed int64, nIn, rowsIn, windowIn uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nIn)%50 + 1
		rows := int(rowsIn)%8 + 1
		window := int(windowIn)%20 + 1
		elems := make([]Elem, n)
		for i := range elems {
			elems[i] = Elem{Row: rng.Intn(rows), Col: i, Service: int64(rng.Intn(3) + 1)}
		}
		sub := t
		checkScheduleInvariants(sub, elems, 2, window)
		return !sub.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWiderWindowNeverSlower(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 2
		elems := make([]Elem, n)
		for i := range elems {
			elems[i] = Elem{Row: rng.Intn(5), Col: i, Service: 1}
		}
		narrow := schedulePE(elems, 2, 1, false)
		wide := schedulePE(elems, 2, 32, false)
		return wide.Makespan <= narrow.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulePEGRoundRobin(t *testing.T) {
	// 4 elements, 2 PEs, column-wise: elements 0,2 on PE0; 1,3 on PE1.
	elems := elemsFromRows(0, 1, 2, 3)
	g := schedulePEG(elems, 2, ColWise, 1, 2, 16, true)
	if len(g.PEs[0].Issues) != 2 || len(g.PEs[1].Issues) != 2 {
		t.Fatalf("round robin split = %d/%d, want 2/2",
			len(g.PEs[0].Issues), len(g.PEs[1].Issues))
	}
	if g.Makespan != 2 {
		t.Errorf("makespan %d, want 2", g.Makespan)
	}
	if g.Capacity != 4 {
		t.Errorf("capacity %d, want 4", g.Capacity)
	}
}

func TestSchedulePEGRowWiseUsesColumnModulo(t *testing.T) {
	elems := []Elem{
		{Row: 0, Col: 0, Service: 1},
		{Row: 0, Col: 1, Service: 1},
		{Row: 0, Col: 2, Service: 1},
		{Row: 0, Col: 3, Service: 1},
	}
	g := schedulePEG(elems, 2, RowWise, 1, 2, 16, true)
	for _, is := range g.PEs[0].Issues {
		if is.Elem.Col%2 != 0 {
			t.Errorf("PE0 got column %d, want even columns", is.Elem.Col)
		}
	}
	for _, is := range g.PEs[1].Issues {
		if is.Elem.Col%2 != 1 {
			t.Errorf("PE1 got column %d, want odd columns", is.Elem.Col)
		}
	}
}

func TestScheduleAToyMatchesFigure6Semantics(t *testing.T) {
	// A single dense row: column-wise round-robin over 2 PEs alternates
	// PEs, so the 2-cycle same-row dependency never stalls (elements of
	// the row land on alternating PEs 2 apart on each PE).
	row := sparse.NewCOO(1, 6)
	for c := 0; c < 6; c++ {
		row.Append(0, c, 1)
	}
	row.Normalize()
	a := row.ToCSR()
	groups := ScheduleA(a, ScheduleOptions{PEGs: 1, PEsPerPEG: 2, Traversal: ColWise, DepGap: 2, Window: 16, Trace: true})
	if got := Makespan(groups); got != 5 {
		// PE0 gets cols 0,2,4 (same row): issues at 0,2,4 → ends 5.
		t.Errorf("makespan %d, want 5", got)
	}
}

func TestScheduleADefaults(t *testing.T) {
	a := sparse.Identity(8)
	groups := ScheduleA(a, ScheduleOptions{})
	if len(groups) != 1 {
		t.Fatalf("default PEGs = %d, want 1", len(groups))
	}
	if Makespan(groups) == 0 {
		t.Error("zero makespan for nonempty matrix")
	}
}
