package sim

// Resource model: Table 2's post-synthesis utilization estimates for the
// Xilinx Alveo U55C, and the §6.2 multi-tenant packing analysis built on
// them.

// Resources is the fraction of each U55C resource class a design consumes
// (Table 2), expressed in percent.
type Resources struct {
	LUT, FF, BRAM, URAM, DSP float64
}

// Max returns the largest single utilization — the binding constraint for
// replicating the design.
func (r Resources) Max() float64 {
	m := r.LUT
	for _, v := range []float64{r.FF, r.BRAM, r.URAM, r.DSP} {
		if v > m {
			m = v
		}
	}
	return m
}

// add returns the componentwise sum.
func (r Resources) add(o Resources) Resources {
	return Resources{r.LUT + o.LUT, r.FF + o.FF, r.BRAM + o.BRAM, r.URAM + o.URAM, r.DSP + o.DSP}
}

// fits reports whether the cumulative utilization stays within limit
// percent of every resource class.
func (r Resources) fits(limit float64) bool {
	return r.LUT <= limit && r.FF <= limit && r.BRAM <= limit && r.URAM <= limit && r.DSP <= limit
}

// DesignResources returns the Table 2 utilization for a design. Designs 2
// and 3 share a bitstream and hence a resource footprint.
func DesignResources(id DesignID) Resources {
	switch id {
	case Design1:
		return Resources{LUT: 33.20, FF: 23.61, BRAM: 60.71, URAM: 26.67, DSP: 29.00}
	case Design2, Design3:
		return Resources{LUT: 43.03, FF: 30.35, BRAM: 48.02, URAM: 40.00, DSP: 30.68}
	case Design4:
		return Resources{LUT: 30.53, FF: 21.15, BRAM: 24.21, URAM: 30.00, DSP: 20.49}
	default:
		return Resources{}
	}
}

// BitstreamBytes models each design's bitstream size. §6.1 reports
// 50–80 MB bitstreams on the U55C; the denser designs produce the larger
// files.
func BitstreamBytes(id DesignID) int64 {
	switch id {
	case Design1:
		return 60 << 20
	case Design2, Design3:
		return 80 << 20
	case Design4:
		return 50 << 20
	default:
		return 64 << 20
	}
}

// MaxInstances reports how many independent copies of a design fit on the
// fabric within limit percent of every resource class — the §6.2
// multi-tenancy estimate ("1 instance of Design 1, 2 instances of
// Design 2 or 3, and up to 2 instances of Design 4"). A limit below 100
// reserves headroom for the static shell and routing feasibility.
func MaxInstances(id DesignID, limit float64) int {
	res := DesignResources(id)
	if res.Max() <= 0 {
		return 0
	}
	n := 0
	total := Resources{}
	for {
		next := total.add(res)
		if !next.fits(limit) {
			return n
		}
		total = next
		n++
	}
}

// CanCoLocate reports whether the given mix of designs fits concurrently
// within limit percent of every resource class ("any remaining FPGA
// capacity can be used to co-locate additional workloads", §6.2).
func CanCoLocate(ids []DesignID, limit float64) bool {
	total := Resources{}
	for _, id := range ids {
		total = total.add(DesignResources(id))
	}
	return total.fits(limit)
}

// TrapezoidAreas lists the §6.2 area costs (mm²) of Trapezoid's ASIC
// configurations, used to report its fixed-function overhead: "area costs
// of 69.7mm², 57.6mm², and 51.2mm² ... up to 26.5% of the chip area
// becomes idle".
var TrapezoidAreas = []float64{69.7, 57.6, 51.2}

// TrapezoidIdleFraction returns the worst-case idle silicon fraction when
// the largest Trapezoid configuration runs a workload needing only the
// smallest: (69.7-51.2)/69.7 ≈ 26.5%.
func TrapezoidIdleFraction() float64 {
	max, min := TrapezoidAreas[0], TrapezoidAreas[0]
	for _, a := range TrapezoidAreas {
		if a > max {
			max = a
		}
		if a < min {
			min = a
		}
	}
	return (max - min) / max
}
