package sim

import (
	"math/rand"
	"sync"
	"testing"

	"misam/internal/sparse"
)

// equivalencePairs spans the workload generator families the corpus draws
// from (uniform, power-law graphs, banded scientific, pruned DNN weights,
// imbalanced, dense multi-RHS, empty, and a shared-operand square).
func equivalencePairs(t testing.TB) []struct {
	name string
	a, b *sparse.CSR
} {
	t.Helper()
	rng := rand.New(rand.NewSource(20250805))
	pl := sparse.PowerLaw(rng, 900, 900, 5400, 1.8)
	return []struct {
		name string
		a, b *sparse.CSR
	}{
		{"uniform×dense", sparse.Uniform(rng, 700, 700, 0.01), sparse.DenseRandom(rng, 700, 48)},
		{"powerlaw×uniform", pl, sparse.Uniform(rng, 900, 256, 0.08)},
		{"graph-square", pl, pl},
		{"banded×dense", sparse.Banded(rng, 600, 600, 4, 0.8), sparse.DenseRandom(rng, 600, 32)},
		{"dnn×dnn", sparse.DNNPruned(rng, 512, 384, 0.25, true, 4), sparse.DNNPruned(rng, 384, 256, 0.3, true, 4)},
		{"imbalanced×dense", sparse.Imbalanced(rng, 800, 800, 8000, 0.01, 0.9), sparse.DenseRandom(rng, 800, 16)},
		{"hs×hs", sparse.Uniform(rng, 1200, 1200, 0.002), sparse.Uniform(rng, 1200, 1200, 0.001)},
		{"empty", sparse.NewCOO(50, 50).ToCSR(), sparse.NewCOO(50, 50).ToCSR()},
	}
}

// TestSimulateAllMatchesSerial asserts the headline determinism guarantee:
// the parallel, shared-precompute engine produces bit-identical Result
// values (every field) to the serial reference path, across the generator
// families.
func TestSimulateAllMatchesSerial(t *testing.T) {
	old := numTileWorkers
	defer func() { numTileWorkers = old }()
	for _, tc := range equivalencePairs(t) {
		serial, err := SimulateAllSerial(tc.a, tc.b)
		if err != nil {
			t.Fatalf("%s: serial: %v", tc.name, err)
		}
		// Both SimulateAll branches — sequential designs (single
		// processor) and goroutine fan-out — must match the reference.
		for _, workers := range []int{1, 4} {
			numTileWorkers = func() int { return workers }
			parallel, err := SimulateAll(tc.a, tc.b)
			if err != nil {
				t.Fatalf("%s: parallel (workers=%d): %v", tc.name, workers, err)
			}
			if serial != parallel {
				t.Errorf("%s (workers=%d): SimulateAll diverged from serial reference:\nserial:   %+v\nparallel: %+v",
					tc.name, workers, serial, parallel)
			}
		}
		numTileWorkers = old
		// The compatibility wrapper must agree too (fresh workload per call).
		for _, id := range AllDesigns {
			r, err := SimulateDesign(id, tc.a, tc.b)
			if err != nil {
				t.Fatalf("%s/%v: %v", tc.name, id, err)
			}
			if r != serial[id] {
				t.Errorf("%s/%v: Simulate wrapper diverged from serial reference", tc.name, id)
			}
		}
	}
}

// TestParallelTileLoopMatchesSerial forces the bounded worker pool on
// (even on single-CPU hosts) with a tiling small enough to produce many
// tiles, and asserts the tile-parallel schedule reduces to exactly the
// serial result.
func TestParallelTileLoopMatchesSerial(t *testing.T) {
	old := numTileWorkers
	numTileWorkers = func() int { return 4 }
	defer func() { numTileWorkers = old }()

	rng := rand.New(rand.NewSource(7))
	a := sparse.Uniform(rng, 500, 2000, 0.008)
	b := sparse.Uniform(rng, 2000, 300, 0.05)

	for _, id := range AllDesigns {
		cfg := GetConfig(id)
		// Shrink the tiles so every design sees well over minParallelTiles.
		cfg.BRAMRowsPerTile = 64
		cfg.BRAMCapacityNNZ = 512

		ws, err := NewWorkload(a, b)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := ws.simulate(nil, cfg, false)
		if err != nil {
			t.Fatal(err)
		}
		wp, err := NewWorkload(a, b)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := wp.simulate(nil, cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Tiles < minParallelTiles {
			t.Fatalf("%v: only %d tiles; the parallel path was not exercised", id, serial.Tiles)
		}
		if serial != parallel {
			t.Errorf("%v: tile-parallel result diverged:\nserial:   %+v\nparallel: %+v", id, serial, parallel)
		}
	}
}

// TestConcurrentSimulateAllRace exercises concurrent SimulateAll calls on
// shared *sparse.CSR inputs and concurrent Simulate calls on one shared
// Workload — run under `go test -race ./...` (ci.sh) this is the data-race
// proof for the cache layer.
func TestConcurrentSimulateAllRace(t *testing.T) {
	old := numTileWorkers
	numTileWorkers = func() int { return 4 } // force design fan-out + tile pool
	defer func() { numTileWorkers = old }()

	rng := rand.New(rand.NewSource(33))
	a := sparse.PowerLaw(rng, 600, 600, 4200, 1.7)
	b := sparse.Uniform(rng, 600, 128, 0.1)

	want, err := SimulateAll(a, b)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := NewWorkload(a, b)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := SimulateAll(a, b)
			if err != nil {
				errc <- err
				return
			}
			if got != want {
				t.Error("concurrent SimulateAll on shared CSR diverged")
			}
		}()
		for _, id := range AllDesigns {
			wg.Add(1)
			go func(id DesignID) {
				defer wg.Done()
				got, err := shared.SimulateDesign(id)
				if err != nil {
					errc <- err
					return
				}
				if got != want[id] {
					t.Errorf("%v: concurrent Simulate on shared Workload diverged", id)
				}
			}(id)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestWorkloadPrecomputeShared pins the cache behavior: repeated and
// cross-design simulations reuse one CSC conversion, one B row-count
// pass, and shared bins for designs with identical binning keys.
func TestWorkloadPrecomputeShared(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := sparse.Uniform(rng, 400, 400, 0.02)
	b := sparse.DenseRandom(rng, 400, 64)
	w, err := NewWorkload(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if w.CSC() != w.CSC() {
		t.Error("CSC conversion not cached")
	}
	if &w.BRowNNZ()[0] != &w.BRowNNZ()[0] {
		t.Error("B row counts not cached")
	}
	if _, err := w.SimulateAll(); err != nil {
		t.Fatal(err)
	}
	// Designs 1 and 2 share the dense column-wise binning; Design 3 (row
	// traversal) and Design 4 (compressed tiling) each add one entry.
	w.mu.Lock()
	bins, tilings := len(w.bins), len(w.tilings)
	w.mu.Unlock()
	if bins != 3 {
		t.Errorf("bin cache holds %d entries, want 3 (D1+D2 shared, D3, D4)", bins)
	}
	if tilings != 2 {
		t.Errorf("tiling cache holds %d entries, want 2 (dense, sparsity-aware)", tilings)
	}
}

func TestNewWorkloadDimensionMismatch(t *testing.T) {
	if _, err := NewWorkload(sparse.Identity(4), sparse.Identity(5)); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

// TestConfigValidateRejectsZeroChannels pins the satellite fix: a
// zero-channel (or otherwise degenerate) Config must surface as an
// explicit error from Simulate, never as quietly wrong cycle counts.
func TestConfigValidateRejectsZeroChannels(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	a := sparse.Uniform(rng, 100, 100, 0.05)
	b := sparse.DenseRandom(rng, 100, 16)

	for _, id := range AllDesigns {
		if err := GetConfig(id).Validate(); err != nil {
			t.Errorf("%v: Table 1 config rejected: %v", id, err)
		}
	}
	break1 := func(mut func(*Config)) Config {
		cfg := GetConfig(Design1)
		mut(&cfg)
		return cfg
	}
	bad := []Config{
		break1(func(c *Config) { c.ChA = 0 }),
		break1(func(c *Config) { c.ChB = -2 }),
		break1(func(c *Config) { c.ChC = 0 }),
		break1(func(c *Config) { c.PEG = 0 }),
		break1(func(c *Config) { c.ACC = 0 }),
		break1(func(c *Config) { c.SIMDWidth = 0 }),
		break1(func(c *Config) { c.AElemsPerRead = 0 }),
		break1(func(c *Config) { c.CElemsPerWrite = 0 }),
		break1(func(c *Config) { c.FreqMHz = 0 }),
		{}, // a forgotten common(): everything zero
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d passed Validate", i)
		}
		if _, err := Simulate(cfg, a, b); err == nil {
			t.Errorf("bad config %d: Simulate returned no error", i)
		}
	}
}
