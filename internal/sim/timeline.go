package sim

import (
	"fmt"
	"strings"
)

// RenderTimeline draws traced PEG schedules as the ASCII equivalent of
// Figure 6's timelines: one row per PE, one column per cycle. Each issue
// is shown as the output-row label ('0'–'9', then 'a'–'z' cycling) with
// '-' marking the remaining service cycles and '.' marking idle
// (dependency-bubble) cycles. maxCycles truncates wide schedules.
//
//	PEG0.PE0 |0-.1-...|
//	PEG0.PE1 |2-3-....|
//
// Schedules must have been produced with tracing enabled; untraced
// groups render as a summary line.
func RenderTimeline(groups []PEGSchedule, maxCycles int) string {
	if maxCycles <= 0 {
		maxCycles = 80
	}
	var sb strings.Builder
	span := Makespan(groups)
	width := span
	truncated := false
	if width > int64(maxCycles) {
		width = int64(maxCycles)
		truncated = true
	}
	for p, g := range groups {
		for pe, ps := range g.PEs {
			if ps.Busy > 0 && len(ps.Issues) == 0 {
				fmt.Fprintf(&sb, "PEG%d.PE%d | %d elements, makespan %d (untraced)\n", p, pe, ps.Busy, ps.Makespan)
				continue
			}
			row := make([]byte, width)
			for i := range row {
				row[i] = '.'
			}
			for _, is := range ps.Issues {
				if is.Cycle >= width {
					continue
				}
				row[is.Cycle] = rowLabel(is.Elem.Row)
				svc := is.Elem.Service
				if svc < 1 {
					svc = 1
				}
				for c := is.Cycle + 1; c < is.Cycle+svc && c < width; c++ {
					row[c] = '-'
				}
			}
			// Trim trailing idle cells beyond this PE's makespan.
			for i := ps.Makespan; i < width; i++ {
				row[i] = ' '
			}
			fmt.Fprintf(&sb, "PEG%d.PE%d |%s|\n", p, pe, row)
		}
	}
	if truncated {
		fmt.Fprintf(&sb, "(truncated at %d of %d cycles)\n", width, span)
	}
	return sb.String()
}

// rowLabel maps an output row index to a single display character.
func rowLabel(row int) byte {
	const digits = "0123456789abcdefghijklmnopqrstuvwxyz"
	return digits[row%len(digits)]
}
