package sim

import (
	"math/rand"
	"testing"

	"misam/internal/sparse"
)

func steadyPair() (*sparse.CSR, *sparse.CSR) {
	rng := rand.New(rand.NewSource(1401))
	a := sparse.Uniform(rng, 1000, 1000, 0.01)
	b := sparse.DenseRandom(rng, 1000, 64)
	return a, b
}

// TestSimulateAllSteadyStateZeroAllocs is the allocation-free guarantee:
// once a Workload's caches and scratch pools are warm, repeated full
// four-design evaluations allocate nothing. The tile-worker count is
// pinned to 1 because the goroutine fan-out itself allocates; the serial
// engine is the steady-state serving path on the single-CPU reference
// host and the one the guarantee covers.
func TestSimulateAllSteadyStateZeroAllocs(t *testing.T) {
	old := numTileWorkers
	numTileWorkers = func() int { return 1 }
	defer func() { numTileWorkers = old }()

	a, b := steadyPair()
	w, err := NewWorkload(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.SimulateAll(); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := w.SimulateAll(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm SimulateAll allocates %.1f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := w.SimulateAllPruned(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm SimulateAllPruned allocates %.1f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := w.Simulate(GetConfig(Design2)); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm Simulate allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkSimulateAllSteadyState measures the warm exact slow tier: one
// shared Workload, all four designs, serial tile loop. ReportAllocs pins
// the 0 allocs/op figure in benchmark output; the AllocsPerRun test above
// enforces it.
func BenchmarkSimulateAllSteadyState(b *testing.B) {
	old := numTileWorkers
	numTileWorkers = func() int { return 1 }
	defer func() { numTileWorkers = old }()

	am, bm := steadyPair()
	w, err := NewWorkload(am, bm)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.SimulateAll(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.SimulateAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateAllPrunedSteadyState is the same workload through the
// coarse-then-exact + early-exit path — the slow-tier speedup headline of
// BENCH_PR10.json.
func BenchmarkSimulateAllPrunedSteadyState(b *testing.B) {
	old := numTileWorkers
	numTileWorkers = func() int { return 1 }
	defer func() { numTileWorkers = old }()

	am, bm := steadyPair()
	w, err := NewWorkload(am, bm)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.SimulateAllPruned(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.SimulateAllPruned(); err != nil {
			b.Fatal(err)
		}
	}
}
