package sim

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"misam/internal/baseline"
	"misam/internal/sparse"
)

// Workload is the design-independent precompute of one A×B product. The
// simulator re-derives the same artifacts for every design it evaluates —
// A's CSC form, per-row B nonzero counts, flop and C-output totals, and
// the per-format tilings and element bins — so evaluating all four designs
// (or the same pair under several configs, as the dataset labeller and the
// reconfiguration engine do) used to pay that cost four times over.
// Workload computes each artifact once, on first use, and shares it across
// every Simulate call on the same pair.
//
// A Workload is safe for concurrent use: all caches are built under
// sync.Once-style guards, and the cached artifacts are immutable once
// published. SimulateAll relies on this to fan the four designs out over
// goroutines against one shared Workload.
type Workload struct {
	// A and B are the operands; they must not be mutated while the
	// workload is in use (the caches alias their storage).
	A, B *sparse.CSR

	cscOnce sync.Once
	aCSC    *sparse.CSC

	preOnce  sync.Once
	bRowNNZ  []int
	flops    int64
	cOutputs int64
	aMaxRow  int

	mu      sync.Mutex
	tilings map[tilingKey]*tilingEntry
	bins    map[binKey]*binEntry
	coarse  map[Config]*coarseEntry

	// poolMu guards the workload-level scratch freelists. Scheduling
	// scratches and per-call tile state are pooled here — not per
	// Simulate call — so warm serving reuses fully grown buffers across
	// requests and the steady state allocates nothing. Plain freelists
	// rather than sync.Pool: the GC never clears them, which is what lets
	// the AllocsPerRun guard pin 0 allocs/op.
	poolMu    sync.Mutex
	schedFree []*schedScratch
	runFree   []*tileRun
	boundFree []*raceBound

	// Tile-level memoization (see TileCache). tcAttached is the cache an
	// owner (Framework, verifier, bench) explicitly attached so schedules
	// are shared across workloads; AttachTileCache(nil) disables
	// memoization entirely (the serial reference path does this). When
	// nothing was attached, a small private cache is created lazily so
	// near-duplicate tiles inside one workload — and repeated Simulate
	// calls on it — still reuse schedules.
	tcExplicit bool
	tcAttached *TileCache
	tcPrivate  *TileCache
}

// tileRun is the pooled per-Simulate-call state: the tile outcome buffer
// plus the shared counters the tile workers race on.
type tileRun struct {
	outs    []tileOutcome
	next    int64
	partial atomic.Int64
	abort   atomic.Bool
}

func (w *Workload) getSched() *schedScratch {
	w.poolMu.Lock()
	defer w.poolMu.Unlock()
	if n := len(w.schedFree); n > 0 {
		sc := w.schedFree[n-1]
		w.schedFree = w.schedFree[:n-1]
		return sc
	}
	// Every Elem.Row this workload schedules is an A row index, so the
	// scratch can size its row tables up front instead of scanning each
	// PE queue for its max row.
	return &schedScratch{rowsHint: w.A.Rows}
}

func (w *Workload) putSched(sc *schedScratch) {
	w.poolMu.Lock()
	w.schedFree = append(w.schedFree, sc)
	w.poolMu.Unlock()
}

// getRun returns per-call tile state with outs sized for n tiles. Every
// live (non-skip) slot is written before the reduction reads it, and the
// abort path never reduces, so outs needs no zeroing.
func (w *Workload) getRun(n int) *tileRun {
	w.poolMu.Lock()
	var run *tileRun
	if ln := len(w.runFree); ln > 0 {
		run = w.runFree[ln-1]
		w.runFree = w.runFree[:ln-1]
	} else {
		run = &tileRun{}
	}
	w.poolMu.Unlock()
	if cap(run.outs) < n {
		run.outs = make([]tileOutcome, n)
	}
	run.outs = run.outs[:n]
	run.next = 0
	run.partial.Store(0)
	run.abort.Store(false)
	return run
}

func (w *Workload) putRun(run *tileRun) {
	w.poolMu.Lock()
	w.runFree = append(w.runFree, run)
	w.poolMu.Unlock()
}

// getBound returns a pooled racing bound reset to +Inf. Bounds escape to
// the heap (goroutines capture them), so pooling keeps the pruned paths
// allocation-free in the steady state.
func (w *Workload) getBound() *raceBound {
	w.poolMu.Lock()
	var b *raceBound
	if n := len(w.boundFree); n > 0 {
		b = w.boundFree[n-1]
		w.boundFree = w.boundFree[:n-1]
	} else {
		b = &raceBound{}
	}
	w.poolMu.Unlock()
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

func (w *Workload) putBound(b *raceBound) {
	w.poolMu.Lock()
	w.boundFree = append(w.boundFree, b)
	w.poolMu.Unlock()
}

// AttachTileCache points the workload at a shared tile-schedule cache, so
// its simulations reuse (and feed) schedules memoized by other workloads —
// the verifier re-simulating a just-served pair is the canonical client.
// Attaching nil disables tile memoization for this workload.
func (w *Workload) AttachTileCache(tc *TileCache) {
	w.poolMu.Lock()
	w.tcExplicit = true
	w.tcAttached = tc
	w.poolMu.Unlock()
}

// tileCacheRef resolves the cache simulations memoize through: the
// explicitly attached cache if AttachTileCache was called (possibly nil =
// disabled), otherwise a lazily created private default.
func (w *Workload) tileCacheRef() *TileCache {
	w.poolMu.Lock()
	defer w.poolMu.Unlock()
	if w.tcExplicit {
		return w.tcAttached
	}
	if w.tcPrivate == nil {
		w.tcPrivate = NewTileCache(DefaultTileCacheBytes)
	}
	return w.tcPrivate
}

// tilingKey identifies one B row-tiling scheme: Design 4's sparsity-aware
// packing keyed by nnz capacity, or the dense fixed-height scheme keyed by
// tile rows.
type tilingKey struct {
	compressed bool
	param      int
}

// binKey identifies one cached binning of A's elements: the tiling they
// were binned against, the traversal order, and the service-time rule
// baked into each Elem (compressed walks stored nonzeros, dense walks
// b.Cols; both divided by the SIMD width).
type binKey struct {
	tiling     tilingKey
	traversal  Traversal
	compressed bool
	simd       int
}

type tilingEntry struct {
	once    sync.Once
	tiles   []Span
	tileNNZ []int64
}

type binEntry struct {
	once    sync.Once
	perTile [][]Elem
}

// NewWorkload validates the product dimensions and returns an empty
// precompute cache for A×B. All artifacts are computed lazily on first
// use, so a workload that only ever simulates Design 4 never builds the
// dense tiling.
func NewWorkload(a, b *sparse.CSR) (*Workload, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("sim: dimension mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	return &Workload{
		A:       a,
		B:       b,
		tilings: make(map[tilingKey]*tilingEntry),
		bins:    make(map[binKey]*binEntry),
		coarse:  make(map[Config]*coarseEntry),
	}, nil
}

// CSC returns A's compressed-sparse-column sparsity pattern, converting
// once. The returned CSC has a nil Val: every simulator consumer —
// column-wise traversal, tile binning, the coarse floors — is
// value-independent, so the conversion skips the value scatter.
func (w *Workload) CSC() *sparse.CSC {
	w.cscOnce.Do(func() { w.aCSC = w.A.ToCSCPattern() })
	return w.aCSC
}

func (w *Workload) precompute() {
	w.preOnce.Do(func() {
		nnz := make([]int, w.B.Rows)
		for r := 0; r < w.B.Rows; r++ {
			nnz[r] = w.B.RowNNZ(r)
		}
		w.bRowNNZ = nnz
		w.flops = flopCount(w.A, nnz)
		w.cOutputs = estimateCOutputs(w.A, nnz, w.B.Cols)
		maxRow := 0
		for r := 0; r < w.A.Rows; r++ {
			if n := w.A.RowNNZ(r); n > maxRow {
				maxRow = n
			}
		}
		w.aMaxRow = maxRow
	})
}

// AMaxRow returns the nonzero count of A's longest row, cached with the
// rest of the precompute (BaselineStats and the load-imbalance features
// both need it; neither re-walks A's row pointers).
func (w *Workload) AMaxRow() int {
	w.precompute()
	return w.aMaxRow
}

// BRowNNZ returns the per-row nonzero counts of B. The slice is shared;
// callers must not modify it.
func (w *Workload) BRowNNZ() []int {
	w.precompute()
	return w.bRowNNZ
}

// FlopCount returns the useful multiply-accumulate count of the product.
func (w *Workload) FlopCount() int64 {
	w.precompute()
	return w.flops
}

// COutputs returns the estimated number of C entries written back (see
// estimateCOutputs).
func (w *Workload) COutputs() int64 {
	w.precompute()
	return w.cOutputs
}

// BaselineStats derives the baseline cost models' workload statistics
// entirely from the cached precompute. The values are identical to
// baseline.Collect(A, B) — Flops and Outputs are the same exact integer
// sums, and the imbalance term uses the cached longest-row count — so
// repeated calls on one workload cost O(1) beyond the first.
func (w *Workload) BaselineStats() baseline.Stats {
	w.precompute()
	s := baseline.Stats{
		M: w.A.Rows, K: w.A.Cols, N: w.B.Cols,
		NNZA: w.A.NNZ(), NNZB: w.B.NNZ(),
		ADensity: w.A.Density(), BDensity: w.B.Density(),
		Flops:   float64(w.flops),
		Outputs: float64(w.cOutputs),
	}
	maxRow := w.aMaxRow
	if w.A.Rows > 0 && s.NNZA > 0 {
		s.AImbalance = float64(maxRow) / (float64(s.NNZA) / float64(w.A.Rows))
	} else {
		s.AImbalance = 1
	}
	if w.B.Rows > 0 {
		s.AvgBRowNNZ = float64(s.NNZB) / float64(w.B.Rows)
	}
	return s
}

// tiling returns the cached B row tiles and per-tile nonzero counts for a
// design's tiling scheme.
func (w *Workload) tiling(cfg Config) ([]Span, []int64) {
	key := tilingKey{compressed: cfg.CompressedB, param: cfg.BRAMRowsPerTile}
	if cfg.CompressedB {
		key.param = cfg.BRAMCapacityNNZ
	}
	w.mu.Lock()
	e, ok := w.tilings[key]
	if !ok {
		e = &tilingEntry{}
		w.tilings[key] = e
	}
	w.mu.Unlock()
	e.once.Do(func() {
		if key.compressed {
			e.tiles = SparsityAwareRowTiles(w.B, key.param)
		} else {
			e.tiles = DenseRowTiles(w.B.Rows, key.param)
		}
		e.tileNNZ = make([]int64, len(e.tiles))
		for t, s := range e.tiles {
			e.tileNNZ[t] = int64(w.B.RowPtr[s.Hi] - w.B.RowPtr[s.Lo])
		}
	})
	return e.tiles, e.tileNNZ
}

// binned returns the cached per-tile element bins of A for a design's
// tiling, traversal and service rule. Designs 1 and 2 share one entry
// (same dense tiling, column-wise order, SIMD width); Design 3 adds a
// row-wise entry over the same tiling; Design 4 has its own. The coarse
// floors deliberately do not use bins (see coarseFloors), so only
// designs that reach the exact simulator pay for binning.
func (w *Workload) binned(cfg Config, tiles []Span) [][]Elem {
	key := binKey{
		tiling:     tilingKey{compressed: cfg.CompressedB, param: cfg.BRAMRowsPerTile},
		traversal:  cfg.SchedulerA,
		compressed: cfg.CompressedB,
		simd:       cfg.SIMDWidth,
	}
	if cfg.CompressedB {
		key.tiling.param = cfg.BRAMCapacityNNZ
	}
	w.mu.Lock()
	e, ok := w.bins[key]
	if !ok {
		e = &binEntry{}
		w.bins[key] = e
	}
	w.mu.Unlock()
	e.once.Do(func() {
		service := w.serviceFunc(cfg)
		if cfg.SchedulerA == ColWise {
			e.perTile = binByTileColWise(w.CSC(), tiles, service)
		} else {
			e.perTile = binByTileRowWise(w.A, tiles, service)
		}
	})
	return e.perTile
}

// serviceFunc builds the per-column service-time rule of §3.2.1/§3.2.4:
// processing one A element walks the matching B row through the SIMD
// lanes; compressed B walks only the stored nonzeros.
func (w *Workload) serviceFunc(cfg Config) func(col int) int64 {
	if cfg.CompressedB {
		nnz := w.BRowNNZ()
		simd := int64(cfg.SIMDWidth)
		return func(col int) int64 { return ceilDiv64(int64(nnz[col]), simd) }
	}
	dense := ceilDiv64(int64(w.B.Cols), int64(cfg.SIMDWidth))
	return func(int) int64 { return dense }
}

// Simulate runs design cfg against the cached workload. Results are
// bit-identical to the historical serial Simulate(cfg, a, b) path: tiles
// may be scheduled in parallel, but every per-tile quantity is reduced in
// tile order and all cross-tile accumulations are exact integer sums.
func (w *Workload) Simulate(cfg Config) (Result, error) {
	return w.simulate(context.Background(), cfg, true)
}

// SimulateCtx is Simulate under a context: cancellation or deadline
// expiry aborts the tile pool between tiles and returns ctx.Err().
func (w *Workload) SimulateCtx(ctx context.Context, cfg Config) (Result, error) {
	return w.simulate(ctx, cfg, true)
}

// SimulateDesign is shorthand for Simulate(GetConfig(id)).
func (w *Workload) SimulateDesign(id DesignID) (Result, error) {
	return w.Simulate(GetConfig(id))
}

// SimulateDesignCtx is SimulateCtx(ctx, GetConfig(id)).
func (w *Workload) SimulateDesignCtx(ctx context.Context, id DesignID) (Result, error) {
	return w.SimulateCtx(ctx, GetConfig(id))
}

// SimulateAll evaluates every design on the workload, sharing the
// precompute and fanning the four designs out over goroutines. On error
// the first failing design (in design order) wins. With a single
// processor the fan-out buys nothing and the goroutine interleaving
// thrashes the cache, so the designs run sequentially instead — the
// deterministic simulator makes the two paths indistinguishable.
func (w *Workload) SimulateAll() ([NumDesigns]Result, error) {
	return w.SimulateAllCtx(context.Background())
}

// SimulateAllCtx is SimulateAll under a context; a cancelled or expired
// context aborts all four design simulations mid-tile-pool.
func (w *Workload) SimulateAllCtx(ctx context.Context) ([NumDesigns]Result, error) {
	// The serial and parallel paths live in separate functions so the
	// serial result array is never captured by a goroutine closure —
	// such a capture would box it on the heap on every call and break
	// the steady-state zero-allocation guarantee.
	if numTileWorkers() <= 1 {
		var out [NumDesigns]Result
		for _, id := range AllDesigns {
			var err error
			if out[id], err = w.simulate(ctx, GetConfig(id), true); err != nil {
				return out, err
			}
		}
		return out, nil
	}
	return w.simulateAllParallel(ctx, nil)
}

// simulateAllParallel fans the four designs out over goroutines; bound,
// when non-nil, is the shared racing early-exit bound each completing
// design lowers.
func (w *Workload) simulateAllParallel(ctx context.Context, bound *raceBound) ([NumDesigns]Result, error) {
	var out [NumDesigns]Result
	var errs [NumDesigns]error
	var wg sync.WaitGroup
	for _, id := range AllDesigns {
		wg.Add(1)
		go func(id DesignID) {
			defer wg.Done()
			r, err := w.simulateBound(ctx, GetConfig(id), true, bound)
			out[id], errs[id] = r, err
			if bound != nil && err == nil && !r.Pruned {
				bound.offer(r.Seconds)
			}
		}(id)
	}
	wg.Wait()
	for _, id := range AllDesigns {
		if errs[id] != nil {
			return out, errs[id]
		}
	}
	return out, nil
}

// Options selects the pruned evaluation modes of SimulateAllOpts. The
// zero value is the exact path (identical to SimulateAll).
type Options struct {
	// EarlyExit aborts a design's tile loop once its partial cycle total
	// (plus the exact write-back charge) is strictly worse than the best
	// complete design seen so far. Argmin-preserving: per-tile charges
	// are non-negative, so a design whose exact total is ≤ the bound can
	// never trip it.
	EarlyExit bool
	// Coarse ranks the designs by a cheap analytic lower bound (tiling
	// shapes + per-tile busy totals, no scheduling) before the exact
	// pass, evaluates them most-promising first, and skips any design
	// whose bound alone is strictly worse than a completed contender.
	// Argmin-preserving for the same reason: the bound never exceeds the
	// exact total.
	Coarse bool
}

// PruneOptions enables both pruning layers — the recommended setting for
// single-shot "which design wins?" callers.
func PruneOptions() Options {
	return Options{EarlyExit: true, Coarse: true}
}

// raceBound is the best-so-far complete design latency shared across the
// design fan-out, stored as float64 bits in an atomic for lock-free
// CAS-min updates.
type raceBound struct {
	bits atomic.Uint64
}

func (b *raceBound) best() float64 {
	return math.Float64frombits(b.bits.Load())
}

// offer lowers the bound to s if s is smaller. Only complete (non-pruned)
// design totals may be offered — a pruned lower bound could otherwise
// incorrectly prune the true winner.
func (b *raceBound) offer(s float64) {
	for {
		cur := b.bits.Load()
		if s >= math.Float64frombits(cur) {
			return
		}
		if b.bits.CompareAndSwap(cur, math.Float64bits(s)) {
			return
		}
	}
}

// SimulateAllPruned is SimulateAll under PruneOptions: same winner, same
// winning Result, losers possibly reduced to pruned lower bounds.
func (w *Workload) SimulateAllPruned() ([NumDesigns]Result, error) {
	return w.SimulateAllOpts(context.Background(), PruneOptions())
}

// SimulateAllPrunedCtx is SimulateAllPruned under a context.
func (w *Workload) SimulateAllPrunedCtx(ctx context.Context) ([NumDesigns]Result, error) {
	return w.SimulateAllOpts(ctx, PruneOptions())
}

// SimulateAllOpts evaluates every design under the given pruning
// options. Guarantees, for any Options value:
//
//   - BestDesign over the returned array equals BestDesign over the
//     exact SimulateAll array (ties included: pruned losers report
//     strictly worse Seconds than the winner, so design-order
//     tie-breaking is unaffected).
//   - The winner's Result — and every Result with Pruned == false — is
//     bit-identical to the exact path.
//   - Pruned == true marks every Result that is a lower bound rather
//     than an exact total.
func (w *Workload) SimulateAllOpts(ctx context.Context, opt Options) ([NumDesigns]Result, error) {
	if !opt.EarlyExit && !opt.Coarse {
		return w.SimulateAllCtx(ctx)
	}
	if opt.Coarse {
		return w.simulateAllCoarse(ctx, opt.EarlyExit)
	}
	return w.simulateAllEarlyExit(ctx)
}

// simulateAllEarlyExit runs the design fan-out with a shared racing
// best-so-far bound but no coarse ranking. With multiple processors the
// four designs race concurrently, each lowering the bound as it
// completes; on a single processor they run in design order.
func (w *Workload) simulateAllEarlyExit(ctx context.Context) ([NumDesigns]Result, error) {
	bound := w.getBound()
	defer w.putBound(bound)
	if numTileWorkers() <= 1 {
		var out [NumDesigns]Result
		for _, id := range AllDesigns {
			r, err := w.simulateBound(ctx, GetConfig(id), true, bound)
			if err != nil {
				return out, err
			}
			out[id] = r
			if !r.Pruned {
				bound.offer(r.Seconds)
			}
		}
		return out, nil
	}
	return w.simulateAllParallel(ctx, bound)
}

// simulateAllCoarse ranks the designs by their analytic lower bounds,
// evaluates them most-promising first, and skips any design whose bound
// alone exceeds a completed contender's total. Evaluation is sequential
// by rank — the whole point is that later designs see the tightest
// possible bound.
func (w *Workload) simulateAllCoarse(ctx context.Context, earlyExit bool) ([NumDesigns]Result, error) {
	var out [NumDesigns]Result
	var lbCycles [NumDesigns]int64
	var lbSeconds [NumDesigns]float64
	var nTiles [NumDesigns]int
	for _, id := range AllDesigns {
		cfg := GetConfig(id)
		if err := cfg.Validate(); err != nil {
			return out, err
		}
		lbCycles[id], nTiles[id] = w.coarseBound(cfg)
		lbSeconds[id] = float64(lbCycles[id]) / (cfg.FreqMHz * 1e6)
	}
	// Rank by (bound, design order) — a 4-element insertion sort.
	var order [NumDesigns]DesignID
	copy(order[:], AllDesigns)
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if lbSeconds[a] < lbSeconds[b] || (lbSeconds[a] == lbSeconds[b] && a < b) {
				break
			}
			order[j-1], order[j] = b, a
		}
	}
	bound := w.getBound()
	defer w.putBound(bound)
	for _, id := range order {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		if lbSeconds[id] > bound.best() {
			// The analytic floor alone beats the bound: skip the exact
			// pass entirely and report the floor as a pruned result.
			w.tileCacheRef().noteCoarseSkip()
			out[id] = Result{
				Design:  id,
				Tiles:   nTiles[id],
				Cycles:  lbCycles[id],
				Seconds: lbSeconds[id],
				Pruned:  true,
			}
			continue
		}
		var b *raceBound
		if earlyExit {
			b = bound
		}
		r, err := w.simulateBound(ctx, GetConfig(id), true, b)
		if err != nil {
			return out, err
		}
		out[id] = r
		if !r.Pruned {
			bound.offer(r.Seconds)
		}
	}
	return out, nil
}

// coarseEntry caches one design's per-tile analytic floors: floors[t] is a
// lower bound on tile t's exact cycles (0 for skip tiles), total is
// Σ floors + the exact C write-back charge. Built once per Config per
// workload; the mid-simulation running bound subtracts floors tile by tile
// as exact outcomes replace them.
type coarseEntry struct {
	once   sync.Once
	floors []int64
	total  int64
}

// coarseFloors computes (once, then caches) the per-tile lower bounds
// behind coarseBound. Per tile it charges
// max(ceil(busy/PEs) + merge floor, A read, B read) + broadcast +
// dependency gap, each term a floor of the exact per-tile charge: any
// schedule's straggler-PEG makespan is at least ceil(busy/PEs), and the
// row-wise merge charge is at least (distinct (row, peg) pairs − touched
// rows) merges at the tile's minimum service width, since the exact charge
// uses the maximum width over first occurrences. The write-back term in
// total is exact.
//
// Every term comes from the CSR/CSC index arrays alone — per-tile element
// counts are ColPtr differences over the tile's column span, busy totals
// are count × service sums, and the merge dedup is one pass over A's
// sorted rows — so ranking (and skipping) a design never materializes its
// element bins: only designs that are actually simulated pay for binning.
func (w *Workload) coarseFloors(cfg Config) *coarseEntry {
	w.mu.Lock()
	e, ok := w.coarse[cfg]
	if !ok {
		e = &coarseEntry{}
		w.coarse[cfg] = e
	}
	w.mu.Unlock()
	e.once.Do(func() {
		tiles, tileNNZ := w.tiling(cfg)
		pes := int64(cfg.PEs())
		e.floors = make([]int64, len(tiles))
		writeBack := ceilDiv64(w.COutputs(), int64(cfg.CElemsPerWrite*cfg.ChC))
		if len(tiles) == 0 {
			e.total = writeBack
			return
		}
		csc := w.CSC()
		simd := int64(cfg.SIMDWidth)
		denseSvc := ceilDiv64(int64(w.B.Cols), simd)
		if denseSvc < 1 {
			denseSvc = 1
		}
		var bNNZ []int
		if cfg.CompressedB {
			bNNZ = w.BRowNNZ()
		}
		// Merge-floor inputs for row-wise designs: distinct (row, peg)
		// pairs and touched rows per tile. Wide-PEG configs (> 64, never
		// a Table 1 design) fall back to a zero merge floor, still valid.
		var pairs, touched []int64
		if cfg.SchedulerA == RowWise && cfg.PEG <= 64 {
			pairs, touched = w.mergeCounts(tiles, cfg.PEG)
		}
		var total int64
		for t, s := range tiles {
			spanNNZ := int64(csc.ColPtr[s.Hi] - csc.ColPtr[s.Lo])
			if spanNNZ == 0 && tileNNZ[t] == 0 {
				continue
			}
			var bRead int64
			if cfg.CompressedB {
				bRead = ceilDiv64(tileNNZ[t], int64(cfg.BCOOElemsPerRead*cfg.ChB))
			} else {
				bRead = ceilDiv64(int64(s.Rows())*int64(w.B.Cols), int64(cfg.BDenseElemsPerRead*cfg.ChB))
			}
			aRead := ceilDiv64(spanNNZ, int64(cfg.AElemsPerRead*cfg.ChA))
			// busy is Σ max(1, service) over the tile's elements — the
			// same totals binning computes, as service sums over the
			// span's column counts.
			busy := spanNNZ * denseSvc
			minSvc := denseSvc
			if cfg.CompressedB {
				busy = 0
				minSvc = int64(math.MaxInt64)
				for c := s.Lo; c < s.Hi; c++ {
					cn := int64(csc.ColPtr[c+1] - csc.ColPtr[c])
					if cn == 0 {
						continue
					}
					svc := ceilDiv64(int64(bNNZ[c]), simd)
					if svc < 1 {
						svc = 1
					}
					busy += cn * svc
					if svc < minSvc {
						minSvc = svc
					}
				}
			}
			compute := ceilDiv64(busy, pes)
			if pairs != nil {
				compute += ceilDiv64((pairs[t]-touched[t])*minSvc, int64(cfg.ACC))
			}
			m := compute
			if aRead > m {
				m = aRead
			}
			if bRead > m {
				m = bRead
			}
			e.floors[t] = m + int64(cfg.PEG) + cfg.DepGapCycles
			total += e.floors[t]
		}
		e.total = total + writeBack
	})
	return e
}

// mergeCounts tallies, per tile, the distinct (A row, column mod peg)
// pairs and the touched rows — the merge-floor dedup — in a single pass
// over A. Column indices are sorted within each row (a package sparse
// invariant), so a row's elements visit tiles in order and each
// (row, tile) segment needs just one running bitmask and one popcount.
func (w *Workload) mergeCounts(tiles []Span, peg int) (pairs, touched []int64) {
	pairs = make([]int64, len(tiles))
	touched = make([]int64, len(tiles))
	a := w.A
	for r := 0; r < a.Rows; r++ {
		lo, hi := a.RowPtr[r], a.RowPtr[r+1]
		if lo == hi {
			continue
		}
		t, cur := 0, -1
		var mask uint64
		for i := lo; i < hi; i++ {
			c := a.ColIdx[i]
			for c >= tiles[t].Hi {
				t++
			}
			if t != cur {
				if cur >= 0 {
					pairs[cur] += int64(bits.OnesCount64(mask))
					touched[cur]++
				}
				cur, mask = t, 0
			}
			mask |= 1 << uint(c%peg)
		}
		pairs[cur] += int64(bits.OnesCount64(mask))
		touched[cur]++
	}
	return pairs, touched
}

// coarseBound reports cfg's analytic lower bound on the total cycle count
// and its tile count, from the cached per-tile floors.
func (w *Workload) coarseBound(cfg Config) (int64, int) {
	e := w.coarseFloors(cfg)
	return e.total, len(e.floors)
}

// tileOutcome is the per-tile contribution to a Result, computed
// independently per tile and reduced in tile order.
type tileOutcome struct {
	compute   int64
	aRead     int64
	bRead     int64
	broadcast int64
	cycles    int64
	bubbles   int64
	busy      int64
	capacity  int64
	skip      bool
}

// minParallelTiles is the tile count below which the scheduling loop stays
// serial — goroutine fan-out costs more than it saves on tiny workloads.
const minParallelTiles = 4

// numTileWorkers bounds the per-tile worker pool and gates SimulateAll's
// design fan-out. It is a variable so the equivalence tests can force the
// parallel paths on single-CPU hosts.
var numTileWorkers = runtime.NumCPU

func (w *Workload) simulate(ctx context.Context, cfg Config, parallelTiles bool) (Result, error) {
	return w.simulateBound(ctx, cfg, parallelTiles, nil)
}

// simulateBound is simulate with an optional early-exit bound. When
// bound is non-nil, the partial counter starts at the design's full
// analytic lower bound (per-tile floors + exact write-back, see
// coarseFloors) and each finished tile swaps its floor for its exact
// charge — so at every instant partial is a valid lower bound on the
// design's total that covers the *remaining* tiles too, and it is
// checked both before and after each tile against the best complete
// design seconds seen so far. Once partial alone is strictly worse, the
// remaining tiles cannot change the argmin and the design returns a
// Pruned lower-bound Result. Every swap adds exact − floor ≥ 0, so the
// counter is monotone and the abort is safe: a design that would have
// won (or tied) the comparison never aborts, and its Result is
// bit-identical to the exact path.
func (w *Workload) simulateBound(ctx context.Context, cfg Config, parallelTiles bool, bound *raceBound) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	res := Result{Design: cfg.ID}

	tiles, tileNNZ := w.tiling(cfg)
	perTile := w.binned(cfg, tiles)
	res.Tiles = len(tiles)

	tc := w.tileCacheRef()
	var salt uint64
	if tc != nil {
		salt = tileSalt(cfg)
	}
	freqHz := cfg.FreqMHz * 1e6
	run := w.getRun(len(tiles))
	defer w.putRun(run)
	outs := run.outs
	var floors []int64
	if bound != nil {
		ce := w.coarseFloors(cfg)
		floors = ce.floors
		run.partial.Store(ce.total)
	}
	workers := numTileWorkers()
	if workers > len(tiles) {
		workers = len(tiles)
	}
	// Cancellation is polled between tiles (an atomic load per claim);
	// in-flight tiles finish, so an abort costs at most one tile per
	// worker. Each worker owns one pooled schedScratch: tiles on a
	// worker run sequentially, so the per-PE scheduling buffers are
	// reused across every tile that worker claims — and, because the
	// pool lives on the Workload, across requests.
	if parallelTiles && workers > 1 && len(tiles) >= minParallelTiles {
		w.runTilesParallel(ctx, cfg, tiles, perTile, tileNNZ, run, bound, floors, tc, salt, freqHz, workers)
	} else {
		sc := w.getSched()
		for t := range tiles {
			if ctx.Err() != nil {
				break
			}
			if bound != nil && float64(run.partial.Load())/freqHz > bound.best() {
				// The racing bound dropped below our floor on the
				// remaining tiles: abort before scheduling the next one.
				run.abort.Store(true)
				break
			}
			o := memoTile(cfg, tiles[t], perTile[t], tileNNZ[t], w.B.Cols, sc, tc, salt)
			outs[t] = o
			if bound != nil && float64(run.partial.Add(o.cycles-floors[t]))/freqHz > bound.best() {
				run.abort.Store(true)
				break
			}
		}
		w.putSched(sc)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if run.abort.Load() {
		// The partial total (exact charges for simulated tiles, analytic
		// floors for the rest, exact write-back) is a valid lower bound on
		// the design's true cycle count, and it is already strictly above
		// the best complete design's seconds.
		tc.noteBoundAbort()
		lb := run.partial.Load()
		return Result{
			Design:  cfg.ID,
			Tiles:   len(tiles),
			Cycles:  lb,
			Seconds: float64(lb) / freqHz,
			Pruned:  true,
		}, nil
	}

	// Deterministic reduction in tile order (every term is an exact
	// integer, so this matches the serial loop bit for bit).
	var busy, capacity int64
	for t := range outs {
		o := &outs[t]
		if o.skip {
			continue
		}
		busy += o.busy
		capacity += o.capacity
		res.ComputeCycles += o.compute
		res.AReadCycles += o.aRead
		res.BReadCycles += o.bRead
		res.BroadcastCycles += o.broadcast
		res.Bubbles += o.bubbles
		res.Cycles += o.cycles
	}

	// C write-back once the URAM accumulators hold the final tile sums.
	res.Flops = w.FlopCount()
	res.COutputs = w.COutputs()
	res.CWriteCycles = ceilDiv64(res.COutputs, int64(cfg.CElemsPerWrite*cfg.ChC))
	res.Cycles += res.CWriteCycles

	if capacity > 0 {
		res.PEUtilization = float64(busy) / float64(capacity)
	}
	res.Seconds = float64(res.Cycles) / freqHz
	return res, nil
}

// runTilesParallel is the goroutine tile pool of simulateBound, split
// into its own function so none of the serial path's locals are captured
// by a goroutine closure (such captures would box them on the heap on
// every call, breaking the steady-state zero-allocation guarantee).
func (w *Workload) runTilesParallel(ctx context.Context, cfg Config, tiles []Span, perTile [][]Elem, tileNNZ []int64, run *tileRun, bound *raceBound, floors []int64, tc *TileCache, salt uint64, freqHz float64, workers int) {
	outs := run.outs
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := w.getSched()
			defer w.putSched(sc)
			for ctx.Err() == nil && !run.abort.Load() {
				if bound != nil && float64(run.partial.Load())/freqHz > bound.best() {
					run.abort.Store(true)
					return
				}
				t := int(atomic.AddInt64(&run.next, 1)) - 1
				if t >= len(tiles) {
					return
				}
				o := memoTile(cfg, tiles[t], perTile[t], tileNNZ[t], w.B.Cols, sc, tc, salt)
				outs[t] = o
				if bound != nil && float64(run.partial.Add(o.cycles-floors[t]))/freqHz > bound.best() {
					run.abort.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// simulateTile charges one B row tile: the max(compute, A read, B read)
// streaming overlap of §3.2.1 plus broadcast fill and the inter-tile
// dependency gap.
func simulateTile(cfg Config, s Span, elems []Elem, tileNNZ int64, bCols int, sc *schedScratch) tileOutcome {
	if len(elems) == 0 && tileNNZ == 0 {
		return tileOutcome{skip: true} // nothing to stream or compute
	}
	busy, bubbles, compute := scheduleTile(cfg, elems, sc)
	return finishTile(cfg, s, elems, tileNNZ, bCols, busy, bubbles, compute)
}

// memoTile is simulateTile through the tile cache: the scheduling half is
// served from (and fed to) tc keyed by the stream's content hash, while
// the shape-derived half is always recomputed by finishTile. A nil tc
// disables memoization.
func memoTile(cfg Config, s Span, elems []Elem, tileNNZ int64, bCols int, sc *schedScratch, tc *TileCache, salt uint64) tileOutcome {
	if tc == nil {
		return simulateTile(cfg, s, elems, tileNNZ, bCols, sc)
	}
	if len(elems) == 0 && tileNNZ == 0 {
		return tileOutcome{skip: true}
	}
	hi, lo := hashTileElems(elems, cfg.SchedulerA == RowWise, salt)
	if busy, bubbles, compute, ok := tc.lookup(hi, lo); ok {
		return finishTile(cfg, s, elems, tileNNZ, bCols, busy, bubbles, compute)
	}
	busy, bubbles, compute := scheduleTile(cfg, elems, sc)
	tc.store(hi, lo, busy, bubbles, compute)
	return finishTile(cfg, s, elems, tileNNZ, bCols, busy, bubbles, compute)
}

// scheduleTile is the expensive, memoizable half of a tile charge: it
// schedules each PEG's share of the element stream (the tile completes
// when the slowest PEG does) and, for row-wise designs, adds the
// cross-accumulator merge of the per-PEG partial rows (see mergeCycles).
// Its result depends only on the stream content and the schedule-relevant
// Config fields — exactly what the tile-cache key hashes.
func scheduleTile(cfg Config, elems []Elem, sc *schedScratch) (busy, bubbles, compute int64) {
	// One fused scatter replaces splitByPEG + per-group fillQueues. The
	// aggregates stay bit-identical: busy and bubbles are sums over every
	// (PEG, PE) queue either way, and the tile's compute is the max over
	// PEG makespans, each itself a max over that group's PEs — so one flat
	// max over all queues yields the same value.
	for _, q := range sc.scatterTile(elems, cfg.PEG, cfg.PEsPerPEG, cfg.SchedulerA) {
		ps := schedulePEScratch(q, cfg.DepGapCycles, cfg.WindowSize, false, sc)
		busy += ps.Busy
		bubbles += ps.Bubbles
		if ps.Makespan > compute {
			compute = ps.Makespan
		}
	}
	if cfg.SchedulerA == RowWise {
		compute += mergeCyclesScratch(elems, cfg, sc)
	}
	return busy, bubbles, compute
}

// finishTile combines a tile's scheduling triple with the shape-derived
// charges that are cheap to recompute and deliberately excluded from the
// tile-cache key: B read over ChB, A stream over ChA, PEG-chain broadcast
// fill, straggler-PEG capacity, and the overlapped per-tile cycle total.
func finishTile(cfg Config, s Span, elems []Elem, tileNNZ int64, bCols int, busy, bubbles, compute int64) tileOutcome {
	var o tileOutcome
	if cfg.CompressedB {
		o.bRead = ceilDiv64(tileNNZ, int64(cfg.BCOOElemsPerRead*cfg.ChB))
	} else {
		o.bRead = ceilDiv64(int64(s.Rows())*int64(bCols), int64(cfg.BDenseElemsPerRead*cfg.ChB))
	}
	o.aRead = ceilDiv64(int64(len(elems)), int64(cfg.AElemsPerRead*cfg.ChA))
	// Broadcast fill: B forwards PEG-to-PEG down the chain (§3.2.1).
	o.broadcast = int64(cfg.PEG)
	o.busy, o.bubbles, o.compute = busy, bubbles, compute
	// Utilization counts idle lanes against the straggler PEG's makespan —
	// the §3.2.2 "bubbles plus padding" effect.
	o.capacity = int64(cfg.PEs()) * compute
	o.cycles = max64(compute, max64(o.aRead, o.bRead)) + o.broadcast + cfg.DepGapCycles
	return o
}

// SimulateAllSerial is the reference implementation: every design runs
// sequentially, each with a fresh precompute and a serial tile loop,
// exactly like the pre-Workload engine. The equivalence tests and the
// BENCH_PR1.json speedup figures compare against it.
func SimulateAllSerial(a, b *sparse.CSR) ([NumDesigns]Result, error) {
	var out [NumDesigns]Result
	for _, id := range AllDesigns {
		w, err := NewWorkload(a, b)
		if err != nil {
			return out, err
		}
		// The reference never memoizes: every equivalence, golden and fuzz
		// gate then compares memo-on engines against memo-off scheduling.
		w.AttachTileCache(nil)
		r, err := w.simulate(context.Background(), GetConfig(id), false)
		if err != nil {
			return out, err
		}
		out[id] = r
	}
	return out, nil
}
