package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"misam/internal/baseline"
	"misam/internal/sparse"
)

// Workload is the design-independent precompute of one A×B product. The
// simulator re-derives the same artifacts for every design it evaluates —
// A's CSC form, per-row B nonzero counts, flop and C-output totals, and
// the per-format tilings and element bins — so evaluating all four designs
// (or the same pair under several configs, as the dataset labeller and the
// reconfiguration engine do) used to pay that cost four times over.
// Workload computes each artifact once, on first use, and shares it across
// every Simulate call on the same pair.
//
// A Workload is safe for concurrent use: all caches are built under
// sync.Once-style guards, and the cached artifacts are immutable once
// published. SimulateAll relies on this to fan the four designs out over
// goroutines against one shared Workload.
type Workload struct {
	// A and B are the operands; they must not be mutated while the
	// workload is in use (the caches alias their storage).
	A, B *sparse.CSR

	cscOnce sync.Once
	aCSC    *sparse.CSC

	preOnce  sync.Once
	bRowNNZ  []int
	flops    int64
	cOutputs int64
	aMaxRow  int

	mu      sync.Mutex
	tilings map[tilingKey]*tilingEntry
	bins    map[binKey]*binEntry
}

// tilingKey identifies one B row-tiling scheme: Design 4's sparsity-aware
// packing keyed by nnz capacity, or the dense fixed-height scheme keyed by
// tile rows.
type tilingKey struct {
	compressed bool
	param      int
}

// binKey identifies one cached binning of A's elements: the tiling they
// were binned against, the traversal order, and the service-time rule
// baked into each Elem (compressed walks stored nonzeros, dense walks
// b.Cols; both divided by the SIMD width).
type binKey struct {
	tiling     tilingKey
	traversal  Traversal
	compressed bool
	simd       int
}

type tilingEntry struct {
	once    sync.Once
	tiles   []Span
	tileNNZ []int64
}

type binEntry struct {
	once    sync.Once
	perTile [][]Elem
}

// NewWorkload validates the product dimensions and returns an empty
// precompute cache for A×B. All artifacts are computed lazily on first
// use, so a workload that only ever simulates Design 4 never builds the
// dense tiling.
func NewWorkload(a, b *sparse.CSR) (*Workload, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("sim: dimension mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	return &Workload{
		A:       a,
		B:       b,
		tilings: make(map[tilingKey]*tilingEntry),
		bins:    make(map[binKey]*binEntry),
	}, nil
}

// CSC returns A's compressed-sparse-column form, converting once.
func (w *Workload) CSC() *sparse.CSC {
	w.cscOnce.Do(func() { w.aCSC = w.A.ToCSC() })
	return w.aCSC
}

func (w *Workload) precompute() {
	w.preOnce.Do(func() {
		nnz := make([]int, w.B.Rows)
		for r := 0; r < w.B.Rows; r++ {
			nnz[r] = w.B.RowNNZ(r)
		}
		w.bRowNNZ = nnz
		w.flops = flopCount(w.A, nnz)
		w.cOutputs = estimateCOutputs(w.A, nnz, w.B.Cols)
		maxRow := 0
		for r := 0; r < w.A.Rows; r++ {
			if n := w.A.RowNNZ(r); n > maxRow {
				maxRow = n
			}
		}
		w.aMaxRow = maxRow
	})
}

// AMaxRow returns the nonzero count of A's longest row, cached with the
// rest of the precompute (BaselineStats and the load-imbalance features
// both need it; neither re-walks A's row pointers).
func (w *Workload) AMaxRow() int {
	w.precompute()
	return w.aMaxRow
}

// BRowNNZ returns the per-row nonzero counts of B. The slice is shared;
// callers must not modify it.
func (w *Workload) BRowNNZ() []int {
	w.precompute()
	return w.bRowNNZ
}

// FlopCount returns the useful multiply-accumulate count of the product.
func (w *Workload) FlopCount() int64 {
	w.precompute()
	return w.flops
}

// COutputs returns the estimated number of C entries written back (see
// estimateCOutputs).
func (w *Workload) COutputs() int64 {
	w.precompute()
	return w.cOutputs
}

// BaselineStats derives the baseline cost models' workload statistics
// entirely from the cached precompute. The values are identical to
// baseline.Collect(A, B) — Flops and Outputs are the same exact integer
// sums, and the imbalance term uses the cached longest-row count — so
// repeated calls on one workload cost O(1) beyond the first.
func (w *Workload) BaselineStats() baseline.Stats {
	w.precompute()
	s := baseline.Stats{
		M: w.A.Rows, K: w.A.Cols, N: w.B.Cols,
		NNZA: w.A.NNZ(), NNZB: w.B.NNZ(),
		ADensity: w.A.Density(), BDensity: w.B.Density(),
		Flops:   float64(w.flops),
		Outputs: float64(w.cOutputs),
	}
	maxRow := w.aMaxRow
	if w.A.Rows > 0 && s.NNZA > 0 {
		s.AImbalance = float64(maxRow) / (float64(s.NNZA) / float64(w.A.Rows))
	} else {
		s.AImbalance = 1
	}
	if w.B.Rows > 0 {
		s.AvgBRowNNZ = float64(s.NNZB) / float64(w.B.Rows)
	}
	return s
}

// tiling returns the cached B row tiles and per-tile nonzero counts for a
// design's tiling scheme.
func (w *Workload) tiling(cfg Config) ([]Span, []int64) {
	key := tilingKey{compressed: cfg.CompressedB, param: cfg.BRAMRowsPerTile}
	if cfg.CompressedB {
		key.param = cfg.BRAMCapacityNNZ
	}
	w.mu.Lock()
	e, ok := w.tilings[key]
	if !ok {
		e = &tilingEntry{}
		w.tilings[key] = e
	}
	w.mu.Unlock()
	e.once.Do(func() {
		if key.compressed {
			e.tiles = SparsityAwareRowTiles(w.B, key.param)
		} else {
			e.tiles = DenseRowTiles(w.B.Rows, key.param)
		}
		e.tileNNZ = make([]int64, len(e.tiles))
		for t, s := range e.tiles {
			e.tileNNZ[t] = int64(w.B.RowPtr[s.Hi] - w.B.RowPtr[s.Lo])
		}
	})
	return e.tiles, e.tileNNZ
}

// binned returns the cached per-tile element bins of A for a design's
// tiling, traversal and service rule. Designs 1 and 2 share one entry
// (same dense tiling, column-wise order, SIMD width); Design 3 adds a
// row-wise entry over the same tiling; Design 4 has its own.
func (w *Workload) binned(cfg Config, tiles []Span) [][]Elem {
	key := binKey{
		tiling:     tilingKey{compressed: cfg.CompressedB, param: cfg.BRAMRowsPerTile},
		traversal:  cfg.SchedulerA,
		compressed: cfg.CompressedB,
		simd:       cfg.SIMDWidth,
	}
	if cfg.CompressedB {
		key.tiling.param = cfg.BRAMCapacityNNZ
	}
	w.mu.Lock()
	e, ok := w.bins[key]
	if !ok {
		e = &binEntry{}
		w.bins[key] = e
	}
	w.mu.Unlock()
	e.once.Do(func() {
		service := w.serviceFunc(cfg)
		if cfg.SchedulerA == ColWise {
			e.perTile = binByTileColWise(w.CSC(), tiles, service)
		} else {
			e.perTile = binByTileRowWise(w.A, tiles, service)
		}
	})
	return e.perTile
}

// serviceFunc builds the per-column service-time rule of §3.2.1/§3.2.4:
// processing one A element walks the matching B row through the SIMD
// lanes; compressed B walks only the stored nonzeros.
func (w *Workload) serviceFunc(cfg Config) func(col int) int64 {
	if cfg.CompressedB {
		nnz := w.BRowNNZ()
		simd := int64(cfg.SIMDWidth)
		return func(col int) int64 { return ceilDiv64(int64(nnz[col]), simd) }
	}
	dense := ceilDiv64(int64(w.B.Cols), int64(cfg.SIMDWidth))
	return func(int) int64 { return dense }
}

// Simulate runs design cfg against the cached workload. Results are
// bit-identical to the historical serial Simulate(cfg, a, b) path: tiles
// may be scheduled in parallel, but every per-tile quantity is reduced in
// tile order and all cross-tile accumulations are exact integer sums.
func (w *Workload) Simulate(cfg Config) (Result, error) {
	return w.simulate(context.Background(), cfg, true)
}

// SimulateCtx is Simulate under a context: cancellation or deadline
// expiry aborts the tile pool between tiles and returns ctx.Err().
func (w *Workload) SimulateCtx(ctx context.Context, cfg Config) (Result, error) {
	return w.simulate(ctx, cfg, true)
}

// SimulateDesign is shorthand for Simulate(GetConfig(id)).
func (w *Workload) SimulateDesign(id DesignID) (Result, error) {
	return w.Simulate(GetConfig(id))
}

// SimulateDesignCtx is SimulateCtx(ctx, GetConfig(id)).
func (w *Workload) SimulateDesignCtx(ctx context.Context, id DesignID) (Result, error) {
	return w.SimulateCtx(ctx, GetConfig(id))
}

// SimulateAll evaluates every design on the workload, sharing the
// precompute and fanning the four designs out over goroutines. On error
// the first failing design (in design order) wins. With a single
// processor the fan-out buys nothing and the goroutine interleaving
// thrashes the cache, so the designs run sequentially instead — the
// deterministic simulator makes the two paths indistinguishable.
func (w *Workload) SimulateAll() ([NumDesigns]Result, error) {
	return w.SimulateAllCtx(context.Background())
}

// SimulateAllCtx is SimulateAll under a context; a cancelled or expired
// context aborts all four design simulations mid-tile-pool.
func (w *Workload) SimulateAllCtx(ctx context.Context) ([NumDesigns]Result, error) {
	var out [NumDesigns]Result
	if numTileWorkers() <= 1 {
		for _, id := range AllDesigns {
			var err error
			if out[id], err = w.simulate(ctx, GetConfig(id), true); err != nil {
				return out, err
			}
		}
		return out, nil
	}
	var errs [NumDesigns]error
	var wg sync.WaitGroup
	for _, id := range AllDesigns {
		wg.Add(1)
		go func(id DesignID) {
			defer wg.Done()
			out[id], errs[id] = w.simulate(ctx, GetConfig(id), true)
		}(id)
	}
	wg.Wait()
	for _, id := range AllDesigns {
		if errs[id] != nil {
			return out, errs[id]
		}
	}
	return out, nil
}

// tileOutcome is the per-tile contribution to a Result, computed
// independently per tile and reduced in tile order.
type tileOutcome struct {
	compute   int64
	aRead     int64
	bRead     int64
	broadcast int64
	cycles    int64
	bubbles   int64
	busy      int64
	capacity  int64
	skip      bool
}

// minParallelTiles is the tile count below which the scheduling loop stays
// serial — goroutine fan-out costs more than it saves on tiny workloads.
const minParallelTiles = 4

// numTileWorkers bounds the per-tile worker pool and gates SimulateAll's
// design fan-out. It is a variable so the equivalence tests can force the
// parallel paths on single-CPU hosts.
var numTileWorkers = runtime.NumCPU

func (w *Workload) simulate(ctx context.Context, cfg Config, parallelTiles bool) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	res := Result{Design: cfg.ID}

	tiles, tileNNZ := w.tiling(cfg)
	perTile := w.binned(cfg, tiles)
	res.Tiles = len(tiles)

	outs := make([]tileOutcome, len(tiles))
	// Each worker owns one schedScratch: tiles on a worker run
	// sequentially, so the per-PE scheduling buffers are reused across
	// every tile that worker claims instead of reallocated per PE.
	run := func(t int, sc *schedScratch) {
		outs[t] = simulateTile(cfg, tiles[t], perTile[t], tileNNZ[t], w.B.Cols, sc)
	}
	workers := numTileWorkers()
	if workers > len(tiles) {
		workers = len(tiles)
	}
	// Cancellation is polled between tiles (an atomic load per claim);
	// in-flight tiles finish, so an abort costs at most one tile per
	// worker.
	if parallelTiles && workers > 1 && len(tiles) >= minParallelTiles {
		var next int64
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var sc schedScratch
				for ctx.Err() == nil {
					t := int(atomic.AddInt64(&next, 1)) - 1
					if t >= len(tiles) {
						return
					}
					run(t, &sc)
				}
			}()
		}
		wg.Wait()
	} else {
		var sc schedScratch
		for t := range tiles {
			if ctx.Err() != nil {
				break
			}
			run(t, &sc)
		}
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	// Deterministic reduction in tile order (every term is an exact
	// integer, so this matches the serial loop bit for bit).
	var busy, capacity int64
	for t := range outs {
		o := &outs[t]
		if o.skip {
			continue
		}
		busy += o.busy
		capacity += o.capacity
		res.ComputeCycles += o.compute
		res.AReadCycles += o.aRead
		res.BReadCycles += o.bRead
		res.BroadcastCycles += o.broadcast
		res.Bubbles += o.bubbles
		res.Cycles += o.cycles
	}

	// C write-back once the URAM accumulators hold the final tile sums.
	res.Flops = w.FlopCount()
	res.COutputs = w.COutputs()
	res.CWriteCycles = ceilDiv64(res.COutputs, int64(cfg.CElemsPerWrite*cfg.ChC))
	res.Cycles += res.CWriteCycles

	if capacity > 0 {
		res.PEUtilization = float64(busy) / float64(capacity)
	}
	res.Seconds = float64(res.Cycles) / (cfg.FreqMHz * 1e6)
	return res, nil
}

// simulateTile charges one B row tile: the max(compute, A read, B read)
// streaming overlap of §3.2.1 plus broadcast fill and the inter-tile
// dependency gap.
func simulateTile(cfg Config, s Span, elems []Elem, tileNNZ int64, bCols int, sc *schedScratch) tileOutcome {
	var o tileOutcome
	if len(elems) == 0 && tileNNZ == 0 {
		o.skip = true // nothing to stream or compute for this tile
		return o
	}
	// Read B tile over ChB channels.
	if cfg.CompressedB {
		o.bRead = ceilDiv64(tileNNZ, int64(cfg.BCOOElemsPerRead*cfg.ChB))
	} else {
		o.bRead = ceilDiv64(int64(s.Rows())*int64(bCols), int64(cfg.BDenseElemsPerRead*cfg.ChB))
	}
	// Stream A elements for this tile over ChA channels.
	o.aRead = ceilDiv64(int64(len(elems)), int64(cfg.AElemsPerRead*cfg.ChA))
	// Broadcast fill: B forwards PEG-to-PEG down the chain (§3.2.1).
	o.broadcast = int64(cfg.PEG)

	// Schedule each PEG's share; the tile completes when the slowest PEG
	// does.
	for _, g := range splitByPEG(elems, cfg.PEG, cfg.SchedulerA) {
		gs := schedulePEGScratch(g, cfg.PEsPerPEG, cfg.SchedulerA, cfg.PEG, cfg.DepGapCycles, cfg.WindowSize, false, sc)
		o.busy += gs.Busy
		o.bubbles += gs.Bubbles
		if gs.Makespan > o.compute {
			o.compute = gs.Makespan
		}
	}
	// Row-wise designs spread each output row over many PEGs, so the
	// partial vectors must merge across accumulator groups before
	// write-back (see mergeCycles).
	if cfg.SchedulerA == RowWise {
		o.compute += mergeCycles(elems, cfg)
	}
	// Utilization counts idle lanes against the straggler PEG's makespan —
	// the §3.2.2 "bubbles plus padding" effect.
	o.capacity = int64(cfg.PEs()) * o.compute
	o.cycles = max64(o.compute, max64(o.aRead, o.bRead)) + o.broadcast + cfg.DepGapCycles
	return o
}

// SimulateAllSerial is the reference implementation: every design runs
// sequentially, each with a fresh precompute and a serial tile loop,
// exactly like the pre-Workload engine. The equivalence tests and the
// BENCH_PR1.json speedup figures compare against it.
func SimulateAllSerial(a, b *sparse.CSR) ([NumDesigns]Result, error) {
	var out [NumDesigns]Result
	for _, id := range AllDesigns {
		w, err := NewWorkload(a, b)
		if err != nil {
			return out, err
		}
		r, err := w.simulate(context.Background(), GetConfig(id), false)
		if err != nil {
			return out, err
		}
		out[id] = r
	}
	return out, nil
}
