package sim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"misam/internal/baseline"
	"misam/internal/sparse"
)

// Workload is the design-independent precompute of one A×B product. The
// simulator re-derives the same artifacts for every design it evaluates —
// A's CSC form, per-row B nonzero counts, flop and C-output totals, and
// the per-format tilings and element bins — so evaluating all four designs
// (or the same pair under several configs, as the dataset labeller and the
// reconfiguration engine do) used to pay that cost four times over.
// Workload computes each artifact once, on first use, and shares it across
// every Simulate call on the same pair.
//
// A Workload is safe for concurrent use: all caches are built under
// sync.Once-style guards, and the cached artifacts are immutable once
// published. SimulateAll relies on this to fan the four designs out over
// goroutines against one shared Workload.
type Workload struct {
	// A and B are the operands; they must not be mutated while the
	// workload is in use (the caches alias their storage).
	A, B *sparse.CSR

	cscOnce sync.Once
	aCSC    *sparse.CSC

	preOnce  sync.Once
	bRowNNZ  []int
	flops    int64
	cOutputs int64
	aMaxRow  int

	mu      sync.Mutex
	tilings map[tilingKey]*tilingEntry
	bins    map[binKey]*binEntry

	// poolMu guards the workload-level scratch freelists. Scheduling
	// scratches and per-call tile state are pooled here — not per
	// Simulate call — so warm serving reuses fully grown buffers across
	// requests and the steady state allocates nothing. Plain freelists
	// rather than sync.Pool: the GC never clears them, which is what lets
	// the AllocsPerRun guard pin 0 allocs/op.
	poolMu    sync.Mutex
	schedFree []*schedScratch
	runFree   []*tileRun
	boundFree []*raceBound
}

// tileRun is the pooled per-Simulate-call state: the tile outcome buffer
// plus the shared counters the tile workers race on.
type tileRun struct {
	outs    []tileOutcome
	next    int64
	partial atomic.Int64
	abort   atomic.Bool
}

func (w *Workload) getSched() *schedScratch {
	w.poolMu.Lock()
	defer w.poolMu.Unlock()
	if n := len(w.schedFree); n > 0 {
		sc := w.schedFree[n-1]
		w.schedFree = w.schedFree[:n-1]
		return sc
	}
	// Every Elem.Row this workload schedules is an A row index, so the
	// scratch can size its row tables up front instead of scanning each
	// PE queue for its max row.
	return &schedScratch{rowsHint: w.A.Rows}
}

func (w *Workload) putSched(sc *schedScratch) {
	w.poolMu.Lock()
	w.schedFree = append(w.schedFree, sc)
	w.poolMu.Unlock()
}

// getRun returns per-call tile state with outs sized for n tiles. Every
// live (non-skip) slot is written before the reduction reads it, and the
// abort path never reduces, so outs needs no zeroing.
func (w *Workload) getRun(n int) *tileRun {
	w.poolMu.Lock()
	var run *tileRun
	if ln := len(w.runFree); ln > 0 {
		run = w.runFree[ln-1]
		w.runFree = w.runFree[:ln-1]
	} else {
		run = &tileRun{}
	}
	w.poolMu.Unlock()
	if cap(run.outs) < n {
		run.outs = make([]tileOutcome, n)
	}
	run.outs = run.outs[:n]
	run.next = 0
	run.partial.Store(0)
	run.abort.Store(false)
	return run
}

func (w *Workload) putRun(run *tileRun) {
	w.poolMu.Lock()
	w.runFree = append(w.runFree, run)
	w.poolMu.Unlock()
}

// getBound returns a pooled racing bound reset to +Inf. Bounds escape to
// the heap (goroutines capture them), so pooling keeps the pruned paths
// allocation-free in the steady state.
func (w *Workload) getBound() *raceBound {
	w.poolMu.Lock()
	var b *raceBound
	if n := len(w.boundFree); n > 0 {
		b = w.boundFree[n-1]
		w.boundFree = w.boundFree[:n-1]
	} else {
		b = &raceBound{}
	}
	w.poolMu.Unlock()
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

func (w *Workload) putBound(b *raceBound) {
	w.poolMu.Lock()
	w.boundFree = append(w.boundFree, b)
	w.poolMu.Unlock()
}

// tilingKey identifies one B row-tiling scheme: Design 4's sparsity-aware
// packing keyed by nnz capacity, or the dense fixed-height scheme keyed by
// tile rows.
type tilingKey struct {
	compressed bool
	param      int
}

// binKey identifies one cached binning of A's elements: the tiling they
// were binned against, the traversal order, and the service-time rule
// baked into each Elem (compressed walks stored nonzeros, dense walks
// b.Cols; both divided by the SIMD width).
type binKey struct {
	tiling     tilingKey
	traversal  Traversal
	compressed bool
	simd       int
}

type tilingEntry struct {
	once    sync.Once
	tiles   []Span
	tileNNZ []int64
}

type binEntry struct {
	once    sync.Once
	perTile [][]Elem
	// tileBusy[t] is Σ max(1, Service) over tile t's elements — the
	// exact busy-cycle total every schedule of the tile must pay,
	// regardless of PE assignment. The coarse design bound divides it by
	// the PE count for a no-scheduling compute floor.
	tileBusy []int64
}

// NewWorkload validates the product dimensions and returns an empty
// precompute cache for A×B. All artifacts are computed lazily on first
// use, so a workload that only ever simulates Design 4 never builds the
// dense tiling.
func NewWorkload(a, b *sparse.CSR) (*Workload, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("sim: dimension mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	return &Workload{
		A:       a,
		B:       b,
		tilings: make(map[tilingKey]*tilingEntry),
		bins:    make(map[binKey]*binEntry),
	}, nil
}

// CSC returns A's compressed-sparse-column form, converting once.
func (w *Workload) CSC() *sparse.CSC {
	w.cscOnce.Do(func() { w.aCSC = w.A.ToCSC() })
	return w.aCSC
}

func (w *Workload) precompute() {
	w.preOnce.Do(func() {
		nnz := make([]int, w.B.Rows)
		for r := 0; r < w.B.Rows; r++ {
			nnz[r] = w.B.RowNNZ(r)
		}
		w.bRowNNZ = nnz
		w.flops = flopCount(w.A, nnz)
		w.cOutputs = estimateCOutputs(w.A, nnz, w.B.Cols)
		maxRow := 0
		for r := 0; r < w.A.Rows; r++ {
			if n := w.A.RowNNZ(r); n > maxRow {
				maxRow = n
			}
		}
		w.aMaxRow = maxRow
	})
}

// AMaxRow returns the nonzero count of A's longest row, cached with the
// rest of the precompute (BaselineStats and the load-imbalance features
// both need it; neither re-walks A's row pointers).
func (w *Workload) AMaxRow() int {
	w.precompute()
	return w.aMaxRow
}

// BRowNNZ returns the per-row nonzero counts of B. The slice is shared;
// callers must not modify it.
func (w *Workload) BRowNNZ() []int {
	w.precompute()
	return w.bRowNNZ
}

// FlopCount returns the useful multiply-accumulate count of the product.
func (w *Workload) FlopCount() int64 {
	w.precompute()
	return w.flops
}

// COutputs returns the estimated number of C entries written back (see
// estimateCOutputs).
func (w *Workload) COutputs() int64 {
	w.precompute()
	return w.cOutputs
}

// BaselineStats derives the baseline cost models' workload statistics
// entirely from the cached precompute. The values are identical to
// baseline.Collect(A, B) — Flops and Outputs are the same exact integer
// sums, and the imbalance term uses the cached longest-row count — so
// repeated calls on one workload cost O(1) beyond the first.
func (w *Workload) BaselineStats() baseline.Stats {
	w.precompute()
	s := baseline.Stats{
		M: w.A.Rows, K: w.A.Cols, N: w.B.Cols,
		NNZA: w.A.NNZ(), NNZB: w.B.NNZ(),
		ADensity: w.A.Density(), BDensity: w.B.Density(),
		Flops:   float64(w.flops),
		Outputs: float64(w.cOutputs),
	}
	maxRow := w.aMaxRow
	if w.A.Rows > 0 && s.NNZA > 0 {
		s.AImbalance = float64(maxRow) / (float64(s.NNZA) / float64(w.A.Rows))
	} else {
		s.AImbalance = 1
	}
	if w.B.Rows > 0 {
		s.AvgBRowNNZ = float64(s.NNZB) / float64(w.B.Rows)
	}
	return s
}

// tiling returns the cached B row tiles and per-tile nonzero counts for a
// design's tiling scheme.
func (w *Workload) tiling(cfg Config) ([]Span, []int64) {
	key := tilingKey{compressed: cfg.CompressedB, param: cfg.BRAMRowsPerTile}
	if cfg.CompressedB {
		key.param = cfg.BRAMCapacityNNZ
	}
	w.mu.Lock()
	e, ok := w.tilings[key]
	if !ok {
		e = &tilingEntry{}
		w.tilings[key] = e
	}
	w.mu.Unlock()
	e.once.Do(func() {
		if key.compressed {
			e.tiles = SparsityAwareRowTiles(w.B, key.param)
		} else {
			e.tiles = DenseRowTiles(w.B.Rows, key.param)
		}
		e.tileNNZ = make([]int64, len(e.tiles))
		for t, s := range e.tiles {
			e.tileNNZ[t] = int64(w.B.RowPtr[s.Hi] - w.B.RowPtr[s.Lo])
		}
	})
	return e.tiles, e.tileNNZ
}

// binned returns the cached per-tile element bins of A for a design's
// tiling, traversal and service rule, plus the per-tile busy-cycle
// totals. Designs 1 and 2 share one entry (same dense tiling,
// column-wise order, SIMD width); Design 3 adds a row-wise entry over
// the same tiling; Design 4 has its own.
func (w *Workload) binned(cfg Config, tiles []Span) ([][]Elem, []int64) {
	key := binKey{
		tiling:     tilingKey{compressed: cfg.CompressedB, param: cfg.BRAMRowsPerTile},
		traversal:  cfg.SchedulerA,
		compressed: cfg.CompressedB,
		simd:       cfg.SIMDWidth,
	}
	if cfg.CompressedB {
		key.tiling.param = cfg.BRAMCapacityNNZ
	}
	w.mu.Lock()
	e, ok := w.bins[key]
	if !ok {
		e = &binEntry{}
		w.bins[key] = e
	}
	w.mu.Unlock()
	e.once.Do(func() {
		service := w.serviceFunc(cfg)
		if cfg.SchedulerA == ColWise {
			e.perTile = binByTileColWise(w.CSC(), tiles, service)
		} else {
			e.perTile = binByTileRowWise(w.A, tiles, service)
		}
		e.tileBusy = make([]int64, len(e.perTile))
		for t, elems := range e.perTile {
			var busy int64
			for i := range elems {
				svc := elems[i].Service
				if svc < 1 {
					svc = 1
				}
				busy += svc
			}
			e.tileBusy[t] = busy
		}
	})
	return e.perTile, e.tileBusy
}

// serviceFunc builds the per-column service-time rule of §3.2.1/§3.2.4:
// processing one A element walks the matching B row through the SIMD
// lanes; compressed B walks only the stored nonzeros.
func (w *Workload) serviceFunc(cfg Config) func(col int) int64 {
	if cfg.CompressedB {
		nnz := w.BRowNNZ()
		simd := int64(cfg.SIMDWidth)
		return func(col int) int64 { return ceilDiv64(int64(nnz[col]), simd) }
	}
	dense := ceilDiv64(int64(w.B.Cols), int64(cfg.SIMDWidth))
	return func(int) int64 { return dense }
}

// Simulate runs design cfg against the cached workload. Results are
// bit-identical to the historical serial Simulate(cfg, a, b) path: tiles
// may be scheduled in parallel, but every per-tile quantity is reduced in
// tile order and all cross-tile accumulations are exact integer sums.
func (w *Workload) Simulate(cfg Config) (Result, error) {
	return w.simulate(context.Background(), cfg, true)
}

// SimulateCtx is Simulate under a context: cancellation or deadline
// expiry aborts the tile pool between tiles and returns ctx.Err().
func (w *Workload) SimulateCtx(ctx context.Context, cfg Config) (Result, error) {
	return w.simulate(ctx, cfg, true)
}

// SimulateDesign is shorthand for Simulate(GetConfig(id)).
func (w *Workload) SimulateDesign(id DesignID) (Result, error) {
	return w.Simulate(GetConfig(id))
}

// SimulateDesignCtx is SimulateCtx(ctx, GetConfig(id)).
func (w *Workload) SimulateDesignCtx(ctx context.Context, id DesignID) (Result, error) {
	return w.SimulateCtx(ctx, GetConfig(id))
}

// SimulateAll evaluates every design on the workload, sharing the
// precompute and fanning the four designs out over goroutines. On error
// the first failing design (in design order) wins. With a single
// processor the fan-out buys nothing and the goroutine interleaving
// thrashes the cache, so the designs run sequentially instead — the
// deterministic simulator makes the two paths indistinguishable.
func (w *Workload) SimulateAll() ([NumDesigns]Result, error) {
	return w.SimulateAllCtx(context.Background())
}

// SimulateAllCtx is SimulateAll under a context; a cancelled or expired
// context aborts all four design simulations mid-tile-pool.
func (w *Workload) SimulateAllCtx(ctx context.Context) ([NumDesigns]Result, error) {
	// The serial and parallel paths live in separate functions so the
	// serial result array is never captured by a goroutine closure —
	// such a capture would box it on the heap on every call and break
	// the steady-state zero-allocation guarantee.
	if numTileWorkers() <= 1 {
		var out [NumDesigns]Result
		for _, id := range AllDesigns {
			var err error
			if out[id], err = w.simulate(ctx, GetConfig(id), true); err != nil {
				return out, err
			}
		}
		return out, nil
	}
	return w.simulateAllParallel(ctx, nil)
}

// simulateAllParallel fans the four designs out over goroutines; bound,
// when non-nil, is the shared racing early-exit bound each completing
// design lowers.
func (w *Workload) simulateAllParallel(ctx context.Context, bound *raceBound) ([NumDesigns]Result, error) {
	var out [NumDesigns]Result
	var errs [NumDesigns]error
	var wg sync.WaitGroup
	for _, id := range AllDesigns {
		wg.Add(1)
		go func(id DesignID) {
			defer wg.Done()
			r, err := w.simulateBound(ctx, GetConfig(id), true, bound)
			out[id], errs[id] = r, err
			if bound != nil && err == nil && !r.Pruned {
				bound.offer(r.Seconds)
			}
		}(id)
	}
	wg.Wait()
	for _, id := range AllDesigns {
		if errs[id] != nil {
			return out, errs[id]
		}
	}
	return out, nil
}

// Options selects the pruned evaluation modes of SimulateAllOpts. The
// zero value is the exact path (identical to SimulateAll).
type Options struct {
	// EarlyExit aborts a design's tile loop once its partial cycle total
	// (plus the exact write-back charge) is strictly worse than the best
	// complete design seen so far. Argmin-preserving: per-tile charges
	// are non-negative, so a design whose exact total is ≤ the bound can
	// never trip it.
	EarlyExit bool
	// Coarse ranks the designs by a cheap analytic lower bound (tiling
	// shapes + per-tile busy totals, no scheduling) before the exact
	// pass, evaluates them most-promising first, and skips any design
	// whose bound alone is strictly worse than a completed contender.
	// Argmin-preserving for the same reason: the bound never exceeds the
	// exact total.
	Coarse bool
}

// PruneOptions enables both pruning layers — the recommended setting for
// single-shot "which design wins?" callers.
func PruneOptions() Options {
	return Options{EarlyExit: true, Coarse: true}
}

// raceBound is the best-so-far complete design latency shared across the
// design fan-out, stored as float64 bits in an atomic for lock-free
// CAS-min updates.
type raceBound struct {
	bits atomic.Uint64
}

func (b *raceBound) best() float64 {
	return math.Float64frombits(b.bits.Load())
}

// offer lowers the bound to s if s is smaller. Only complete (non-pruned)
// design totals may be offered — a pruned lower bound could otherwise
// incorrectly prune the true winner.
func (b *raceBound) offer(s float64) {
	for {
		cur := b.bits.Load()
		if s >= math.Float64frombits(cur) {
			return
		}
		if b.bits.CompareAndSwap(cur, math.Float64bits(s)) {
			return
		}
	}
}

// SimulateAllPruned is SimulateAll under PruneOptions: same winner, same
// winning Result, losers possibly reduced to pruned lower bounds.
func (w *Workload) SimulateAllPruned() ([NumDesigns]Result, error) {
	return w.SimulateAllOpts(context.Background(), PruneOptions())
}

// SimulateAllPrunedCtx is SimulateAllPruned under a context.
func (w *Workload) SimulateAllPrunedCtx(ctx context.Context) ([NumDesigns]Result, error) {
	return w.SimulateAllOpts(ctx, PruneOptions())
}

// SimulateAllOpts evaluates every design under the given pruning
// options. Guarantees, for any Options value:
//
//   - BestDesign over the returned array equals BestDesign over the
//     exact SimulateAll array (ties included: pruned losers report
//     strictly worse Seconds than the winner, so design-order
//     tie-breaking is unaffected).
//   - The winner's Result — and every Result with Pruned == false — is
//     bit-identical to the exact path.
//   - Pruned == true marks every Result that is a lower bound rather
//     than an exact total.
func (w *Workload) SimulateAllOpts(ctx context.Context, opt Options) ([NumDesigns]Result, error) {
	if !opt.EarlyExit && !opt.Coarse {
		return w.SimulateAllCtx(ctx)
	}
	if opt.Coarse {
		return w.simulateAllCoarse(ctx, opt.EarlyExit)
	}
	return w.simulateAllEarlyExit(ctx)
}

// simulateAllEarlyExit runs the design fan-out with a shared racing
// best-so-far bound but no coarse ranking. With multiple processors the
// four designs race concurrently, each lowering the bound as it
// completes; on a single processor they run in design order.
func (w *Workload) simulateAllEarlyExit(ctx context.Context) ([NumDesigns]Result, error) {
	bound := w.getBound()
	defer w.putBound(bound)
	if numTileWorkers() <= 1 {
		var out [NumDesigns]Result
		for _, id := range AllDesigns {
			r, err := w.simulateBound(ctx, GetConfig(id), true, bound)
			if err != nil {
				return out, err
			}
			out[id] = r
			if !r.Pruned {
				bound.offer(r.Seconds)
			}
		}
		return out, nil
	}
	return w.simulateAllParallel(ctx, bound)
}

// simulateAllCoarse ranks the designs by their analytic lower bounds,
// evaluates them most-promising first, and skips any design whose bound
// alone exceeds a completed contender's total. Evaluation is sequential
// by rank — the whole point is that later designs see the tightest
// possible bound.
func (w *Workload) simulateAllCoarse(ctx context.Context, earlyExit bool) ([NumDesigns]Result, error) {
	var out [NumDesigns]Result
	var lbCycles [NumDesigns]int64
	var lbSeconds [NumDesigns]float64
	var nTiles [NumDesigns]int
	for _, id := range AllDesigns {
		cfg := GetConfig(id)
		if err := cfg.Validate(); err != nil {
			return out, err
		}
		lbCycles[id], nTiles[id] = w.coarseBound(cfg)
		lbSeconds[id] = float64(lbCycles[id]) / (cfg.FreqMHz * 1e6)
	}
	// Rank by (bound, design order) — a 4-element insertion sort.
	var order [NumDesigns]DesignID
	copy(order[:], AllDesigns)
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if lbSeconds[a] < lbSeconds[b] || (lbSeconds[a] == lbSeconds[b] && a < b) {
				break
			}
			order[j-1], order[j] = b, a
		}
	}
	bound := w.getBound()
	defer w.putBound(bound)
	for _, id := range order {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		if lbSeconds[id] > bound.best() {
			// The analytic floor alone beats the bound: skip the exact
			// pass entirely and report the floor as a pruned result.
			out[id] = Result{
				Design:  id,
				Tiles:   nTiles[id],
				Cycles:  lbCycles[id],
				Seconds: lbSeconds[id],
				Pruned:  true,
			}
			continue
		}
		var b *raceBound
		if earlyExit {
			b = bound
		}
		r, err := w.simulateBound(ctx, GetConfig(id), true, b)
		if err != nil {
			return out, err
		}
		out[id] = r
		if !r.Pruned {
			bound.offer(r.Seconds)
		}
	}
	return out, nil
}

// coarseBound computes an analytic lower bound on cfg's total cycle
// count from the cached tiling shapes, per-tile nonzero counts and
// per-tile busy totals — no scheduling. Per tile it charges
// max(ceil(busy/PEs), A read, B read) + broadcast + dependency gap,
// each term a floor of the exact per-tile charge (any schedule's group
// makespan is at least busy/PEs, and row-wise merge cycles only add);
// the write-back term is exact. It costs O(tiles) after the cached
// precompute.
func (w *Workload) coarseBound(cfg Config) (int64, int) {
	tiles, tileNNZ := w.tiling(cfg)
	perTile, tileBusy := w.binned(cfg, tiles)
	pes := int64(cfg.PEs())
	var total int64
	for t, s := range tiles {
		elems := perTile[t]
		if len(elems) == 0 && tileNNZ[t] == 0 {
			continue
		}
		var bRead int64
		if cfg.CompressedB {
			bRead = ceilDiv64(tileNNZ[t], int64(cfg.BCOOElemsPerRead*cfg.ChB))
		} else {
			bRead = ceilDiv64(int64(s.Rows())*int64(w.B.Cols), int64(cfg.BDenseElemsPerRead*cfg.ChB))
		}
		aRead := ceilDiv64(int64(len(elems)), int64(cfg.AElemsPerRead*cfg.ChA))
		compute := ceilDiv64(tileBusy[t], pes)
		m := compute
		if aRead > m {
			m = aRead
		}
		if bRead > m {
			m = bRead
		}
		total += m + int64(cfg.PEG) + cfg.DepGapCycles
	}
	total += ceilDiv64(w.COutputs(), int64(cfg.CElemsPerWrite*cfg.ChC))
	return total, len(tiles)
}

// tileOutcome is the per-tile contribution to a Result, computed
// independently per tile and reduced in tile order.
type tileOutcome struct {
	compute   int64
	aRead     int64
	bRead     int64
	broadcast int64
	cycles    int64
	bubbles   int64
	busy      int64
	capacity  int64
	skip      bool
}

// minParallelTiles is the tile count below which the scheduling loop stays
// serial — goroutine fan-out costs more than it saves on tiny workloads.
const minParallelTiles = 4

// numTileWorkers bounds the per-tile worker pool and gates SimulateAll's
// design fan-out. It is a variable so the equivalence tests can force the
// parallel paths on single-CPU hosts.
var numTileWorkers = runtime.NumCPU

func (w *Workload) simulate(ctx context.Context, cfg Config, parallelTiles bool) (Result, error) {
	return w.simulateBound(ctx, cfg, parallelTiles, nil)
}

// simulateBound is simulate with an optional early-exit bound. When
// bound is non-nil, a running partial cycle total — seeded with the
// exact C write-back charge and grown by each finished tile's charge —
// is compared against the best complete design seconds seen so far;
// once the partial total alone is strictly worse, the remaining tiles
// cannot change the argmin and the design returns a Pruned lower-bound
// Result. Every per-tile charge is non-negative, so the partial total
// is monotone and the abort is safe: a design that would have won (or
// tied) the comparison never aborts, and its Result is bit-identical to
// the exact path.
func (w *Workload) simulateBound(ctx context.Context, cfg Config, parallelTiles bool, bound *raceBound) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	res := Result{Design: cfg.ID}

	tiles, tileNNZ := w.tiling(cfg)
	perTile, _ := w.binned(cfg, tiles)
	res.Tiles = len(tiles)

	freqHz := cfg.FreqMHz * 1e6
	run := w.getRun(len(tiles))
	defer w.putRun(run)
	outs := run.outs
	if bound != nil {
		// The write-back term is exact and design-fixed; charging it up
		// front tightens the partial bound from the first tile on.
		run.partial.Store(ceilDiv64(w.COutputs(), int64(cfg.CElemsPerWrite*cfg.ChC)))
	}
	workers := numTileWorkers()
	if workers > len(tiles) {
		workers = len(tiles)
	}
	// Cancellation is polled between tiles (an atomic load per claim);
	// in-flight tiles finish, so an abort costs at most one tile per
	// worker. Each worker owns one pooled schedScratch: tiles on a
	// worker run sequentially, so the per-PE scheduling buffers are
	// reused across every tile that worker claims — and, because the
	// pool lives on the Workload, across requests.
	if parallelTiles && workers > 1 && len(tiles) >= minParallelTiles {
		w.runTilesParallel(ctx, cfg, tiles, perTile, tileNNZ, run, bound, freqHz, workers)
	} else {
		sc := w.getSched()
		for t := range tiles {
			if ctx.Err() != nil {
				break
			}
			o := simulateTile(cfg, tiles[t], perTile[t], tileNNZ[t], w.B.Cols, sc)
			outs[t] = o
			if bound != nil && float64(run.partial.Add(o.cycles))/freqHz > bound.best() {
				run.abort.Store(true)
				break
			}
		}
		w.putSched(sc)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if run.abort.Load() {
		// The partial total (simulated tiles + exact write-back) is a
		// valid lower bound on the design's true cycle count, and it is
		// already strictly above the best complete design's seconds.
		lb := run.partial.Load()
		return Result{
			Design:  cfg.ID,
			Tiles:   len(tiles),
			Cycles:  lb,
			Seconds: float64(lb) / freqHz,
			Pruned:  true,
		}, nil
	}

	// Deterministic reduction in tile order (every term is an exact
	// integer, so this matches the serial loop bit for bit).
	var busy, capacity int64
	for t := range outs {
		o := &outs[t]
		if o.skip {
			continue
		}
		busy += o.busy
		capacity += o.capacity
		res.ComputeCycles += o.compute
		res.AReadCycles += o.aRead
		res.BReadCycles += o.bRead
		res.BroadcastCycles += o.broadcast
		res.Bubbles += o.bubbles
		res.Cycles += o.cycles
	}

	// C write-back once the URAM accumulators hold the final tile sums.
	res.Flops = w.FlopCount()
	res.COutputs = w.COutputs()
	res.CWriteCycles = ceilDiv64(res.COutputs, int64(cfg.CElemsPerWrite*cfg.ChC))
	res.Cycles += res.CWriteCycles

	if capacity > 0 {
		res.PEUtilization = float64(busy) / float64(capacity)
	}
	res.Seconds = float64(res.Cycles) / freqHz
	return res, nil
}

// runTilesParallel is the goroutine tile pool of simulateBound, split
// into its own function so none of the serial path's locals are captured
// by a goroutine closure (such captures would box them on the heap on
// every call, breaking the steady-state zero-allocation guarantee).
func (w *Workload) runTilesParallel(ctx context.Context, cfg Config, tiles []Span, perTile [][]Elem, tileNNZ []int64, run *tileRun, bound *raceBound, freqHz float64, workers int) {
	outs := run.outs
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := w.getSched()
			defer w.putSched(sc)
			for ctx.Err() == nil && !run.abort.Load() {
				t := int(atomic.AddInt64(&run.next, 1)) - 1
				if t >= len(tiles) {
					return
				}
				o := simulateTile(cfg, tiles[t], perTile[t], tileNNZ[t], w.B.Cols, sc)
				outs[t] = o
				if bound != nil && float64(run.partial.Add(o.cycles))/freqHz > bound.best() {
					run.abort.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// simulateTile charges one B row tile: the max(compute, A read, B read)
// streaming overlap of §3.2.1 plus broadcast fill and the inter-tile
// dependency gap.
func simulateTile(cfg Config, s Span, elems []Elem, tileNNZ int64, bCols int, sc *schedScratch) tileOutcome {
	var o tileOutcome
	if len(elems) == 0 && tileNNZ == 0 {
		o.skip = true // nothing to stream or compute for this tile
		return o
	}
	// Read B tile over ChB channels.
	if cfg.CompressedB {
		o.bRead = ceilDiv64(tileNNZ, int64(cfg.BCOOElemsPerRead*cfg.ChB))
	} else {
		o.bRead = ceilDiv64(int64(s.Rows())*int64(bCols), int64(cfg.BDenseElemsPerRead*cfg.ChB))
	}
	// Stream A elements for this tile over ChA channels.
	o.aRead = ceilDiv64(int64(len(elems)), int64(cfg.AElemsPerRead*cfg.ChA))
	// Broadcast fill: B forwards PEG-to-PEG down the chain (§3.2.1).
	o.broadcast = int64(cfg.PEG)

	// Schedule each PEG's share; the tile completes when the slowest PEG
	// does.
	for _, g := range splitByPEGScratch(elems, cfg.PEG, cfg.SchedulerA, sc) {
		busy, bubbles, makespan := schedulePEGAgg(g, cfg.PEsPerPEG, cfg.SchedulerA, cfg.PEG, cfg.DepGapCycles, cfg.WindowSize, sc)
		o.busy += busy
		o.bubbles += bubbles
		if makespan > o.compute {
			o.compute = makespan
		}
	}
	// Row-wise designs spread each output row over many PEGs, so the
	// partial vectors must merge across accumulator groups before
	// write-back (see mergeCycles).
	if cfg.SchedulerA == RowWise {
		o.compute += mergeCyclesScratch(elems, cfg, sc)
	}
	// Utilization counts idle lanes against the straggler PEG's makespan —
	// the §3.2.2 "bubbles plus padding" effect.
	o.capacity = int64(cfg.PEs()) * o.compute
	o.cycles = max64(o.compute, max64(o.aRead, o.bRead)) + o.broadcast + cfg.DepGapCycles
	return o
}

// SimulateAllSerial is the reference implementation: every design runs
// sequentially, each with a fresh precompute and a serial tile loop,
// exactly like the pre-Workload engine. The equivalence tests and the
// BENCH_PR1.json speedup figures compare against it.
func SimulateAllSerial(a, b *sparse.CSR) ([NumDesigns]Result, error) {
	var out [NumDesigns]Result
	for _, id := range AllDesigns {
		w, err := NewWorkload(a, b)
		if err != nil {
			return out, err
		}
		r, err := w.simulate(context.Background(), GetConfig(id), false)
		if err != nil {
			return out, err
		}
		out[id] = r
	}
	return out, nil
}
