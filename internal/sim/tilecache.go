package sim

import (
	"sync"
	"sync/atomic"
)

// TileCache memoizes per-tile schedule outcomes across simulations. The
// expensive unit of the exact tier is scheduling one tile's element stream
// onto a design's PE array; the result — the (busy, bubbles, compute)
// triple — depends only on the stream's schedule-relevant content and the
// design's schedule-relevant parameters, never on which workload the tile
// came from. Keying by a content hash therefore lets the background
// verifier's re-simulation of a just-served workload, and near-duplicate
// tiles inside one workload, reuse schedules instead of recomputing them.
//
// The table is direct-mapped over a power-of-two slot count derived from a
// byte budget, with striped mutexes and overwrite-on-collision eviction:
// a fixed-size array of 40-byte slots, no linked lists, no per-entry
// allocation, so the hit and store paths are allocation-free. A slot with
// key (0, 0) is empty; the hash never produces that pair (it is perturbed
// if computed).
type TileCache struct {
	mask  uint64
	slots []tileSlot
	locks [tileStripes]sync.Mutex

	hits      atomic.Int64
	misses    atomic.Int64
	stores    atomic.Int64
	evictions atomic.Int64

	// Slow-tier instrumentation that rides along with the cache so one
	// attachable object carries every counter the stats endpoints report.
	boundAborts atomic.Int64
	coarseSkips atomic.Int64
}

type tileSlot struct {
	hi, lo                 uint64
	busy, bubbles, compute int64
}

const (
	tileSlotBytes = 40 // 2 key words + 3 payload words
	tileStripes   = 64 // must be a power of two
	maxTileSlots  = 1 << 26

	// DefaultTileCacheBytes sizes the lazily created per-workload private
	// cache: big enough that every tile of a typical pair fits (near-
	// duplicate tiles inside one workload reuse each other), small enough
	// to be noise next to the workload's own precompute.
	DefaultTileCacheBytes = 64 << 10
)

// NewTileCache returns a tile cache holding the largest power-of-two slot
// count that fits budgetBytes (minimum 64 slots).
func NewTileCache(budgetBytes int64) *TileCache {
	n := int64(64)
	for n*2*tileSlotBytes <= budgetBytes && n < maxTileSlots {
		n *= 2
	}
	return &TileCache{
		mask:  uint64(n - 1),
		slots: make([]tileSlot, n),
	}
}

// lookup returns the memoized triple for key (hi, lo), if present.
func (c *TileCache) lookup(hi, lo uint64) (busy, bubbles, compute int64, ok bool) {
	idx := lo & c.mask
	m := &c.locks[idx&(tileStripes-1)]
	m.Lock()
	s := &c.slots[idx]
	if s.hi == hi && s.lo == lo {
		busy, bubbles, compute = s.busy, s.bubbles, s.compute
		m.Unlock()
		c.hits.Add(1)
		return busy, bubbles, compute, true
	}
	m.Unlock()
	c.misses.Add(1)
	return 0, 0, 0, false
}

// store records the triple for key (hi, lo), overwriting whatever occupied
// the slot (direct-mapped eviction).
func (c *TileCache) store(hi, lo uint64, busy, bubbles, compute int64) {
	idx := lo & c.mask
	m := &c.locks[idx&(tileStripes-1)]
	m.Lock()
	s := &c.slots[idx]
	evict := (s.hi != 0 || s.lo != 0) && (s.hi != hi || s.lo != lo)
	s.hi, s.lo = hi, lo
	s.busy, s.bubbles, s.compute = busy, bubbles, compute
	m.Unlock()
	c.stores.Add(1)
	if evict {
		c.evictions.Add(1)
	}
}

func (c *TileCache) noteBoundAbort() {
	if c != nil {
		c.boundAborts.Add(1)
	}
}

func (c *TileCache) noteCoarseSkip() {
	if c != nil {
		c.coarseSkips.Add(1)
	}
}

// TileCacheStats is a point-in-time snapshot of a TileCache's counters.
type TileCacheStats struct {
	Slots       int     `json:"slots"`
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	Stores      int64   `json:"stores"`
	Evictions   int64   `json:"evictions"`
	HitRate     float64 `json:"hit_rate"`
	BoundAborts int64   `json:"bound_aborts"`
	CoarseSkips int64   `json:"coarse_skips"`
}

// Stats snapshots the cache counters.
func (c *TileCache) Stats() TileCacheStats {
	st := TileCacheStats{
		Slots:       len(c.slots),
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Stores:      c.stores.Load(),
		Evictions:   c.evictions.Load(),
		BoundAborts: c.boundAborts.Load(),
		CoarseSkips: c.coarseSkips.Load(),
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	}
	return st
}

// --- tile-stream hashing ---------------------------------------------------
//
// The key must capture exactly the inputs the schedule depends on and
// nothing more, so that equal keys imply equal (busy, bubbles, compute)
// triples while distinct workloads still share entries:
//
//   - Column-wise designs split elements by Row%PEG, fill PE queues
//     round-robin by stream position, and never merge — Elem.Col cannot
//     affect the schedule, so it is excluded and tiles that differ only in
//     column indices share one entry.
//   - Row-wise designs split by Col%PEG and merge by (row, col/PEG%PEG)
//     pairs, so Row, Col and Service all fold in.
//
// The per-design salt folds every Config field the scheduler reads
// (SchedulerA, PEG, PEsPerPEG, DepGapCycles, WindowSize, ACC) but not
// identity fields like ID or Name, so distinct configs with identical
// scheduling parameters share entries. Tile shape (rows spanned, dense
// tileNNZ) is deliberately NOT hashed: the memoized triple is recombined
// with freshly computed shape-derived terms (aRead, bRead, broadcast) at
// hit time, so two tiles with equal streams but different spans still
// reuse the schedule correctly.
//
// Construction: two polynomial accumulator lanes with distinct odd
// multipliers over per-element compression words, cross-finalized with a
// splitmix-style mixer. Polynomial accumulation keeps the per-element cost
// to a few arithmetic ops (the hash runs at lookup time, inside the
// simulation loop), while the 128-bit width makes accidental collisions —
// which would silently corrupt a Result — negligible; FuzzTileStreamHash
// hunts for them anyway.

const (
	tileHashM1 = 0x9e3779b97f4a7c15 // odd golden-ratio multiplier, lane 1
	tileHashM2 = 0xc2b2ae3d27d4eb4f // odd xxhash-style multiplier, lane 2
	tileHashM3 = 0xff51afd7ed558ccd // element compression multiplier
	tileHashM4 = 0xc4ceb9fe1a85ec53 // element compression multiplier
)

// tileMix64 is the splitmix64 finalizer, used to derive salts and to
// cross-finalize the two polynomial lanes.
func tileMix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// tileSalt derives the per-config hash salt from the schedule-relevant
// Config fields.
func tileSalt(cfg Config) uint64 {
	s := tileMix64(0x6d697361_6d2d7469 ^ uint64(cfg.SchedulerA))
	s = tileMix64(s ^ uint64(cfg.PEG))
	s = tileMix64(s ^ uint64(cfg.PEsPerPEG))
	s = tileMix64(s ^ uint64(cfg.DepGapCycles))
	s = tileMix64(s ^ uint64(cfg.WindowSize))
	s = tileMix64(s ^ uint64(cfg.ACC))
	return s
}

// hashTileElems hashes a tile's element stream under a config salt,
// returning a 128-bit key that is never (0, 0).
func hashTileElems(elems []Elem, rowWise bool, salt uint64) (hi, lo uint64) {
	lo = salt ^ (uint64(len(elems)) * tileHashM1)
	hi = tileMix64(salt + uint64(len(elems)))
	if rowWise {
		for i := range elems {
			e := &elems[i]
			r, c, s := uint64(e.Row), uint64(e.Col), uint64(e.Service)
			x1 := r*tileHashM3 ^ c*tileHashM4 ^ s
			x2 := r ^ c*tileHashM3 ^ s*tileHashM4
			lo = lo*tileHashM1 + x1
			hi = hi*tileHashM2 + x2
		}
	} else {
		for i := range elems {
			e := &elems[i]
			r, s := uint64(e.Row), uint64(e.Service)
			x1 := r*tileHashM3 + s
			x2 := r + s*tileHashM4
			lo = lo*tileHashM1 + x1
			hi = hi*tileHashM2 + x2
		}
	}
	fhi := tileMix64(hi ^ (lo >> 32))
	flo := tileMix64(lo ^ hi)
	if fhi == 0 && flo == 0 {
		flo = 1 // reserve (0, 0) as the empty-slot sentinel
	}
	return fhi, flo
}
