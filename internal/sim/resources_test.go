package sim

import (
	"math"
	"testing"
)

func TestDesignResourcesMatchTable2(t *testing.T) {
	d1 := DesignResources(Design1)
	if d1.LUT != 33.20 || d1.BRAM != 60.71 || d1.DSP != 29.00 {
		t.Errorf("Design 1 resources %+v disagree with Table 2", d1)
	}
	d2 := DesignResources(Design2)
	d3 := DesignResources(Design3)
	if d2 != d3 {
		t.Error("Designs 2 and 3 share a bitstream and must share resources")
	}
	d4 := DesignResources(Design4)
	if d4.BRAM != 24.21 {
		t.Errorf("Design 4 BRAM %v, want 24.21", d4.BRAM)
	}
	if DesignResources(DesignID(42)) != (Resources{}) {
		t.Error("invalid design should have zero resources")
	}
}

func TestResourceMax(t *testing.T) {
	r := Resources{LUT: 10, FF: 20, BRAM: 60, URAM: 30, DSP: 5}
	if r.Max() != 60 {
		t.Errorf("Max = %v, want 60", r.Max())
	}
}

func TestMaxInstancesMatchesSection62(t *testing.T) {
	// §6.2: "1 instance of Design 1, 2 instances of Design 2 or 3".
	if got := MaxInstances(Design1, 100); got != 1 {
		t.Errorf("Design 1 instances = %d, want 1", got)
	}
	if got := MaxInstances(Design2, 100); got != 2 {
		t.Errorf("Design 2 instances = %d, want 2", got)
	}
	if got := MaxInstances(Design3, 100); got != 2 {
		t.Errorf("Design 3 instances = %d, want 2", got)
	}
	// Design 4 packs to 3 by pure fabric arithmetic; the paper's "up to 2"
	// reserves shell/routing headroom, reproduced with a ~75% limit.
	if got := MaxInstances(Design4, 100); got != 3 {
		t.Errorf("Design 4 instances at 100%% = %d, want 3", got)
	}
	if got := MaxInstances(Design4, 75); got != 2 {
		t.Errorf("Design 4 instances at 75%% = %d, want 2 (paper's estimate)", got)
	}
	if got := MaxInstances(DesignID(42), 100); got != 0 {
		t.Errorf("invalid design instances = %d, want 0", got)
	}
}

func TestCanCoLocate(t *testing.T) {
	// D1 + D4: BRAM 60.71 + 24.21 = 84.92 <= 100 → fits.
	if !CanCoLocate([]DesignID{Design1, Design4}, 100) {
		t.Error("Design 1 + Design 4 should co-locate")
	}
	// Two D1 instances: BRAM 121.42 > 100 → rejected.
	if CanCoLocate([]DesignID{Design1, Design1}, 100) {
		t.Error("two Design 1 instances cannot fit (BRAM bound)")
	}
	if !CanCoLocate(nil, 100) {
		t.Error("empty mix trivially fits")
	}
}

func TestTrapezoidIdleFraction(t *testing.T) {
	// §6.2: "up to 26.5% of the chip area becomes idle".
	if got := TrapezoidIdleFraction(); math.Abs(got-0.265) > 0.005 {
		t.Errorf("idle fraction %.3f, want ≈0.265", got)
	}
}

func TestBitstreamSizesInPaperRange(t *testing.T) {
	// §6.1: bitstreams of 50–80 MB.
	for _, id := range AllDesigns {
		sz := BitstreamBytes(id)
		if sz < 50<<20 || sz > 80<<20 {
			t.Errorf("%v bitstream %d bytes outside 50–80 MB", id, sz)
		}
	}
}
