package sim

import (
	"fmt"
	"math"

	"misam/internal/sparse"
)

// Host-side preprocessing (§3.2.1): before a kernel launches, the host
// tiles the operands, coalesces A's nonzeros into 64-bit words ("8
// elements of A are coalesced into a 64-bit word containing row index,
// column index, and value"), and pre-generates scheduling information —
// "a pointer list for each PEG, specifying how many A elements to
// consume per iteration". Design 4 additionally builds the URAM metadata
// that maps each logical B row to its BRAM range (§3.2.4).

// AWord is the packed 64-bit representation of one A nonzero: 24-bit row
// index, 24-bit column index, 16-bit half-precision value.
type AWord uint64

const (
	aWordIndexBits = 24
	aWordIndexMax  = 1<<aWordIndexBits - 1
)

// PackAWord encodes one nonzero. Indices beyond 24 bits are rejected —
// the hardware's word format bounds matrix dimensions at 16.7M.
func PackAWord(row, col int, val float64) (AWord, error) {
	if row < 0 || row > aWordIndexMax || col < 0 || col > aWordIndexMax {
		return 0, fmt.Errorf("sim: index (%d,%d) exceeds the %d-bit A-word format", row, col, aWordIndexBits)
	}
	return AWord(uint64(row)<<40 | uint64(col)<<16 | uint64(Float16FromFloat64(val))), nil
}

// Unpack splits the word back into its fields (the value is the
// half-precision rounding of the original).
func (w AWord) Unpack() (row, col int, val float64) {
	return int(w >> 40 & aWordIndexMax), int(w >> 16 & aWordIndexMax), Float16ToFloat64(uint16(w))
}

// Float16FromFloat64 converts to IEEE 754 binary16 with round-to-nearest
// (ties to even), saturating to ±Inf beyond the format's range.
func Float16FromFloat64(f float64) uint16 {
	b := math.Float64bits(f)
	sign := uint16(b >> 48 & 0x8000)
	exp := int(b>>52&0x7FF) - 1023
	frac := b & 0xFFFFFFFFFFFFF

	switch {
	case exp == 1024: // Inf/NaN
		if frac != 0 {
			return sign | 0x7E00 // quiet NaN
		}
		return sign | 0x7C00
	case exp > 15: // overflow → Inf
		return sign | 0x7C00
	case exp >= -14: // normal
		// 10 fraction bits; round to nearest even on the cut.
		mant := frac >> 42
		rem := frac & ((1 << 42) - 1)
		half := uint64(1) << 41
		if rem > half || (rem == half && mant&1 == 1) {
			mant++ // a carry to 1024 folds into the exponent field below
		}
		return sign | uint16(exp+15)<<10 | uint16(mant)
	case exp >= -24: // subnormal
		shift := uint(42 - exp - 14) // total right shift of the 53-bit mantissa
		full := frac | 1<<52
		mant := full >> shift
		dropped := full & (1<<shift - 1)
		half := uint64(1) << (shift - 1)
		if dropped > half || (dropped == half && mant&1 == 1) {
			mant++
		}
		return sign | uint16(mant)
	default: // underflow → ±0
		return sign
	}
}

// Float16ToFloat64 expands IEEE 754 binary16 to float64.
func Float16ToFloat64(h uint16) float64 {
	sign := uint64(h&0x8000) << 48
	exp := int(h >> 10 & 0x1F)
	frac := uint64(h & 0x3FF)
	switch exp {
	case 0:
		if frac == 0 {
			return math.Float64frombits(sign)
		}
		// Subnormal: value = frac × 2⁻²⁴.
		f := float64(frac) * math.Pow(2, -24)
		if sign != 0 {
			f = -f
		}
		return f
	case 31:
		if frac != 0 {
			return math.NaN()
		}
		return math.Float64frombits(sign | 0x7FF0000000000000)
	default:
		return math.Float64frombits(sign | uint64(exp-15+1023)<<52 | frac<<42)
	}
}

// PEGPointerList is one PEG's pre-generated schedule: entry i is how many
// A elements the group consumes in iteration i (at most one per PE).
type PEGPointerList struct {
	PEG int
	// Counts per iteration; values are in [0, PEsPerPEG].
	Counts []int
	// TotalElements is the sum of Counts.
	TotalElements int
	// Padding counts the idle lanes across iterations — the §3.2.2
	// "inefficient zeros" the denser designs pad with.
	Padding int
}

// URAMEntry maps a logical B row to its packed BRAM range (Design 4's
// metadata, §3.2.4: "metadata is stored in the PEG-local URAMs").
type URAMEntry struct {
	BRow       int
	Start, End int // half-open range of coalesced nonzeros in BRAM
}

// TileSchedule is the host artifact for one B row tile.
type TileSchedule struct {
	Span     Span
	ANNZ     int
	BNNZ     int
	Pointers []PEGPointerList
	// URAM holds Design 4's per-row metadata; nil for dense-B designs.
	URAM []URAMEntry
}

// HostSchedule is the complete preprocessing output for one kernel launch.
type HostSchedule struct {
	Design DesignID
	Tiles  []TileSchedule
	// AWords is the packed A stream (all tiles concatenated, traversal
	// order).
	AWords []AWord
	// HostOps estimates the host work performed: one unit per nonzero
	// touched plus one per pointer-list entry, the cost the Figure 12
	// preprocessing bar measures.
	HostOps int64
}

// BuildHostSchedule runs the host-side preprocessing for a design on A×B.
func BuildHostSchedule(cfg Config, a, b *sparse.CSR) (*HostSchedule, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("sim: dimension mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.Rows > aWordIndexMax || a.Cols > aWordIndexMax {
		return nil, fmt.Errorf("sim: matrix %dx%d exceeds the A-word index range", a.Rows, a.Cols)
	}
	var tiles []Span
	if cfg.CompressedB {
		tiles = SparsityAwareRowTiles(b, cfg.BRAMCapacityNNZ)
	} else {
		tiles = DenseRowTiles(b.Rows, cfg.BRAMRowsPerTile)
	}
	svc := func(int) int64 { return 1 } // element counts only
	var perTile [][]Elem
	if cfg.SchedulerA == ColWise {
		perTile = binByTileColWise(a.ToCSCPattern(), tiles, svc)
	} else {
		perTile = binByTileRowWise(a, tiles, svc)
	}

	h := &HostSchedule{Design: cfg.ID}
	for t, span := range tiles {
		ts := TileSchedule{Span: span, ANNZ: len(perTile[t])}
		ts.BNNZ = b.RowPtr[span.Hi] - b.RowPtr[span.Lo]

		// Pack A words in traversal order.
		for _, e := range perTile[t] {
			w, err := PackAWord(e.Row, e.Col, valueAt(a, e.Row, e.Col))
			if err != nil {
				return nil, err
			}
			h.AWords = append(h.AWords, w)
		}
		h.HostOps += int64(len(perTile[t]))

		// Pointer lists per PEG.
		for p, group := range splitByPEG(perTile[t], cfg.PEG, cfg.SchedulerA) {
			pl := PEGPointerList{PEG: p, TotalElements: len(group)}
			remaining := len(group)
			for remaining > 0 {
				n := cfg.PEsPerPEG
				if remaining < n {
					pl.Padding += n - remaining
					n = remaining
				}
				pl.Counts = append(pl.Counts, n)
				remaining -= n
			}
			h.HostOps += int64(len(pl.Counts))
			ts.Pointers = append(ts.Pointers, pl)
		}

		// Design 4 URAM metadata: BRAM offsets of each packed B row.
		if cfg.CompressedB {
			offset := 0
			for r := span.Lo; r < span.Hi; r++ {
				n := b.RowNNZ(r)
				ts.URAM = append(ts.URAM, URAMEntry{BRow: r, Start: offset, End: offset + n})
				offset += n
			}
			h.HostOps += int64(span.Rows())
		}
		h.Tiles = append(h.Tiles, ts)
	}
	return h, nil
}

// valueAt reads A[r,c]; BuildHostSchedule only queries existing nonzeros.
func valueAt(a *sparse.CSR, r, c int) float64 { return a.At(r, c) }

// Validate cross-checks the schedule against its operands: every nonzero
// packed exactly once, pointer lists covering every element, URAM ranges
// contiguous.
func (h *HostSchedule) Validate(a *sparse.CSR) error {
	if len(h.AWords) != a.NNZ() {
		return fmt.Errorf("sim: schedule packs %d words for %d nonzeros", len(h.AWords), a.NNZ())
	}
	total := 0
	for ti, ts := range h.Tiles {
		tileTotal := 0
		for _, pl := range ts.Pointers {
			sum := 0
			for _, c := range pl.Counts {
				if c < 0 {
					return fmt.Errorf("sim: tile %d PEG %d has negative count %d", ti, pl.PEG, c)
				}
				sum += c
			}
			if sum != pl.TotalElements {
				return fmt.Errorf("sim: tile %d PEG %d counts sum %d != total %d", ti, pl.PEG, sum, pl.TotalElements)
			}
			tileTotal += sum
		}
		if tileTotal != ts.ANNZ {
			return fmt.Errorf("sim: tile %d pointer lists cover %d of %d elements", ti, tileTotal, ts.ANNZ)
		}
		total += tileTotal
		prevEnd := 0
		for _, u := range ts.URAM {
			if u.Start != prevEnd || u.End < u.Start {
				return fmt.Errorf("sim: tile %d URAM entry for row %d not contiguous", ti, u.BRow)
			}
			prevEnd = u.End
		}
		if len(ts.URAM) > 0 && prevEnd != ts.BNNZ {
			return fmt.Errorf("sim: tile %d URAM covers %d of %d B nonzeros", ti, prevEnd, ts.BNNZ)
		}
	}
	if total != a.NNZ() {
		return fmt.Errorf("sim: schedule covers %d of %d nonzeros", total, a.NNZ())
	}
	return nil
}

// Iterations reports the total iteration count across tiles for one PEG —
// how long its pointer list is.
func (h *HostSchedule) Iterations(peg int) int {
	n := 0
	for _, ts := range h.Tiles {
		if peg < len(ts.Pointers) {
			n += len(ts.Pointers[peg].Counts)
		}
	}
	return n
}

// PaddingFraction reports the fraction of issued lanes that were padding
// across the whole schedule (1 − occupancy).
func (h *HostSchedule) PaddingFraction() float64 {
	var pad, slots int
	for _, ts := range h.Tiles {
		for _, pl := range ts.Pointers {
			pad += pl.Padding
			slots += pl.TotalElements + pl.Padding
		}
	}
	if slots == 0 {
		return 0
	}
	return float64(pad) / float64(slots)
}
