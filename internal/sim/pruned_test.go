package sim

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"misam/internal/sparse"
)

// prunedOptionSets are the exactness-claiming evaluation modes: every one
// must preserve the argmin and the winner's exact Result.
var prunedOptionSets = []struct {
	name string
	opt  Options
}{
	{"early-exit", Options{EarlyExit: true}},
	{"coarse", Options{Coarse: true}},
	{"coarse+early-exit", PruneOptions()},
}

// checkPrunedEquivalence asserts the SimulateAllOpts contract against the
// serial reference: same argmin, bit-identical winner Result, bit-identical
// non-pruned losers, and pruned losers that (a) are marked, (b) carry a
// valid lower bound, and (c) report strictly worse Seconds than the winner
// so BestDesign's design-order tie-breaking is unaffected.
func checkPrunedEquivalence(t *testing.T, name string, serial, pruned [NumDesigns]Result) {
	t.Helper()
	sBest, pBest := BestDesign(serial), BestDesign(pruned)
	if sBest != pBest {
		t.Errorf("%s: argmin diverged: serial %v, pruned %v", name, sBest, pBest)
		return
	}
	if pruned[pBest].Pruned {
		t.Errorf("%s: winner %v reported as pruned", name, pBest)
	}
	for _, id := range AllDesigns {
		if !pruned[id].Pruned {
			if pruned[id] != serial[id] {
				t.Errorf("%s/%v: non-pruned result diverged from serial reference:\nserial: %+v\npruned: %+v",
					name, id, serial[id], pruned[id])
			}
			continue
		}
		if pruned[id].Cycles > serial[id].Cycles {
			t.Errorf("%s/%v: pruned bound %d cycles exceeds exact total %d — not a lower bound",
				name, id, pruned[id].Cycles, serial[id].Cycles)
		}
		if pruned[id].Seconds <= serial[sBest].Seconds {
			t.Errorf("%s/%v: pruned loser seconds %.6g not strictly worse than winner's %.6g",
				name, id, pruned[id].Seconds, serial[sBest].Seconds)
		}
	}
}

// TestSimulateAllOptsMatchesSerial is the early-exit/coarse correctness
// property over the generator-family pairs: every pruning mode, on both
// the sequential and the forced-parallel engine, preserves the argmin and
// the winner's exact Result bit for bit.
func TestSimulateAllOptsMatchesSerial(t *testing.T) {
	old := numTileWorkers
	defer func() { numTileWorkers = old }()
	for _, tc := range equivalencePairs(t) {
		serial, err := SimulateAllSerial(tc.a, tc.b)
		if err != nil {
			t.Fatalf("%s: serial: %v", tc.name, err)
		}
		for _, os := range prunedOptionSets {
			for _, workers := range []int{1, 4} {
				numTileWorkers = func() int { return workers }
				w, err := NewWorkload(tc.a, tc.b)
				if err != nil {
					t.Fatal(err)
				}
				got, err := w.SimulateAllOpts(context.Background(), os.opt)
				if err != nil {
					t.Fatalf("%s/%s (workers=%d): %v", tc.name, os.name, workers, err)
				}
				checkPrunedEquivalence(t, tc.name+"/"+os.name, serial, got)
			}
			numTileWorkers = old
		}
	}
	// The package-level convenience wrapper must satisfy the same contract.
	for _, tc := range equivalencePairs(t) {
		serial, err := SimulateAllSerial(tc.a, tc.b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SimulateAllPruned(tc.a, tc.b)
		if err != nil {
			t.Fatal(err)
		}
		checkPrunedEquivalence(t, tc.name+"/wrapper", serial, got)
	}
}

// TestSimulateAllOptsRandomPairs widens the property to a seeded stream
// of random CSR pairs across shapes and densities.
func TestSimulateAllOptsRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(60625))
	for i := 0; i < 12; i++ {
		m := 50 + rng.Intn(400)
		k := 50 + rng.Intn(400)
		n := 8 + rng.Intn(256)
		var a, b *sparse.CSR
		switch i % 3 {
		case 0:
			a = sparse.Uniform(rng, m, k, 0.002+rng.Float64()*0.05)
			b = sparse.DenseRandom(rng, k, n)
		case 1:
			a = sparse.PowerLaw(rng, m, k, m*4, 1.5+rng.Float64())
			b = sparse.Uniform(rng, k, n, 0.02+rng.Float64()*0.2)
		default:
			a = sparse.Uniform(rng, m, k, 0.001+rng.Float64()*0.01)
			b = sparse.Uniform(rng, k, n, 0.001+rng.Float64()*0.05)
		}
		serial, err := SimulateAllSerial(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, os := range prunedOptionSets {
			w, err := NewWorkload(a, b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := w.SimulateAllOpts(context.Background(), os.opt)
			if err != nil {
				t.Fatal(err)
			}
			checkPrunedEquivalence(t, os.name, serial, got)
		}
	}
}

// FuzzSimulateAllPruned fuzzes the argmin-preservation contract over
// generator parameters (the seed corpus runs in every `go test`).
func FuzzSimulateAllPruned(f *testing.F) {
	f.Add(int64(1), uint16(200), uint16(150), uint16(64), uint16(30))
	f.Add(int64(7), uint16(64), uint16(500), uint16(16), uint16(200))
	f.Add(int64(42), uint16(333), uint16(333), uint16(96), uint16(5))
	f.Fuzz(func(t *testing.T, seed int64, m, k, n, densityPct uint16) {
		rows := int(m)%600 + 1
		cols := int(k)%600 + 1
		rhs := int(n)%128 + 1
		density := float64(densityPct%300) / 1000
		rng := rand.New(rand.NewSource(seed))
		a := sparse.Uniform(rng, rows, cols, density)
		b := sparse.Uniform(rng, cols, rhs, 0.1)
		serial, err := SimulateAllSerial(a, b)
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := SimulateAllPruned(a, b)
		if err != nil {
			t.Fatal(err)
		}
		checkPrunedEquivalence(t, "fuzz", serial, pruned)
	})
}

// TestCoarseBoundIsLowerBound pins the analytic bound's validity: for
// every design and pair, coarseBound never exceeds the exact cycle count.
func TestCoarseBoundIsLowerBound(t *testing.T) {
	for _, tc := range equivalencePairs(t) {
		w, err := NewWorkload(tc.a, tc.b)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range AllDesigns {
			cfg := GetConfig(id)
			exact, err := w.Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			lb, nTiles := w.coarseBound(cfg)
			if lb > exact.Cycles {
				t.Errorf("%s/%v: coarse bound %d exceeds exact cycles %d", tc.name, id, lb, exact.Cycles)
			}
			if nTiles != exact.Tiles {
				t.Errorf("%s/%v: coarse tile count %d != exact %d", tc.name, id, nTiles, exact.Tiles)
			}
		}
	}
}

// TestEarlyExitRacingBound drives the shared racing bound with the design
// fan-out and tile pool forced on, concurrently from several goroutines on
// one shared Workload — under `go test -race` (ci.sh runs this by name)
// this is the data-race proof for the early-exit path.
func TestEarlyExitRacingBound(t *testing.T) {
	old := numTileWorkers
	numTileWorkers = func() int { return 4 }
	defer func() { numTileWorkers = old }()

	rng := rand.New(rand.NewSource(66))
	a := sparse.PowerLaw(rng, 700, 700, 4900, 1.7)
	b := sparse.Uniform(rng, 700, 128, 0.08)
	serial, err := SimulateAllSerial(a, b)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := NewWorkload(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		opt := prunedOptionSets[i%len(prunedOptionSets)].opt
		wg.Add(1)
		go func(opt Options) {
			defer wg.Done()
			got, err := shared.SimulateAllOpts(context.Background(), opt)
			if err != nil {
				t.Error(err)
				return
			}
			checkPrunedEquivalence(t, "racing", serial, got)
		}(opt)
	}
	wg.Wait()
}

// TestSimulateAllOptsZeroValueIsExact pins that the zero Options value is
// the plain exact path, pruning nothing.
func TestSimulateAllOptsZeroValueIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := sparse.Uniform(rng, 300, 300, 0.02)
	b := sparse.DenseRandom(rng, 300, 32)
	w, err := NewWorkload(a, b)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := w.SimulateAll()
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.SimulateAllOpts(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != exact {
		t.Errorf("zero Options diverged from SimulateAll:\nexact: %+v\ngot:   %+v", exact, got)
	}
}
