package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"misam/internal/sparse"
)

func TestFloat16KnownValues(t *testing.T) {
	cases := []struct {
		f float64
		h uint16
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF}, // largest finite half
		{math.Inf(1), 0x7C00},
		{math.Inf(-1), 0xFC00},
		{5.960464477539063e-08, 0x0001}, // smallest subnormal
	}
	for _, c := range cases {
		if got := Float16FromFloat64(c.f); got != c.h {
			t.Errorf("Float16FromFloat64(%v) = %#04x, want %#04x", c.f, got, c.h)
		}
		if back := Float16ToFloat64(c.h); back != c.f {
			t.Errorf("Float16ToFloat64(%#04x) = %v, want %v", c.h, back, c.f)
		}
	}
}

func TestFloat16Saturation(t *testing.T) {
	if got := Float16FromFloat64(1e6); got != 0x7C00 {
		t.Errorf("overflow = %#04x, want +Inf", got)
	}
	if got := Float16FromFloat64(-1e6); got != 0xFC00 {
		t.Errorf("negative overflow = %#04x, want -Inf", got)
	}
	if got := Float16FromFloat64(1e-10); got != 0 {
		t.Errorf("underflow = %#04x, want +0", got)
	}
	if !math.IsNaN(Float16ToFloat64(0x7E00)) {
		t.Error("NaN did not round-trip")
	}
	if got := Float16FromFloat64(math.NaN()); got&0x7C00 != 0x7C00 || got&0x3FF == 0 {
		t.Errorf("NaN encodes to %#04x, want a NaN pattern", got)
	}
}

func TestPropertyFloat16RoundTripIsIdempotent(t *testing.T) {
	// Converting f64→f16→f64→f16 must be a fixed point after one pass.
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		h1 := Float16FromFloat64(x)
		d := Float16ToFloat64(h1)
		h2 := Float16FromFloat64(d)
		return h1 == h2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFloat16RelativeError(t *testing.T) {
	// For values inside the normal range the relative error is bounded by
	// 2⁻¹¹ (half-ulp of a 10-bit mantissa).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		x := (rng.Float64()*2 - 1) * 100
		if math.Abs(x) < 1e-3 {
			continue
		}
		d := Float16ToFloat64(Float16FromFloat64(x))
		if rel := math.Abs(d-x) / math.Abs(x); rel > 1.0/2048 {
			t.Fatalf("relative error %.2e for %v", rel, x)
		}
	}
}

func TestPackAWordRoundTrip(t *testing.T) {
	w, err := PackAWord(123456, 654321, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	r, c, v := w.Unpack()
	if r != 123456 || c != 654321 || v != 0.25 {
		t.Errorf("unpacked (%d,%d,%v)", r, c, v)
	}
	if _, err := PackAWord(1<<24, 0, 1); err == nil {
		t.Error("accepted 25-bit row index")
	}
	if _, err := PackAWord(0, -1, 1); err == nil {
		t.Error("accepted negative column")
	}
}

func TestBuildHostScheduleBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := sparse.Uniform(rng, 500, 500, 0.02)
	b := sparse.DenseRandom(rng, 500, 32)
	for _, id := range AllDesigns {
		h, err := BuildHostSchedule(GetConfig(id), a, b)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		if err := h.Validate(a); err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		if h.Design != id {
			t.Errorf("%v: schedule tagged %v", id, h.Design)
		}
		if h.HostOps <= int64(a.NNZ()) {
			t.Errorf("%v: HostOps %d should exceed nnz (pointer lists add work)", id, h.HostOps)
		}
	}
}

func TestHostScheduleDimensionMismatch(t *testing.T) {
	a := sparse.Identity(4)
	b := sparse.Identity(5)
	if _, err := BuildHostSchedule(GetConfig(Design1), a, b); err == nil {
		t.Fatal("expected dimension mismatch")
	}
}

func TestHostSchedulePointerListsMatchRoundRobin(t *testing.T) {
	// 10 elements on one PEG with 4 PEs → iterations of 4,4,2 and
	// padding 2.
	m := sparse.NewCOO(1, 10)
	for c := 0; c < 10; c++ {
		m.Append(0, c, 1)
	}
	m.Normalize()
	a := m.ToCSR()
	b := sparse.DenseRandom(rand.New(rand.NewSource(3)), 10, 8)
	h, err := BuildHostSchedule(GetConfig(Design1), a, b)
	if err != nil {
		t.Fatal(err)
	}
	pl := h.Tiles[0].Pointers[0] // row 0 → PEG 0
	want := []int{4, 4, 2}
	if len(pl.Counts) != len(want) {
		t.Fatalf("counts = %v, want %v", pl.Counts, want)
	}
	for i := range want {
		if pl.Counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", pl.Counts, want)
		}
	}
	if pl.Padding != 2 {
		t.Errorf("padding = %d, want 2", pl.Padding)
	}
}

func TestHostScheduleURAMMetadataDesign4(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := sparse.Uniform(rng, 300, 300, 0.01)
	b := sparse.Uniform(rng, 300, 300, 0.01)
	h, err := BuildHostSchedule(GetConfig(Design4), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(a); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ts := range h.Tiles {
		if len(ts.URAM) > 0 {
			found = true
			// Each entry's width equals its row's nnz.
			for _, u := range ts.URAM {
				if u.End-u.Start != b.RowNNZ(u.BRow) {
					t.Fatalf("URAM row %d width %d, want %d", u.BRow, u.End-u.Start, b.RowNNZ(u.BRow))
				}
			}
		}
	}
	if !found {
		t.Error("Design 4 schedule missing URAM metadata")
	}
	// Dense designs carry none.
	hd, err := BuildHostSchedule(GetConfig(Design1), a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range hd.Tiles {
		if ts.URAM != nil {
			t.Error("dense-B design should not build URAM metadata")
		}
	}
}

func TestPropertyHostScheduleValid(t *testing.T) {
	f := func(seed int64, dIn uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		id := AllDesigns[int(dIn)%len(AllDesigns)]
		a := sparse.Uniform(rng, rng.Intn(200)+1, rng.Intn(200)+1, rng.Float64()*0.3)
		b := sparse.Uniform(rng, a.Cols, rng.Intn(100)+1, rng.Float64()*0.3)
		h, err := BuildHostSchedule(GetConfig(id), a, b)
		if err != nil {
			return false
		}
		return h.Validate(a) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPaddingFractionHigherForBiggerDesign(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// A tiny sparse matrix (~3 elements per group): Design 2's 24 PEGs
	// pad more lanes than Design 1's 16 — the §3.2.2 underutilization in
	// host-schedule form.
	a := sparse.Uniform(rng, 100, 100, 0.005)
	b := sparse.DenseRandom(rng, 100, 8)
	h1, err := BuildHostSchedule(GetConfig(Design1), a, b)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := BuildHostSchedule(GetConfig(Design2), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if h2.PaddingFraction() <= h1.PaddingFraction() {
		t.Errorf("Design 2 padding %.3f not above Design 1 %.3f",
			h2.PaddingFraction(), h1.PaddingFraction())
	}
}

func TestIterationsPerPEG(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := sparse.Uniform(rng, 200, 200, 0.05)
	b := sparse.DenseRandom(rng, 200, 16)
	h, err := BuildHostSchedule(GetConfig(Design1), a, b)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for p := 0; p < 16; p++ {
		total += h.Iterations(p)
	}
	if total == 0 {
		t.Error("no iterations recorded")
	}
}
