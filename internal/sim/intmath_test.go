package sim

import "testing"

func TestMax64(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0}, {1, 0, 1}, {0, 1, 1}, {-3, -7, -3},
		{1 << 62, 1, 1 << 62}, {-1, 1, 1},
	}
	for _, c := range cases {
		if got := max64(c.a, c.b); got != c.want {
			t.Errorf("max64(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDiv64(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 1, 0}, {1, 1, 1}, {7, 2, 4}, {8, 2, 4}, {9, 2, 5},
		{0, 8, 0}, {1, 8, 1}, {4096, 8, 512}, {4097, 8, 513},
	}
	for _, c := range cases {
		if got := ceilDiv64(c.a, c.b); got != c.want {
			t.Errorf("ceilDiv64(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	for _, bad := range []int64{0, -1, -8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ceilDiv64(5, %d) did not panic", bad)
				}
			}()
			ceilDiv64(5, bad)
		}()
	}
}
