package sim

import (
	"slices"

	"misam/internal/sparse"
)

// Result is the outcome of simulating one design on one workload.
type Result struct {
	Design DesignID

	// Cycles is the end-to-end cycle count; Seconds converts it with the
	// design's Table 2 clock.
	Cycles  int64
	Seconds float64

	// Breakdown of where cycles went. Per tile the engine charges
	// max(compute, A read, B read) plus broadcast fill and drain, since
	// streaming overlaps I/O with compute; the C write-back is charged
	// once at the end (§3.2.1).
	ComputeCycles   int64
	AReadCycles     int64
	BReadCycles     int64
	BroadcastCycles int64
	CWriteCycles    int64

	// Tiles is the number of B row tiles processed.
	Tiles int
	// Bubbles counts dependency-stall cycles across all PEs and tiles.
	Bubbles int64
	// PEUtilization is busy cycles / (PEs × makespan), aggregated.
	PEUtilization float64
	// Flops is the useful multiply-accumulate count of the product.
	Flops int64
	// COutputs is the (estimated) number of C entries written back.
	COutputs int64

	// Pruned marks a design whose evaluation was cut short by the
	// early-exit bound or skipped by the coarse analytic ranking. Cycles
	// and Seconds then hold a lower bound that is already provably worse
	// than the winning design's exact total; the breakdown fields are
	// zero. The winner of a pruned SimulateAll is never pruned — its
	// Result is bit-identical to the exact path (see SimulateAllOpts).
	Pruned bool
}

// Throughput reports useful GFLOP/s (2 ops per multiply-accumulate).
func (r Result) Throughput() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return 2 * float64(r.Flops) / r.Seconds / 1e9
}

// Simulate runs design cfg on the product A×B and returns the cycle-level
// result. A and B are CSR; B's storage format (dense stream vs 64-bit COO)
// follows cfg.CompressedB.
//
// Simulate is a compatibility wrapper over the Workload precompute API: it
// builds a single-use Workload and discards it. Callers evaluating several
// designs (or configs) on one pair should build the Workload once with
// NewWorkload and reuse it — see SimulateAll.
func Simulate(cfg Config, a, b *sparse.CSR) (Result, error) {
	w, err := NewWorkload(a, b)
	if err != nil {
		return Result{}, err
	}
	return w.Simulate(cfg)
}

// SimulateDesign is shorthand for Simulate(GetConfig(id), a, b).
func SimulateDesign(id DesignID, a, b *sparse.CSR) (Result, error) {
	return Simulate(GetConfig(id), a, b)
}

// SimulateAll runs every design on the workload and returns the results
// indexed by DesignID. The designs share one Workload precompute (CSC
// form, B row counts, tilings, element bins) and run concurrently;
// results are bit-identical to the serial per-design path (see
// SimulateAllSerial and the equivalence tests).
func SimulateAll(a, b *sparse.CSR) ([NumDesigns]Result, error) {
	w, err := NewWorkload(a, b)
	if err != nil {
		var out [NumDesigns]Result
		return out, err
	}
	return w.SimulateAll()
}

// SimulateAllPruned runs every design with coarse-then-exact pruning and
// early exit (see Workload.SimulateAllOpts): the returned winner and its
// Result are bit-identical to SimulateAll's, but losers may carry only a
// pruned lower bound. Single-shot "which design wins?" callers — the
// background verifier, the dataset labeller — should prefer this.
func SimulateAllPruned(a, b *sparse.CSR) ([NumDesigns]Result, error) {
	w, err := NewWorkload(a, b)
	if err != nil {
		var out [NumDesigns]Result
		return out, err
	}
	return w.SimulateAllPruned()
}

// BestDesign returns the design with the lowest simulated latency.
func BestDesign(results [NumDesigns]Result) DesignID {
	best := Design1
	for _, id := range AllDesigns {
		if results[id].Seconds < results[best].Seconds {
			best = id
		}
	}
	return best
}

// splitByPEG partitions elements across processing element groups,
// preserving traversal order within each group. Column-wise designs pin
// output rows to PEGs (row % PEGs), matching §3.2.1's partitioning of A
// across PEG FIFOs. Design 3's row-wise scheduling instead pins columns
// (col % PEGs): a single heavy row then spreads over the whole
// accelerator, which is exactly how it "better accommodates irregular
// sparsity patterns" (§3.2.3) — at the price of a cross-PEG merge of
// partial C rows (mergeCycles). A counting pass sizes every bucket
// exactly, so the fill pass never reallocates; all buckets share one
// backing array.
func splitByPEG(elems []Elem, pegs int, traversal Traversal) [][]Elem {
	return splitByPEGScratch(elems, pegs, traversal, &schedScratch{})
}

// splitByPEGScratch is splitByPEG backed by the worker's scratch buffers;
// the returned groups alias sc.pegBuf and stay valid until the next call
// on the same scratch.
func splitByPEGScratch(elems []Elem, pegs int, traversal Traversal, sc *schedScratch) [][]Elem {
	if cap(sc.pegCounts) < pegs {
		sc.pegCounts = make([]int, pegs)
	} else {
		sc.pegCounts = sc.pegCounts[:pegs]
		clear(sc.pegCounts)
	}
	counts := sc.pegCounts
	if traversal == RowWise {
		for i := range elems {
			counts[elems[i].Col%pegs]++
		}
	} else {
		for i := range elems {
			counts[elems[i].Row%pegs]++
		}
	}
	if cap(sc.pegBuf) < len(elems) {
		sc.pegBuf = make([]Elem, len(elems))
	}
	buf := sc.pegBuf[:len(elems)]
	if cap(sc.pegGroups) < pegs {
		sc.pegGroups = make([][]Elem, pegs)
	}
	out := sc.pegGroups[:pegs]
	off := 0
	for p := range out {
		out[p] = buf[off : off : off+counts[p]]
		off += counts[p]
	}
	for i := range elems {
		var p int
		if traversal == RowWise {
			p = elems[i].Col % pegs
		} else {
			p = elems[i].Row % pegs
		}
		out[p] = append(out[p], elems[i])
	}
	return out
}

// mergeCycles charges Design 3's reduction of per-PEG partial C rows:
// each output row touched by k distinct PEGs needs k-1 vector merges of
// Service width, spread over the ACC accumulator groups. Regular dense-ish
// workloads touch every PEG per row (expensive — why Design 2 beats
// Design 3 there); skewed workloads touch few (cheap).
//
// The dedup is sort-based, O(n log n) with no map allocations: (row, peg)
// pairs are sorted with the original index as tiebreak, so the first
// traversal-order occurrence of each pair — whose Service feeds the merge
// width, matching the historical map-based implementation — leads its
// group.
func mergeCycles(elems []Elem, cfg Config) int64 {
	return mergeCyclesScratch(elems, cfg, &schedScratch{})
}

// rowPeg is mergeCycles' sort key: a (row, peg) pair with the traversal
// index as tiebreak and the element's service width along for the merge
// cost.
type rowPeg struct {
	row, peg, idx int
	svc           int64
}

func compareRowPeg(a, b rowPeg) int {
	if a.row != b.row {
		if a.row < b.row {
			return -1
		}
		return 1
	}
	if a.peg != b.peg {
		if a.peg < b.peg {
			return -1
		}
		return 1
	}
	if a.idx < b.idx {
		return -1
	}
	return 1
}

// mergeCyclesScratch is mergeCycles backed by the worker's scratch so the
// hot path allocates nothing. When the design has at most 64 PEGs (every
// Table 1 design does), the dedup is a single pass over an epoch-stamped
// per-row PEG bitmask — O(n) instead of the O(n log n) sort, with the
// same distinct-(row, peg) set and the same max-Service merge width, so
// the result is bit-identical. Wider configs fall back to the sort.
func mergeCyclesScratch(elems []Elem, cfg Config, sc *schedScratch) int64 {
	if len(elems) == 0 {
		return 0
	}
	if cfg.PEG <= 64 {
		rows := sc.rowsHint
		if rows <= 0 {
			maxRow := 0
			for i := range elems {
				if elems[i].Row > maxRow {
					maxRow = elems[i].Row
				}
			}
			rows = maxRow + 1
		}
		if rows > len(sc.mergeStamp) {
			grown := 2 * len(sc.mergeStamp)
			if grown < rows {
				grown = rows
			}
			sc.mergeStamp = make([]uint64, grown)
			sc.mergeMask = make([]uint64, grown)
		}
		sc.mergeEpoch++
		stamp, mask, epoch := sc.mergeStamp, sc.mergeMask, sc.mergeEpoch
		var svc int64 = 1
		var pairs, touched int64 // distinct (row, peg) pairs; distinct rows
		for i := range elems {
			e := &elems[i]
			bit := uint64(1) << (e.Col % cfg.PEG)
			if stamp[e.Row] != epoch {
				stamp[e.Row] = epoch
				mask[e.Row] = bit
				touched++
				pairs++
				if e.Service > svc {
					svc = e.Service
				}
				continue
			}
			if mask[e.Row]&bit == 0 {
				mask[e.Row] |= bit
				pairs++
				if e.Service > svc {
					svc = e.Service
				}
			}
		}
		// Σ over rows of (distinct PEGs − 1) = pairs − touched.
		return ceilDiv64((pairs-touched)*svc, int64(cfg.ACC))
	}
	if cap(sc.mergeKeys) < len(elems) {
		sc.mergeKeys = make([]rowPeg, len(elems))
	}
	keys := sc.mergeKeys[:len(elems)]
	for i, e := range elems {
		keys[i] = rowPeg{row: e.Row, peg: e.Col % cfg.PEG, idx: i, svc: e.Service}
	}
	// The idx tiebreak makes the order total, so the (unstable) sort is
	// deterministic and equal to the historical sort.Slice order.
	slices.SortFunc(keys, compareRowPeg)
	var svc int64 = 1
	var merges int64 // Σ over rows of (distinct PEGs − 1)
	var perRow int64
	prevRow, prevPeg := -1, -1
	for i := range keys {
		k := &keys[i]
		if k.row != prevRow {
			if perRow > 1 {
				merges += perRow - 1
			}
			perRow = 0
			prevRow, prevPeg = k.row, -1
		}
		if k.peg != prevPeg {
			// First traversal-order occurrence of this (row, peg) pair.
			perRow++
			prevPeg = k.peg
			if k.svc > svc {
				svc = k.svc
			}
		}
	}
	if perRow > 1 {
		merges += perRow - 1
	}
	return ceilDiv64(merges*svc, int64(cfg.ACC))
}

// ScheduleOptions configures direct scheduling of a whole matrix, used by
// the Figure 6 toy-timeline experiment and the scheduler tests.
type ScheduleOptions struct {
	PEGs      int
	PEsPerPEG int
	Traversal Traversal
	DepGap    int64
	Window    int
	Trace     bool
	// Service maps an A column to the element's service time; nil means
	// one cycle per element (the toy setting).
	Service func(col int) int64
}

// ScheduleA schedules all of A as a single tile under opt and returns the
// per-PEG schedules.
func ScheduleA(a *sparse.CSR, opt ScheduleOptions) []PEGSchedule {
	if opt.PEGs < 1 {
		opt.PEGs = 1
	}
	if opt.PEsPerPEG < 1 {
		opt.PEsPerPEG = 1
	}
	if opt.DepGap < 1 {
		opt.DepGap = 2
	}
	if opt.Window < 1 {
		opt.Window = 16
	}
	svc := opt.Service
	if svc == nil {
		svc = func(int) int64 { return 1 }
	}
	tiles := []Span{{0, a.Cols}}
	var perTile [][]Elem
	if opt.Traversal == ColWise {
		perTile = binByTileColWise(a.ToCSCPattern(), tiles, svc)
	} else {
		perTile = binByTileRowWise(a, tiles, svc)
	}
	groups := splitByPEG(perTile[0], opt.PEGs, opt.Traversal)
	out := make([]PEGSchedule, opt.PEGs)
	for p, g := range groups {
		out[p] = schedulePEG(g, opt.PEsPerPEG, opt.Traversal, opt.PEGs, opt.DepGap, opt.Window, opt.Trace)
	}
	return out
}

// Makespan reports the overall makespan of a set of PEG schedules (the
// slowest group finishes last).
func Makespan(groups []PEGSchedule) int64 {
	var m int64
	for _, g := range groups {
		if g.Makespan > m {
			m = g.Makespan
		}
	}
	return m
}

// flopCount mirrors spgemm.FlopCount using precomputed B row counts.
func flopCount(a *sparse.CSR, bRowNNZ []int) int64 {
	var total int64
	for _, c := range a.ColIdx {
		total += int64(bRowNNZ[c])
	}
	return total
}

// estimateCOutputs bounds nnz(C) per output row by min(Σ nnz(B rows), N)
// — cheap, exact for dense B, and an upper bound otherwise. The write-back
// cost model uses it so large products pay proportionally for ch_C
// bandwidth.
func estimateCOutputs(a *sparse.CSR, bRowNNZ []int, n int) int64 {
	var total int64
	for r := 0; r < a.Rows; r++ {
		cols, _ := a.Row(r)
		var ub int64
		for _, c := range cols {
			ub += int64(bRowNNZ[c])
		}
		if ub > int64(n) {
			ub = int64(n)
		}
		total += ub
	}
	return total
}
