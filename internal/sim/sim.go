package sim

import (
	"fmt"

	"misam/internal/sparse"
)

// Result is the outcome of simulating one design on one workload.
type Result struct {
	Design DesignID

	// Cycles is the end-to-end cycle count; Seconds converts it with the
	// design's Table 2 clock.
	Cycles  int64
	Seconds float64

	// Breakdown of where cycles went. Per tile the engine charges
	// max(compute, A read, B read) plus broadcast fill and drain, since
	// streaming overlaps I/O with compute; the C write-back is charged
	// once at the end (§3.2.1).
	ComputeCycles   int64
	AReadCycles     int64
	BReadCycles     int64
	BroadcastCycles int64
	CWriteCycles    int64

	// Tiles is the number of B row tiles processed.
	Tiles int
	// Bubbles counts dependency-stall cycles across all PEs and tiles.
	Bubbles int64
	// PEUtilization is busy cycles / (PEs × makespan), aggregated.
	PEUtilization float64
	// Flops is the useful multiply-accumulate count of the product.
	Flops int64
	// COutputs is the (estimated) number of C entries written back.
	COutputs int64
}

// Throughput reports useful GFLOP/s (2 ops per multiply-accumulate).
func (r Result) Throughput() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return 2 * float64(r.Flops) / r.Seconds / 1e9
}

// Simulate runs design cfg on the product A×B and returns the cycle-level
// result. A and B are CSR; B's storage format (dense stream vs 64-bit COO)
// follows cfg.CompressedB.
func Simulate(cfg Config, a, b *sparse.CSR) (Result, error) {
	if a.Cols != b.Rows {
		return Result{}, fmt.Errorf("sim: dimension mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	res := Result{Design: cfg.ID}

	// Per-column service times: processing one A element walks the
	// matching B row through the SIMD lanes (§3.2.1). For compressed B
	// only the stored nonzeros are walked (§3.2.4).
	bRowNNZ := make([]int, b.Rows)
	for r := 0; r < b.Rows; r++ {
		bRowNNZ[r] = b.RowNNZ(r)
	}
	var service func(col int) int64
	if cfg.CompressedB {
		service = func(col int) int64 {
			return ceilDiv64(int64(bRowNNZ[col]), int64(cfg.SIMDWidth))
		}
	} else {
		dense := ceilDiv64(int64(b.Cols), int64(cfg.SIMDWidth))
		service = func(int) int64 { return dense }
	}

	// Tile B's rows; Design 4 packs sparse rows by nnz budget.
	var tiles []Span
	if cfg.CompressedB {
		tiles = SparsityAwareRowTiles(b, cfg.BRAMCapacityNNZ)
	} else {
		tiles = DenseRowTiles(b.Rows, cfg.BRAMRowsPerTile)
	}
	res.Tiles = len(tiles)

	// Bin A's elements by tile in the design's traversal order.
	var perTile [][]Elem
	if cfg.SchedulerA == ColWise {
		perTile = binByTileColWise(a.ToCSC(), tiles, service)
	} else {
		perTile = binByTileRowWise(a, tiles, service)
	}

	// Per-tile B nonzero counts for compressed reads.
	tileNNZ := make([]int64, len(tiles))
	for t, s := range tiles {
		tileNNZ[t] = int64(b.RowPtr[s.Hi] - b.RowPtr[s.Lo])
	}

	var busy, capacity int64
	for t, s := range tiles {
		elems := perTile[t]
		if len(elems) == 0 && tileNNZ[t] == 0 {
			continue // nothing to stream or compute for this tile
		}
		// Read B tile over ChB channels.
		var bRead int64
		if cfg.CompressedB {
			bRead = ceilDiv64(tileNNZ[t], int64(cfg.BCOOElemsPerRead*cfg.ChB))
		} else {
			bRead = ceilDiv64(int64(s.Rows())*int64(b.Cols), int64(cfg.BDenseElemsPerRead*cfg.ChB))
		}
		// Stream A elements for this tile over ChA channels.
		aRead := ceilDiv64(int64(len(elems)), int64(cfg.AElemsPerRead*cfg.ChA))
		// Broadcast fill: B forwards PEG-to-PEG down the chain (§3.2.1).
		bcast := int64(cfg.PEG)

		// Schedule each PEG's share; the tile completes when the slowest
		// PEG does.
		var compute, tileBusy int64
		for _, g := range splitByPEG(elems, cfg.PEG, cfg.SchedulerA) {
			gs := schedulePEG(g, cfg.PEsPerPEG, cfg.SchedulerA, cfg.PEG, cfg.DepGapCycles, cfg.WindowSize, false)
			tileBusy += gs.Busy
			res.Bubbles += gs.Bubbles
			if gs.Makespan > compute {
				compute = gs.Makespan
			}
		}
		// Row-wise designs spread each output row over many PEGs, so the
		// partial vectors must merge across accumulator groups before
		// write-back (see mergeCycles).
		if cfg.SchedulerA == RowWise {
			compute += mergeCycles(elems, cfg)
		}
		// Utilization counts idle lanes against the straggler PEG's
		// makespan — the §3.2.2 "bubbles plus padding" effect.
		busy += tileBusy
		capacity += int64(cfg.PEs()) * compute

		res.ComputeCycles += compute
		res.AReadCycles += aRead
		res.BReadCycles += bRead
		res.BroadcastCycles += bcast
		res.Cycles += max64(compute, max64(aRead, bRead)) + bcast + cfg.DepGapCycles
	}

	// C write-back once the URAM accumulators hold the final tile sums.
	res.Flops = int64(flopCount(a, bRowNNZ))
	res.COutputs = estimateCOutputs(a, bRowNNZ, b.Cols)
	res.CWriteCycles = ceilDiv64(res.COutputs, int64(cfg.CElemsPerWrite*cfg.ChC))
	res.Cycles += res.CWriteCycles

	if capacity > 0 {
		res.PEUtilization = float64(busy) / float64(capacity)
	}
	res.Seconds = float64(res.Cycles) / (cfg.FreqMHz * 1e6)
	return res, nil
}

// SimulateDesign is shorthand for Simulate(GetConfig(id), a, b).
func SimulateDesign(id DesignID, a, b *sparse.CSR) (Result, error) {
	return Simulate(GetConfig(id), a, b)
}

// SimulateAll runs every design on the workload and returns the results
// indexed by DesignID.
func SimulateAll(a, b *sparse.CSR) ([NumDesigns]Result, error) {
	var out [NumDesigns]Result
	for _, id := range AllDesigns {
		r, err := SimulateDesign(id, a, b)
		if err != nil {
			return out, err
		}
		out[id] = r
	}
	return out, nil
}

// BestDesign returns the design with the lowest simulated latency.
func BestDesign(results [NumDesigns]Result) DesignID {
	best := Design1
	for _, id := range AllDesigns {
		if results[id].Seconds < results[best].Seconds {
			best = id
		}
	}
	return best
}

// splitByPEG partitions elements across processing element groups,
// preserving traversal order within each group. Column-wise designs pin
// output rows to PEGs (row % PEGs), matching §3.2.1's partitioning of A
// across PEG FIFOs. Design 3's row-wise scheduling instead pins columns
// (col % PEGs): a single heavy row then spreads over the whole
// accelerator, which is exactly how it "better accommodates irregular
// sparsity patterns" (§3.2.3) — at the price of a cross-PEG merge of
// partial C rows (mergeCycles).
func splitByPEG(elems []Elem, pegs int, traversal Traversal) [][]Elem {
	out := make([][]Elem, pegs)
	for _, e := range elems {
		var p int
		if traversal == RowWise {
			p = e.Col % pegs
		} else {
			p = e.Row % pegs
		}
		out[p] = append(out[p], e)
	}
	return out
}

// mergeCycles charges Design 3's reduction of per-PEG partial C rows:
// each output row touched by k distinct PEGs needs k-1 vector merges of
// Service width, spread over the ACC accumulator groups. Regular dense-ish
// workloads touch every PEG per row (expensive — why Design 2 beats
// Design 3 there); skewed workloads touch few (cheap).
func mergeCycles(elems []Elem, cfg Config) int64 {
	type rowPeg struct{ row, peg int }
	seen := make(map[rowPeg]struct{}, len(elems))
	perRow := make(map[int]int64, 256)
	var svc int64 = 1
	var total int64
	for _, e := range elems {
		key := rowPeg{e.Row, e.Col % cfg.PEG}
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		perRow[e.Row]++
		if e.Service > svc {
			svc = e.Service
		}
	}
	for _, k := range perRow {
		if k > 1 {
			total += (k - 1) * svc
		}
	}
	return ceilDiv64(total, int64(cfg.ACC))
}

// ScheduleOptions configures direct scheduling of a whole matrix, used by
// the Figure 6 toy-timeline experiment and the scheduler tests.
type ScheduleOptions struct {
	PEGs      int
	PEsPerPEG int
	Traversal Traversal
	DepGap    int64
	Window    int
	Trace     bool
	// Service maps an A column to the element's service time; nil means
	// one cycle per element (the toy setting).
	Service func(col int) int64
}

// ScheduleA schedules all of A as a single tile under opt and returns the
// per-PEG schedules.
func ScheduleA(a *sparse.CSR, opt ScheduleOptions) []PEGSchedule {
	if opt.PEGs < 1 {
		opt.PEGs = 1
	}
	if opt.PEsPerPEG < 1 {
		opt.PEsPerPEG = 1
	}
	if opt.DepGap < 1 {
		opt.DepGap = 2
	}
	if opt.Window < 1 {
		opt.Window = 16
	}
	svc := opt.Service
	if svc == nil {
		svc = func(int) int64 { return 1 }
	}
	tiles := []Span{{0, a.Cols}}
	var perTile [][]Elem
	if opt.Traversal == ColWise {
		perTile = binByTileColWise(a.ToCSC(), tiles, svc)
	} else {
		perTile = binByTileRowWise(a, tiles, svc)
	}
	groups := splitByPEG(perTile[0], opt.PEGs, opt.Traversal)
	out := make([]PEGSchedule, opt.PEGs)
	for p, g := range groups {
		out[p] = schedulePEG(g, opt.PEsPerPEG, opt.Traversal, opt.PEGs, opt.DepGap, opt.Window, opt.Trace)
	}
	return out
}

// Makespan reports the overall makespan of a set of PEG schedules (the
// slowest group finishes last).
func Makespan(groups []PEGSchedule) int64 {
	var m int64
	for _, g := range groups {
		if g.Makespan > m {
			m = g.Makespan
		}
	}
	return m
}

// flopCount mirrors spgemm.FlopCount using precomputed B row counts.
func flopCount(a *sparse.CSR, bRowNNZ []int) int64 {
	var total int64
	for _, c := range a.ColIdx {
		total += int64(bRowNNZ[c])
	}
	return total
}

// estimateCOutputs bounds nnz(C) per output row by min(Σ nnz(B rows), N)
// — cheap, exact for dense B, and an upper bound otherwise. The write-back
// cost model uses it so large products pay proportionally for ch_C
// bandwidth.
func estimateCOutputs(a *sparse.CSR, bRowNNZ []int, n int) int64 {
	var total int64
	for r := 0; r < a.Rows; r++ {
		cols, _ := a.Row(r)
		var ub int64
		for _, c := range cols {
			ub += int64(bRowNNZ[c])
		}
		if ub > int64(n) {
			ub = int64(n)
		}
		total += ub
	}
	return total
}

func ceilDiv64(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
