package sim

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"misam/internal/sparse"
)

// TestTileMemoEquivalence is the memoization correctness property: engines
// sharing one explicitly attached TileCache — including runs whose every
// tile is served from another workload's entries — stay bit-identical to
// the memo-off serial reference, across the generator families, every
// pruning mode, and both engine branches.
func TestTileMemoEquivalence(t *testing.T) {
	old := numTileWorkers
	defer func() { numTileWorkers = old }()
	shared := NewTileCache(16 << 20)
	for _, tc := range equivalencePairs(t) {
		serial, err := SimulateAllSerial(tc.a, tc.b)
		if err != nil {
			t.Fatalf("%s: serial: %v", tc.name, err)
		}
		for _, workers := range []int{1, 4} {
			numTileWorkers = func() int { return workers }
			// Two independent workloads of the same pair: the first warms
			// the shared cache, the second re-simulates through it (the
			// verifier's job shape).
			for pass := 0; pass < 2; pass++ {
				w, err := NewWorkload(tc.a, tc.b)
				if err != nil {
					t.Fatal(err)
				}
				w.AttachTileCache(shared)
				exact, err := w.SimulateAllCtx(context.Background())
				if err != nil {
					t.Fatalf("%s (workers=%d, pass %d): %v", tc.name, workers, pass, err)
				}
				if exact != serial {
					t.Errorf("%s (workers=%d, pass %d): memoized SimulateAll diverged:\nserial: %+v\nmemo:   %+v",
						tc.name, workers, pass, serial, exact)
				}
				for _, os := range prunedOptionSets {
					wp, err := NewWorkload(tc.a, tc.b)
					if err != nil {
						t.Fatal(err)
					}
					wp.AttachTileCache(shared)
					got, err := wp.SimulateAllOpts(context.Background(), os.opt)
					if err != nil {
						t.Fatalf("%s/%s (workers=%d, pass %d): %v", tc.name, os.name, workers, pass, err)
					}
					checkPrunedEquivalence(t, tc.name+"/"+os.name+"/memo", serial, got)
				}
			}
		}
		numTileWorkers = old
	}
	if st := shared.Stats(); st.Hits == 0 {
		t.Error("shared tile cache recorded no hits across repeated simulations of identical pairs")
	}
}

// TestTileCacheCrossWorkloadReuse pins the acceptance criterion behind the
// verifier attachment: re-simulating a just-served pair through a fresh
// workload against the same shared cache serves at least half its tile
// lookups from memoized schedules.
func TestTileCacheCrossWorkloadReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(1007))
	a := sparse.Uniform(rng, 800, 800, 0.01)
	b := sparse.DenseRandom(rng, 800, 64)
	shared := NewTileCache(1 << 20)

	serve, err := NewWorkload(a, b)
	if err != nil {
		t.Fatal(err)
	}
	serve.AttachTileCache(shared)
	if _, err := serve.SimulateAllPrunedCtx(context.Background()); err != nil {
		t.Fatal(err)
	}

	before := shared.Stats()
	verify, err := NewWorkload(a, b)
	if err != nil {
		t.Fatal(err)
	}
	verify.AttachTileCache(shared)
	if _, err := verify.SimulateAllPrunedCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	after := shared.Stats()

	hits := after.Hits - before.Hits
	lookups := hits + (after.Misses - before.Misses)
	if lookups == 0 {
		t.Fatal("verify pass performed no tile lookups")
	}
	if rate := float64(hits) / float64(lookups); rate < 0.5 {
		t.Errorf("verifier reuse rate %.2f < 0.5 (%d hits / %d lookups)", rate, hits, lookups)
	}
}

// TestTileCacheHitPathZeroAllocs pins the warm hit path alongside
// TestSimulateAllSteadyStateZeroAllocs: with a shared cache attached and
// every tile already memoized, repeated simulation allocates nothing and
// actually hits.
func TestTileCacheHitPathZeroAllocs(t *testing.T) {
	old := numTileWorkers
	numTileWorkers = func() int { return 1 }
	defer func() { numTileWorkers = old }()

	a, b := steadyPair()
	shared := NewTileCache(4 << 20)
	w, err := NewWorkload(a, b)
	if err != nil {
		t.Fatal(err)
	}
	w.AttachTileCache(shared)
	ctx := context.Background()
	if _, err := w.SimulateAllPrunedCtx(ctx); err != nil {
		t.Fatal(err) // warm: caches, pools, memoized tiles
	}

	before := shared.Stats()
	if avg := testing.AllocsPerRun(20, func() {
		if _, err := w.SimulateAllPrunedCtx(ctx); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("tile-cache hit path: %.1f allocs/op, want 0", avg)
	}
	after := shared.Stats()
	if after.Hits <= before.Hits {
		t.Error("warm pruned runs recorded no tile-cache hits")
	}
	if avg := testing.AllocsPerRun(20, func() {
		if _, err := w.SimulateAllCtx(ctx); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("tile-cache hit path (exact): %.1f allocs/op, want 0", avg)
	}
}

// midSimFloorPairs are the floor-property workloads: the equivalence
// families (mostly single-tile) plus pairs deep enough that the dense and
// compressed tilings both split into several tiles, so the per-tile floors
// are exercised tile by tile.
func midSimFloorPairs(t testing.TB) []struct {
	name string
	a, b *sparse.CSR
} {
	t.Helper()
	pairs := equivalencePairs(t)
	rng := rand.New(rand.NewSource(77001))
	return append(pairs, []struct {
		name string
		a, b *sparse.CSR
	}{
		// B.Rows 9000 > 2×BRAMRowsPerTile → 3 dense tiles; B carries
		// > BRAMCapacityNNZ nonzeros → multiple compressed tiles too.
		{"deep-uniform", sparse.Uniform(rng, 600, 9000, 0.002), sparse.Uniform(rng, 9000, 96, 0.05)},
		{"deep-powerlaw", sparse.PowerLaw(rng, 500, 10000, 15000, 1.6), sparse.Uniform(rng, 10000, 64, 0.07)},
	}...)
}

// TestMidSimFloorsNeverExceedExact is the running-bound validity property
// (the mirror of TestCoarseBoundIsLowerBound at tile granularity): every
// per-tile analytic floor is at most the tile's exact cycle charge, so at
// any point of the tile loop the seeded partial — exact charges for
// finished tiles plus floors for the rest — never exceeds the design's
// true total, whatever suffix of tiles remains.
func TestMidSimFloorsNeverExceedExact(t *testing.T) {
	for _, tc := range midSimFloorPairs(t) {
		w, err := NewWorkload(tc.a, tc.b)
		if err != nil {
			t.Fatal(err)
		}
		w.AttachTileCache(nil) // exact per-tile charges, no memo involved
		for _, id := range AllDesigns {
			cfg := GetConfig(id)
			ce := w.coarseFloors(cfg)
			tiles, tileNNZ := w.tiling(cfg)
			perTile := w.binned(cfg, tiles)
			if len(ce.floors) != len(tiles) {
				t.Fatalf("%s/%v: %d floors for %d tiles", tc.name, id, len(ce.floors), len(tiles))
			}
			sc := w.getSched()
			var exactTotal int64
			multi := 0
			for tl := range tiles {
				o := simulateTile(cfg, tiles[tl], perTile[tl], tileNNZ[tl], w.B.Cols, sc)
				if o.skip {
					if ce.floors[tl] != 0 {
						t.Errorf("%s/%v tile %d: skip tile has floor %d", tc.name, id, tl, ce.floors[tl])
					}
					continue
				}
				multi++
				if ce.floors[tl] > o.cycles {
					t.Errorf("%s/%v tile %d: floor %d exceeds exact tile cycles %d",
						tc.name, id, tl, ce.floors[tl], o.cycles)
				}
				exactTotal += o.cycles
			}
			w.putSched(sc)
			writeback := ceilDiv64(w.COutputs(), int64(cfg.CElemsPerWrite*cfg.ChC))
			if ce.total > exactTotal+writeback {
				t.Errorf("%s/%v: floor total %d exceeds exact total %d",
					tc.name, id, ce.total, exactTotal+writeback)
			}
			if tc.name == "deep-uniform" && multi < 2 {
				t.Errorf("%s/%v: expected a multi-tile workload, got %d live tiles", tc.name, id, multi)
			}
		}
	}
}

// TestTileBoundRaceHammer races the mid-simulation running bound across
// the design fan-out with memoization enabled: several goroutines share
// one Workload AND one TileCache with the tile pool forced on, so — under
// `go test -race` (ci.sh runs this by name) — the seeded partial counter,
// the racing best-so-far bound and the striped cache slots are all
// exercised concurrently while the argmin contract is asserted.
func TestTileBoundRaceHammer(t *testing.T) {
	old := numTileWorkers
	numTileWorkers = func() int { return 4 }
	defer func() { numTileWorkers = old }()

	rng := rand.New(rand.NewSource(31007))
	a := sparse.PowerLaw(rng, 700, 700, 4900, 1.7)
	b := sparse.Uniform(rng, 700, 128, 0.08)
	serial, err := SimulateAllSerial(a, b)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := NewWorkload(a, b)
	if err != nil {
		t.Fatal(err)
	}
	shared.AttachTileCache(NewTileCache(1 << 20))
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		opt := prunedOptionSets[i%len(prunedOptionSets)].opt
		wg.Add(1)
		go func(opt Options) {
			defer wg.Done()
			got, err := shared.SimulateAllOpts(context.Background(), opt)
			if err != nil {
				t.Error(err)
				return
			}
			checkPrunedEquivalence(t, "memo-racing", serial, got)
		}(opt)
	}
	wg.Wait()
}

// tileStreamFromBytes deterministically expands fuzz bytes into an element
// stream (3 bytes per element).
func tileStreamFromBytes(data []byte, rows, cols int) []Elem {
	elems := make([]Elem, 0, len(data)/3)
	for i := 0; i+2 < len(data); i += 3 {
		elems = append(elems, Elem{
			Row:     int(data[i]) % rows,
			Col:     int(data[i+1]) % cols,
			Service: int64(data[i+2]%9) + 1,
		})
	}
	return elems
}

// FuzzTileStreamHash hunts for tile-key collisions — a collision means a
// wrong schedule is reused and silently corrupts a Result. The fuzzer
// builds two streams from independent byte strings and asserts: equal
// schedule-relevant content ⇒ equal keys (determinism, including the
// column-wise projection that ignores Col), and equal keys ⇒ equal
// content (no collision found).
func FuzzTileStreamHash(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, []byte{1, 2, 3, 4, 5, 6}, uint8(0))
	f.Add([]byte{1, 2, 3}, []byte{1, 2, 4}, uint8(1))
	f.Add([]byte{7, 7, 7, 8, 8, 8}, []byte{}, uint8(2))
	f.Add([]byte{0, 0, 0}, []byte{0, 1, 0}, uint8(3))
	f.Fuzz(func(t *testing.T, d1, d2 []byte, saltSel uint8) {
		salts := []uint64{tileSalt(GetConfig(Design1)), tileSalt(GetConfig(Design2)),
			tileSalt(GetConfig(Design3)), tileSalt(GetConfig(Design4))}
		salt := salts[int(saltSel)%len(salts)]
		e1 := tileStreamFromBytes(d1, 64, 64)
		e2 := tileStreamFromBytes(d2, 64, 64)
		for _, rowWise := range []bool{false, true} {
			h1, l1 := hashTileElems(e1, rowWise, salt)
			h2, l2 := hashTileElems(e2, rowWise, salt)
			if h1 == 0 && l1 == 0 {
				t.Fatal("hash produced the empty-slot sentinel")
			}
			same := len(e1) == len(e2)
			if same {
				for i := range e1 {
					if e1[i].Row != e2[i].Row || e1[i].Service != e2[i].Service ||
						(rowWise && e1[i].Col != e2[i].Col) {
						same = false
						break
					}
				}
			}
			if same && (h1 != h2 || l1 != l2) {
				t.Errorf("rowWise=%v: equal schedule-relevant streams hashed differently", rowWise)
			}
			if !same && h1 == h2 && l1 == l2 {
				t.Errorf("rowWise=%v: tile-stream hash collision:\n%v\n%v", rowWise, e1, e2)
			}
		}
		// Distinct design salts must separate identical streams.
		if len(e1) > 0 {
			h1, l1 := hashTileElems(e1, false, salts[0])
			h2, l2 := hashTileElems(e1, false, salts[1])
			if h1 == h2 && l1 == l2 {
				t.Error("identical stream under distinct config salts produced one key")
			}
		}
	})
}

// TestScheduleWindowedMatchesReference is the flattened-scheduler
// equivalence property: the non-trace path (optimistic prefix + dense
// ready-mask window) must produce the same Busy/Bubbles/Makespan as the
// general windowed scan, which still backs trace mode — across random
// streams, dependency gaps, and window widths on both sides of
// flatWindowMax.
func TestScheduleWindowedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(55331))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(400)
		rows := 1 + rng.Intn(40)
		elems := make([]Elem, n)
		for i := range elems {
			elems[i] = Elem{Row: rng.Intn(rows), Col: rng.Intn(64), Service: int64(rng.Intn(5))}
		}
		depGap := int64(rng.Intn(6))
		windows := []int{1, 2, 3, 16, flatWindowMax, flatWindowMax + 9}
		window := windows[rng.Intn(len(windows))]
		ref := schedulePE(elems, depGap, window, true)
		got := schedulePE(elems, depGap, window, false)
		if got.Busy != ref.Busy || got.Bubbles != ref.Bubbles || got.Makespan != ref.Makespan {
			t.Fatalf("trial %d (n=%d rows=%d gap=%d window=%d): flattened diverged:\nref: busy=%d bubbles=%d makespan=%d\ngot: busy=%d bubbles=%d makespan=%d",
				trial, n, rows, depGap, window,
				ref.Busy, ref.Bubbles, ref.Makespan, got.Busy, got.Bubbles, got.Makespan)
		}
	}
}
