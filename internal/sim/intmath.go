package sim

import "fmt"

// Integer helpers shared by the cycle models. Both sim.go and design.go
// grew private copies of these over time; they live together here so the
// panic contract below is stated (and tested) exactly once.

// max64 returns the larger of a and b.
func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ceilDiv64 returns ⌈a/b⌉. The divisor comes from Config fields (channel
// counts, SIMD width, coalescing factors), which Validate guarantees are
// positive; a nonpositive divisor therefore indicates a bug upstream and
// panics rather than — as an earlier revision did — silently returning a
// and corrupting cycle counts.
func ceilDiv64(a, b int64) int64 {
	if b <= 0 {
		panic(fmt.Sprintf("sim: ceilDiv64 divisor %d is not positive (invalid Config?)", b))
	}
	return (a + b - 1) / b
}
