package sim

import "misam/internal/sparse"

// Span is a half-open row interval [Lo, Hi) of matrix B.
type Span struct{ Lo, Hi int }

// Rows reports the span height.
func (s Span) Rows() int { return s.Hi - s.Lo }

// DenseRowTiles splits rows into fixed-height tiles (the §3.2.1 scheme:
// "row tiling is based on BRAM capacity (4096 entries)").
func DenseRowTiles(rows, tileRows int) []Span {
	if rows <= 0 {
		return nil
	}
	if tileRows < 1 {
		tileRows = 1
	}
	tiles := make([]Span, 0, (rows+tileRows-1)/tileRows)
	for lo := 0; lo < rows; lo += tileRows {
		hi := lo + tileRows
		if hi > rows {
			hi = rows
		}
		tiles = append(tiles, Span{lo, hi})
	}
	return tiles
}

// SparsityAwareRowTiles implements Design 4's packing analysis (§3.2.4):
// BRAM stores coalesced sparse rows, so tiles accumulate whole rows of B
// until capacityNNZ nonzeros are packed, maximizing nonzeros per tile
// while minimizing wasted space. A row with more nonzeros than the
// capacity gets a tile of its own (streamed in chunks by the simulator).
func SparsityAwareRowTiles(b *sparse.CSR, capacityNNZ int) []Span {
	if b.Rows == 0 {
		return nil
	}
	if capacityNNZ < 1 {
		capacityNNZ = 1
	}
	var tiles []Span
	lo, acc := 0, 0
	for r := 0; r < b.Rows; r++ {
		n := b.RowNNZ(r)
		if acc > 0 && acc+n > capacityNNZ {
			tiles = append(tiles, Span{lo, r})
			lo, acc = r, 0
		}
		acc += n
	}
	tiles = append(tiles, Span{lo, b.Rows})
	return tiles
}

// tileIndex builds a column→tile lookup so a single pass over A can bin
// its nonzeros by the B row tile they touch ("each tile of A must access
// a specific set of B rows", §3.2.4).
func tileIndex(tiles []Span, cols int) []int {
	idx := make([]int, cols)
	for t, s := range tiles {
		for c := s.Lo; c < s.Hi && c < cols; c++ {
			idx[c] = t
		}
	}
	return idx
}

// binByTileColWise walks A column-major (via its CSC form) and groups
// elements by B row tile, preserving column-major order within each tile
// — the traversal order of Designs 1, 2 and 4.
// A counting pass sizes each bin exactly and the bins share one backing
// array, so the fill pass never reallocates or copies.
func binByTileColWise(aCSC *sparse.CSC, tiles []Span, service func(col int) int64) [][]Elem {
	out := make([][]Elem, len(tiles))
	counts := make([]int, len(tiles))
	total := 0
	for t, s := range tiles {
		for c := s.Lo; c < s.Hi && c < aCSC.Cols; c++ {
			rows, _ := aCSC.Col(c)
			counts[t] += len(rows)
		}
		total += counts[t]
	}
	buf := make([]Elem, total)
	off := 0
	for t, s := range tiles {
		dst := buf[off : off+counts[t]]
		off += counts[t]
		k := 0
		for c := s.Lo; c < s.Hi && c < aCSC.Cols; c++ {
			rows, _ := aCSC.Col(c)
			if len(rows) == 0 {
				continue
			}
			svc := service(c)
			for _, r := range rows {
				dst[k] = Elem{Row: r, Col: c, Service: svc}
				k++
			}
		}
		out[t] = dst
	}
	return out
}

// binByTileRowWise walks A row-major (CSR) and groups elements by B row
// tile, preserving row-major order within each tile — Design 3's order.
// Like binByTileColWise it counts first and fills one shared backing
// array, avoiding append regrowth on every bin.
func binByTileRowWise(a *sparse.CSR, tiles []Span, service func(col int) int64) [][]Elem {
	out := make([][]Elem, len(tiles))
	idx := tileIndex(tiles, a.Cols)
	counts := make([]int, len(tiles))
	total := 0
	for r := 0; r < a.Rows; r++ {
		cols, _ := a.Row(r)
		for _, c := range cols {
			counts[idx[c]]++
		}
		total += len(cols)
	}
	buf := make([]Elem, total)
	pos := make([]int, len(tiles))
	off := 0
	for t := range tiles {
		out[t] = buf[off : off+counts[t]]
		off += counts[t]
	}
	for r := 0; r < a.Rows; r++ {
		cols, _ := a.Row(r)
		for _, c := range cols {
			t := idx[c]
			out[t][pos[t]] = Elem{Row: r, Col: c, Service: service(c)}
			pos[t]++
		}
	}
	return out
}

// tileOf locates the tile containing column c by binary search.
func tileOf(tiles []Span, c int) int {
	lo, hi := 0, len(tiles)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if tiles[mid].Hi <= c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
