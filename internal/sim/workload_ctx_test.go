package sim

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"misam/internal/baseline"
	"misam/internal/sparse"
)

// countdownCtx is a context whose Err() flips to context.Canceled after a
// fixed number of polls — a deterministic way to cancel mid-tile-pool
// regardless of scheduling.
type countdownCtx struct {
	context.Context
	remaining int64
}

func (c *countdownCtx) Err() error {
	if atomic.AddInt64(&c.remaining, -1) < 0 {
		return context.Canceled
	}
	return nil
}

func (c *countdownCtx) Done() <-chan struct{} { return nil }

// bigTilePair returns operands whose dense tiling yields well over
// minParallelTiles tiles, so the bounded worker pool actually engages.
func bigTilePair(t *testing.T) (*sparse.CSR, *sparse.CSR) {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	a := sparse.Uniform(rng, 400, 3000, 0.01)
	b := sparse.Uniform(rng, 3000, 200, 0.02)
	return a, b
}

// TestSimulateCtxCancelledBeforeStart: an already-cancelled context
// returns immediately with its error and no result.
func TestSimulateCtxCancelledBeforeStart(t *testing.T) {
	a, b := bigTilePair(t)
	w, err := NewWorkload(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.SimulateCtx(ctx, GetConfig(Design1)); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := w.SimulateAllCtx(ctx); err != context.Canceled {
		t.Fatalf("SimulateAllCtx err = %v, want context.Canceled", err)
	}
}

// TestSimulateCtxAbortsMidTilePool forces the parallel tile pool on and
// cancels after a handful of polls: the simulation must stop early and
// surface context.Canceled instead of a bogus Result.
func TestSimulateCtxAbortsMidTilePool(t *testing.T) {
	old := numTileWorkers
	numTileWorkers = func() int { return 4 }
	defer func() { numTileWorkers = old }()

	a, b := bigTilePair(t)
	for _, id := range AllDesigns {
		cfg := GetConfig(id)
		// Shrink tiles so every design sees a long tile list.
		cfg.BRAMRowsPerTile = 64
		cfg.BRAMCapacityNNZ = 512

		w, err := NewWorkload(a, b)
		if err != nil {
			t.Fatal(err)
		}
		full, err := w.simulate(nil, cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		if full.Tiles < minParallelTiles {
			t.Fatalf("%v: only %d tiles; pool not exercised", id, full.Tiles)
		}
		// Allow the initial poll plus a few per-worker claims, then cancel:
		// the pool stops mid-list.
		ctx := &countdownCtx{Context: context.Background(), remaining: 6}
		if _, err := w.simulate(ctx, cfg, true); err != context.Canceled {
			t.Errorf("%v: err = %v, want context.Canceled mid-pool", id, err)
		}
	}
}

// TestSimulateCtxDeadline: a real expired deadline surfaces
// context.DeadlineExceeded through the same path.
func TestSimulateCtxDeadline(t *testing.T) {
	a, b := bigTilePair(t)
	w, err := NewWorkload(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := w.SimulateDesignCtx(ctx, Design1); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestSimulateCtxNilAndBackground: nil and Background contexts keep the
// historical behavior — full simulation, bit-identical to Simulate.
func TestSimulateCtxNilAndBackground(t *testing.T) {
	a, b := bigTilePair(t)
	w, err := NewWorkload(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := w.Simulate(GetConfig(Design2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.SimulateCtx(context.Background(), GetConfig(Design2))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("SimulateCtx(Background) diverged from Simulate")
	}
	got2, err := w.SimulateCtx(nil, GetConfig(Design2))
	if err != nil {
		t.Fatal(err)
	}
	if got2 != want {
		t.Error("SimulateCtx(nil) diverged from Simulate")
	}
}

// TestBaselineStatsMatchesCollect pins the serving-path optimization: the
// workload-cached stats must be value-identical to baseline.Collect.
func TestBaselineStatsMatchesCollect(t *testing.T) {
	for _, tc := range equivalencePairs(t) {
		w, err := NewWorkload(tc.a, tc.b)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := w.BaselineStats()
		want := baseline.Collect(tc.a, tc.b)
		if got != want {
			t.Errorf("%s: BaselineStats diverged:\ncached:  %+v\ndirect:  %+v", tc.name, got, want)
		}
	}
}
