package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"misam/internal/sparse"
	"misam/internal/spgemm"
)

func TestConfigsMatchTable1(t *testing.T) {
	cfgs := Configs()
	cases := []struct {
		id            DesignID
		chA, chB, chC int
		peg           int
		trav          Traversal
		compressed    bool
	}{
		{Design1, 8, 4, 8, 16, ColWise, false},
		{Design2, 12, 4, 12, 24, ColWise, false},
		{Design3, 12, 4, 12, 24, RowWise, false},
		{Design4, 8, 8, 4, 16, ColWise, true},
	}
	for _, c := range cases {
		cfg := cfgs[c.id]
		if cfg.ChA != c.chA || cfg.ChB != c.chB || cfg.ChC != c.chC {
			t.Errorf("%v channels = %d/%d/%d, want %d/%d/%d", c.id, cfg.ChA, cfg.ChB, cfg.ChC, c.chA, c.chB, c.chC)
		}
		if cfg.PEG != c.peg || cfg.ACC != c.peg {
			t.Errorf("%v PEG/ACC = %d/%d, want %d", c.id, cfg.PEG, cfg.ACC, c.peg)
		}
		if cfg.SchedulerA != c.trav {
			t.Errorf("%v traversal = %v, want %v", c.id, cfg.SchedulerA, c.trav)
		}
		if cfg.CompressedB != c.compressed {
			t.Errorf("%v compressedB = %v", c.id, cfg.CompressedB)
		}
		if cfg.PEs() != c.peg*4 {
			t.Errorf("%v PEs = %d, want %d", c.id, cfg.PEs(), c.peg*4)
		}
	}
}

func TestSharedBitstream(t *testing.T) {
	if !SharedBitstream(Design2, Design3) || !SharedBitstream(Design3, Design2) {
		t.Error("Designs 2 and 3 must share a bitstream (§4)")
	}
	if SharedBitstream(Design1, Design2) || SharedBitstream(Design1, Design4) {
		t.Error("distinct designs reported as shared")
	}
	if !SharedBitstream(Design1, Design1) {
		t.Error("a design trivially shares its own bitstream")
	}
}

func TestSimulateDimensionMismatch(t *testing.T) {
	a := sparse.Identity(4)
	b := sparse.Identity(5)
	if _, err := SimulateDesign(Design1, a, b); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestSimulateBasicSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := sparse.Uniform(rng, 300, 300, 0.02)
	b := sparse.DenseRandom(rng, 300, 64)
	for _, id := range AllDesigns {
		r, err := SimulateDesign(id, a, b)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		if r.Cycles <= 0 || r.Seconds <= 0 {
			t.Errorf("%v: nonpositive latency %d cycles", id, r.Cycles)
		}
		if r.PEUtilization < 0 || r.PEUtilization > 1 {
			t.Errorf("%v: utilization %v outside [0,1]", id, r.PEUtilization)
		}
		if r.Flops != int64(spgemm.FlopCount(a, b)) {
			t.Errorf("%v: flops %d, want %d", id, r.Flops, spgemm.FlopCount(a, b))
		}
		if r.Throughput() <= 0 {
			t.Errorf("%v: nonpositive throughput", id)
		}
	}
}

func TestSimulateEmptyProduct(t *testing.T) {
	a := sparse.NewCOO(10, 10).ToCSR()
	b := sparse.NewCOO(10, 10).ToCSR()
	r, err := SimulateDesign(Design4, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.ComputeCycles != 0 || r.Flops != 0 {
		t.Errorf("empty product should do no compute: %+v", r)
	}
}

// TestDesign1BeatsDesign2OnTinySparse reproduces the §3.2.2 claim:
// "Design 1 is more load-balanced and efficient than Design 2 ... when
// operating on highly sparse matrices" because D2's extra PEs go unfilled.
func TestDesign1BeatsDesign2OnTinySparse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Small, uniformly very sparse A with a narrow B: each row provides
	// insufficient work for Design 2's larger PE set, so its schedule
	// cannot fill dependency bubbles and pads with zeros (§3.2.2).
	a := sparse.Uniform(rng, 300, 300, 0.004)
	b := sparse.DenseRandom(rng, 300, 8)
	r1, err := SimulateDesign(Design1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SimulateDesign(Design2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r1.PEUtilization <= r2.PEUtilization {
		t.Errorf("D1 utilization %.3f not above D2 %.3f on sparse input",
			r1.PEUtilization, r2.PEUtilization)
	}
	if r1.Seconds >= r2.Seconds {
		t.Errorf("D1 (%.8fs) not faster than D2 (%.8fs) on tiny sparse input",
			r1.Seconds, r2.Seconds)
	}
}

// TestDesign2BeatsDesign1OnLargeDenser reproduces §3.2.2: for larger,
// denser matrices D2's extra memory channels and PEs win.
func TestDesign2BeatsDesign1OnLargeDenser(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := sparse.Uniform(rng, 4000, 4000, 0.02)
	b := sparse.DenseRandom(rng, 4000, 128)
	r1, err := SimulateDesign(Design1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SimulateDesign(Design2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Seconds >= r1.Seconds {
		t.Errorf("D2 (%.6fs) not faster than D1 (%.6fs) on large denser input",
			r2.Seconds, r1.Seconds)
	}
}

// TestDesign3WinsOnImbalance reproduces §3.2.3: row-wise traversal with
// column-modulo assignment spreads a heavy row across PEs, beating the
// column-wise designs when A_load_imbalance_row is high.
func TestDesign3WinsOnImbalance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := sparse.Imbalanced(rng, 3000, 3000, 30000, 0.01, 0.9)
	b := sparse.DenseRandom(rng, 3000, 32)
	r2, err := SimulateDesign(Design2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := SimulateDesign(Design3, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r3.ComputeCycles >= r2.ComputeCycles {
		t.Errorf("D3 compute %d not below D2 %d on imbalanced input",
			r3.ComputeCycles, r2.ComputeCycles)
	}
}

// TestDesign4WinsOnHighlySparseB reproduces §3.2.4: compressed B halves
// read bandwidth per element, "making compression worthwhile only when
// B's sparsity is high".
func TestDesign4WinsOnHighlySparseB(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := sparse.Uniform(rng, 4000, 4000, 0.002)
	bSparse := sparse.Uniform(rng, 4000, 4000, 0.0005)
	r1, err := SimulateDesign(Design1, a, bSparse)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := SimulateDesign(Design4, a, bSparse)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Seconds >= r1.Seconds {
		t.Errorf("D4 (%.6fs) not faster than D1 (%.6fs) on HS×HS", r4.Seconds, r1.Seconds)
	}

	// And the converse: for a dense B, the uncompressed designs win.
	bDense := sparse.DenseRandom(rng, 1000, 256)
	aSmall := sparse.Uniform(rng, 1000, 1000, 0.01)
	d1, err := SimulateDesign(Design1, aSmall, bDense)
	if err != nil {
		t.Fatal(err)
	}
	d4, err := SimulateDesign(Design4, aSmall, bDense)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Seconds >= d4.Seconds {
		t.Errorf("D1 (%.6fs) not faster than D4 (%.6fs) on dense B", d1.Seconds, d4.Seconds)
	}
}

func TestSimulateAllAndBestDesign(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := sparse.Uniform(rng, 500, 500, 0.01)
	b := sparse.DenseRandom(rng, 500, 64)
	results, err := SimulateAll(a, b)
	if err != nil {
		t.Fatal(err)
	}
	best := BestDesign(results)
	for _, id := range AllDesigns {
		if results[id].Seconds < results[best].Seconds {
			t.Errorf("BestDesign picked %v but %v is faster", best, id)
		}
	}
}

func TestPropertyCyclesCoverBreakdown(t *testing.T) {
	f := func(seed int64, dIn uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		id := AllDesigns[int(dIn)%len(AllDesigns)]
		a := sparse.Uniform(rng, 200, 200, 0.05)
		b := sparse.Uniform(rng, 200, 50, 0.3)
		r, err := SimulateDesign(id, a, b)
		if err != nil {
			return false
		}
		// Total must cover compute and write-back, and at least the
		// largest single component.
		if r.Cycles < r.ComputeCycles+r.CWriteCycles {
			return false
		}
		if r.Cycles < r.BReadCycles || r.Cycles < r.AReadCycles {
			return false
		}
		return r.Bubbles >= 0 && r.Tiles >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGetConfigPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GetConfig accepted invalid id")
		}
	}()
	GetConfig(DesignID(17))
}

func TestTraversalAndDesignStrings(t *testing.T) {
	if ColWise.String() != "Col" || RowWise.String() != "Row" {
		t.Error("traversal names should match Table 1")
	}
	if Design1.String() != "Design 1" || Design4.String() != "Design 4" {
		t.Error("design names wrong")
	}
	if DesignID(9).String() != "DesignID(9)" {
		t.Error("invalid design formatting wrong")
	}
}
