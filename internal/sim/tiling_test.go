package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"misam/internal/sparse"
)

func TestDenseRowTiles(t *testing.T) {
	tiles := DenseRowTiles(10000, 4096)
	if len(tiles) != 3 {
		t.Fatalf("got %d tiles, want 3", len(tiles))
	}
	if tiles[0] != (Span{0, 4096}) || tiles[2] != (Span{8192, 10000}) {
		t.Errorf("tile bounds wrong: %v", tiles)
	}
	if DenseRowTiles(0, 4096) != nil {
		t.Error("zero rows should produce no tiles")
	}
	if got := DenseRowTiles(5, 0); len(got) != 5 {
		t.Errorf("tileRows clamp failed: %v", got)
	}
}

func TestSparsityAwareRowTilesRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := sparse.Uniform(rng, 2000, 2000, 0.01)
	cap := 500
	tiles := SparsityAwareRowTiles(b, cap)
	prev := 0
	for _, s := range tiles {
		if s.Lo != prev {
			t.Fatalf("tiles not contiguous at %v", s)
		}
		prev = s.Hi
		nnz := b.RowPtr[s.Hi] - b.RowPtr[s.Lo]
		// Budget may only be exceeded by single-row tiles.
		if nnz > cap && s.Rows() > 1 {
			t.Errorf("tile %v holds %d nnz over budget %d", s, nnz, cap)
		}
	}
	if prev != b.Rows {
		t.Fatalf("tiles cover %d rows, want %d", prev, b.Rows)
	}
}

func TestSparsityAwarePacksMoreRowsWhenSparser(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sparseB := sparse.Uniform(rng, 4000, 4000, 0.001)
	denserB := sparse.Uniform(rng, 4000, 4000, 0.01)
	ts := SparsityAwareRowTiles(sparseB, 1000)
	td := SparsityAwareRowTiles(denserB, 1000)
	if len(ts) >= len(td) {
		t.Errorf("sparser B should need fewer tiles: %d vs %d", len(ts), len(td))
	}
}

func TestTileOf(t *testing.T) {
	tiles := []Span{{0, 10}, {10, 20}, {20, 25}}
	cases := map[int]int{0: 0, 9: 0, 10: 1, 19: 1, 20: 2, 24: 2}
	for c, want := range cases {
		if got := tileOf(tiles, c); got != want {
			t.Errorf("tileOf(%d) = %d, want %d", c, got, want)
		}
	}
}

func TestPropertyBinningPreservesElements(t *testing.T) {
	f := func(seed int64, tileIn uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := sparse.Uniform(rng, 60, 80, 0.1)
		tileRows := int(tileIn)%30 + 1
		tiles := DenseRowTiles(80, tileRows)
		svc := func(int) int64 { return 1 }
		for _, bins := range [][][]Elem{
			binByTileColWise(a.ToCSC(), tiles, svc),
			binByTileRowWise(a, tiles, svc),
		} {
			total := 0
			for ti, es := range bins {
				total += len(es)
				for _, e := range es {
					if e.Col < tiles[ti].Lo || e.Col >= tiles[ti].Hi {
						return false
					}
				}
			}
			if total != a.NNZ() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBinOrdering(t *testing.T) {
	// Column-wise bins must be column-major; row-wise bins row-major.
	rng := rand.New(rand.NewSource(3))
	a := sparse.Uniform(rng, 30, 30, 0.2)
	tiles := []Span{{0, 30}}
	svc := func(int) int64 { return 1 }
	colBins := binByTileColWise(a.ToCSC(), tiles, svc)[0]
	for i := 1; i < len(colBins); i++ {
		p, q := colBins[i-1], colBins[i]
		if q.Col < p.Col || (q.Col == p.Col && q.Row < p.Row) {
			t.Fatal("column-wise binning out of order")
		}
	}
	rowBins := binByTileRowWise(a, tiles, svc)[0]
	for i := 1; i < len(rowBins); i++ {
		p, q := rowBins[i-1], rowBins[i]
		if q.Row < p.Row || (q.Row == p.Row && q.Col < p.Col) {
			t.Fatal("row-wise binning out of order")
		}
	}
}
