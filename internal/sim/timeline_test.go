package sim

import (
	"strings"
	"testing"

	"misam/internal/sparse"
)

func traceToy(t *testing.T, trav Traversal) []PEGSchedule {
	t.Helper()
	m := sparse.NewCOO(4, 4)
	m.Append(0, 0, 1)
	m.Append(0, 2, 1)
	m.Append(1, 1, 1)
	m.Append(2, 3, 1)
	m.Normalize()
	return ScheduleA(m.ToCSR(), ScheduleOptions{
		PEGs: 1, PEsPerPEG: 2, Traversal: trav, DepGap: 2, Window: 8, Trace: true,
	})
}

func TestRenderTimelineShowsIssues(t *testing.T) {
	out := RenderTimeline(traceToy(t, ColWise), 40)
	if !strings.Contains(out, "PEG0.PE0") || !strings.Contains(out, "PEG0.PE1") {
		t.Fatalf("missing PE rows:\n%s", out)
	}
	// Output rows 0, 1, 2 must all appear as labels.
	for _, label := range []string{"0", "1", "2"} {
		if !strings.Contains(out, label) {
			t.Errorf("timeline missing row label %q:\n%s", label, out)
		}
	}
}

func TestRenderTimelineTruncates(t *testing.T) {
	m := sparse.NewCOO(1, 30)
	for c := 0; c < 30; c++ {
		m.Append(0, c, 1)
	}
	m.Normalize()
	groups := ScheduleA(m.ToCSR(), ScheduleOptions{
		PEGs: 1, PEsPerPEG: 1, Traversal: ColWise, DepGap: 2, Window: 4, Trace: true,
	})
	out := RenderTimeline(groups, 10)
	if !strings.Contains(out, "truncated") {
		t.Errorf("expected truncation notice:\n%s", out)
	}
}

func TestRenderTimelineUntracedSummary(t *testing.T) {
	groups := traceToy(t, ColWise)
	// Strip the traces to exercise the summary path.
	for p := range groups {
		for pe := range groups[p].PEs {
			groups[p].PEs[pe].Issues = nil
		}
	}
	out := RenderTimeline(groups, 40)
	if !strings.Contains(out, "untraced") {
		t.Errorf("expected untraced summary:\n%s", out)
	}
}

func TestRenderTimelineServiceDashes(t *testing.T) {
	groups := []PEGSchedule{{
		Makespan: 4,
		PEs: []PESchedule{{
			Makespan: 4,
			Busy:     4,
			Issues:   []Issue{{Cycle: 0, Elem: Elem{Row: 5, Col: 0, Service: 4}}},
		}},
	}}
	out := RenderTimeline(groups, 40)
	if !strings.Contains(out, "5---") {
		t.Errorf("service continuation not rendered:\n%s", out)
	}
}

func TestRowLabelCycles(t *testing.T) {
	if rowLabel(0) != '0' || rowLabel(10) != 'a' || rowLabel(36) != '0' {
		t.Error("row labels wrong")
	}
}
