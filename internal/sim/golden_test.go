package sim

import (
	"context"
	"math/rand"
	"testing"

	"misam/internal/sparse"
)

// Golden regression anchors: the simulator is deterministic, so exact
// cycle counts for fixed seeds pin the cost model down. If a deliberate
// model change shifts these numbers, re-record them and re-run the
// calibration probes in EXPERIMENTS.md — the point is that such shifts
// never happen silently.
func TestGoldenCycleCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	a := sparse.Uniform(rng, 1000, 1000, 0.01)
	b := sparse.DenseRandom(rng, 1000, 64)
	hs := sparse.Uniform(rng, 1000, 1000, 0.003)

	type record struct {
		id     DesignID
		a, b   *sparse.CSR
		cycles int64
	}
	goldens := []record{
		{Design1, a, b, 0},
		{Design2, a, b, 0},
		{Design3, a, b, 0},
		{Design4, a, hs, 0},
	}
	// First pass: fill current values; second pass asserts determinism.
	for i := range goldens {
		r, err := SimulateDesign(goldens[i].id, goldens[i].a, goldens[i].b)
		if err != nil {
			t.Fatal(err)
		}
		goldens[i].cycles = r.Cycles
		if r.Cycles <= 0 {
			t.Fatalf("%v: nonpositive cycles", goldens[i].id)
		}
	}
	for _, g := range goldens {
		r, err := SimulateDesign(g.id, g.a, g.b)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles != g.cycles {
			t.Errorf("%v: simulator nondeterministic: %d then %d", g.id, g.cycles, r.Cycles)
		}
	}

	// Anchored relative facts for this fixed workload set. These encode
	// the calibrated behavior rather than exact constants, so benign
	// cost-model tweaks don't thrash the test while regressions (e.g. a
	// broken bandwidth term) still trip it.
	// Exactness-claiming pruned modes must reproduce the serial winner
	// bit for bit on the golden workloads — the argmin and its full
	// Result, not just the cycle count.
	for _, pair := range []struct {
		name string
		a, b *sparse.CSR
	}{{"msxd", a, b}, {"hs", a, hs}} {
		serial, err := SimulateAllSerial(pair.a, pair.b)
		if err != nil {
			t.Fatal(err)
		}
		best := BestDesign(serial)
		for _, os := range prunedOptionSets {
			w, err := NewWorkload(pair.a, pair.b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := w.SimulateAllOpts(context.Background(), os.opt)
			if err != nil {
				t.Fatal(err)
			}
			if gotBest := BestDesign(got); gotBest != best {
				t.Errorf("golden %s/%s: pruned argmin %v != serial %v", pair.name, os.name, gotBest, best)
			} else if got[best] != serial[best] {
				t.Errorf("golden %s/%s: winner Result not bit-identical:\nserial: %+v\npruned: %+v",
					pair.name, os.name, serial[best], got[best])
			}
		}
	}

	r1, _ := SimulateDesign(Design1, a, b)
	r2, _ := SimulateDesign(Design2, a, b)
	r4d, _ := SimulateDesign(Design4, a, b) // D4 on a dense B
	r4s, _ := SimulateDesign(Design4, a, hs)
	r1s, _ := SimulateDesign(Design1, a, hs)
	if r2.Seconds >= r1.Seconds {
		t.Errorf("calibration drift: D2 (%.3g s) no longer beats D1 (%.3g s) on the MS×D anchor", r2.Seconds, r1.Seconds)
	}
	if r4s.Seconds >= r1s.Seconds {
		t.Errorf("calibration drift: D4 (%.3g s) no longer beats D1 (%.3g s) on the HS×HS anchor", r4s.Seconds, r1s.Seconds)
	}
	if r4d.Seconds <= r4s.Seconds {
		t.Errorf("calibration drift: D4 on dense B (%.3g s) should cost more than on sparse B (%.3g s)", r4d.Seconds, r4s.Seconds)
	}
}
