package sim

import (
	"testing"
)

// FuzzSchedulePE hardens the scheduler: arbitrary element queues must
// always produce a complete, dependency-respecting schedule.
func FuzzSchedulePE(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, []byte{1, 1, 1, 1}, int64(2), 4)
	f.Add([]byte{5, 5, 5}, []byte{1, 2, 3}, int64(4), 1)
	f.Add([]byte{}, []byte{}, int64(2), 16)
	f.Fuzz(func(t *testing.T, rows, services []byte, depGap int64, window int) {
		if depGap < 1 || depGap > 16 || window < -2 || window > 64 {
			return
		}
		n := len(rows)
		if len(services) < n {
			n = len(services)
		}
		if n > 200 {
			n = 200
		}
		elems := make([]Elem, n)
		for i := 0; i < n; i++ {
			elems[i] = Elem{Row: int(rows[i]) % 16, Col: i, Service: int64(services[i]%5) + 1}
		}
		s := schedulePE(elems, depGap, window, true)
		if len(s.Issues) != n {
			t.Fatalf("scheduled %d of %d elements", len(s.Issues), n)
		}
		lastEnd := int64(0)
		lastRow := map[int]int64{}
		var busy int64
		for _, is := range s.Issues {
			if is.Cycle < lastEnd {
				t.Fatalf("overlapping issues at %d (prev end %d)", is.Cycle, lastEnd)
			}
			svc := is.Elem.Service
			lastEnd = is.Cycle + svc
			if prev, ok := lastRow[is.Elem.Row]; ok {
				// Slot-domain dependency: the gap is depGap times the
				// previous element's service.
				if is.Cycle < prev {
					t.Fatalf("row %d issued out of dependency order", is.Elem.Row)
				}
			}
			lastRow[is.Elem.Row] = is.Cycle
			busy += svc
		}
		if s.Busy != busy {
			t.Fatalf("busy accounting %d != %d", s.Busy, busy)
		}
		if n > 0 && s.Makespan != lastEnd {
			t.Fatalf("makespan %d != last completion %d", s.Makespan, lastEnd)
		}
	})
}

// FuzzFloat16 hardens the half-precision converter: the encode→decode→
// encode pipeline must be a fixed point for every input.
func FuzzFloat16(f *testing.F) {
	f.Add(1.0)
	f.Add(-0.0)
	f.Add(65504.0)
	f.Add(5.960464477539063e-08)
	f.Add(1e300)
	f.Fuzz(func(t *testing.T, x float64) {
		h1 := Float16FromFloat64(x)
		d := Float16ToFloat64(h1)
		h2 := Float16FromFloat64(d)
		if h1 != h2 {
			t.Fatalf("not idempotent: %v → %#04x → %v → %#04x", x, h1, d, h2)
		}
	})
}
