package sim

import "math/bits"

// The PE scheduler of Figure 6: elements are issued in traversal order to
// each PE; an element updating output row r cannot issue within
// DepGapCycles of the previous element of row r on the same PE; the
// scheduler may fill the resulting bubbles by issuing a later element of
// a different row from within a bounded lookahead window.

// Elem is one unit of scheduled work: the A nonzero at (Row, Col), whose
// processing occupies the PE for Service cycles (ceil(B-row width / SIMD)).
type Elem struct {
	Row, Col int
	Service  int64
}

// Issue records one scheduled element for trace-level inspection (used by
// the Figure 6 toy-timeline experiment).
type Issue struct {
	Cycle int64
	Elem  Elem
}

// PESchedule is the outcome of scheduling one PE's queue.
type PESchedule struct {
	// Makespan is the cycle at which the PE finishes its last element.
	Makespan int64
	// Busy is the total cycles the PE spent processing elements.
	Busy int64
	// Bubbles is the total idle cycles injected by dependency stalls.
	Bubbles int64
	// Issues is the per-element trace; populated only when tracing.
	Issues []Issue
}

// schedScratch owns every reusable buffer of the per-tile simulation path
// (simulateTile → splitByPEGScratch → schedulePEGAgg → schedulePEScratch).
// Tiles on a worker run sequentially, so one scratch per worker serves
// every PEG and tile that worker touches; the steady state allocates
// nothing. The zero value is ready to use.
type schedScratch struct {
	// ready[r] is row r's earliest next issue time, valid only when
	// stamp[r] equals the current epoch. This is the slice-table
	// replacement for the historical map[int]int64: one epoch bump
	// invalidates the whole table in O(1), and row lookup is a bounds
	// check plus a stamp compare instead of a hash probe.
	ready []int64
	stamp []uint64
	epoch uint64
	// done marks scheduled elements of the PE currently being scheduled.
	done []bool
	// rowsHint, when positive, is an upper bound on every Elem.Row this
	// scratch will ever schedule (the workload's A.Rows). It lets
	// schedulePEScratch size the row table without scanning the queue for
	// its max row first.
	rowsHint int
	// queueCounts/queueBuf/queues back fillQueues' per-PE partition of a
	// PEG's elements.
	queueCounts []int
	queueBuf    []Elem
	queues      [][]Elem
	// pegCounts/pegBuf/pegGroups back splitByPEGScratch; pegCounts doubles
	// as scatterTile's per-PEG round-robin counters.
	pegCounts []int
	pegBuf    []Elem
	pegGroups [][]Elem
	// elemQueue holds scatterTile's per-element queue index between its
	// counting and fill passes, so the assignment arithmetic runs once.
	elemQueue []int32
	// mergeKeys backs mergeCyclesScratch's sort fallback (PEG > 64);
	// mergeMask/mergeStamp/mergeEpoch back its one-pass per-row PEG
	// bitmask dedup (the common case).
	mergeKeys  []rowPeg
	mergeMask  []uint64
	mergeStamp []uint64
	mergeEpoch uint64
	// winRow/winSvc/winReady back scheduleWindowed's dense lookahead
	// window: the first ≤ flatWindowMax live elements in stream order,
	// with their release times cached so the ready scan is a straight
	// arithmetic pass instead of repeated stamp-checked table probes.
	winRow   [flatWindowMax]int
	winSvc   [flatWindowMax]int64
	winReady [flatWindowMax]int64
}

// flatWindowMax is the widest lookahead the flattened ready-mask scheduler
// handles: one 64-bit mask word. Every Table 1 design uses window 16.
const flatWindowMax = 64

// begin opens a fresh PE schedule over n elements whose output rows are
// all below rows: done flags are cleared and the row-release table is
// invalidated by bumping the epoch (no O(rows) clear).
func (sc *schedScratch) begin(n, rows int) {
	sc.epoch++
	if rows > len(sc.ready) {
		grown := 2 * len(sc.ready)
		if grown < rows {
			grown = rows
		}
		sc.ready = make([]int64, grown)
		sc.stamp = make([]uint64, grown)
	}
	if cap(sc.done) < n {
		sc.done = make([]bool, n)
	} else {
		sc.done = sc.done[:n]
		clear(sc.done)
	}
}

// readyAt returns row's earliest next issue time in the current epoch.
func (sc *schedScratch) readyAt(row int) int64 {
	if sc.stamp[row] == sc.epoch {
		return sc.ready[row]
	}
	return 0
}

func (sc *schedScratch) setReady(row int, t int64) {
	sc.stamp[row] = sc.epoch
	sc.ready[row] = t
}

// schedulePE runs greedy windowed list scheduling over elems for one PE.
// depGap is the load/store dependency distance in issue slots: an element
// of row r may not start until depGap slots (each lasting the previous
// element's service time) after the previous issue of row r, modelling
// the read-modify-write latency of the row's accumulator. window bounds
// the lookahead (>=1); trace retains the issue list.
func schedulePE(elems []Elem, depGap int64, window int, trace bool) PESchedule {
	return schedulePEScratch(elems, depGap, window, trace, nil)
}

// schedulePEScratch is schedulePE with caller-owned buffers; sc may be
// nil (fresh buffers are allocated). The schedule is a pure function of
// (elems, depGap, window) — scratch reuse only removes allocation churn.
func schedulePEScratch(elems []Elem, depGap int64, window int, trace bool, sc *schedScratch) PESchedule {
	var s PESchedule
	if len(elems) == 0 {
		return s
	}
	if window < 1 {
		window = 1
	}
	if sc == nil {
		sc = &schedScratch{}
	}
	rows := sc.rowsHint
	if rows <= 0 {
		maxRow := 0
		for i := range elems {
			if elems[i].Row > maxRow {
				maxRow = elems[i].Row
			}
		}
		rows = maxRow + 1
	}
	sc.begin(len(elems), rows)
	done := sc.done
	head := 0
	t := int64(0)
	if !trace {
		// Optimistic in-order prefix: while the head element's row
		// dependency is already satisfied, the windowed scan trivially
		// chooses the head (it is checked first and taken on ready <= t),
		// so issue it without running the scan machinery. The loop below
		// is the general scheduler specialized to chosen == head; on the
		// first stalled head it stops and the general loop resumes from
		// exactly this state (prefix indices are never revisited — head
		// only advances — so done flags for them are not needed).
		stamp, ready, epoch := sc.stamp, sc.ready, sc.epoch
		for head < len(elems) {
			e := &elems[head]
			if stamp[e.Row] == epoch && ready[e.Row] > t {
				break
			}
			svc := e.Service
			if svc < 1 {
				svc = 1
			}
			stamp[e.Row] = epoch
			ready[e.Row] = t + depGap*svc
			s.Busy += svc
			t += svc
			head++
		}
		if head == len(elems) {
			s.Makespan = t
			return s
		}
		if window <= flatWindowMax {
			return scheduleWindowed(elems, head, t, depGap, window, sc, s)
		}
	}
	remaining := len(elems) - head
	for remaining > 0 {
		// Advance head past completed elements.
		for head < len(elems) && done[head] {
			head++
		}
		// Scan up to `window` live elements for the first whose row
		// dependency is satisfied at time t. Track the earliest time any
		// of them becomes ready so we can jump on a full stall.
		chosen := -1
		nextReady := int64(-1)
		live := 0
		for i := head; i < len(elems) && live < window; i++ {
			if done[i] {
				continue
			}
			live++
			ready := sc.readyAt(elems[i].Row)
			if ready <= t {
				chosen = i
				break
			}
			if nextReady < 0 || ready < nextReady {
				nextReady = ready
			}
		}
		if chosen < 0 {
			// Bubble: nothing in the window is ready. Jump to the first
			// release time ("padding with inefficient zeros", §3.2.2).
			s.Bubbles += nextReady - t
			t = nextReady
			continue
		}
		e := elems[chosen]
		done[chosen] = true
		remaining--
		if trace {
			s.Issues = append(s.Issues, Issue{Cycle: t, Elem: e})
		}
		svc := e.Service
		if svc < 1 {
			svc = 1
		}
		sc.setReady(e.Row, t+depGap*svc)
		s.Busy += svc
		t += svc
	}
	s.Makespan = t
	return s
}

// scheduleWindowed finishes a PE schedule from the first stalled head
// using a flattened dense window: the first n ≤ window live elements, in
// stream order, held in three parallel fixed-width arrays with their
// release times cached. Each iteration builds a ready bitmask in one
// branch-free arithmetic pass ((release − t − 1) >> 63 is all-ones exactly
// when release ≤ t), picks the lowest set bit — the first ready element in
// stream order, the same choice the windowed scan makes — or jumps to the
// minimum release on a full stall. Issued slots are compacted out with
// copy and the next stream element refills the tail, so the window is
// always exactly the first live elements and the schedule is bit-identical
// to the general loop below, without its repeated rescans of done
// elements.
func scheduleWindowed(elems []Elem, head int, t int64, depGap int64, window int, sc *schedScratch, s PESchedule) PESchedule {
	n := 0
	for i := head; i < len(elems) && n < window; i++ {
		e := &elems[i]
		svc := e.Service
		if svc < 1 {
			svc = 1
		}
		sc.winRow[n] = e.Row
		sc.winSvc[n] = svc
		sc.winReady[n] = sc.readyAt(e.Row)
		n++
	}
	next := head + n
	for n > 0 {
		var mask uint64
		for i := 0; i < n; i++ {
			mask |= uint64((sc.winReady[i]-t-1)>>63) & (uint64(1) << uint(i))
		}
		if mask == ^uint64(0)>>uint(64-n) {
			// Window drain. Every slot is ready, so the scan below would
			// issue slot 0, then slot 1, ... — the lowest ready index is
			// always the next slot in stream order — until an issue's
			// release lands on a later slot of the same row. Issue the
			// prefix back to back, re-checking each slot's row against
			// the release table at its turn (exactly the state the scan
			// would see), and stop at the first slot an earlier issue
			// blocked. Refills are all later in stream order than the
			// drained prefix, so they could not have been picked during
			// it, and re-reading every surviving slot's ready time after
			// the drain reproduces the scan's release propagation.
			i := 0
			for ; i < n; i++ {
				row := sc.winRow[i]
				if sc.readyAt(row) > t {
					break
				}
				svc := sc.winSvc[i]
				sc.setReady(row, t+depGap*svc)
				s.Busy += svc
				t += svc
			}
			if i > 0 {
				copy(sc.winRow[0:n-i], sc.winRow[i:n])
				copy(sc.winSvc[0:n-i], sc.winSvc[i:n])
				n -= i
				for next < len(elems) && n < window {
					e := &elems[next]
					next++
					svc := e.Service
					if svc < 1 {
						svc = 1
					}
					sc.winRow[n] = e.Row
					sc.winSvc[n] = svc
					n++
				}
				for j := 0; j < n; j++ {
					sc.winReady[j] = sc.readyAt(sc.winRow[j])
				}
				continue
			}
		}
		if mask == 0 {
			// Bubble: nothing in the window is ready. Jump to the first
			// release time ("padding with inefficient zeros", §3.2.2).
			min := sc.winReady[0]
			for i := 1; i < n; i++ {
				if sc.winReady[i] < min {
					min = sc.winReady[i]
				}
			}
			s.Bubbles += min - t
			t = min
			continue
		}
		i := bits.TrailingZeros64(mask)
		row := sc.winRow[i]
		svc := sc.winSvc[i]
		release := t + depGap*svc
		sc.setReady(row, release)
		s.Busy += svc
		t += svc
		copy(sc.winRow[i:n-1], sc.winRow[i+1:n])
		copy(sc.winSvc[i:n-1], sc.winSvc[i+1:n])
		copy(sc.winReady[i:n-1], sc.winReady[i+1:n])
		n--
		if next < len(elems) {
			e := &elems[next]
			next++
			sv := e.Service
			if sv < 1 {
				sv = 1
			}
			sc.winRow[n] = e.Row
			sc.winSvc[n] = sv
			sc.winReady[n] = sc.readyAt(e.Row)
			n++
		}
		// Propagate the new release time to every cached slot of the
		// issued row (the refill above already read it from the table).
		for j := 0; j < n; j++ {
			if sc.winRow[j] == row {
				sc.winReady[j] = release
			}
		}
	}
	s.Makespan = t
	return s
}

// PEGSchedule aggregates the PE schedules of one processing element group.
type PEGSchedule struct {
	Makespan int64
	Busy     int64
	Bubbles  int64
	Capacity int64 // PEs × makespan, the denominator of utilization
	PEs      []PESchedule
}

// fillQueues partitions elems (already in traversal order) into numPEs
// per-PE queues using the design's assignment rule, backed entirely by
// the scratch buffers. A counting pass sizes every queue exactly, so the
// fill pass never reallocates and queue order matches the historical
// append-based round-robin bit for bit.
func (sc *schedScratch) fillQueues(elems []Elem, numPEs int, traversal Traversal, colStride int) [][]Elem {
	if cap(sc.queueCounts) < numPEs {
		sc.queueCounts = make([]int, numPEs)
	} else {
		sc.queueCounts = sc.queueCounts[:numPEs]
		clear(sc.queueCounts)
	}
	counts := sc.queueCounts
	if traversal == RowWise {
		// Design 3: "elements are assigned to PEs based on the column
		// index modulo the PE count (column_num%PE)" (§3.2.3).
		for i := range elems {
			counts[(elems[i].Col/colStride)%numPEs]++
		}
	} else {
		// Round-robin in traversal order (§3.2.1).
		for i := range elems {
			counts[i%numPEs]++
		}
	}
	if cap(sc.queueBuf) < len(elems) {
		sc.queueBuf = make([]Elem, len(elems))
	}
	buf := sc.queueBuf[:len(elems)]
	if cap(sc.queues) < numPEs {
		sc.queues = make([][]Elem, numPEs)
	}
	queues := sc.queues[:numPEs]
	off := 0
	for p := 0; p < numPEs; p++ {
		queues[p] = buf[off : off : off+counts[p]]
		off += counts[p]
	}
	if traversal == RowWise {
		for i := range elems {
			p := (elems[i].Col / colStride) % numPEs
			queues[p] = append(queues[p], elems[i])
		}
	} else {
		for i := range elems {
			queues[i%numPEs] = append(queues[i%numPEs], elems[i])
		}
	}
	return queues
}

// schedulePEG distributes elems (already in traversal order) to numPEs
// queues using the design's assignment rule, schedules each PE, and
// reports the group makespan (the PEG finishes when its slowest PE does,
// §3.2.1). For RowWise designs the column-modulo rule of §3.2.3 is
// applied hierarchically: the PEG level consumed col % PEGs, so within
// the group the PE index is (col / colStride) % numPEs; direct callers
// use colStride 1 for the flat column_num%PE rule.
func schedulePEG(elems []Elem, numPEs int, traversal Traversal, colStride int, depGap int64, window int, trace bool) PEGSchedule {
	if colStride < 1 {
		colStride = 1
	}
	var sc schedScratch
	queues := sc.fillQueues(elems, numPEs, traversal, colStride)
	g := PEGSchedule{PEs: make([]PESchedule, numPEs)}
	for p, q := range queues {
		ps := schedulePEScratch(q, depGap, window, trace, &sc)
		g.PEs[p] = ps
		g.Busy += ps.Busy
		g.Bubbles += ps.Bubbles
		if ps.Makespan > g.Makespan {
			g.Makespan = ps.Makespan
		}
	}
	g.Capacity = int64(numPEs) * g.Makespan
	return g
}

// scatterTile partitions a tile's elements directly into per-(PEG, PE)
// queues with one counting pass and one fill pass, fusing splitByPEG with
// each group's fillQueues. Queue p*numPEs+e holds PEG p, PE e in traversal
// order; contents and order are bit-identical to running splitByPEGScratch
// followed by fillQueues per group — the fused form just skips the
// intermediate per-PEG copy and its second counting pass.
//
// The assignment rules mirror splitByPEG and fillQueues exactly: RowWise
// pins col%pegs to the PEG and (col/pegs)%numPEs within it (the
// hierarchical §3.2.3 rule with colStride = pegs); ColWise pins row%pegs
// to the PEG and round-robins within the group's stream order, which a
// per-PEG running element counter reproduces because PEG groups preserve
// traversal order.
func (sc *schedScratch) scatterTile(elems []Elem, pegs, numPEs int, traversal Traversal) [][]Elem {
	nq := pegs * numPEs
	if cap(sc.queueCounts) < nq {
		sc.queueCounts = make([]int, nq)
	} else {
		sc.queueCounts = sc.queueCounts[:nq]
		clear(sc.queueCounts)
	}
	counts := sc.queueCounts
	if cap(sc.elemQueue) < len(elems) {
		sc.elemQueue = make([]int32, len(elems))
	}
	qidx := sc.elemQueue[:len(elems)]

	// Pass 1: compute each element's queue index once (the div/mod work
	// happens a single time per element, not again in the fill pass) and
	// count queue sizes. Variable-divisor div/mod is the dominant cost
	// here, so the real design points get cheaper arithmetic: power-of-two
	// PEG counts (Designs 1 and 4) reduce to shift/mask, and non-power-of-
	// two counts (24 in Designs 2 and 3) use a Lemire multiply-high
	// reciprocal — exact for 32-bit indices, two MULs instead of a
	// hardware divide. Anything exotic falls back to plain % arithmetic.
	peMask := numPEs - 1
	pePow2 := numPEs > 0 && numPEs&peMask == 0
	switch {
	case traversal == RowWise && pePow2 && pegs&(pegs-1) == 0:
		shift := uint(bits.TrailingZeros(uint(pegs)))
		pMask := pegs - 1
		for i := range elems {
			c := elems[i].Col
			q := int32((c&pMask)*numPEs + (c>>shift)&peMask)
			qidx[i] = q
			counts[q]++
		}
	case traversal == RowWise && pePow2:
		recip := ^uint64(0)/uint64(pegs) + 1
		for i := range elems {
			c := uint64(uint32(elems[i].Col))
			div, _ := bits.Mul64(recip, c)
			mod, _ := bits.Mul64(recip*c, uint64(pegs))
			q := int32(int(mod)*numPEs + int(div)&peMask)
			qidx[i] = q
			counts[q]++
		}
	case traversal != RowWise && pePow2:
		// ColWise round-robins within each PEG's stream order; rr[p] is
		// PEG p's running element count.
		if cap(sc.pegCounts) < pegs {
			sc.pegCounts = make([]int, pegs)
		} else {
			sc.pegCounts = sc.pegCounts[:pegs]
			clear(sc.pegCounts)
		}
		rr := sc.pegCounts
		if pegs&(pegs-1) == 0 {
			pMask := pegs - 1
			for i := range elems {
				p := elems[i].Row & pMask
				q := int32(p*numPEs + rr[p]&peMask)
				rr[p]++
				qidx[i] = q
				counts[q]++
			}
		} else {
			recip := ^uint64(0)/uint64(pegs) + 1
			for i := range elems {
				mod, _ := bits.Mul64(recip*uint64(uint32(elems[i].Row)), uint64(pegs))
				p := int(mod)
				q := int32(p*numPEs + rr[p]&peMask)
				rr[p]++
				qidx[i] = q
				counts[q]++
			}
		}
	default:
		if cap(sc.pegCounts) < pegs {
			sc.pegCounts = make([]int, pegs)
		} else {
			sc.pegCounts = sc.pegCounts[:pegs]
			clear(sc.pegCounts)
		}
		rr := sc.pegCounts
		for i := range elems {
			var q int32
			if traversal == RowWise {
				c := elems[i].Col
				q = int32((c%pegs)*numPEs + (c/pegs)%numPEs)
			} else {
				p := elems[i].Row % pegs
				q = int32(p*numPEs + rr[p]%numPEs)
				rr[p]++
			}
			qidx[i] = q
			counts[q]++
		}
	}

	// Pass 2: carve the backing buffer, then scatter through per-queue
	// write cursors (counts is repurposed in place) — a single int
	// increment per element instead of append's slice-header read/write.
	if cap(sc.queueBuf) < len(elems) {
		sc.queueBuf = make([]Elem, len(elems))
	}
	buf := sc.queueBuf[:len(elems)]
	if cap(sc.queues) < nq {
		sc.queues = make([][]Elem, nq)
	}
	queues := sc.queues[:nq]
	off := 0
	for q := 0; q < nq; q++ {
		n := counts[q]
		queues[q] = buf[off : off+n : off+n]
		counts[q] = off
		off += n
	}
	for i := range elems {
		cur := &counts[qidx[i]]
		buf[*cur] = elems[i]
		*cur = *cur + 1
	}
	return queues
}

// schedulePEGAgg is the allocation-free hot-path form of schedulePEG: it
// returns only the aggregates the tile cost model consumes (total busy,
// total bubbles, group makespan) and never materializes PESchedule
// slices. Quantities are bit-identical to schedulePEG's.
func schedulePEGAgg(elems []Elem, numPEs int, traversal Traversal, colStride int, depGap int64, window int, sc *schedScratch) (busy, bubbles, makespan int64) {
	if colStride < 1 {
		colStride = 1
	}
	queues := sc.fillQueues(elems, numPEs, traversal, colStride)
	for _, q := range queues {
		ps := schedulePEScratch(q, depGap, window, false, sc)
		busy += ps.Busy
		bubbles += ps.Bubbles
		if ps.Makespan > makespan {
			makespan = ps.Makespan
		}
	}
	return busy, bubbles, makespan
}
