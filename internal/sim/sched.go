package sim

// The PE scheduler of Figure 6: elements are issued in traversal order to
// each PE; an element updating output row r cannot issue within
// DepGapCycles of the previous element of row r on the same PE; the
// scheduler may fill the resulting bubbles by issuing a later element of
// a different row from within a bounded lookahead window.

// Elem is one unit of scheduled work: the A nonzero at (Row, Col), whose
// processing occupies the PE for Service cycles (ceil(B-row width / SIMD)).
type Elem struct {
	Row, Col int
	Service  int64
}

// Issue records one scheduled element for trace-level inspection (used by
// the Figure 6 toy-timeline experiment).
type Issue struct {
	Cycle int64
	Elem  Elem
}

// PESchedule is the outcome of scheduling one PE's queue.
type PESchedule struct {
	// Makespan is the cycle at which the PE finishes its last element.
	Makespan int64
	// Busy is the total cycles the PE spent processing elements.
	Busy int64
	// Bubbles is the total idle cycles injected by dependency stalls.
	Bubbles int64
	// Issues is the per-element trace; populated only when tracing.
	Issues []Issue
}

// schedScratch holds the per-PE scheduling buffers so the hot simulation
// path (simulateTile → schedulePEG → schedulePE, once per PE per PEG per
// tile) reuses one map and one slice per tile worker instead of
// allocating fresh ones on every call. PEs within a tile are scheduled
// sequentially, so a single scratch per simulateTile call is safe; the
// zero value is ready to use.
type schedScratch struct {
	lastIssue map[int]int64
	done      []bool
}

// take returns the cleared buffers sized for n elements.
func (sc *schedScratch) take(n int) (map[int]int64, []bool) {
	if sc.lastIssue == nil {
		sc.lastIssue = make(map[int]int64, 64)
	} else {
		clear(sc.lastIssue)
	}
	if cap(sc.done) < n {
		sc.done = make([]bool, n)
	} else {
		sc.done = sc.done[:n]
		for i := range sc.done {
			sc.done[i] = false
		}
	}
	return sc.lastIssue, sc.done
}

// schedulePE runs greedy windowed list scheduling over elems for one PE.
// depGap is the load/store dependency distance in issue slots: an element
// of row r may not start until depGap slots (each lasting the previous
// element's service time) after the previous issue of row r, modelling
// the read-modify-write latency of the row's accumulator. window bounds
// the lookahead (>=1); trace retains the issue list.
func schedulePE(elems []Elem, depGap int64, window int, trace bool) PESchedule {
	return schedulePEScratch(elems, depGap, window, trace, nil)
}

// schedulePEScratch is schedulePE with caller-owned buffers; sc may be
// nil (fresh buffers are allocated). The schedule is a pure function of
// (elems, depGap, window) — scratch reuse only removes allocation churn.
func schedulePEScratch(elems []Elem, depGap int64, window int, trace bool, sc *schedScratch) PESchedule {
	var s PESchedule
	if len(elems) == 0 {
		return s
	}
	if window < 1 {
		window = 1
	}
	// lastIssue maps row → earliest next start time (issue + depGap·service).
	var lastIssue map[int]int64
	var done []bool
	if sc != nil {
		lastIssue, done = sc.take(len(elems))
	} else {
		lastIssue = make(map[int]int64, 64)
		done = make([]bool, len(elems))
	}
	head := 0
	remaining := len(elems)
	t := int64(0)
	for remaining > 0 {
		// Advance head past completed elements.
		for head < len(elems) && done[head] {
			head++
		}
		// Scan up to `window` live elements for the first whose row
		// dependency is satisfied at time t. Track the earliest time any
		// of them becomes ready so we can jump on a full stall.
		chosen := -1
		nextReady := int64(-1)
		live := 0
		for i := head; i < len(elems) && live < window; i++ {
			if done[i] {
				continue
			}
			live++
			ready := int64(0)
			if rel, ok := lastIssue[elems[i].Row]; ok {
				ready = rel
			}
			if ready <= t {
				chosen = i
				break
			}
			if nextReady < 0 || ready < nextReady {
				nextReady = ready
			}
		}
		if chosen < 0 {
			// Bubble: nothing in the window is ready. Jump to the first
			// release time ("padding with inefficient zeros", §3.2.2).
			s.Bubbles += nextReady - t
			t = nextReady
			continue
		}
		e := elems[chosen]
		done[chosen] = true
		remaining--
		if trace {
			s.Issues = append(s.Issues, Issue{Cycle: t, Elem: e})
		}
		svc := e.Service
		if svc < 1 {
			svc = 1
		}
		lastIssue[e.Row] = t + depGap*svc
		s.Busy += svc
		t += svc
	}
	s.Makespan = t
	return s
}

// PEGSchedule aggregates the PE schedules of one processing element group.
type PEGSchedule struct {
	Makespan int64
	Busy     int64
	Bubbles  int64
	Capacity int64 // PEs × makespan, the denominator of utilization
	PEs      []PESchedule
}

// schedulePEG distributes elems (already in traversal order) to numPEs
// queues using the design's assignment rule, schedules each PE, and
// reports the group makespan (the PEG finishes when its slowest PE does,
// §3.2.1). For RowWise designs the column-modulo rule of §3.2.3 is
// applied hierarchically: the PEG level consumed col % PEGs, so within
// the group the PE index is (col / colStride) % numPEs; direct callers
// use colStride 1 for the flat column_num%PE rule.
func schedulePEG(elems []Elem, numPEs int, traversal Traversal, colStride int, depGap int64, window int, trace bool) PEGSchedule {
	return schedulePEGScratch(elems, numPEs, traversal, colStride, depGap, window, trace, nil)
}

// schedulePEGScratch is schedulePEG with a caller-owned scheduling
// scratch (nil allocates per PE). The tile simulation threads one scratch
// per worker through here so the per-PE buffers are reused across every
// PEG and tile that worker touches.
func schedulePEGScratch(elems []Elem, numPEs int, traversal Traversal, colStride int, depGap int64, window int, trace bool, sc *schedScratch) PEGSchedule {
	if colStride < 1 {
		colStride = 1
	}
	queues := make([][]Elem, numPEs)
	switch traversal {
	case ColWise:
		// Round-robin in traversal order (§3.2.1).
		for i, e := range elems {
			queues[i%numPEs] = append(queues[i%numPEs], e)
		}
	case RowWise:
		// Design 3: "elements are assigned to PEs based on the column
		// index modulo the PE count (column_num%PE)" (§3.2.3).
		for _, e := range elems {
			queues[(e.Col/colStride)%numPEs] = append(queues[(e.Col/colStride)%numPEs], e)
		}
	}
	g := PEGSchedule{PEs: make([]PESchedule, numPEs)}
	for p, q := range queues {
		ps := schedulePEScratch(q, depGap, window, trace, sc)
		g.PEs[p] = ps
		g.Busy += ps.Busy
		g.Bubbles += ps.Bubbles
		if ps.Makespan > g.Makespan {
			g.Makespan = ps.Makespan
		}
	}
	g.Capacity = int64(numPEs) * g.Makespan
	return g
}
