package sim

// The PE scheduler of Figure 6: elements are issued in traversal order to
// each PE; an element updating output row r cannot issue within
// DepGapCycles of the previous element of row r on the same PE; the
// scheduler may fill the resulting bubbles by issuing a later element of
// a different row from within a bounded lookahead window.

// Elem is one unit of scheduled work: the A nonzero at (Row, Col), whose
// processing occupies the PE for Service cycles (ceil(B-row width / SIMD)).
type Elem struct {
	Row, Col int
	Service  int64
}

// Issue records one scheduled element for trace-level inspection (used by
// the Figure 6 toy-timeline experiment).
type Issue struct {
	Cycle int64
	Elem  Elem
}

// PESchedule is the outcome of scheduling one PE's queue.
type PESchedule struct {
	// Makespan is the cycle at which the PE finishes its last element.
	Makespan int64
	// Busy is the total cycles the PE spent processing elements.
	Busy int64
	// Bubbles is the total idle cycles injected by dependency stalls.
	Bubbles int64
	// Issues is the per-element trace; populated only when tracing.
	Issues []Issue
}

// schedScratch owns every reusable buffer of the per-tile simulation path
// (simulateTile → splitByPEGScratch → schedulePEGAgg → schedulePEScratch).
// Tiles on a worker run sequentially, so one scratch per worker serves
// every PEG and tile that worker touches; the steady state allocates
// nothing. The zero value is ready to use.
type schedScratch struct {
	// ready[r] is row r's earliest next issue time, valid only when
	// stamp[r] equals the current epoch. This is the slice-table
	// replacement for the historical map[int]int64: one epoch bump
	// invalidates the whole table in O(1), and row lookup is a bounds
	// check plus a stamp compare instead of a hash probe.
	ready []int64
	stamp []uint64
	epoch uint64
	// done marks scheduled elements of the PE currently being scheduled.
	done []bool
	// rowsHint, when positive, is an upper bound on every Elem.Row this
	// scratch will ever schedule (the workload's A.Rows). It lets
	// schedulePEScratch size the row table without scanning the queue for
	// its max row first.
	rowsHint int
	// queueCounts/queueBuf/queues back fillQueues' per-PE partition of a
	// PEG's elements.
	queueCounts []int
	queueBuf    []Elem
	queues      [][]Elem
	// pegCounts/pegBuf/pegGroups back splitByPEGScratch.
	pegCounts []int
	pegBuf    []Elem
	pegGroups [][]Elem
	// mergeKeys backs mergeCyclesScratch's sort fallback (PEG > 64);
	// mergeMask/mergeStamp/mergeEpoch back its one-pass per-row PEG
	// bitmask dedup (the common case).
	mergeKeys  []rowPeg
	mergeMask  []uint64
	mergeStamp []uint64
	mergeEpoch uint64
}

// begin opens a fresh PE schedule over n elements whose output rows are
// all below rows: done flags are cleared and the row-release table is
// invalidated by bumping the epoch (no O(rows) clear).
func (sc *schedScratch) begin(n, rows int) {
	sc.epoch++
	if rows > len(sc.ready) {
		grown := 2 * len(sc.ready)
		if grown < rows {
			grown = rows
		}
		sc.ready = make([]int64, grown)
		sc.stamp = make([]uint64, grown)
	}
	if cap(sc.done) < n {
		sc.done = make([]bool, n)
	} else {
		sc.done = sc.done[:n]
		clear(sc.done)
	}
}

// readyAt returns row's earliest next issue time in the current epoch.
func (sc *schedScratch) readyAt(row int) int64 {
	if sc.stamp[row] == sc.epoch {
		return sc.ready[row]
	}
	return 0
}

func (sc *schedScratch) setReady(row int, t int64) {
	sc.stamp[row] = sc.epoch
	sc.ready[row] = t
}

// schedulePE runs greedy windowed list scheduling over elems for one PE.
// depGap is the load/store dependency distance in issue slots: an element
// of row r may not start until depGap slots (each lasting the previous
// element's service time) after the previous issue of row r, modelling
// the read-modify-write latency of the row's accumulator. window bounds
// the lookahead (>=1); trace retains the issue list.
func schedulePE(elems []Elem, depGap int64, window int, trace bool) PESchedule {
	return schedulePEScratch(elems, depGap, window, trace, nil)
}

// schedulePEScratch is schedulePE with caller-owned buffers; sc may be
// nil (fresh buffers are allocated). The schedule is a pure function of
// (elems, depGap, window) — scratch reuse only removes allocation churn.
func schedulePEScratch(elems []Elem, depGap int64, window int, trace bool, sc *schedScratch) PESchedule {
	var s PESchedule
	if len(elems) == 0 {
		return s
	}
	if window < 1 {
		window = 1
	}
	if sc == nil {
		sc = &schedScratch{}
	}
	rows := sc.rowsHint
	if rows <= 0 {
		maxRow := 0
		for i := range elems {
			if elems[i].Row > maxRow {
				maxRow = elems[i].Row
			}
		}
		rows = maxRow + 1
	}
	sc.begin(len(elems), rows)
	done := sc.done
	head := 0
	t := int64(0)
	if !trace {
		// Optimistic in-order prefix: while the head element's row
		// dependency is already satisfied, the windowed scan trivially
		// chooses the head (it is checked first and taken on ready <= t),
		// so issue it without running the scan machinery. The loop below
		// is the general scheduler specialized to chosen == head; on the
		// first stalled head it stops and the general loop resumes from
		// exactly this state (prefix indices are never revisited — head
		// only advances — so done flags for them are not needed).
		stamp, ready, epoch := sc.stamp, sc.ready, sc.epoch
		for head < len(elems) {
			e := &elems[head]
			if stamp[e.Row] == epoch && ready[e.Row] > t {
				break
			}
			svc := e.Service
			if svc < 1 {
				svc = 1
			}
			stamp[e.Row] = epoch
			ready[e.Row] = t + depGap*svc
			s.Busy += svc
			t += svc
			head++
		}
		if head == len(elems) {
			s.Makespan = t
			return s
		}
	}
	remaining := len(elems) - head
	for remaining > 0 {
		// Advance head past completed elements.
		for head < len(elems) && done[head] {
			head++
		}
		// Scan up to `window` live elements for the first whose row
		// dependency is satisfied at time t. Track the earliest time any
		// of them becomes ready so we can jump on a full stall.
		chosen := -1
		nextReady := int64(-1)
		live := 0
		for i := head; i < len(elems) && live < window; i++ {
			if done[i] {
				continue
			}
			live++
			ready := sc.readyAt(elems[i].Row)
			if ready <= t {
				chosen = i
				break
			}
			if nextReady < 0 || ready < nextReady {
				nextReady = ready
			}
		}
		if chosen < 0 {
			// Bubble: nothing in the window is ready. Jump to the first
			// release time ("padding with inefficient zeros", §3.2.2).
			s.Bubbles += nextReady - t
			t = nextReady
			continue
		}
		e := elems[chosen]
		done[chosen] = true
		remaining--
		if trace {
			s.Issues = append(s.Issues, Issue{Cycle: t, Elem: e})
		}
		svc := e.Service
		if svc < 1 {
			svc = 1
		}
		sc.setReady(e.Row, t+depGap*svc)
		s.Busy += svc
		t += svc
	}
	s.Makespan = t
	return s
}

// PEGSchedule aggregates the PE schedules of one processing element group.
type PEGSchedule struct {
	Makespan int64
	Busy     int64
	Bubbles  int64
	Capacity int64 // PEs × makespan, the denominator of utilization
	PEs      []PESchedule
}

// fillQueues partitions elems (already in traversal order) into numPEs
// per-PE queues using the design's assignment rule, backed entirely by
// the scratch buffers. A counting pass sizes every queue exactly, so the
// fill pass never reallocates and queue order matches the historical
// append-based round-robin bit for bit.
func (sc *schedScratch) fillQueues(elems []Elem, numPEs int, traversal Traversal, colStride int) [][]Elem {
	if cap(sc.queueCounts) < numPEs {
		sc.queueCounts = make([]int, numPEs)
	} else {
		sc.queueCounts = sc.queueCounts[:numPEs]
		clear(sc.queueCounts)
	}
	counts := sc.queueCounts
	if traversal == RowWise {
		// Design 3: "elements are assigned to PEs based on the column
		// index modulo the PE count (column_num%PE)" (§3.2.3).
		for i := range elems {
			counts[(elems[i].Col/colStride)%numPEs]++
		}
	} else {
		// Round-robin in traversal order (§3.2.1).
		for i := range elems {
			counts[i%numPEs]++
		}
	}
	if cap(sc.queueBuf) < len(elems) {
		sc.queueBuf = make([]Elem, len(elems))
	}
	buf := sc.queueBuf[:len(elems)]
	if cap(sc.queues) < numPEs {
		sc.queues = make([][]Elem, numPEs)
	}
	queues := sc.queues[:numPEs]
	off := 0
	for p := 0; p < numPEs; p++ {
		queues[p] = buf[off : off : off+counts[p]]
		off += counts[p]
	}
	if traversal == RowWise {
		for i := range elems {
			p := (elems[i].Col / colStride) % numPEs
			queues[p] = append(queues[p], elems[i])
		}
	} else {
		for i := range elems {
			queues[i%numPEs] = append(queues[i%numPEs], elems[i])
		}
	}
	return queues
}

// schedulePEG distributes elems (already in traversal order) to numPEs
// queues using the design's assignment rule, schedules each PE, and
// reports the group makespan (the PEG finishes when its slowest PE does,
// §3.2.1). For RowWise designs the column-modulo rule of §3.2.3 is
// applied hierarchically: the PEG level consumed col % PEGs, so within
// the group the PE index is (col / colStride) % numPEs; direct callers
// use colStride 1 for the flat column_num%PE rule.
func schedulePEG(elems []Elem, numPEs int, traversal Traversal, colStride int, depGap int64, window int, trace bool) PEGSchedule {
	if colStride < 1 {
		colStride = 1
	}
	var sc schedScratch
	queues := sc.fillQueues(elems, numPEs, traversal, colStride)
	g := PEGSchedule{PEs: make([]PESchedule, numPEs)}
	for p, q := range queues {
		ps := schedulePEScratch(q, depGap, window, trace, &sc)
		g.PEs[p] = ps
		g.Busy += ps.Busy
		g.Bubbles += ps.Bubbles
		if ps.Makespan > g.Makespan {
			g.Makespan = ps.Makespan
		}
	}
	g.Capacity = int64(numPEs) * g.Makespan
	return g
}

// schedulePEGAgg is the allocation-free hot-path form of schedulePEG: it
// returns only the aggregates the tile cost model consumes (total busy,
// total bubbles, group makespan) and never materializes PESchedule
// slices. Quantities are bit-identical to schedulePEG's.
func schedulePEGAgg(elems []Elem, numPEs int, traversal Traversal, colStride int, depGap int64, window int, sc *schedScratch) (busy, bubbles, makespan int64) {
	if colStride < 1 {
		colStride = 1
	}
	queues := sc.fillQueues(elems, numPEs, traversal, colStride)
	for _, q := range queues {
		ps := schedulePEScratch(q, depGap, window, false, sc)
		busy += ps.Busy
		bubbles += ps.Bubbles
		if ps.Makespan > makespan {
			makespan = ps.Makespan
		}
	}
	return busy, bubbles, makespan
}
