// Package sim is a cycle-level simulator of the four Misam FPGA designs
// (§3.2, Table 1). It models the mechanisms the paper identifies as the
// sources of performance differences between designs:
//
//   - HBM channel bandwidth for reading A and B and writing C, with the
//     paper's coalescing rules (8 packed A/COO elements per read, 16 FP32
//     dense-B values per read).
//   - The PEG/PE scheduling discipline of Figure 6: round-robin work
//     assignment, a 2-cycle load/store dependency between updates to the
//     same output row on a PE, and greedy bubble-filling by interleaving
//     rows within a bounded scheduling window.
//   - Column-wise (Designs 1, 2, 4) versus row-wise (Design 3) traversal
//     of A.
//   - B tiling: dense row tiles sized by BRAM capacity for SpMM designs,
//     and Design 4's sparsity-aware packing of compressed B rows.
//
// The paper's own training data comes from an analogous simulator built
// from HLS reports and profiling runs (§4); this package is the synthetic
// equivalent of that substrate.
package sim

import "fmt"

// DesignID identifies one of the four Misam designs.
type DesignID int

const (
	Design1 DesignID = iota
	Design2
	Design3
	Design4
	NumDesigns
)

// String returns the paper's design name.
func (d DesignID) String() string {
	if d >= 0 && d < NumDesigns {
		return fmt.Sprintf("Design %d", int(d)+1)
	}
	return fmt.Sprintf("DesignID(%d)", int(d))
}

// Traversal selects how the scheduler walks matrix A (Table 1's
// "Scheduler A" row).
type Traversal int

const (
	// ColWise traverses A column by column, assigning elements to PEs
	// round-robin (Designs 1, 2, 4).
	ColWise Traversal = iota
	// RowWise traverses A row by row, assigning each element to PE
	// column_index % PE count (Design 3).
	RowWise
)

// String names the traversal as in Table 1.
func (t Traversal) String() string {
	if t == ColWise {
		return "Col"
	}
	return "Row"
}

// Config is one design's parameter set (Table 1) plus the scheduling
// constants shared by all designs.
type Config struct {
	Name string
	ID   DesignID

	ChA int // HBM channels reading A
	ChB int // HBM channels reading B
	ChC int // HBM channels writing C
	PEG int // processing element groups ("N" in Table 1)
	ACC int // accumulator groups ("M" in Table 1)

	PEsPerPEG   int       // 4 in all Misam designs (§3.2.1)
	SchedulerA  Traversal // Col or Row traversal of A
	CompressedB bool      // Design 4 stores B in 64-bit COO (Table 1 "Format B")

	// FreqMHz is the post-place-and-route clock from Table 2.
	FreqMHz float64

	// DepGapCycles is the load/store dependency distance, in issue slots,
	// between two updates of the same output row on a PE. Figure 6's toy
	// example uses 2; the production designs use 4, the depth of a
	// pipelined FP32 accumulator on UltraScale+ fabric.
	DepGapCycles int64
	// WindowSize bounds how far the scheduler looks ahead in a PE's
	// element queue when filling bubbles. Real schedulers have a finite
	// reorder window; 16 keeps simulation O(nnz·W).
	WindowSize int

	// BRAMRowsPerTile is the dense row-tile height for B (4096 entries,
	// §3.2.1). Design 4 instead packs compressed rows up to
	// BRAMCapacityNNZ nonzeros per tile (§3.2.4).
	BRAMRowsPerTile int
	BRAMCapacityNNZ int

	// SIMDWidth is the PE vector width: partial results accumulate into
	// "eight-element vectors" (§3.2.1).
	SIMDWidth int

	// AElemsPerRead / BDenseElemsPerRead / BCOOElemsPerRead implement the
	// coalescing rules of §3.2.1 and §3.2.4 (per channel, per cycle).
	AElemsPerRead      int
	BDenseElemsPerRead int
	BCOOElemsPerRead   int
	CElemsPerWrite     int
}

// PEs reports the total processing element count of the design.
func (c Config) PEs() int { return c.PEG * c.PEsPerPEG }

// Validate rejects configurations whose parameters would corrupt the cost
// model: every channel count, group size, SIMD width, coalescing factor
// and the clock feed divisions, so a zero (e.g. a hand-built Config that
// forgot common()'s constants) must fail loudly instead of producing
// quietly wrong cycle counts. Simulate validates before running; ceilDiv64
// panics as a backstop for paths that skip it.
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"ChA", c.ChA}, {"ChB", c.ChB}, {"ChC", c.ChC},
		{"PEG", c.PEG}, {"ACC", c.ACC}, {"PEsPerPEG", c.PEsPerPEG},
		{"SIMDWidth", c.SIMDWidth},
		{"AElemsPerRead", c.AElemsPerRead},
		{"BDenseElemsPerRead", c.BDenseElemsPerRead},
		{"BCOOElemsPerRead", c.BCOOElemsPerRead},
		{"CElemsPerWrite", c.CElemsPerWrite},
	} {
		if f.v <= 0 {
			return fmt.Errorf("sim: config %q: %s must be positive, got %d", c.Name, f.name, f.v)
		}
	}
	if c.FreqMHz <= 0 {
		return fmt.Errorf("sim: config %q: FreqMHz must be positive, got %g", c.Name, c.FreqMHz)
	}
	if c.DepGapCycles < 0 {
		return fmt.Errorf("sim: config %q: DepGapCycles must be nonnegative, got %d", c.Name, c.DepGapCycles)
	}
	return nil
}

// common returns the constants shared by all four designs.
func common() Config {
	return Config{
		PEsPerPEG:          4,
		DepGapCycles:       4,
		WindowSize:         16,
		BRAMRowsPerTile:    4096,
		BRAMCapacityNNZ:    4096 * 8,
		SIMDWidth:          8,
		AElemsPerRead:      8,
		BDenseElemsPerRead: 16,
		BCOOElemsPerRead:   8,
		CElemsPerWrite:     16,
	}
}

// Configs returns the Table 1 parameterizations of all four designs.
func Configs() [NumDesigns]Config {
	d1 := common()
	d1.Name, d1.ID = "Design 1", Design1
	d1.ChA, d1.ChB, d1.ChC = 8, 4, 8
	d1.PEG, d1.ACC = 16, 16
	d1.SchedulerA = ColWise
	d1.FreqMHz = 284.02

	d2 := common()
	d2.Name, d2.ID = "Design 2", Design2
	d2.ChA, d2.ChB, d2.ChC = 12, 4, 12
	d2.PEG, d2.ACC = 24, 24
	d2.SchedulerA = ColWise
	d2.FreqMHz = 290.3

	d3 := d2
	d3.Name, d3.ID = "Design 3", Design3
	d3.SchedulerA = RowWise

	d4 := common()
	d4.Name, d4.ID = "Design 4", Design4
	d4.ChA, d4.ChB, d4.ChC = 8, 8, 4
	d4.PEG, d4.ACC = 16, 16
	d4.SchedulerA = ColWise
	d4.CompressedB = true
	d4.FreqMHz = 287.4

	return [NumDesigns]Config{d1, d2, d3, d4}
}

// GetConfig returns the Table 1 configuration for a design.
func GetConfig(id DesignID) Config {
	if id < 0 || id >= NumDesigns {
		panic(fmt.Sprintf("sim: invalid design %d", id))
	}
	return Configs()[id]
}

// AllDesigns lists the design IDs in order.
var AllDesigns = []DesignID{Design1, Design2, Design3, Design4}

// SpMMDesigns are the designs assuming an uncompressed (dense-format) B.
var SpMMDesigns = []DesignID{Design1, Design2, Design3}

// SharedBitstream reports whether two designs share one bitstream and so
// can be swapped without reconfiguration. "Designs 2 and 3 share the same
// bitstream, differing only in how the host schedules access to HBM
// channels" (§4).
func SharedBitstream(a, b DesignID) bool {
	if a == b {
		return true
	}
	return (a == Design2 && b == Design3) || (a == Design3 && b == Design2)
}
