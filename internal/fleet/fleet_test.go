package fleet

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"misam/internal/dataset"
	"misam/internal/features"
	"misam/internal/mltree"
	"misam/internal/reconfig"
	"misam/internal/sim"
)

var (
	testEngine     *reconfig.Engine
	testEngineOnce sync.Once
	testEngineErr  error
)

func smallEngine(t *testing.T) *reconfig.Engine {
	t.Helper()
	testEngineOnce.Do(func() {
		rng := rand.New(rand.NewSource(17))
		c, err := dataset.GenerateClassifier(rng, 60, 384)
		if err != nil {
			testEngineErr = err
			return
		}
		p, err := reconfig.TrainLatencyPredictor(c, mltree.Config{MaxDepth: 10, MinSamplesLeaf: 2})
		if err != nil {
			testEngineErr = err
			return
		}
		testEngine = reconfig.NewEngine(p, reconfig.DefaultTimeModel(), 0.20)
	})
	if testEngineErr != nil {
		t.Fatal(testEngineErr)
	}
	return testEngine
}

func TestNewNamesAndSize(t *testing.T) {
	f := New(smallEngine(t), 3)
	if f.Size() != 3 {
		t.Fatalf("Size = %d, want 3", f.Size())
	}
	devs := f.Devices()
	if devs[0].Name() != "fpga0" || devs[2].Name() != "fpga2" {
		t.Errorf("device names wrong: %s, %s", devs[0].Name(), devs[2].Name())
	}
	if New(smallEngine(t), 0).Size() != 1 {
		t.Error("n<1 should clamp to one device")
	}
}

func TestAcquireReleaseExclusivity(t *testing.T) {
	f := New(smallEngine(t), 2)
	ctx := context.Background()
	d1, err := f.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := f.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Fatal("same device acquired twice")
	}
	// Pool is drained: a third acquire must respect the deadline.
	short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := f.Acquire(short); err != context.DeadlineExceeded {
		t.Fatalf("drained-pool acquire err = %v, want DeadlineExceeded", err)
	}
	f.Release(d1)
	d3, err := f.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d3 != d1 {
		t.Error("released device not recycled")
	}
	f.Release(d2)
	f.Release(d3)
}

func TestAcquireCancelled(t *testing.T) {
	f := New(smallEngine(t), 1)
	d, err := f.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Acquire(ctx); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	f.Release(d)
	// An idle device is handed out even under a cancelled context (the
	// non-blocking fast path), so callers holding work can still drain.
	if got, err := f.Acquire(ctx); err != nil || got != d {
		t.Fatalf("fast-path acquire = %v, %v", got, err)
	}
	f.Release(d)
}

func TestDoReleasesOnPanicFreePath(t *testing.T) {
	f := New(smallEngine(t), 1)
	for i := 0; i < 5; i++ {
		err := f.Do(context.Background(), func(d *reconfig.Device) error {
			d.ForceLoad(sim.Design2)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// If Do leaked the device, this acquire would block past the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	d, err := f.Acquire(ctx)
	if err != nil {
		t.Fatalf("device leaked by Do: %v", err)
	}
	f.Release(d)
}

// TestFleetConcurrentDo hammers a small fleet from many goroutines under
// -race: every transaction lands on an exclusively-held device, so the
// per-device request counters must sum to the job count exactly.
func TestFleetConcurrentDo(t *testing.T) {
	eng := smallEngine(t)
	f := New(eng, 3)
	const jobs = 60
	var wg sync.WaitGroup
	var inFlight, maxInFlight int64
	var mu sync.Mutex
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := f.Do(context.Background(), func(d *reconfig.Device) error {
				mu.Lock()
				inFlight++
				if inFlight > maxInFlight {
					maxInFlight = inFlight
				}
				if inFlight > int64(f.Size()) {
					t.Errorf("%d holders of a %d-device fleet", inFlight, f.Size())
				}
				mu.Unlock()
				var v features.Vector
				d.DecideApply(v, sim.AllDesigns[i%4], 1)
				mu.Lock()
				inFlight--
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	var total int64
	for _, d := range f.Devices() {
		total += d.Stats().Requests
	}
	if total != jobs {
		t.Errorf("fleet committed %d transactions, want %d", total, jobs)
	}
	if maxInFlight < 2 {
		t.Logf("note: max concurrency observed %d (machine may be single-core)", maxInFlight)
	}
}
