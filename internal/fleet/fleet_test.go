package fleet

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"misam/internal/dataset"
	"misam/internal/features"
	"misam/internal/mltree"
	"misam/internal/reconfig"
	"misam/internal/sim"
)

var (
	testEngine     *reconfig.Engine
	testEngineOnce sync.Once
	testEngineErr  error
)

func smallEngine(t *testing.T) *reconfig.Engine {
	t.Helper()
	testEngineOnce.Do(func() {
		rng := rand.New(rand.NewSource(17))
		c, err := dataset.GenerateClassifier(rng, 60, 384)
		if err != nil {
			testEngineErr = err
			return
		}
		p, err := reconfig.TrainLatencyPredictor(c, mltree.Config{MaxDepth: 10, MinSamplesLeaf: 2})
		if err != nil {
			testEngineErr = err
			return
		}
		testEngine = reconfig.NewEngine(p, reconfig.DefaultTimeModel(), 0.20)
	})
	if testEngineErr != nil {
		t.Fatal(testEngineErr)
	}
	return testEngine
}

func TestNewNamesAndSize(t *testing.T) {
	f := New(smallEngine(t), 3)
	if f.Size() != 3 {
		t.Fatalf("Size = %d, want 3", f.Size())
	}
	devs := f.Devices()
	if devs[0].Name() != "fpga0" || devs[2].Name() != "fpga2" {
		t.Errorf("device names wrong: %s, %s", devs[0].Name(), devs[2].Name())
	}
	if New(smallEngine(t), 0).Size() != 1 {
		t.Error("n<1 should clamp to one device")
	}
}

func TestAcquireReleaseExclusivity(t *testing.T) {
	f := New(smallEngine(t), 2)
	ctx := context.Background()
	d1, err := f.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := f.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Fatal("same device acquired twice")
	}
	// Pool is drained: a third acquire must respect the deadline.
	short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := f.Acquire(short); err != context.DeadlineExceeded {
		t.Fatalf("drained-pool acquire err = %v, want DeadlineExceeded", err)
	}
	f.Release(d1)
	d3, err := f.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d3 != d1 {
		t.Error("released device not recycled")
	}
	f.Release(d2)
	f.Release(d3)
}

func TestAcquireCancelled(t *testing.T) {
	f := New(smallEngine(t), 1)
	d, err := f.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Acquire(ctx); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	f.Release(d)
	// An idle device is handed out even under a cancelled context (the
	// non-blocking fast path), so callers holding work can still drain.
	if got, err := f.Acquire(ctx); err != nil || got != d {
		t.Fatalf("fast-path acquire = %v, %v", got, err)
	}
	f.Release(d)
}

func TestDoReleasesOnPanicFreePath(t *testing.T) {
	f := New(smallEngine(t), 1)
	for i := 0; i < 5; i++ {
		err := f.Do(context.Background(), func(d *reconfig.Device) error {
			d.ForceLoad(sim.Design2)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// If Do leaked the device, this acquire would block past the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	d, err := f.Acquire(ctx)
	if err != nil {
		t.Fatalf("device leaked by Do: %v", err)
	}
	f.Release(d)
}

// TestFleetConcurrentDo hammers a small fleet from many goroutines under
// -race: every transaction lands on an exclusively-held device, so the
// per-device request counters must sum to the job count exactly.
func TestFleetConcurrentDo(t *testing.T) {
	eng := smallEngine(t)
	f := New(eng, 3)
	const jobs = 60
	var wg sync.WaitGroup
	var inFlight, maxInFlight int64
	var mu sync.Mutex
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := f.Do(context.Background(), func(d *reconfig.Device) error {
				mu.Lock()
				inFlight++
				if inFlight > maxInFlight {
					maxInFlight = inFlight
				}
				if inFlight > int64(f.Size()) {
					t.Errorf("%d holders of a %d-device fleet", inFlight, f.Size())
				}
				mu.Unlock()
				var v features.Vector
				d.DecideApply(v, sim.AllDesigns[i%4], 1)
				mu.Lock()
				inFlight--
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	var total int64
	for _, d := range f.Devices() {
		total += d.Stats().Requests
	}
	if total != jobs {
		t.Errorf("fleet committed %d transactions, want %d", total, jobs)
	}
	if maxInFlight < 2 {
		t.Logf("note: max concurrency observed %d (machine may be single-core)", maxInFlight)
	}
}

func TestReleaseDoubleReleasePanics(t *testing.T) {
	f := New(smallEngine(t), 1)
	d, err := f.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	f.Release(d)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double release did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, d.Name()) {
			t.Fatalf("panic %v does not name device %s", r, d.Name())
		}
	}()
	f.Release(d)
}

func TestReleaseForeignDevicePanics(t *testing.T) {
	f := New(smallEngine(t), 1)
	stranger := reconfig.NewDevice("stranger", smallEngine(t))
	defer func() {
		if recover() == nil {
			t.Fatal("releasing a foreign device did not panic")
		}
	}()
	f.Release(stranger)
}

// TestAcquirePlainFIFORotation pins the placement refactor's
// compatibility contract: without a preference the pool behaves exactly
// like the old channel pool — longest-idle device first, released
// devices go to the back of the line.
func TestAcquirePlainFIFORotation(t *testing.T) {
	f := New(smallEngine(t), 3)
	ctx := context.Background()
	want := []string{"fpga0", "fpga1", "fpga2", "fpga0", "fpga1", "fpga2"}
	for i, name := range want {
		d, err := f.Acquire(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if d.Name() != name {
			t.Fatalf("acquire %d = %s, want %s (FIFO rotation broken)", i, d.Name(), name)
		}
		f.Release(d)
	}
	st := f.Stats()
	if st.Preferred != 0 || st.AffinityHits != 0 {
		t.Errorf("plain acquires counted as preferred: %+v", st)
	}
}

func TestAcquirePreferredPicksLoadedDevice(t *testing.T) {
	f := New(smallEngine(t), 3)
	ctx := context.Background()
	devs := f.Devices()
	devs[1].ForceLoad(sim.Design1)
	devs[2].ForceLoad(sim.Design2)

	// Exact match beats FIFO order: fpga2 holds Design2 even though
	// fpga0 has been idle longest.
	d, err := f.AcquirePreferred(ctx, sim.Design2)
	if err != nil {
		t.Fatal(err)
	}
	if d != devs[2] {
		t.Fatalf("preferred acquire got %s, want fpga2", d.Name())
	}
	// Shared bitstream counts as a hit: Design3 shares Design2's.
	d2, err := f.AcquirePreferred(ctx, sim.Design3)
	if err != nil {
		t.Fatal(err)
	}
	if d2 != devs[2] && d2.Name() != "fpga2" {
		// fpga2 is held; no other device shares Design3's bitstream, so
		// the fallback is the longest-idle device.
		if d2 != devs[0] {
			t.Fatalf("fallback acquire got %s, want fpga0", d2.Name())
		}
	}
	f.Release(d)
	f.Release(d2)
	st := f.Stats()
	if st.Preferred != 2 || st.AffinityHits != 1 || st.AffinityMisses != 1 {
		t.Errorf("stats = %+v, want 2 preferred / 1 hit / 1 miss", st)
	}
	if got := devs[2].Stats().ReconfigsAvoided; got != 1 {
		t.Errorf("fpga2 ReconfigsAvoided = %d, want 1", got)
	}
}

func TestAcquirePreferredSharedBitstreamMatch(t *testing.T) {
	f := New(smallEngine(t), 2)
	devs := f.Devices()
	devs[1].ForceLoad(sim.Design3)
	d, err := f.AcquirePreferred(context.Background(), sim.Design2)
	if err != nil {
		t.Fatal(err)
	}
	if d != devs[1] {
		t.Fatalf("shared-bitstream acquire got %s, want fpga1", d.Name())
	}
	f.Release(d)
	if st := f.Stats(); st.AffinityHits != 1 {
		t.Errorf("shared bitstream not counted as hit: %+v", st)
	}
}

func TestTryAcquire(t *testing.T) {
	f := New(smallEngine(t), 2)
	d := f.Devices()[1]
	if !f.TryAcquire(d) {
		t.Fatal("TryAcquire on idle device failed")
	}
	if f.TryAcquire(d) {
		t.Fatal("TryAcquire on held device succeeded")
	}
	f.Release(d)
	if !f.TryAcquire(d) {
		t.Fatal("TryAcquire after release failed")
	}
	f.Release(d)
}

// TestSaturatedHandoverIsFIFO pins the starvation guarantee: once every
// device is busy, waiters are served strictly in arrival order, a
// later-arriving preferred request cannot jump an earlier plain one.
func TestSaturatedHandoverIsFIFO(t *testing.T) {
	f := New(smallEngine(t), 1)
	ctx := context.Background()
	held, err := f.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	held.ForceLoad(sim.Design1)

	order := make(chan string, 2)
	var started sync.WaitGroup
	started.Add(2)
	go func() {
		started.Done()
		d, err := f.Acquire(ctx)
		if err == nil {
			order <- "plain"
			f.Release(d)
		}
	}()
	// Ensure the plain waiter queues first.
	for f.Queued() == 0 {
		time.Sleep(time.Millisecond)
	}
	go func() {
		started.Done()
		d, err := f.AcquirePreferred(ctx, sim.Design1)
		if err == nil {
			order <- "preferred"
			f.Release(d)
		}
	}()
	for f.Queued() < 2 {
		time.Sleep(time.Millisecond)
	}
	started.Wait()
	f.Release(held)
	if first := <-order; first != "plain" {
		t.Fatalf("first handover went to %q; preferred request jumped the FIFO queue", first)
	}
	if second := <-order; second != "preferred" {
		t.Fatalf("second handover went to %q", second)
	}
}

// TestAcquirePreferredHammer drives skewed preferred traffic and plain
// traffic through a small fleet concurrently under -race: every request
// must complete (no starvation of the non-preferred minority), the
// checkout accounting must balance exactly, and nothing may still be
// held at the end.
func TestAcquirePreferredHammer(t *testing.T) {
	eng := smallEngine(t)
	f := New(eng, 4)
	const jobs = 400
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	var plainDone, prefDone int64
	var mu sync.Mutex
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var v features.Vector
			if i%5 == 0 {
				// The plain minority: must never starve behind affinity.
				err := f.Do(ctx, func(d *reconfig.Device) error {
					d.DecideApply(v, sim.AllDesigns[i%4], 1)
					return nil
				})
				if err != nil {
					t.Errorf("plain job %d: %v", i, err)
					return
				}
				mu.Lock()
				plainDone++
				mu.Unlock()
				return
			}
			// Skewed preference: 80% of preferred traffic wants Design1.
			design := sim.Design1
			if i%7 == 0 {
				design = sim.Design4
			}
			d, err := f.AcquirePreferred(ctx, design)
			if err != nil {
				t.Errorf("preferred job %d: %v", i, err)
				return
			}
			d.DecideApply(v, design, 1)
			f.Release(d)
			mu.Lock()
			prefDone++
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if plainDone+prefDone != jobs {
		t.Fatalf("completed %d+%d jobs, want %d", plainDone, prefDone, jobs)
	}
	st := f.Stats()
	if st.Acquires != jobs {
		t.Errorf("Acquires = %d, want %d", st.Acquires, jobs)
	}
	if st.Preferred != prefDone {
		t.Errorf("Preferred = %d, want %d", st.Preferred, prefDone)
	}
	if st.AffinityHits+st.AffinityMisses != st.Preferred {
		t.Errorf("hits %d + misses %d != preferred %d", st.AffinityHits, st.AffinityMisses, st.Preferred)
	}
	var total int64
	for _, d := range f.Devices() {
		total += d.Stats().Requests
	}
	if total != jobs {
		t.Errorf("device transactions = %d, want %d", total, jobs)
	}
	// The pool must be fully idle again: all devices acquirable.
	for i := 0; i < f.Size(); i++ {
		d, err := f.Acquire(ctx)
		if err != nil {
			t.Fatalf("device leaked by hammer: %v", err)
		}
		defer f.Release(d)
	}
}
