// Package fleet manages a pool of reconfigurable accelerators behind a
// serving layer. Each reconfig.Device is checked out exclusively for the
// duration of one request — per-device serialization — while different
// devices serve different requests concurrently. Admission is
// context-aware: a caller whose deadline expires while every device is
// busy is turned away instead of queueing forever.
//
// Beyond the plain FIFO checkout (Acquire/Do), the pool is
// bitstream-aware: the idle set is indexed by each device's loaded
// design, so AcquirePreferred can hand a request an idle device that
// already holds its predicted winner — avoiding a reconfiguration the
// request would otherwise risk on an arbitrary device — and
// AcquireScored generalizes that to an arbitrary placement cost model
// (see internal/placement). Selection only ever reorders *which idle
// device* a request gets; admission order for a busy fleet stays FIFO,
// so non-preferred requests can never starve behind affinity traffic.
//
// This is the serving shape of the paper's §6.3 heterogeneous-fleet
// extension: stateless models (selector, latency predictor) shared
// read-only across N devices that each track their own bitstream.
package fleet

import (
	"context"
	"fmt"
	"sync"

	"misam/internal/reconfig"
	"misam/internal/sim"
)

// Scorer prices one candidate device for a request: the predicted cost
// of serving the request on a device whose bitstream state is st while
// `queued` other requests are waiting fleet-wide. Lower is better.
// internal/placement.Request is the production implementation.
type Scorer interface {
	Score(st reconfig.State, queued int) float64
}

// Stats are the pool's placement counters, cumulative since construction.
type Stats struct {
	// Acquires counts successful checkouts (all flavours, including
	// TryAcquire).
	Acquires int64 `json:"acquires"`
	// Preferred counts checkouts that carried a design preference
	// (AcquirePreferred/AcquireScored through an idle pool; blocked
	// acquisitions are counted when the device is finally handed over).
	Preferred int64 `json:"preferred"`
	// AffinityHits counts preferred checkouts served by a device already
	// holding the predicted winner's bitstream (or one sharing it);
	// AffinityMisses counts the fallbacks to a non-matching device.
	AffinityHits   int64 `json:"affinity_hits"`
	AffinityMisses int64 `json:"affinity_misses"`
	// Waits counts acquisitions that found every device busy and queued.
	Waits int64 `json:"waits"`
}

// waiter is one blocked acquisition. Delivery happens under the fleet
// lock into the buffered channel, so after the lock is held a waiter is
// either still queued or already owns a device — never in between.
type waiter struct {
	ch     chan *reconfig.Device
	design sim.DesignID
	pref   bool
}

// Fleet is a fixed set of devices with checkout-based admission and
// bitstream-aware selection among idle devices.
type Fleet struct {
	devices []*reconfig.Device

	mu sync.Mutex
	// idle is FIFO: idle[0] has been idle longest. The design index is
	// implicit — each idle device's loaded bitstream is read through the
	// wait-free Device.Loaded mirror at selection time, which can never
	// go stale while the device is idle: a device's bitstream only
	// changes while it is checked out.
	idle    []*reconfig.Device
	held    map[*reconfig.Device]bool
	waiters []*waiter
	stats   Stats
}

// New builds a fleet of n fresh devices (named "fpga0".."fpgaN-1"), all
// pricing their decisions with the same immutable engine.
func New(e *reconfig.Engine, n int) *Fleet {
	if n < 1 {
		n = 1
	}
	devs := make([]*reconfig.Device, n)
	for i := range devs {
		devs[i] = reconfig.NewDevice(fmt.Sprintf("fpga%d", i), e)
	}
	return FromDevices(devs)
}

// FromDevices builds a fleet over caller-constructed devices (for
// heterogeneous pools: devices may differ in engine, threshold, or
// reconfiguration mode).
func FromDevices(devs []*reconfig.Device) *Fleet {
	return &Fleet{
		devices: devs,
		idle:    append([]*reconfig.Device(nil), devs...),
		held:    make(map[*reconfig.Device]bool, len(devs)),
	}
}

// Size is the number of devices in the fleet.
func (f *Fleet) Size() int { return len(f.devices) }

// Devices returns the fleet's devices (for stats snapshots; do not use a
// device without acquiring it).
func (f *Fleet) Devices() []*reconfig.Device {
	return append([]*reconfig.Device(nil), f.devices...)
}

// Stats snapshots the pool's placement counters.
func (f *Fleet) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Queued reports how many acquisitions are currently blocked waiting for
// a device — the fleet-wide queue pressure the placement cost model
// folds into its scores.
func (f *Fleet) Queued() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}

// Acquire checks a device out of the fleet, blocking until one is idle or
// ctx is done. The caller owns the device exclusively until Release.
// Selection is FIFO over the idle set (longest-idle first), exactly the
// pre-placement pool's behavior.
func (f *Fleet) Acquire(ctx context.Context) (*reconfig.Device, error) {
	return f.acquire(ctx, 0, false, nil)
}

// AcquirePreferred is Acquire with a bitstream preference: when any idle
// device already holds design (or a bitstream shared with it), that
// device is handed out and the request pays no reconfiguration;
// otherwise it falls back to the longest-idle device. A busy fleet
// queues FIFO regardless of preference — affinity reorders devices,
// never requests.
func (f *Fleet) AcquirePreferred(ctx context.Context, design sim.DesignID) (*reconfig.Device, error) {
	return f.acquire(ctx, design, true, nil)
}

// AcquireScored is AcquirePreferred driven by a placement cost model:
// the idle device with the lowest sc.Score wins (FIFO order breaks
// ties), with design used only for the affinity-hit accounting. A nil
// scorer degrades to AcquirePreferred.
func (f *Fleet) AcquireScored(ctx context.Context, design sim.DesignID, sc Scorer) (*reconfig.Device, error) {
	return f.acquire(ctx, design, true, sc)
}

func (f *Fleet) acquire(ctx context.Context, design sim.DesignID, pref bool, sc Scorer) (*reconfig.Device, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	f.mu.Lock()
	if len(f.idle) > 0 {
		// Hand out an idle device even when ctx is already expiring, so
		// callers holding work can still drain a healthy pool.
		d := f.pickLocked(design, pref, sc)
		f.checkoutLocked(d, design, pref)
		f.mu.Unlock()
		return d, nil
	}
	w := &waiter{ch: make(chan *reconfig.Device, 1), design: design, pref: pref}
	f.waiters = append(f.waiters, w)
	f.stats.Waits++
	f.mu.Unlock()

	select {
	case d := <-w.ch:
		return d, nil
	case <-ctx.Done():
		f.mu.Lock()
		for i, q := range f.waiters {
			if q == w {
				f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
				f.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		f.mu.Unlock()
		// Not queued anymore: a Release delivered a device concurrently
		// with the deadline (delivery happens under the lock into the
		// buffered channel, so it is already there). The caller is being
		// turned away — put the device straight back.
		f.Release(<-w.ch)
		return nil, ctx.Err()
	}
}

// pickLocked selects which idle device a request gets; f.mu must be held
// and f.idle must be non-empty. Plain acquisitions take the
// longest-idle device (FIFO). Preferred acquisitions take an exact
// bitstream match first, then a shared-bitstream match, then fall back
// to FIFO; scored acquisitions take the cost-model argmin.
func (f *Fleet) pickLocked(design sim.DesignID, pref bool, sc Scorer) *reconfig.Device {
	if !pref {
		return f.idle[0]
	}
	if sc != nil {
		best, bestScore := f.idle[0], sc.Score(f.idle[0].LoadedState(), len(f.waiters))
		for _, d := range f.idle[1:] {
			if s := sc.Score(d.LoadedState(), len(f.waiters)); s < bestScore {
				best, bestScore = d, s
			}
		}
		return best
	}
	var shared *reconfig.Device
	for _, d := range f.idle {
		id, ok := d.Loaded()
		if !ok {
			continue
		}
		if id == design {
			return d
		}
		if shared == nil && sim.SharedBitstream(id, design) {
			shared = d
		}
	}
	if shared != nil {
		return shared
	}
	return f.idle[0]
}

// checkoutLocked removes d from the idle set, marks it held, and folds
// the acquisition into the placement counters; f.mu must be held.
func (f *Fleet) checkoutLocked(d *reconfig.Device, design sim.DesignID, pref bool) {
	for i, q := range f.idle {
		if q == d {
			f.idle = append(f.idle[:i], f.idle[i+1:]...)
			break
		}
	}
	f.held[d] = true
	f.noteAcquireLocked(d, design, pref)
}

// noteAcquireLocked accounts one checkout; f.mu must be held.
func (f *Fleet) noteAcquireLocked(d *reconfig.Device, design sim.DesignID, pref bool) {
	f.stats.Acquires++
	if !pref {
		return
	}
	f.stats.Preferred++
	if id, ok := d.Loaded(); ok && sim.SharedBitstream(id, design) {
		f.stats.AffinityHits++
		d.CountReconfigAvoided()
	} else {
		f.stats.AffinityMisses++
	}
}

// TryAcquire checks out one specific device if and only if it is idle
// right now, without blocking. The portfolio rebalancer uses it to
// preload bitstreams on idle devices without ever delaying a request.
func (f *Fleet) TryAcquire(d *reconfig.Device) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, q := range f.idle {
		if q == d {
			f.idle = append(f.idle[:i], f.idle[i+1:]...)
			f.held[d] = true
			f.stats.Acquires++
			return true
		}
	}
	return false
}

// Release returns a device to the pool, handing it to the oldest blocked
// acquisition if one is queued. Releasing a device that is not checked
// out — a double release, or a release of a foreign device — panics
// with the device name: the pool's accounting (and the design index
// over idle devices) would be silently corrupted otherwise, so the
// invariant is enforced loudly. Do wraps the acquire/release pair
// safely.
func (f *Fleet) Release(d *reconfig.Device) {
	f.mu.Lock()
	if !f.held[d] {
		f.mu.Unlock()
		panic(fmt.Sprintf("fleet: double release of device %s (release without a matching acquire)", d.Name()))
	}
	if len(f.waiters) > 0 {
		// FIFO handover: the oldest waiter gets the device regardless of
		// its preference — fairness beats affinity once the fleet is
		// saturated, so non-preferred requests can never starve.
		w := f.waiters[0]
		f.waiters = f.waiters[1:]
		f.noteAcquireLocked(d, w.design, w.pref)
		w.ch <- d // buffered; never blocks under the lock
		f.mu.Unlock()
		return
	}
	delete(f.held, d)
	f.idle = append(f.idle, d)
	f.mu.Unlock()
}

// Do acquires a device, runs fn with it, and releases it — the
// recommended request path.
func (f *Fleet) Do(ctx context.Context, fn func(*reconfig.Device) error) error {
	d, err := f.Acquire(ctx)
	if err != nil {
		return err
	}
	defer f.Release(d)
	return fn(d)
}

// DoPreferred is Do with a bitstream preference (see AcquirePreferred).
func (f *Fleet) DoPreferred(ctx context.Context, design sim.DesignID, fn func(*reconfig.Device) error) error {
	d, err := f.AcquirePreferred(ctx, design)
	if err != nil {
		return err
	}
	defer f.Release(d)
	return fn(d)
}
