// Package fleet manages a pool of reconfigurable accelerators behind a
// serving layer. Each reconfig.Device is checked out exclusively for the
// duration of one request — per-device serialization — while different
// devices serve different requests concurrently. Admission is
// context-aware: a caller whose deadline expires while every device is
// busy is turned away instead of queueing forever. This is the serving
// shape of the paper's §6.3 heterogeneous-fleet extension: stateless
// models (selector, latency predictor) shared read-only across N devices
// that each track their own bitstream.
package fleet

import (
	"context"
	"fmt"

	"misam/internal/reconfig"
)

// Fleet is a fixed set of devices with checkout-based admission.
type Fleet struct {
	devices []*reconfig.Device
	idle    chan *reconfig.Device
}

// New builds a fleet of n fresh devices (named "fpga0".."fpgaN-1"), all
// pricing their decisions with the same immutable engine.
func New(e *reconfig.Engine, n int) *Fleet {
	if n < 1 {
		n = 1
	}
	devs := make([]*reconfig.Device, n)
	for i := range devs {
		devs[i] = reconfig.NewDevice(fmt.Sprintf("fpga%d", i), e)
	}
	return FromDevices(devs)
}

// FromDevices builds a fleet over caller-constructed devices (for
// heterogeneous pools: devices may differ in engine, threshold, or
// reconfiguration mode).
func FromDevices(devs []*reconfig.Device) *Fleet {
	f := &Fleet{
		devices: devs,
		idle:    make(chan *reconfig.Device, len(devs)),
	}
	for _, d := range devs {
		f.idle <- d
	}
	return f
}

// Size is the number of devices in the fleet.
func (f *Fleet) Size() int { return len(f.devices) }

// Devices returns the fleet's devices (for stats snapshots; do not use a
// device without acquiring it).
func (f *Fleet) Devices() []*reconfig.Device {
	return append([]*reconfig.Device(nil), f.devices...)
}

// Acquire checks a device out of the fleet, blocking until one is idle or
// ctx is done. The caller owns the device exclusively until Release.
func (f *Fleet) Acquire(ctx context.Context) (*reconfig.Device, error) {
	// Prefer an idle device even when ctx is already expiring, but never
	// block past the deadline.
	select {
	case d := <-f.idle:
		return d, nil
	default:
	}
	select {
	case d := <-f.idle:
		return d, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Release returns a device to the idle pool. Releasing a device that was
// not acquired (or releasing twice) corrupts the pool; Do wraps the pair
// safely.
func (f *Fleet) Release(d *reconfig.Device) {
	f.idle <- d
}

// Do acquires a device, runs fn with it, and releases it — the
// recommended request path.
func (f *Fleet) Do(ctx context.Context, fn func(*reconfig.Device) error) error {
	d, err := f.Acquire(ctx)
	if err != nil {
		return err
	}
	defer f.Release(d)
	return fn(d)
}
