package spgemm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"misam/internal/sparse"
)

// variantResult names one kernel realization for the cross-check.
type variantResult struct {
	name string
	c    *sparse.CSR
	ops  OpCount
}

func runAllVariants(a, b *sparse.CSR) []variantResult {
	rw, rwOps := RowWise(a, b)
	rd, rdOps := RowWiseDense(a, b)
	esc, escOps := OuterESC(a.ToCSC(), b)
	op, opOps := Outer(a.ToCSC(), b)
	ip, ipOps := Inner(a, b.ToCSC())
	ih, ihOps := InnerHash(a, b.ToCSC())
	return []variantResult{
		{"RowWise", rw, rwOps},
		{"RowWiseDense", rd, rdOps},
		{"OuterESC", esc, escOps},
		{"Outer", op, opOps},
		{"Inner", ip, ipOps},
		{"InnerHash", ih, ihOps},
	}
}

func TestPropertyAllVariantsAgree(t *testing.T) {
	f := func(seed int64, mIn, kIn, nIn, dIn uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(mIn)%12 + 1
		k := int(kIn)%12 + 1
		n := int(nIn)%12 + 1
		dens := float64(dIn%90+5) / 100
		a := sparse.Uniform(rng, m, k, dens)
		b := sparse.Uniform(rng, k, n, dens)
		want := DenseOracle(a, b)
		for _, v := range runAllVariants(a, b) {
			if !v.c.ToDense().AlmostEqual(want, 1e-9) {
				t.Logf("%s disagrees with oracle", v.name)
				return false
			}
			if v.c.Validate() != nil {
				t.Logf("%s produced invalid CSR", v.name)
				return false
			}
			if v.ops.Multiplies != FlopCount(a, b) {
				t.Logf("%s multiplies %d, want %d", v.name, v.ops.Multiplies, FlopCount(a, b))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVariantsExactStructuralAgreement(t *testing.T) {
	// The row-wise and ESC variants produce identical structure (they
	// never emit a row/column pair absent from the flop pattern).
	rng := rand.New(rand.NewSource(1))
	a := sparse.Uniform(rng, 30, 25, 0.2)
	b := sparse.Uniform(rng, 25, 20, 0.2)
	rw, _ := RowWise(a, b)
	rd, _ := RowWiseDense(a, b)
	esc, _ := OuterESC(a.ToCSC(), b)
	if !sparse.EqualCSR(structureOf(rw), structureOf(rd)) {
		t.Error("RowWiseDense structure differs from RowWise")
	}
	if !sparse.EqualCSR(structureOf(rw), structureOf(esc)) {
		t.Error("OuterESC structure differs from RowWise")
	}
}

// structureOf replaces values with 1 so EqualCSR compares patterns only
// (accumulation order perturbs low-order bits).
func structureOf(m *sparse.CSR) *sparse.CSR {
	out := &sparse.CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: m.RowPtr, ColIdx: m.ColIdx, Val: make([]float64, m.NNZ())}
	for i := range out.Val {
		out.Val[i] = 1
	}
	return out
}

func TestOuterESCCountsPartials(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := sparse.Uniform(rng, 20, 20, 0.3)
	b := sparse.Uniform(rng, 20, 20, 0.3)
	_, ops := OuterESC(a.ToCSC(), b)
	if ops.PartialProducts != FlopCount(a, b) {
		t.Errorf("ESC partials %d, want flops %d", ops.PartialProducts, FlopCount(a, b))
	}
	if ops.OutputsWritten > ops.PartialProducts {
		t.Error("outputs cannot exceed partials")
	}
}

func TestRowWiseDenseScratchIsClean(t *testing.T) {
	// Reusing the kernel must not leak accumulator state across calls.
	rng := rand.New(rand.NewSource(3))
	a := sparse.Uniform(rng, 15, 15, 0.3)
	b := sparse.Uniform(rng, 15, 15, 0.3)
	c1, _ := RowWiseDense(a, b)
	c2, _ := RowWiseDense(a, b)
	if !sparse.EqualCSR(c1, c2) {
		t.Error("RowWiseDense is not deterministic across calls")
	}
}

func TestInnerHashEmptyRow(t *testing.T) {
	// Rows of A with no nonzeros must produce empty C rows.
	m := sparse.NewCOO(3, 3)
	m.Append(1, 1, 2)
	m.Normalize()
	a := m.ToCSR()
	b := sparse.Identity(3)
	c, _ := InnerHash(a, b.ToCSC())
	if c.RowNNZ(0) != 0 || c.RowNNZ(2) != 0 || c.At(1, 1) != 2 {
		t.Error("InnerHash mishandled empty rows")
	}
}

func BenchmarkRowWiseVariants(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := sparse.Uniform(rng, 2000, 2000, 0.005)
	bm := sparse.Uniform(rng, 2000, 2000, 0.005)
	b.Run("hashmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RowWise(a, bm)
		}
	})
	b.Run("dense-scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RowWiseDense(a, bm)
		}
	})
}
