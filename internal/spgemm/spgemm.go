// Package spgemm implements the three canonical SpGEMM dataflows the
// paper's Figure 2 describes — inner product, outer product, and row-wise
// (Gustavson) product — plus a dense oracle used to cross-check them.
//
// Each kernel reports an OpCount describing the work it performed. The
// counts differ across dataflows for the same product (e.g. inner product
// performs index intersections that row-wise product avoids), and the
// baseline cost models in internal/baseline consume them.
package spgemm

import (
	"fmt"
	"sort"

	"misam/internal/sparse"
)

// OpCount tallies the work a dataflow performed. The fields correspond to
// the cost drivers §2.1 attributes to each dataflow.
type OpCount struct {
	// Multiplies is the number of scalar multiply-accumulates executed
	// (useful partial products).
	Multiplies int
	// IndexMatches is the number of index comparisons performed during
	// intersection (inner product) or merging.
	IndexMatches int
	// PartialProducts is the number of partial results materialized before
	// final accumulation (outer product's off-chip traffic driver).
	PartialProducts int
	// AFetches / BFetches count operand element reads, including redundant
	// re-fetches (inner product re-reads B's columns once per A row).
	AFetches int
	BFetches int
	// OutputsWritten counts C entries written.
	OutputsWritten int
}

// Dataflow identifies one of the three canonical SpGEMM dataflows.
type Dataflow int

const (
	InnerProduct Dataflow = iota
	OuterProduct
	RowWiseProduct
)

// String returns the paper's abbreviation for the dataflow.
func (d Dataflow) String() string {
	switch d {
	case InnerProduct:
		return "IP"
	case OuterProduct:
		return "OP"
	case RowWiseProduct:
		return "RW"
	default:
		return fmt.Sprintf("Dataflow(%d)", int(d))
	}
}

// Dataflows lists all canonical dataflows in a stable order.
var Dataflows = []Dataflow{InnerProduct, OuterProduct, RowWiseProduct}

// Multiply runs the requested dataflow on A (CSR) and B (CSR) and returns
// C in CSR form together with the operation counts.
func Multiply(d Dataflow, a, b *sparse.CSR) (*sparse.CSR, OpCount, error) {
	if a.Cols != b.Rows {
		return nil, OpCount{}, fmt.Errorf("spgemm: dimension mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	switch d {
	case InnerProduct:
		c, ops := Inner(a, b.ToCSC())
		return c, ops, nil
	case OuterProduct:
		c, ops := Outer(a.ToCSC(), b)
		return c, ops, nil
	case RowWiseProduct:
		c, ops := RowWise(a, b)
		return c, ops, nil
	default:
		return nil, OpCount{}, fmt.Errorf("spgemm: unknown dataflow %v", d)
	}
}

// Inner computes C = A×B with the inner-product dataflow: each row of A
// (CSR) is intersected against each column of B (CSC). This is the
// dataflow that "suffers from redundant fetching of B's columns — once per
// row of A" (§2.1), visible in the BFetches count.
func Inner(a *sparse.CSR, b *sparse.CSC) (*sparse.CSR, OpCount) {
	var ops OpCount
	out := &sparse.CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int, a.Rows+1)}
	for r := 0; r < a.Rows; r++ {
		aCols, aVals := a.Row(r)
		ops.AFetches += len(aCols)
		for c := 0; c < b.Cols; c++ {
			bRows, bVals := b.Col(c)
			ops.BFetches += len(bRows)
			// Two-pointer intersection of the sorted index lists.
			sum := 0.0
			hit := false
			i, j := 0, 0
			for i < len(aCols) && j < len(bRows) {
				ops.IndexMatches++
				switch {
				case aCols[i] == bRows[j]:
					sum += aVals[i] * bVals[j]
					ops.Multiplies++
					hit = true
					i++
					j++
				case aCols[i] < bRows[j]:
					i++
				default:
					j++
				}
			}
			if hit {
				out.ColIdx = append(out.ColIdx, c)
				out.Val = append(out.Val, sum)
				ops.OutputsWritten++
			}
		}
		out.RowPtr[r+1] = len(out.ColIdx)
	}
	return out, ops
}

// Outer computes C = A×B with the outer-product dataflow: column k of A
// (CSC) is paired with row k of B (CSR), producing rank-1 partial
// matrices that are merged at the end. PartialProducts counts the
// materialized intermediate entries — the "partial matrices of C [that]
// can exceed on-chip memory limits" (§2.1).
func Outer(a *sparse.CSC, b *sparse.CSR) (*sparse.CSR, OpCount) {
	var ops OpCount
	partial := sparse.NewCOO(a.Rows, b.Cols)
	for k := 0; k < a.Cols; k++ {
		aRows, aVals := a.Col(k)
		bCols, bVals := b.Row(k)
		ops.AFetches += len(aRows)
		ops.BFetches += len(bCols)
		for i, r := range aRows {
			for j, c := range bCols {
				partial.Append(r, c, aVals[i]*bVals[j])
				ops.Multiplies++
				ops.PartialProducts++
			}
		}
	}
	// Merge phase: sort + coalesce, the decoupled accumulation step.
	partial.Normalize()
	ops.OutputsWritten = partial.NNZ()
	return partial.ToCSR(), ops
}

// RowWise computes C = A×B with the row-wise (Gustavson) dataflow: each
// nonzero A[r,k] scales row k of B into an accumulator for C's row r. No
// index matching is needed; fetches of B rows follow A's irregular column
// pattern (§2.1).
func RowWise(a, b *sparse.CSR) (*sparse.CSR, OpCount) {
	var ops OpCount
	out := &sparse.CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int, a.Rows+1)}
	acc := make(map[int]float64)
	for r := 0; r < a.Rows; r++ {
		clear(acc)
		aCols, aVals := a.Row(r)
		ops.AFetches += len(aCols)
		for i, k := range aCols {
			bCols, bVals := b.Row(k)
			ops.BFetches += len(bCols)
			for j, c := range bCols {
				acc[c] += aVals[i] * bVals[j]
				ops.Multiplies++
			}
		}
		cols := make([]int, 0, len(acc))
		for c := range acc {
			cols = append(cols, c)
		}
		sort.Ints(cols)
		for _, c := range cols {
			out.ColIdx = append(out.ColIdx, c)
			out.Val = append(out.Val, acc[c])
			ops.OutputsWritten++
		}
		out.RowPtr[r+1] = len(out.ColIdx)
	}
	return out, ops
}

// DenseOracle computes C = A×B by expanding both operands to dense form
// and running the textbook triple loop. It is the correctness reference
// for the sparse kernels.
func DenseOracle(a, b *sparse.CSR) *sparse.Dense {
	da, db := a.ToDense(), b.ToDense()
	c := sparse.NewDense(a.Rows, b.Cols)
	for i := 0; i < da.Rows; i++ {
		for k := 0; k < da.Cols; k++ {
			v := da.At(i, k)
			if v == 0 {
				continue
			}
			for j := 0; j < db.Cols; j++ {
				if w := db.At(k, j); w != 0 {
					c.Add(i, j, v*w)
				}
			}
		}
	}
	return c
}

// FlopCount returns the number of useful multiply-accumulates in A×B,
// i.e. the number of (A[i,k], B[k,j]) nonzero pairings. It equals
// OpCount.Multiplies for every dataflow and is the work metric the
// throughput figures normalize by.
func FlopCount(a, b *sparse.CSR) int {
	// For each k, nnz(A[:,k]) * nnz(B[k,:]).
	colNNZ := make([]int, a.Cols)
	for _, c := range a.ColIdx {
		colNNZ[c]++
	}
	total := 0
	for k := 0; k < a.Cols; k++ {
		total += colNNZ[k] * b.RowNNZ(k)
	}
	return total
}
