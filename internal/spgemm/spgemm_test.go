package spgemm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"misam/internal/sparse"
)

func small(t *testing.T) (*sparse.CSR, *sparse.CSR) {
	t.Helper()
	a := sparse.NewCOO(2, 3)
	a.Append(0, 0, 1)
	a.Append(0, 2, 2)
	a.Append(1, 1, 3)
	a.Normalize()
	b := sparse.NewCOO(3, 2)
	b.Append(0, 0, 4)
	b.Append(1, 1, 5)
	b.Append(2, 0, 6)
	b.Normalize()
	return a.ToCSR(), b.ToCSR()
}

func TestAllDataflowsMatchOracleOnSmall(t *testing.T) {
	a, b := small(t)
	want := DenseOracle(a, b)
	for _, d := range Dataflows {
		c, ops, err := Multiply(d, a, b)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if !c.ToDense().AlmostEqual(want, 1e-12) {
			t.Errorf("%v: wrong product", d)
		}
		if ops.Multiplies != FlopCount(a, b) {
			t.Errorf("%v: Multiplies = %d, want %d", d, ops.Multiplies, FlopCount(a, b))
		}
	}
}

func TestMultiplyDimensionMismatch(t *testing.T) {
	a, _ := small(t)
	if _, _, err := Multiply(RowWiseProduct, a, a); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestDataflowString(t *testing.T) {
	if InnerProduct.String() != "IP" || OuterProduct.String() != "OP" || RowWiseProduct.String() != "RW" {
		t.Error("unexpected dataflow abbreviations")
	}
	if Dataflow(99).String() != "Dataflow(99)" {
		t.Error("unknown dataflow formatting")
	}
}

func TestUnknownDataflowError(t *testing.T) {
	a, b := small(t)
	if _, _, err := Multiply(Dataflow(99), a, b); err == nil {
		t.Fatal("expected error for unknown dataflow")
	}
}

func TestIdentityIsNeutral(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := sparse.Uniform(rng, 12, 12, 0.3)
	id := sparse.Identity(12)
	for _, d := range Dataflows {
		c, _, err := Multiply(d, a, id)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if !sparse.EqualCSR(a, c) {
			t.Errorf("%v: A×I != A", d)
		}
	}
}

func TestPropertyDataflowsAgree(t *testing.T) {
	f := func(seed int64, mIn, kIn, nIn, dIn uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(mIn)%15 + 1
		k := int(kIn)%15 + 1
		n := int(nIn)%15 + 1
		dens := float64(dIn%90+5) / 100
		a := sparse.Uniform(rng, m, k, dens)
		b := sparse.Uniform(rng, k, n, dens)
		want := DenseOracle(a, b)
		for _, d := range Dataflows {
			c, ops, err := Multiply(d, a, b)
			if err != nil {
				return false
			}
			if !c.ToDense().AlmostEqual(want, 1e-9) {
				return false
			}
			if c.Validate() != nil {
				return false
			}
			if ops.Multiplies != FlopCount(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInnerProductRefetchesB(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := sparse.Uniform(rng, 20, 20, 0.4)
	b := sparse.Uniform(rng, 20, 20, 0.4)
	_, ipOps, _ := Multiply(InnerProduct, a, b)
	_, rwOps, _ := Multiply(RowWiseProduct, a, b)
	// §2.1: inner product re-fetches B's columns once per A row, so its
	// BFetches exceed row-wise's.
	if ipOps.BFetches <= rwOps.BFetches {
		t.Errorf("inner BFetches %d not greater than row-wise %d", ipOps.BFetches, rwOps.BFetches)
	}
	// Row-wise needs no index matching.
	if rwOps.IndexMatches != 0 {
		t.Errorf("row-wise IndexMatches = %d, want 0", rwOps.IndexMatches)
	}
	if ipOps.IndexMatches == 0 {
		t.Error("inner product should perform index matches")
	}
}

func TestOuterProductMaterializesPartials(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := sparse.Uniform(rng, 25, 25, 0.3)
	b := sparse.Uniform(rng, 25, 25, 0.3)
	_, opOps, _ := Multiply(OuterProduct, a, b)
	if opOps.PartialProducts != opOps.Multiplies {
		t.Errorf("outer product partials %d != multiplies %d", opOps.PartialProducts, opOps.Multiplies)
	}
	if opOps.PartialProducts < opOps.OutputsWritten {
		t.Error("partial products cannot be fewer than final outputs")
	}
	_, rwOps, _ := Multiply(RowWiseProduct, a, b)
	if rwOps.PartialProducts != 0 {
		t.Errorf("row-wise PartialProducts = %d, want 0", rwOps.PartialProducts)
	}
}

func TestEmptyOperands(t *testing.T) {
	empty := sparse.NewCOO(5, 5).ToCSR()
	id := sparse.Identity(5)
	for _, d := range Dataflows {
		c, ops, err := Multiply(d, empty, id)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if c.NNZ() != 0 || ops.Multiplies != 0 {
			t.Errorf("%v: empty×I should be empty", d)
		}
	}
}

func TestFlopCountMatchesOracleWork(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := sparse.Uniform(rng, 30, 18, 0.25)
	b := sparse.Uniform(rng, 18, 22, 0.25)
	_, ops, _ := Multiply(RowWiseProduct, a, b)
	if ops.Multiplies != FlopCount(a, b) {
		t.Errorf("FlopCount %d != kernel multiplies %d", FlopCount(a, b), ops.Multiplies)
	}
}
