package spgemm

import "misam/internal/sparse"

// Symbolic computes the exact per-row output population of C = A×B
// without touching values — the symbolic phase real SpGEMM libraries run
// first to size allocations, and the exact counterpart of the capped
// upper bound the cycle simulator uses for its C write-back estimate.
// It runs in O(flops) with O(cols) scratch.
func Symbolic(a, b *sparse.CSR) []int {
	out := make([]int, a.Rows)
	mark := make([]int, b.Cols)
	for i := range mark {
		mark[i] = -1
	}
	for r := 0; r < a.Rows; r++ {
		count := 0
		aCols, _ := a.Row(r)
		for _, k := range aCols {
			bCols, _ := b.Row(k)
			for _, c := range bCols {
				if mark[c] != r {
					mark[c] = r
					count++
				}
			}
		}
		out[r] = count
	}
	return out
}

// SymbolicNNZ sums the symbolic row populations.
func SymbolicNNZ(a, b *sparse.CSR) int {
	total := 0
	for _, n := range Symbolic(a, b) {
		total += n
	}
	return total
}

// FillIn reports nnz(C)/nnz(A), the growth factor graph analysts watch
// when squaring adjacency matrices.
func FillIn(a, b *sparse.CSR) float64 {
	if a.NNZ() == 0 {
		return 0
	}
	return float64(SymbolicNNZ(a, b)) / float64(a.NNZ())
}
