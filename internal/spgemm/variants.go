package spgemm

import (
	"sort"

	"misam/internal/sparse"
)

// Alternative kernel implementations mirroring the accelerator families
// §2.1 cites: a dense-scratchpad Gustavson (the classic CPU realization
// behind MKL and MatRaptor-style row merging), an explicit
// Expand-Sort-Compress outer product (OuterSPACE/SpArch), and a
// hash-probe inner product (ExTensor-style intersection). Each computes
// the same product as the primary kernels — the property tests
// cross-validate all of them against each other and the dense oracle.

// RowWiseDense computes C = A×B with Gustavson's algorithm using a dense
// accumulator row plus an occupancy list instead of a hash map. This is
// the textbook O(flops + nnz(C)) realization; it trades O(N) scratch
// space for branch-free accumulation.
func RowWiseDense(a, b *sparse.CSR) (*sparse.CSR, OpCount) {
	var ops OpCount
	out := &sparse.CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int, a.Rows+1)}
	acc := make([]float64, b.Cols)
	occupied := make([]bool, b.Cols)
	var touched []int
	for r := 0; r < a.Rows; r++ {
		touched = touched[:0]
		aCols, aVals := a.Row(r)
		ops.AFetches += len(aCols)
		for i, k := range aCols {
			bCols, bVals := b.Row(k)
			ops.BFetches += len(bCols)
			for j, c := range bCols {
				if !occupied[c] {
					occupied[c] = true
					touched = append(touched, c)
				}
				acc[c] += aVals[i] * bVals[j]
				ops.Multiplies++
			}
		}
		sort.Ints(touched)
		for _, c := range touched {
			out.ColIdx = append(out.ColIdx, c)
			out.Val = append(out.Val, acc[c])
			acc[c] = 0
			occupied[c] = false
			ops.OutputsWritten++
		}
		out.RowPtr[r+1] = len(out.ColIdx)
	}
	return out, ops
}

// escPartial is one expanded partial product.
type escPartial struct {
	row, col int
	val      float64
}

// OuterESC computes C = A×B with the explicit Expand-Sort-Compress
// pipeline of outer-product accelerators: expand every rank-1 partial,
// bucket partials by output row (the "sort" network's first level), sort
// each bucket by column, and compress duplicates during the final scan.
func OuterESC(a *sparse.CSC, b *sparse.CSR) (*sparse.CSR, OpCount) {
	var ops OpCount
	// Expand.
	buckets := make([][]escPartial, a.Rows)
	for k := 0; k < a.Cols; k++ {
		aRows, aVals := a.Col(k)
		bCols, bVals := b.Row(k)
		ops.AFetches += len(aRows)
		ops.BFetches += len(bCols)
		for i, r := range aRows {
			for j, c := range bCols {
				buckets[r] = append(buckets[r], escPartial{row: r, col: c, val: aVals[i] * bVals[j]})
				ops.Multiplies++
				ops.PartialProducts++
			}
		}
	}
	// Sort + compress per output row.
	out := &sparse.CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int, a.Rows+1)}
	for r := 0; r < a.Rows; r++ {
		bucket := buckets[r]
		sort.Slice(bucket, func(i, j int) bool { return bucket[i].col < bucket[j].col })
		for i := 0; i < len(bucket); {
			c := bucket[i].col
			sum := 0.0
			for ; i < len(bucket) && bucket[i].col == c; i++ {
				sum += bucket[i].val
				if i > 0 && bucket[i-1].col == c {
					ops.IndexMatches++ // compress comparison
				}
			}
			out.ColIdx = append(out.ColIdx, c)
			out.Val = append(out.Val, sum)
			ops.OutputsWritten++
		}
		out.RowPtr[r+1] = len(out.ColIdx)
	}
	return out, ops
}

// InnerHash computes C = A×B with the inner-product dataflow, probing a
// hash of each A row instead of the two-pointer merge — the strategy of
// intersection units that hash the shorter operand.
func InnerHash(a *sparse.CSR, b *sparse.CSC) (*sparse.CSR, OpCount) {
	var ops OpCount
	out := &sparse.CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int, a.Rows+1)}
	probe := make(map[int]float64)
	for r := 0; r < a.Rows; r++ {
		clear(probe)
		aCols, aVals := a.Row(r)
		ops.AFetches += len(aCols)
		for i, c := range aCols {
			probe[c] = aVals[i]
		}
		for c := 0; c < b.Cols; c++ {
			bRows, bVals := b.Col(c)
			ops.BFetches += len(bRows)
			sum := 0.0
			hit := false
			for j, k := range bRows {
				ops.IndexMatches++
				if av, ok := probe[k]; ok {
					sum += av * bVals[j]
					ops.Multiplies++
					hit = true
				}
			}
			if hit {
				out.ColIdx = append(out.ColIdx, c)
				out.Val = append(out.Val, sum)
				ops.OutputsWritten++
			}
		}
		out.RowPtr[r+1] = len(out.ColIdx)
	}
	return out, ops
}
