package spgemm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"misam/internal/sparse"
)

func TestSymbolicMatchesNumeric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := sparse.Uniform(rng, rng.Intn(25)+1, rng.Intn(25)+1, rng.Float64())
		b := sparse.Uniform(rng, a.Cols, rng.Intn(25)+1, rng.Float64())
		c, _ := RowWise(a, b)
		rows := Symbolic(a, b)
		for r := 0; r < a.Rows; r++ {
			if rows[r] != c.RowNNZ(r) {
				return false
			}
		}
		return SymbolicNNZ(a, b) == c.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolicIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := sparse.Uniform(rng, 40, 40, 0.1)
	rows := Symbolic(a, sparse.Identity(40))
	for r := 0; r < 40; r++ {
		if rows[r] != a.RowNNZ(r) {
			t.Fatalf("row %d symbolic %d != nnz %d", r, rows[r], a.RowNNZ(r))
		}
	}
}

func TestFillIn(t *testing.T) {
	id := sparse.Identity(10)
	if got := FillIn(id, id); got != 1 {
		t.Errorf("I×I fill-in = %v, want 1", got)
	}
	empty := sparse.NewCOO(5, 5).ToCSR()
	if got := FillIn(empty, empty); got != 0 {
		t.Errorf("empty fill-in = %v, want 0", got)
	}
	// Squaring a path graph grows the neighborhood: fill-in above 1.
	m := sparse.NewCOO(20, 20)
	for i := 0; i < 19; i++ {
		m.Append(i, i+1, 1)
		m.Append(i+1, i, 1)
	}
	m.Normalize()
	path := m.ToCSR()
	if got := FillIn(path, path); got <= 1 {
		t.Errorf("path² fill-in = %v, want > 1", got)
	}
}
