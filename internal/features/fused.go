package features

// Fused one-pass feature extraction with ESMM-style block-pattern
// features.
//
// Extract makes four passes over nonzeros: one column-count per operand
// and two tile-count passes over B. At fast-path serving speeds that
// redundancy is the feature-extraction floor the ROADMAP names.
// ExtractFused walks each operand's RowPtr/ColIdx exactly once, filling
// every count grid (column counts, 1D tiles, 2D tiles) in the same walk
// and additionally accumulating per-block 8-bit sparsity-pattern
// statistics: each row is cut into 1×8-column blocks, the block's
// occupancy is an 8-bit mask (bit j set ⇔ column blk*8+j is nonzero),
// and a precomputed 256-entry LUT maps every mask to its popcount and
// longest run of consecutive nonzero columns. Because column indices are
// strictly increasing within a row, the mask builds up with one OR per
// nonzero and flushes once per occupied block — near-branchless, O(nnz).
//
// All count grids hold integers, so fill order cannot change them, and
// the reduces (statsFromCounts, statsFromRowPtr, tileReduce) are shared
// with Extract verbatim — the Vector ExtractFused returns is bit-identical
// to Extract's, pinned by TestExtractFusedEquivalent. Pattern summaries
// ride along as an auxiliary struct so the 24-feature Vector (and every
// trained model reading it) keeps its layout.

import (
	"math"

	"misam/internal/sparse"
)

// patternInfo is one LUT entry: the number of set bits in the mask and
// the length of its longest run of consecutive set bits.
type patternInfo struct {
	pop, run uint8
}

// patternLUT maps every 8-bit block mask to its statistics.
var patternLUT = func() (lut [256]patternInfo) {
	for p := 0; p < 256; p++ {
		pop, run, cur := 0, 0, 0
		for b := 0; b < 8; b++ {
			if p&(1<<b) != 0 {
				pop++
				cur++
				if cur > run {
					run = cur
				}
			} else {
				cur = 0
			}
		}
		lut[p] = patternInfo{pop: uint8(pop), run: uint8(run)}
	}
	return lut
}()

// PatternSummary describes one operand's 1×8-column block sparsity
// patterns: the popcount histogram over occupied blocks plus the scalar
// reductions the selector can consume directly. Dense-leaning matrices
// concentrate mass in high popcounts and long runs; scattered sparsity
// collapses to popcount 1 — exactly the block-level structure that makes
// Tile_1D_Density discriminative, at 8-column granularity.
type PatternSummary struct {
	Blocks    int    // occupied 1×8 blocks (at least one nonzero)
	PopHist   [9]int // PopHist[k]: occupied blocks with exactly k nonzero columns
	MeanPop   float64
	MeanRun   float64 // mean longest-run over occupied blocks
	DenseFrac float64 // share of occupied blocks with all 8 columns nonzero
	Coverage  float64 // occupied blocks / total block slots (rows × ⌈cols/8⌉)
}

// PatternPair carries both operands' block-pattern summaries.
type PatternPair struct {
	A, B PatternSummary
}

// patternAcc accumulates LUT lookups during a walk.
type patternAcc struct {
	blocks, dense  int
	popSum, runSum int
	popHist        [9]int
}

func (p *patternAcc) add(mask uint8) {
	info := patternLUT[mask]
	p.blocks++
	p.popSum += int(info.pop)
	p.runSum += int(info.run)
	p.popHist[info.pop]++
	if mask == 0xFF {
		p.dense++
	}
}

func (p *patternAcc) summary(rows, cols int) PatternSummary {
	s := PatternSummary{Blocks: p.blocks, PopHist: p.popHist}
	if p.blocks > 0 {
		s.MeanPop = float64(p.popSum) / float64(p.blocks)
		s.MeanRun = float64(p.runSum) / float64(p.blocks)
		s.DenseFrac = float64(p.dense) / float64(p.blocks)
	}
	if rows > 0 && cols > 0 {
		s.Coverage = float64(p.blocks) / (float64(rows) * float64((cols+7)/8))
	}
	return s
}

// FusedScratch holds the count grids a fused extraction fills. A warm
// scratch makes repeated extraction allocation-free (pinned by
// TestExtractFusedSteadyStateZeroAllocs); the server pools these and
// threads one through all items of a batch.
type FusedScratch struct {
	colCounts []int
	tile1d    []int
	tile2d    []int
}

func growScratch(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// walk is the single pass over m: it fills colCounts (len m.Cols,
// already cleared) and accumulates block patterns.
func (s *FusedScratch) walk(m *sparse.CSR) PatternSummary {
	counts := s.colCounts[:m.Cols]
	var acc patternAcc
	for r := 0; r < m.Rows; r++ {
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		if lo == hi {
			continue
		}
		curBlk := -1
		var mask uint8
		for _, c := range m.ColIdx[lo:hi] {
			counts[c]++
			blk := c >> 3
			if blk != curBlk {
				if curBlk >= 0 {
					acc.add(mask)
				}
				curBlk, mask = blk, 0
			}
			mask |= 1 << uint(c&7)
		}
		acc.add(mask)
	}
	return acc.summary(m.Rows, m.Cols)
}

// walkTiled is walk for the B operand: the same pass also fills both
// tile grids. 1D tiles span the full matrix width, so their counts come
// from the row extent alone — one add per row, nothing per nonzero — and
// the 2D tile column is c/Tile2DCols with a constant divisor the
// compiler reduces to a shift.
func (s *FusedScratch) walkTiled(m *sparse.CSR, tc2 int) PatternSummary {
	counts := s.colCounts[:m.Cols]
	var acc patternAcc
	for r := 0; r < m.Rows; r++ {
		lo, hi := m.RowPtr[r], m.RowPtr[r+1]
		if lo == hi {
			continue
		}
		s.tile1d[r/Tile1DRows] += hi - lo
		t2 := s.tile2d[(r/Tile2DRows)*tc2:]
		curBlk := -1
		var mask uint8
		for _, c := range m.ColIdx[lo:hi] {
			counts[c]++
			t2[c/Tile2DCols]++
			blk := c >> 3
			if blk != curBlk {
				if curBlk >= 0 {
					acc.add(mask)
				}
				curBlk, mask = blk, 0
			}
			mask |= 1 << uint(c&7)
		}
		acc.add(mask)
	}
	return acc.summary(m.Rows, m.Cols)
}

// ExtractFused computes the full feature vector for A×B in one pass per
// operand, plus both operands' block-pattern summaries. The Vector is
// bit-identical to Extract(a, b).
func ExtractFused(a, b *sparse.CSR) (Vector, PatternPair) {
	var s FusedScratch
	return s.Extract(a, b)
}

// Extract is ExtractFused reusing the scratch's grids; with warm
// capacity it performs zero allocations.
func (s *FusedScratch) Extract(a, b *sparse.CSR) (Vector, PatternPair) {
	var v Vector
	v[ARows] = float64(a.Rows)
	v[ACols] = float64(a.Cols)
	v[BRows] = float64(b.Rows)
	v[BCols] = float64(b.Cols)
	v[ANonzeros] = float64(a.NNZ())
	v[BNonzeros] = float64(b.NNZ())
	v[ASparsity] = 1 - a.Density()
	v[BSparsity] = 1 - b.Density()

	s.colCounts = growScratch(s.colCounts, max(a.Cols, b.Cols))

	// A: one walk fills column counts and patterns; reduce before the
	// buffer is recycled for B (mirrors Extract's shared-scratch order).
	ar := statsFromRowPtr(a.RowPtr)
	pa := s.walk(a)
	ac := statsFromCounts(s.colCounts[:a.Cols])

	// B: the same walk additionally fills both tile grids.
	br := statsFromRowPtr(b.RowPtr)
	clear(s.colCounts[:b.Cols])
	var pb PatternSummary
	var d1, d2 float64
	var n1, n2 int
	if b.Rows > 0 && b.Cols > 0 {
		tr1 := (b.Rows + Tile1DRows - 1) / Tile1DRows
		tr2 := (b.Rows + Tile2DRows - 1) / Tile2DRows
		tc2 := (b.Cols + Tile2DCols - 1) / Tile2DCols
		s.tile1d = growScratch(s.tile1d, tr1)
		s.tile2d = growScratch(s.tile2d, tr2*tc2)
		pb = s.walkTiled(b, tc2)
		d1, n1 = tileReduce(s.tile1d, b.Rows, b.Cols, Tile1DRows, b.Cols, tr1, 1)
		d2, n2 = tileReduce(s.tile2d, b.Rows, b.Cols, Tile2DRows, Tile2DCols, tr2, tc2)
	} else {
		pb = s.walk(b)
	}
	bc := statsFromCounts(s.colCounts[:b.Cols])

	v[ARowNNZMean], v[ARowNNZVar], v[ALoadImbalanceRow] = ar.mean, ar.variance, ar.imbalance
	v[AColNNZMean], v[AColNNZVar], v[ALoadImbalanceCol] = ac.mean, ac.variance, ac.imbalance
	v[BRowNNZMean], v[BRowNNZVar], v[BLoadImbalanceRow] = br.mean, br.variance, br.imbalance
	v[BColNNZMean], v[BColNNZVar], v[BLoadImbalanceCol] = bc.mean, bc.variance, bc.imbalance
	v[Tile1DDensity], v[Tile1DCount] = d1, float64(n1)
	v[Tile2DDensity], v[Tile2DCount] = d2, float64(n2)

	// Same NaN/Inf guard as Extract, so degenerate shapes zero out
	// identically.
	for i := range v {
		if math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
			v[i] = 0
		}
	}
	return v, PatternPair{A: pa, B: pb}
}
