package features

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"misam/internal/sparse"
)

// fusedCorpus spans the generator families plus degenerate shapes; the
// equivalence property must hold on every pair drawn from it.
func fusedCorpus() []*sparse.CSR {
	rng := rand.New(rand.NewSource(42))
	return []*sparse.CSR{
		{Rows: 0, Cols: 0, RowPtr: []int{0}},
		{Rows: 4, Cols: 6, RowPtr: []int{0, 0, 0, 0, 0}, ColIdx: []int{}, Val: []float64{}},
		sparse.Identity(1),
		sparse.Identity(9),
		sparse.Uniform(rng, 300, 200, 0.03),
		sparse.Uniform(rng, 64, 8192, 0.01),
		sparse.PowerLaw(rng, 256, 256, 2000, 1.1),
		sparse.Banded(rng, 200, 200, 5, 0.9),
		sparse.Block(rng, 128, 128, 16, 0.25, 0.6),
		sparse.DNNPruned(rng, 96, 128, 0.15, true, 4),
		sparse.Imbalanced(rng, 150, 100, 900, 0.05, 0.8),
		sparse.DenseRandom(rng, 20, 17),
		sparse.Uniform(rng, 5000, 300, 0.002), // spans multiple 4096-row tiles
	}
}

// TestExtractFusedEquivalent is the bit-identity property: on every
// corpus pair, ExtractFused's Vector must equal Extract's in every bit.
func TestExtractFusedEquivalent(t *testing.T) {
	corpus := fusedCorpus()
	var scratch FusedScratch
	pairs := 0
	for _, a := range corpus {
		for _, b := range corpus {
			if a.Cols != b.Rows {
				continue
			}
			pairs++
			want := Extract(a, b)
			got, _ := ExtractFused(a, b)
			gotScratch, _ := scratch.Extract(a, b)
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("%dx%d · %dx%d: feature %s: fused %v != extract %v",
						a.Rows, a.Cols, b.Rows, b.Cols, Name(i), got[i], want[i])
				}
				if math.Float64bits(want[i]) != math.Float64bits(gotScratch[i]) {
					t.Fatalf("%dx%d · %dx%d: feature %s: scratch-reuse fused %v != extract %v",
						a.Rows, a.Cols, b.Rows, b.Cols, Name(i), gotScratch[i], want[i])
				}
			}
		}
	}
	// Squares pair with themselves at minimum; make sure the filter
	// didn't silently skip everything.
	if pairs < 8 {
		t.Fatalf("only %d compatible pairs in the corpus", pairs)
	}
}

func TestPatternLUT(t *testing.T) {
	for p := 0; p < 256; p++ {
		if got, want := int(patternLUT[p].pop), bits.OnesCount8(uint8(p)); got != want {
			t.Fatalf("LUT[%#02x].pop = %d, want %d", p, got, want)
		}
		// Longest run by brute force.
		run, cur := 0, 0
		for b := 0; b < 8; b++ {
			if p&(1<<b) != 0 {
				cur++
				if cur > run {
					run = cur
				}
			} else {
				cur = 0
			}
		}
		if got := int(patternLUT[p].run); got != run {
			t.Fatalf("LUT[%#02x].run = %d, want %d", p, got, run)
		}
	}
}

// patternsByBruteForce recomputes a summary per the definition: one mask
// per (row, 8-column block) with at least one nonzero.
func patternsByBruteForce(m *sparse.CSR) PatternSummary {
	var acc patternAcc
	for r := 0; r < m.Rows; r++ {
		masks := map[int]uint8{}
		cols, _ := m.Row(r)
		for _, c := range cols {
			masks[c/8] |= 1 << uint(c%8)
		}
		for _, mask := range masks {
			acc.add(mask)
		}
	}
	return acc.summary(m.Rows, m.Cols)
}

func TestPatternSummaryMatchesBruteForce(t *testing.T) {
	for i, m := range fusedCorpus() {
		var s FusedScratch
		s.colCounts = growScratch(s.colCounts, m.Cols)
		got := s.walk(m)
		want := patternsByBruteForce(m)
		if got != want {
			t.Fatalf("matrix %d (%dx%d): walk summary %+v != brute force %+v", i, m.Rows, m.Cols, got, want)
		}
	}
}

func TestPatternSummaryShapes(t *testing.T) {
	// Identity: every occupied block has exactly one nonzero column.
	id := sparse.Identity(64)
	_, p := ExtractFused(id, id)
	if p.B.Blocks != 64 || p.B.PopHist[1] != 64 || p.B.MeanPop != 1 || p.B.MeanRun != 1 || p.B.DenseFrac != 0 {
		t.Fatalf("identity patterns: %+v", p.B)
	}
	if want := 64.0 / (64 * 8); p.B.Coverage != want {
		t.Fatalf("identity coverage %v, want %v", p.B.Coverage, want)
	}
	// Fully dense 16x16: every block is 0xFF.
	rng := rand.New(rand.NewSource(7))
	d := sparse.DenseRandom(rng, 16, 16)
	_, pd := ExtractFused(d, d)
	if pd.B.Blocks != 32 || pd.B.DenseFrac != 1 || pd.B.MeanPop != 8 || pd.B.MeanRun != 8 || pd.B.Coverage != 1 {
		t.Fatalf("dense patterns: %+v", pd.B)
	}
}

// TestExtractFusedSteadyStateZeroAllocs pins the serving-path guarantee:
// a warm scratch extracts with zero allocations.
func TestExtractFusedSteadyStateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := sparse.Uniform(rng, 400, 300, 0.02)
	b := sparse.Uniform(rng, 300, 500, 0.02)
	var s FusedScratch
	s.Extract(a, b)
	allocs := testing.AllocsPerRun(50, func() {
		s.Extract(a, b)
	})
	if allocs != 0 {
		t.Fatalf("warm fused extraction: %v allocs/op, want 0", allocs)
	}
}

func benchOperands(b *testing.B) (*sparse.CSR, *sparse.CSR) {
	rng := rand.New(rand.NewSource(5))
	return sparse.Uniform(rng, 2000, 2000, 0.01), sparse.Uniform(rng, 2000, 2000, 0.01)
}

func BenchmarkExtractMultiPass(b *testing.B) {
	ma, mb := benchOperands(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extract(ma, mb)
	}
}

func BenchmarkExtractFused(b *testing.B) {
	ma, mb := benchOperands(b)
	var s FusedScratch
	s.Extract(ma, mb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Extract(ma, mb)
	}
}
