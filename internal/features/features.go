// Package features implements the §3.1 candidate feature set Misam's
// decision tree consumes: matrix sparsities, per-row/column nonzero
// statistics, 1D and architecture-aware 2D tile densities and counts, and
// load-imbalance ratios. All features are derived from CSR row pointers
// and a single O(nnz) column-counting pass, matching the paper's claim
// that they are "efficiently derived from the CSR and CSC formats using
// row and column pointer offsets".
package features

import (
	"math"

	"misam/internal/sparse"
)

// Feature indices into a Vector. The names mirror Figure 4 of the paper.
const (
	ARows = iota
	ACols
	BRows // "row_B" in Figure 4
	BCols
	ANonzeros // "A_nonzeroes" in Figure 4
	BNonzeros
	ASparsity
	BSparsity
	ARowNNZMean
	ARowNNZVar
	AColNNZMean
	AColNNZVar
	BRowNNZMean
	BRowNNZVar
	BColNNZMean
	BColNNZVar
	ALoadImbalanceRow // "A_load_imbalance_row": longest row / average row
	ALoadImbalanceCol
	BLoadImbalanceRow
	BLoadImbalanceCol
	Tile1DDensity // "Tile_1D_Density": mean density of B's 1D row tiles
	Tile1DCount
	Tile2DDensity
	Tile2DCount

	NumFeatures
)

// Tiling constants match the Design 1 memory system (§3.2.1): B is
// row-tiled by BRAM capacity (4096 entries) and column-tiled by PEG
// count for the architecture-aware 2D scheme.
const (
	Tile1DRows = 4096
	Tile2DRows = 4096
	Tile2DCols = 256
)

var names = [NumFeatures]string{
	ARows:             "A_rows",
	ACols:             "A_cols",
	BRows:             "row_B",
	BCols:             "col_B",
	ANonzeros:         "A_nonzeroes",
	BNonzeros:         "B_nonzeroes",
	ASparsity:         "A_sparsity",
	BSparsity:         "B_sparsity",
	ARowNNZMean:       "A_row_nnz_mean",
	ARowNNZVar:        "A_row_nnz_var",
	AColNNZMean:       "A_col_nnz_mean",
	AColNNZVar:        "A_col_nnz_var",
	BRowNNZMean:       "B_row_nnz_mean",
	BRowNNZVar:        "B_row_nnz_var",
	BColNNZMean:       "B_col_nnz_mean",
	BColNNZVar:        "B_col_nnz_var",
	ALoadImbalanceRow: "A_load_imbalance_row",
	ALoadImbalanceCol: "A_load_imbalance_col",
	BLoadImbalanceRow: "B_load_imbalance_row",
	BLoadImbalanceCol: "B_load_imbalance_col",
	Tile1DDensity:     "Tile_1D_Density",
	Tile1DCount:       "Tile_1D_Count",
	Tile2DDensity:     "Tile_2D_Density",
	Tile2DCount:       "Tile_2D_Count",
}

// Name returns the Figure 4 name of feature i.
func Name(i int) string { return names[i] }

// Names returns all feature names in index order.
func Names() []string { return append([]string(nil), names[:]...) }

// Vector is one extracted feature vector.
type Vector [NumFeatures]float64

// Slice returns the vector as a []float64 (a copy-free view).
func (v *Vector) Slice() []float64 { return v[:] }

// axisStats summarizes nonzeros along one axis: mean, population
// variance, and the max/mean imbalance ratio (1 for an empty axis).
type axisStats struct {
	mean, variance, imbalance float64
}

func statsFromCounts(counts []int) axisStats {
	if len(counts) == 0 {
		return axisStats{imbalance: 1}
	}
	sum, maxC := 0, 0
	for _, c := range counts {
		sum += c
		if c > maxC {
			maxC = c
		}
	}
	mean := float64(sum) / float64(len(counts))
	varSum := 0.0
	for _, c := range counts {
		d := float64(c) - mean
		varSum += d * d
	}
	variance := varSum / float64(len(counts))
	imbalance := 1.0
	if mean > 0 {
		imbalance = float64(maxC) / mean
	}
	return axisStats{mean: mean, variance: variance, imbalance: imbalance}
}

// statsFromRowPtr computes row-axis statistics straight from the CSR
// row-pointer array, without materializing a per-row count slice. The
// arithmetic mirrors statsFromCounts exactly — same iteration order,
// same integer sum, same two-pass variance — so the results are
// bit-identical to the materialized path it replaced.
func statsFromRowPtr(rowPtr []int) axisStats {
	rows := len(rowPtr) - 1
	if rows <= 0 {
		return axisStats{imbalance: 1}
	}
	sum, maxC := 0, 0
	for r := 0; r < rows; r++ {
		c := rowPtr[r+1] - rowPtr[r]
		sum += c
		if c > maxC {
			maxC = c
		}
	}
	mean := float64(sum) / float64(rows)
	varSum := 0.0
	for r := 0; r < rows; r++ {
		d := float64(rowPtr[r+1]-rowPtr[r]) - mean
		varSum += d * d
	}
	variance := varSum / float64(rows)
	imbalance := 1.0
	if mean > 0 {
		imbalance = float64(maxC) / mean
	}
	return axisStats{mean: mean, variance: variance, imbalance: imbalance}
}

// colCountsInto counts column occurrences into the first m.Cols slots of
// scratch (which must be at least that long) and returns that prefix.
// Extract backs both operands' counting passes with one buffer.
func colCountsInto(m *sparse.CSR, scratch []int) []int {
	counts := scratch[:m.Cols]
	clear(counts)
	for _, c := range m.ColIdx {
		counts[c]++
	}
	return counts
}

// tileStats computes, for a tiling of m into tileRows×tileCols blocks
// (tileCols <= 0 means full-width 1D row tiles), the mean density over
// all tiles and the number of nonempty tiles. The fill and reduce halves
// are split so the fused one-pass extractor (fused.go) can fill the same
// count grid during its single ColIdx walk and share tileReduce — integer
// tile counts make the fill order irrelevant, and the shared reduce keeps
// the float arithmetic bit-identical between the two extractors.
func tileStats(m *sparse.CSR, tileRows, tileCols int) (meanDensity float64, nonempty int) {
	if m.Rows == 0 || m.Cols == 0 {
		return 0, 0
	}
	if tileCols <= 0 {
		tileCols = m.Cols
	}
	tr := (m.Rows + tileRows - 1) / tileRows
	tc := (m.Cols + tileCols - 1) / tileCols
	counts := make([]int, tr*tc)
	for r := 0; r < m.Rows; r++ {
		ti := r / tileRows
		base := ti * tc
		for i := m.RowPtr[r]; i < m.RowPtr[r+1]; i++ {
			counts[base+m.ColIdx[i]/tileCols]++
		}
	}
	return tileReduce(counts, m.Rows, m.Cols, tileRows, tileCols, tr, tc)
}

// tileReduce turns a filled tr×tc tile-count grid into the mean-density
// and nonempty-tile features, handling the ragged final row/column of
// tiles. Iteration order is fixed (row-major over tiles) so the float
// accumulation is deterministic.
func tileReduce(counts []int, rows, cols, tileRows, tileCols, tr, tc int) (meanDensity float64, nonempty int) {
	total := 0.0
	for ti := 0; ti < tr; ti++ {
		trows := tileRows
		if (ti+1)*tileRows > rows {
			trows = rows - ti*tileRows
		}
		for tj := 0; tj < tc; tj++ {
			tcols := tileCols
			if (tj+1)*tileCols > cols {
				tcols = cols - tj*tileCols
			}
			n := counts[ti*tc+tj]
			if n > 0 {
				nonempty++
			}
			total += float64(n) / (float64(trows) * float64(tcols))
		}
	}
	return total / float64(len(counts)), nonempty
}

// Extract computes the full feature vector for the product A×B. Both
// operands are CSR; B's column statistics come from one counting pass
// (equivalent to reading its CSC pointer array).
func Extract(a, b *sparse.CSR) Vector {
	var v Vector
	v[ARows] = float64(a.Rows)
	v[ACols] = float64(a.Cols)
	v[BRows] = float64(b.Rows)
	v[BCols] = float64(b.Cols)
	v[ANonzeros] = float64(a.NNZ())
	v[BNonzeros] = float64(b.NNZ())
	v[ASparsity] = 1 - a.Density()
	v[BSparsity] = 1 - b.Density()

	// Row stats come straight from the row pointers; the two column
	// passes share one scratch buffer (A's stats are reduced into ac
	// before the buffer is recycled for B).
	colScratch := make([]int, max(a.Cols, b.Cols))
	ar := statsFromRowPtr(a.RowPtr)
	ac := statsFromCounts(colCountsInto(a, colScratch))
	br := statsFromRowPtr(b.RowPtr)
	bc := statsFromCounts(colCountsInto(b, colScratch))
	v[ARowNNZMean], v[ARowNNZVar], v[ALoadImbalanceRow] = ar.mean, ar.variance, ar.imbalance
	v[AColNNZMean], v[AColNNZVar], v[ALoadImbalanceCol] = ac.mean, ac.variance, ac.imbalance
	v[BRowNNZMean], v[BRowNNZVar], v[BLoadImbalanceRow] = br.mean, br.variance, br.imbalance
	v[BColNNZMean], v[BColNNZVar], v[BLoadImbalanceCol] = bc.mean, bc.variance, bc.imbalance

	d1, n1 := tileStats(b, Tile1DRows, 0)
	d2, n2 := tileStats(b, Tile2DRows, Tile2DCols)
	v[Tile1DDensity], v[Tile1DCount] = d1, float64(n1)
	v[Tile2DDensity], v[Tile2DCount] = d2, float64(n2)

	// Guard against NaN/Inf leaking into the models from degenerate shapes.
	for i := range v {
		if math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
			v[i] = 0
		}
	}
	return v
}

// TopFour lists the four most influential features from Figure 4; the
// deployed 6 KB model is pruned to (a superset built from) these.
var TopFour = []int{Tile1DDensity, BRows, ALoadImbalanceRow, ARows}

// ExtractPruned computes only the features a TopFour-pruned model reads,
// plus the cheap dimension/sparsity scalars, in O(rowsA + rowsB) time
// using row-pointer offsets alone — never walking the nonzeros. This is
// the deployment fast path behind §5.5's ≈2 % preprocessing overhead:
// the dominant feature, Tile_1D_Density, comes from B's row pointers at
// tile boundaries. All other feature slots are zero.
func ExtractPruned(a, b *sparse.CSR) Vector {
	var v Vector
	v[ARows] = float64(a.Rows)
	v[ACols] = float64(a.Cols)
	v[BRows] = float64(b.Rows)
	v[BCols] = float64(b.Cols)
	v[ANonzeros] = float64(a.NNZ())
	v[BNonzeros] = float64(b.NNZ())
	v[ASparsity] = 1 - a.Density()
	v[BSparsity] = 1 - b.Density()

	// A_load_imbalance_row from A's row pointers.
	maxRow := 0
	for r := 0; r < a.Rows; r++ {
		if n := a.RowNNZ(r); n > maxRow {
			maxRow = n
		}
	}
	v[ALoadImbalanceRow] = 1
	if a.Rows > 0 && a.NNZ() > 0 {
		v[ALoadImbalanceRow] = float64(maxRow) / (float64(a.NNZ()) / float64(a.Rows))
	}

	// Tile_1D_Density from B's row pointers at tile boundaries.
	if b.Rows > 0 && b.Cols > 0 {
		total, tiles, nonempty := 0.0, 0, 0.0
		for lo := 0; lo < b.Rows; lo += Tile1DRows {
			hi := lo + Tile1DRows
			if hi > b.Rows {
				hi = b.Rows
			}
			nnz := b.RowPtr[hi] - b.RowPtr[lo]
			total += float64(nnz) / (float64(hi-lo) * float64(b.Cols))
			if nnz > 0 {
				nonempty++
			}
			tiles++
		}
		v[Tile1DDensity] = total / float64(tiles)
		v[Tile1DCount] = nonempty
	}
	return v
}
