package features

import (
	"math/rand"
	"testing"
	"testing/quick"

	"misam/internal/sparse"
)

// prunedSharedIndices are the feature slots ExtractPruned fills; on these
// it must agree exactly with the full extractor.
var prunedSharedIndices = []int{
	ARows, ACols, BRows, BCols, ANonzeros, BNonzeros,
	ASparsity, BSparsity, ALoadImbalanceRow, Tile1DDensity, Tile1DCount,
}

func TestPropertyExtractPrunedMatchesFull(t *testing.T) {
	f := func(seed int64, rIn, cIn, dIn uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := int(rIn)%80 + 1
		cols := int(cIn)%80 + 1
		dens := float64(dIn%100) / 100
		a := sparse.Uniform(rng, rows, cols, dens)
		b := sparse.Uniform(rng, cols, rows, dens)
		full := Extract(a, b)
		fast := ExtractPruned(a, b)
		for _, i := range prunedSharedIndices {
			if full[i] != fast[i] {
				t.Logf("feature %s: full %v, pruned %v", Name(i), full[i], fast[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractPrunedLargeTiledB(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := sparse.Identity(10)
	b := sparse.Uniform(rng, 10000, 10, 0.05)
	full := Extract(a, b)
	fast := ExtractPruned(a, b)
	if full[Tile1DDensity] != fast[Tile1DDensity] {
		t.Errorf("tile density: full %v, pruned %v", full[Tile1DDensity], fast[Tile1DDensity])
	}
	if full[Tile1DCount] != fast[Tile1DCount] {
		t.Errorf("tile count: full %v, pruned %v", full[Tile1DCount], fast[Tile1DCount])
	}
}

func TestExtractPrunedEmpty(t *testing.T) {
	empty := sparse.NewCOO(5, 5).ToCSR()
	v := ExtractPruned(empty, empty)
	if v[ALoadImbalanceRow] != 1 {
		t.Errorf("empty imbalance = %v, want 1", v[ALoadImbalanceRow])
	}
	if v[Tile1DCount] != 0 {
		t.Errorf("empty tile count = %v, want 0", v[Tile1DCount])
	}
}

func BenchmarkExtractPrunedVsFull(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	a := sparse.Uniform(rng, 20000, 20000, 0.0005)
	bm := sparse.DenseRandom(rng, 20000, 128)
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Extract(a, bm)
		}
	})
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ExtractPruned(a, bm)
		}
	})
}
