package features

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"misam/internal/sparse"
)

func TestExtractDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := sparse.Uniform(rng, 40, 30, 0.1)
	b := sparse.Uniform(rng, 30, 20, 0.2)
	v := Extract(a, b)
	if v[ARows] != 40 || v[ACols] != 30 || v[BRows] != 30 || v[BCols] != 20 {
		t.Errorf("dims wrong: %v %v %v %v", v[ARows], v[ACols], v[BRows], v[BCols])
	}
	if v[ANonzeros] != float64(a.NNZ()) || v[BNonzeros] != float64(b.NNZ()) {
		t.Error("nnz features wrong")
	}
}

func TestSparsityFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := sparse.Uniform(rng, 50, 50, 0.1)
	b := sparse.DenseRandom(rng, 50, 50)
	v := Extract(a, b)
	if math.Abs(v[ASparsity]-0.9) > 0.02 {
		t.Errorf("A_sparsity = %v, want ~0.9", v[ASparsity])
	}
	if v[BSparsity] != 0 {
		t.Errorf("B_sparsity = %v, want 0 for dense", v[BSparsity])
	}
}

func TestRowStatsUniformMatrix(t *testing.T) {
	// Identity: every row and column has exactly 1 nonzero.
	id := sparse.Identity(10)
	v := Extract(id, id)
	if v[ARowNNZMean] != 1 || v[ARowNNZVar] != 0 {
		t.Errorf("row stats = mean %v var %v, want 1, 0", v[ARowNNZMean], v[ARowNNZVar])
	}
	if v[ALoadImbalanceRow] != 1 {
		t.Errorf("imbalance = %v, want 1 for identity", v[ALoadImbalanceRow])
	}
}

func TestLoadImbalanceDetectsHeavyRows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bal := sparse.Uniform(rng, 100, 100, 0.1)
	imb := sparse.Imbalanced(rng, 100, 100, 1000, 0.05, 0.8)
	id := sparse.Identity(100)
	vBal := Extract(bal, id)
	vImb := Extract(imb, id)
	if vImb[ALoadImbalanceRow] <= 2*vBal[ALoadImbalanceRow] {
		t.Errorf("imbalanced %.2f not clearly above balanced %.2f",
			vImb[ALoadImbalanceRow], vBal[ALoadImbalanceRow])
	}
}

func TestTileDensityDenseVsSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	id := sparse.Identity(64)
	dense := sparse.DenseRandom(rng, 64, 64)
	sparseB := sparse.Uniform(rng, 64, 64, 0.01)
	vDense := Extract(id, dense)
	vSparse := Extract(id, sparseB)
	if vDense[Tile1DDensity] != 1 {
		t.Errorf("Tile_1D_Density = %v for dense B, want 1", vDense[Tile1DDensity])
	}
	if vSparse[Tile1DDensity] >= vDense[Tile1DDensity] {
		t.Error("sparse B tile density should be below dense B")
	}
	if vDense[Tile1DCount] != 1 {
		t.Errorf("Tile_1D_Count = %v, want 1 (64 rows fit one 4096 tile)", vDense[Tile1DCount])
	}
}

func TestTileCountsLargeMatrix(t *testing.T) {
	// 10000 rows → ceil(10000/4096) = 3 one-dimensional tiles.
	rng := rand.New(rand.NewSource(5))
	b := sparse.Uniform(rng, 10000, 128, 0.01)
	v := Extract(sparse.Identity(1), adjust(b))
	_ = rng
	if v[Tile1DCount] != 3 {
		t.Errorf("Tile_1D_Count = %v, want 3", v[Tile1DCount])
	}
}

// adjust returns b unchanged; it exists so the Extract call reads naturally
// with a 1×1 A (Extract never checks inner-dimension compatibility).
func adjust(b *sparse.CSR) *sparse.CSR { return b }

func TestNamesCoverAllFeatures(t *testing.T) {
	ns := Names()
	if len(ns) != NumFeatures {
		t.Fatalf("Names() has %d entries, want %d", len(ns), NumFeatures)
	}
	seen := map[string]bool{}
	for i, n := range ns {
		if n == "" {
			t.Errorf("feature %d has empty name", i)
		}
		if seen[n] {
			t.Errorf("duplicate name %q", n)
		}
		seen[n] = true
	}
	if Name(BRows) != "row_B" {
		t.Errorf("Name(BRows) = %q, want row_B (Figure 4 naming)", Name(BRows))
	}
}

func TestTopFourAreValidIndices(t *testing.T) {
	for _, i := range TopFour {
		if i < 0 || i >= NumFeatures {
			t.Errorf("TopFour contains invalid index %d", i)
		}
	}
}

func TestPropertyFeaturesFinite(t *testing.T) {
	f := func(seed int64, rIn, cIn, dIn uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := int(rIn)%60 + 1
		cols := int(cIn)%60 + 1
		dens := float64(dIn%100) / 100
		a := sparse.Uniform(rng, rows, cols, dens)
		b := sparse.Uniform(rng, cols, rows, dens)
		v := Extract(a, b)
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return false
			}
		}
		// Sparsity in [0,1]; densities in [0,1]; imbalance >= 1 when nnz>0.
		if v[ASparsity] < 0 || v[ASparsity] > 1 || v[Tile1DDensity] < 0 || v[Tile1DDensity] > 1 {
			return false
		}
		if a.NNZ() > 0 && v[ALoadImbalanceRow] < 1-1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyVarianceNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := sparse.PowerLaw(rng, 80, 80, 600, 1.8)
		v := Extract(a, a)
		return v[ARowNNZVar] >= 0 && v[AColNNZVar] >= 0 && v[BRowNNZVar] >= 0 && v[BColNNZVar] >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyMatrixFeatures(t *testing.T) {
	empty := sparse.NewCOO(5, 5).ToCSR()
	v := Extract(empty, empty)
	if v[ASparsity] != 1 || v[ANonzeros] != 0 {
		t.Error("empty matrix should be fully sparse")
	}
	if v[Tile1DCount] != 0 {
		t.Errorf("Tile_1D_Count = %v, want 0 nonempty tiles", v[Tile1DCount])
	}
}

func BenchmarkExtract(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	a := sparse.Uniform(rng, 2000, 2000, 0.01)
	bm := sparse.Uniform(rng, 2000, 512, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extract(a, bm)
	}
}
