// Package registry is the versioned model registry of the online
// adaptation subsystem: it holds immutable {selector, latency-predictor}
// snapshots with monotonically increasing versions and hot-swaps the
// serving pointer atomically, so every request reads one complete,
// internally consistent model pair — never a torn selector/regressor
// combination from two different training runs.
//
// The registry separates two timelines. Versions are assigned once at
// Publish and never reused; the full publish history stays addressable
// for pinned-version lookup. The *current* pointer — what Analyze reads —
// moves independently: Publish advances it to the new snapshot, Rollback
// moves it back along the publish order without minting a new version.
// Readers pay one atomic load; writers serialize on a mutex that readers
// never touch.
package registry

import (
	"fmt"
	"sync"
	"sync/atomic"

	"misam/internal/features"
	"misam/internal/mltree"
	"misam/internal/reconfig"
	"misam/internal/sim"
)

// Source tags where a snapshot came from.
const (
	SourceTrain   = "train"   // initial offline training (misam.Train)
	SourceLoad    = "load"    // restored from a model file (misam.Load)
	SourceRetrain = "retrain" // promoted by the online retrainer
	SourceSync    = "sync"    // replicated from a cluster peer
)

// Metrics are the shadow-evaluation numbers attached to a snapshot at
// publish time. For the initial snapshot they are zero (no holdout was
// replayed); for retrained candidates they record the promotion gate's
// evidence.
type Metrics struct {
	// GeomeanSlowdown is the geometric-mean slowdown versus the per-pair
	// oracle over the holdout trace slice (1.0 = always optimal).
	GeomeanSlowdown float64 `json:"geomean_slowdown,omitempty"`
	// Accuracy is the predicted-vs-simulated-optimal accuracy on the same
	// holdout slice.
	Accuracy float64 `json:"accuracy,omitempty"`
	// CrossValAccuracy is the mean k-fold cross-validation accuracy on
	// the candidate's training traces (0 when cross-validation was
	// skipped).
	CrossValAccuracy float64 `json:"crossval_accuracy,omitempty"`
}

// Info is the immutable metadata of one snapshot.
type Info struct {
	Version uint64 `json:"version"`
	Source  string `json:"source"`
	// Note is a free-form annotation ("initial", drift reason, ...).
	Note string `json:"note,omitempty"`
	// Traces is the number of training records behind the snapshot
	// (corpus samples for offline training, collected traces for
	// retrains).
	Traces  int     `json:"traces,omitempty"`
	Metrics Metrics `json:"metrics"`
}

// Snapshot is one immutable model pair: the dataflow-selection
// classifier (with its compiled inference form) and the pricing engine
// wrapping the per-design latency regressors. Snapshots are never
// mutated after construction; the registry shares them freely across
// goroutines.
type Snapshot struct {
	info Info

	classifier *mltree.Classifier
	compiled   *mltree.Compiled
	engine     *reconfig.Engine
}

// NewSnapshot builds a snapshot from a trained classifier and engine.
// The version field of info is assigned by the registry at Publish; any
// caller-supplied value is overwritten.
func NewSnapshot(cls *mltree.Classifier, engine *reconfig.Engine, info Info) (*Snapshot, error) {
	if cls == nil || cls.Root == nil {
		return nil, fmt.Errorf("registry: snapshot needs a trained classifier")
	}
	if engine == nil || engine.Predictor == nil {
		return nil, fmt.Errorf("registry: snapshot needs a pricing engine")
	}
	for _, id := range sim.AllDesigns {
		if engine.Predictor.Regs[id] == nil || engine.Predictor.Regs[id].Root == nil {
			return nil, fmt.Errorf("registry: snapshot is missing the %v latency regressor", id)
		}
	}
	return &Snapshot{info: info, classifier: cls, compiled: cls.Compile(), engine: engine}, nil
}

// Version is the snapshot's registry version (0 before Publish).
func (s *Snapshot) Version() uint64 { return s.info.Version }

// SetMetrics attaches shadow-evaluation metrics to the snapshot. It must
// only be called before Publish — published snapshots are immutable.
func (s *Snapshot) SetMetrics(m Metrics) { s.info.Metrics = m }

// SetNote annotates the snapshot (e.g. with the drift reason that
// triggered its training). Pre-publish only, like SetMetrics.
func (s *Snapshot) SetNote(note string) { s.info.Note = note }

// Info returns the snapshot metadata.
func (s *Snapshot) Info() Info { return s.info }

// Classifier exposes the selector tree (read-only by convention).
func (s *Snapshot) Classifier() *mltree.Classifier { return s.classifier }

// Engine exposes the snapshot's pricing engine.
func (s *Snapshot) Engine() *reconfig.Engine { return s.engine }

// Select predicts the best design for a feature vector using the
// compiled tree. Snapshot satisfies reconfig.Selector, so a snapshot can
// drive the streaming executor directly.
func (s *Snapshot) Select(v features.Vector) sim.DesignID {
	return sim.DesignID(s.compiled.PredictClass(v.Slice()))
}

// SelectWithConfidence also reports the routed leaf's class probability
// for the chosen design.
func (s *Snapshot) SelectWithConfidence(v features.Vector) (sim.DesignID, float64) {
	id, conf, _ := s.SelectConfident(v)
	return id, conf
}

// SelectConfident is the fast path's gate lookup: the proposed design,
// the routed leaf's probability mass for it (confidence), and the margin
// over the runner-up design — all from the compiled tree, allocation-free
// and without touching the pointer-chasing Classifier nodes.
func (s *Snapshot) SelectConfident(v features.Vector) (id sim.DesignID, conf, margin float64) {
	class, conf, margin := s.compiled.PredictConfident(v.Slice())
	return sim.DesignID(class), conf, margin
}

var _ reconfig.Selector = (*Snapshot)(nil)

// historyCap bounds how many published snapshots stay addressable for
// pinned lookup and rollback. Oldest entries are forgotten first; the
// current snapshot is never evicted.
const historyCap = 64

// Registry is the versioned snapshot store. All methods are safe for
// concurrent use; Current is wait-free.
type Registry struct {
	cur atomic.Pointer[Snapshot]

	mu      sync.Mutex
	history []*Snapshot // publish order, oldest first
	nextVer uint64
}

// New returns a registry serving initial as version 1.
func New(initial *Snapshot) *Registry {
	r := &Registry{}
	r.Publish(initial)
	return r
}

// Current returns the snapshot serving traffic right now. The returned
// snapshot is complete and immutable: callers should grab it once per
// request and use its selector and engine together.
func (r *Registry) Current() *Snapshot { return r.cur.Load() }

// Publish assigns the next version to s, appends it to the history and
// atomically makes it current. It returns the assigned version.
func (r *Registry) Publish(s *Snapshot) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextVer++
	// Snapshots are immutable once published; the version is stamped on a
	// copy-free basis here because Publish is the single writer that owns
	// the pre-publication snapshot.
	s.info.Version = r.nextVer
	r.history = append(r.history, s)
	if len(r.history) > historyCap {
		r.compactLocked()
	}
	r.cur.Store(s)
	return s.info.Version
}

// compactLocked drops the oldest history entries past historyCap,
// keeping the current snapshot addressable regardless of age.
func (r *Registry) compactLocked() {
	cur := r.cur.Load()
	drop := len(r.history) - historyCap
	kept := make([]*Snapshot, 0, historyCap+1)
	for i, s := range r.history {
		if i < drop && s != cur {
			continue
		}
		kept = append(kept, s)
	}
	r.history = kept
}

// Rollback moves the current pointer to the snapshot published
// immediately before the one serving now (by publish order), returning
// it. No new version is minted — the old snapshot keeps its version.
// It fails when the current snapshot is the oldest one still held.
func (r *Registry) Rollback() (*Snapshot, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.cur.Load()
	idx := -1
	for i, s := range r.history {
		if s == cur {
			idx = i
			break
		}
	}
	if idx <= 0 {
		return nil, fmt.Errorf("registry: no earlier snapshot to roll back to (current v%d)", cur.Version())
	}
	prev := r.history[idx-1]
	r.cur.Store(prev)
	return prev, nil
}

// Get returns the snapshot pinned at version, if it is still held.
func (r *Registry) Get(version uint64) (*Snapshot, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.history {
		if s.info.Version == version {
			return s, true
		}
	}
	return nil, false
}

// List returns the metadata of every held snapshot in publish order.
func (r *Registry) List() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, len(r.history))
	for i, s := range r.history {
		out[i] = s.info
	}
	return out
}

// Len reports how many snapshots are held.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.history)
}
