package registry

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"misam/internal/features"
	"misam/internal/mltree"
	"misam/internal/reconfig"
	"misam/internal/sim"
)

// markedSnapshot builds a self-consistent snapshot keyed by marker: its
// classifier routes the zero feature vector to design marker%4, and every
// latency regressor predicts the constant marker. A torn pair — selector
// from one snapshot, engine from another — therefore shows up as a
// marker/design mismatch, which the hammer test checks on every read.
func markedSnapshot(t testing.TB, marker int) *Snapshot {
	t.Helper()
	want := marker % int(sim.NumDesigns)
	other := (marker + 1) % int(sim.NumDesigns)
	x := make([][]float64, 8)
	y := make([]int, 8)
	for i := range x {
		row := make([]float64, features.NumFeatures)
		row[0] = float64(i)
		if i < 4 {
			y[i] = want // feature0 < 3.5 routes to the marker's design
		} else {
			row[0] += 100
			y[i] = other
		}
		x[i] = row
	}
	cls, err := mltree.TrainClassifier(x, y, int(sim.NumDesigns), nil, mltree.Config{MaxDepth: 3})
	if err != nil {
		t.Fatalf("classifier: %v", err)
	}
	ry := make([]float64, len(x))
	for i := range ry {
		ry[i] = float64(marker)
	}
	pred := &reconfig.LatencyPredictor{}
	for _, id := range sim.AllDesigns {
		reg, err := mltree.TrainRegressor(x, ry, mltree.Config{MaxDepth: 2})
		if err != nil {
			t.Fatalf("regressor: %v", err)
		}
		pred.Regs[id] = reg
	}
	eng := reconfig.NewEngine(pred, reconfig.DefaultTimeModel(), 0.2)
	s, err := NewSnapshot(cls, eng, Info{Source: SourceTrain, Note: fmt.Sprintf("marker=%d", marker)})
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return s
}

// snapshotMarker recovers the marker a markedSnapshot was built with from
// its regressors.
func snapshotMarker(s *Snapshot) int {
	var zero [features.NumFeatures]float64
	return int(math.Round(s.Engine().Predictor.Regs[0].Predict(zero[:])))
}

// checkConsistent asserts the snapshot's selector and engine come from
// the same markedSnapshot construction.
func checkConsistent(t testing.TB, s *Snapshot) {
	t.Helper()
	m := snapshotMarker(s)
	var zero features.Vector
	if got, want := s.Select(zero), sim.DesignID(m%int(sim.NumDesigns)); got != want {
		t.Fatalf("torn snapshot v%d: selector proposes %v, engine marker %d implies %v",
			s.Version(), got, m, want)
	}
}

func TestNewSnapshotValidates(t *testing.T) {
	s := markedSnapshot(t, 1)
	if _, err := NewSnapshot(nil, s.Engine(), Info{}); err == nil {
		t.Error("nil classifier accepted")
	}
	if _, err := NewSnapshot(s.Classifier(), nil, Info{}); err == nil {
		t.Error("nil engine accepted")
	}
	gutted := reconfig.NewEngine(&reconfig.LatencyPredictor{}, reconfig.DefaultTimeModel(), 0.2)
	if _, err := NewSnapshot(s.Classifier(), gutted, Info{}); err == nil {
		t.Error("engine without regressors accepted")
	}
}

func TestPublishGetRollback(t *testing.T) {
	s1 := markedSnapshot(t, 1)
	r := New(s1)
	if got := r.Current(); got != s1 || got.Version() != 1 {
		t.Fatalf("initial snapshot: got %p v%d, want %p v1", got, got.Version(), s1)
	}

	s2 := markedSnapshot(t, 2)
	if v := r.Publish(s2); v != 2 {
		t.Fatalf("second publish got version %d, want 2", v)
	}
	if r.Current() != s2 {
		t.Fatal("publish did not advance current")
	}

	// Pinned lookup returns the identical snapshot pointers.
	for want, ver := range map[*Snapshot]uint64{s1: 1, s2: 2} {
		got, ok := r.Get(ver)
		if !ok || got != want {
			t.Fatalf("Get(%d) = %p, %v; want %p, true", ver, got, ok, want)
		}
	}
	if _, ok := r.Get(99); ok {
		t.Fatal("Get(99) found a snapshot that was never published")
	}

	// Rollback moves current backward without minting a version.
	prev, err := r.Rollback()
	if err != nil || prev != s1 {
		t.Fatalf("rollback: got %p, %v; want %p, nil", prev, err, s1)
	}
	if r.Current() != s1 {
		t.Fatal("rollback did not move current")
	}
	if _, err := r.Rollback(); err == nil {
		t.Fatal("rollback past the oldest snapshot should fail")
	}

	// Publishing after a rollback still mints the next version, and the
	// rolled-back-from snapshot stays addressable.
	s3 := markedSnapshot(t, 3)
	if v := r.Publish(s3); v != 3 {
		t.Fatalf("post-rollback publish got version %d, want 3", v)
	}
	if got, ok := r.Get(2); !ok || got != s2 {
		t.Fatal("version 2 lost after rollback+publish")
	}
	if infos := r.List(); len(infos) != 3 || infos[0].Version != 1 || infos[2].Version != 3 {
		t.Fatalf("List() = %+v, want versions 1..3 in publish order", infos)
	}
}

func TestHistoryCompaction(t *testing.T) {
	r := New(markedSnapshot(t, 0))
	old := r.Current()
	for i := 1; i <= historyCap+8; i++ {
		r.Publish(markedSnapshot(t, i))
	}
	if r.Len() > historyCap {
		t.Fatalf("history holds %d snapshots, cap is %d", r.Len(), historyCap)
	}
	if _, ok := r.Get(old.Version()); ok {
		t.Fatal("oldest snapshot survived compaction")
	}
	// The newest snapshots are still addressable.
	cur := r.Current()
	if got, ok := r.Get(cur.Version()); !ok || got != cur {
		t.Fatal("current snapshot not addressable after compaction")
	}
}

// TestSwapRollbackHammer drives concurrent readers through Current and
// pinned Get while writers publish and roll back, asserting under -race
// that every observed snapshot is complete and internally consistent
// (selector and engine from the same construction) and that versions
// never run backward at the publish level.
func TestSwapRollbackHammer(t *testing.T) {
	const (
		readers   = 8
		publishes = 40
	)
	// Pre-build snapshots so the hammer measures registry behavior, not
	// tree training.
	snaps := make([]*Snapshot, publishes)
	for i := range snaps {
		snaps[i] = markedSnapshot(t, i)
	}
	r := New(snaps[0])

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				s := r.Current()
				if s == nil {
					errs <- fmt.Errorf("Current() returned nil")
					return
				}
				m := snapshotMarker(s)
				var zero features.Vector
				if got, want := s.Select(zero), sim.DesignID(m%int(sim.NumDesigns)); got != want {
					errs <- fmt.Errorf("torn snapshot v%d: selector %v, engine implies %v", s.Version(), got, want)
					return
				}
				if v := s.Version(); v == 0 || int(v) > publishes {
					errs <- fmt.Errorf("observed version %d outside published range", v)
					return
				}
				// Pinned lookup must return the pinned version or nothing.
				if pinned, ok := r.Get(s.Version()); ok && pinned.Version() != s.Version() {
					errs <- fmt.Errorf("Get(%d) returned v%d", s.Version(), pinned.Version())
					return
				}
			}
		}()
	}

	var maxPublished uint64
	for i := 1; i < publishes; i++ {
		v := r.Publish(snaps[i])
		if v <= maxPublished {
			t.Errorf("publish returned non-monotonic version %d after %d", v, maxPublished)
		}
		maxPublished = v
		if i%3 == 0 {
			if _, err := r.Rollback(); err != nil {
				t.Errorf("rollback at publish %d: %v", i, err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	checkConsistent(t, r.Current())
}

// BenchmarkRegistrySwapUnderLoad measures the reader path (one atomic
// load + compiled-tree inference) while a writer hot-swaps the registry
// continuously. Run with -benchtime=1x in CI as a smoke test.
func BenchmarkRegistrySwapUnderLoad(b *testing.B) {
	a := markedSnapshot(b, 0)
	c := markedSnapshot(b, 1)
	r := New(a)
	r.Publish(c)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				r.Rollback()
			} else {
				s, _ := r.Get(uint64(2))
				if s != nil {
					// Re-promote by republishing a marked clone.
					r.Publish(markedSnapshot(b, i%4))
				}
			}
		}
	}()

	var zero features.Vector
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s := r.Current()
			_ = s.Select(zero)
			_ = s.Engine()
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
}

// TestSelectConfidentConsistency: the compiled confidence lookup must
// agree with the reference Classifier on design, confidence and margin
// for arbitrary feature vectors — it is the gate the fast path trusts.
func TestSelectConfidentConsistency(t *testing.T) {
	for marker := 0; marker < 4; marker++ {
		s := markedSnapshot(t, marker)
		for probe := 0; probe < 50; probe++ {
			var v features.Vector
			v[0] = float64(probe*7%200) - 50
			id, conf, margin := s.SelectConfident(v)
			if want := s.Select(v); id != want {
				t.Fatalf("marker %d probe %d: SelectConfident design %v, Select %v", marker, probe, id, want)
			}
			probs := s.Classifier().PredictProba(v.Slice())
			if conf != probs[id] {
				t.Fatalf("marker %d probe %d: conf %v, want %v", marker, probe, conf, probs[id])
			}
			runnerUp := 0.0
			for c, p := range probs {
				if sim.DesignID(c) != id && p > runnerUp {
					runnerUp = p
				}
			}
			if margin != conf-runnerUp {
				t.Fatalf("marker %d probe %d: margin %v, want %v", marker, probe, margin, conf-runnerUp)
			}
			id2, conf2 := s.SelectWithConfidence(v)
			if id2 != id || conf2 != conf {
				t.Fatalf("marker %d probe %d: SelectWithConfidence (%v, %v) disagrees with SelectConfident (%v, %v)",
					marker, probe, id2, conf2, id, conf)
			}
		}
	}
}
