package energy

import (
	"math/rand"
	"testing"

	"misam/internal/sim"
	"misam/internal/sparse"
)

func TestFPGAPowerBounds(t *testing.T) {
	for _, id := range sim.AllDesigns {
		idle := FPGAPower(id, 0)
		busy := FPGAPower(id, 1)
		if idle < FPGAStaticWatts {
			t.Errorf("%v idle power %.1f below static floor", id, idle)
		}
		if busy <= idle {
			t.Errorf("%v busy power %.1f not above idle %.1f", id, busy, idle)
		}
		if busy > 60 {
			t.Errorf("%v busy power %.1f implausibly high for a U55C", id, busy)
		}
	}
	// Clamping.
	if FPGAPower(sim.Design1, -1) != FPGAPower(sim.Design1, 0) {
		t.Error("negative utilization not clamped")
	}
	if FPGAPower(sim.Design1, 2) != FPGAPower(sim.Design1, 1) {
		t.Error("excess utilization not clamped")
	}
}

func TestBiggerDesignDrawsMore(t *testing.T) {
	// Designs 2/3 instantiate more fabric than Design 4 (Table 2).
	if FPGAPower(sim.Design2, 0.8) <= FPGAPower(sim.Design4, 0.8) {
		t.Error("Design 2 should draw more than Design 4 at equal utilization")
	}
}

func TestGPUPowerInterpolation(t *testing.T) {
	if GPUPower(0) != GPUSparseWatts || GPUPower(1) != GPUDenseWatts {
		t.Error("GPU power endpoints wrong")
	}
	mid := GPUPower(0.5)
	if mid <= GPUSparseWatts || mid >= GPUDenseWatts {
		t.Errorf("GPU mid power %.1f outside range", mid)
	}
	if GPUPower(-1) != GPUSparseWatts || GPUPower(2) != GPUDenseWatts {
		t.Error("GPU density not clamped")
	}
}

func TestEnergyFormula(t *testing.T) {
	if Energy(100, 2.5) != 250 {
		t.Error("energy = power × time")
	}
}

func TestFPGAEnergyUsesResult(t *testing.T) {
	r := sim.Result{Design: sim.Design1, Seconds: 2, PEUtilization: 0.5}
	want := FPGAPower(sim.Design1, 0.5) * 2
	if got := FPGAEnergy(r); got != want {
		t.Errorf("FPGAEnergy = %v, want %v", got, want)
	}
}

func TestFPGAMoreEfficientThanCPUAndGPU(t *testing.T) {
	// The premise of Figure 11: at equal runtime the FPGA draws far less.
	for _, id := range sim.AllDesigns {
		if FPGAPower(id, 1) >= CPUActiveWatts {
			t.Errorf("%v power should undercut the CPU's %v W", id, CPUActiveWatts)
		}
		if FPGAPower(id, 1) >= GPUSparseWatts {
			t.Errorf("%v power should undercut the GPU's sparse %v W", id, GPUSparseWatts)
		}
	}
}

func TestDetailedEnergyComponents(t *testing.T) {
	cfg := sim.GetConfig(sim.Design2)
	r := sim.Result{
		Design:       sim.Design2,
		Seconds:      0.01,
		AReadCycles:  1000,
		BReadCycles:  5000,
		CWriteCycles: 2000,
		Flops:        1_000_000,
	}
	b := DetailedEnergy(cfg, r)
	if b.HBM <= 0 || b.BRAM <= 0 || b.Compute <= 0 || b.Static <= 0 {
		t.Fatalf("all components must be positive: %+v", b)
	}
	if b.Total() != b.HBM+b.BRAM+b.Compute+b.Static {
		t.Error("Total does not sum components")
	}
	// Static power over 10 ms dominates these tiny event counts.
	if b.Static < b.Compute {
		t.Errorf("static %v should dominate compute %v here", b.Static, b.Compute)
	}
}

func TestDetailedEnergyHBMDominatesOnChip(t *testing.T) {
	// Per byte, DRAM costs ~40× more than BRAM — the architectural reason
	// Design 4 compresses B (§3.2.4).
	if HBMPicojoulePerByte < 20*BRAMPicojoulePerByte {
		t.Error("HBM/BRAM energy ratio implausibly small")
	}
}

func TestDetailedEnergyConsistentWithEnvelope(t *testing.T) {
	// On a realistic simulated run, the event-based estimate should land
	// within an order of magnitude of the utilization-scaled envelope.
	rng := rand.New(rand.NewSource(1))
	a := sparse.Uniform(rng, 3000, 3000, 0.01)
	bm := sparse.DenseRandom(rng, 3000, 128)
	res, err := sim.SimulateDesign(sim.Design2, a, bm)
	if err != nil {
		t.Fatal(err)
	}
	envelope := FPGAEnergy(res)
	detailed := DetailedEnergy(sim.GetConfig(sim.Design2), res).Total()
	ratio := detailed / envelope
	if ratio < 0.1 || ratio > 10 {
		t.Errorf("detailed %.2e J vs envelope %.2e J: ratio %.2f outside [0.1,10]", detailed, envelope, ratio)
	}
}
