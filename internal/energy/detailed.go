package energy

import "misam/internal/sim"

// Detailed energy model: instead of scaling a power envelope by
// utilization, charge each architectural event its published energy cost
// — HBM accesses, on-chip BRAM reads, FP32 multiply-accumulates — plus
// leakage over the run. The per-event constants follow the usual
// 16 nm-class figures-of-merit (HBM2 ≈ 4 pJ/bit, SRAM ≈ 0.1 pJ/bit,
// FP32 MAC ≈ 5 pJ on FPGA fabric).
const (
	// HBMPicojoulePerByte is the DRAM access energy (≈4 pJ/bit).
	HBMPicojoulePerByte = 32.0
	// BRAMPicojoulePerByte is the on-chip buffer access energy.
	BRAMPicojoulePerByte = 0.8
	// MACPicojoule is one FP32 multiply-accumulate on fabric DSPs.
	MACPicojoule = 5.0
	// LeakageWatts is the static draw charged over the whole run.
	LeakageWatts = FPGAStaticWatts
)

// Breakdown decomposes a run's energy by component, in joules.
type Breakdown struct {
	HBM     float64
	BRAM    float64
	Compute float64
	Static  float64
}

// Total sums the components.
func (b Breakdown) Total() float64 { return b.HBM + b.BRAM + b.Compute + b.Static }

// DetailedEnergy charges each event class of a simulated run. Byte
// counts derive from the result's cycle breakdown and the design's
// channel widths: every read/write cycle moves 64 bytes per channel
// (512-bit HBM interfaces).
func DetailedEnergy(cfg sim.Config, r sim.Result) Breakdown {
	const bytesPerChannelCycle = 64.0
	pj := 1e-12
	var b Breakdown
	hbmBytes := bytesPerChannelCycle * (float64(r.AReadCycles)*float64(cfg.ChA) +
		float64(r.BReadCycles)*float64(cfg.ChB) +
		float64(r.CWriteCycles)*float64(cfg.ChC))
	b.HBM = hbmBytes * HBMPicojoulePerByte * pj
	// Every useful MAC reads its B operand from BRAM and updates a URAM
	// accumulator: ~8 bytes of on-chip traffic per flop.
	b.BRAM = float64(r.Flops) * 8 * BRAMPicojoulePerByte * pj
	b.Compute = float64(r.Flops) * MACPicojoule * pj
	b.Static = LeakageWatts * r.Seconds
	return b
}
