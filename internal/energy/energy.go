// Package energy models power draw and energy consumption for the three
// platforms the paper measures: the Misam FPGA designs (profiled with
// xbutil in the paper), the Intel i9-11980HK CPU (RAPL/PowerCap), and the
// NVIDIA RTX A6000 GPU (NVML). Energy is power × kernel time, the same
// formula the paper uses ("measured power values are combined with the
// kernel execution time", §4); the power numbers are static models chosen
// to match each platform's published envelope.
package energy

import "misam/internal/sim"

// Platform power constants (watts).
const (
	// FPGAStaticWatts is the Alveo U55C board idle draw (shell, HBM
	// refresh, transceivers).
	FPGAStaticWatts = 23.0
	// CPUActiveWatts models the i9-11980HK under an MKL SpGEMM load: a
	// 45 W sustained package power within its 65 W TDP.
	CPUActiveWatts = 45.0
	// GPUSparseWatts models the RTX A6000 on irregular sparse kernels —
	// well under its 300 W board power because the SMs stall on memory.
	GPUSparseWatts = 180.0
	// GPUDenseWatts models the A6000 on dense GEMM-like work where the
	// tensor pipeline keeps the card near its envelope.
	GPUDenseWatts = 270.0
)

// FPGAPower estimates a Misam design's draw in watts: board static power
// plus dynamic power scaled by the fabric the design instantiates
// (Table 2 DSP/LUT usage) and how busy its PEs are.
func FPGAPower(id sim.DesignID, utilization float64) float64 {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	res := sim.DesignResources(id)
	// Full-fabric dynamic budget for this card class is ~50 W; a design
	// draws its resource share of it, scaled by activity.
	dynamicFull := 50.0 * (res.LUT + res.DSP) / 200.0
	return FPGAStaticWatts + dynamicFull*(0.3+0.7*utilization)
}

// FPGAEnergy returns joules consumed by a simulated Misam run.
func FPGAEnergy(r sim.Result) float64 {
	return FPGAPower(r.Design, r.PEUtilization) * r.Seconds
}

// GPUPower interpolates the A6000 draw by how dense the workload is
// (density of the B operand is the main determinant of tensor-pipeline
// activity).
func GPUPower(bDensity float64) float64 {
	if bDensity < 0 {
		bDensity = 0
	}
	if bDensity > 1 {
		bDensity = 1
	}
	return GPUSparseWatts + (GPUDenseWatts-GPUSparseWatts)*bDensity
}

// Energy is the paper's estimate: measured power × kernel time.
func Energy(powerWatts, seconds float64) float64 { return powerWatts * seconds }
