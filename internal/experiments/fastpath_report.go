package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"misam"
)

// FastPathTier is one confidence threshold's serving profile in the
// fast-path report: how much traffic the gate let through, how often the
// model's proposal matched the simulated optimum, and the request
// latency distribution against the full-simulation baseline.
type FastPathTier struct {
	Confidence float64 `json:"confidence"`
	Requests   int     `json:"requests"`
	Fast       int     `json:"fast"`
	// Coverage is the fraction of requests served from the model alone.
	Coverage float64 `json:"coverage"`
	// Agreement is the fraction of fast-served requests whose proposed
	// design matched the full-simulation argmin for the same operands
	// (0 when nothing was served fast).
	Agreement float64 `json:"agreement"`
	P50NsOp   int64   `json:"p50_ns_op"`
	P99NsOp   int64   `json:"p99_ns_op"`
	// FastP50NsOp is the median over fast-served requests only — the
	// latency a high-confidence cache-miss request actually sees.
	FastP50NsOp   int64   `json:"fast_p50_ns_op"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// SpeedupP50 compares this tier's overall median to the baseline's;
	// FastSpeedupP50 compares the fast-served median.
	SpeedupP50     float64 `json:"speedup_p50"`
	FastSpeedupP50 float64 `json:"fast_speedup_p50"`
}

// FastPathReportData is the machine-readable fast-path trajectory record
// (BENCH_PR5.json): a full-simulation baseline plus one tier per gate
// threshold, all measured on the same distinct-pair (cache-miss) stream.
type FastPathReportData struct {
	Schema                string         `json:"schema"`
	GOMAXPROCS            int            `json:"gomaxprocs"`
	NumCPU                int            `json:"num_cpu"`
	Requests              int            `json:"requests"`
	BaselineP50NsOp       int64          `json:"baseline_p50_ns_op"`
	BaselineP99NsOp       int64          `json:"baseline_p99_ns_op"`
	BaselineThroughputRPS float64        `json:"baseline_throughput_rps"`
	Tiers                 []FastPathTier `json:"tiers"`
}

// pctNs returns the p-quantile (0..1) of ns by sorting a copy.
func pctNs(ns []int64, p float64) int64 {
	if len(ns) == 0 {
		return 0
	}
	s := append([]int64(nil), ns...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(float64(len(s)-1)*p)]
}

// FastPathReport serves one stream of distinct operand pairs through the
// plain pipeline and again through the confidence-gated pipeline at each
// threshold, and records latency percentiles, throughput, gate coverage
// and fast/full agreement. Every request is a cache miss (fresh cache
// per run, no repeated pairs), so the comparison is between the two
// build paths — full simulation versus features + tree walk + regressor
// pricing — not between a miss and a warm hit.
func FastPathReport(ctxE *Context, path string, w io.Writer) (FastPathReportData, error) {
	header(w, "Fast-path report: confidence-gated serving vs full simulation")
	rep := FastPathReportData{
		Schema:     "misam-fastpath/1",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	fw, err := ctxE.Framework()
	if err != nil {
		return rep, fmt.Errorf("experiments: fastpath framework: %w", err)
	}

	// Distinct pairs spanning the generator families; dims scale with
	// the configured MaxDim so -scale quick stays CI-sized.
	dim := ctxE.Cfg.MaxDim
	if dim < 128 {
		dim = 128
	}
	const nPairs = 40
	type pair struct{ a, b *misam.Matrix }
	pairs := make([]pair, nPairs)
	for i := range pairs {
		s := int64(9000 + i*11)
		n := dim/2 + (i*131)%(dim/2)
		if i%2 == 0 {
			pairs[i] = pair{
				a: misam.RandUniform(s, n, n, 0.02),
				b: misam.RandDense(s+1, n, 64),
			}
		} else {
			pairs[i] = pair{
				a: misam.RandPowerLaw(s, n, n, n*8, 1.8),
				b: misam.RandUniform(s+1, n, 96, 0.05),
			}
		}
	}
	rep.Requests = nPairs

	type reqResult struct {
		ns  int64
		rep misam.Report
	}
	serve := func(f *misam.Framework, fast bool) ([]reqResult, float64, error) {
		dev := f.NewDevice("bench")
		out := make([]reqResult, 0, len(pairs))
		start := time.Now()
		for _, p := range pairs {
			t0 := time.Now()
			wl, err := misam.NewWorkload(p.a, p.b)
			if err != nil {
				return nil, 0, err
			}
			var r misam.Report
			if fast {
				r, err = f.AnalyzeFastOn(context.Background(), dev, wl)
			} else {
				r, err = f.AnalyzeOn(context.Background(), dev, wl)
			}
			if err != nil {
				return nil, 0, err
			}
			out = append(out, reqResult{time.Since(t0).Nanoseconds(), r})
		}
		return out, float64(len(pairs)) / time.Since(start).Seconds(), nil
	}

	// Baseline: the plain pipeline, and the per-pair simulated optimum
	// the tiers' agreement is judged against.
	bcp := *fw
	base, baseRPS, err := serve((&bcp).WithCache(64<<20), false)
	if err != nil {
		return rep, fmt.Errorf("experiments: fastpath baseline: %w", err)
	}
	baseNs := make([]int64, len(base))
	for i, r := range base {
		baseNs[i] = r.ns
	}
	rep.BaselineP50NsOp = pctNs(baseNs, 0.50)
	rep.BaselineP99NsOp = pctNs(baseNs, 0.99)
	rep.BaselineThroughputRPS = baseRPS

	for _, th := range []float64{0.6, 0.8, 0.9, 1.0} {
		cp := *fw
		tfw := (&cp).WithCache(64 << 20).WithFastPath(misam.FastPathConfig{Confidence: th, VerifySample: 0})
		res, rps, err := serve(tfw, true)
		tfw.Close()
		if err != nil {
			return rep, fmt.Errorf("experiments: fastpath tier %.2f: %w", th, err)
		}
		var allNs, fastNs []int64
		var agree int
		for i, r := range res {
			allNs = append(allNs, r.ns)
			if r.rep.Path == misam.PathFast {
				fastNs = append(fastNs, r.ns)
				if r.rep.Design == base[i].rep.Design {
					agree++
				}
			}
		}
		tier := FastPathTier{
			Confidence:    th,
			Requests:      len(res),
			Fast:          len(fastNs),
			Coverage:      float64(len(fastNs)) / float64(len(res)),
			P50NsOp:       pctNs(allNs, 0.50),
			P99NsOp:       pctNs(allNs, 0.99),
			FastP50NsOp:   pctNs(fastNs, 0.50),
			ThroughputRPS: rps,
		}
		if len(fastNs) > 0 {
			tier.Agreement = float64(agree) / float64(len(fastNs))
			tier.FastSpeedupP50 = float64(rep.BaselineP50NsOp) / float64(tier.FastP50NsOp)
		}
		if tier.P50NsOp > 0 {
			tier.SpeedupP50 = float64(rep.BaselineP50NsOp) / float64(tier.P50NsOp)
		}
		rep.Tiers = append(rep.Tiers, tier)
	}

	fmt.Fprintf(w, "%-10s %9s %10s %12s %12s %12s %10s %10s\n",
		"gate", "coverage", "agreement", "p50 ns/op", "p99 ns/op", "fast p50", "rps", "speedup")
	fmt.Fprintf(w, "%-10s %9s %10s %12d %12d %12s %10.1f %10s\n",
		"full-sim", "-", "-", rep.BaselineP50NsOp, rep.BaselineP99NsOp, "-", rep.BaselineThroughputRPS, "1.00x")
	for _, t := range rep.Tiers {
		agreement := "-"
		if t.Fast > 0 {
			agreement = fmt.Sprintf("%.3f", t.Agreement)
		}
		fastP50 := "-"
		if t.Fast > 0 {
			fastP50 = fmt.Sprintf("%d", t.FastP50NsOp)
		}
		fmt.Fprintf(w, "%-10.2f %8.0f%% %10s %12d %12d %12s %10.1f %9.2fx\n",
			t.Confidence, 100*t.Coverage, agreement, t.P50NsOp, t.P99NsOp, fastP50, t.ThroughputRPS, t.SpeedupP50)
	}
	fmt.Fprintf(w, "(distinct pairs: every request misses the cache; agreement is vs the simulated argmin)\n")

	if path != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return rep, err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return rep, fmt.Errorf("experiments: fastpath report: %w", err)
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	}
	return rep, nil
}
