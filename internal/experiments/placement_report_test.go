package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPlacementReport is the placement layer's equivalence gate: it
// replays the skewed stream through the FIFO pool and the placement
// pool and fails unless every request's analysis (features, all four
// design Results, baselines, model version) is bit-identical between
// the two, while the placement pool still avoids at least half the
// FIFO pool's reconfigurations. PlacementReport's own validation
// enforces both after re-reading the JSON it wrote.
//
// The report publishes a CGRA-mode pricing snapshot into its context's
// framework, so it gets a private context instead of the shared
// ctxForTest one.
func TestPlacementReport(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a quick-scale model and replays 2x96 requests")
	}
	ctx := NewContext(QuickConfig())
	path := filepath.Join(t.TempDir(), "BENCH_PR7.json")
	var sb strings.Builder
	data, err := PlacementReport(ctx, path, &sb)
	if err != nil {
		t.Fatalf("PlacementReport: %v\noutput:\n%s", err, sb.String())
	}

	if !data.ReportsBitIdentical {
		t.Fatal("placement changed an analysis result (bit-identity broken)")
	}
	if data.FIFOReconfigs == 0 {
		t.Fatal("stream triggered no FIFO reconfigurations; the benchmark regime is degenerate")
	}
	if data.ReconfigsAvoidedVsFIFO < 0.5 {
		t.Fatalf("placement avoided only %.0f%% of FIFO reconfigurations, want >= 50%%",
			100*data.ReconfigsAvoidedVsFIFO)
	}
	if data.PlacedReconfigs > data.FIFOReconfigs {
		t.Errorf("placement paid more reconfigs (%d) than FIFO (%d)", data.PlacedReconfigs, data.FIFOReconfigs)
	}
	if data.AffinityHits == 0 {
		t.Error("placement pool recorded no affinity hits on a skewed stream")
	}
	if data.Requests == 0 || data.Devices == 0 || data.BitstreamGroups < 2 {
		t.Errorf("stream shape degenerate: %d requests, %d devices, %d bitstream groups",
			data.Requests, data.Devices, data.BitstreamGroups)
	}

	// The file on disk must round-trip to the same verdicts.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var onDisk PlacementReportData
	if err := json.Unmarshal(raw, &onDisk); err != nil {
		t.Fatalf("BENCH_PR7.json is not valid JSON: %v", err)
	}
	if onDisk.Schema != data.Schema || !onDisk.ReportsBitIdentical ||
		onDisk.FIFOReconfigs != data.FIFOReconfigs || onDisk.PlacedReconfigs != data.PlacedReconfigs {
		t.Errorf("written report disagrees with returned data: %+v vs %+v", onDisk, data)
	}
	for _, want := range []string{"fifo", "placement", "bit-identical true"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, sb.String())
		}
	}
}
