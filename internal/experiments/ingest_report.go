package experiments

// The PR8 ingest trajectory record: zero-copy binary ingestion versus
// the MatrixMarket-over-JSON path, measured three ways — raw operand
// decode (the codec itself), end-to-end fast-path serving over HTTP in
// both formats, and the warm-hit path where a repeated binary request is
// answered from its wire fingerprint without decoding at all.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"misam"
	"misam/internal/features"
	"misam/internal/server"
	"misam/internal/sparse"
)

// IngestReportData is the machine-readable ingest record
// (BENCH_PR8.json).
type IngestReportData struct {
	Schema     string `json:"schema"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`

	// Decode microbenchmark at the reference scale
	// (uniform:2000:2000:0.01): one operand, MatrixMarket text versus the
	// binary wire format.
	Rows    int     `json:"rows"`
	Cols    int     `json:"cols"`
	Density float64 `json:"density"`
	NNZ     int     `json:"nnz"`
	// Payload sizes for the same operand in each format.
	MTXBytes    int `json:"mtx_bytes"`
	BinaryBytes int `json:"binary_bytes"`

	MTXDecodeNsOp        int64   `json:"mtx_decode_ns_op"`
	MTXDecodeAllocsOp    int64   `json:"mtx_decode_allocs_op"`
	BinaryDecodeNsOp     int64   `json:"binary_decode_ns_op"`
	BinaryDecodeAllocsOp int64   `json:"binary_decode_allocs_op"`
	BinaryEncodeNsOp     int64   `json:"binary_encode_ns_op"`
	DecodeSpeedup        float64 `json:"decode_speedup"`

	// Feature extraction at the same scale: the four-pass extractor
	// versus the fused one-pass walk (warm scratch).
	MultiPassExtractNsOp int64   `json:"multipass_extract_ns_op"`
	FusedExtractNsOp     int64   `json:"fused_extract_ns_op"`
	ExtractSpeedup       float64 `json:"extract_speedup"`

	// Identical pins transport-independence: the operand decoded from
	// MatrixMarket and from the wire image have bit-equal fingerprints,
	// and Extract/ExtractFused agree bit-for-bit on it. The wire-image
	// fingerprint (computed without decoding) matches too.
	Identical bool `json:"identical"`

	// End-to-end fast-path serving over HTTP, same operand pairs through
	// identically configured servers, one per format.
	E2ERequests     int     `json:"e2e_requests"`
	E2EJSONP50NsOp  int64   `json:"e2e_json_p50_ns_op"`
	E2EJSONP99NsOp  int64   `json:"e2e_json_p99_ns_op"`
	E2EBinP50NsOp   int64   `json:"e2e_bin_p50_ns_op"`
	E2EBinP99NsOp   int64   `json:"e2e_bin_p99_ns_op"`
	E2ESpeedupP50   float64 `json:"e2e_speedup_p50"`
	WarmHitP50NsOp  int64   `json:"warm_hit_p50_ns_op"`
	PR5BaselineP50  int64   `json:"pr5_baseline_p50_ns_op,omitempty"`
	SpeedupVsPR5P50 float64 `json:"speedup_vs_pr5_p50,omitempty"`
}

// ingestOperand is the reference decode-benchmark matrix.
func ingestOperand() *misam.Matrix {
	return misam.RandUniform(77, 2000, 2000, 0.01)
}

// postTimed sends one request and returns its wall time and the decoded
// response body.
func postTimed(client *http.Client, url, contentType string, body []byte) (int64, map[string]any, error) {
	t0 := time.Now()
	resp, err := client.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, nil, err
	}
	ns := time.Since(t0).Nanoseconds()
	if resp.StatusCode != http.StatusOK {
		return 0, nil, fmt.Errorf("status %d: %v", resp.StatusCode, out)
	}
	return ns, out, nil
}

// IngestReport measures binary versus JSON ingestion and rewrites the
// BENCH_PR8.json trajectory record.
func IngestReport(ctxE *Context, path string, w io.Writer) (IngestReportData, error) {
	header(w, "Ingest report: zero-copy binary wire format vs MatrixMarket/JSON")
	rep := IngestReportData{
		Schema:     "misam-ingest/1",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	// --- Decode microbenchmark (fixed reference scale, independent of
	// -scale: the acceptance gates are stated at uniform:2000:2000:0.01).
	m := ingestOperand()
	rep.Rows, rep.Cols, rep.Density, rep.NNZ = m.Rows, m.Cols, 0.01, m.NNZ()

	var mtxDoc bytes.Buffer
	if err := misam.WriteMatrixMarket(&mtxDoc, m); err != nil {
		return rep, fmt.Errorf("experiments: ingest: %w", err)
	}
	wire := misam.EncodeMatrixBinary(m)
	rep.MTXBytes = mtxDoc.Len()
	rep.BinaryBytes = len(wire)

	mtxRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := misam.ReadMatrixMarket(bytes.NewReader(mtxDoc.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.MTXDecodeNsOp = int64(mtxRes.NsPerOp())
	rep.MTXDecodeAllocsOp = mtxRes.AllocsPerOp()

	binRes := testing.Benchmark(func(b *testing.B) {
		var dst sparse.CSR
		if _, err := sparse.DecodeBinaryInto(&dst, wire); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sparse.DecodeBinaryInto(&dst, wire); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.BinaryDecodeNsOp = int64(binRes.NsPerOp())
	rep.BinaryDecodeAllocsOp = binRes.AllocsPerOp()
	if rep.BinaryDecodeNsOp > 0 {
		rep.DecodeSpeedup = float64(rep.MTXDecodeNsOp) / float64(rep.BinaryDecodeNsOp)
	}

	encRes := testing.Benchmark(func(b *testing.B) {
		dst := make([]byte, 0, sparse.EncodedSize(m))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = sparse.AppendBinary(dst[:0], m)
		}
	})
	rep.BinaryEncodeNsOp = int64(encRes.NsPerOp())

	// --- Fused extraction at the same scale.
	mb := misam.RandUniform(78, 2000, 2000, 0.01)
	multiRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			features.Extract(m, mb)
		}
	})
	rep.MultiPassExtractNsOp = int64(multiRes.NsPerOp())
	fusedRes := testing.Benchmark(func(b *testing.B) {
		var s features.FusedScratch
		s.Extract(m, mb)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Extract(m, mb)
		}
	})
	rep.FusedExtractNsOp = int64(fusedRes.NsPerOp())
	if rep.FusedExtractNsOp > 0 {
		rep.ExtractSpeedup = float64(rep.MultiPassExtractNsOp) / float64(rep.FusedExtractNsOp)
	}

	// --- Transport independence: both decodes land on the same bits.
	fromMtx, err := misam.ReadMatrixMarket(bytes.NewReader(mtxDoc.Bytes()))
	if err != nil {
		return rep, fmt.Errorf("experiments: ingest: %w", err)
	}
	view, _, err := misam.ParseWireMatrix(wire)
	if err != nil {
		return rep, fmt.Errorf("experiments: ingest: %w", err)
	}
	fromWire := view.Decode()
	rep.Identical = fromMtx.Fingerprint() == fromWire.Fingerprint() &&
		view.Fingerprint() == fromMtx.Fingerprint()
	if rep.Identical {
		want := features.Extract(fromMtx, mb)
		got, _ := features.ExtractFused(fromWire, mb)
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				rep.Identical = false
				break
			}
		}
	}

	// --- End-to-end: the same pairs through identically configured
	// fast-path servers, one per ingestion format, cold caches both.
	fw, err := ctxE.Framework()
	if err != nil {
		return rep, fmt.Errorf("experiments: ingest framework: %w", err)
	}
	serveCfg := server.Config{FastPath: true, Confidence: 0.05, VerifySample: -1, CacheBytes: 64 << 20}

	const nPairs = 10
	type pair struct{ a, b *misam.Matrix }
	pairs := make([]pair, nPairs)
	for i := range pairs {
		s := int64(4000 + i*13)
		pairs[i] = pair{
			a: misam.RandUniform(s, 2000, 2000, 0.01),
			b: misam.RandUniform(s+1, 2000, 256, 0.02),
		}
	}
	rep.E2ERequests = nPairs

	jsonBodies := make([][]byte, nPairs)
	binBodies := make([][]byte, nPairs)
	for i, p := range pairs {
		var adoc, bdoc bytes.Buffer
		if err := misam.WriteMatrixMarket(&adoc, p.a); err != nil {
			return rep, err
		}
		if err := misam.WriteMatrixMarket(&bdoc, p.b); err != nil {
			return rep, err
		}
		jsonBodies[i], err = json.Marshal(map[string]string{"a_mtx": adoc.String(), "b_mtx": bdoc.String()})
		if err != nil {
			return rep, err
		}
		binBodies[i] = misam.AppendMatrixBinary(misam.AppendMatrixBinary(nil, p.a), p.b)
	}

	serveAll := func(contentType string, bodies [][]byte) ([]int64, *httptest.Server, *server.Server, error) {
		cp := *fw
		srv := server.NewWithConfig(&cp, serveCfg)
		ts := httptest.NewServer(srv.Handler())
		client := ts.Client()
		ns := make([]int64, 0, len(bodies))
		for _, body := range bodies {
			n, _, err := postTimed(client, ts.URL+"/v1/analyze", contentType, body)
			if err != nil {
				ts.Close()
				srv.Close()
				return nil, nil, nil, err
			}
			ns = append(ns, n)
		}
		return ns, ts, srv, nil
	}

	jsonNs, jts, jsrv, err := serveAll("application/json", jsonBodies)
	if err != nil {
		return rep, fmt.Errorf("experiments: ingest JSON serve: %w", err)
	}
	jts.Close()
	jsrv.Close()
	rep.E2EJSONP50NsOp = pctNs(jsonNs, 0.50)
	rep.E2EJSONP99NsOp = pctNs(jsonNs, 0.99)

	binNs, bts, bsrv, err := serveAll(server.BinaryContentType, binBodies)
	if err != nil {
		return rep, fmt.Errorf("experiments: ingest binary serve: %w", err)
	}
	rep.E2EBinP50NsOp = pctNs(binNs, 0.50)
	rep.E2EBinP99NsOp = pctNs(binNs, 0.99)
	if rep.E2EBinP50NsOp > 0 {
		rep.E2ESpeedupP50 = float64(rep.E2EJSONP50NsOp) / float64(rep.E2EBinP50NsOp)
	}

	// Warm hits: the binary server has every pair's fast entry cached, so
	// repeats answer from the wire fingerprint without decoding.
	warm := make([]int64, 0, 3*nPairs)
	client := bts.Client()
	for round := 0; round < 3; round++ {
		for _, body := range binBodies {
			n, _, err := postTimed(client, bts.URL+"/v1/analyze", server.BinaryContentType, body)
			if err != nil {
				bts.Close()
				bsrv.Close()
				return rep, fmt.Errorf("experiments: ingest warm serve: %w", err)
			}
			warm = append(warm, n)
		}
	}
	bts.Close()
	bsrv.Close()
	rep.WarmHitP50NsOp = pctNs(warm, 0.50)

	// The PR5 record's full-simulation serving baseline, when present —
	// the "what did leaving the slow tier buy" yardstick.
	if data, err := os.ReadFile("BENCH_PR5.json"); err == nil {
		var pr5 struct {
			BaselineP50NsOp int64 `json:"baseline_p50_ns_op"`
		}
		if json.Unmarshal(data, &pr5) == nil && pr5.BaselineP50NsOp > 0 {
			rep.PR5BaselineP50 = pr5.BaselineP50NsOp
			rep.SpeedupVsPR5P50 = float64(pr5.BaselineP50NsOp) / float64(rep.E2EBinP50NsOp)
		}
	}

	fmt.Fprintf(w, "operand uniform:%d:%d:%.2g (%d nnz): mtx %d B, binary %d B\n",
		rep.Rows, rep.Cols, rep.Density, rep.NNZ, rep.MTXBytes, rep.BinaryBytes)
	fmt.Fprintf(w, "%-24s %14s %12s\n", "decode", "ns/op", "allocs/op")
	fmt.Fprintf(w, "%-24s %14d %12d\n", "matrixmarket", rep.MTXDecodeNsOp, rep.MTXDecodeAllocsOp)
	fmt.Fprintf(w, "%-24s %14d %12d   (%.1fx faster)\n", "binary (steady state)",
		rep.BinaryDecodeNsOp, rep.BinaryDecodeAllocsOp, rep.DecodeSpeedup)
	fmt.Fprintf(w, "%-24s %14d %12s\n", "binary encode", rep.BinaryEncodeNsOp, "-")
	fmt.Fprintf(w, "extract: multi-pass %d ns/op, fused one-pass %d ns/op (%.2fx); transport-identical %v\n",
		rep.MultiPassExtractNsOp, rep.FusedExtractNsOp, rep.ExtractSpeedup, rep.Identical)
	fmt.Fprintf(w, "e2e fast-path p50: json %d ns, binary %d ns (%.1fx), warm binary hit %d ns\n",
		rep.E2EJSONP50NsOp, rep.E2EBinP50NsOp, rep.E2ESpeedupP50, rep.WarmHitP50NsOp)
	if rep.PR5BaselineP50 > 0 {
		fmt.Fprintf(w, "vs BENCH_PR5 full-sim serving baseline %d ns: %.1fx\n", rep.PR5BaselineP50, rep.SpeedupVsPR5P50)
	}

	if path != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return rep, err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return rep, fmt.Errorf("experiments: ingest report: %w", err)
		}
		// Re-read and gate: the record is a CI artifact carrying the PR's
		// acceptance criteria — a run that misses them fails loudly.
		back, err := os.ReadFile(path)
		if err != nil {
			return rep, err
		}
		var check IngestReportData
		if err := json.Unmarshal(back, &check); err != nil {
			return rep, fmt.Errorf("experiments: ingest report unreadable: %w", err)
		}
		if check.Schema != "misam-ingest/1" {
			return rep, fmt.Errorf("experiments: ingest report schema %q", check.Schema)
		}
		if !check.Identical {
			return rep, fmt.Errorf("experiments: binary and MatrixMarket ingestion disagree bit-wise")
		}
		if check.DecodeSpeedup < 3 {
			return rep, fmt.Errorf("experiments: binary decode speedup %.2fx, want >= 3x", check.DecodeSpeedup)
		}
		if check.BinaryDecodeAllocsOp != 0 {
			return rep, fmt.Errorf("experiments: steady-state binary decode allocates (%d allocs/op)", check.BinaryDecodeAllocsOp)
		}
		if check.E2EBinP50NsOp <= 0 || check.E2EBinP50NsOp >= check.E2EJSONP50NsOp {
			return rep, fmt.Errorf("experiments: binary e2e p50 %d ns not better than JSON %d ns",
				check.E2EBinP50NsOp, check.E2EJSONP50NsOp)
		}
		if check.PR5BaselineP50 > 0 && check.E2EBinP50NsOp >= check.PR5BaselineP50 {
			return rep, fmt.Errorf("experiments: binary e2e p50 %d ns not better than the PR5 baseline %d ns",
				check.E2EBinP50NsOp, check.PR5BaselineP50)
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	}
	return rep, nil
}
