// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5, §6). Each driver computes the quantities the
// paper reports and renders them as text rows matching the published
// artifact; the root-level benchmark harness and cmd/misam-bench invoke
// them. Drivers accept a Config so unit tests run scaled-down versions
// while the CLI can regenerate paper-scale results.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sync"

	"misam"
	"misam/internal/dataset"
	"misam/internal/workload"
)

// Config scales the experiment drivers.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// CorpusSize / LatencyCorpusSize / MaxDim configure model training.
	CorpusSize        int
	LatencyCorpusSize int
	MaxDim            int
	// Reduction divides the evaluation-suite matrix sizes (1 = paper
	// scale); DenseCols is the dense-B width (512 in the paper).
	Reduction int
	DenseCols int
}

// DefaultConfig runs every experiment in tens of seconds.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		CorpusSize:        400,
		LatencyCorpusSize: 800,
		MaxDim:            768,
		Reduction:         16,
		DenseCols:         256,
	}
}

// QuickConfig is for unit tests.
func QuickConfig() Config {
	return Config{
		Seed:              1,
		CorpusSize:        220,
		LatencyCorpusSize: 280,
		MaxDim:            448,
		Reduction:         48,
		DenseCols:         64,
	}
}

// PaperConfig approaches the paper's scales (minutes of runtime).
func PaperConfig() Config {
	return Config{
		Seed:              1,
		CorpusSize:        6219,
		LatencyCorpusSize: 19000,
		MaxDim:            2048,
		Reduction:         4,
		DenseCols:         512,
	}
}

// Context lazily builds the shared expensive artifacts: the trained
// framework (selector + latency predictor + corpus) and the evaluation
// suite.
type Context struct {
	Cfg Config

	fwOnce sync.Once
	fw     *misam.Framework
	fwErr  error

	suiteOnce sync.Once
	suite     []workload.Workload
}

// NewContext returns a context for cfg.
func NewContext(cfg Config) *Context { return &Context{Cfg: cfg} }

// Framework returns the trained framework, training it on first use.
func (c *Context) Framework() (*misam.Framework, error) {
	c.fwOnce.Do(func() {
		c.fw, c.fwErr = misam.Train(misam.TrainOptions{
			CorpusSize:        c.Cfg.CorpusSize,
			LatencyCorpusSize: c.Cfg.LatencyCorpusSize,
			MaxDim:            c.Cfg.MaxDim,
			Seed:              c.Cfg.Seed,
		})
	})
	return c.fw, c.fwErr
}

// Corpus returns the training corpus behind the framework.
func (c *Context) Corpus() (*dataset.Corpus, error) {
	fw, err := c.Framework()
	if err != nil {
		return nil, err
	}
	return fw.Corpus, nil
}

// Suite returns the 113-workload evaluation set.
func (c *Context) Suite() []workload.Workload {
	c.suiteOnce.Do(func() {
		c.suite = workload.Suite(workload.Options{
			Reduction: c.Cfg.Reduction,
			DenseCols: c.Cfg.DenseCols,
			Seed:      c.Cfg.Seed,
		})
	})
	return c.suite
}

// RNG returns a fresh deterministic generator offset from the seed so
// drivers do not perturb each other.
func (c *Context) RNG(offset int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Cfg.Seed*1315423911 + offset))
}

// header prints a boxed experiment title.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
