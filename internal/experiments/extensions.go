package experiments

import (
	"fmt"
	"io"
	"time"

	"misam"
	"misam/internal/features"
	"misam/internal/mltree"
	"misam/internal/reconfig"
	"misam/internal/sim"
	"misam/internal/sparse"
	"misam/internal/stats"
	"misam/internal/workload"
)

// RouterResult is the §6.3 heterogeneous-routing extension: a selector
// that sends each workload to the fastest of {CPU, GPU, Misam}.
type RouterResult struct {
	// Counts[d] is how many suite workloads the router sent to device d.
	Counts [misam.NumDevices]int
	// OracleCounts is the true fastest-device distribution.
	OracleCounts [misam.NumDevices]int
	// Accuracy is agreement between router and oracle over the suite.
	Accuracy float64
	// GeoSpeedupOverMisamOnly is the geomean gain of routed execution
	// over always using the FPGA.
	GeoSpeedupOverMisamOnly float64
}

// Router runs the §6.3 extension over the evaluation suite.
func Router(ctx *Context, w io.Writer) (RouterResult, error) {
	header(w, "Extension (§6.3): heterogeneous CPU/GPU/Misam routing")
	fw, err := ctx.Framework()
	if err != nil {
		return RouterResult{}, err
	}
	router, err := misam.TrainRouter(fw)
	if err != nil {
		return RouterResult{}, err
	}
	var res RouterResult
	var ratios []float64
	for _, wl := range ctx.Suite() {
		lat, err := misam.DeviceLatencies(wl.A, wl.B)
		if err != nil {
			return res, err
		}
		oracle := misam.DeviceCPU
		for d := misam.DeviceCPU; d < misam.NumDevices; d++ {
			if lat[d] < lat[oracle] {
				oracle = d
			}
		}
		routed := router.Route(misam.ExtractFeatures(wl.A, wl.B))
		res.Counts[routed]++
		res.OracleCounts[oracle]++
		if routed == oracle {
			res.Accuracy++
		}
		ratios = append(ratios, lat[misam.DeviceMisam]/lat[routed])
	}
	n := len(ctx.Suite())
	res.Accuracy /= float64(n)
	res.GeoSpeedupOverMisamOnly = stats.GeoMean(ratios)
	fmt.Fprintf(w, "routed:  CPU=%d GPU=%d Misam=%d\n", res.Counts[0], res.Counts[1], res.Counts[2])
	fmt.Fprintf(w, "oracle:  CPU=%d GPU=%d Misam=%d\n", res.OracleCounts[0], res.OracleCounts[1], res.OracleCounts[2])
	fmt.Fprintf(w, "routing accuracy: %.1f%%\n", res.Accuracy*100)
	fmt.Fprintf(w, "geomean speedup of routed execution over FPGA-only: %.2fx\n", res.GeoSpeedupOverMisamOnly)
	return res, nil
}

// ObjectiveResult is the §3.1 multi-objective extension: how the optimal
// design distribution shifts as the objective moves from pure latency to
// pure energy.
type ObjectiveResult struct {
	// Shifted is the fraction of corpus samples whose optimal design
	// changes under a pure-energy objective.
	Shifted float64
	// LatencyCounts / EnergyCounts are the label distributions.
	LatencyCounts, EnergyCounts [4]int
}

// Objective runs the multi-objective extension on the training corpus.
func Objective(ctx *Context, w io.Writer) (ObjectiveResult, error) {
	header(w, "Extension (§3.1): tunable latency/energy objective")
	corpus, err := ctx.Corpus()
	if err != nil {
		return ObjectiveResult{}, err
	}
	var res ObjectiveResult
	lat := corpus.Labels()
	en := corpus.LabelsFor(0, 1)
	for i := range lat {
		res.LatencyCounts[lat[i]]++
		res.EnergyCounts[en[i]]++
		if lat[i] != en[i] {
			res.Shifted++
		}
	}
	res.Shifted /= float64(len(lat))
	fmt.Fprintf(w, "%-16s %6s %6s %6s %6s\n", "objective", "D1", "D2", "D3", "D4")
	fmt.Fprintf(w, "%-16s %6d %6d %6d %6d\n", "latency", res.LatencyCounts[0], res.LatencyCounts[1], res.LatencyCounts[2], res.LatencyCounts[3])
	fmt.Fprintf(w, "%-16s %6d %6d %6d %6d\n", "energy", res.EnergyCounts[0], res.EnergyCounts[1], res.EnergyCounts[2], res.EnergyCounts[3])
	fmt.Fprintf(w, "optimal design changes on %.1f%% of the corpus\n", res.Shifted*100)
	return res, nil
}

var _ = workload.HSxHS

// ReconfigModesResult is the §6.1 reconfiguration-mechanism study: switch
// times per mode and the batch size at which the engine first switches.
type ReconfigModesResult struct {
	// SwitchSeconds[mode] is the D1→D4 switch cost under each mechanism.
	SwitchSeconds map[string]float64
	// FirstSwitchUnits[mode] is the smallest power-of-two batch at which
	// the engine reconfigures for a Design-4-favoring workload.
	FirstSwitchUnits map[string]float64
}

// ReconfigModes runs the §6.1 extension: "future FPGA platforms with
// reduced reconfiguration times could enable the engine to more
// aggressively select optimal designs" — quantified by sweeping the
// switching mechanism from full bitstreams to partial regions to a CGRA.
func ReconfigModes(ctx *Context, w io.Writer) (ReconfigModesResult, error) {
	header(w, "Extension (§6.1): reconfiguration mechanisms vs engine aggressiveness")
	fw, err := ctx.Framework()
	if err != nil {
		return ReconfigModesResult{}, err
	}
	res := ReconfigModesResult{
		SwitchSeconds:    map[string]float64{},
		FirstSwitchUnits: map[string]float64{},
	}
	rng := ctx.RNG(61)
	n := 3000
	a := sparse.Uniform(rng, n, n, 0.001)
	bm := sparse.Uniform(rng, n, 256, 0.02)
	v := misamFeatures(a, bm)
	fmt.Fprintf(w, "%-10s %14s %22s\n", "mode", "D1→D4 switch", "first switch at batch")
	for _, mode := range []reconfig.Mode{reconfig.FullBitstream, reconfig.PartialRegion, reconfig.CGRA} {
		times := reconfig.DefaultTimeModel().WithMode(mode)
		res.SwitchSeconds[mode.String()] = times.Switch(sim.Design1, sim.Design4)
		eng := reconfig.NewEngine(fw.Engine.Predictor, times, 0.20)
		st := reconfig.State{Loaded: sim.Design1, HasLoaded: true}
		first := float64(-1)
		for units := 1.0; units <= 1<<26; units *= 2 {
			if d := eng.Decide(st, v, sim.Design4, units); d.Target == sim.Design4 {
				first = units
				break
			}
		}
		res.FirstSwitchUnits[mode.String()] = first
		fmt.Fprintf(w, "%-10s %13.4fs %22.0f\n", mode, res.SwitchSeconds[mode.String()], first)
	}
	fmt.Fprintln(w, "paper §6.1: full ≈3–4 s; small partial regions ≈ hundreds of ms; CGRAs µs–ms")
	return res, nil
}

// LearningCurveResult quantifies §6.3's retraining claim ("Misam can be
// retrained as workloads evolve, often within minutes for reasonably
// sized datasets"): selector accuracy and wall-clock training time as the
// corpus grows.
type LearningCurvePoint struct {
	CorpusSize   int
	Accuracy     float64
	TrainSeconds float64
}

type LearningCurveResult struct {
	Points []LearningCurvePoint
}

// LearningCurve trains selectors on nested prefixes of the corpus and
// evaluates each on the final 30 % holdout.
func LearningCurve(ctx *Context, w io.Writer) (LearningCurveResult, error) {
	header(w, "Extension (§6.3): selector accuracy and training time vs corpus size")
	corpus, err := ctx.Corpus()
	if err != nil {
		return LearningCurveResult{}, err
	}
	n := len(corpus.Samples)
	holdStart := n * 7 / 10
	teX := make([][]float64, 0, n-holdStart)
	teY := make([]int, 0, n-holdStart)
	for _, s := range corpus.Samples[holdStart:] {
		teX = append(teX, s.Features.Slice())
		teY = append(teY, int(s.Best))
	}

	var res LearningCurveResult
	fmt.Fprintf(w, "%-12s %10s %12s\n", "corpus size", "accuracy", "train time")
	for frac := 0.1; frac <= 1.0; frac *= 2 {
		size := int(frac * float64(holdStart))
		if size < 20 {
			continue
		}
		trX := make([][]float64, size)
		trY := make([]int, size)
		for i := 0; i < size; i++ {
			trX[i] = corpus.Samples[i].Features.Slice()
			trY[i] = int(corpus.Samples[i].Best)
		}
		start := time.Now()
		cls, err := mltree.TrainClassifier(trX, trY, int(sim.NumDesigns),
			mltree.BalancedWeights(trY, int(sim.NumDesigns)),
			mltree.Config{MaxDepth: 10, MinSamplesLeaf: 2})
		if err != nil {
			return res, err
		}
		elapsed := time.Since(start).Seconds()
		pt := LearningCurvePoint{
			CorpusSize:   size,
			Accuracy:     mltree.Accuracy(cls.PredictBatch(teX), teY),
			TrainSeconds: elapsed,
		}
		res.Points = append(res.Points, pt)
		fmt.Fprintf(w, "%-12d %9.1f%% %11.3fs\n", pt.CorpusSize, pt.Accuracy*100, pt.TrainSeconds)
	}
	fmt.Fprintln(w, "(labelling the corpus — simulating all designs — dominates; tree fitting is sub-second)")
	return res, nil
}

// PhaseRow is one phase's outcome under the adaptive engine.
type PhaseRow struct {
	Name      string
	Proposed  sim.DesignID
	Executed  sim.DesignID
	Switched  bool
	PhaseSec  float64 // executed design × invocations + any reconfig
	StaticSec float64 // staying on the initial design
}

// PhasesResult aggregates one trace.
type PhasesResult struct {
	Trace       string
	Rows        []PhaseRow
	AdaptiveSec float64
	StaticSec   float64
	Switches    int
}

// Phases runs the intro's evolving-application scenario: three traces
// (training-time pruning, multilevel graph coarsening, adaptive solver
// stages) whose sparsity regime shifts between phases, comparing the
// engine's adaptive execution against staying on the initial bitstream.
func Phases(ctx *Context, w io.Writer) ([]PhasesResult, error) {
	header(w, "Extension (§1): adapting to evolving sparsity phases")
	fw, err := ctx.Framework()
	if err != nil {
		return nil, err
	}
	rng := ctx.RNG(71)
	red := ctx.Cfg.Reduction
	dim := func(d int) int {
		n := d / red
		if n < 128 {
			n = 128
		}
		return n
	}
	// Invocation counts scale with the size reduction so the amortization
	// regime matches paper-scale behavior (as in Figure 8's batches).
	inv := 4000 * red
	traces := []struct {
		name   string
		phases []workload.Phase
	}{
		{"pruning", workload.PruningTrace(rng, dim(8192), dim(8192), 256, 5, inv)},
		{"coarsening", workload.CoarseningTrace(rng, dim(400_000), 4, 5, inv)},
		{"solver", workload.SolverTrace(rng, dim(200_000), 128, 4, inv)},
	}

	var results []PhasesResult
	for _, tr := range traces {
		res := PhasesResult{Trace: tr.name}
		// The first phase's best design is the static baseline.
		first, err := sim.SimulateAll(tr.phases[0].A, tr.phases[0].B)
		if err != nil {
			return nil, err
		}
		static := sim.BestDesign(first)
		dev := reconfig.NewDevice(tr.name, fw.Engine)
		dev.ForceLoad(static)

		fmt.Fprintf(w, "trace %q (static baseline: %v)\n", tr.name, static)
		for _, ph := range tr.phases {
			v := misamFeatures(ph.A, ph.B)
			proposed := fw.Selector.Select(v)
			dec := dev.DecideApply(v, proposed, float64(ph.Invocations))

			// The adaptive and static designs run on the same pair, so one
			// workload precompute serves both simulations.
			wk, err := sim.NewWorkload(ph.A, ph.B)
			if err != nil {
				return nil, err
			}
			exec, err := wk.SimulateDesign(dec.Target)
			if err != nil {
				return nil, err
			}
			staticRes, err := wk.SimulateDesign(static)
			if err != nil {
				return nil, err
			}
			row := PhaseRow{
				Name:      ph.Name,
				Proposed:  proposed,
				Executed:  dec.Target,
				Switched:  dec.Target != static,
				PhaseSec:  float64(ph.Invocations)*exec.Seconds + dec.ReconfigSeconds,
				StaticSec: float64(ph.Invocations) * staticRes.Seconds,
			}
			res.Rows = append(res.Rows, row)
			res.AdaptiveSec += row.PhaseSec
			res.StaticSec += row.StaticSec
			if dec.Target != static || dec.Reconfigure {
				res.Switches++
			}
			fmt.Fprintf(w, "  %-28s proposed %v → ran %v   adaptive %8.2fs vs static %8.2fs\n",
				ph.Name, proposed, dec.Target, row.PhaseSec, row.StaticSec)
		}
		fmt.Fprintf(w, "  trace total: adaptive %.2fs vs static %.2fs (%.2fx), %d reconfigurations\n",
			res.AdaptiveSec, res.StaticSec, res.StaticSec/res.AdaptiveSec, res.Switches)
		results = append(results, res)
	}
	return results, nil
}

// Heuristics prints the learned selector as human-readable rules — §6.3:
// "insights from trained models can inform the design of new heuristics,
// bridging the gap between manual rule design and adaptive learning-based
// optimization".
type HeuristicsResult struct {
	TopSplits []string
	Rules     string
}

// Heuristics extracts the selector's top decision boundaries.
func Heuristics(ctx *Context, w io.Writer) (HeuristicsResult, error) {
	header(w, "Extension (§6.3): the learned dataflow-selection heuristic")
	fw, err := ctx.Framework()
	if err != nil {
		return HeuristicsResult{}, err
	}
	names := features.Names()
	classes := make([]string, sim.NumDesigns)
	for _, id := range sim.AllDesigns {
		classes[id] = id.String()
	}
	res := HeuristicsResult{
		TopSplits: fw.Selector.Tree.TopSplits(names, 3),
	}
	// A pruned copy keeps the printed rule set readable.
	pruned, err := misam.TrainOnCorpus(fw.Corpus, nil, misam.TrainOptions{
		CorpusSize: len(fw.Corpus.Samples), MaxDim: ctx.Cfg.MaxDim, Seed: ctx.Cfg.Seed, MaxDepth: 3,
	})
	if err != nil {
		return res, err
	}
	res.Rules = pruned.Selector.Tree.Rules(names, classes)
	fmt.Fprintln(w, "top decision boundaries of the full selector:")
	for _, s := range res.TopSplits {
		fmt.Fprintf(w, "  %s\n", s)
	}
	fmt.Fprintln(w, "\ndepth-3 selector as an explicit heuristic:")
	fmt.Fprint(w, res.Rules)
	return res, nil
}
