//go:build race

package experiments

// raceEnabled gates wall-clock threshold assertions that are skewed by
// race-detector instrumentation (measured host time inflates ~10× while
// modeled accelerator time does not).
const raceEnabled = true
