package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"misam"
	"misam/internal/dataset"
	"misam/internal/energy"
	"misam/internal/features"
	"misam/internal/sim"
	"misam/internal/sparse"
)

// PerfBench is one serial-vs-parallel timing comparison in the perf
// report. Serial is the pre-Workload reference engine (per-design
// precompute, serial tile loop: sim.SimulateAllSerial); parallel is the
// production shared-precompute engine.
type PerfBench struct {
	Name         string  `json:"name"`
	Iters        int     `json:"iters"`
	SerialNsOp   int64   `json:"serial_ns_op"`
	ParallelNsOp int64   `json:"parallel_ns_op"`
	Speedup      float64 `json:"speedup"`
}

// PerfReportData is the machine-readable perf trajectory record
// (BENCH_PR1.json). Later PRs append comparable files so the speedup
// history is tracked from PR 1 onward.
type PerfReportData struct {
	Schema     string      `json:"schema"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	NumCPU     int         `json:"num_cpu"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []PerfBench `json:"benchmarks"`
}

// timePair measures serial and parallel ns/op by interleaving their
// iterations (serial, parallel, serial, parallel, ...) so slow drift in
// host load cancels out of the ratio instead of biasing one side. One
// warmup of each calibrates an iteration count covering ~1s per side,
// bounded to [3, 16].
func timePair(serial, parallel func() error) (int64, int64, int, error) {
	if err := serial(); err != nil {
		return 0, 0, 0, err
	}
	if err := parallel(); err != nil {
		return 0, 0, 0, err
	}
	t0 := time.Now()
	if err := serial(); err != nil {
		return 0, 0, 0, err
	}
	per := time.Since(t0)
	iters := 3
	if per > 0 {
		if n := int(time.Second / per); n > iters {
			iters = n
		}
	}
	if iters > 16 {
		iters = 16
	}
	var sNs, pNs int64
	for i := 0; i < iters; i++ {
		t0 = time.Now()
		if err := serial(); err != nil {
			return 0, 0, 0, err
		}
		sNs += time.Since(t0).Nanoseconds()
		t0 = time.Now()
		if err := parallel(); err != nil {
			return 0, 0, 0, err
		}
		pNs += time.Since(t0).Nanoseconds()
	}
	return sNs / int64(iters), pNs / int64(iters), iters, nil
}

// labelSerial reproduces dataset.Label on the serial reference engine —
// the baseline the corpus-labelling speedup is measured against.
func labelSerial(p dataset.Pair) (dataset.Sample, error) {
	results, err := sim.SimulateAllSerial(p.A, p.B)
	if err != nil {
		return dataset.Sample{}, err
	}
	s := dataset.Sample{Pair: p, Features: features.Extract(p.A, p.B), Best: sim.BestDesign(results)}
	for _, id := range sim.AllDesigns {
		s.LatencySec[id] = results[id].Seconds
		s.EnergyJ[id] = energy.FPGAEnergy(results[id])
	}
	return s, nil
}

// PerfReport times the simulation engine's serial reference against the
// shared-precompute parallel engine on representative workloads plus a
// corpus-labelling batch, writes the JSON record to path, and prints a
// human-readable table. The workloads are fixed-seed, so successive PRs
// measure the same inputs.
func PerfReport(path string, w io.Writer) (PerfReportData, error) {
	header(w, "Perf report: serial reference vs shared-precompute parallel engine")
	rep := PerfReportData{
		Schema:     "misam-perf/1",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if rep.GOMAXPROCS <= 1 {
		rep.Note = "single-processor host: SimulateAll runs designs sequentially and the " +
			"tile pool is disabled, so these speedups measure shared precompute only; " +
			"design fan-out and tile-parallel gains appear with GOMAXPROCS > 1"
	}

	rng := rand.New(rand.NewSource(42))
	simCases := []struct {
		name string
		a, b *sparse.CSR
	}{
		{"SimulateAll/uniform-spmm", sparse.Uniform(rng, 3000, 3000, 0.01), sparse.DenseRandom(rng, 3000, 96)},
		{"SimulateAll/powerlaw-graph", sparse.PowerLaw(rng, 6000, 6000, 48000, 1.8), sparse.DenseRandom(rng, 6000, 32)},
		{"SimulateAll/hs-spgemm", sparse.Uniform(rng, 8000, 8000, 0.0008), sparse.Uniform(rng, 8000, 8000, 0.0005)},
	}
	for _, c := range simCases {
		a, b := c.a, c.b
		serial, parallel, iters, err := timePair(
			func() error { _, err := sim.SimulateAllSerial(a, b); return err },
			func() error { _, err := sim.SimulateAll(a, b); return err },
		)
		if err != nil {
			return rep, fmt.Errorf("experiments: perf %s: %w", c.name, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, PerfBench{
			Name: c.name, Iters: iters,
			SerialNsOp: serial, ParallelNsOp: parallel,
			Speedup: float64(serial) / float64(parallel),
		})
	}

	// Corpus labelling: a fixed batch of generator-family pairs, labelled
	// sequentially on the reference engine vs dataset.LabelAll on the
	// production engine (worker fan-out plus shared per-pair precompute).
	pairRng := rand.New(rand.NewSource(11))
	pairs := make([]dataset.Pair, 24)
	for i := range pairs {
		pairs[i] = dataset.RandomPair(pairRng, 384)
	}
	serial, parallel, iters, err := timePair(
		func() error {
			for _, p := range pairs {
				if _, err := labelSerial(p); err != nil {
					return err
				}
			}
			return nil
		},
		func() error { _, err := dataset.LabelAll(context.Background(), pairs); return err },
	)
	if err != nil {
		return rep, fmt.Errorf("experiments: perf labelling: %w", err)
	}
	rep.Benchmarks = append(rep.Benchmarks, PerfBench{
		Name: fmt.Sprintf("CorpusLabelling/%d-pairs", len(pairs)), Iters: iters,
		SerialNsOp: serial, ParallelNsOp: parallel,
		Speedup: float64(serial) / float64(parallel),
	})

	// Analysis cache (PR 3): the "serial" column is the uncached serving
	// path, the "parallel" column the cache-enabled path. warm-hit times a
	// repeated request (resident entry, fingerprint + lookup + pricing);
	// coalesced-16 times a burst of 16 concurrent identical requests
	// against a cold cache (singleflight: one simulation, 15 waiters)
	// versus 16 independent full analyses.
	fw, err := misam.Train(misam.TrainOptions{CorpusSize: 60, LatencyCorpusSize: 80, MaxDim: 256, Seed: 7})
	if err != nil {
		return rep, fmt.Errorf("experiments: perf cache framework: %w", err)
	}
	ca := sparse.PowerLaw(rng, 4000, 4000, 32000, 1.8)
	cb := sparse.DenseRandom(rng, 4000, 48)
	analyzeOnce := func(f *misam.Framework, dev *misam.Accelerator) error {
		// A fresh workload every call: the cache, not workload-precompute
		// reuse, must be what the warm side measures.
		wl, err := misam.NewWorkload(ca, cb)
		if err != nil {
			return err
		}
		_, err = f.AnalyzeOn(context.Background(), dev, wl)
		return err
	}
	warmCp := *fw
	warmFW := (&warmCp).WithCache(64 << 20)
	coldDev, warmDev := fw.NewDevice("bench"), warmFW.NewDevice("bench")
	serial, parallel, iters, err = timePair(
		func() error { return analyzeOnce(fw, coldDev) },
		func() error { return analyzeOnce(warmFW, warmDev) },
	)
	if err != nil {
		return rep, fmt.Errorf("experiments: perf cache warm-hit: %w", err)
	}
	rep.Benchmarks = append(rep.Benchmarks, PerfBench{
		Name: "AnalyzeCache/warm-hit", Iters: iters,
		SerialNsOp: serial, ParallelNsOp: parallel,
		Speedup: float64(serial) / float64(parallel),
	})

	burst := func(f *misam.Framework) error {
		dev := f.NewDevice("burst")
		errs := make([]error, 16)
		var wg sync.WaitGroup
		for i := range errs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = analyzeOnce(f, dev)
			}(i)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
		return nil
	}
	serial, parallel, iters, err = timePair(
		func() error { return burst(fw) },
		func() error {
			// A fresh cache per burst so every iteration exercises the
			// singleflight (1 build + 15 coalesced waiters), not warm hits.
			cp := *fw
			return burst((&cp).WithCache(64 << 20))
		},
	)
	if err != nil {
		return rep, fmt.Errorf("experiments: perf cache coalesced: %w", err)
	}
	rep.Benchmarks = append(rep.Benchmarks, PerfBench{
		Name: "AnalyzeCache/coalesced-16", Iters: iters,
		SerialNsOp: serial, ParallelNsOp: parallel,
		Speedup: float64(serial) / float64(parallel),
	})

	fmt.Fprintf(w, "%-30s %14s %14s %8s\n", "benchmark", "serial ns/op", "parallel ns/op", "speedup")
	for _, bm := range rep.Benchmarks {
		fmt.Fprintf(w, "%-30s %14d %14d %7.2fx\n", bm.Name, bm.SerialNsOp, bm.ParallelNsOp, bm.Speedup)
	}
	fmt.Fprintf(w, "(GOMAXPROCS=%d; tile/design fan-out gains scale with cores)\n", rep.GOMAXPROCS)

	if path != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return rep, err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return rep, fmt.Errorf("experiments: perf report: %w", err)
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	}
	return rep, nil
}
