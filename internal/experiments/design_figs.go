package experiments

import (
	"fmt"
	"io"
	"sort"

	"misam/internal/fpga"
	"misam/internal/reconfig"
	"misam/internal/sim"
	"misam/internal/sparse"
	"misam/internal/stats"
	"misam/internal/workload"
)

// Figure1Result is the sparsity-space placement of Figure 1.
type Figure1Result struct {
	Points []workload.ApplicationPoint
}

// Figure1 reproduces Figure 1: applications clustered across the
// sparsity space of A × sparsity of B.
func Figure1(w io.Writer) Figure1Result {
	header(w, "Figure 1: applications across the sparsity space")
	fmt.Fprintf(w, "%-40s %10s %10s %8s\n", "application", "sparsity A", "sparsity B", "regime")
	for _, p := range workload.Figure1Points {
		fmt.Fprintf(w, "%-40s %10.4f %10.4f %8s\n", p.Application, p.ASparsity, p.BSparsity, p.Regime)
	}
	return Figure1Result{Points: workload.Figure1Points}
}

// Figure3Row is one workload's normalized performance across the SpMM
// design suite.
type Figure3Row struct {
	Name       string
	Normalized [3]float64 // D1, D2, D3 latency normalized to the best
	Best       sim.DesignID
}

// Figure3Result holds all rows plus the per-design win counts.
type Figure3Result struct {
	Rows []Figure3Row
	Wins [3]int
}

// Figure3 reproduces Figure 3: D1/D2/D3 performance normalized to the
// best design per workload — "no single design consistently outperforms
// others across all sparse workloads".
func Figure3(ctx *Context, w io.Writer) (Figure3Result, error) {
	header(w, "Figure 3: Misam design suite performance (normalized to best; 1.00 = best)")
	var res Figure3Result
	// A representative diverse subset: one from each suite category plus
	// synthetic domain workloads, as in the figure.
	wls := representativeWorkloads(ctx)
	fmt.Fprintf(w, "%-26s %8s %8s %8s  %s\n", "workload", "D1", "D2", "D3", "best")
	for _, wl := range wls {
		// One workload precompute feeds all three SpMM designs.
		wk, err := sim.NewWorkload(wl.A, wl.B)
		if err != nil {
			return res, err
		}
		var lat [3]float64
		for i, id := range sim.SpMMDesigns {
			r, err := wk.SimulateDesign(id)
			if err != nil {
				return res, err
			}
			lat[i] = r.Seconds
		}
		best := 0
		for i := 1; i < 3; i++ {
			if lat[i] < lat[best] {
				best = i
			}
		}
		row := Figure3Row{Name: wl.Name, Best: sim.SpMMDesigns[best]}
		for i := range lat {
			row.Normalized[i] = lat[best] / lat[i] // 1.0 = best, <1 = slower
		}
		res.Rows = append(res.Rows, row)
		res.Wins[best]++
		fmt.Fprintf(w, "%-26s %8.2f %8.2f %8.2f  %v\n", wl.Name,
			row.Normalized[0], row.Normalized[1], row.Normalized[2], row.Best)
	}
	fmt.Fprintf(w, "wins: D1=%d D2=%d D3=%d\n", res.Wins[0], res.Wins[1], res.Wins[2])
	fmt.Fprintln(w, "\nmatrix footprints (as in the figure's thumbnails):")
	for _, wl := range wls {
		fmt.Fprintf(w, "%s\n%s", wl.Name, sparse.Spy(wl.A, 24, 6))
	}
	return res, nil
}

// representativeWorkloads draws a cross-domain sample like Figure 3's
// x-axis (CFD, graphs, circuits, DNN layers, ...).
func representativeWorkloads(ctx *Context) []workload.Workload {
	return representativeWorkloadsAt(ctx, ctx.Cfg.Reduction)
}

// representativeWorkloadsAt draws the same sample at an explicit
// reduction (Figure 12 uses larger matrices than the quick suite so the
// hardware term dominates the breakdown, as on the real system).
func representativeWorkloadsAt(ctx *Context, red int) []workload.Workload {
	rng := ctx.RNG(3)
	mk := func(name string, a, b *sparse.CSR) workload.Workload {
		return workload.Workload{Name: name, A: a, B: b}
	}
	dim := func(d int) int {
		n := d / red
		if n < 96 {
			n = 96
		}
		return n
	}
	var out []workload.Workload
	nCFD := dim(30000)
	cfdA := sparse.Banded(rng, nCFD, nCFD, 6, 0.7)
	out = append(out, mk("cfd-goodwin-like", cfdA, sparse.DenseRandom(rng, nCFD, 64)))
	nCFD2 := dim(16000)
	cfd2 := sparse.Banded(rng, nCFD2, nCFD2, 24, 0.5)
	out = append(out, mk("cfd-ramage-like", cfd2, sparse.DenseRandom(rng, nCFD2, 64)))
	nG := dim(26000)
	g := sparse.PowerLaw(rng, nG, nG, nG*3, 1.9)
	out = append(out, mk("graph-p2p-like", g, sparse.DenseRandom(rng, nG, 64)))
	nW := dim(11000)
	wiki := sparse.PowerLaw(rng, nW, nW, nW*16, 1.6)
	out = append(out, mk("graph-wiki-like", wiki, sparse.DenseRandom(rng, nW, 64)))
	nC := dim(170000)
	circ := sparse.Block(rng, nC, nC, 24, 0.02, 0.4)
	out = append(out, mk("circuit-scircuit-like", circ, sparse.DenseRandom(rng, nC, 64)))
	dnnM, dnnK := dim(4096), dim(4096)
	dnn := sparse.DNNPruned(rng, dnnM, dnnK, 0.2, true, 4)
	out = append(out, mk("dnn-resnet-like", dnn, sparse.DenseRandom(rng, dnnK, 128)))
	nI := dim(24000)
	imb := sparse.Imbalanced(rng, nI, nI, nI*8, 0.01, 0.85)
	out = append(out, mk("recsys-imbalanced", imb, sparse.DenseRandom(rng, nI, 64)))
	nT := dim(4800)
	tiny := sparse.Uniform(rng, nT, nT, 0.002)
	out = append(out, mk("sparse-uniform-small", tiny, sparse.DenseRandom(rng, nT, 8)))
	return out
}

// Table1 prints the design parameter configurations.
func Table1(w io.Writer) [sim.NumDesigns]sim.Config {
	header(w, "Table 1: parameter configurations")
	cfgs := sim.Configs()
	fmt.Fprintf(w, "%-12s %8s %8s %8s %8s\n", "parameter", "Design 1", "Design 2", "Design 3", "Design 4")
	row := func(name string, f func(sim.Config) string) {
		fmt.Fprintf(w, "%-12s %8s %8s %8s %8s\n", name,
			f(cfgs[0]), f(cfgs[1]), f(cfgs[2]), f(cfgs[3]))
	}
	row("ch_A", func(c sim.Config) string { return fmt.Sprint(c.ChA) })
	row("ch_B", func(c sim.Config) string { return fmt.Sprint(c.ChB) })
	row("ch_C", func(c sim.Config) string { return fmt.Sprint(c.ChC) })
	row("PEG", func(c sim.Config) string { return fmt.Sprint(c.PEG) })
	row("ACCG", func(c sim.Config) string { return fmt.Sprint(c.ACC) })
	row("Scheduler A", func(c sim.Config) string { return c.SchedulerA.String() })
	row("Format B", func(c sim.Config) string {
		if c.CompressedB {
			return "Comp."
		}
		return "Uncomp."
	})
	return cfgs
}

// Table2 prints the resource estimation.
func Table2(w io.Writer) map[sim.DesignID]sim.Resources {
	header(w, "Table 2: resource estimation for Xilinx U55C")
	fmt.Fprintf(w, "%-14s %7s %7s %7s %7s %7s %9s\n", "design", "LUT", "FF", "BRAM", "URAM", "DSP", "Freq(MHz)")
	out := map[sim.DesignID]sim.Resources{}
	printed := map[string]bool{}
	for _, id := range sim.AllDesigns {
		r := sim.DesignResources(id)
		out[id] = r
		name := id.String()
		if id == sim.Design2 || id == sim.Design3 {
			name = "Design 2 & 3"
		}
		if printed[name] {
			continue
		}
		printed[name] = true
		fmt.Fprintf(w, "%-14s %6.2f%% %6.2f%% %6.2f%% %6.2f%% %6.2f%% %9.2f\n",
			name, r.LUT, r.FF, r.BRAM, r.URAM, r.DSP, sim.GetConfig(id).FreqMHz)
	}
	return out
}

// Table3Row pairs a Table 3 spec with its generated stand-in statistics.
type Table3Row struct {
	Spec workload.HSMatrixSpec
	Rows int
	NNZ  int
}

// Table3 generates the highly sparse matrix suite and prints published
// versus generated statistics.
func Table3(ctx *Context, w io.Writer) []Table3Row {
	header(w, "Table 3: highly sparse matrices (published spec → generated stand-in)")
	rng := ctx.RNG(33)
	fmt.Fprintf(w, "%-16s %6s %9s %9s %10s | %9s %10s\n",
		"name", "id", "density", "rows", "nnz", "gen rows", "gen nnz")
	var out []Table3Row
	for _, spec := range workload.Table3 {
		m := spec.Generate(rng, ctx.Cfg.Reduction)
		out = append(out, Table3Row{Spec: spec, Rows: m.Rows, NNZ: m.NNZ()})
		fmt.Fprintf(w, "%-16s %6s %9.1e %9d %10d | %9d %10d\n",
			spec.Name, spec.ID, spec.Density, spec.Rows, spec.NNZ, m.Rows, m.NNZ())
	}
	return out
}

// MultiTenantResult is the §6.2 packing analysis.
type MultiTenantResult struct {
	// Instances[id] is the computed per-design replication at 100 % and
	// at the 75 % shell-reserved limit.
	InstancesFull     map[sim.DesignID]int
	InstancesReserved map[sim.DesignID]int
	// CoLocations lists feasible mixed deployments.
	CoLocations []string
	// TrapezoidIdle is the §6.2 idle-silicon fraction of the ASIC.
	TrapezoidIdle float64
	// MakespanMultiTenant / MakespanSerial compare a mixed job stream on
	// the runtime scheduler against single-tenant execution.
	MakespanMultiTenant float64
	MakespanSerial      float64
}

// MultiTenant reproduces the §6.2 analysis: replication counts per
// design, feasible co-locations, and Trapezoid's idle-area cost.
func MultiTenant(w io.Writer) MultiTenantResult {
	header(w, "Section 6.2: multi-tenant packing on the U55C")
	res := MultiTenantResult{
		InstancesFull:     map[sim.DesignID]int{},
		InstancesReserved: map[sim.DesignID]int{},
	}
	fmt.Fprintf(w, "%-10s %22s %24s\n", "design", "instances (100% fabric)", "instances (75% usable)")
	for _, id := range sim.AllDesigns {
		res.InstancesFull[id] = sim.MaxInstances(id, 100)
		res.InstancesReserved[id] = sim.MaxInstances(id, 75)
		fmt.Fprintf(w, "%-10v %22d %24d\n", id, res.InstancesFull[id], res.InstancesReserved[id])
	}
	mixes := [][]sim.DesignID{
		{sim.Design1, sim.Design4},
		{sim.Design2, sim.Design4},
		{sim.Design2, sim.Design2},
		{sim.Design4, sim.Design4, sim.Design4},
		{sim.Design1, sim.Design2},
	}
	for _, mix := range mixes {
		if sim.CanCoLocate(mix, 100) {
			s := fmt.Sprintf("%v", mix)
			res.CoLocations = append(res.CoLocations, s)
			fmt.Fprintf(w, "co-locatable: %s\n", s)
		}
	}
	res.TrapezoidIdle = sim.TrapezoidIdleFraction()
	fmt.Fprintf(w, "Trapezoid worst-case idle silicon: %.1f%% (paper: up to 26.5%%)\n", res.TrapezoidIdle*100)

	// Runtime demonstration: a mixed stream of jobs on the multi-tenant
	// device manager versus one-design-at-a-time execution.
	device := fpga.NewDevice(100, reconfig.DefaultTimeModel())
	var jobs []fpga.Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs,
			fpga.Job{Name: fmt.Sprintf("sparse-%d", i), Design: sim.Design4, Duration: 0.4},
			fpga.Job{Name: fmt.Sprintf("regular-%d", i), Design: sim.Design2, Duration: 0.4})
	}
	rep, err := fpga.RunJobs(device, jobs)
	if err == nil {
		res.MakespanMultiTenant = rep.Makespan
		res.MakespanSerial = rep.SerialSeconds
		fmt.Fprintf(w, "mixed 16-job stream: multi-tenant %.2fs vs single-tenant %.2fs (%.1fx throughput)\n",
			rep.Makespan, rep.SerialSeconds, rep.SerialSeconds/rep.Makespan)
	}
	return res
}

// sortDesc sorts values descending and returns matching indices.
func sortDesc(values []float64) []int {
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] > values[idx[b]] })
	return idx
}

var _ = stats.GeoMean // referenced by sibling files
