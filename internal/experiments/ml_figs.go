package experiments

import (
	"fmt"
	"io"

	"misam/internal/features"
	"misam/internal/mltree"
	"misam/internal/sim"
	"misam/internal/sparse"
	"misam/internal/stats"
)

// Figure4Result is the feature-importance ranking.
type Figure4Result struct {
	Names      []string
	Importance []float64 // sorted descending, aligned with Names
}

// Figure4 reproduces Figure 4: gini feature importance of the trained
// selector, dominated by Tile_1D_Density and row_B in the paper.
func Figure4(ctx *Context, w io.Writer) (Figure4Result, error) {
	header(w, "Figure 4: decision-tree feature importance")
	fw, err := ctx.Framework()
	if err != nil {
		return Figure4Result{}, err
	}
	imp := fw.Selector.FeatureImportance()
	order := sortDesc(imp)
	var res Figure4Result
	for _, i := range order {
		if imp[i] <= 0 {
			continue
		}
		res.Names = append(res.Names, features.Name(i))
		res.Importance = append(res.Importance, imp[i])
		fmt.Fprintf(w, "%-24s %6.3f\n", features.Name(i), imp[i])
	}
	return res, nil
}

// Table4Result is the geometric-mean cross-speedup matrix over the SpMM
// designs: entry [i][j] is the speedup of design i over design j on the
// workloads where design i is optimal.
type Table4Result struct {
	Speedup [3][3]float64
	Counts  [3]int // how many corpus samples each design won
}

// Table4 reproduces Table 4 (Design 4 is excluded, as in the paper:
// "its usage is explicitly determined by a clear decision in the model").
func Table4(ctx *Context, w io.Writer) (Table4Result, error) {
	header(w, "Table 4: geomean speedup of the optimal design over the others")
	corpus, err := ctx.Corpus()
	if err != nil {
		return Table4Result{}, err
	}
	var res Table4Result
	// ratios[i][j] collects latency(design j)/latency(design i) over
	// samples where design i is the best of the three SpMM designs.
	var ratios [3][3][]float64
	for _, s := range corpus.Samples {
		best := 0
		for i := 1; i < 3; i++ {
			if s.LatencySec[sim.SpMMDesigns[i]] < s.LatencySec[sim.SpMMDesigns[best]] {
				best = i
			}
		}
		res.Counts[best]++
		for j := 0; j < 3; j++ {
			ratios[best][j] = append(ratios[best][j],
				s.LatencySec[sim.SpMMDesigns[j]]/s.LatencySec[sim.SpMMDesigns[best]])
		}
	}
	fmt.Fprintf(w, "%-10s %10s %10s %10s %8s\n", "optimal", "vs D1", "vs D2", "vs D3", "n")
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			res.Speedup[i][j] = stats.GeoMean(ratios[i][j])
		}
		fmt.Fprintf(w, "%-10v %10.2f %10.2f %10.2f %8d\n",
			sim.SpMMDesigns[i], res.Speedup[i][0], res.Speedup[i][1], res.Speedup[i][2], res.Counts[i])
	}
	return res, nil
}

// Table5Result is the held-out confusion matrix plus accuracy figures.
type Table5Result struct {
	Confusion  [][]int // [predicted][actual]
	Accuracy   float64
	CVAccuracy float64 // 10-fold cross-validation mean
	// SpeedupCorrect is the geomean speedup (over the loaded-at-random
	// alternative) when the prediction is right; SlowdownWrong the
	// geomean slowdown versus optimal when it is wrong (§5.1: 1.31× and
	// 1.06× in the paper).
	SpeedupCorrect float64
	SlowdownWrong  float64
}

// Table5 reproduces Table 5 and the §5.1 accuracy analysis with the
// paper's protocol: 70/30 split plus 10-fold cross-validation and
// inverse-frequency class weights.
func Table5(ctx *Context, w io.Writer) (Table5Result, error) {
	header(w, "Table 5: confusion matrix for the ML model (held-out 30%)")
	corpus, err := ctx.Corpus()
	if err != nil {
		return Table5Result{}, err
	}
	x, y := corpus.X(), corpus.Labels()
	rng := ctx.RNG(5)
	train, test := mltree.StratifiedSplit(y, int(sim.NumDesigns), 0.7, rng)
	trX := make([][]float64, len(train))
	trY := make([]int, len(train))
	for i, j := range train {
		trX[i], trY[i] = x[j], y[j]
	}
	cfg := mltree.Config{MaxDepth: 12, MinSamplesLeaf: 2}
	cls, err := mltree.TrainClassifier(trX, trY, int(sim.NumDesigns),
		mltree.BalancedWeights(trY, int(sim.NumDesigns)), cfg)
	if err != nil {
		return Table5Result{}, err
	}
	teX := make([][]float64, len(test))
	teY := make([]int, len(test))
	for i, j := range test {
		teX[i], teY[i] = x[j], y[j]
	}
	pred := cls.PredictBatch(teX)
	res := Table5Result{
		Confusion: mltree.ConfusionMatrix(pred, teY, int(sim.NumDesigns)),
		Accuracy:  mltree.Accuracy(pred, teY),
	}

	// Speedup analysis (§5.1): correct predictions vs the geomean of the
	// other designs; mispredictions vs the true optimum.
	var correct, wrong []float64
	for i, j := range test {
		s := corpus.Samples[j]
		chosen := s.LatencySec[sim.DesignID(pred[i])]
		best := s.LatencySec[s.Best]
		if pred[i] == int(s.Best) {
			var others []float64
			for _, id := range sim.AllDesigns {
				if id != s.Best {
					others = append(others, s.LatencySec[id]/best)
				}
			}
			correct = append(correct, stats.GeoMean(others))
		} else {
			wrong = append(wrong, chosen/best)
		}
	}
	res.SpeedupCorrect = stats.GeoMean(correct)
	res.SlowdownWrong = stats.GeoMean(wrong)

	accs, err := mltree.CrossValidateClassifier(x, y, int(sim.NumDesigns), true, cfg, 10, rng)
	if err != nil {
		return res, err
	}
	res.CVAccuracy = stats.Mean(accs)

	fmt.Fprintf(w, "%-18s %8s %8s %8s %8s\n", "Predicted/Actual", "D1", "D2", "D3", "D4")
	for i, row := range res.Confusion {
		fmt.Fprintf(w, "%-18v %8d %8d %8d %8d\n", sim.DesignID(i), row[0], row[1], row[2], row[3])
	}
	fmt.Fprintf(w, "held-out accuracy: %.1f%%   10-fold CV: %.1f%% (paper: 90%%)\n",
		res.Accuracy*100, res.CVAccuracy*100)
	fmt.Fprintf(w, "geomean speedup when correct: %.2fx (paper 1.31x)   slowdown when wrong: %.2fx (paper 1.06x)\n",
		res.SpeedupCorrect, res.SlowdownWrong)
	return res, nil
}

// Figure6Matrix is one toy input of Figure 6.
type Figure6Matrix struct {
	Name string
	A    *sparse.CSR
}

// Figure6Cell is the cycle count of one (matrix, design) pair.
type Figure6Cell struct {
	Cycles  int64
	Bubbles int64
}

// Figure6Result is the 3×3 toy-timeline grid.
type Figure6Result struct {
	Matrices []string
	// Cells[m][d] for designs D1 (1 PEG × 2 PEs), D2 (2 PEGs, col) and
	// D3 (2 PEGs, row).
	Cells   [][3]Figure6Cell
	Winners []int
}

// Figure6 reproduces the Figure 6 toy timelines: three 8×8 matrices with
// different sparsity characters scheduled on the three toy design
// configurations, showing a different winner per matrix. Following the
// paper's cycle-estimation recipe, the total charges the shared B read
// (3 cycles), a broadcast placeholder (each PEG starts one cycle after
// the previous one in the forwarding chain), and the slowest PEG's
// schedule ("the overall computation time is determined by the PEG that
// completes its task last").
func Figure6(w io.Writer) Figure6Result {
	header(w, "Figure 6: toy schedules (B read = 3 cycles, 2-cycle load/store dependency)")
	const bRead = 3

	// Matrix (a): highly sparse with nonzeros clustered on odd rows and
	// columns — the whole load lands in the 2-PEG designs' second group,
	// which also starts a broadcast hop later, while Design 1's single
	// group schedules it compactly (§3.2.2).
	hs := sparse.NewCOO(8, 8)
	for _, e := range [][2]int{{1, 1}, {1, 5}, {3, 3}, {5, 1}, {5, 5}, {7, 7}} {
		hs.Append(e[0], e[1], 1)
	}
	hs.Normalize()

	// Matrix (b): denser with consistent rows — Design 2 wins.
	den := sparse.NewCOO(8, 8)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c += 2 {
			den.Append(r, (r+c)%8, 1)
		}
	}
	den.Normalize()

	// Matrix (c): one heavy row — Design 3's column spreading wins.
	imb := sparse.NewCOO(8, 8)
	for c := 0; c < 8; c++ {
		imb.Append(2, c, 1)
	}
	imb.Append(0, 1, 1)
	imb.Append(5, 4, 1)
	imb.Append(7, 3, 1)
	imb.Normalize()

	matrices := []Figure6Matrix{
		{"(a) highly sparse", hs.ToCSR()},
		{"(b) denser, regular", den.ToCSR()},
		{"(c) imbalanced row", imb.ToCSR()},
	}
	toys := []sim.ScheduleOptions{
		{PEGs: 1, PEsPerPEG: 2, Traversal: sim.ColWise, DepGap: 2, Window: 16},
		{PEGs: 2, PEsPerPEG: 2, Traversal: sim.ColWise, DepGap: 2, Window: 16},
		{PEGs: 2, PEsPerPEG: 2, Traversal: sim.RowWise, DepGap: 2, Window: 16},
	}
	names := []string{"Design 1 (1 PEG × 2 PE)", "Design 2 (2 PEG, col)", "Design 3 (2 PEG, row)"}

	var res Figure6Result
	fmt.Fprintf(w, "%-22s %26s %26s %26s\n", "matrix", names[0], names[1], names[2])
	var timelines []string
	for _, m := range matrices {
		var cells [3]Figure6Cell
		for d, opt := range toys {
			opt.Trace = true
			groups := sim.ScheduleA(m.A, opt)
			timelines = append(timelines, fmt.Sprintf("%s — %s:\n%s", m.Name, names[d],
				sim.RenderTimeline(groups, 48)))
			var bubbles, finish int64
			for p, g := range groups {
				bubbles += g.Bubbles
				// Broadcast chain: PEG p receives its B segment p cycles
				// after the first PEG.
				if end := int64(p) + g.Makespan; end > finish {
					finish = end
				}
			}
			cells[d] = Figure6Cell{Cycles: bRead + finish, Bubbles: bubbles}
		}
		winner := 0
		for d := 1; d < 3; d++ {
			if cells[d].Cycles < cells[winner].Cycles {
				winner = d
			}
		}
		res.Matrices = append(res.Matrices, m.Name)
		res.Cells = append(res.Cells, cells)
		res.Winners = append(res.Winners, winner)
		fmt.Fprintf(w, "%-22s %18d cyc (%db) %18d cyc (%db) %18d cyc (%db)   winner: %s\n",
			m.Name,
			cells[0].Cycles, cells[0].Bubbles,
			cells[1].Cycles, cells[1].Bubbles,
			cells[2].Cycles, cells[2].Bubbles,
			names[res.Winners[len(res.Winners)-1]])
	}
	fmt.Fprintln(w, "\nper-PE timelines (labels = output row, '-' service, '.' stall):")
	for _, tl := range timelines {
		fmt.Fprintln(w, tl)
	}
	return res
}
