package experiments

import (
	"context"
	"fmt"
	"io"

	"misam"
	"misam/internal/baseline"
	"misam/internal/energy"
	"misam/internal/features"
	"misam/internal/mltree"
	"misam/internal/sim"
	"misam/internal/sparse"
	"misam/internal/stats"
	"misam/internal/workload"
)

// misamFeatures is a local alias keeping driver call sites compact.
func misamFeatures(a, b *sparse.CSR) features.Vector { return features.Extract(a, b) }

// CategoryGain is one category's geomean speedup of Misam over the
// baselines.
type CategoryGain struct {
	Category               workload.Category
	VsCPU, VsGPU, VsTrap   float64
	N                      int
	TrapezoidFixedDataflow baseline.TrapezoidDataflow
}

// Figure10Result is the per-category performance-gain table.
type Figure10Result struct {
	Gains []CategoryGain
}

// runMisamOnSuite simulates the selector-chosen design for every suite
// workload and returns per-workload latency, utilization-bearing results
// and the chosen designs.
func runMisamOnSuite(ctx *Context) ([]sim.Result, []sim.DesignID, error) {
	fw, err := ctx.Framework()
	if err != nil {
		return nil, nil, err
	}
	suite := ctx.Suite()
	results := make([]sim.Result, len(suite))
	chosen := make([]sim.DesignID, len(suite))
	for i, wl := range suite {
		id := fw.Selector.Select(misamFeatures(wl.A, wl.B))
		r, err := sim.SimulateDesign(id, wl.A, wl.B)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: %s: %w", wl.Name, err)
		}
		results[i] = r
		chosen[i] = id
	}
	return results, chosen, nil
}

// trapezoidFixedPerCategory picks, per category, the single dataflow with
// the best geomean latency — Trapezoid's offline-profiled fixed choice,
// which cannot adapt per workload (§1, §2.1).
func trapezoidFixedPerCategory(suite []workload.Workload, statsPer []baseline.Stats) map[workload.Category]baseline.TrapezoidDataflow {
	model := baseline.DefaultTrapezoid()
	out := map[workload.Category]baseline.TrapezoidDataflow{}
	for _, cat := range workload.Categories {
		bestDF, bestGeo := baseline.TrapezoidRowWise, 0.0
		for _, df := range baseline.TrapezoidDataflows {
			var lats []float64
			for i, wl := range suite {
				if wl.Category != cat {
					continue
				}
				lats = append(lats, model.EstimateDataflow(df, statsPer[i]).Seconds)
			}
			if len(lats) == 0 {
				continue
			}
			g := stats.GeoMean(lats)
			if bestGeo == 0 || g < bestGeo {
				bestGeo, bestDF = g, df
			}
		}
		out[cat] = bestDF
	}
	return out
}

// Figure10 reproduces the performance-gain comparison across the
// evaluation suite.
func Figure10(ctx *Context, w io.Writer) (Figure10Result, error) {
	header(w, "Figure 10: performance gain of Misam over CPU, GPU and Trapezoid")
	suite := ctx.Suite()
	misamRes, _, err := runMisamOnSuite(ctx)
	if err != nil {
		return Figure10Result{}, err
	}
	statsPer := make([]baseline.Stats, len(suite))
	for i, wl := range suite {
		statsPer[i] = baseline.Collect(wl.A, wl.B)
	}
	cpu, gpu, trap := baseline.DefaultCPU(), baseline.DefaultGPU(), baseline.DefaultTrapezoid()
	fixed := trapezoidFixedPerCategory(suite, statsPer)

	var res Figure10Result
	fmt.Fprintf(w, "%-7s %10s %10s %12s %6s %10s\n", "cat", "vs CPU", "vs GPU", "vs Trapezoid", "n", "trap-fixed")
	for _, cat := range workload.Categories {
		var vsCPU, vsGPU, vsTrap []float64
		n := 0
		for i, wl := range suite {
			if wl.Category != cat {
				continue
			}
			n++
			m := misamRes[i].Seconds
			vsCPU = append(vsCPU, cpu.Estimate(statsPer[i]).Seconds/m)
			vsGPU = append(vsGPU, gpu.Estimate(statsPer[i]).Seconds/m)
			vsTrap = append(vsTrap, trap.EstimateDataflow(fixed[cat], statsPer[i]).Seconds/m)
		}
		g := CategoryGain{
			Category: cat, N: n,
			VsCPU: stats.GeoMean(vsCPU), VsGPU: stats.GeoMean(vsGPU), VsTrap: stats.GeoMean(vsTrap),
			TrapezoidFixedDataflow: fixed[cat],
		}
		res.Gains = append(res.Gains, g)
		fmt.Fprintf(w, "%-7v %9.2fx %9.2fx %11.2fx %6d %10v\n", cat, g.VsCPU, g.VsGPU, g.VsTrap, n, fixed[cat])
	}
	fmt.Fprintln(w, "paper: HSxMS 3.23x / MSxMS 1.01x / HSxD 5.84x over Trapezoid;")
	fmt.Fprintln(w, "       5.50x/15.33x/20.27x over CPU and 1.37x/4.48x/11.26x over GPU for HSxHS/HSxMS/MSxMS")
	return res, nil
}

// CategoryEnergy is one category's geomean energy-efficiency gain.
type CategoryEnergy struct {
	Category     workload.Category
	VsCPU, VsGPU float64
	N            int
}

// Figure11Result is the energy-efficiency table.
type Figure11Result struct {
	Gains []CategoryEnergy
}

// Figure11 reproduces the energy-efficiency comparison.
func Figure11(ctx *Context, w io.Writer) (Figure11Result, error) {
	header(w, "Figure 11: energy efficiency gain of Misam over CPU and GPU")
	suite := ctx.Suite()
	misamRes, _, err := runMisamOnSuite(ctx)
	if err != nil {
		return Figure11Result{}, err
	}
	cpu, gpu := baseline.DefaultCPU(), baseline.DefaultGPU()
	var res Figure11Result
	fmt.Fprintf(w, "%-7s %10s %10s %6s\n", "cat", "vs CPU", "vs GPU", "n")
	for _, cat := range workload.Categories {
		var vsCPU, vsGPU []float64
		n := 0
		for i, wl := range suite {
			if wl.Category != cat {
				continue
			}
			n++
			st := baseline.Collect(wl.A, wl.B)
			misamJ := energy.FPGAEnergy(misamRes[i])
			cpuJ := energy.Energy(energy.CPUActiveWatts, cpu.Estimate(st).Seconds)
			gpuJ := energy.Energy(energy.GPUPower(st.BDensity), gpu.Estimate(st).Seconds)
			vsCPU = append(vsCPU, cpuJ/misamJ)
			vsGPU = append(vsGPU, gpuJ/misamJ)
		}
		g := CategoryEnergy{Category: cat, N: n, VsCPU: stats.GeoMean(vsCPU), VsGPU: stats.GeoMean(vsGPU)}
		res.Gains = append(res.Gains, g)
		fmt.Fprintf(w, "%-7v %9.2fx %9.2fx %6d\n", cat, g.VsCPU, g.VsGPU, n)
	}
	fmt.Fprintln(w, "paper vs CPU: 14.94x HSxHS / 47.24x MSxMS / 33.96x HSxMS / 6.08x HSxD / 5.51x MSxD")
	fmt.Fprintln(w, "paper vs GPU: 8.21x HSxHS / 43.07x MSxMS / 39.86x HSxMS; GPU wins dense (0.47x HSxD, 0.27x MSxD)")
	return res, nil
}

// Figure12Row is one workload's end-to-end breakdown.
type Figure12Row struct {
	Name              string
	PreprocessPercent float64
	InferencePercent  float64
	HardwarePercent   float64
	TotalSeconds      float64
}

// Figure12Result is the breakdown table.
type Figure12Result struct {
	Rows []Figure12Row
	// MeanInferencePercent should be ≈0.1 % (paper) and
	// MeanPreprocessPercent ≈2 %.
	MeanInferencePercent  float64
	MeanPreprocessPercent float64
}

// Figure12 reproduces the performance breakdown: preprocessing (feature
// extraction), model + engine inference, and hardware execution. It uses
// the paper's deployed configuration — the pruned four-feature model with
// pointer-offset feature extraction ("our lightweight 6 KB model, which
// is pruned and uses only the top four features", §5.5) — trained on the
// context's already-labelled corpus.
func Figure12(ctx *Context, w io.Writer) (Figure12Result, error) {
	header(w, "Figure 12: Misam end-to-end breakdown (percent of total)")
	base, err := ctx.Framework()
	if err != nil {
		return Figure12Result{}, err
	}
	fw, err := misam.TrainOnCorpus(base.Corpus, nil, misam.TrainOptions{
		CorpusSize:      ctx.Cfg.CorpusSize,
		MaxDim:          ctx.Cfg.MaxDim,
		Seed:            ctx.Cfg.Seed,
		TopFeaturesOnly: true,
	})
	if err != nil {
		return Figure12Result{}, err
	}
	var res Figure12Result
	var infs, pres []float64
	fmt.Fprintf(w, "%-26s %10s %10s %10s %12s\n", "workload", "preproc%", "infer%", "hardware%", "total(s)")
	for _, wl := range figure12Workloads(ctx) {
		rep, err := fw.Analyze(context.Background(), wl.A, wl.B)
		if err != nil {
			return res, err
		}
		total := rep.PreprocessSeconds + rep.InferenceSeconds + rep.SimulatedSeconds
		row := Figure12Row{
			Name:              wl.Name,
			PreprocessPercent: rep.PreprocessSeconds / total * 100,
			InferencePercent:  rep.InferenceSeconds / total * 100,
			HardwarePercent:   rep.SimulatedSeconds / total * 100,
			TotalSeconds:      total,
		}
		res.Rows = append(res.Rows, row)
		infs = append(infs, row.InferencePercent)
		pres = append(pres, row.PreprocessPercent)
		fmt.Fprintf(w, "%-26s %9.3f%% %9.4f%% %9.2f%% %12.6f\n",
			row.Name, row.PreprocessPercent, row.InferencePercent, row.HardwarePercent, row.TotalSeconds)
	}
	res.MeanInferencePercent = stats.Mean(infs)
	res.MeanPreprocessPercent = stats.Mean(pres)
	fmt.Fprintf(w, "mean inference share: %.4f%% (paper ≈0.1%%)   mean preprocessing share: %.2f%% (paper ≈2%%)\n",
		res.MeanInferencePercent, res.MeanPreprocessPercent)
	return res, nil
}

// figure12Workloads builds the breakdown's representative set at close to
// paper scale (hardware execution in the millisecond range, B 512 wide),
// since overhead percentages only mean anything against realistic
// hardware times. The quick configs halve dimensions via Reduction but
// keep B wide.
func figure12Workloads(ctx *Context) []workload.Workload {
	rng := ctx.RNG(12)
	red := ctx.Cfg.Reduction / 8
	if red < 1 {
		red = 1
	}
	dim := func(d int) int {
		n := d / red
		if n < 512 {
			n = 512
		}
		return n
	}
	bCols := 512
	var out []workload.Workload
	nSC := dim(170_000)
	sc := sparse.Block(rng, nSC, nSC, 24, 0.02, 0.4)
	out = append(out, workload.Workload{Name: "HSxD-scircuit-like", Category: workload.HSxD,
		A: sc, B: sparse.DenseRandom(rng, nSC, bCols)})
	nP2P := dim(26_000)
	p2p := sparse.PowerLaw(rng, nP2P, nP2P, nP2P*3, 1.9)
	out = append(out, workload.Workload{Name: "HSxMS-p2p-like", Category: workload.HSxMS,
		A: p2p, B: sparse.Uniform(rng, nP2P, bCols, 0.4)})
	m, k := dim(2048), dim(2048)
	dnn := sparse.DNNPruned(rng, m, k, 0.2, true, 4)
	out = append(out, workload.Workload{Name: "MSxD-resnet-like", Category: workload.MSxD,
		A: dnn, B: sparse.DenseRandom(rng, k, bCols)})
	vgg := sparse.DNNPruned(rng, m, k, 0.1, true, 4)
	out = append(out, workload.Workload{Name: "MSxMS-vgg-like", Category: workload.MSxMS,
		A: vgg, B: sparse.DNNPruned(rng, k, bCols, 0.2, true, 4)})
	nHS := dim(36_000)
	hs := sparse.PowerLaw(rng, nHS, nHS, nHS*10, 1.8)
	out = append(out, workload.Workload{Name: "HSxHS-enron-like", Category: workload.HSxHS,
		A: hs, B: hs})
	return out
}

// Figure13Result covers the §6.3 Trapezoid integration: per-workload
// normalized dataflow performance and a Misam selector trained on
// Trapezoid's dataflows.
type Figure13Result struct {
	// Wins[d] counts suite workloads where dataflow d is fastest.
	Wins [baseline.NumTrapezoidDataflows]int
	// SelectorAccuracy is the held-out accuracy of the dataflow selector
	// (paper: 92 %).
	SelectorAccuracy float64
	// MaxSpeedup is the largest optimal-vs-worst dataflow ratio observed
	// (paper: up to 15.8×).
	MaxSpeedup float64
	// GeoSpeedupOverFixed is the geomean gain of per-workload optimal
	// selection over the single best fixed dataflow.
	GeoSpeedupOverFixed float64
}

// Figure13 reproduces Figure 13 and the §6.3 integration experiment.
func Figure13(ctx *Context, w io.Writer) (Figure13Result, error) {
	header(w, "Figure 13 / §6.3: Misam selector over Trapezoid's dataflows")
	model := baseline.DefaultTrapezoid()
	var res Figure13Result

	// Build a labelled corpus over the training pairs: features → fastest
	// Trapezoid dataflow.
	corpus, err := ctx.Corpus()
	if err != nil {
		return res, err
	}
	var x [][]float64
	var y []int
	for _, s := range corpus.Samples {
		st := baseline.Collect(s.Pair.A, s.Pair.B)
		best, _ := model.BestDataflow(st)
		x = append(x, s.Features.Slice())
		y = append(y, int(best))
	}
	rng := ctx.RNG(13)
	train, test := mltree.StratifiedSplit(y, int(baseline.NumTrapezoidDataflows), 0.7, rng)
	trX := make([][]float64, len(train))
	trY := make([]int, len(train))
	for i, j := range train {
		trX[i], trY[i] = x[j], y[j]
	}
	cls, err := mltree.TrainClassifier(trX, trY, int(baseline.NumTrapezoidDataflows),
		mltree.BalancedWeights(trY, int(baseline.NumTrapezoidDataflows)),
		mltree.Config{MaxDepth: 10, MinSamplesLeaf: 2})
	if err != nil {
		return res, err
	}
	teX := make([][]float64, len(test))
	teY := make([]int, len(test))
	for i, j := range test {
		teX[i], teY[i] = x[j], y[j]
	}
	res.SelectorAccuracy = mltree.Accuracy(cls.PredictBatch(teX), teY)

	// Per-workload dataflow spread over the evaluation suite.
	suite := ctx.Suite()
	var fixedBest [baseline.NumTrapezoidDataflows][]float64
	var optimal []float64
	for _, wl := range suite {
		st := baseline.Collect(wl.A, wl.B)
		ests := model.EstimateAll(st)
		best, worst := baseline.TrapezoidInner, baseline.TrapezoidInner
		for _, d := range baseline.TrapezoidDataflows {
			if ests[d].Seconds < ests[best].Seconds {
				best = d
			}
			if ests[d].Seconds > ests[worst].Seconds {
				worst = d
			}
		}
		res.Wins[best]++
		if ratio := ests[worst].Seconds / ests[best].Seconds; ratio > res.MaxSpeedup {
			res.MaxSpeedup = ratio
		}
		optimal = append(optimal, ests[best].Seconds)
		for _, d := range baseline.TrapezoidDataflows {
			fixedBest[d] = append(fixedBest[d], ests[d].Seconds)
		}
	}
	bestFixedGeo := 0.0
	optGeo := stats.GeoMean(optimal)
	fmt.Fprintf(w, "%-10s %20s\n", "dataflow", "geomean normalized")
	for _, d := range baseline.TrapezoidDataflows {
		g := stats.GeoMean(fixedBest[d])
		if bestFixedGeo == 0 || g < bestFixedGeo {
			bestFixedGeo = g
		}
		fmt.Fprintf(w, "%-10v %20.3f\n", d, optGeo/g)
	}
	res.GeoSpeedupOverFixed = bestFixedGeo / optGeo

	fmt.Fprintf(w, "dataflow wins across suite: IP=%d OP=%d RW=%d\n",
		res.Wins[baseline.TrapezoidInner], res.Wins[baseline.TrapezoidOuter], res.Wins[baseline.TrapezoidRowWise])
	fmt.Fprintf(w, "selector held-out accuracy: %.1f%% (paper 92%%)\n", res.SelectorAccuracy*100)
	fmt.Fprintf(w, "max optimal-vs-worst dataflow speedup: %.1fx (paper up to 15.8x)\n", res.MaxSpeedup)
	fmt.Fprintf(w, "geomean gain of per-workload selection over best fixed dataflow: %.2fx\n", res.GeoSpeedupOverFixed)
	return res, nil
}
