package experiments

import (
	"io"
	"strings"
	"sync"
	"testing"

	"misam/internal/sim"
	"misam/internal/workload"
)

var (
	quickCtx     *Context
	quickCtxOnce sync.Once
)

// ctxForTest shares one QuickConfig context across tests (training and
// suite generation dominate the cost).
func ctxForTest() *Context {
	quickCtxOnce.Do(func() { quickCtx = NewContext(QuickConfig()) })
	return quickCtx
}

func TestFigure1(t *testing.T) {
	var sb strings.Builder
	res := Figure1(&sb)
	if len(res.Points) < 5 {
		t.Fatal("Figure 1 needs several applications")
	}
	if !strings.Contains(sb.String(), "HSxHS") {
		t.Error("output missing regimes")
	}
}

func TestTable1MatchesConfigs(t *testing.T) {
	var sb strings.Builder
	cfgs := Table1(&sb)
	if cfgs[sim.Design2].PEG != 24 {
		t.Error("Table 1 drifted from sim configs")
	}
	out := sb.String()
	for _, want := range []string{"ch_A", "PEG", "Scheduler A", "Comp."} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	var sb strings.Builder
	res := Table2(&sb)
	if res[sim.Design1].BRAM != 60.71 {
		t.Error("Table 2 resources wrong")
	}
	if !strings.Contains(sb.String(), "Design 2 & 3") {
		t.Error("shared-bitstream designs should print one row")
	}
}

func TestTable3(t *testing.T) {
	rows := Table3(ctxForTest(), io.Discard)
	if len(rows) != 16 {
		t.Fatalf("Table 3 rows = %d, want 16", len(rows))
	}
	for _, r := range rows {
		if r.NNZ <= 0 || r.Rows <= 0 {
			t.Errorf("%s: degenerate stand-in", r.Spec.Name)
		}
	}
}

func TestFigure3NoUniversalWinner(t *testing.T) {
	res, err := Figure3(ctxForTest(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 5 {
		t.Fatal("too few workloads")
	}
	winners := 0
	for _, n := range res.Wins {
		if n > 0 {
			winners++
		}
	}
	if winners < 2 {
		t.Errorf("a single design won everything (%v); Figure 3's premise fails", res.Wins)
	}
	for _, row := range res.Rows {
		for _, v := range row.Normalized {
			if v <= 0 || v > 1+1e-9 {
				t.Errorf("%s: normalized value %v outside (0,1]", row.Name, v)
			}
		}
	}
}

func TestFigure4(t *testing.T) {
	res, err := Figure4(ctxForTest(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) == 0 {
		t.Fatal("no features used")
	}
	sum := 0.0
	for i, v := range res.Importance {
		if i > 0 && v > res.Importance[i-1] {
			t.Error("importance not sorted descending")
		}
		sum += v
	}
	if sum > 1+1e-9 {
		t.Errorf("importance sums to %v > 1", sum)
	}
}

func TestTable4DiagonalAndDominance(t *testing.T) {
	res, err := Table4(ctxForTest(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if res.Counts[i] == 0 {
			continue
		}
		if res.Speedup[i][i] != 1 {
			t.Errorf("diagonal [%d][%d] = %v, want 1", i, i, res.Speedup[i][i])
		}
		for j := 0; j < 3; j++ {
			if res.Speedup[i][j] < 1-1e-9 {
				t.Errorf("optimal design slower than alternative: [%d][%d]=%v", i, j, res.Speedup[i][j])
			}
		}
	}
}

func TestTable5AccuracyInPaperRegime(t *testing.T) {
	res, err := Table5(ctxForTest(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.7 {
		t.Errorf("held-out accuracy %.2f too low", res.Accuracy)
	}
	if res.CVAccuracy < 0.7 {
		t.Errorf("CV accuracy %.2f too low", res.CVAccuracy)
	}
	if len(res.Confusion) != int(sim.NumDesigns) {
		t.Error("confusion matrix shape wrong")
	}
	if res.SpeedupCorrect < 1 {
		t.Errorf("speedup when correct %.2f < 1", res.SpeedupCorrect)
	}
	if res.SlowdownWrong != 0 && res.SlowdownWrong < 1-1e-9 {
		t.Errorf("slowdown when wrong %.2f < 1", res.SlowdownWrong)
	}
}

func TestFigure6DifferentWinners(t *testing.T) {
	res := Figure6(io.Discard)
	if len(res.Matrices) != 3 {
		t.Fatal("Figure 6 needs 3 toy matrices")
	}
	// The figure's point: each design wins one matrix — (a) highly sparse
	// → Design 1, (b) denser regular → Design 2, (c) imbalanced →
	// Design 3.
	want := []int{0, 1, 2}
	for m, wi := range res.Winners {
		if wi != want[m] {
			t.Errorf("matrix %d won by toy design %d, want %d", m, wi+1, want[m]+1)
		}
	}
	for m, cells := range res.Cells {
		for d, c := range cells {
			if c.Cycles <= 3 {
				t.Errorf("matrix %d design %d: cycles %d should exceed the B read", m, d, c.Cycles)
			}
		}
	}
}

func TestFigure8EngineBehaviour(t *testing.T) {
	res, err := Figure8(ctxForTest(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 4 {
		t.Fatal("too few scenarios")
	}
	var anySwitch, anyKeep bool
	for _, r := range res.Rows {
		if r.Switched {
			anySwitch = true
			if r.Speedup < 1-0.35 {
				// The predictor may misjudge narrowly, but a switch that
				// loses badly means the engine is broken.
				t.Errorf("%s: switched into a %.2fx slowdown", r.Name, r.Speedup)
			}
		} else {
			anyKeep = true
		}
	}
	if !anySwitch {
		t.Error("engine never reconfigured; the cg15 scenario should switch")
	}
	if !anyKeep {
		t.Error("engine always reconfigured; small batches should be kept")
	}
}

func TestFigure9PredictorQuality(t *testing.T) {
	res, err := Figure9(ctxForTest(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.R2 < 0.8 {
		t.Errorf("R² = %.3f, want >= 0.8 (paper 0.978)", res.R2)
	}
	if res.MAE > 1.0 {
		t.Errorf("MAE = %.3f log10(ms); predictor unusable", res.MAE)
	}
}

func TestFigure10Shapes(t *testing.T) {
	res, err := Figure10(ctxForTest(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Gains) != int(workload.NumCategories) {
		t.Fatal("missing categories")
	}
	for _, g := range res.Gains {
		if g.VsCPU <= 1 {
			t.Errorf("%v: Misam should beat the CPU (got %.2fx)", g.Category, g.VsCPU)
		}
		if g.VsGPU <= 0 || g.VsTrap <= 0 {
			t.Errorf("%v: nonpositive gains", g.Category)
		}
	}
	// The paper's headline: Misam beats Trapezoid's fixed dataflows on
	// HSxMS and HSxD.
	for _, g := range res.Gains {
		if (g.Category == workload.HSxMS || g.Category == workload.HSxD) && g.VsTrap < 1 {
			t.Errorf("%v: Misam %.2fx vs Trapezoid, want > 1", g.Category, g.VsTrap)
		}
	}
}

func TestFigure11EnergyShapes(t *testing.T) {
	res, err := Figure11(ctxForTest(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Gains {
		if g.VsCPU <= 1 {
			t.Errorf("%v: FPGA should be more energy-efficient than the CPU (got %.2fx)", g.Category, g.VsCPU)
		}
	}
}

func TestFigure12OverheadsSmall(t *testing.T) {
	res, err := Figure12(ctxForTest(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 4 {
		t.Fatal("too few breakdown rows")
	}
	if raceEnabled {
		t.Skip("overhead shares mix measured host time with modeled accelerator time; race instrumentation skews the ratio")
	}
	if res.MeanInferencePercent > 5 {
		t.Errorf("mean inference share %.2f%%, want small (paper 0.1%%)", res.MeanInferencePercent)
	}
	if res.MeanPreprocessPercent > 25 {
		t.Errorf("mean preprocessing share %.2f%%, want small (paper 2%%)", res.MeanPreprocessPercent)
	}
}

func TestFigure13TrapezoidIntegration(t *testing.T) {
	res, err := Figure13(ctxForTest(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.SelectorAccuracy < 0.7 {
		t.Errorf("Trapezoid selector accuracy %.2f too low (paper 92%%)", res.SelectorAccuracy)
	}
	total := 0
	for _, n := range res.Wins {
		total += n
	}
	if total != len(ctxForTest().Suite()) {
		t.Errorf("wins %v do not cover the suite", res.Wins)
	}
	if res.MaxSpeedup < 1 {
		t.Error("optimal dataflow cannot be slower than the worst")
	}
}

func TestMultiTenant(t *testing.T) {
	res := MultiTenant(io.Discard)
	if res.InstancesFull[sim.Design1] != 1 || res.InstancesFull[sim.Design2] != 2 {
		t.Errorf("packing counts wrong: %v", res.InstancesFull)
	}
	if res.InstancesReserved[sim.Design4] != 2 {
		t.Errorf("Design 4 reserved packing = %d, want paper's 2", res.InstancesReserved[sim.Design4])
	}
	if len(res.CoLocations) == 0 {
		t.Error("no feasible co-locations found")
	}
}

func TestRouterExtension(t *testing.T) {
	res, err := Router(ctxForTest(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.6 {
		t.Errorf("routing accuracy %.2f too low", res.Accuracy)
	}
	// Routing should never be much worse than FPGA-only (small losses can
	// occur when the router narrowly misroutes a near-tie).
	if res.GeoSpeedupOverMisamOnly < 0.9 {
		t.Errorf("routed execution much slower than FPGA-only: %.3f", res.GeoSpeedupOverMisamOnly)
	}
	total := 0
	for _, n := range res.Counts {
		total += n
	}
	if total != len(ctxForTest().Suite()) {
		t.Error("routed counts do not cover the suite")
	}
}

func TestObjectiveExtension(t *testing.T) {
	res, err := Objective(ctxForTest(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shifted <= 0 {
		t.Error("energy objective never shifts the optimal design")
	}
	if res.Shifted > 0.9 {
		t.Errorf("objective shift %.2f implausibly large", res.Shifted)
	}
}

func TestReconfigModesExtension(t *testing.T) {
	res, err := ReconfigModes(ctxForTest(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	full := res.SwitchSeconds["full"]
	partial := res.SwitchSeconds["partial"]
	cgra := res.SwitchSeconds["cgra"]
	if !(cgra < partial && partial < full) {
		t.Errorf("switch costs not ordered: cgra %v, partial %v, full %v", cgra, partial, full)
	}
	// Cheaper switching can only make the engine switch earlier (or at
	// the same batch), never later.
	fs := res.FirstSwitchUnits
	ordered := func(a, b float64) bool {
		if a < 0 { // never switched
			return true
		}
		return b < 0 || a >= b
	}
	if !ordered(fs["full"], fs["partial"]) || !ordered(fs["partial"], fs["cgra"]) {
		t.Errorf("aggressiveness not monotone in switch cost: %v", fs)
	}
}

func TestLearningCurveExtension(t *testing.T) {
	res, err := LearningCurve(ctxForTest(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 2 {
		t.Fatalf("learning curve needs multiple points, got %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.TrainSeconds > 10 {
			t.Errorf("corpus %d trained in %.1fs; §6.3 promises fast retraining", p.CorpusSize, p.TrainSeconds)
		}
		if p.Accuracy <= 0.25 {
			t.Errorf("corpus %d accuracy %.2f no better than chance", p.CorpusSize, p.Accuracy)
		}
	}
	// The largest corpus should not be drastically worse than the
	// smallest (tens-of-sample prefixes are noisy at the quick scale).
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.Accuracy < first.Accuracy-0.25 {
		t.Errorf("accuracy collapsed with more data: %.2f → %.2f", first.Accuracy, last.Accuracy)
	}
}

func TestPhasesExtension(t *testing.T) {
	results, err := Phases(ctxForTest(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("expected 3 traces, got %d", len(results))
	}
	for _, res := range results {
		if len(res.Rows) < 2 {
			t.Errorf("%s: trace too short", res.Trace)
		}
		if res.AdaptiveSec <= 0 || res.StaticSec <= 0 {
			t.Errorf("%s: nonpositive totals", res.Trace)
		}
		// Adaptation must never lose badly to the static baseline — at
		// worst it keeps the static design everywhere.
		if res.AdaptiveSec > res.StaticSec*1.3 {
			t.Errorf("%s: adaptive %.2fs much worse than static %.2fs",
				res.Trace, res.AdaptiveSec, res.StaticSec)
		}
	}
	// At least one trace should actually adapt.
	adapted := 0
	for _, res := range results {
		adapted += res.Switches
	}
	if adapted == 0 {
		t.Error("no trace triggered any reconfiguration; phases are inert")
	}
}

func TestHeuristicsExtension(t *testing.T) {
	res, err := Heuristics(ctxForTest(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopSplits) == 0 {
		t.Fatal("no decision boundaries extracted")
	}
	if !strings.Contains(res.Rules, "Design") {
		t.Errorf("rules missing design names:\n%s", res.Rules)
	}
	if !strings.Contains(res.Rules, "if ") {
		t.Errorf("rules missing conditions:\n%s", res.Rules)
	}
}
