package experiments

import (
	"fmt"
	"io"
	"math"

	"misam/internal/dataset"
	"misam/internal/mltree"
	"misam/internal/reconfig"
	"misam/internal/sim"
	"misam/internal/sparse"
	"misam/internal/stats"
)

// Figure8Scenario is one reconfiguration case study: a workload executed
// Batch times (an iterative solver or a training loop re-invoking SpGEMM)
// while some bitstream is already loaded.
type Figure8Scenario struct {
	Name    string
	Current sim.DesignID
	Batch   int
	A, B    *sparse.CSR
}

// Figure8Row is the outcome of one scenario.
type Figure8Row struct {
	Name string
	// CurrentSec is running the whole batch on the loaded bitstream;
	// BestSec is the per-workload best design including its
	// reconfiguration cost; ChosenSec is what the engine's decision
	// actually costs.
	CurrentSec, BestSec, ChosenSec float64
	ReconfigSec                    float64
	Switched                       bool
	// Speedup is CurrentSec/ChosenSec (≥1 when switching helped);
	// SlowdownVsBest is ChosenSec/BestSec.
	Speedup        float64
	SlowdownVsBest float64
}

// Figure8Result aggregates the engine evaluation.
type Figure8Result struct {
	Rows []Figure8Row
	// GeoSpeedupSwitched is the geomean of Speedup over scenarios where
	// the engine reconfigured (paper: 2.74×, up to 10.76×).
	GeoSpeedupSwitched float64
	// GeoSlowdownKept is the geomean of SlowdownVsBest where it kept the
	// current design (paper: 1.02×).
	GeoSlowdownKept float64
	MaxSpeedup      float64
}

// figure8Scenarios builds the case-study suite: one very large matrix
// whose batch amortizes the 3–4 s reconfiguration (the paper's cg15) and
// several smaller ones where switching cannot pay.
func figure8Scenarios(ctx *Context) []Figure8Scenario {
	rng := ctx.RNG(8)
	red := ctx.Cfg.Reduction
	dim := func(d int) int {
		n := d / red
		if n < 128 {
			n = 128
		}
		return n
	}
	nCG := dim(1_500_000)
	// cg15-like: a 1.5M-row iterative solve multiplying a very sparse A
	// by a moderately sparse block of vectors tens of thousands of times.
	// Design 4's compressed-B path beats the loaded SpMM design by ~an
	// order of magnitude, and the batch amortizes the 3–4 s switch
	// (paper: up to 10.76×).
	cg := sparse.Uniform(rng, nCG, nCG, 3.0/float64(nCG))
	cgB := sparse.Uniform(rng, nCG, 256, 0.02)
	nAP := dim(120_000)
	apa := sparse.PowerLaw(rng, nAP, nAP, nAP*4, 1.8)
	nDel := dim(300_000)
	del := sparse.Banded(rng, nDel, nDel, 2, 0.8)
	nIm := dim(200_000)
	im := sparse.Imbalanced(rng, nIm, nIm, nIm*6, 0.01, 0.85)
	nRe := dim(250_000)
	reg := sparse.Banded(rng, nRe, nRe, 8, 0.6)
	// The per-run gain shrinks linearly with the size reduction, so the
	// iteration count that amortizes a 3–4 s reconfiguration scales with
	// it (at paper scale, red=1, this is a 12k-iteration solve).
	cgBatch := 12000 * red
	return []Figure8Scenario{
		{Name: "cg15", Current: sim.Design1, Batch: cgBatch, A: cg, B: cgB},
		// apa2: Design 2 loaded, the proposal is Design 3 — a shared
		// bitstream, so the engine switches for free.
		{Name: "apa2", Current: sim.Design2, Batch: 3, A: apa, B: sparse.DenseRandom(rng, nAP, 32)},
		// del19: near-tied designs with a tiny batch — the engine keeps
		// the loaded design at negligible cost ("minimal performance gain
		// from switching", §5.2).
		{Name: "del19", Current: sim.Design2, Batch: 2, A: del, B: sparse.DenseRandom(rng, nDel, 32)},
		// Imbalanced workload while Design 2 is loaded: Design 3 shares
		// the bitstream, so switching is free even for a small batch.
		{Name: "imb", Current: sim.Design2, Batch: 4, A: im, B: sparse.DenseRandom(rng, nIm, 32)},
		// Regular banded solve on Design 1 with a small batch: Design 2
		// would win per run, but a 3–4 s reconfiguration cannot amortize.
		{Name: "reg", Current: sim.Design1, Batch: 3, A: reg, B: sparse.DenseRandom(rng, nRe, 32)},
	}
}

// Figure8 reproduces the reconfiguration-overhead analysis.
func Figure8(ctx *Context, w io.Writer) (Figure8Result, error) {
	header(w, "Figure 8: reconfiguration engine on Xilinx U55C (batch totals; * = engine's choice)")
	fw, err := ctx.Framework()
	if err != nil {
		return Figure8Result{}, err
	}
	var res Figure8Result
	var switched, kept []float64
	fmt.Fprintf(w, "%-8s %6s %12s %12s %12s %9s %7s\n",
		"name", "batch", "current(s)", "best(s)", "chosen(s)", "reconf(s)", "switch")
	for _, sc := range figure8Scenarios(ctx) {
		st := reconfig.State{Loaded: sc.Current, HasLoaded: true}
		v := misamFeatures(sc.A, sc.B)
		proposed := fw.Selector.Select(v)
		dec := fw.Engine.Decide(st, v, proposed, float64(sc.Batch))

		all, err := sim.SimulateAll(sc.A, sc.B)
		if err != nil {
			return res, err
		}
		best := sim.BestDesign(all)
		times := fw.Engine.Times

		row := Figure8Row{Name: sc.Name, Switched: dec.Target != sc.Current}
		row.CurrentSec = float64(sc.Batch) * all[sc.Current].Seconds
		row.BestSec = float64(sc.Batch)*all[best].Seconds + times.Switch(sc.Current, best)
		row.ChosenSec = float64(sc.Batch)*all[dec.Target].Seconds + dec.ReconfigSeconds
		row.ReconfigSec = dec.ReconfigSeconds
		row.Speedup = row.CurrentSec / row.ChosenSec
		// "Slight slowdown compared to the theoretical best" (§5.2): the
		// best design's batch time with reconfiguration assumed free.
		row.SlowdownVsBest = row.ChosenSec / (float64(sc.Batch) * all[best].Seconds)
		res.Rows = append(res.Rows, row)

		if row.Switched {
			switched = append(switched, row.Speedup)
			if row.Speedup > res.MaxSpeedup {
				res.MaxSpeedup = row.Speedup
			}
		} else {
			kept = append(kept, row.SlowdownVsBest)
		}
		star := " "
		if row.Switched {
			star = "*"
		}
		fmt.Fprintf(w, "%-8s %6d %12.3f %12.3f %12.3f %9.2f %6s%s\n",
			sc.Name, sc.Batch, row.CurrentSec, row.BestSec, row.ChosenSec, row.ReconfigSec,
			dec.Target.String(), star)
	}
	res.GeoSpeedupSwitched = stats.GeoMean(switched)
	res.GeoSlowdownKept = stats.GeoMean(kept)
	fmt.Fprintf(w, "geomean speedup when reconfiguring: %.2fx (paper 2.74x, up to 10.76x; ours up to %.2fx)\n",
		res.GeoSpeedupSwitched, res.MaxSpeedup)
	fmt.Fprintf(w, "geomean slowdown vs best when keeping: %.2fx (paper 1.02x)\n", res.GeoSlowdownKept)
	return res, nil
}

// Figure9Result is the latency-predictor accuracy analysis.
type Figure9Result struct {
	MAE float64 // in log10(ms) space
	R2  float64
	// ResidualP50/P90 are residual magnitudes at those percentiles.
	ResidualP50, ResidualP90 float64
	N                        int
}

// Figure9 reproduces the latency-predictor residual analysis: the paper
// reports MAE 0.344 and R² 0.978.
func Figure9(ctx *Context, w io.Writer) (Figure9Result, error) {
	header(w, "Figure 9: reconfiguration-engine latency predictor accuracy")
	corpus, err := ctx.Corpus()
	if err != nil {
		return Figure9Result{}, err
	}
	// Fresh 70/30 split over corpus samples: train the production
	// per-design predictor on one side, pool held-out residuals over
	// every (sample, design) record on the other.
	rng := ctx.RNG(9)
	trainIdx, testIdx := mltree.Split(len(corpus.Samples), 0.7, rng)
	trainCorpus := &dataset.Corpus{}
	for _, j := range trainIdx {
		trainCorpus.Samples = append(trainCorpus.Samples, corpus.Samples[j])
	}
	predictor, err := reconfig.TrainLatencyPredictor(trainCorpus, mltree.Config{MaxDepth: 16, MinSamplesLeaf: 2})
	if err != nil {
		return Figure9Result{}, err
	}
	var pred, truth, resid []float64
	for _, j := range testIdx {
		smp := &corpus.Samples[j]
		for _, id := range sim.AllDesigns {
			p := predictor.PredictTarget(smp.Features, id)
			tr := dataset.LatencyTarget(smp.LatencySec[id])
			pred = append(pred, p)
			truth = append(truth, tr)
			resid = append(resid, math.Abs(p-tr))
		}
	}
	res := Figure9Result{
		MAE:         mltree.MAE(pred, truth),
		R2:          mltree.R2(pred, truth),
		ResidualP50: stats.Percentile(resid, 50),
		ResidualP90: stats.Percentile(resid, 90),
		N:           len(pred),
	}
	fmt.Fprintf(w, "held-out records: %d\n", res.N)
	fmt.Fprintf(w, "MAE  (log10 ms): %.3f   (paper: 0.344)\n", res.MAE)
	fmt.Fprintf(w, "R²             : %.3f   (paper: 0.978)\n", res.R2)
	fmt.Fprintf(w, "|residual| p50 : %.3f   p90: %.3f\n", res.ResidualP50, res.ResidualP90)
	return res, nil
}
