package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"misam"
	"misam/internal/dataset"
	"misam/internal/online"
	"misam/internal/sim"
)

// SlowTierReportData is the machine-readable slow-tier trajectory record
// (BENCH_PR10.json): the exact four-design evaluation versus the pruned
// tier (coarse-then-exact ordering + early-exit simulation + tile-level
// memoization + mid-simulation bound aborts) on the same distinct-pair
// stream BENCH_PR5 timed, plus the pruned tier's effect on batch
// labelling and background-audit throughput and the audit pass's tile
// reuse out of the shared serve-side tile cache.
type SlowTierReportData struct {
	Schema     string `json:"schema"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Requests   int    `json:"requests"`

	// Exact*/Pruned* are per-pair evaluation latencies (workload build +
	// all four designs) through each tier.
	ExactP50NsOp  int64 `json:"exact_p50_ns_op"`
	ExactP90NsOp  int64 `json:"exact_p90_ns_op"`
	ExactP99NsOp  int64 `json:"exact_p99_ns_op"`
	PrunedP50NsOp int64 `json:"pruned_p50_ns_op"`
	PrunedP90NsOp int64 `json:"pruned_p90_ns_op"`
	PrunedP99NsOp int64 `json:"pruned_p99_ns_op"`
	// SpeedupP50 is exact vs pruned, both measured this run.
	SpeedupP50 float64 `json:"speedup_p50"`

	// ArgminAgreement must be 1.0 and WinnerBitIdentical true — the
	// pruned tier claims exactness for the winner, and the report run
	// doubles as a check of that claim on real timing streams.
	ArgminAgreement    float64 `json:"argmin_agreement"`
	WinnerBitIdentical bool    `json:"winner_bit_identical"`
	// PrunedShare is the fraction of the 4×Requests design evaluations
	// the pruned tier retired with a bound instead of a full simulation.
	PrunedShare float64 `json:"pruned_share"`

	// PR5BaselineP50NsOp is BENCH_PR5's slow-tier baseline for the same
	// stream (0 when the file is absent); SpeedupVsPR5P50 is that
	// baseline over this run's pruned p50.
	PR5BaselineP50NsOp int64   `json:"pr5_baseline_p50_ns_op,omitempty"`
	SpeedupVsPR5P50    float64 `json:"speedup_vs_pr5_p50,omitempty"`

	// Label*RPS are dataset.LabelAll pairs/sec through each tier (batch
	// corpus generation is the other big slow-tier consumer).
	LabelExactRPS  float64 `json:"label_exact_rps"`
	LabelPrunedRPS float64 `json:"label_pruned_rps"`
	LabelSpeedup   float64 `json:"label_speedup"`

	// VerifierDrainRPS is the background-audit drain rate with pruned
	// verification (jobs/sec over the stream's workloads).
	VerifierDrainRPS float64 `json:"verifier_drain_rps"`

	// TileCache* aggregate the shared serve+audit tile-schedule cache:
	// total lookups that found a memoized (busy, bubbles, compute) triple
	// versus ones that had to schedule. BoundAborts counts design
	// simulations cut mid-tile-loop by the running remaining-tiles floor;
	// CoarseSkips counts whole designs retired before their first tile.
	TileCacheHits    int64   `json:"tile_cache_hits"`
	TileCacheMisses  int64   `json:"tile_cache_misses"`
	TileCacheHitRate float64 `json:"tile_cache_hit_rate"`
	BoundAborts      int64   `json:"bound_aborts"`
	CoarseSkips      int64   `json:"coarse_skips"`
	// VerifierReuseRate is the fraction of the audit pass's tile
	// simulations served from the tile cache when re-simulating freshly
	// rebuilt workloads of just-served pairs — the production audit
	// re-checks what serving just computed, so its schedules should come
	// out of the cache, not out of the scheduler.
	VerifierReuseRate float64 `json:"verifier_reuse_rate"`
}

// slowTierPairs is the standard distinct-pair stream shared with
// FastPathReport, so BENCH_PR5's baseline and BENCH_PR10's tiers time the
// same workloads.
func slowTierPairs(cfg Config) []dataset.Pair {
	dim := cfg.MaxDim
	if dim < 128 {
		dim = 128
	}
	const nPairs = 40
	pairs := make([]dataset.Pair, nPairs)
	for i := range pairs {
		s := int64(9000 + i*11)
		n := dim/2 + (i*131)%(dim/2)
		if i%2 == 0 {
			pairs[i] = dataset.Pair{
				Family: "ms-dense",
				A:      misam.RandUniform(s, n, n, 0.02),
				B:      misam.RandDense(s+1, n, 64),
			}
		} else {
			pairs[i] = dataset.Pair{
				Family: "graph",
				A:      misam.RandPowerLaw(s, n, n, n*8, 1.8),
				B:      misam.RandUniform(s+1, n, 96, 0.05),
			}
		}
	}
	return pairs
}

// SlowTierReport times the exact and pruned slow tiers over the standard
// distinct-pair stream, checks the pruned tier's exactness contract on
// every pair, measures batch labelling, background-audit throughput and
// the audit's tile-cache reuse, and writes (then re-reads and validates)
// the BENCH_PR10 record.
func SlowTierReport(ctxE *Context, path string, w io.Writer) (SlowTierReportData, error) {
	header(w, "Slow-tier report: pruned (coarse + early-exit + memoized tiles) vs exact simulation")
	rep := SlowTierReportData{
		Schema:     "misam-slowtier/2",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	pairs := slowTierPairs(ctxE.Cfg)
	rep.Requests = len(pairs)
	ctx := context.Background()

	// Per-pair evaluation latency through each tier (fresh workload every
	// time: the slow tier serves cache misses).
	time1 := func(pruned bool, p dataset.Pair) (int64, [sim.NumDesigns]sim.Result, error) {
		t0 := time.Now()
		wl, err := sim.NewWorkload(p.A, p.B)
		if err != nil {
			return 0, [sim.NumDesigns]sim.Result{}, err
		}
		var res [sim.NumDesigns]sim.Result
		if pruned {
			res, err = wl.SimulateAllPrunedCtx(ctx)
		} else {
			res, err = wl.SimulateAllCtx(ctx)
		}
		return time.Since(t0).Nanoseconds(), res, err
	}
	exactNs := make([]int64, len(pairs))
	prunedNs := make([]int64, len(pairs))
	agree, prunedEvals := 0, 0
	rep.WinnerBitIdentical = true
	for i, p := range pairs {
		var exact, pruned [sim.NumDesigns]sim.Result
		var err error
		if exactNs[i], exact, err = time1(false, p); err != nil {
			return rep, fmt.Errorf("experiments: slowtier exact pair %d: %w", i, err)
		}
		if prunedNs[i], pruned, err = time1(true, p); err != nil {
			return rep, fmt.Errorf("experiments: slowtier pruned pair %d: %w", i, err)
		}
		eb, pb := sim.BestDesign(exact), sim.BestDesign(pruned)
		if eb == pb {
			agree++
		}
		if pruned[pb] != exact[eb] {
			rep.WinnerBitIdentical = false
		}
		for _, id := range sim.AllDesigns {
			if pruned[id].Pruned {
				prunedEvals++
			}
		}
	}
	rep.ExactP50NsOp = pctNs(exactNs, 0.50)
	rep.ExactP90NsOp = pctNs(exactNs, 0.90)
	rep.ExactP99NsOp = pctNs(exactNs, 0.99)
	rep.PrunedP50NsOp = pctNs(prunedNs, 0.50)
	rep.PrunedP90NsOp = pctNs(prunedNs, 0.90)
	rep.PrunedP99NsOp = pctNs(prunedNs, 0.99)
	if rep.PrunedP50NsOp > 0 {
		rep.SpeedupP50 = float64(rep.ExactP50NsOp) / float64(rep.PrunedP50NsOp)
	}
	rep.ArgminAgreement = float64(agree) / float64(len(pairs))
	rep.PrunedShare = float64(prunedEvals) / float64(len(pairs)*int(sim.NumDesigns))

	// The PR5 record timed the full AnalyzeOn path over this same stream;
	// its baseline_p50_ns_op is the slow-tier cost the fast path was
	// built to avoid — and the pruned tier now shrinks.
	if data, err := os.ReadFile("BENCH_PR5.json"); err == nil {
		var pr5 struct {
			BaselineP50NsOp int64 `json:"baseline_p50_ns_op"`
		}
		if json.Unmarshal(data, &pr5) == nil && pr5.BaselineP50NsOp > 0 {
			rep.PR5BaselineP50NsOp = pr5.BaselineP50NsOp
			if rep.PrunedP50NsOp > 0 {
				rep.SpeedupVsPR5P50 = float64(pr5.BaselineP50NsOp) / float64(rep.PrunedP50NsOp)
			}
		}
	}

	// Batch labelling throughput through each tier. The pair streams are
	// distinct per run only in timing — LabelAll dedups identical
	// fingerprints, and the stream has none.
	label := func(opt dataset.LabelOptions) (float64, error) {
		t0 := time.Now()
		if _, err := dataset.LabelAllOpts(ctx, pairs, opt); err != nil {
			return 0, err
		}
		return float64(len(pairs)) / time.Since(t0).Seconds(), nil
	}
	var err error
	if rep.LabelExactRPS, err = label(dataset.LabelOptions{}); err != nil {
		return rep, fmt.Errorf("experiments: slowtier exact labelling: %w", err)
	}
	if rep.LabelPrunedRPS, err = label(dataset.LabelOptions{Pruned: true}); err != nil {
		return rep, fmt.Errorf("experiments: slowtier pruned labelling: %w", err)
	}
	if rep.LabelExactRPS > 0 {
		rep.LabelSpeedup = rep.LabelPrunedRPS / rep.LabelExactRPS
	}

	// Background-audit drain rate and verifier tile reuse. Every pair is
	// first served once through a shared tile cache, then the verifier
	// pool re-simulates freshly rebuilt workloads of the same pairs
	// against that cache. The rebuild is deliberate: it discards all
	// per-workload memoization, so the only schedules the audit can reuse
	// are the ones serving published to the shared cache.
	shared := sim.NewTileCache(32 << 20)
	wls := make([]*sim.Workload, len(pairs))
	for i, p := range pairs {
		if wls[i], err = sim.NewWorkload(p.A, p.B); err != nil {
			return rep, err
		}
		wls[i].AttachTileCache(shared)
		if _, err = wls[i].SimulateAllPrunedCtx(ctx); err != nil {
			return rep, fmt.Errorf("experiments: slowtier serve pair %d: %w", i, err)
		}
	}
	served := shared.Stats()
	for i, p := range pairs {
		if wls[i], err = sim.NewWorkload(p.A, p.B); err != nil {
			return rep, err
		}
		wls[i].AttachTileCache(shared)
	}
	col := online.NewCollector(len(pairs), 1)
	ver := online.NewVerifier(col, runtime.GOMAXPROCS(0), len(pairs))
	t0 := time.Now()
	for i := range wls {
		wl := wls[i]
		ver.Offer(online.VerifyJob{Simulate: func(ctx context.Context) ([sim.NumDesigns]sim.Result, error) {
			return wl.SimulateAllPrunedCtx(ctx)
		}})
	}
	dctx, cancel := context.WithTimeout(ctx, 10*time.Minute)
	drainErr := ver.Drain(dctx)
	cancel()
	ver.Close()
	if drainErr != nil {
		return rep, fmt.Errorf("experiments: slowtier verifier drain: %w", drainErr)
	}
	rep.VerifierDrainRPS = float64(len(wls)) / time.Since(t0).Seconds()
	audit := shared.Stats()
	if dh, dm := audit.Hits-served.Hits, audit.Misses-served.Misses; dh+dm > 0 {
		rep.VerifierReuseRate = float64(dh) / float64(dh+dm)
	}
	rep.TileCacheHits = audit.Hits
	rep.TileCacheMisses = audit.Misses
	rep.TileCacheHitRate = audit.HitRate
	rep.BoundAborts = audit.BoundAborts
	rep.CoarseSkips = audit.CoarseSkips

	fmt.Fprintf(w, "%-8s %12s %12s %12s %10s\n", "tier", "p50 ns/op", "p90 ns/op", "p99 ns/op", "speedup")
	fmt.Fprintf(w, "%-8s %12d %12d %12d %10s\n", "exact", rep.ExactP50NsOp, rep.ExactP90NsOp, rep.ExactP99NsOp, "1.00x")
	fmt.Fprintf(w, "%-8s %12d %12d %12d %9.2fx\n", "pruned", rep.PrunedP50NsOp, rep.PrunedP90NsOp, rep.PrunedP99NsOp, rep.SpeedupP50)
	fmt.Fprintf(w, "argmin agreement %.3f, winner bit-identical %v, %.0f%% of design evals pruned\n",
		rep.ArgminAgreement, rep.WinnerBitIdentical, 100*rep.PrunedShare)
	if rep.PR5BaselineP50NsOp > 0 {
		fmt.Fprintf(w, "vs BENCH_PR5 slow-tier baseline %d ns: %.2fx\n", rep.PR5BaselineP50NsOp, rep.SpeedupVsPR5P50)
	}
	fmt.Fprintf(w, "labelling: exact %.1f pairs/s, pruned %.1f pairs/s (%.2fx); pruned audit drain %.1f jobs/s\n",
		rep.LabelExactRPS, rep.LabelPrunedRPS, rep.LabelSpeedup, rep.VerifierDrainRPS)
	fmt.Fprintf(w, "tile cache: %d hits / %d misses (%.0f%% hit rate), verifier reuse %.0f%%, %d bound aborts, %d coarse skips\n",
		rep.TileCacheHits, rep.TileCacheMisses, 100*rep.TileCacheHitRate,
		100*rep.VerifierReuseRate, rep.BoundAborts, rep.CoarseSkips)

	if path != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return rep, err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return rep, fmt.Errorf("experiments: slowtier report: %w", err)
		}
		// Re-read and validate: the record is a CI artifact, so a half
		// written or schema-drifted file should fail the run that made it.
		back, err := os.ReadFile(path)
		if err != nil {
			return rep, err
		}
		var check SlowTierReportData
		if err := json.Unmarshal(back, &check); err != nil {
			return rep, fmt.Errorf("experiments: slowtier report unreadable: %w", err)
		}
		if check.Schema != "misam-slowtier/2" {
			return rep, fmt.Errorf("experiments: slowtier report schema %q", check.Schema)
		}
		if check.ArgminAgreement != 1 || !check.WinnerBitIdentical {
			return rep, fmt.Errorf("experiments: pruned tier broke exactness: agreement %.3f, bit-identical %v",
				check.ArgminAgreement, check.WinnerBitIdentical)
		}
		if check.PrunedP50NsOp <= 0 || check.ExactP50NsOp <= 0 {
			return rep, fmt.Errorf("experiments: slowtier report has empty percentiles")
		}
		if check.PR5BaselineP50NsOp > 0 && check.SpeedupVsPR5P50 < 8 {
			return rep, fmt.Errorf("experiments: pruned tier is %.2fx the PR5 slow-tier baseline, below the 8x floor",
				check.SpeedupVsPR5P50)
		}
		if check.VerifierReuseRate < 0.5 {
			return rep, fmt.Errorf("experiments: verifier tile reuse %.0f%% below the 50%% floor",
				100*check.VerifierReuseRate)
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	}
	return rep, nil
}
