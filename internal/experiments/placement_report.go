package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"misam"
	"misam/internal/features"
	"misam/internal/memo"
	"misam/internal/placement"
	"misam/internal/reconfig"
	"misam/internal/registry"
	"misam/internal/sim"
)

// PlacementReportData is the machine-readable placement record
// (BENCH_PR7.json): the FIFO checkout pool versus the bitstream-aware
// placement pool on the same skewed (power-law design mix) request
// stream at equal device count. Placement must cut the fleet's paid
// reconfigurations while leaving every analysis-derived report field
// bit-identical — it changes which device pays, never the result.
type PlacementReportData struct {
	Schema   string `json:"schema"`
	Devices  int    `json:"devices"`
	Requests int    `json:"requests"`
	// DistinctPairs is the candidate pool size behind the stream;
	// BitstreamGroups is how many distinct bitstreams the stream's
	// proposals span (>= 2 or the bench is vacuous).
	DistinctPairs   int `json:"distinct_pairs"`
	BitstreamGroups int `json:"bitstream_groups"`
	// DesignMix is the stream's proposal share per design — the skew the
	// placement layer exploits.
	DesignMix []float64 `json:"design_mix"`

	// FIFO*/Placed* are each pool's fleet-wide switch totals over the
	// identical stream.
	FIFOReconfigs         int64   `json:"fifo_reconfigs"`
	FIFOReconfigSeconds   float64 `json:"fifo_reconfig_seconds"`
	PlacedReconfigs       int64   `json:"placed_reconfigs"`
	PlacedReconfigSeconds float64 `json:"placed_reconfig_seconds"`
	// ReconfigsAvoidedVsFIFO is the headline: the fraction of FIFO's
	// switches placement did not pay. The acceptance bar is >= 0.5.
	ReconfigsAvoidedVsFIFO float64 `json:"reconfigs_avoided_vs_fifo"`

	// AffinityHits/Misses are the placement pool's checkout counters;
	// DeviceReconfigsAvoided sums the per-device avoided counters.
	AffinityHits           int64   `json:"affinity_hits"`
	AffinityMisses         int64   `json:"affinity_misses"`
	AffinityHitRate        float64 `json:"affinity_hit_rate"`
	DeviceReconfigsAvoided int64   `json:"device_reconfigs_avoided"`

	// Rebalancer activity during the placed run (ticked every 8 requests).
	RebalancerTicks int64 `json:"rebalancer_ticks"`
	RebalancerLoads int64 `json:"rebalancer_loads"`

	// ReportsBitIdentical must be true: per request, both pools produced
	// the same analysis — feature vector, all four design Results (so the
	// argmin and the winner's cycles match), baseline statistics — and
	// served from the same model version. Placement changes which device
	// pays, never the analysis result; fields that describe the paying
	// device (device name, reconfigure verdict, switch seconds) are
	// exactly the ones allowed to differ.
	ReportsBitIdentical bool `json:"reports_bit_identical"`
}

// The bench regime: CGRA-mode switching priced at the microsecond end of
// the §6.1 context-switch range, with a permissive hysteresis threshold,
// so the engine actually switches designs at this stream's
// microsecond-predicted workload scale. The paper's FullBitstream
// default (3–4 s) never switches for single-shot small workloads, which
// would leave both pools at zero reconfigurations and nothing to
// compare. Both pools price with the same published snapshot, so the
// regime cannot break the bit-identity contract.
const (
	placementBenchThreshold   = 8.0
	placementBenchCGRASeconds = 1e-6
)

// placementCand is one candidate request: a prebuilt workload plus the
// selector's proposal for it.
type placementCand struct {
	wl       *sim.Workload
	proposed sim.DesignID
}

// canonicalBitstream maps a design to the lowest design sharing its
// bitstream, so designs 2 and 3 (shared, §5.2) fall into one group.
func canonicalBitstream(id sim.DesignID) sim.DesignID {
	for _, o := range sim.AllDesigns {
		if sim.SharedBitstream(o, id) {
			return o
		}
	}
	return id
}

// placementCandidates builds the candidate pool across four matrix
// families and returns the candidates grouped by proposal bitstream.
func placementCandidates(cfg Config, snap *registry.Snapshot) (map[sim.DesignID][]placementCand, int, error) {
	dim := cfg.MaxDim
	if dim < 128 {
		dim = 128
	}
	groups := make(map[sim.DesignID][]placementCand)
	total := 0
	for i := 0; i < 24; i++ {
		s := int64(7000 + i*17)
		n := dim/2 + (i*97)%(dim/2)
		var a, b *misam.Matrix
		switch i % 4 {
		case 0:
			a = misam.RandUniform(s, n, n, 0.02)
			b = misam.RandDense(s+1, n, 64)
		case 1:
			a = misam.RandPowerLaw(s, n, n, n*8, 1.8)
			b = misam.RandUniform(s+1, n, 96, 0.05)
		case 2:
			a = misam.RandBanded(s, n, n, 8, 0.8)
			b = misam.RandDense(s+1, n, 32)
		default:
			a = misam.RandUniform(s, n, n, 0.004)
			b = misam.RandUniform(s+1, n, n, 0.01)
		}
		wl, err := sim.NewWorkload(a, b)
		if err != nil {
			return nil, 0, fmt.Errorf("experiments: placement candidate %d: %w", i, err)
		}
		proposed := snap.Select(features.Extract(a, b))
		key := canonicalBitstream(proposed)
		groups[key] = append(groups[key], placementCand{wl: wl, proposed: proposed})
		total++
	}
	return groups, total, nil
}

// placementStream samples the skewed request stream: bitstream groups
// get power-law weights (8:4:2:1, most-populated group hottest), so the
// traffic concentrates on few bitstreams the way real serving mixes do.
func placementStream(groups map[sim.DesignID][]placementCand, rng *rand.Rand, n int) []placementCand {
	keys := make([]sim.DesignID, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	// Most-populated group first (ties on lower id) takes the heaviest
	// weight, so the hot bitstream has candidate variety behind it.
	sort.Slice(keys, func(i, j int) bool {
		if len(groups[keys[i]]) != len(groups[keys[j]]) {
			return len(groups[keys[i]]) > len(groups[keys[j]])
		}
		return keys[i] < keys[j]
	})
	weights := make([]float64, len(keys))
	w, sum := 8.0, 0.0
	for i := range keys {
		weights[i] = w
		sum += w
		w /= 2
	}
	stream := make([]placementCand, n)
	for i := range stream {
		r := rng.Float64() * sum
		k := keys[len(keys)-1]
		for j, key := range keys {
			if r < weights[j] {
				k = key
				break
			}
			r -= weights[j]
		}
		cands := groups[k]
		stream[i] = cands[rng.Intn(len(cands))]
	}
	return stream
}

// fleetReconfigs sums a fleet's paid switches and switch seconds.
func fleetReconfigs(fl *misam.Fleet) (int64, float64, int64) {
	var n, avoided int64
	var sec float64
	for _, d := range fl.Devices() {
		st := d.Stats()
		n += st.Reconfigs
		sec += st.ReconfigSeconds
		avoided += st.ReconfigsAvoided
	}
	return n, sec, avoided
}

// requestRecord is one served request's pool-comparable outcome: the
// device-independent analysis (features, all four Results, baselines)
// and the model version that served it. The served target and switch
// charge are deliberately absent — hysteresis makes them depend on the
// device's loaded bitstream, which is exactly what placement changes.
type requestRecord struct {
	analysis memo.Analysis
	version  uint64
}

// PlacementReport replays one skewed request stream through a FIFO
// checkout pool and a placement pool at equal device count, checks that
// every analysis-derived report field is bit-identical between the two,
// and writes (then re-reads and validates) the BENCH_PR7 record. The
// placed run also ticks the portfolio rebalancer every 8 requests, fed
// by the framework's live demand EWMA.
func PlacementReport(ctxE *Context, path string, w io.Writer) (PlacementReportData, error) {
	header(w, "Placement report: FIFO checkout pool vs bitstream-aware placement")
	const (
		devices  = 4
		requests = 96
	)
	rep := PlacementReportData{
		Schema:   "misam-placement/1",
		Devices:  devices,
		Requests: requests,
	}
	fw, err := ctxE.Framework()
	if err != nil {
		return rep, err
	}
	// Cache + trace capture: repeats of a distinct pair hit the analysis
	// cache, and every served proposal feeds the demand EWMA the
	// rebalancer reads.
	fw.WithCache(64 << 20)
	fw.WithTraceCapture(4096, 1)

	// Publish the bench regime: same classifier and predictor, CGRA-mode
	// switching at a permissive threshold (see placementBenchThreshold).
	cur := fw.Registry().Current()
	times := cur.Engine().Times.WithMode(reconfig.CGRA)
	times.CGRASeconds = placementBenchCGRASeconds
	cgra := reconfig.NewEngine(cur.Engine().Predictor, times, placementBenchThreshold)
	snap, err := registry.NewSnapshot(cur.Classifier(), cgra, registry.Info{
		Source: registry.SourceTrain,
		Note:   "CGRA pricing for the placement benchmark",
	})
	if err != nil {
		return rep, fmt.Errorf("experiments: placement snapshot: %w", err)
	}
	fw.Registry().Publish(snap)

	groups, distinct, err := placementCandidates(ctxE.Cfg, fw.Registry().Current())
	if err != nil {
		return rep, err
	}
	rep.DistinctPairs = distinct
	rep.BitstreamGroups = len(groups)
	if len(groups) < 2 {
		return rep, fmt.Errorf("experiments: placement stream proposals span %d bitstream group(s); need >= 2", len(groups))
	}
	stream := placementStream(groups, ctxE.RNG(7), requests)
	var mixCount [sim.NumDesigns]int
	for _, c := range stream {
		mixCount[c.proposed]++
	}
	rep.DesignMix = make([]float64, sim.NumDesigns)
	for i, n := range mixCount {
		rep.DesignMix[i] = float64(n) / float64(requests)
	}

	ctx := context.Background()
	// Both fleets start from the identical preloaded portfolio — one
	// design per device round-robin — so Reconfigs counts in-stream
	// switches, not the mandatory first programming of an empty fabric.
	preload := func(fl *misam.Fleet) {
		for j, d := range fl.Devices() {
			d.ForceLoad(sim.AllDesigns[j%len(sim.AllDesigns)])
		}
	}
	run := func(fl *misam.Fleet, placed bool, rb *placement.Rebalancer) ([]requestRecord, error) {
		recs := make([]requestRecord, len(stream))
		for i, c := range stream {
			var r misam.Report
			var err error
			if placed {
				dev, aerr := fw.AcquirePlaced(ctx, fl, c.wl, misam.PlacementConfig{})
				if aerr != nil {
					return nil, aerr
				}
				r, err = fw.AnalyzeOn(ctx, dev, c.wl)
				fl.Release(dev)
			} else {
				err = fl.Do(ctx, func(dev *misam.Accelerator) error {
					var e error
					r, e = fw.AnalyzeOn(ctx, dev, c.wl)
					return e
				})
			}
			if err != nil {
				return nil, fmt.Errorf("experiments: placement request %d: %w", i, err)
			}
			an, _, err := fw.AnalysisFor(ctx, c.wl)
			if err != nil {
				return nil, fmt.Errorf("experiments: placement analysis %d: %w", i, err)
			}
			recs[i] = requestRecord{analysis: *an, version: r.ModelVersion}
			if rb != nil && (i+1)%8 == 0 {
				rb.Tick()
			}
		}
		return recs, nil
	}

	// FIFO first: it fills the analysis cache and warms the demand EWMA
	// the placed run's rebalancer reads.
	fifoFleet := fw.NewFleet(devices)
	preload(fifoFleet)
	fifoRecs, err := run(fifoFleet, false, nil)
	if err != nil {
		return rep, err
	}
	rep.FIFOReconfigs, rep.FIFOReconfigSeconds, _ = fleetReconfigs(fifoFleet)

	placedFleet := fw.NewFleet(devices)
	preload(placedFleet)
	rb := placement.NewRebalancer(placedFleet, fw.Traces(), placement.RebalancerConfig{
		MinObservations: 16,
		UniformSlack:    0.05,
	})
	placedRecs, err := run(placedFleet, true, rb)
	if err != nil {
		return rep, err
	}
	rep.PlacedReconfigs, rep.PlacedReconfigSeconds, rep.DeviceReconfigsAvoided = fleetReconfigs(placedFleet)
	fst := placedFleet.Stats()
	rep.AffinityHits, rep.AffinityMisses = fst.AffinityHits, fst.AffinityMisses
	if fst.AffinityHits+fst.AffinityMisses > 0 {
		rep.AffinityHitRate = float64(fst.AffinityHits) / float64(fst.AffinityHits+fst.AffinityMisses)
	}
	rst := rb.Stats()
	rep.RebalancerTicks, rep.RebalancerLoads = rst.Ticks, rst.Loads

	if rep.FIFOReconfigs > 0 {
		rep.ReconfigsAvoidedVsFIFO = float64(rep.FIFOReconfigs-rep.PlacedReconfigs) / float64(rep.FIFOReconfigs)
	}
	rep.ReportsBitIdentical = true
	for i := range fifoRecs {
		if fifoRecs[i] != placedRecs[i] {
			rep.ReportsBitIdentical = false
			break
		}
	}

	fmt.Fprintf(w, "%-10s %10s %14s %13s %13s\n", "pool", "reconfigs", "reconfig sec", "affinity hit", "avoided")
	fmt.Fprintf(w, "%-10s %10d %14.6f %13s %13s\n", "fifo", rep.FIFOReconfigs, rep.FIFOReconfigSeconds, "-", "-")
	fmt.Fprintf(w, "%-10s %10d %14.6f %12.0f%% %12.0f%%\n", "placement",
		rep.PlacedReconfigs, rep.PlacedReconfigSeconds, 100*rep.AffinityHitRate, 100*rep.ReconfigsAvoidedVsFIFO)
	fmt.Fprintf(w, "stream: %d requests over %d pairs in %d bitstream groups, mix %v\n",
		rep.Requests, rep.DistinctPairs, rep.BitstreamGroups, rep.DesignMix)
	fmt.Fprintf(w, "rebalancer: %d ticks, %d preloads; reports bit-identical %v\n",
		rep.RebalancerTicks, rep.RebalancerLoads, rep.ReportsBitIdentical)

	if path != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return rep, err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return rep, fmt.Errorf("experiments: placement report: %w", err)
		}
		// Re-read and validate: the record is a CI artifact, so a half
		// written or contract-breaking file must fail the run that made it.
		back, err := os.ReadFile(path)
		if err != nil {
			return rep, err
		}
		var check PlacementReportData
		if err := json.Unmarshal(back, &check); err != nil {
			return rep, fmt.Errorf("experiments: placement report unreadable: %w", err)
		}
		if check.Schema != "misam-placement/1" {
			return rep, fmt.Errorf("experiments: placement report schema %q", check.Schema)
		}
		if !check.ReportsBitIdentical {
			return rep, fmt.Errorf("experiments: placement changed analysis results — reports are not bit-identical")
		}
		if check.FIFOReconfigs <= 0 {
			return rep, fmt.Errorf("experiments: FIFO pool paid no reconfigurations; the bench regime is vacuous")
		}
		if check.ReconfigsAvoidedVsFIFO < 0.5 {
			return rep, fmt.Errorf("experiments: placement avoided only %.0f%% of FIFO's reconfigurations (need >= 50%%)",
				100*check.ReconfigsAvoidedVsFIFO)
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	}
	return rep, nil
}
