package experiments

// The PR9 cluster trajectory record: a two-node loopback cluster with
// fingerprint-sharded routing versus a single node on the same request
// stream. The record pins the subsystem's three acceptance properties —
// bit-identical answers regardless of deployment shape, a cluster-wide
// warm cache whose hit latency stays within 2x of the single-node warm
// hit, and graceful degradation (zero failed requests) when a peer dies
// mid-stream.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"misam"
	"misam/internal/cluster"
	"misam/internal/reconfig"
	"misam/internal/registry"
	"misam/internal/server"
)

// ClusterReportData is the machine-readable cluster record
// (BENCH_PR9.json).
type ClusterReportData struct {
	Schema     string `json:"schema"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`

	// Stream shape: DistinctPairs operand pairs, each sent Rounds times
	// to the cluster (alternating entry member) and to the single node.
	Nodes           int `json:"nodes"`
	DistinctPairs   int `json:"distinct_pairs"`
	Rounds          int `json:"rounds"`
	ClusterRequests int `json:"cluster_requests"`

	// Equivalent pins bit-identical deterministic response fields between
	// the cluster and the single node on every request of the stream.
	Equivalent bool `json:"equivalent"`

	// Cluster-wide cache behaviour: each distinct pair must be built on
	// exactly one member (Misses == DistinctPairs) with every repetition a
	// hit, no matter which member the client hit (Forwards > 0).
	ClusterMisses int64 `json:"cluster_misses"`
	ClusterHits   int64 `json:"cluster_hits"`
	Forwards      int64 `json:"forwards"`

	// Warm-hit latency, measured over the same repeated requests through
	// both deployments. The cluster pays an extra proxy hop whenever the
	// entry member is not the owner; the gate is p50 within 2x.
	SingleWarmP50NsOp  int64   `json:"single_warm_p50_ns_op"`
	SingleWarmP99NsOp  int64   `json:"single_warm_p99_ns_op"`
	ClusterWarmP50NsOp int64   `json:"cluster_warm_p50_ns_op"`
	ClusterWarmP99NsOp int64   `json:"cluster_warm_p99_ns_op"`
	WarmRatioP50       float64 `json:"warm_ratio_p50"`
	// The PR8 record's single-node binary warm hit, when present — the
	// prior-trajectory yardstick the 2x gate was stated against.
	PR8WarmHitP50 int64 `json:"pr8_warm_hit_p50_ns_op,omitempty"`

	// Peer-kill phase: the owner of the probe pair is killed and the full
	// pair set replayed through the survivor. Every request must answer
	// 200 (Failed == 0), with at least one recorded local fallback.
	PeerKillRequests  int   `json:"peer_kill_requests"`
	PeerKillFailed    int   `json:"peer_kill_failed"`
	PeerKillFallbacks int64 `json:"peer_kill_fallbacks"`
}

// clusterEquivalenceFields are the deterministic analyze-response fields
// compared between deployments. Device identity, node identity,
// wall-clock timings and reconfiguration verdicts (which depend on which
// physical device served) are excluded by design.
var clusterEquivalenceFields = []string{
	"design", "model_version", "predicted_ms", "simulated_ms",
	"pe_utilization", "energy_mj", "cpu_ms", "gpu_ms", "trapezoid_ms",
	"path", "confidence",
}

// clusterCloneFW builds an independent framework (own registry, own
// cache) carrying the shared models, via a Save/Load round-trip, and
// publishes the CGRA pricing regime so the design verdict is a pure
// function of the operands and models — the same recipe as the
// placement benchmark.
func clusterCloneFW(fw *misam.Framework) (*misam.Framework, error) {
	var buf bytes.Buffer
	if err := fw.Save(&buf); err != nil {
		return nil, err
	}
	cp, err := misam.Load(&buf)
	if err != nil {
		return nil, err
	}
	cur := cp.Registry().Current()
	times := cur.Engine().Times.WithMode(reconfig.CGRA)
	times.CGRASeconds = placementBenchCGRASeconds
	cgra := reconfig.NewEngine(cur.Engine().Predictor, times, placementBenchThreshold)
	snap, err := registry.NewSnapshot(cur.Classifier(), cgra, registry.Info{
		Source: registry.SourceTrain,
		Note:   "CGRA pricing for the cluster benchmark",
	})
	if err != nil {
		return nil, err
	}
	cp.Registry().Publish(snap)
	return cp, nil
}

// benchNode is one loopback cluster member of the benchmark.
type benchNode struct {
	url string
	srv *server.Server
	hs  *http.Server
}

func (n *benchNode) close() {
	_ = n.hs.Close()
	n.srv.Close()
}

// startBenchCluster brings up one loopback member per framework, each
// peering with all the others. The sync interval is deliberately long:
// a replication apply would rebuild the receiver's engine under the
// default pricing and break the CGRA equivalence regime mid-run.
func startBenchCluster(fws []*misam.Framework) ([]*benchNode, error) {
	listeners := make([]net.Listener, len(fws))
	urls := make([]string, len(fws))
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	nodes := make([]*benchNode, len(fws))
	for i, fw := range fws {
		peers := make([]string, 0, len(fws)-1)
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		srv, err := server.NewClustered(fw, server.Config{
			CacheBytes: 64 << 20,
			Cluster: cluster.Config{
				Self:           urls[i],
				Peers:          peers,
				SyncInterval:   time.Hour,
				ForwardRetries: 1,
				ForwardTimeout: 10 * time.Second,
			},
		})
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func(i int) { _ = hs.Serve(listeners[i]) }(i)
		nodes[i] = &benchNode{url: urls[i], srv: srv, hs: hs}
	}
	return nodes, nil
}

// clusterCounters reads one member's cache and forwarding counters over
// the public API — the same view an operator gets.
func clusterCounters(client *http.Client, url string) (hits, misses, forwards, fallbacks int64, err error) {
	resp, err := client.Get(url + "/v1/stats")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	var stats struct {
		Cache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	resp, err = client.Get(url + "/v1/cluster")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	var cl struct {
		Stats struct {
			Members []struct {
				Forwards  int64 `json:"forwards"`
				Fallbacks int64 `json:"fallbacks"`
			} `json:"members"`
		} `json:"stats"`
	}
	err = json.NewDecoder(resp.Body).Decode(&cl)
	resp.Body.Close()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	for _, m := range cl.Stats.Members {
		forwards += m.Forwards
		fallbacks += m.Fallbacks
	}
	return stats.Cache.Hits, stats.Cache.Misses, forwards, fallbacks, nil
}

// ClusterReport replays one repeated-operand request stream through a
// two-node loopback cluster and a single node built from the same
// models, gates equivalence, warm-hit latency and peer-kill survival,
// and rewrites the BENCH_PR9.json trajectory record.
func ClusterReport(ctxE *Context, path string, w io.Writer) (ClusterReportData, error) {
	header(w, "Cluster report: fingerprint-sharded 2-node cluster vs single node")
	const (
		nNodes = 2
		nPairs = 8
		rounds = 4
	)
	rep := ClusterReportData{
		Schema:        "misam-cluster/1",
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Nodes:         nNodes,
		DistinctPairs: nPairs,
		Rounds:        rounds,
	}
	base, err := ctxE.Framework()
	if err != nil {
		return rep, fmt.Errorf("experiments: cluster framework: %w", err)
	}

	// Three independent frameworks carrying identical models: one per
	// cluster member, one for the single-node baseline.
	fws := make([]*misam.Framework, nNodes)
	for i := range fws {
		if fws[i], err = clusterCloneFW(base); err != nil {
			return rep, fmt.Errorf("experiments: cluster clone: %w", err)
		}
	}
	singleFW, err := clusterCloneFW(base)
	if err != nil {
		return rep, fmt.Errorf("experiments: cluster clone: %w", err)
	}
	single, err := server.NewClustered(singleFW, server.Config{CacheBytes: 64 << 20})
	if err != nil {
		return rep, err
	}
	defer single.Close()
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rep, err
	}
	singleHS := &http.Server{Handler: single.Handler()}
	go func() { _ = singleHS.Serve(sl) }()
	defer singleHS.Close()
	singleURL := "http://" + sl.Addr().String()

	nodes, err := startBenchCluster(fws)
	if err != nil {
		return rep, fmt.Errorf("experiments: cluster boot: %w", err)
	}
	for _, n := range nodes {
		defer n.close()
	}

	bodies := make([][]byte, nPairs)
	for i := range bodies {
		bodies[i], err = json.Marshal(map[string]any{
			"a_spec": "uniform:160:128:0.05",
			"b_spec": "uniform:128:96:0.08",
			"seed":   9000 + i*17,
		})
		if err != nil {
			return rep, err
		}
	}

	// --- Equivalence + warm-hit phase: every pair, Rounds times, through
	// both deployments; the cluster entry member alternates per request so
	// routing — not client affinity — is what keeps the cache warm. Round
	// 0 is the cold build; later rounds are the timed warm hits.
	client := &http.Client{}
	rep.Equivalent = true
	servedBy := make([]string, nPairs)
	var singleWarm, clusterWarm []int64
	for round := 0; round < rounds; round++ {
		for i, body := range bodies {
			nsS, want, err := postTimed(client, singleURL+"/v1/analyze", "application/json", body)
			if err != nil {
				return rep, fmt.Errorf("experiments: single node pair %d: %w", i, err)
			}
			entry := nodes[(round*nPairs+i)%nNodes]
			nsC, got, err := postTimed(client, entry.url+"/v1/analyze", "application/json", body)
			if err != nil {
				return rep, fmt.Errorf("experiments: cluster pair %d via %s: %w", i, entry.url, err)
			}
			rep.ClusterRequests++
			servedBy[i], _ = got["node"].(string)
			for _, f := range clusterEquivalenceFields {
				if fmt.Sprintf("%v", got[f]) != fmt.Sprintf("%v", want[f]) {
					rep.Equivalent = false
					fmt.Fprintf(w, "DIVERGED pair %d round %d field %q: cluster %v, single %v\n",
						i, round, f, got[f], want[f])
				}
			}
			if round > 0 {
				singleWarm = append(singleWarm, nsS)
				clusterWarm = append(clusterWarm, nsC)
			}
		}
	}
	rep.SingleWarmP50NsOp = pctNs(singleWarm, 0.50)
	rep.SingleWarmP99NsOp = pctNs(singleWarm, 0.99)
	rep.ClusterWarmP50NsOp = pctNs(clusterWarm, 0.50)
	rep.ClusterWarmP99NsOp = pctNs(clusterWarm, 0.99)
	if rep.SingleWarmP50NsOp > 0 {
		rep.WarmRatioP50 = float64(rep.ClusterWarmP50NsOp) / float64(rep.SingleWarmP50NsOp)
	}

	for _, n := range nodes {
		hits, misses, forwards, _, err := clusterCounters(client, n.url)
		if err != nil {
			return rep, fmt.Errorf("experiments: cluster counters: %w", err)
		}
		rep.ClusterHits += hits
		rep.ClusterMisses += misses
		rep.Forwards += forwards
	}

	// --- Peer-kill phase: kill the member that owns the first pair and
	// replay the whole pair set through the survivor. Requests owned by
	// the dead member must fall back to local serving, never to a client
	// error.
	var victim, survivor *benchNode
	for _, n := range nodes {
		if n.url == servedBy[0] {
			victim = n
		} else {
			survivor = n
		}
	}
	if victim == nil || survivor == nil {
		return rep, fmt.Errorf("experiments: cluster could not split owner/survivor (owner %q)", servedBy[0])
	}
	victim.close()
	for i, body := range bodies {
		rep.PeerKillRequests++
		resp, err := client.Post(survivor.url+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			rep.PeerKillFailed++
			fmt.Fprintf(w, "peer-kill pair %d: transport error %v\n", i, err)
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			rep.PeerKillFailed++
			fmt.Fprintf(w, "peer-kill pair %d: status %d\n", i, resp.StatusCode)
		}
	}
	if _, _, _, fallbacks, err := clusterCounters(client, survivor.url); err == nil {
		rep.PeerKillFallbacks = fallbacks
	}

	fmt.Fprintf(w, "stream: %d pairs x %d rounds through %d-node cluster and single node; equivalent %v\n",
		rep.DistinctPairs, rep.Rounds, rep.Nodes, rep.Equivalent)
	fmt.Fprintf(w, "cluster-wide cache: %d misses (want %d), %d hits, %d forwards\n",
		rep.ClusterMisses, rep.DistinctPairs, rep.ClusterHits, rep.Forwards)
	fmt.Fprintf(w, "warm hit p50: single %d ns, cluster %d ns (%.2fx); p99 %d vs %d ns\n",
		rep.SingleWarmP50NsOp, rep.ClusterWarmP50NsOp, rep.WarmRatioP50,
		rep.SingleWarmP99NsOp, rep.ClusterWarmP99NsOp)
	fmt.Fprintf(w, "peer kill: %d requests, %d failed, %d local fallbacks\n",
		rep.PeerKillRequests, rep.PeerKillFailed, rep.PeerKillFallbacks)

	// The PR8 record's single-node binary warm hit, for trajectory
	// context only (it measures the binary path; this report's own
	// single-node JSON warm hit is the like-for-like gate).
	if data, err := os.ReadFile("BENCH_PR8.json"); err == nil {
		var pr8 struct {
			WarmHitP50NsOp int64 `json:"warm_hit_p50_ns_op"`
		}
		if json.Unmarshal(data, &pr8) == nil && pr8.WarmHitP50NsOp > 0 {
			rep.PR8WarmHitP50 = pr8.WarmHitP50NsOp
			fmt.Fprintf(w, "BENCH_PR8 single-node binary warm hit: %d ns\n", pr8.WarmHitP50NsOp)
		}
	}

	if path != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return rep, err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return rep, fmt.Errorf("experiments: cluster report: %w", err)
		}
		// Re-read and gate: the record is a CI artifact carrying the PR's
		// acceptance criteria — a run that misses them fails loudly.
		back, err := os.ReadFile(path)
		if err != nil {
			return rep, err
		}
		var check ClusterReportData
		if err := json.Unmarshal(back, &check); err != nil {
			return rep, fmt.Errorf("experiments: cluster report unreadable: %w", err)
		}
		if check.Schema != "misam-cluster/1" {
			return rep, fmt.Errorf("experiments: cluster report schema %q", check.Schema)
		}
		if !check.Equivalent {
			return rep, fmt.Errorf("experiments: cluster and single node diverged on the same stream")
		}
		if check.ClusterMisses != int64(check.DistinctPairs) {
			return rep, fmt.Errorf("experiments: cluster built %d pairs, want exactly %d (one owner per pair)",
				check.ClusterMisses, check.DistinctPairs)
		}
		if check.Forwards == 0 {
			return rep, fmt.Errorf("experiments: no request was forwarded — routing never exercised")
		}
		if check.WarmRatioP50 > 2 {
			return rep, fmt.Errorf("experiments: cluster warm hit p50 %d ns is %.2fx the single-node %d ns, want <= 2x",
				check.ClusterWarmP50NsOp, check.WarmRatioP50, check.SingleWarmP50NsOp)
		}
		if check.PeerKillFailed != 0 {
			return rep, fmt.Errorf("experiments: %d of %d requests failed after the peer kill, want 0",
				check.PeerKillFailed, check.PeerKillRequests)
		}
		if check.PeerKillFallbacks == 0 {
			return rep, fmt.Errorf("experiments: peer kill recorded no local fallbacks — the dead owner was never routed to")
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	}
	return rep, nil
}
