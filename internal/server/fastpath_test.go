package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"misam"
)

// TestFastPathStatsOnEndpoint: the fastpath section appears on /v1/stats
// and the analyze response reports its serving tier.
func TestFastPathStatsOnEndpoint(t *testing.T) {
	fw, err := misam.Train(misam.TrainOptions{CorpusSize: 80, MaxDim: 384, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(fw, Config{FastPath: true, Confidence: 0.5, CacheBytes: 8 << 20})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, body := postAnalyze(t, srv, map[string]any{"a_spec": "uniform:200:200:0.05", "b_spec": "dense:64", "seed": 7})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d: %v", resp.StatusCode, body)
	}
	path, _ := body["path"].(string)
	if path != "fast" && path != "full" {
		t.Fatalf("analyze response path = %q, want fast or full", path)
	}

	st, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var stats struct {
		FastPath *misam.FastPathStats `json:"fastpath"`
	}
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.FastPath == nil {
		t.Fatal("/v1/stats has no fastpath section")
	}
	if !stats.FastPath.Enabled || stats.FastPath.Served != 1 {
		t.Fatalf("fastpath stats = %+v, want enabled with 1 served", stats.FastPath)
	}
}

// TestFastPathHammerUnderPromotion is the PR's -race gate: flood the
// server with fast-path traffic while the background verifier drains and
// model promotions swap the serving snapshot mid-flight. Zero failed
// requests, and the counter accounting must hold: served = fast + slow,
// verified + dropped + errors ≤ offered ≤ fast.
func TestFastPathHammerUnderPromotion(t *testing.T) {
	fw, err := misam.Train(misam.TrainOptions{CorpusSize: 80, MaxDim: 384, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(fw, Config{
		Devices:      4,
		CacheBytes:   16 << 20,
		Online:       true,
		FastPath:     true,
		Confidence:   0.5,
		VerifySample: 2,
	})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const workers = 8
	const perWorker = 24
	var failed atomic.Int64
	var done sync.WaitGroup
	stop := make(chan struct{})

	// Promotion churn: keep publishing fresh snapshots (and rolling one
	// back) while requests are in flight, so fast-path requests race
	// against Current() swaps.
	done.Add(1)
	go func() {
		defer done.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sabotageModel(t, fw)
			if i%3 == 2 {
				// Occasionally walk back, exercising the rollback path too.
				_, _ = fw.Registry().Rollback()
			}
		}
	}()

	client := srv.Client()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// A small pool of distinct operand pairs: repeats hit the
				// cache, the rest exercise the build path.
				seed := int64((w*perWorker + i) % 6)
				body, _ := json.Marshal(map[string]any{
					"a_spec": "uniform:180:180:0.05",
					"b_spec": "dense:48",
					"seed":   10 + seed,
				})
				resp, err := client.Post(srv.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
				if err != nil {
					failed.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	done.Wait()

	if n := failed.Load(); n != 0 {
		t.Fatalf("%d of %d requests failed under promotion churn", n, workers*perWorker)
	}
	st, ok := fw.FastPathStats()
	if !ok {
		t.Fatal("fast path not enabled")
	}
	if st.Served != int64(workers*perWorker) {
		t.Fatalf("served %d, want %d", st.Served, workers*perWorker)
	}
	if st.Fast+st.Slow != st.Served {
		t.Fatalf("served %d != fast %d + slow %d", st.Served, st.Fast, st.Slow)
	}
	vs := st.Verifier
	if vs.Offered > st.Fast {
		t.Fatalf("verifier offered %d > %d fast hits", vs.Offered, st.Fast)
	}
	if vs.Verified+vs.Dropped+vs.Errors > vs.Offered {
		t.Fatalf("verifier accounting broken: %+v", vs)
	}
	if vs.Agreed > vs.Verified {
		t.Fatalf("agreed %d > verified %d", vs.Agreed, vs.Verified)
	}
	t.Logf("hammer: %d served (%d fast / %d slow), verifier %+v", st.Served, st.Fast, st.Slow, vs)
	if st.Fast == 0 {
		t.Fatal("hammer never took the fast path")
	}
}
