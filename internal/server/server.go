// Package server exposes a trained Misam framework over HTTP — the
// deployment shape a host-side selection service takes: clients POST a
// workload (MatrixMarket payloads or generator specs) and receive the
// selected design, the reconfiguration verdict and the predicted and
// simulated latencies as JSON.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"misam"
	"misam/internal/sim"
)

// Server wraps a framework behind an http.Handler. The framework's
// engine state (loaded bitstream) is shared across requests, mirroring a
// host daemon fronting one FPGA; the engine itself is concurrency-safe
// and the analyze path is additionally serialized so reports stay
// consistent with the bitstream state they describe.
type Server struct {
	fw *misam.Framework
	mu sync.Mutex
}

// New returns a Server for the framework.
func New(fw *misam.Framework) *Server { return &Server{fw: fw} }

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/designs", s.handleDesigns)
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// designInfo is one design's static description.
type designInfo struct {
	Name      string  `json:"name"`
	Scheduler string  `json:"scheduler"`
	ChannelsA int     `json:"channels_a"`
	ChannelsB int     `json:"channels_b"`
	ChannelsC int     `json:"channels_c"`
	PEGs      int     `json:"pegs"`
	Freq      float64 `json:"freq_mhz"`
	Compress  bool    `json:"compressed_b"`
	LUT       float64 `json:"lut_percent"`
	BRAM      float64 `json:"bram_percent"`
}

func (s *Server) handleDesigns(w http.ResponseWriter, _ *http.Request) {
	var out []designInfo
	for _, id := range sim.AllDesigns {
		cfg := sim.GetConfig(id)
		res := sim.DesignResources(id)
		out = append(out, designInfo{
			Name:      id.String(),
			Scheduler: cfg.SchedulerA.String(),
			ChannelsA: cfg.ChA, ChannelsB: cfg.ChB, ChannelsC: cfg.ChC,
			PEGs: cfg.PEG, Freq: cfg.FreqMHz, Compress: cfg.CompressedB,
			LUT: res.LUT, BRAM: res.BRAM,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// analyzeRequest carries the two operands, each as either a MatrixMarket
// document or a generator spec (uniform:<rows>:<cols>:<density>,
// dense:<cols>, powerlaw:<n>:<nnz>, banded:<n>:<halfbw>, or "self" for B).
type analyzeRequest struct {
	AMatrixMarket string `json:"a_mtx,omitempty"`
	BMatrixMarket string `json:"b_mtx,omitempty"`
	ASpec         string `json:"a_spec,omitempty"`
	BSpec         string `json:"b_spec,omitempty"`
	Seed          int64  `json:"seed,omitempty"`
}

// analyzeResponse is the framework report plus baseline estimates.
type analyzeResponse struct {
	Design           string  `json:"design"`
	Reconfigured     bool    `json:"reconfigured"`
	ReconfigSeconds  float64 `json:"reconfig_seconds"`
	PreprocessMs     float64 `json:"preprocess_ms"`
	InferenceMs      float64 `json:"inference_ms"`
	PredictedMs      float64 `json:"predicted_ms"`
	SimulatedMs      float64 `json:"simulated_ms"`
	PEUtilization    float64 `json:"pe_utilization"`
	EnergyMillijoule float64 `json:"energy_mj"`
	CPUMs            float64 `json:"cpu_ms"`
	GPUMs            float64 `json:"gpu_ms"`
	TrapezoidMs      float64 `json:"trapezoid_ms"`
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req analyzeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
		return
	}
	a, err := loadOperand(req.AMatrixMarket, req.ASpec, req.Seed, nil)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("matrix A: %w", err))
		return
	}
	b, err := loadOperand(req.BMatrixMarket, req.BSpec, req.Seed+1, a)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("matrix B: %w", err))
		return
	}
	if a.Cols != b.Rows {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("dimension mismatch: A is %dx%d, B is %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
		return
	}
	s.mu.Lock()
	rep, err := s.fw.Analyze(a, b)
	s.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	cmp := misam.CompareBaselines(a, b)
	writeJSON(w, http.StatusOK, analyzeResponse{
		Design:           rep.Design.String(),
		Reconfigured:     rep.Reconfigured,
		ReconfigSeconds:  rep.ReconfigSec,
		PreprocessMs:     rep.PreprocessSeconds * 1e3,
		InferenceMs:      rep.InferenceSeconds * 1e3,
		PredictedMs:      rep.PredictedSeconds * 1e3,
		SimulatedMs:      rep.SimulatedSeconds * 1e3,
		PEUtilization:    rep.PEUtilization,
		EnergyMillijoule: rep.EnergyJoules * 1e3,
		CPUMs:            cmp.CPUSeconds * 1e3,
		GPUMs:            cmp.GPUSeconds * 1e3,
		TrapezoidMs:      cmp.TrapezoidSeconds * 1e3,
	})
}

// loadOperand resolves one matrix from its MatrixMarket document or
// generator spec.
func loadOperand(mtx, spec string, seed int64, prev *misam.Matrix) (*misam.Matrix, error) {
	switch {
	case mtx != "" && spec != "":
		return nil, fmt.Errorf("give either a MatrixMarket document or a spec, not both")
	case mtx != "":
		return misam.ReadMatrixMarket(strings.NewReader(mtx))
	case spec != "":
		return parseSpec(spec, seed, prev)
	default:
		return nil, fmt.Errorf("missing operand")
	}
}

// parseSpec mirrors the CLI generator grammar.
func parseSpec(spec string, seed int64, prev *misam.Matrix) (*misam.Matrix, error) {
	if spec == "self" {
		if prev == nil {
			return nil, fmt.Errorf("'self' is only valid for matrix B")
		}
		return prev, nil
	}
	parts := strings.Split(spec, ":")
	atoi := func(i int) (int, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("spec %q: missing field %d", spec, i)
		}
		v, err := strconv.Atoi(parts[i])
		if err != nil || v < 1 || v > 4<<20 {
			return 0, fmt.Errorf("spec %q: bad field %d", spec, i)
		}
		return v, nil
	}
	switch parts[0] {
	case "uniform":
		rows, err := atoi(1)
		if err != nil {
			return nil, err
		}
		cols, err := atoi(2)
		if err != nil {
			return nil, err
		}
		if len(parts) < 4 {
			return nil, fmt.Errorf("uniform needs a density")
		}
		dens, err := strconv.ParseFloat(parts[3], 64)
		if err != nil || dens < 0 || dens > 1 {
			return nil, fmt.Errorf("bad density %q", parts[3])
		}
		return misam.RandUniform(seed, rows, cols, dens), nil
	case "dense":
		cols, err := atoi(1)
		if err != nil {
			return nil, err
		}
		rows := cols
		if prev != nil {
			rows = prev.Cols
		}
		return misam.RandDense(seed, rows, cols), nil
	case "powerlaw":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		nnz, err := atoi(2)
		if err != nil {
			return nil, err
		}
		return misam.RandPowerLaw(seed, n, n, nnz, 1.9), nil
	case "banded":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		half, err := atoi(2)
		if err != nil {
			return nil, err
		}
		return misam.RandBanded(seed, n, n, half, 0.8), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", parts[0])
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
