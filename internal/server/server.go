// Package server exposes a trained Misam framework over HTTP — the
// deployment shape a host-side selection service takes: clients POST a
// workload (MatrixMarket payloads or generator specs) and receive the
// selected design, the reconfiguration verdict and the predicted and
// simulated latencies as JSON.
//
// The server fronts a Fleet of N accelerators. Each request checks one
// device out for its duration — per-device serialization keeps every
// report consistent with the bitstream state it describes — while
// different devices serve different requests concurrently. Admission is
// context-aware: request deadlines and client disconnects cancel the
// simulation mid-tile-pool.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"misam"
	"misam/internal/cluster"
	"misam/internal/fleet"
	"misam/internal/online"
	"misam/internal/placement"
	"misam/internal/registry"
	"misam/internal/sim"
)

// Config tunes the serving layer. The zero value is a sensible
// single-device deployment.
type Config struct {
	// Devices is the fleet size (default 1).
	Devices int
	// RequestTimeout bounds each request's end-to-end time, including
	// waiting for a device. Zero means no server-imposed deadline.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxBatchItems caps the /v1/analyze/batch fan-out (default 16).
	MaxBatchItems int
	// CacheBytes, when positive, enables the framework's content-addressed
	// analysis cache with this byte budget (misam.Framework.WithCache).
	// Cache hits skip the fleet's simulation work entirely; misses hold
	// their device only for the pricing transaction, not the simulation.
	// Zero leaves caching to the caller's framework configuration.
	CacheBytes int64
	// TileCacheBytes, when positive, enables the framework's shared
	// tile-schedule cache with this byte budget
	// (misam.Framework.WithTileCache): every slow-tier simulation — cold
	// analyses, the pruned verifier's audits — memoizes per-tile
	// schedules in one pool, so a re-simulation of a just-served pair
	// reuses its schedules. Zero leaves each workload with its private
	// per-pair cache.
	TileCacheBytes int64
	// Online enables the continuous-learning subsystem: serve-time trace
	// capture, drift detection against the training snapshot, and
	// registry-backed retraining via POST /v1/models/retrain (and the
	// background loop when RetrainInterval is set).
	Online bool
	// TraceSample admits one in N served analyses into the trace buffer
	// (default 1 — record everything; raise under heavy traffic).
	TraceSample int
	// TraceCapacity bounds the trace buffer (default 4096). When the
	// buffer cycles faster than retraining consumes it, /v1/stats's
	// dropped counter grows.
	TraceCapacity int
	// RetrainInterval, when positive, runs the background adaptation
	// loop: every interval the drift detector is evaluated and a retrain
	// is attempted when it trips. Zero means on-demand retraining only.
	RetrainInterval time.Duration
	// OnlineConfig overrides the drift/retrain tuning (optional; the
	// zero value uses the online package defaults).
	OnlineConfig online.Config
	// FastPath enables the confidence-gated two-tier pipeline: requests
	// the selector is confident about are answered from the model's
	// latency regressors without simulation; the rest (and a background
	// audit sample) still run the full pipeline. See misam.WithFastPath.
	FastPath bool
	// Confidence is the fast-path gate threshold (default 0.9; >= 1
	// disables the fast tier while keeping its counters).
	Confidence float64
	// VerifySample offers one in N fast-path hits to the background
	// verifier for asynchronous re-simulation (default 8; negative
	// disables verification).
	VerifySample int
	// PrunedVerify routes background audits through the pruned slow tier
	// (coarse-then-exact + early-exit) instead of the exact four-design
	// pipeline — same argmin and exact winner, lower-bound losers marked
	// in the trace, roughly the BENCH_PR10 speedup per audit. Only
	// meaningful with FastPath.
	PrunedVerify bool
	// Placement enables bitstream-aware device selection: each request's
	// predicted winner is computed before acquisition and the placement
	// cost model picks the idle device on which serving it is cheapest —
	// typically one already holding the winning bitstream. Off, the
	// fleet hands out devices FIFO exactly as before. Placement never
	// changes analysis results, only which device pays the switch.
	Placement bool
	// QueueWeight tunes the placement cost model's queue-pressure term
	// (<= 0 uses the placement package default).
	QueueWeight float64
	// RebalanceInterval, when positive (and Placement is on), runs the
	// background portfolio rebalancer at this cadence: idle devices are
	// preloaded with the bitstreams the traffic mix demands, fed by the
	// trace collector's per-design EWMA. Trace capture is enabled
	// automatically when the rebalancer needs it.
	RebalanceInterval time.Duration
	// DisableBinary turns off the binary wire format on the analyze
	// endpoints: requests with Content-Type application/x-misam-csr are
	// rejected with 415 instead of decoded. The zero value accepts both
	// formats.
	DisableBinary bool
	// Cluster, when its Self field is set, joins this server to a
	// fingerprint-sharded cluster: analyze requests are routed to the
	// member owning their content key, and model promotions/rollbacks
	// replicate to peers. See internal/cluster and NewClustered.
	Cluster cluster.Config
}

const (
	defaultMaxBodyBytes  = 8 << 20
	defaultMaxBatchItems = 16
)

const (
	defaultTraceSample   = 1
	defaultTraceCapacity = 4096
)

func (c Config) withDefaults() Config {
	if c.Devices < 1 {
		c.Devices = 1
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = defaultMaxBodyBytes
	}
	if c.MaxBatchItems < 1 {
		c.MaxBatchItems = defaultMaxBatchItems
	}
	if c.TraceSample < 1 {
		c.TraceSample = defaultTraceSample
	}
	if c.TraceCapacity < 1 {
		c.TraceCapacity = defaultTraceCapacity
	}
	if c.FastPath {
		if c.Confidence <= 0 {
			c.Confidence = 0.9
		}
		if c.VerifySample == 0 {
			c.VerifySample = 8
		}
		if c.VerifySample < 0 {
			c.VerifySample = 0
		}
	}
	return c
}

// Server wraps an immutable framework and a device fleet behind an
// http.Handler. The framework (models, pricing engine) is shared
// read-only across all requests; per-accelerator bitstream state lives
// in the fleet's devices.
type Server struct {
	fw    *misam.Framework
	fleet *misam.Fleet
	cfg   Config
	// manager drives the online adaptation loop (nil when Config.Online
	// is false).
	manager *online.Manager
	// rebalancer keeps the fleet's bitstream portfolio tracking the
	// traffic mix (nil unless Placement and RebalanceInterval are set).
	rebalancer *placement.Rebalancer
	// cluster and replicator are the sharded-serving state (nil outside a
	// cluster); syncCancel stops the replication push loop.
	cluster    *cluster.Cluster
	replicator *cluster.Replicator
	syncCancel context.CancelFunc

	// onAcquire, when set, runs after a request checks its device out and
	// before analysis starts. Test hook for concurrency assertions.
	onAcquire func(*misam.Accelerator)
}

// New returns a single-device Server — the original one-FPGA daemon
// shape.
func New(fw *misam.Framework) *Server {
	return NewWithConfig(fw, Config{})
}

// NewWithConfig returns a Server over a fleet of cfg.Devices fresh
// accelerators. It panics on a malformed cluster configuration — use
// NewClustered to validate one gracefully.
func NewWithConfig(fw *misam.Framework, cfg Config) *Server {
	s, err := NewClustered(fw, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NewClustered is NewWithConfig with the cluster configuration's
// fail-fast validation surfaced: malformed member addresses come back
// as cluster.ErrBadPeer / ErrDuplicatePeer / ErrSelfPeer before any
// background work starts. Configurations without a cluster never fail.
func NewClustered(fw *misam.Framework, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.CacheBytes > 0 {
		fw.WithCache(cfg.CacheBytes)
	}
	if cfg.TileCacheBytes > 0 {
		fw.WithTileCache(cfg.TileCacheBytes)
	}
	s := &Server{fw: fw, fleet: fw.NewFleet(cfg.Devices), cfg: cfg}
	if cfg.Online {
		fw.WithTraceCapture(cfg.TraceCapacity, cfg.TraceSample)
		// The drift baseline comes from the in-memory training corpus
		// when there is one; a file-loaded model self-calibrates from the
		// first window of served traffic instead.
		baseline, _ := fw.OnlineBaseline()
		ocfg := cfg.OnlineConfig
		ocfg.Interval = cfg.RetrainInterval
		s.manager = online.NewManager(fw.Registry(), fw.Traces(), baseline, ocfg)
		s.manager.Start()
	}
	if cfg.FastPath {
		// After the online block: WithFastPath wires its verifier to the
		// trace collector, which must exist by now for audit traces to
		// reach drift detection.
		fw.WithFastPath(misam.FastPathConfig{
			Confidence:   cfg.Confidence,
			VerifySample: cfg.VerifySample,
			PrunedVerify: cfg.PrunedVerify,
		})
	}
	if cfg.Placement && cfg.RebalanceInterval > 0 {
		// The rebalancer reads the trace collector's demand EWMA; enable
		// capture if online mode did not already.
		if fw.Traces() == nil {
			fw.WithTraceCapture(cfg.TraceCapacity, cfg.TraceSample)
		}
		s.rebalancer = placement.NewRebalancer(s.fleet, fw.Traces(), placement.RebalancerConfig{
			Interval: cfg.RebalanceInterval,
		})
		s.rebalancer.Start()
	}
	if cfg.Cluster.Self != "" {
		if err := s.startCluster(); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// Fleet exposes the server's device pool (for stats and tests).
func (s *Server) Fleet() *misam.Fleet { return s.fleet }

// Manager exposes the online adaptation manager (nil when online mode is
// off).
func (s *Server) Manager() *online.Manager { return s.manager }

// Close stops the background adaptation loop, the portfolio rebalancer,
// the replication push loop and the fast-path verifier pool, if any.
// The HTTP handler itself is stateless and needs no teardown.
func (s *Server) Close() {
	if s.syncCancel != nil {
		s.syncCancel()
	}
	if s.rebalancer != nil {
		s.rebalancer.Close()
	}
	if s.manager != nil {
		s.manager.Close()
	}
	if s.cfg.FastPath {
		s.fw.Close()
	}
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/designs", s.handleDesigns)
	mux.HandleFunc("GET /v1/fleet", s.handleFleet)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	mux.HandleFunc("POST /v1/models/retrain", s.handleRetrain)
	mux.HandleFunc("POST /v1/models/rollback", s.handleRollback)
	mux.HandleFunc("POST /v1/models/sync", s.handleModelSync)
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/analyze/batch", s.handleAnalyzeBatch)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// designInfo is one design's static description.
type designInfo struct {
	Name      string  `json:"name"`
	Scheduler string  `json:"scheduler"`
	ChannelsA int     `json:"channels_a"`
	ChannelsB int     `json:"channels_b"`
	ChannelsC int     `json:"channels_c"`
	PEGs      int     `json:"pegs"`
	Freq      float64 `json:"freq_mhz"`
	Compress  bool    `json:"compressed_b"`
	LUT       float64 `json:"lut_percent"`
	BRAM      float64 `json:"bram_percent"`
}

func (s *Server) handleDesigns(w http.ResponseWriter, _ *http.Request) {
	var out []designInfo
	for _, id := range sim.AllDesigns {
		cfg := sim.GetConfig(id)
		res := sim.DesignResources(id)
		out = append(out, designInfo{
			Name:      id.String(),
			Scheduler: cfg.SchedulerA.String(),
			ChannelsA: cfg.ChA, ChannelsB: cfg.ChB, ChannelsC: cfg.ChC,
			PEGs: cfg.PEG, Freq: cfg.FreqMHz, Compress: cfg.CompressedB,
			LUT: res.LUT, BRAM: res.BRAM,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// deviceInfo is one accelerator's state snapshot.
type deviceInfo struct {
	Name            string  `json:"name"`
	Loaded          string  `json:"loaded"`
	Requests        int64   `json:"requests"`
	Reconfigs       int64   `json:"reconfigs"`
	ReconfigSeconds float64 `json:"reconfig_seconds"`
	// ReconfigsAvoided counts checkouts where the device already held the
	// request's predicted bitstream — switches placement saved.
	ReconfigsAvoided int64 `json:"reconfigs_avoided"`
}

func (s *Server) handleFleet(w http.ResponseWriter, _ *http.Request) {
	var out []deviceInfo
	for _, d := range s.fleet.Devices() {
		info := deviceInfo{Name: d.Name()}
		if id, ok := d.Loaded(); ok {
			info.Loaded = id.String()
		}
		st := d.Stats()
		info.Requests = st.Requests
		info.Reconfigs = st.Reconfigs
		info.ReconfigSeconds = st.ReconfigSeconds
		info.ReconfigsAvoided = st.ReconfigsAvoided
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// statsResponse reports the analysis-cache counters plus the online
// adaptation state. cache_enabled is false (and the counters zero) when
// the server runs without a cache; the online fields are omitted when
// online mode is off.
type statsResponse struct {
	CacheEnabled bool             `json:"cache_enabled"`
	Cache        misam.CacheStats `json:"cache"`
	// ModelVersion is the registry version currently serving traffic.
	ModelVersion uint64 `json:"model_version"`
	Online       bool   `json:"online"`
	// Traces carries the collector counters — including Dropped, the
	// signal that the bounded buffer is saturating at the configured
	// sample rate.
	Traces *online.CollectorStats `json:"traces,omitempty"`
	// Adaptation carries drift-check and retrain/promotion counters.
	Adaptation *online.ManagerStats `json:"adaptation,omitempty"`
	// FastPath carries the two-tier serving counters (coverage, the
	// background verifier's agreement and queue drops); omitted when the
	// fast path is off.
	FastPath *misam.FastPathStats `json:"fastpath,omitempty"`
	// Placement carries the bitstream-aware placement counters; omitted
	// when placement is off.
	Placement *placementStats `json:"placement,omitempty"`
	// SlowTier carries the pruned slow tier's tile-level counters —
	// shared tile-cache hits/misses plus bound-abort and coarse-skip
	// counts; omitted when no shared tile cache is enabled.
	SlowTier *slowTierStats `json:"slowtier,omitempty"`
}

// slowTierStats reports the slow tier's tile-level memoization and
// pruning activity (see sim.TileCache).
type slowTierStats struct {
	Enabled   bool                 `json:"enabled"`
	TileCache misam.TileCacheStats `json:"tile_cache"`
}

// placementStats reports the placement layer's effect: the pool's
// affinity counters, the switches it saved fleet-wide, and the portfolio
// rebalancer's activity.
type placementStats struct {
	Enabled bool `json:"enabled"`
	// Fleet carries the pool counters: affinity_hits counts checkouts
	// that landed on a device already holding the predicted bitstream.
	Fleet fleet.Stats `json:"fleet"`
	// Reconfigs groups the switch accounting placement exists to improve.
	Reconfigs struct {
		// Paid sums per-device reconfigurations actually performed;
		// Avoided sums checkouts where the predicted bitstream was already
		// resident.
		Paid    int64 `json:"paid"`
		Avoided int64 `json:"avoided"`
	} `json:"reconfigs"`
	// Rebalancer carries the background portfolio optimizer's counters
	// (omitted when no rebalancer runs).
	Rebalancer *placement.RebalancerStats `json:"rebalancer,omitempty"`
	// Demand is the normalized per-design traffic mix feeding the
	// rebalancer, with DemandN observations behind it (omitted without a
	// trace collector).
	Demand  []float64 `json:"demand,omitempty"`
	DemandN int64     `json:"demand_n,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("scope") == "cluster" {
		if s.cluster == nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("scope=cluster needs a cluster deployment"))
			return
		}
		if !s.forwardedIn(r) {
			s.handleClusterStats(w, r)
			return
		}
		// A peer's fan-out probe: answer with the local view below.
	}
	writeJSON(w, http.StatusOK, s.localStats())
}

// localStats assembles this node's statsResponse.
func (s *Server) localStats() statsResponse {
	st, ok := s.fw.CacheStats()
	resp := statsResponse{
		CacheEnabled: ok,
		Cache:        st,
		ModelVersion: s.fw.Registry().Current().Version(),
		Online:       s.manager != nil,
	}
	if s.manager != nil {
		ts := s.manager.Collector().Stats()
		ms := s.manager.Stats()
		resp.Traces = &ts
		resp.Adaptation = &ms
	}
	if fs, ok := s.fw.FastPathStats(); ok {
		resp.FastPath = &fs
	}
	if ts, ok := s.fw.TileCacheStats(); ok {
		resp.SlowTier = &slowTierStats{Enabled: true, TileCache: ts}
	}
	if s.cfg.Placement {
		ps := &placementStats{Enabled: true, Fleet: s.fleet.Stats()}
		for _, d := range s.fleet.Devices() {
			dst := d.Stats()
			ps.Reconfigs.Paid += dst.Reconfigs
			ps.Reconfigs.Avoided += dst.ReconfigsAvoided
		}
		if s.rebalancer != nil {
			rs := s.rebalancer.Stats()
			ps.Rebalancer = &rs
		}
		if tr := s.fw.Traces(); tr != nil {
			mix, n := tr.Demand()
			ps.Demand = mix[:]
			ps.DemandN = n
		}
		resp.Placement = ps
	}
	return resp
}

// modelsResponse lists the registry contents.
type modelsResponse struct {
	Current   uint64          `json:"current"`
	Snapshots []registry.Info `json:"snapshots"`
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	reg := s.fw.Registry()
	writeJSON(w, http.StatusOK, modelsResponse{
		Current:   reg.Current().Version(),
		Snapshots: reg.List(),
	})
}

// retrainResponse is the retrain endpoint's verdict: the shadow
// evaluation outcome plus the version now serving.
type retrainResponse struct {
	Outcome online.Outcome `json:"outcome"`
	Current uint64         `json:"current"`
}

func (s *Server) handleRetrain(w http.ResponseWriter, r *http.Request) {
	if s.manager == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("online adaptation is disabled (start with online mode on)"))
		return
	}
	note := "operator request"
	if rep := s.manager.CheckDrift(); rep.Drifted && len(rep.Reasons) > 0 {
		note = rep.Reasons[0]
	}
	out, err := s.manager.RetrainNow(note)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	if out.Promote {
		s.syncAfterModelChange()
	}
	writeJSON(w, http.StatusOK, retrainResponse{Outcome: out, Current: s.fw.Registry().Current().Version()})
}

// rollbackResponse reports the version serving after a rollback.
type rollbackResponse struct {
	Current uint64        `json:"current"`
	Info    registry.Info `json:"info"`
}

func (s *Server) handleRollback(w http.ResponseWriter, _ *http.Request) {
	snap, err := s.fw.Registry().Rollback()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	s.syncAfterModelChange()
	writeJSON(w, http.StatusOK, rollbackResponse{Current: snap.Version(), Info: snap.Info()})
}

// analyzeRequest carries the two operands, each as either a MatrixMarket
// document or a generator spec (uniform:<rows>:<cols>:<density>,
// dense:<cols>, powerlaw:<n>:<nnz>, banded:<n>:<halfbw>, or "self" for B).
type analyzeRequest struct {
	AMatrixMarket string `json:"a_mtx,omitempty"`
	BMatrixMarket string `json:"b_mtx,omitempty"`
	ASpec         string `json:"a_spec,omitempty"`
	BSpec         string `json:"b_spec,omitempty"`
	Seed          int64  `json:"seed,omitempty"`
}

// analyzeResponse is the framework report plus baseline estimates.
type analyzeResponse struct {
	Design           string  `json:"design"`
	Device           string  `json:"device"`
	ModelVersion     uint64  `json:"model_version"`
	Reconfigured     bool    `json:"reconfigured"`
	ReconfigSeconds  float64 `json:"reconfig_seconds"`
	PreprocessMs     float64 `json:"preprocess_ms"`
	InferenceMs      float64 `json:"inference_ms"`
	PredictedMs      float64 `json:"predicted_ms"`
	SimulatedMs      float64 `json:"simulated_ms"`
	PEUtilization    float64 `json:"pe_utilization"`
	EnergyMillijoule float64 `json:"energy_mj"`
	CPUMs            float64 `json:"cpu_ms"`
	GPUMs            float64 `json:"gpu_ms"`
	TrapezoidMs      float64 `json:"trapezoid_ms"`
	// Path reports which serving tier answered ("full" or "fast");
	// Confidence is the selector leaf's probability mass for the chosen
	// design when the fast-path gate evaluated it.
	Path       string  `json:"path,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	// Node is the cluster member that actually served the analysis
	// (omitted outside a cluster). A forwarded request carries the owner
	// node's ID here, not the member the client hit.
	Node string `json:"node,omitempty"`
}

// httpError pairs a status code with a client-facing message.
type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }

// withDevice checks a device out for one request and runs fn with it.
// With placement on, the request's predicted winner is planned before
// acquisition and the cost model picks the idle device on which serving
// is cheapest (typically one already holding the winning bitstream);
// otherwise the fleet hands out devices FIFO exactly as before.
// Placement never changes what fn computes — only which device runs it.
func (s *Server) withDevice(ctx context.Context, wl *misam.Workload, fn func(*misam.Accelerator) error) error {
	run := func(dev *misam.Accelerator) error {
		if s.onAcquire != nil {
			s.onAcquire(dev)
		}
		return fn(dev)
	}
	if !s.cfg.Placement {
		return s.fleet.Do(ctx, run)
	}
	dev, err := s.fw.AcquirePlaced(ctx, s.fleet, wl, misam.PlacementConfig{QueueWeight: s.cfg.QueueWeight})
	if err != nil {
		return err
	}
	defer s.fleet.Release(dev)
	return run(dev)
}

// resolveWorkload materializes one request's operands into a simulation
// workload — the request's content key (and therefore its cluster
// owner) is defined by the resolved operand bytes.
func (s *Server) resolveWorkload(req analyzeRequest) (*misam.Workload, *httpError) {
	a, err := loadOperand(req.AMatrixMarket, req.ASpec, req.Seed, nil)
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, fmt.Errorf("matrix A: %w", err)}
	}
	b, err := loadOperand(req.BMatrixMarket, req.BSpec, req.Seed+1, a)
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, fmt.Errorf("matrix B: %w", err)}
	}
	wl, err := misam.NewWorkload(a, b)
	if err != nil {
		return nil, &httpError{http.StatusBadRequest,
			fmt.Errorf("dimension mismatch: A is %dx%d, B is %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)}
	}
	return wl, nil
}

// analyzeOne resolves one request's operands, checks a device out of the
// fleet, and runs the analyze pipeline. The workload precompute is built
// once and shared between Analyze and the baseline comparison.
func (s *Server) analyzeOne(ctx context.Context, req analyzeRequest) (analyzeResponse, *httpError) {
	wl, herr := s.resolveWorkload(req)
	if herr != nil {
		return analyzeResponse{}, herr
	}
	return s.analyzeWorkload(ctx, wl)
}

// analyzeOneRouted is analyzeOne with cluster routing: an item owned by
// a peer is re-marshalled alone and proxied through the peer's
// single-analyze endpoint. forwarded marks requests that already
// crossed a hop (always served locally).
func (s *Server) analyzeOneRouted(ctx context.Context, req analyzeRequest, forwarded bool) (analyzeResponse, *httpError) {
	wl, herr := s.resolveWorkload(req)
	if herr != nil {
		return analyzeResponse{}, herr
	}
	if s.cluster != nil && !forwarded {
		item, err := json.Marshal(req)
		if err == nil {
			if resp, ok := s.routeItem(ctx, "application/json", item, s.fw.AnalysisKey(wl.A, wl.B)); ok {
				return resp, nil
			}
		}
	}
	return s.analyzeWorkload(ctx, wl)
}

// analyzeWorkload runs a resolved workload through whichever pipeline the
// configuration selects. Shared by both ingestion formats — everything
// format-specific happens before this point.
func (s *Server) analyzeWorkload(ctx context.Context, wl *misam.Workload) (analyzeResponse, *httpError) {
	var err error
	var rep misam.Report
	var cmp misam.BaselineComparison
	if s.cfg.FastPath {
		// Two-tier pipeline: the gate decides per request whether the
		// device transaction is the whole story (fast tier, priced from
		// the regressors) or a full simulation runs. Baselines come from
		// the workload precompute either way — no operand re-walk.
		err = s.withDevice(ctx, wl, func(dev *misam.Accelerator) error {
			var err error
			rep, err = s.fw.AnalyzeFastOn(ctx, dev, wl)
			return err
		})
		cmp = misam.CompareBaselinesWorkload(wl)
	} else if _, cached := s.fw.CacheStats(); cached {
		// Cached deployment: run (or coalesce onto, or skip via a hit) the
		// design-independent analysis before touching the fleet, so cache
		// hits never occupy a device's simulation slot and misses hold
		// their device only for the microsecond-scale pricing transaction.
		t0 := time.Now()
		an, _, aerr := s.fw.AnalysisFor(ctx, wl)
		if aerr != nil {
			return analyzeResponse{}, &httpError{statusFor(aerr), aerr}
		}
		pre := time.Since(t0).Seconds()
		err = s.withDevice(ctx, wl, func(dev *misam.Accelerator) error {
			var err error
			rep, err = s.fw.AnalyzeWith(ctx, dev, an)
			return err
		})
		rep.PreprocessSeconds = pre
		rep.TotalSeconds += pre
		cmp = misam.CompareBaselineStats(an.Baseline)
	} else {
		err = s.withDevice(ctx, wl, func(dev *misam.Accelerator) error {
			var err error
			rep, err = s.fw.AnalyzeOn(ctx, dev, wl)
			return err
		})
		cmp = misam.CompareBaselinesWorkload(wl)
	}
	if err != nil {
		return analyzeResponse{}, &httpError{statusFor(err), err}
	}
	resp := buildResponse(rep, cmp)
	resp.Node = s.nodeID()
	return resp, nil
}

// buildResponse renders a report + baseline comparison as the wire
// response.
func buildResponse(rep misam.Report, cmp misam.BaselineComparison) analyzeResponse {
	return analyzeResponse{
		Design:           rep.Design.String(),
		Device:           rep.Device,
		ModelVersion:     rep.ModelVersion,
		Reconfigured:     rep.Reconfigured,
		ReconfigSeconds:  rep.ReconfigSec,
		PreprocessMs:     rep.PreprocessSeconds * 1e3,
		InferenceMs:      rep.InferenceSeconds * 1e3,
		PredictedMs:      rep.PredictedSeconds * 1e3,
		SimulatedMs:      rep.SimulatedSeconds * 1e3,
		PEUtilization:    rep.PEUtilization,
		EnergyMillijoule: rep.EnergyJoules * 1e3,
		CPUMs:            cmp.CPUSeconds * 1e3,
		GPUMs:            cmp.GPUSeconds * 1e3,
		TrapezoidMs:      cmp.TrapezoidSeconds * 1e3,
		Path:             rep.Path,
		Confidence:       rep.Confidence,
	}
}

// statusFor maps pipeline errors to HTTP statuses: a server-imposed
// deadline expiring is a gateway timeout; a cancelled context (client
// went away) is service-unavailable; anything else is internal.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// requestContext derives the request-scoped context, applying the
// server's timeout when configured.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return r.Context(), func() {}
}

// bodyPool recycles request-body buffers across requests: binary decode
// aliases the buffer for the request's duration, and the JSON path reads
// into it before unmarshalling, so neither format pays a per-request
// body allocation once the pool is warm.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBuf caps the buffers the pools retain; one huge request must
// not pin its buffer forever.
const maxPooledBuf = 1 << 20

func putBody(buf *bytes.Buffer) {
	if buf.Cap() <= maxPooledBuf {
		bodyPool.Put(buf)
	}
}

// readBody slurps the size-capped request body into a pooled buffer. On
// success the caller owns the buffer and must putBody it when done with
// its bytes (for binary requests that is after the response is written —
// decoded matrices alias the buffer).
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) (*bytes.Buffer, *httpError) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	buf := bodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	if _, err := buf.ReadFrom(r.Body); err != nil {
		putBody(buf)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, &httpError{http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit)}
		}
		return nil, &httpError{http.StatusBadRequest, fmt.Errorf("reading body: %w", err)}
	}
	return buf, nil
}

// decodeBody decodes a size-capped JSON request body through the buffer
// pool. json.Unmarshal copies everything it keeps, so the buffer recycles
// immediately.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) *httpError {
	buf, herr := s.readBody(w, r)
	if herr != nil {
		return herr
	}
	defer putBody(buf)
	if err := json.Unmarshal(buf.Bytes(), v); err != nil {
		return &httpError{http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err)}
	}
	return nil
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if binary, herr := s.binaryRequest(r); herr != nil {
		writeErr(w, herr.status, herr.err)
		return
	} else if binary {
		s.handleAnalyzeBinary(w, r)
		return
	}
	// The raw body is read (not streamed into the decoder) because a
	// cluster deployment may proxy it to the owner node byte for byte.
	buf, herr := s.readBody(w, r)
	if herr != nil {
		writeErr(w, herr.status, herr.err)
		return
	}
	defer putBody(buf)
	var req analyzeRequest
	if err := json.Unmarshal(buf.Bytes(), &req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	wl, herr := s.resolveWorkload(req)
	if herr != nil {
		writeErr(w, herr.status, herr.err)
		return
	}
	if !s.forwardedIn(r) &&
		s.maybeForward(ctx, w, "/v1/analyze", "application/json", buf.Bytes(), s.fw.AnalysisKey(wl.A, wl.B)) {
		return
	}
	resp, herr := s.analyzeWorkload(ctx, wl)
	if herr != nil {
		writeErr(w, herr.status, herr.err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// batchRequest fans N analyze items across the fleet.
type batchRequest struct {
	Items []analyzeRequest `json:"items"`
}

// batchItemResponse is one item's outcome; exactly one of Error or the
// embedded response fields is meaningful.
type batchItemResponse struct {
	analyzeResponse
	Error string `json:"error,omitempty"`
}

type batchResponse struct {
	Items []batchItemResponse `json:"items"`
}

func (s *Server) handleAnalyzeBatch(w http.ResponseWriter, r *http.Request) {
	if binary, herr := s.binaryRequest(r); herr != nil {
		writeErr(w, herr.status, herr.err)
		return
	} else if binary {
		s.handleAnalyzeBatchBinary(w, r)
		return
	}
	var req batchRequest
	if herr := s.decodeBody(w, r, &req); herr != nil {
		writeErr(w, herr.status, herr.err)
		return
	}
	if len(req.Items) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("batch has no items"))
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("batch has %d items, limit is %d", len(req.Items), s.cfg.MaxBatchItems))
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	forwarded := s.forwardedIn(r)

	// Fan the items out; fleet admission provides the per-device
	// serialization, so concurrency here is bounded by the device count.
	// In a cluster each item routes independently to its owner node.
	out := batchResponse{Items: make([]batchItemResponse, len(req.Items))}
	var wg sync.WaitGroup
	for i := range req.Items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, herr := s.analyzeOneRouted(ctx, req.Items[i], forwarded)
			if herr != nil {
				out.Items[i] = batchItemResponse{Error: herr.Error()}
				return
			}
			out.Items[i] = batchItemResponse{analyzeResponse: resp}
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, out)
}

// ErrInvalidMatrix marks an ingested matrix that failed CSR invariant
// validation. Every ingest boundary returns it as a 400: the binary path
// via the sparse.ErrWire family, the MatrixMarket path via this wrapper.
// (Generator specs construct valid matrices by definition.)
var ErrInvalidMatrix = errors.New("invalid matrix")

// loadOperand resolves one matrix from its MatrixMarket document or
// generator spec. Parsed documents are invariant-checked before anything
// downstream walks them.
func loadOperand(mtx, spec string, seed int64, prev *misam.Matrix) (*misam.Matrix, error) {
	switch {
	case mtx != "" && spec != "":
		return nil, fmt.Errorf("give either a MatrixMarket document or a spec, not both")
	case mtx != "":
		m, err := misam.ReadMatrixMarket(strings.NewReader(mtx))
		if err != nil {
			return nil, err
		}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidMatrix, err)
		}
		return m, nil
	case spec != "":
		return parseSpec(spec, seed, prev)
	default:
		return nil, fmt.Errorf("missing operand")
	}
}

// maxGenNNZ caps the estimated entry count of a generated matrix. A spec
// like dense:4194304 would otherwise allocate ~10^13 entries from one
// request; anything a legitimate client wants above this cap should be
// uploaded as a (size-capped) MatrixMarket document instead.
const maxGenNNZ = 1 << 23

// parseSpec mirrors the CLI generator grammar, with entry-count caps on
// every family.
func parseSpec(spec string, seed int64, prev *misam.Matrix) (*misam.Matrix, error) {
	if spec == "self" {
		if prev == nil {
			return nil, fmt.Errorf("'self' is only valid for matrix B")
		}
		return prev, nil
	}
	parts := strings.Split(spec, ":")
	atoi := func(i int) (int, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("spec %q: missing field %d", spec, i)
		}
		v, err := strconv.Atoi(parts[i])
		if err != nil || v < 1 || v > 4<<20 {
			return 0, fmt.Errorf("spec %q: bad field %d", spec, i)
		}
		return v, nil
	}
	checkNNZ := func(est float64) error {
		if est > maxGenNNZ {
			return fmt.Errorf("spec %q: ~%.0f generated entries exceeds the %d cap", spec, est, maxGenNNZ)
		}
		return nil
	}
	switch parts[0] {
	case "uniform":
		rows, err := atoi(1)
		if err != nil {
			return nil, err
		}
		cols, err := atoi(2)
		if err != nil {
			return nil, err
		}
		if len(parts) < 4 {
			return nil, fmt.Errorf("uniform needs a density")
		}
		dens, err := strconv.ParseFloat(parts[3], 64)
		if err != nil || dens < 0 || dens > 1 {
			return nil, fmt.Errorf("bad density %q", parts[3])
		}
		if err := checkNNZ(float64(rows) * float64(cols) * dens); err != nil {
			return nil, err
		}
		return misam.RandUniform(seed, rows, cols, dens), nil
	case "dense":
		cols, err := atoi(1)
		if err != nil {
			return nil, err
		}
		rows := cols
		if prev != nil {
			rows = prev.Cols
		}
		if err := checkNNZ(float64(rows) * float64(cols)); err != nil {
			return nil, err
		}
		return misam.RandDense(seed, rows, cols), nil
	case "powerlaw":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		nnz, err := atoi(2)
		if err != nil {
			return nil, err
		}
		if err := checkNNZ(float64(nnz)); err != nil {
			return nil, err
		}
		return misam.RandPowerLaw(seed, n, n, nnz, 1.9), nil
	case "banded":
		n, err := atoi(1)
		if err != nil {
			return nil, err
		}
		half, err := atoi(2)
		if err != nil {
			return nil, err
		}
		if err := checkNNZ(float64(n) * float64(2*half+1)); err != nil {
			return nil, err
		}
		return misam.RandBanded(seed, n, n, half, 0.8), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", parts[0])
	}
}

// encodePool recycles response-encoding buffers (see
// BenchmarkWriteJSONPooled for the allocation pin).
var encodePool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Encode into a pooled buffer first: one Write call, no per-request
	// encoder allocation, and an encode error can never corrupt a
	// half-written 200.
	buf := encodePool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		encodePool.Put(buf)
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledBuf {
		encodePool.Put(buf)
	}
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
