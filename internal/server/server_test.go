package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"misam"
)

var (
	testFW   *misam.Framework
	testOnce sync.Once
	testErr  error
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	testOnce.Do(func() {
		testFW, testErr = misam.Train(misam.TrainOptions{CorpusSize: 80, MaxDim: 384, Seed: 5})
	})
	if testErr != nil {
		t.Fatal(testErr)
	}
	srv := httptest.NewServer(New(testFW).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestDesignsEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/designs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var designs []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&designs); err != nil {
		t.Fatal(err)
	}
	if len(designs) != 4 {
		t.Fatalf("got %d designs, want 4", len(designs))
	}
	if designs[0]["name"] != "Design 1" || designs[3]["compressed_b"] != true {
		t.Errorf("design payload wrong: %v", designs)
	}
}

func postAnalyze(t *testing.T, srv *httptest.Server, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestAnalyzeWithSpecs(t *testing.T) {
	srv := testServer(t)
	resp, out := postAnalyze(t, srv, map[string]any{
		"a_spec": "powerlaw:3000:12000",
		"b_spec": "dense:32",
		"seed":   7,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["design"] == "" {
		t.Error("missing design in response")
	}
	if out["simulated_ms"].(float64) <= 0 {
		t.Error("missing simulated latency")
	}
	if out["cpu_ms"].(float64) <= 0 || out["gpu_ms"].(float64) <= 0 {
		t.Error("missing baseline estimates")
	}
}

func TestAnalyzeWithMatrixMarket(t *testing.T) {
	srv := testServer(t)
	const mtx = `%%MatrixMarket matrix coordinate real general
3 3 3
1 1 1.0
2 2 2.0
3 3 3.0
`
	resp, out := postAnalyze(t, srv, map[string]any{
		"a_mtx":  mtx,
		"b_spec": "dense:8",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	srv := testServer(t)
	cases := []map[string]any{
		{},                                   // no operands
		{"a_spec": "nonsense:1:2"},           // bad generator
		{"a_spec": "uniform:10:10:0.5"},      // missing B
		{"a_spec": "self", "b_spec": "self"}, // self for A
		{"a_spec": "uniform:10:10:0.5", "b_spec": "uniform:11:10:0.5"}, // mismatch
		{"a_mtx": "garbage", "b_spec": "dense:8"},
		{"a_spec": "uniform:10:10:0.5", "a_mtx": "x", "b_spec": "dense:8"}, // both forms
	}
	for i, c := range cases {
		resp, out := postAnalyze(t, srv, c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d (%v), want 400", i, resp.StatusCode, out)
		}
		if out["error"] == "" {
			t.Errorf("case %d: missing error message", i)
		}
	}
}

func TestAnalyzeRejectsBadJSON(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestAnalyzeConcurrentRequests(t *testing.T) {
	srv := testServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			raw, _ := json.Marshal(map[string]any{
				"a_spec": "uniform:500:500:0.01",
				"b_spec": "dense:16",
				"seed":   g,
			})
			resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", bytes.NewReader(raw))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("goroutine %d: status %d", g, resp.StatusCode)
			}
		}(g)
	}
	wg.Wait()
}
