package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"misam"
)

var (
	testFW   *misam.Framework
	testOnce sync.Once
	testErr  error
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	testOnce.Do(func() {
		testFW, testErr = misam.Train(misam.TrainOptions{CorpusSize: 80, MaxDim: 384, Seed: 5})
	})
	if testErr != nil {
		t.Fatal(testErr)
	}
	srv := httptest.NewServer(New(testFW).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestDesignsEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/designs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var designs []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&designs); err != nil {
		t.Fatal(err)
	}
	if len(designs) != 4 {
		t.Fatalf("got %d designs, want 4", len(designs))
	}
	if designs[0]["name"] != "Design 1" || designs[3]["compressed_b"] != true {
		t.Errorf("design payload wrong: %v", designs)
	}
}

func postAnalyze(t *testing.T, srv *httptest.Server, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestAnalyzeWithSpecs(t *testing.T) {
	srv := testServer(t)
	resp, out := postAnalyze(t, srv, map[string]any{
		"a_spec": "powerlaw:3000:12000",
		"b_spec": "dense:32",
		"seed":   7,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["design"] == "" {
		t.Error("missing design in response")
	}
	if out["simulated_ms"].(float64) <= 0 {
		t.Error("missing simulated latency")
	}
	if out["cpu_ms"].(float64) <= 0 || out["gpu_ms"].(float64) <= 0 {
		t.Error("missing baseline estimates")
	}
}

func TestAnalyzeWithMatrixMarket(t *testing.T) {
	srv := testServer(t)
	const mtx = `%%MatrixMarket matrix coordinate real general
3 3 3
1 1 1.0
2 2 2.0
3 3 3.0
`
	resp, out := postAnalyze(t, srv, map[string]any{
		"a_mtx":  mtx,
		"b_spec": "dense:8",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	srv := testServer(t)
	cases := []map[string]any{
		{},                                   // no operands
		{"a_spec": "nonsense:1:2"},           // bad generator
		{"a_spec": "uniform:10:10:0.5"},      // missing B
		{"a_spec": "self", "b_spec": "self"}, // self for A
		{"a_spec": "uniform:10:10:0.5", "b_spec": "uniform:11:10:0.5"}, // mismatch
		{"a_mtx": "garbage", "b_spec": "dense:8"},
		{"a_spec": "uniform:10:10:0.5", "a_mtx": "x", "b_spec": "dense:8"}, // both forms
	}
	for i, c := range cases {
		resp, out := postAnalyze(t, srv, c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d (%v), want 400", i, resp.StatusCode, out)
		}
		if out["error"] == "" {
			t.Errorf("case %d: missing error message", i)
		}
	}
}

func TestAnalyzeRejectsBadJSON(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestAnalyzeConcurrentRequests(t *testing.T) {
	srv := testServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			raw, _ := json.Marshal(map[string]any{
				"a_spec": "uniform:500:500:0.01",
				"b_spec": "dense:16",
				"seed":   g,
			})
			resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", bytes.NewReader(raw))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("goroutine %d: status %d", g, resp.StatusCode)
			}
		}(g)
	}
	wg.Wait()
}

func trainedFW(t *testing.T) *misam.Framework {
	t.Helper()
	testOnce.Do(func() {
		testFW, testErr = misam.Train(misam.TrainOptions{CorpusSize: 80, MaxDim: 384, Seed: 5})
	})
	if testErr != nil {
		t.Fatal(testErr)
	}
	return testFW
}

// TestTwoDeviceConcurrentProgress is the acceptance gate for dropping the
// global analyze mutex: on a 2-device fleet, two in-flight requests hold
// their devices at the same time. The onAcquire hook forms a 2-party
// barrier — if requests were serialized server-wide, the second request
// could never reach the hook while the first is parked in it, and the
// barrier would time out.
func TestTwoDeviceConcurrentProgress(t *testing.T) {
	s := NewWithConfig(trainedFW(t), Config{Devices: 2})
	barrier := make(chan string, 2)
	proceed := make(chan struct{})
	s.onAcquire = func(dev *misam.Accelerator) {
		barrier <- dev.Name()
		<-proceed
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	errc := make(chan error, 2)
	for g := 0; g < 2; g++ {
		go func(g int) {
			raw, _ := json.Marshal(map[string]any{
				"a_spec": "uniform:400:400:0.01", "b_spec": "dense:16", "seed": g,
			})
			resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", bytes.NewReader(raw))
			if err != nil {
				errc <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errc <- nil
		}(g)
	}

	names := map[string]bool{}
	for i := 0; i < 2; i++ {
		select {
		case n := <-barrier:
			names[n] = true
		case <-time.After(10 * time.Second):
			t.Fatal("second request never acquired a device: requests are serialized server-wide")
		}
	}
	if len(names) != 2 {
		t.Fatalf("both requests landed on one device: %v", names)
	}
	close(proceed)
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

func TestAnalyzeBatch(t *testing.T) {
	s := NewWithConfig(trainedFW(t), Config{Devices: 2})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	raw, _ := json.Marshal(map[string]any{
		"items": []map[string]any{
			{"a_spec": "uniform:400:400:0.01", "b_spec": "dense:16", "seed": 1},
			{"a_spec": "powerlaw:1000:5000", "b_spec": "dense:8", "seed": 2},
			{"a_spec": "nonsense:1"}, // per-item failure must not sink the batch
		},
	})
	resp, err := http.Post(srv.URL+"/v1/analyze/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Items []struct {
			Design string `json:"design"`
			Device string `json:"device"`
			Error  string `json:"error"`
		} `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 3 {
		t.Fatalf("got %d items, want 3", len(out.Items))
	}
	for i := 0; i < 2; i++ {
		if out.Items[i].Error != "" || out.Items[i].Design == "" || out.Items[i].Device == "" {
			t.Errorf("item %d incomplete: %+v", i, out.Items[i])
		}
	}
	if out.Items[2].Error == "" {
		t.Error("bad item should carry an error")
	}
}

func TestAnalyzeBatchLimits(t *testing.T) {
	s := NewWithConfig(trainedFW(t), Config{Devices: 1, MaxBatchItems: 2})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	for _, body := range []string{
		`{"items":[]}`,
		`{"items":[{},{},{}]}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/analyze/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestRequestTimeout: with every device busy, a server-imposed deadline
// turns waiting requests away with 504.
func TestRequestTimeout(t *testing.T) {
	s := NewWithConfig(trainedFW(t), Config{Devices: 1, RequestTimeout: 50 * time.Millisecond})
	hold := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.onAcquire = func(*misam.Accelerator) {
		once.Do(func() { close(hold); <-release })
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
	})

	first := make(chan error, 1)
	go func() {
		raw, _ := json.Marshal(map[string]any{"a_spec": "uniform:400:400:0.01", "b_spec": "dense:16"})
		resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", bytes.NewReader(raw))
		if err == nil {
			resp.Body.Close()
		}
		first <- err
	}()
	<-hold // the single device is now held

	raw, _ := json.Marshal(map[string]any{"a_spec": "uniform:400:400:0.01", "b_spec": "dense:16", "seed": 9})
	resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 when the fleet is saturated past the deadline", resp.StatusCode)
	}
	close(release)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
}

func TestBodyTooLarge(t *testing.T) {
	s := NewWithConfig(trainedFW(t), Config{MaxBodyBytes: 256})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	big := fmt.Sprintf(`{"a_mtx":%q,"b_spec":"dense:8"}`, strings.Repeat("x", 1024))
	resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

// TestSpecNNZCaps: generator specs whose estimated entry count would
// allocate unbounded memory are rejected up front.
func TestSpecNNZCaps(t *testing.T) {
	srv := testServer(t)
	cases := []map[string]any{
		{"a_spec": "dense:4194304"},                                 // 2^44 entries
		{"a_spec": "uniform:4000000:4000000:1.0", "b_spec": "self"}, // dense disguised as uniform
		{"a_spec": "banded:4000000:2000000", "b_spec": "dense:8"},   // full-band blowup
		{"a_spec": "uniform:10:10:0.5", "b_spec": "dense:4194304"},  // cap applies to B too
	}
	for i, c := range cases {
		resp, out := postAnalyze(t, srv, c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d (%v), want 400", i, resp.StatusCode, out)
		}
	}
	// Sanity: the caps must not reject ordinary workloads (covered by the
	// happy-path tests, but pin the boundary family explicitly).
	resp, out := postAnalyze(t, srv, map[string]any{"a_spec": "banded:2000:4", "b_spec": "dense:16"})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("legitimate banded spec rejected: %d %v", resp.StatusCode, out)
	}
}

// TestFleetEndpointAndHammer floods a 3-device fleet from many goroutines
// (run under -race via ci.sh) and then checks /v1/fleet: every report
// must name a real device, and the per-device request counters must sum
// to the request count — the consistency proof that each report reflects
// the bitstream state of the device that served it.
func TestFleetEndpointAndHammer(t *testing.T) {
	s := NewWithConfig(trainedFW(t), Config{Devices: 3})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	const requests = 24
	valid := map[string]bool{"fpga0": true, "fpga1": true, "fpga2": true}
	var wg sync.WaitGroup
	var mu sync.Mutex
	served := map[string]int64{}
	for g := 0; g < requests; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			body := map[string]any{"a_spec": "uniform:300:300:0.02", "b_spec": "dense:16", "seed": g}
			if g%3 == 0 {
				body = map[string]any{"a_spec": "powerlaw:800:4000", "b_spec": "dense:8", "seed": g}
			}
			raw, _ := json.Marshal(body)
			resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", bytes.NewReader(raw))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var out struct {
				Design string `json:"design"`
				Device string `json:"device"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("goroutine %d: status %d", g, resp.StatusCode)
				return
			}
			if !valid[out.Device] {
				t.Errorf("report names unknown device %q", out.Device)
			}
			mu.Lock()
			served[out.Device]++
			mu.Unlock()
		}(g)
	}
	wg.Wait()

	resp, err := http.Get(srv.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fleet []struct {
		Name     string `json:"name"`
		Loaded   string `json:"loaded"`
		Requests int64  `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 3 {
		t.Fatalf("fleet endpoint reports %d devices, want 3", len(fleet))
	}
	var total int64
	for _, d := range fleet {
		if !valid[d.Name] {
			t.Errorf("unknown device %q in fleet stats", d.Name)
		}
		if d.Requests != served[d.Name] {
			t.Errorf("%s: fleet reports %d requests, clients saw %d", d.Name, d.Requests, served[d.Name])
		}
		if d.Requests > 0 && d.Loaded == "" {
			t.Errorf("%s served %d requests but reports no loaded bitstream", d.Name, d.Requests)
		}
		total += d.Requests
	}
	if total != requests {
		t.Errorf("fleet served %d requests in total, want %d", total, requests)
	}
}
