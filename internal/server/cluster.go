package server

// Cluster serving. With Config.Cluster populated the server joins a
// fingerprint-sharded cluster: each analyze request's content key
// (misam.Framework.AnalysisKey — the exact key the memo cache shards
// on) is hashed onto a consistent-hash ring, and a request owned by a
// peer is proxied there byte for byte, so every repetition of an
// operand pair lands on one node's warm cache no matter which member
// the client hit. Forwarding degrades gracefully: when the owner is
// unreachable after the retry budget the request is served locally
// (correct, just without the owner's cache) and the fallback counter
// records it. Model promotions and rollbacks replicate through
// POST /v1/models/sync (see internal/cluster.Replicator).

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"misam/internal/cluster"
	"misam/internal/memo"
)

// startCluster wires the ring, peer table and replicator during
// construction. Called only when cfg.Cluster.Self is set.
func (s *Server) startCluster() error {
	cl, err := cluster.New(s.cfg.Cluster)
	if err != nil {
		return err
	}
	s.cluster = cl
	s.replicator = cluster.NewReplicator(cl,
		s.fw.SnapshotModelBytes,
		s.fw.PublishSyncedModels,
		func() uint64 { return s.fw.Registry().Current().Version() },
	)
	ctx, cancel := context.WithCancel(context.Background())
	s.syncCancel = cancel
	go s.replicator.Run(ctx)
	return nil
}

// nodeID is this node's member ID, or "" outside a cluster.
func (s *Server) nodeID() string {
	if s.cluster == nil {
		return ""
	}
	return s.cluster.Self()
}

// syncAfterModelChange pushes the current snapshot to every peer right
// after an operator action (retrain promotion, rollback), so the
// cluster converges without waiting out the sync interval.
func (s *Server) syncAfterModelChange() {
	if s.replicator == nil {
		return
	}
	go s.replicator.SyncNow(context.Background())
}

// forwardedIn reports whether r already crossed a forwarding hop (and
// counts it). Such requests are always served locally.
func (s *Server) forwardedIn(r *http.Request) bool {
	if s.cluster == nil || r.Header.Get(cluster.ForwardedHeader) == "" {
		return false
	}
	s.cluster.NoteForwardedIn()
	return true
}

// maybeForward routes one analyze request by its content key: when a
// peer owns the key, the raw body is proxied there and the peer's
// response written verbatim (returning true). A forward that exhausts
// its retries falls back to local serving — the caller proceeds as if
// the node owned the key — with the peer's fallback counter bumped.
// Requests that arrived pre-forwarded must not reach this (check
// forwardedIn first).
func (s *Server) maybeForward(ctx context.Context, w http.ResponseWriter, path, contentType string, body []byte, key memo.Key) bool {
	if s.cluster == nil {
		return false
	}
	owner, self := s.cluster.Owner(key)
	if self {
		s.cluster.NoteServedLocal()
		return false
	}
	status, ct, respBody, err := s.cluster.Forward(ctx, owner, path, contentType, body)
	if err != nil {
		s.cluster.NoteFallback(owner)
		return false
	}
	if ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(status)
	_, _ = w.Write(respBody)
	return true
}

// routeItem routes one batch item by key. When a peer owns it, the
// item's own bytes (a re-marshalled JSON object, or the item's slice of
// the original binary body) are forwarded through the single-analyze
// endpoint and the decoded response returned. Forward failure falls
// back to local serving, like maybeForward.
func (s *Server) routeItem(ctx context.Context, contentType string, body []byte, key memo.Key) (analyzeResponse, bool) {
	if s.cluster == nil {
		return analyzeResponse{}, false
	}
	owner, self := s.cluster.Owner(key)
	if self {
		s.cluster.NoteServedLocal()
		return analyzeResponse{}, false
	}
	status, _, respBody, err := s.cluster.Forward(ctx, owner, "/v1/analyze", contentType, body)
	if err != nil || status != http.StatusOK {
		// Transport failure or a peer-side error: serve the item locally.
		// (The operands already resolved here, so a peer 4xx can only be a
		// transient condition like a timeout — local serving answers it.)
		s.cluster.NoteFallback(owner)
		return analyzeResponse{}, false
	}
	var resp analyzeResponse
	if err := json.Unmarshal(respBody, &resp); err != nil {
		s.cluster.NoteFallback(owner)
		return analyzeResponse{}, false
	}
	return resp, true
}

// replicationInfo is the replication corner of the /v1/cluster report.
type replicationInfo struct {
	// Seq and Origin are the Lamport stamp of the model content this node
	// serves; Applies counts sync pushes applied.
	Seq     uint64 `json:"seq"`
	Origin  string `json:"origin"`
	Applies int64  `json:"applies"`
	// CurrentVersion is this node's local registry version (per-node —
	// replicated content mints fresh local versions).
	CurrentVersion uint64 `json:"current_version"`
}

// clusterResponse is the GET /v1/cluster body.
type clusterResponse struct {
	Enabled bool `json:"enabled"`
	// SyncIntervalMs is the replication push cadence.
	SyncIntervalMs float64          `json:"sync_interval_ms,omitempty"`
	Stats          *cluster.Stats   `json:"stats,omitempty"`
	Replication    *replicationInfo `json:"replication,omitempty"`
}

func (s *Server) handleCluster(w http.ResponseWriter, _ *http.Request) {
	if s.cluster == nil {
		writeJSON(w, http.StatusOK, clusterResponse{Enabled: false})
		return
	}
	st := s.cluster.Stats()
	seq, origin, applies := s.replicator.Stamp()
	writeJSON(w, http.StatusOK, clusterResponse{
		Enabled:        true,
		SyncIntervalMs: s.cluster.SyncInterval().Seconds() * 1e3,
		Stats:          &st,
		Replication: &replicationInfo{
			Seq:            seq,
			Origin:         origin,
			Applies:        applies,
			CurrentVersion: s.fw.Registry().Current().Version(),
		},
	})
}

// syncResponse is the POST /v1/models/sync verdict.
type syncResponse struct {
	// Applied reports whether the push carried newer content; Current is
	// the receiver's registry version after the call.
	Applied bool   `json:"applied"`
	Current uint64 `json:"current"`
}

func (s *Server) handleModelSync(w http.ResponseWriter, r *http.Request) {
	if s.replicator == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("this node is not part of a cluster"))
		return
	}
	var p cluster.SyncPayload
	if herr := s.decodeBody(w, r, &p); herr != nil {
		writeErr(w, herr.status, herr.err)
		return
	}
	applied, err := s.replicator.HandleSync(p)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("applying synced models: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, syncResponse{
		Applied: applied,
		Current: s.fw.Registry().Current().Version(),
	})
}

// clusterNodeStats is one member's slice of the fleet-wide stats
// report: its local statsResponse, or the error that kept it out.
type clusterNodeStats struct {
	Node  string          `json:"node"`
	Stats json.RawMessage `json:"stats,omitempty"`
	Error string          `json:"error,omitempty"`
}

// clusterStatsResponse is /v1/stats?scope=cluster: every member's local
// stats, gathered by fan-out from the node the client hit.
type clusterStatsResponse struct {
	Scope string             `json:"scope"`
	Nodes []clusterNodeStats `json:"nodes"`
}

// handleClusterStats fans /v1/stats out to every peer and aggregates.
// Peer requests carry the forwarded header so each peer answers with
// its local view (no fan-out recursion).
func (s *Server) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	local, err := json.Marshal(s.localStats())
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	out := clusterStatsResponse{
		Scope: "cluster",
		Nodes: []clusterNodeStats{{Node: s.cluster.Self(), Stats: local}},
	}
	type peerResult struct {
		idx int
		row clusterNodeStats
	}
	ids := s.cluster.PeerIDs()
	results := make(chan peerResult, len(ids))
	for i, id := range ids {
		go func(i int, id string) {
			row := clusterNodeStats{Node: id}
			status, body, err := s.cluster.Get(ctx, id, "/v1/stats")
			switch {
			case err != nil:
				row.Error = err.Error()
			case status != http.StatusOK:
				row.Error = fmt.Sprintf("peer returned status %d", status)
			default:
				row.Stats = json.RawMessage(body)
			}
			results <- peerResult{i, row}
		}(i, id)
	}
	rows := make([]clusterNodeStats, len(ids))
	for range ids {
		pr := <-results
		rows[pr.idx] = pr.row
	}
	out.Nodes = append(out.Nodes, rows...)
	writeJSON(w, http.StatusOK, out)
}
