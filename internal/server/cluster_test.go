package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"misam"
	"misam/internal/cluster"
	"misam/internal/reconfig"
	"misam/internal/registry"
)

// cloneFW builds an independent framework (own registry, own cache)
// carrying the shared test models, via a Save/Load round-trip.
func cloneFW(t *testing.T) *misam.Framework {
	t.Helper()
	var buf bytes.Buffer
	if err := trainedFW(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	fw, err := misam.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

// publishCGRA pins deterministic decisions for equivalence runs: the
// same models priced under CGRA-mode switching, where the engine's
// verdict no longer depends on which bitstream a device happens to
// hold (see the placement benchmark, which uses the same regime).
func publishCGRA(t *testing.T, fw *misam.Framework) {
	t.Helper()
	cur := fw.Registry().Current()
	times := cur.Engine().Times.WithMode(reconfig.CGRA)
	times.CGRASeconds = 1e-6
	cgra := reconfig.NewEngine(cur.Engine().Predictor, times, 8.0)
	snap, err := registry.NewSnapshot(cur.Classifier(), cgra, registry.Info{
		Source: registry.SourceTrain,
		Note:   "CGRA pricing for the equivalence test",
	})
	if err != nil {
		t.Fatal(err)
	}
	fw.Registry().Publish(snap)
}

// clusterNode is one loopback member: its server, the http plumbing,
// and enough handles to kill and resurrect it mid-test.
type clusterNode struct {
	url  string
	srv  *Server
	hs   *http.Server
	addr string
	down bool
}

func (n *clusterNode) kill(t *testing.T) {
	t.Helper()
	if n.down {
		return
	}
	if err := n.hs.Close(); err != nil {
		t.Fatal(err)
	}
	n.down = true
}

// resurrect re-listens on the node's original address — the peer URL
// other members carry — and serves the same handler again.
func (n *clusterNode) resurrect(t *testing.T) {
	t.Helper()
	var l net.Listener
	var err error
	for i := 0; i < 50; i++ { // the closed port can linger briefly
		if l, err = net.Listen("tcp", n.addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("re-listening on %s: %v", n.addr, err)
	}
	n.hs = &http.Server{Handler: n.srv.Handler()}
	go func() { _ = n.hs.Serve(l) }()
	n.down = false
}

// startCluster brings up n loopback members. mutate, when non-nil,
// adjusts each node's config (cluster fields are pre-filled).
func startCluster(t *testing.T, n int, syncInterval time.Duration, mutate func(i int, cfg *Config) *misam.Framework) []*clusterNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		peers := make([]string, 0, n-1)
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		cfg := Config{
			CacheBytes: 32 << 20,
			Cluster: cluster.Config{
				Self:           urls[i],
				Peers:          peers,
				SyncInterval:   syncInterval,
				ForwardRetries: 1,
				ForwardTimeout: 10 * time.Second,
			},
		}
		fw := cloneFW(t)
		if mutate != nil {
			if alt := mutate(i, &cfg); alt != nil {
				fw = alt
			}
		}
		srv, err := NewClustered(fw, cfg)
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func(i int) { _ = hs.Serve(listeners[i]) }(i)
		nodes[i] = &clusterNode{url: urls[i], srv: srv, hs: hs, addr: listeners[i].Addr().String()}
		t.Cleanup(func() { _ = hs.Close(); srv.Close() })
	}
	return nodes
}

func postJSON(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClusterRoutesRepeatedOperandToOneOwner pins the tentpole routing
// property: the same operand pair sent to every member is served by one
// owner node, the non-owner forwards (counter visible in /v1/cluster),
// and the owner's cache is warm from the second request on.
func TestClusterRoutesRepeatedOperandToOneOwner(t *testing.T) {
	nodes := startCluster(t, 2, time.Hour, nil)
	req := analyzeRequest{ASpec: "uniform:96:80:0.05", BSpec: "uniform:80:64:0.08", Seed: 42}

	var owner string
	const rounds = 3
	for i := 0; i < rounds; i++ {
		for _, n := range nodes {
			status, out := postJSON(t, n.url+"/v1/analyze", req)
			if status != http.StatusOK {
				t.Fatalf("analyze via %s: status %d (%v)", n.url, status, out)
			}
			node, _ := out["node"].(string)
			if owner == "" {
				owner = node
			}
			if node != owner {
				t.Fatalf("request served by %s, expected owner %s every time", node, owner)
			}
		}
	}

	var hits, misses, forwards float64
	for _, n := range nodes {
		st, ok := n.srv.fw.CacheStats()
		if !ok {
			t.Fatal("cache disabled on cluster node")
		}
		hits += float64(st.Hits)
		misses += float64(st.Misses)
		cs := n.srv.cluster.Stats()
		for _, m := range cs.Members {
			forwards += float64(m.Forwards)
		}
	}
	if misses != 1 {
		t.Errorf("cluster-wide misses = %v, want exactly 1 (one cold build)", misses)
	}
	if hits != 2*rounds-1 {
		t.Errorf("cluster-wide hits = %v, want %d", hits, 2*rounds-1)
	}
	// One member is the owner, the other forwarded every round.
	if forwards != rounds {
		t.Errorf("forwards = %v, want %d", forwards, rounds)
	}

	// The non-owner's /v1/cluster must report those forwards.
	for _, n := range nodes {
		if n.srv.cluster.Self() == owner {
			continue
		}
		cr := getJSON(t, n.url+"/v1/cluster")
		if cr["enabled"] != true {
			t.Fatalf("/v1/cluster disabled: %v", cr)
		}
		stats := cr["stats"].(map[string]any)
		members := stats["members"].([]any)
		var found bool
		for _, m := range members {
			mm := m.(map[string]any)
			if mm["node"] == owner && mm["forwards"].(float64) >= rounds {
				found = true
			}
		}
		if !found {
			t.Errorf("non-owner /v1/cluster missing forward counters: %v", members)
		}
	}
}

// TestClusterBinaryForwardedByteForByte routes a binary body through
// the non-owner and checks the owner answers it — the proxy hop neither
// decodes nor re-encodes, so the response is the owner's verbatim.
func TestClusterBinaryForwardedByteForByte(t *testing.T) {
	nodes := startCluster(t, 2, time.Hour, nil)
	a := misam.RandUniform(3, 120, 90, 0.06)
	b := misam.RandUniform(4, 90, 70, 0.09)
	body := misam.AppendMatrixBinary(misam.EncodeMatrixBinary(a), b)

	var owner string
	for _, n := range nodes {
		resp, err := http.Post(n.url+"/v1/analyze", BinaryContentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("binary analyze via %s: status %d (%v)", n.url, resp.StatusCode, out)
		}
		node, _ := out["node"].(string)
		if owner == "" {
			owner = node
		} else if node != owner {
			t.Fatalf("binary request served by %s and %s", owner, node)
		}
	}
	var misses int64
	for _, n := range nodes {
		st, _ := n.srv.fw.CacheStats()
		misses += st.Misses
	}
	if misses != 1 {
		t.Errorf("binary pair built %d times cluster-wide, want 1", misses)
	}
}

// TestClusterPeerDeathFallsBackLocally is the failure-path gate: kill
// the owner mid-stream and every request still answers 200 — served
// locally by the surviving member, with its fallback counter
// incremented and zero client-visible errors.
func TestClusterPeerDeathFallsBackLocally(t *testing.T) {
	nodes := startCluster(t, 2, time.Hour, func(i int, cfg *Config) *misam.Framework {
		cfg.Cluster.ForwardTimeout = 2 * time.Second
		return nil
	})
	req := analyzeRequest{ASpec: "powerlaw:200:1500", BSpec: "dense:48", Seed: 7}

	// Find the owner and the surviving non-owner.
	status, out := postJSON(t, nodes[0].url+"/v1/analyze", req)
	if status != http.StatusOK {
		t.Fatalf("warmup status %d", status)
	}
	owner := out["node"].(string)
	var ownerNode, survivor *clusterNode
	for _, n := range nodes {
		if n.srv.cluster.Self() == owner {
			ownerNode = n
		} else {
			survivor = n
		}
	}
	if ownerNode == nil || survivor == nil {
		t.Fatal("could not split owner/survivor")
	}

	ownerNode.kill(t)

	for i := 0; i < 3; i++ {
		status, out := postJSON(t, survivor.url+"/v1/analyze", req)
		if status != http.StatusOK {
			t.Fatalf("request %d after peer death: status %d (%v)", i, status, out)
		}
		if out["node"] != survivor.srv.cluster.Self() {
			t.Fatalf("request %d served by %v, want local fallback on %s", i, out["node"], survivor.url)
		}
	}

	cs := survivor.srv.cluster.Stats()
	var fallbacks, errs int64
	for _, m := range cs.Members {
		if m.Node == owner {
			fallbacks, errs = m.Fallbacks, m.ForwardErrors
			if m.Healthy {
				t.Error("dead owner still reported healthy")
			}
		}
	}
	if fallbacks < 3 {
		t.Errorf("fallbacks = %d, want >= 3", fallbacks)
	}
	if errs < 3 {
		t.Errorf("forward errors = %d, want >= 3 (retries against a dead peer)", errs)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterReplicationConvergesAndResumes drives the replication
// lifecycle: the boot models converge under Lamport stamps, an operator
// rollback propagates to the peer, and after the peer dies and returns
// the anti-entropy push converges it again.
func TestClusterReplicationConvergesAndResumes(t *testing.T) {
	nodes := startCluster(t, 2, 100*time.Millisecond, nil)

	// Boot convergence: both nodes stamp their (identical-content) boot
	// models (1, self); the higher origin wins the seq-1 tie and its push
	// mints a SourceSync version on the loser.
	var loser, winner *clusterNode
	waitFor(t, 10*time.Second, "boot sync to apply on one node", func() bool {
		for i, n := range nodes {
			for _, info := range n.srv.fw.Registry().List() {
				if info.Source == registry.SourceSync {
					loser, winner = n, nodes[1-i]
					return true
				}
			}
		}
		return false
	})
	if winner.srv.fw.Registry().Len() != 1 {
		t.Fatalf("winner registry has %d snapshots, want 1 (its own boot model)", winner.srv.fw.Registry().Len())
	}

	// Operator action propagates: roll the loser back to its boot model;
	// the rollback is a fresh local change that outranks the winner's
	// stamp, so the winner must apply a sync within an interval or two.
	before := winner.srv.fw.Registry().Len()
	resp, err := http.Post(loser.url+"/v1/models/rollback", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback status %d", resp.StatusCode)
	}
	waitFor(t, 10*time.Second, "rollback to replicate to the winner", func() bool {
		return winner.srv.fw.Registry().Len() > before
	})

	// Peer death and return: while the winner is down the loser's pushes
	// fail; once it returns, the periodic push converges it again.
	winner.kill(t)
	verBytes, _, err := loser.srv.fw.SnapshotModelBytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loser.srv.fw.PublishSyncedModels(verBytes, "change while peer is down"); err != nil {
		t.Fatal(err)
	}
	// Let at least one push fail against the dead peer.
	waitFor(t, 10*time.Second, "push errors against the dead peer", func() bool {
		for _, m := range loser.srv.cluster.Stats().Members {
			if m.SyncErrors > 0 {
				return true
			}
		}
		return false
	})
	count := winner.srv.fw.Registry().Len()
	winner.resurrect(t)
	waitFor(t, 10*time.Second, "sync to resume after the peer returns", func() bool {
		return winner.srv.fw.Registry().Len() > count
	})
}

// TestClusterStatsFanOut pins /v1/stats?scope=cluster: one request to
// any member returns every member's local stats.
func TestClusterStatsFanOut(t *testing.T) {
	nodes := startCluster(t, 3, time.Hour, nil)
	out := getJSON(t, nodes[0].url+"/v1/stats?scope=cluster")
	if out["scope"] != "cluster" {
		t.Fatalf("scope = %v", out["scope"])
	}
	rows := out["nodes"].([]any)
	if len(rows) != 3 {
		t.Fatalf("fan-out returned %d nodes, want 3", len(rows))
	}
	seen := map[string]bool{}
	for _, row := range rows {
		m := row.(map[string]any)
		if m["error"] != nil {
			t.Errorf("node %v errored: %v", m["node"], m["error"])
		}
		if m["stats"] == nil {
			t.Errorf("node %v returned no stats", m["node"])
		}
		seen[m["node"].(string)] = true
	}
	for _, n := range nodes {
		if !seen[n.srv.cluster.Self()] {
			t.Errorf("member %s missing from fan-out", n.url)
		}
	}
}

// TestClusteredConfigFailsFast pins the named-error contract at the
// server boundary: NewClustered surfaces malformed peer lists before
// anything starts.
func TestClusteredConfigFailsFast(t *testing.T) {
	fw := cloneFW(t)
	cases := []struct {
		peers []string
		want  error
	}{
		{[]string{"nodeb:8080"}, cluster.ErrBadPeer},
		{[]string{"http://b:1", "http://b:1"}, cluster.ErrDuplicatePeer},
		{[]string{"http://a:1"}, cluster.ErrSelfPeer},
	}
	for _, tc := range cases {
		_, err := NewClustered(fw, Config{Cluster: cluster.Config{Self: "http://a:1", Peers: tc.peers}})
		if !errors.Is(err, tc.want) {
			t.Errorf("peers %v: got %v, want %v", tc.peers, err, tc.want)
		}
	}
}

// equivalenceFields are the deterministic analyze-response fields that
// must match bit for bit between deployments. Device identity, node
// identity, wall-clock timings and reconfiguration verdicts (which
// depend on which physical device served) are excluded by design.
var equivalenceFields = []string{
	"design", "model_version", "predicted_ms", "simulated_ms",
	"pe_utilization", "energy_mj", "cpu_ms", "gpu_ms", "trapezoid_ms",
	"path", "confidence",
}

// TestClusterEquivalentToSingleNode is the acceptance gate: a 2-node
// loopback cluster serves bit-identical analyses to a single node on
// the same request stream. All deployments run the CGRA pricing regime
// so the design verdict is a pure function of the operands and models.
func TestClusterEquivalentToSingleNode(t *testing.T) {
	single := cloneFW(t)
	publishCGRA(t, single)
	srvSingle, err := NewClustered(single, Config{CacheBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srvSingle.Close)
	hsSingle := newLocalServer(t, srvSingle)

	nodes := startCluster(t, 2, time.Hour, func(i int, cfg *Config) *misam.Framework {
		fw := cloneFW(t)
		publishCGRA(t, fw)
		return fw
	})

	stream := []analyzeRequest{
		{ASpec: "uniform:100:80:0.06", BSpec: "uniform:80:60:0.1", Seed: 1},
		{ASpec: "powerlaw:180:1200", BSpec: "dense:40", Seed: 2},
		{ASpec: "banded:150:4", BSpec: "self", Seed: 3},
		{ASpec: "uniform:100:80:0.06", BSpec: "uniform:80:60:0.1", Seed: 1}, // repeat of #0
		{ASpec: "uniform:64:64:0.2", BSpec: "uniform:64:64:0.15", Seed: 4},
		{ASpec: "powerlaw:180:1200", BSpec: "dense:40", Seed: 2}, // repeat of #1
	}
	for i, req := range stream {
		status, want := postJSON(t, hsSingle+"/v1/analyze", req)
		if status != http.StatusOK {
			t.Fatalf("single node request %d: status %d", i, status)
		}
		// Alternate which member the client hits — routing must make the
		// entry point irrelevant.
		entry := nodes[i%len(nodes)]
		status, got := postJSON(t, entry.url+"/v1/analyze", req)
		if status != http.StatusOK {
			t.Fatalf("cluster request %d: status %d", i, status)
		}
		for _, f := range equivalenceFields {
			if fmt.Sprintf("%v", got[f]) != fmt.Sprintf("%v", want[f]) {
				t.Errorf("request %d field %q: cluster %v, single %v", i, f, got[f], want[f])
			}
		}
	}
}

// newLocalServer serves s on a loopback listener and returns its URL.
func newLocalServer(t *testing.T, s *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go func() { _ = hs.Serve(l) }()
	t.Cleanup(func() { _ = hs.Close() })
	return "http://" + l.Addr().String()
}
