package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// cachedServer builds a server over a copy of the shared test framework
// (enabling the cache must not leak into the other tests' framework).
func cachedServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	fw := *trainedFW(t)
	s := NewWithConfig(&fw, cfg)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

func getStats(t *testing.T, srv *httptest.Server) statsResponse {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var out statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestStatsEndpointUncached(t *testing.T) {
	srv := testServer(t)
	st := getStats(t, srv)
	if st.CacheEnabled {
		t.Fatal("uncached server reports cache_enabled")
	}
}

// TestCachedAnalyzeHitsAndStats: repeating one request against a cached
// server must hit the analysis cache, return the same deterministic
// outcome, and surface the counters on /v1/stats.
func TestCachedAnalyzeHitsAndStats(t *testing.T) {
	_, srv := cachedServer(t, Config{CacheBytes: 64 << 20})

	post := func() map[string]any {
		raw, _ := json.Marshal(map[string]any{
			"a_spec": "powerlaw:2000:8000", "b_spec": "dense:16", "seed": 3,
		})
		resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %v", resp.StatusCode, out)
		}
		return out
	}

	first := post()
	second := post()
	// The second request re-prices against a device that already loaded
	// the bitstream, so reconfigured/timing fields differ; everything
	// derived from the cached analysis must be identical.
	for _, k := range []string{"design", "simulated_ms", "predicted_ms",
		"pe_utilization", "energy_mj", "cpu_ms", "gpu_ms", "trapezoid_ms"} {
		if first[k] != second[k] {
			t.Errorf("%s: warm %v != cold %v", k, second[k], first[k])
		}
	}

	st := getStats(t, srv)
	if !st.CacheEnabled {
		t.Fatal("cached server reports cache_enabled=false")
	}
	if st.Cache.Misses != 1 || st.Cache.Hits < 1 {
		t.Errorf("cache stats = %+v, want exactly 1 miss and >=1 hit", st.Cache)
	}
	if st.Cache.Entries != 1 || st.Cache.ResidentBytes <= 0 {
		t.Errorf("cache residency = %+v, want 1 entry with positive bytes", st.Cache)
	}
	if st.Cache.BudgetBytes != 64<<20 {
		t.Errorf("budget = %d, want %d", st.Cache.BudgetBytes, int64(64<<20))
	}
}

// TestCachedBatchCoalesces: a batch of identical items on a cached
// server runs at most one simulation — the rest are hits or coalesced
// waiters.
func TestCachedBatchCoalesces(t *testing.T) {
	_, srv := cachedServer(t, Config{Devices: 4, CacheBytes: 64 << 20})

	item := map[string]any{"a_spec": "uniform:800:800:0.01", "b_spec": "dense:16", "seed": 9}
	raw, _ := json.Marshal(map[string]any{
		"items": []map[string]any{item, item, item, item, item, item},
	})
	resp, err := http.Post(srv.URL+"/v1/analyze/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Items []struct {
			Design string `json:"design"`
			Error  string `json:"error"`
		} `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 6 {
		t.Fatalf("got %d items, want 6", len(out.Items))
	}
	design := out.Items[0].Design
	for i, it := range out.Items {
		if it.Error != "" {
			t.Fatalf("item %d failed: %s", i, it.Error)
		}
		if it.Design != design {
			t.Errorf("item %d selected %s, item 0 selected %s", i, it.Design, design)
		}
	}
	st := getStats(t, srv)
	if st.Cache.Misses != 1 {
		t.Errorf("6 identical items ran %d simulations, want 1", st.Cache.Misses)
	}
	if st.Cache.Hits+st.Cache.Coalesced != 5 {
		t.Errorf("hits (%d) + coalesced (%d) = %d, want 5",
			st.Cache.Hits, st.Cache.Coalesced, st.Cache.Hits+st.Cache.Coalesced)
	}
}
