package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"misam"
)

// binBody concatenates the operands' wire encodings — the binary
// /v1/analyze body for one pair, or a batch body for several.
func binBody(ms ...*misam.Matrix) []byte {
	var buf []byte
	for _, m := range ms {
		buf = misam.AppendMatrixBinary(buf, m)
	}
	return buf
}

func postBinary(t *testing.T, url string, body []byte) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, BinaryContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestBinaryAnalyzeMatchesJSON: the binary format is a pure transport —
// the same operands ingested both ways produce identical analysis
// responses. Generator specs are deterministic, so the client-side
// encoding of the same (seed, params) matrices is the exact operand set
// the JSON request resolves server-side.
func TestBinaryAnalyzeMatchesJSON(t *testing.T) {
	srvJSON := testServer(t)
	srvBin := testServer(t) // fresh fleet: same initial bitstream state

	resp, want := postAnalyze(t, srvJSON, map[string]any{
		"a_spec": "uniform:300:300:0.02",
		"b_spec": "uniform:300:200:0.04",
		"seed":   7,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("JSON analyze status %d: %v", resp.StatusCode, want)
	}

	a := misam.RandUniform(7, 300, 300, 0.02)
	b := misam.RandUniform(8, 300, 200, 0.04) // server uses seed+1 for B
	bresp, got := postBinary(t, srvBin.URL+"/v1/analyze", binBody(a, b))
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("binary analyze status %d: %v", bresp.StatusCode, got)
	}

	// Every deterministic field must agree; wall-clock timings may not.
	for _, k := range []string{"design", "model_version", "reconfigured",
		"simulated_ms", "pe_utilization", "energy_mj", "cpu_ms", "gpu_ms", "trapezoid_ms"} {
		if want[k] != got[k] {
			t.Errorf("%s: JSON %v != binary %v", k, want[k], got[k])
		}
	}
}

// TestBinaryAnalyzeFastPath: binary ingestion through the zero-copy
// two-tier pipeline — repeated requests go warm (answered from the wire
// fingerprint) and keep returning the same design.
func TestBinaryAnalyzeFastPath(t *testing.T) {
	fw, err := misam.Train(misam.TrainOptions{CorpusSize: 80, MaxDim: 384, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(fw, Config{FastPath: true, Confidence: 0.5, CacheBytes: 8 << 20})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	a := misam.RandUniform(11, 400, 400, 0.02)
	b := misam.RandUniform(12, 400, 128, 0.05)
	body := binBody(a, b)

	first := ""
	for i := 0; i < 3; i++ {
		resp, out := postBinary(t, srv.URL+"/v1/analyze", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %v", i, resp.StatusCode, out)
		}
		design, _ := out["design"].(string)
		if design == "" {
			t.Fatalf("request %d: no design: %v", i, out)
		}
		if i == 0 {
			first = design
		} else if design != first {
			t.Fatalf("request %d: design %q != first %q", i, design, first)
		}
		if path, _ := out["path"].(string); path != "fast" && path != "full" {
			t.Fatalf("request %d: path %q", i, path)
		}
	}

	cs, ok := fw.CacheStats()
	if !ok || cs.FastHits < 2 {
		t.Fatalf("repeat binary requests did not hit the fast entries: %+v", cs)
	}
}

// TestBinaryBatch: a batch body is 2×N concatenated blobs; every item
// gets its own result.
func TestBinaryBatch(t *testing.T) {
	srv := testServer(t)
	a1 := misam.RandUniform(1, 200, 200, 0.03)
	b1 := misam.RandUniform(2, 200, 100, 0.05)
	a2 := misam.RandUniform(3, 150, 180, 0.04)
	b2 := misam.RandUniform(4, 180, 90, 0.06)
	resp, err := http.Post(srv.URL+"/v1/analyze/batch", BinaryContentType,
		bytes.NewReader(binBody(a1, b1, a2, b2)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out struct {
		Items []struct {
			Design string `json:"design"`
			Error  string `json:"error"`
		} `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 2 {
		t.Fatalf("got %d items, want 2", len(out.Items))
	}
	for i, it := range out.Items {
		if it.Error != "" || it.Design == "" {
			t.Fatalf("item %d: %+v", i, it)
		}
	}
}

// TestBinaryRejectsMalformed: framing violations at the ingest boundary
// are client errors, never 500s.
func TestBinaryRejectsMalformed(t *testing.T) {
	srv := testServer(t)
	a := misam.RandUniform(1, 60, 60, 0.1)
	b := misam.RandUniform(2, 60, 40, 0.1)
	good := binBody(a, b)

	cases := map[string][]byte{
		"empty body":         {},
		"one blob only":      binBody(a),
		"truncated":          good[:len(good)-9],
		"trailing garbage":   append(append([]byte{}, good...), 0xEE),
		"corrupt magic":      append([]byte{'X'}, good[1:]...),
		"dimension mismatch": binBody(a, misam.RandUniform(3, 77, 40, 0.1)),
	}
	for name, body := range cases {
		resp, out := postBinary(t, srv.URL+"/v1/analyze", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%v)", name, resp.StatusCode, out)
		}
		if msg, _ := out["error"].(string); msg == "" {
			t.Errorf("%s: no error message", name)
		}
	}

	// Batch: a malformed pair mid-body names the failing item.
	resp, out := postBinary(t, srv.URL+"/v1/analyze/batch", append(append([]byte{}, good...), good[:40]...))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated batch: status %d (%v)", resp.StatusCode, out)
	}
}

// TestBinaryDisabled: DisableBinary turns the format away with 415.
func TestBinaryDisabled(t *testing.T) {
	fw, err := misam.Train(misam.TrainOptions{CorpusSize: 80, MaxDim: 384, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(fw, Config{DisableBinary: true})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	a := misam.RandUniform(1, 50, 50, 0.1)
	resp, out := postBinary(t, srv.URL+"/v1/analyze", binBody(a, a))
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("status %d, want 415 (%v)", resp.StatusCode, out)
	}
	// JSON still works on the same server.
	jresp, jout := postAnalyze(t, srv, map[string]any{"a_spec": "uniform:100:100:0.05", "b_spec": "dense:32", "seed": 3})
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("JSON on binary-disabled server: status %d: %v", jresp.StatusCode, jout)
	}
}

// TestInvalidMatrixMarketRejected: the JSON ingest boundary
// invariant-checks parsed documents and answers 400 with the named
// error, not a panic or a 500 from deep inside the pipeline.
func TestInvalidMatrixMarketRejected(t *testing.T) {
	srv := testServer(t)
	// Entry (4,4) is out of range for the declared 3x3 shape. (Duplicate
	// entries are coalesced by Normalize before validation, so the
	// violations that reach the boundary are range violations.)
	const mtx = `%%MatrixMarket matrix coordinate real general
3 3 3
1 1 1.0
2 2 2.0
4 4 3.0
`
	resp, out := postAnalyze(t, srv, map[string]any{"a_mtx": mtx, "b_spec": "dense:8"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (%v)", resp.StatusCode, out)
	}
}

// nullResponseWriter is a no-op sink for encode benchmarks.
type nullResponseWriter struct{ h http.Header }

func (n *nullResponseWriter) Header() http.Header         { return n.h }
func (n *nullResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (n *nullResponseWriter) WriteHeader(int)             {}

// BenchmarkWriteJSONPooled pins the pooled response encoding: steady
// state allocates only what encoding/json itself needs per value, with
// no per-request buffer or encoder allocations on top.
func BenchmarkWriteJSONPooled(b *testing.B) {
	resp := buildResponse(misam.Report{}, misam.BaselineComparison{})
	w := &nullResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		writeJSON(w, http.StatusOK, resp)
	}
}
