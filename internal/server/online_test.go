package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"misam"
	"misam/internal/mltree"
	"misam/internal/online"
	"misam/internal/registry"
	"misam/internal/sim"
)

// sabotageModel trains a label-rotated selector on the framework's own
// corpus and publishes it, simulating a live model that has gone stale:
// it proposes the wrong design for essentially every workload while the
// latency regressors stay intact.
func sabotageModel(t *testing.T, fw *misam.Framework) uint64 {
	t.Helper()
	x, labels := fw.Corpus.X(), fw.Corpus.Labels()
	rot := make([]int, len(labels))
	for i, l := range labels {
		rot[i] = (l + 1) % int(sim.NumDesigns)
	}
	cls, err := mltree.TrainClassifier(x, rot, int(sim.NumDesigns), nil, mltree.Config{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	cur := fw.Registry().Current()
	bad, err := registry.NewSnapshot(cls, cur.Engine(), registry.Info{
		Source: registry.SourceTrain, Note: "label-rotated (test sabotage)",
	})
	if err != nil {
		t.Fatal(err)
	}
	return fw.Registry().Publish(bad)
}

func mustPost(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// traceAccuracy computes predicted-vs-argmin accuracy over the traces
// served by one model version.
func traceAccuracy(traces []online.Trace, version uint64) (acc float64, n int) {
	correct := 0
	for _, tr := range traces {
		if tr.ModelVersion != version {
			continue
		}
		n++
		if tr.Predicted == tr.Best {
			correct++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(correct) / float64(n), n
}

// TestOnlineAdaptationE2E drives the full loop over HTTP: a sabotaged
// model serves a workload stream that shifts dense-ish → power-law, the
// drift detector fires, POST /v1/models/retrain trains a candidate on
// the captured traces and shadow-evaluates it, promotion happens only
// because the candidate's geomean beats the incumbent's, accuracy
// improves after the promotion, and no request fails during the
// hot-swap.
func TestOnlineAdaptationE2E(t *testing.T) {
	fw, err := misam.Train(misam.TrainOptions{CorpusSize: 80, MaxDim: 384, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithConfig(fw, Config{
		Devices:       2,
		Online:        true,
		TraceSample:   1,
		TraceCapacity: 1024,
		OnlineConfig: online.Config{
			Drift:   online.DriftConfig{Window: 48, MinSamples: 24, AccuracyDrop: 0.20},
			Retrain: online.RetrainConfig{MinTraces: 40, Seed: 7},
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The baseline was frozen from the healthy v1 model at construction;
	// now the stale model takes over serving.
	badVer := sabotageModel(t, fw)
	if badVer != 2 {
		t.Fatalf("sabotage published as v%d, want v2", badVer)
	}

	analyze := func(spec string, seed int64) (*http.Response, []byte) {
		return mustPost(t, ts.URL+"/v1/analyze", map[string]any{
			"a_spec": spec, "b_spec": "self", "seed": seed,
		})
	}

	// Phase 1: dense-ish uniform traffic. Phase 2: power-law graph
	// matrices — the §5 workload shift that changes the winning dataflow.
	for i := 0; i < 24; i++ {
		resp, body := analyze(fmt.Sprintf("uniform:%d:%d:0.3", 80+i, 80+i), int64(i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("phase-1 request %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	for i := 0; i < 36; i++ {
		resp, body := analyze(fmt.Sprintf("powerlaw:%d:%d", 120+4*i, 900+16*i), int64(100+i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("phase-2 request %d: status %d: %s", i, resp.StatusCode, body)
		}
	}

	// The served reports must carry the sabotaged version.
	_, body := analyze("uniform:64:64:0.2", 999)
	var one struct {
		ModelVersion uint64 `json:"model_version"`
	}
	json.Unmarshal(body, &one)
	if one.ModelVersion != badVer {
		t.Errorf("served by v%d, want the sabotaged v%d", one.ModelVersion, badVer)
	}

	// Drift must have a trip available: the stale model's window accuracy
	// collapsed against the healthy baseline (and the power-law shift
	// moves the feature marginals too).
	rep := srv.Manager().CheckDrift()
	if !rep.Drifted {
		t.Fatalf("drift detector silent after shift + sabotage: %+v", rep)
	}

	// /v1/stats surfaces the collector (with its drop counter) and the
	// adaptation state.
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var statsBuf bytes.Buffer
	statsBuf.ReadFrom(statsResp.Body)
	statsResp.Body.Close()
	body = statsBuf.Bytes()
	var stats struct {
		ModelVersion uint64                 `json:"model_version"`
		Online       bool                   `json:"online"`
		Traces       *online.CollectorStats `json:"traces"`
		Adaptation   *online.ManagerStats   `json:"adaptation"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("stats decode: %v: %s", err, body)
	}
	if !stats.Online || stats.ModelVersion != badVer {
		t.Errorf("stats = %s, want online=true model_version=%d", body, badVer)
	}
	if stats.Traces == nil || stats.Traces.Sampled < 40 {
		t.Fatalf("stats traces = %+v, want >= 40 sampled", stats.Traces)
	}
	if stats.Traces.Dropped != 0 {
		t.Errorf("dropped = %d with an unsaturated buffer", stats.Traces.Dropped)
	}
	if !bytes.Contains(body, []byte(`"dropped"`)) {
		t.Error("stats JSON does not expose the trace drop counter")
	}

	// Retrain over HTTP while concurrent traffic hammers the hot-swap:
	// every request during the promotion must succeed.
	var failed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, _ := analyze("uniform:72:72:0.25", int64(g*1000+i))
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
				}
			}
		}(g)
	}

	retrainResp, retrainBody := mustPost(t, ts.URL+"/v1/models/retrain", nil)
	close(stop)
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d requests failed during the retrain/hot-swap", n)
	}
	if retrainResp.StatusCode != http.StatusOK {
		t.Fatalf("retrain: status %d: %s", retrainResp.StatusCode, retrainBody)
	}
	var rr struct {
		Outcome online.Outcome `json:"outcome"`
		Current uint64         `json:"current"`
	}
	if err := json.Unmarshal(retrainBody, &rr); err != nil {
		t.Fatal(err)
	}

	// The gate's invariant: promotion iff the candidate's geomean beats
	// the incumbent's. Against a label-rotated incumbent the candidate
	// trained on ground-truth traces must win.
	if !rr.Outcome.Promote {
		t.Fatalf("candidate not promoted over a sabotaged incumbent: %+v", rr.Outcome)
	}
	if rr.Outcome.CandidateGeomean >= rr.Outcome.IncumbentGeomean {
		t.Errorf("promoted with geomean %.4f >= incumbent %.4f — gate violated",
			rr.Outcome.CandidateGeomean, rr.Outcome.IncumbentGeomean)
	}
	if rr.Outcome.CandidateAccuracy <= rr.Outcome.IncumbentAccuracy {
		t.Errorf("shadow accuracy did not improve: candidate %.3f vs incumbent %.3f",
			rr.Outcome.CandidateAccuracy, rr.Outcome.IncumbentAccuracy)
	}
	if rr.Current != rr.Outcome.CandidateVersion || rr.Current <= badVer {
		t.Errorf("current v%d after promotion, want the candidate v%d",
			rr.Current, rr.Outcome.CandidateVersion)
	}

	// Post-promotion traffic is served by the new model and its live
	// accuracy beats the sabotaged era's.
	for i := 0; i < 16; i++ {
		resp, _ := analyze(fmt.Sprintf("powerlaw:%d:%d", 140+4*i, 1000+16*i), int64(500+i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-promotion request %d failed", i)
		}
	}
	traces := srv.Manager().Collector().Snapshot()
	oldAcc, oldN := traceAccuracy(traces, badVer)
	newAcc, newN := traceAccuracy(traces, rr.Current)
	if oldN == 0 || newN == 0 {
		t.Fatalf("missing traces per era: %d old, %d new", oldN, newN)
	}
	if newAcc <= oldAcc {
		t.Errorf("post-promotion accuracy %.3f (n=%d) did not improve on %.3f (n=%d)",
			newAcc, newN, oldAcc, oldN)
	}

	// Registry listing over HTTP shows the full lineage.
	r, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models struct {
		Current   uint64          `json:"current"`
		Snapshots []registry.Info `json:"snapshots"`
	}
	json.NewDecoder(r.Body).Decode(&models)
	r.Body.Close()
	if models.Current != rr.Current || len(models.Snapshots) != 3 {
		t.Fatalf("models = %+v, want current v%d over 3 snapshots", models, rr.Current)
	}
	if models.Snapshots[2].Source != registry.SourceRetrain {
		t.Errorf("promoted snapshot source %q, want %q", models.Snapshots[2].Source, registry.SourceRetrain)
	}
	if models.Snapshots[2].Metrics.GeomeanSlowdown != rr.Outcome.CandidateGeomean {
		t.Error("promoted snapshot does not carry its shadow metrics")
	}

	// Rollback endpoint walks the publish order backward and 409s at the
	// floor.
	for wantVer := rr.Current - 1; ; wantVer-- {
		resp, body := mustPost(t, ts.URL+"/v1/models/rollback", nil)
		if wantVer < 1 {
			if resp.StatusCode != http.StatusConflict {
				t.Fatalf("rollback past the floor: status %d: %s", resp.StatusCode, body)
			}
			break
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rollback to v%d: status %d: %s", wantVer, resp.StatusCode, body)
		}
		var rb struct {
			Current uint64 `json:"current"`
		}
		json.Unmarshal(body, &rb)
		if rb.Current != wantVer {
			t.Fatalf("rollback landed on v%d, want v%d", rb.Current, wantVer)
		}
	}
}

// TestRetrainEndpointDisabled asserts the retrain route 409s when online
// mode is off.
func TestRetrainEndpointDisabled(t *testing.T) {
	srv := testServer(t)
	resp, body := mustPost(t, srv.URL+"/v1/models/retrain", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
}

// TestModelsEndpointOfflineServer asserts the registry routes work even
// without online mode: every framework has a registry.
func TestModelsEndpointOfflineServer(t *testing.T) {
	srv := testServer(t)
	r, err := http.Get(srv.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var models struct {
		Current   uint64          `json:"current"`
		Snapshots []registry.Info `json:"snapshots"`
	}
	if err := json.NewDecoder(r.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	if models.Current < 1 || len(models.Snapshots) < 1 {
		t.Errorf("models = %+v, want at least the initial snapshot", models)
	}
}
