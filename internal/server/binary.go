package server

// Binary ingestion for the analyze endpoints. A request with
// Content-Type application/x-misam-csr carries its operands as
// concatenated length-prefixed CSR blobs (misam.EncodeMatrixBinary):
// exactly two for /v1/analyze, 2×N pairs for /v1/analyze/batch.
// Responses stay JSON in both cases.
//
// The payoff over MatrixMarket-over-JSON is structural: the body parses
// with header reads only (validation walks integer words in place), the
// decoded matrices alias the pooled request buffer on aligned
// little-endian hosts, and on the fast-path tier a warm request is
// answered from the wire fingerprint without materializing operands at
// all. Per-request state (body buffer, CSR arenas, fused-extraction
// grids) is pooled, so a steady-state binary request performs no
// ingestion allocations.
//
// Aliasing discipline: matrices decoded via DecodeInto live exactly as
// long as the request's body buffer. The pipelines that retain operand
// references beyond the response — AnalyzeFastOn's background verify
// sample under FastPath+Placement — get DecodeCopy instead. The
// fast-wire path (FastPath without Placement) handles its own audit
// copies inside AnalyzeFastWire.

import (
	"context"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"sync"

	"misam"
)

// BinaryContentType negotiates binary ingestion on the analyze
// endpoints.
const BinaryContentType = "application/x-misam-csr"

// binaryRequest reports whether r negotiates the binary wire format, and
// rejects it when the deployment disabled it.
func (s *Server) binaryRequest(r *http.Request) (bool, *httpError) {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return false, nil
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil || mt != BinaryContentType {
		return false, nil
	}
	if s.cfg.DisableBinary {
		return false, &httpError{http.StatusUnsupportedMediaType,
			fmt.Errorf("binary ingestion is disabled on this server")}
	}
	return true, nil
}

// scratchPool recycles per-item decode state (CSR arenas + fused
// extraction grids).
var scratchPool = sync.Pool{New: func() any { return new(misam.WireScratch) }}

// parsePair validates the two operand blobs at the front of body,
// returning their views and the remaining bytes.
func parsePair(body []byte) (va, vb misam.WireView, rest []byte, herr *httpError) {
	va, rest, err := misam.ParseWireMatrix(body)
	if err != nil {
		return va, vb, nil, &httpError{http.StatusBadRequest, fmt.Errorf("matrix A: %w", err)}
	}
	vb, rest, err = misam.ParseWireMatrix(rest)
	if err != nil {
		return va, vb, nil, &httpError{http.StatusBadRequest, fmt.Errorf("matrix B: %w", err)}
	}
	return va, vb, rest, nil
}

// analyzeOneBinary serves one parsed operand pair. The views alias the
// request body buffer, which the caller keeps alive until the response
// is written.
func (s *Server) analyzeOneBinary(ctx context.Context, va, vb misam.WireView) (analyzeResponse, *httpError) {
	scratch := scratchPool.Get().(*misam.WireScratch)
	defer scratchPool.Put(scratch)

	if s.cfg.FastPath && !s.cfg.Placement {
		// The zero-copy tier: warm hits answer from the wire fingerprint
		// alone; misses decode into the pooled scratch and extract features
		// in one fused pass.
		var rep misam.Report
		var cmp misam.BaselineComparison
		err := s.withDevice(ctx, nil, func(dev *misam.Accelerator) error {
			var err error
			rep, cmp, err = s.fw.AnalyzeFastWire(ctx, dev, va, vb, scratch)
			return err
		})
		if err != nil {
			if errors.Is(err, misam.ErrWire) {
				return analyzeResponse{}, &httpError{http.StatusBadRequest, err}
			}
			return analyzeResponse{}, &httpError{statusFor(err), err}
		}
		return buildResponse(rep, cmp), nil
	}

	// Remaining pipelines consume a materialized workload. FastPath with
	// Placement routes through AnalyzeFastOn, whose sampled verify job
	// retains the workload past the response — those operands must own
	// their memory. Every other pipeline finishes with the request, so the
	// scratch-arena (and, where alignment allows, aliasing) decode is safe.
	var a, b *misam.Matrix
	if s.cfg.FastPath {
		a, b = va.DecodeCopy(), vb.DecodeCopy()
	} else {
		a, b = scratch.DecodeA(va), scratch.DecodeB(vb)
	}
	wl, err := misam.NewWorkload(a, b)
	if err != nil {
		return analyzeResponse{}, &httpError{http.StatusBadRequest,
			fmt.Errorf("%w: dimension mismatch: A is %dx%d, B is %dx%d",
				misam.ErrWire, a.Rows, a.Cols, b.Rows, b.Cols)}
	}
	return s.analyzeWorkload(ctx, wl)
}

func (s *Server) handleAnalyzeBinary(w http.ResponseWriter, r *http.Request) {
	body, herr := s.readBody(w, r)
	if herr != nil {
		writeErr(w, herr.status, herr.err)
		return
	}
	// Decoded matrices alias the body buffer: keep it out of the pool
	// until the response is fully written.
	defer putBody(body)

	va, vb, rest, herr := parsePair(body.Bytes())
	if herr != nil {
		writeErr(w, herr.status, herr.err)
		return
	}
	if len(rest) != 0 {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("%w: %d trailing bytes after two operand blobs", misam.ErrWire, len(rest)))
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	// Cluster routing happens on the wire fingerprints alone: the owner
	// lookup decodes nothing, and a forwarded body is proxied byte for
	// byte — the owner node re-parses the identical blobs.
	if !s.forwardedIn(r) &&
		s.maybeForward(ctx, w, "/v1/analyze", BinaryContentType, body.Bytes(), s.fw.WireKey(va, vb)) {
		return
	}
	resp, herr := s.analyzeOneBinary(ctx, va, vb)
	if herr != nil {
		writeErr(w, herr.status, herr.err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAnalyzeBatchBinary(w http.ResponseWriter, r *http.Request) {
	body, herr := s.readBody(w, r)
	if herr != nil {
		writeErr(w, herr.status, herr.err)
		return
	}
	defer putBody(body)

	// The whole body parses up front: batch semantics (item count limits,
	// malformed framing) are validated before any device work starts.
	// raw keeps each item's contiguous slice of the body so a peer-owned
	// item forwards its original bytes with no re-encode.
	type pair struct {
		a, b misam.WireView
		raw  []byte
	}
	var pairs []pair
	all := body.Bytes()
	rest := all
	if len(rest) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("batch has no items"))
		return
	}
	for len(rest) > 0 {
		if len(pairs) == s.cfg.MaxBatchItems {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("batch exceeds %d items", s.cfg.MaxBatchItems))
			return
		}
		start := len(all) - len(rest)
		va, vb, next, herr := parsePair(rest)
		if herr != nil {
			herr.err = fmt.Errorf("item %d: %w", len(pairs), herr.err)
			writeErr(w, herr.status, herr.err)
			return
		}
		pairs = append(pairs, pair{va, vb, all[start : len(all)-len(next)]})
		rest = next
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	forwarded := s.forwardedIn(r)
	out := batchResponse{Items: make([]batchItemResponse, len(pairs))}
	var wg sync.WaitGroup
	for i := range pairs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if s.cluster != nil && !forwarded {
				if resp, ok := s.routeItem(ctx, BinaryContentType, pairs[i].raw,
					s.fw.WireKey(pairs[i].a, pairs[i].b)); ok {
					out.Items[i] = batchItemResponse{analyzeResponse: resp}
					return
				}
			}
			resp, herr := s.analyzeOneBinary(ctx, pairs[i].a, pairs[i].b)
			if herr != nil {
				out.Items[i] = batchItemResponse{Error: herr.Error()}
				return
			}
			out.Items[i] = batchItemResponse{analyzeResponse: resp}
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, out)
}
