package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestPlacementStatsAndFleetEndpoint wires the placement config through
// the HTTP surface: analyze requests go through cost-model acquisition,
// /v1/stats grows a placement block whose accounting balances, and
// /v1/fleet reports per-device reconfigs_avoided.
func TestPlacementStatsAndFleetEndpoint(t *testing.T) {
	s := NewWithConfig(trainedFW(t), Config{
		Devices:           3,
		Placement:         true,
		RebalanceInterval: time.Hour, // loop exists but never ticks mid-test
	})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	const requests = 18
	var wg sync.WaitGroup
	for g := 0; g < requests; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			body := map[string]any{"a_spec": "uniform:300:300:0.02", "b_spec": "dense:16", "seed": g % 3}
			raw, _ := json.Marshal(body)
			resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", bytes.NewReader(raw))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", g, resp.StatusCode)
			}
		}(g)
	}
	wg.Wait()

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Placement *struct {
			Enabled bool `json:"enabled"`
			Fleet   struct {
				Acquires     int64 `json:"acquires"`
				Preferred    int64 `json:"preferred"`
				AffinityHits int64 `json:"affinity_hits"`
				AffinityMiss int64 `json:"affinity_misses"`
			} `json:"fleet"`
			Reconfigs struct {
				Paid    int64 `json:"paid"`
				Avoided int64 `json:"avoided"`
			} `json:"reconfigs"`
			Rebalancer *struct {
				Ticks int64 `json:"ticks"`
			} `json:"rebalancer"`
			DemandN int64 `json:"demand_n"`
		} `json:"placement"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	p := stats.Placement
	if p == nil || !p.Enabled {
		t.Fatal("/v1/stats has no enabled placement block with -placement on")
	}
	if p.Fleet.Acquires < requests {
		t.Errorf("placement pool acquires = %d, want >= %d", p.Fleet.Acquires, requests)
	}
	if p.Fleet.Preferred == 0 {
		t.Error("no acquisition went through the placement scorer")
	}
	if p.Fleet.AffinityHits+p.Fleet.AffinityMiss != p.Fleet.Preferred {
		t.Errorf("affinity accounting broken: %d hits + %d misses != %d preferred",
			p.Fleet.AffinityHits, p.Fleet.AffinityMiss, p.Fleet.Preferred)
	}
	if p.Fleet.AffinityHits != p.Reconfigs.Avoided {
		t.Errorf("pool hits (%d) disagree with device avoided sum (%d)",
			p.Fleet.AffinityHits, p.Reconfigs.Avoided)
	}
	if p.Rebalancer == nil {
		t.Error("rebalancer stats missing with -rebalance-interval set")
	}
	if p.DemandN < requests {
		t.Errorf("demand observations = %d, want >= %d (placement must feed the demand EWMA)",
			p.DemandN, requests)
	}

	fresp, err := http.Get(srv.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	var devices []struct {
		Name             string `json:"name"`
		ReconfigsAvoided int64  `json:"reconfigs_avoided"`
	}
	if err := json.NewDecoder(fresp.Body).Decode(&devices); err != nil {
		t.Fatal(err)
	}
	if len(devices) != 3 {
		t.Fatalf("fleet endpoint lists %d devices, want 3", len(devices))
	}
	var avoided int64
	for _, d := range devices {
		avoided += d.ReconfigsAvoided
	}
	if avoided != p.Reconfigs.Avoided {
		t.Errorf("/v1/fleet avoided sum %d != /v1/stats avoided %d", avoided, p.Reconfigs.Avoided)
	}
}

// TestStatsOmitsPlacementWhenOff pins the compatibility contract: a
// server without Placement serves through the plain FIFO pool and the
// stats payload carries no placement block at all.
func TestStatsOmitsPlacementWhenOff(t *testing.T) {
	s := NewWithConfig(trainedFW(t), Config{Devices: 1})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, present := raw["placement"]; present {
		t.Error("placement block present with placement off")
	}
}
