package online

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"misam/internal/features"
	"misam/internal/mltree"
	"misam/internal/reconfig"
	"misam/internal/registry"
	"misam/internal/sim"
)

func TestCollectorSampling(t *testing.T) {
	c := NewCollector(100, 3)
	admitted := 0
	for i := 0; i < 30; i++ {
		if c.Observe(Trace{}) {
			admitted++
		}
	}
	if admitted != 10 {
		t.Errorf("1-in-3 sampler admitted %d of 30, want 10", admitted)
	}
	st := c.Stats()
	if st.Observed != 30 || st.Sampled != 10 || st.Resident != 10 || st.Dropped != 0 {
		t.Errorf("stats = %+v, want observed 30, sampled 10, resident 10, dropped 0", st)
	}
}

func TestCollectorDropsOldestWhenFull(t *testing.T) {
	c := NewCollector(4, 1)
	for i := 0; i < 10; i++ {
		c.Observe(Trace{ModelVersion: uint64(i)})
	}
	st := c.Stats()
	if st.Dropped != 6 {
		t.Errorf("dropped = %d, want 6 (10 admitted into capacity 4)", st.Dropped)
	}
	if st.Resident != 4 {
		t.Errorf("resident = %d, want 4", st.Resident)
	}
	snap := c.Snapshot()
	for i, tr := range snap {
		if want := uint64(6 + i); tr.ModelVersion != want {
			t.Errorf("snapshot[%d].ModelVersion = %d, want %d (oldest-first, newest retained)",
				i, tr.ModelVersion, want)
		}
	}
	if w := c.Window(2); len(w) != 2 || w[1].ModelVersion != 9 {
		t.Errorf("Window(2) = %+v, want the two newest traces", w)
	}
}

// synthTrace builds a trace in one of two regimes. Regime A puts
// feature0 near 0 and its best design is Design1; regime B puts feature0
// near 10 and favors Design3. The live model's prediction is controlled
// by correct.
func synthTrace(rng *rand.Rand, regimeB bool, correct bool) Trace {
	var tr Trace
	for f := 0; f < features.NumFeatures; f++ {
		tr.Features[f] = rng.Float64()
	}
	tr.Best = sim.Design1
	if regimeB {
		tr.Features[0] = 10 + rng.Float64()
		tr.Best = sim.Design3
	}
	for id := range tr.Seconds {
		tr.Seconds[id] = 2e-3 + float64(id)*1e-3
	}
	// Make Best the argmin by a wide margin.
	tr.Seconds[tr.Best] = 1e-3
	tr.Predicted = tr.Best
	if !correct {
		tr.Predicted = (tr.Best + 1) % sim.NumDesigns
		// A wrong pick costs real time, so shadowEval sees a slowdown.
		tr.Seconds[tr.Predicted] = 5e-3
	}
	tr.Cycles = [sim.NumDesigns]int64{100, 200, 300, 400}
	return tr
}

func synthTraces(seed int64, n int, regimeB bool, correct bool) []Trace {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Trace, n)
	for i := range out {
		out[i] = synthTrace(rng, regimeB, correct)
	}
	return out
}

func TestDriftSilentOnStableTraffic(t *testing.T) {
	base, err := BaselineFromTraces(synthTraces(1, 400, false, true))
	if err != nil {
		t.Fatal(err)
	}
	rep := base.Detect(synthTraces(2, 200, false, true), DriftConfig{Window: 128, MinSamples: 32})
	if rep.Drifted {
		t.Errorf("detector fired on stable traffic: %+v", rep)
	}
	if rep.MaxPSI > 0.25 {
		t.Errorf("max PSI %.3f on same-distribution traffic, expected < 0.25", rep.MaxPSI)
	}
}

func TestDriftFiresOnCovariateShift(t *testing.T) {
	base, err := BaselineFromTraces(synthTraces(1, 400, false, true))
	if err != nil {
		t.Fatal(err)
	}
	// Regime B moves feature0 far outside the baseline deciles; the model
	// still predicts correctly, so only the PSI signal can fire.
	rep := base.Detect(synthTraces(2, 200, true, true), DriftConfig{Window: 128, MinSamples: 32})
	if !rep.Drifted {
		t.Fatalf("detector silent on a shifted distribution: %+v", rep)
	}
	if rep.MaxPSI <= 0.25 {
		t.Errorf("max PSI %.3f, expected > 0.25 after the shift", rep.MaxPSI)
	}
	found := false
	for _, reason := range rep.Reasons {
		if strings.Contains(reason, "PSI") {
			found = true
		}
	}
	if !found {
		t.Errorf("reasons %v do not name the PSI trip", rep.Reasons)
	}
}

func TestDriftFiresOnAccuracyDrop(t *testing.T) {
	base, err := BaselineFromTraces(synthTraces(1, 400, false, true))
	if err != nil {
		t.Fatal(err)
	}
	// Same feature distribution, but the model now guesses wrong — label
	// drift without covariate drift.
	rep := base.Detect(synthTraces(2, 200, false, false), DriftConfig{Window: 128, MinSamples: 32})
	if !rep.Drifted {
		t.Fatalf("detector silent on an accuracy collapse: %+v", rep)
	}
	if rep.WindowAccuracy != 0 {
		t.Errorf("window accuracy %.3f, want 0 (every prediction wrong)", rep.WindowAccuracy)
	}
}

func TestDriftBelowMinSamples(t *testing.T) {
	base, err := BaselineFromTraces(synthTraces(1, 400, false, true))
	if err != nil {
		t.Fatal(err)
	}
	rep := base.Detect(synthTraces(2, 10, true, false), DriftConfig{Window: 128, MinSamples: 64})
	if rep.Drifted {
		t.Errorf("detector judged %d traces below MinSamples 64", rep.Samples)
	}
	if len(rep.Reasons) == 0 {
		t.Error("below-minimum report should say why it abstained")
	}
}

// incumbentSnapshot trains a deliberately bad incumbent: a selector fit
// on traces whose labels are all Design2 regardless of features, plus
// working regressors.
func incumbentSnapshot(t testing.TB, good bool) *registry.Snapshot {
	t.Helper()
	traces := append(synthTraces(7, 60, false, true), synthTraces(8, 60, true, true)...)
	x := make([][]float64, len(traces))
	y := make([]int, len(traces))
	ry := make([]float64, len(traces))
	for i := range traces {
		x[i] = traces[i].Features.Slice()
		if good {
			y[i] = int(traces[i].Best)
		} else {
			// Constant-ish labels: force a near-useless selector by
			// swapping the two regimes' labels.
			y[i] = int((traces[i].Best + 1) % sim.NumDesigns)
		}
		ry[i] = -1
	}
	cls, err := mltree.TrainClassifier(x, y, int(sim.NumDesigns), nil, mltree.Config{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	pred := &reconfig.LatencyPredictor{}
	for _, id := range sim.AllDesigns {
		reg, err := mltree.TrainRegressor(x, ry, mltree.Config{MaxDepth: 2})
		if err != nil {
			t.Fatal(err)
		}
		pred.Regs[id] = reg
	}
	s, err := registry.NewSnapshot(cls, reconfig.NewEngine(pred, reconfig.DefaultTimeModel(), 0.2),
		registry.Info{Source: registry.SourceTrain})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRetrainPromotesWhenCandidateWins(t *testing.T) {
	incumbent := incumbentSnapshot(t, false)
	traces := append(synthTraces(11, 80, false, true), synthTraces(12, 80, true, true)...)
	cand, out, err := Retrain(incumbent, traces, RetrainConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Promote {
		t.Fatalf("candidate should beat a label-swapped incumbent: %+v", out)
	}
	if cand == nil || cand.Version() != 0 {
		t.Error("candidate should be returned unpublished (version 0)")
	}
	if out.CandidateGeomean >= out.IncumbentGeomean {
		t.Errorf("promoted with geomean %.4f >= incumbent %.4f", out.CandidateGeomean, out.IncumbentGeomean)
	}
	if out.CandidateAccuracy <= out.IncumbentAccuracy {
		t.Errorf("promoted candidate accuracy %.3f <= incumbent %.3f",
			out.CandidateAccuracy, out.IncumbentAccuracy)
	}
	if m := cand.Info().Metrics; m.GeomeanSlowdown != out.CandidateGeomean || m.Accuracy != out.CandidateAccuracy {
		t.Errorf("candidate metrics %+v do not match outcome %+v", m, out)
	}
	if out.TrainTraces+out.HoldoutTraces != len(traces) {
		t.Errorf("split %d+%d does not cover %d traces", out.TrainTraces, out.HoldoutTraces, len(traces))
	}
}

func TestRetrainRejectsWhenIncumbentHolds(t *testing.T) {
	incumbent := incumbentSnapshot(t, true)
	traces := append(synthTraces(11, 80, false, true), synthTraces(12, 80, true, true)...)
	_, out, err := Retrain(incumbent, traces, RetrainConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Promote {
		t.Fatalf("candidate promoted over an already-perfect incumbent: %+v", out)
	}
	if out.Reason == "" {
		t.Error("rejection must carry a reason")
	}
}

func TestRetrainNeedsEnoughTraces(t *testing.T) {
	incumbent := incumbentSnapshot(t, true)
	_, _, err := Retrain(incumbent, synthTraces(1, 10, false, true), RetrainConfig{MinTraces: 48})
	if err == nil {
		t.Fatal("retrain accepted 10 traces with MinTraces 48")
	}
	if !strings.Contains(err.Error(), "need 48") {
		t.Errorf("error %q does not name the required trace count", err)
	}
}

func TestManagerSelfCalibratesAndRetrains(t *testing.T) {
	col := NewCollector(512, 1)
	reg := registry.New(incumbentSnapshot(t, false))
	mgr := NewManager(reg, col, nil, Config{
		Drift:   DriftConfig{Window: 64, MinSamples: 32},
		Retrain: RetrainConfig{Seed: 5},
	})
	defer mgr.Close()

	// Below a full window: still calibrating, never drifted.
	for _, tr := range synthTraces(21, 32, false, true) {
		col.Observe(tr)
	}
	if rep := mgr.CheckDrift(); rep.Drifted {
		t.Fatalf("drift before calibration: %+v", rep)
	}
	if mgr.Stats().Calibrated {
		t.Fatal("calibrated flag set before a full window arrived")
	}

	// Complete the window: the manager freezes the reference.
	for _, tr := range synthTraces(22, 32, false, true) {
		col.Observe(tr)
	}
	mgr.CheckDrift()
	if !mgr.Stats().Calibrated {
		t.Fatal("manager did not self-calibrate on a full window")
	}

	// Shift the regime: drift should fire.
	for _, tr := range synthTraces(23, 64, true, true) {
		col.Observe(tr)
	}
	rep := mgr.CheckDrift()
	if !rep.Drifted {
		t.Fatalf("drift not detected after regime shift: %+v", rep)
	}

	out, err := mgr.RetrainNow("test drift")
	if err != nil {
		t.Fatal(err)
	}
	st := mgr.Stats()
	if st.Retrains != 1 {
		t.Errorf("retrains = %d, want 1", st.Retrains)
	}
	if out.Promote {
		if st.Promotions != 1 || reg.Current().Version() != out.CandidateVersion {
			t.Errorf("promotion not reflected: stats %+v, current v%d", st, reg.Current().Version())
		}
		if reg.Current().Info().Note != "test drift" {
			t.Errorf("promoted snapshot note = %q, want the drift reason", reg.Current().Info().Note)
		}
	} else if st.Rejections != 1 {
		t.Errorf("rejection not counted: %+v", st)
	}
	if st.LastOutcome == nil || st.LastDrift == nil {
		t.Error("stats should retain the last drift report and outcome")
	}
}

func TestManagerSingleFlightRetrain(t *testing.T) {
	col := NewCollector(512, 1)
	for _, tr := range append(synthTraces(31, 80, false, true), synthTraces(32, 80, true, true)...) {
		col.Observe(tr)
	}
	reg := registry.New(incumbentSnapshot(t, false))
	mgr := NewManager(reg, col, nil, Config{Retrain: RetrainConfig{Seed: 9}})
	defer mgr.Close()

	// Hold the retrain lock by marking retraining manually through a
	// concurrent call race: run two RetrainNow calls in parallel many
	// times; at least the direct-conflict path must error cleanly, and
	// the registry must never see two promotions from one pair.
	type res struct {
		out Outcome
		err error
	}
	ch := make(chan res, 2)
	for i := 0; i < 2; i++ {
		go func() {
			out, err := mgr.RetrainNow("race")
			ch <- res{out, err}
		}()
	}
	a, b := <-ch, <-ch
	if a.err != nil && b.err != nil {
		t.Fatalf("both concurrent retrains failed: %v / %v", a.err, b.err)
	}
	for _, r := range []res{a, b} {
		if r.err != nil && !strings.Contains(r.err.Error(), "already in progress") {
			t.Errorf("unexpected retrain error: %v", r.err)
		}
	}
}

func TestOutcomeReasonIsAuditable(t *testing.T) {
	incumbent := incumbentSnapshot(t, false)
	traces := append(synthTraces(41, 80, false, true), synthTraces(42, 80, true, true)...)
	_, out, err := Retrain(incumbent, traces, RetrainConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("incumbent v%d", incumbent.Version())
	if !strings.Contains(out.Reason, want) {
		t.Errorf("reason %q does not cite %q", out.Reason, want)
	}
}

func TestCollectorDemandEWMA(t *testing.T) {
	c := NewCollector(16, 1)
	if mix, n := c.Demand(); n != 0 || mix != ([sim.NumDesigns]float64{}) {
		t.Fatalf("cold collector demand = %v (n=%d), want zeros", mix, n)
	}

	// A skewed proposal stream: 3/4 Design2, 1/4 Design4, fed through
	// both entry points — sampled traces and fast-path proposal notes.
	for i := 0; i < 400; i++ {
		id := sim.Design2
		if i%4 == 0 {
			id = sim.Design4
		}
		if i%2 == 0 {
			c.Observe(Trace{Predicted: id})
		} else {
			c.ObserveProposal(id)
		}
	}
	mix, n := c.Demand()
	if n != 400 {
		t.Fatalf("demand observations = %d, want 400", n)
	}
	var sum float64
	for _, v := range mix {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("demand mix sums to %g, want 1", sum)
	}
	if mix[sim.Design2] < 0.6 || mix[sim.Design2] > 0.9 {
		t.Errorf("Design2 share = %g, want near 0.75", mix[sim.Design2])
	}
	if mix[sim.Design1] > 0.01 || mix[sim.Design3] > 0.01 {
		t.Errorf("unrequested designs carry demand: %v", mix)
	}

	// The EWMA must track a shift: the stream flips to pure Design1 and
	// the mix follows it.
	for i := 0; i < 400; i++ {
		c.ObserveProposal(sim.Design1)
	}
	mix, _ = c.Demand()
	if mix[sim.Design1] < 0.9 {
		t.Errorf("after shift Design1 share = %g, want > 0.9", mix[sim.Design1])
	}
}
