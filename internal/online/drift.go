package online

import (
	"fmt"
	"math"
	"sort"

	"misam/internal/features"
)

// Drift detection compares the recently served traffic against the
// distribution the live model was trained on, along two axes:
//
//   - Per-feature population stability index (PSI) over the §3.1 feature
//     set. Each feature's training distribution is summarized as
//     quantile-bin proportions; the recent window is binned with the
//     same edges and PSI = Σ (actual−expected)·ln(actual/expected). The
//     conventional reading applies: <0.10 stable, 0.10–0.25 moderate
//     shift, >0.25 major shift.
//   - Predicted-vs-simulated-optimal accuracy over a sliding window.
//     Every trace carries both the live model's proposal and the argmin
//     design, so window accuracy is exact, not estimated. A drop below
//     the training-time accuracy by more than the configured margin
//     trips the detector even when the feature marginals look stable
//     (label drift without covariate drift).

// driftBins is the quantile-bin count of the baseline histograms. Ten
// deciles is the standard PSI discretization and keeps per-bin counts
// meaningful at the window sizes the collector holds.
const driftBins = 10

// psiFloor keeps the PSI terms finite when a bin is empty on one side.
const psiFloor = 1e-4

// Baseline freezes the training-time reference: per-feature quantile
// edges and bin proportions, plus the model's accuracy on that same
// data. It is immutable after construction.
type Baseline struct {
	edges [features.NumFeatures][]float64 // interior cut points, ascending
	props [features.NumFeatures][]float64 // expected proportion per bin

	// Accuracy is the live model's predicted-vs-optimal accuracy on the
	// baseline sample.
	Accuracy float64
	// Samples is the baseline sample count.
	Samples int
}

// NewBaseline builds the reference distribution from a feature matrix
// (rows indexed like features.Vector) with the model's predictions and
// the true argmin labels on the same rows.
func NewBaseline(x [][]float64, labels, preds []int) (*Baseline, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("online: empty baseline sample")
	}
	if len(labels) != len(x) || len(preds) != len(x) {
		return nil, fmt.Errorf("online: baseline has %d rows but %d labels and %d predictions",
			len(x), len(labels), len(preds))
	}
	b := &Baseline{Samples: len(x)}
	correct := 0
	for i := range x {
		if len(x[i]) < features.NumFeatures {
			return nil, fmt.Errorf("online: baseline row %d has %d features, want >= %d",
				i, len(x[i]), features.NumFeatures)
		}
		if labels[i] == preds[i] {
			correct++
		}
	}
	b.Accuracy = float64(correct) / float64(len(x))

	vals := make([]float64, len(x))
	for f := 0; f < features.NumFeatures; f++ {
		for i := range x {
			vals[i] = x[i][f]
		}
		b.edges[f] = quantileEdges(vals)
		b.props[f] = binProportions(vals, b.edges[f])
	}
	return b, nil
}

// BaselineFromTraces builds a reference from collected traces — the
// self-calibration path when the serving process loaded its models from
// a file and has no training corpus in memory: the first full window of
// traffic becomes the reference the rest is compared against.
func BaselineFromTraces(traces []Trace) (*Baseline, error) {
	x := make([][]float64, len(traces))
	labels := make([]int, len(traces))
	preds := make([]int, len(traces))
	for i := range traces {
		x[i] = traces[i].Features.Slice()
		labels[i] = int(traces[i].Best)
		preds[i] = int(traces[i].Predicted)
	}
	return NewBaseline(x, labels, preds)
}

// quantileEdges returns ascending interior cut points at the deciles of
// vals, deduplicated. A constant feature yields no edges (single bin,
// PSI identically zero).
func quantileEdges(vals []float64) []float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	var edges []float64
	for q := 1; q < driftBins; q++ {
		e := sorted[(len(sorted)-1)*q/driftBins]
		if len(edges) == 0 || e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	return edges
}

// binIndex routes v into the bin partition defined by edges: bin i holds
// v <= edges[i], the last bin holds everything above the final edge.
func binIndex(v float64, edges []float64) int {
	// Binary search over the (short) edge list.
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// binProportions histograms vals over the edges partition.
func binProportions(vals, edges []float64) []float64 {
	props := make([]float64, len(edges)+1)
	for _, v := range vals {
		props[binIndex(v, edges)]++
	}
	for i := range props {
		props[i] /= float64(len(vals))
	}
	return props
}

// psi computes the population stability index of actual against
// expected, flooring empty bins so the terms stay finite.
func psi(expected, actual []float64) float64 {
	sum := 0.0
	for i := range expected {
		e, a := expected[i], actual[i]
		if e < psiFloor {
			e = psiFloor
		}
		if a < psiFloor {
			a = psiFloor
		}
		sum += (a - e) * math.Log(a/e)
	}
	return sum
}

// DriftConfig tunes the detector. The zero value gets the defaults
// documented per field.
type DriftConfig struct {
	// Window is how many recent traces the detector examines (default
	// 256).
	Window int
	// MinSamples is the smallest window the detector will judge; below
	// it the report is returned with Drifted=false and a reason (default
	// 64).
	MinSamples int
	// PSIThreshold trips the detector when any feature's PSI exceeds it
	// (default 0.25, the conventional "major shift" boundary).
	PSIThreshold float64
	// AccuracyDrop trips the detector when the window accuracy falls
	// more than this below the baseline accuracy (default 0.15).
	AccuracyDrop float64
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 64
	}
	if c.PSIThreshold <= 0 {
		c.PSIThreshold = 0.25
	}
	if c.AccuracyDrop <= 0 {
		c.AccuracyDrop = 0.15
	}
	return c
}

// DriftReport is one detector evaluation.
type DriftReport struct {
	// Samples is the window size actually examined.
	Samples int `json:"samples"`
	// PSI holds the per-feature indices, ordered like features.Names().
	PSI []float64 `json:"psi,omitempty"`
	// MaxPSI and MaxPSIFeature identify the most-shifted feature.
	MaxPSI        float64 `json:"max_psi"`
	MaxPSIFeature string  `json:"max_psi_feature,omitempty"`
	// WindowAccuracy and BaselineAccuracy are the predicted-vs-optimal
	// accuracies of the recent window and the training reference.
	WindowAccuracy   float64 `json:"window_accuracy"`
	BaselineAccuracy float64 `json:"baseline_accuracy"`
	// Drifted reports the verdict; Reasons names every tripped signal.
	Drifted bool     `json:"drifted"`
	Reasons []string `json:"reasons,omitempty"`
}

// Detect evaluates the recent traces against the baseline. recent should
// be ordered oldest-first (Collector.Snapshot order); only the trailing
// cfg.Window traces are examined.
func (b *Baseline) Detect(recent []Trace, cfg DriftConfig) DriftReport {
	cfg = cfg.withDefaults()
	if len(recent) > cfg.Window {
		recent = recent[len(recent)-cfg.Window:]
	}
	rep := DriftReport{Samples: len(recent), BaselineAccuracy: b.Accuracy, MaxPSIFeature: ""}
	if len(recent) < cfg.MinSamples {
		rep.Reasons = append(rep.Reasons,
			fmt.Sprintf("window has %d traces, need %d", len(recent), cfg.MinSamples))
		return rep
	}

	correct := 0
	for i := range recent {
		if recent[i].Predicted == recent[i].Best {
			correct++
		}
	}
	rep.WindowAccuracy = float64(correct) / float64(len(recent))

	rep.PSI = make([]float64, features.NumFeatures)
	vals := make([]float64, len(recent))
	maxF := 0
	for f := 0; f < features.NumFeatures; f++ {
		for i := range recent {
			vals[i] = recent[i].Features[f]
		}
		rep.PSI[f] = psi(b.props[f], binProportions(vals, b.edges[f]))
		if rep.PSI[f] > rep.PSI[maxF] {
			maxF = f
		}
	}
	rep.MaxPSI = rep.PSI[maxF]
	rep.MaxPSIFeature = features.Name(maxF)

	if rep.MaxPSI > cfg.PSIThreshold {
		rep.Drifted = true
		rep.Reasons = append(rep.Reasons,
			fmt.Sprintf("feature %s PSI %.3f exceeds %.3f", rep.MaxPSIFeature, rep.MaxPSI, cfg.PSIThreshold))
	}
	if b.Accuracy-rep.WindowAccuracy > cfg.AccuracyDrop {
		rep.Drifted = true
		rep.Reasons = append(rep.Reasons,
			fmt.Sprintf("window accuracy %.3f fell more than %.3f below baseline %.3f",
				rep.WindowAccuracy, cfg.AccuracyDrop, b.Accuracy))
	}
	return rep
}
