package online

import (
	"fmt"
	"math"
	"math/rand"

	"misam/internal/dataset"
	"misam/internal/features"
	"misam/internal/mltree"
	"misam/internal/reconfig"
	"misam/internal/registry"
	"misam/internal/sim"
)

// RetrainConfig tunes the background retrainer.
type RetrainConfig struct {
	// MinTraces is the smallest trace set worth training on (default 48).
	MinTraces int
	// HoldoutFrac is the slice of traces withheld from training and used
	// for the shadow evaluation (default 0.3).
	HoldoutFrac float64
	// MaxDepth bounds the candidate trees (default 10, matching the
	// offline trainer).
	MaxDepth int
	// Folds is the k of the cross-validation pass on the training slice,
	// reported for observability (default 5; <2 skips it).
	Folds int
	// Seed drives the train/holdout shuffle and fold assignment.
	Seed int64
}

func (c RetrainConfig) withDefaults() RetrainConfig {
	if c.MinTraces <= 0 {
		c.MinTraces = 48
	}
	if c.HoldoutFrac <= 0 || c.HoldoutFrac >= 1 {
		c.HoldoutFrac = 0.3
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 10
	}
	if c.Folds == 0 {
		c.Folds = 5
	}
	return c
}

// Outcome records one retraining attempt — promoted or not, the numbers
// that decided it are kept so rejections stay auditable.
type Outcome struct {
	// Promote is the gate's verdict: the candidate won the shadow
	// evaluation. (The manager publishes on Promote and fills
	// CandidateVersion.)
	Promote bool `json:"promote"`
	// Reason is the human-readable verdict explanation.
	Reason string `json:"reason"`
	// CandidateVersion is the registry version assigned at promotion (0
	// when rejected).
	CandidateVersion uint64 `json:"candidate_version,omitempty"`
	// IncumbentVersion is the version the candidate was evaluated
	// against.
	IncumbentVersion uint64 `json:"incumbent_version"`
	// CandidateGeomean and IncumbentGeomean are the geometric-mean
	// slowdowns versus the per-trace oracle on the holdout slice — the
	// promotion metric (lower is better, 1.0 is oracle-perfect).
	CandidateGeomean float64 `json:"candidate_geomean"`
	IncumbentGeomean float64 `json:"incumbent_geomean"`
	// CandidateAccuracy and IncumbentAccuracy are argmin accuracies on
	// the same holdout slice.
	CandidateAccuracy float64 `json:"candidate_accuracy"`
	IncumbentAccuracy float64 `json:"incumbent_accuracy"`
	// CrossValAccuracy is the mean k-fold accuracy on the training slice
	// (0 when skipped).
	CrossValAccuracy float64 `json:"crossval_accuracy,omitempty"`
	// TrainTraces and HoldoutTraces are the slice sizes.
	TrainTraces   int `json:"train_traces"`
	HoldoutTraces int `json:"holdout_traces"`
}

// selector is the minimal design-proposal surface shared by snapshots
// and freshly trained candidates.
type selector interface {
	Select(v features.Vector) sim.DesignID
}

// shadowEval replays a trace slice against a selector: per-trace
// slowdown = chosen design's seconds / oracle seconds, aggregated as a
// geometric mean; accuracy = fraction of traces where the selector hit
// the argmin design.
func shadowEval(sel selector, traces []Trace) (geomean, accuracy float64) {
	if len(traces) == 0 {
		return 1, 0
	}
	logSum, correct := 0.0, 0
	for i := range traces {
		chosen := sel.Select(traces[i].Features)
		if chosen == traces[i].Best {
			correct++
		}
		oracle := traces[i].Seconds[traces[i].Best]
		actual := traces[i].Seconds[chosen]
		if oracle <= 0 || actual <= 0 {
			// Degenerate simulation (empty product); neutral ratio.
			continue
		}
		if traces[i].Pruned[chosen] {
			// The chosen design's seconds are a pruned lower bound, not an
			// exact total — the true slowdown is unknown (only provably
			// > 1). Keep the accuracy miss (Best is always exact) but skip
			// the ratio rather than understate it.
			continue
		}
		logSum += math.Log(actual / oracle)
	}
	return math.Exp(logSum / float64(len(traces))), float64(correct) / float64(len(traces))
}

// Retrain fits a candidate model pair on the accumulated traces and
// shadow-evaluates it against the incumbent on a held-out slice. It
// returns the candidate snapshot (unpublished — version 0) and the
// outcome; the caller promotes into the registry only when
// Outcome.Promote is set. The candidate inherits the incumbent engine's
// reconfiguration time model and threshold — retraining refreshes the
// models, not the pricing policy.
func Retrain(incumbent *registry.Snapshot, traces []Trace, cfg RetrainConfig) (*registry.Snapshot, Outcome, error) {
	cfg = cfg.withDefaults()
	out := Outcome{IncumbentVersion: incumbent.Version()}
	if len(traces) < cfg.MinTraces {
		return nil, out, fmt.Errorf("online: %d traces collected, need %d to retrain", len(traces), cfg.MinTraces)
	}

	// Shuffled train/holdout split. The shuffle matters: the collector
	// buffer is time-ordered, and a contiguous split would train on the
	// old regime and evaluate on the new one (or vice versa).
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := rng.Perm(len(traces))
	cut := len(traces) - int(float64(len(traces))*cfg.HoldoutFrac)
	if cut < 1 {
		cut = 1
	}
	if cut >= len(traces) {
		cut = len(traces) - 1
	}
	train := make([]Trace, 0, cut)
	holdout := make([]Trace, 0, len(traces)-cut)
	for i, j := range idx {
		if i < cut {
			train = append(train, traces[j])
		} else {
			holdout = append(holdout, traces[j])
		}
	}
	out.TrainTraces, out.HoldoutTraces = len(train), len(holdout)

	x := make([][]float64, len(train))
	labels := make([]int, len(train))
	for i := range train {
		x[i] = train[i].Features.Slice()
		labels[i] = int(train[i].Best)
	}
	treeCfg := mltree.Config{MaxDepth: cfg.MaxDepth, MinSamplesLeaf: 2}
	cls, err := mltree.TrainClassifier(x, labels, int(sim.NumDesigns),
		mltree.BalancedWeights(labels, int(sim.NumDesigns)), treeCfg)
	if err != nil {
		return nil, out, fmt.Errorf("online: candidate selector training: %w", err)
	}

	if cfg.Folds >= 2 && len(train) >= 2*cfg.Folds {
		accs, err := mltree.CrossValidateClassifier(x, labels, int(sim.NumDesigns), true,
			treeCfg, cfg.Folds, rand.New(rand.NewSource(cfg.Seed+1)))
		if err == nil && len(accs) > 0 {
			sum := 0.0
			for _, a := range accs {
				sum += a
			}
			out.CrossValAccuracy = sum / float64(len(accs))
		}
	}

	// Refresh the latency regressors from the same traces: each design's
	// tree learns (features → log10 ms) on the simulated outcomes. Traces
	// from the pruned slow tier carry lower bounds (not exact totals) for
	// pruned losers, so each design's corpus keeps only the traces where
	// that design was simulated to completion; when a design has no exact
	// samples at all, the incumbent's regressor for it is carried forward
	// unchanged rather than fit to bounds.
	inc := incumbent.Engine()
	latCfg := mltree.Config{MaxDepth: cfg.MaxDepth + 6, MinSamplesLeaf: 2}
	pred := &reconfig.LatencyPredictor{}
	for _, id := range sim.AllDesigns {
		xs := make([][]float64, 0, len(train))
		y := make([]float64, 0, len(train))
		for i := range train {
			if train[i].Pruned[id] {
				continue
			}
			xs = append(xs, x[i])
			y = append(y, dataset.LatencyTarget(train[i].Seconds[id]))
		}
		if len(xs) == 0 {
			if inc.Predictor == nil || inc.Predictor.Regs[id] == nil {
				return nil, out, fmt.Errorf("online: candidate %v regressor: no exact traces and no incumbent regressor to inherit", id)
			}
			pred.Regs[id] = inc.Predictor.Regs[id]
			continue
		}
		reg, err := mltree.TrainRegressor(xs, y, latCfg)
		if err != nil {
			return nil, out, fmt.Errorf("online: candidate %v regressor training: %w", id, err)
		}
		pred.Regs[id] = reg
	}
	engine := reconfig.NewEngine(pred, inc.Times, inc.Threshold)

	candidate, err := registry.NewSnapshot(cls, engine, registry.Info{
		Source: registry.SourceRetrain,
		Traces: len(train),
	})
	if err != nil {
		return nil, out, err
	}

	// Shadow evaluation: both models replay the identical holdout slice;
	// the promotion metric is geomean slowdown versus the per-trace
	// oracle.
	out.CandidateGeomean, out.CandidateAccuracy = shadowEval(candidate, holdout)
	out.IncumbentGeomean, out.IncumbentAccuracy = shadowEval(incumbent, holdout)
	candidate.SetMetrics(registry.Metrics{
		GeomeanSlowdown:  out.CandidateGeomean,
		Accuracy:         out.CandidateAccuracy,
		CrossValAccuracy: out.CrossValAccuracy,
	})

	if out.CandidateGeomean < out.IncumbentGeomean {
		out.Promote = true
		out.Reason = fmt.Sprintf("candidate geomean slowdown %.4f beats incumbent v%d's %.4f on %d holdout traces",
			out.CandidateGeomean, incumbent.Version(), out.IncumbentGeomean, len(holdout))
	} else {
		out.Reason = fmt.Sprintf("candidate geomean slowdown %.4f does not beat incumbent v%d's %.4f on %d holdout traces",
			out.CandidateGeomean, incumbent.Version(), out.IncumbentGeomean, len(holdout))
	}
	return candidate, out, nil
}
