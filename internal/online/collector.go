// Package online is the continuous-learning half of the Misam serving
// stack. Every served analysis already computes the ground-truth label
// the offline trainer needs — the four per-design simulations — and the
// paper's own premise is that the best dataflow shifts with the workload
// mix. This package captures that traffic (Collector), watches for the
// captured distribution drifting away from the training snapshot
// (drift.go), and retrains + shadow-evaluates candidate models in the
// background, promoting them into the version registry only when they
// beat the incumbent on the holdout slice (retrain.go, manager.go).
package online

import (
	"sync"

	"misam/internal/features"
	"misam/internal/sim"
)

// Trace is one served analysis reduced to its training-relevant facts:
// the feature vector, what the live model proposed, and the simulated
// outcome of every design (from which the argmin label and the oracle
// cost derive). A trace is self-contained — retraining needs nothing
// else from the request.
type Trace struct {
	Features features.Vector
	// Predicted is the live selector's raw proposal (before the
	// reconfiguration engine's hysteresis), so window accuracy measures
	// the model, not the pricing policy.
	Predicted sim.DesignID
	// Best is the argmin-latency design over the four simulations.
	Best sim.DesignID
	// Seconds and Cycles are each design's simulated outcome.
	Seconds [sim.NumDesigns]float64
	Cycles  [sim.NumDesigns]int64
	// Pruned marks designs whose Seconds/Cycles are early-exit or coarse
	// lower bounds rather than exact totals (the pruned slow tier only
	// proves such designs lose; it does not finish simulating them). Best
	// is always exact — pruning preserves the argmin — but a pruned
	// loser's latency must not be used as a regression target or a
	// slowdown denominator.
	Pruned [sim.NumDesigns]bool
	// ModelVersion is the registry version that served the request.
	ModelVersion uint64
}

// CollectorStats snapshot the collector's counters.
type CollectorStats struct {
	// Observed counts every analysis offered to the collector.
	Observed int64 `json:"observed"`
	// Sampled counts observations admitted by the 1-in-N sampler.
	Sampled int64 `json:"sampled"`
	// Dropped counts sampled traces that overwrote an unconsumed older
	// trace because the bounded buffer was full — the saturation signal:
	// when Dropped grows between retrains, the buffer is cycling faster
	// than the retrainer consumes it at the configured sample rate.
	Dropped int64 `json:"dropped"`
	// Resident is the number of traces currently buffered.
	Resident int `json:"resident"`
	// Capacity and SampleEvery echo the configuration.
	Capacity    int `json:"capacity"`
	SampleEvery int `json:"sample_every"`
}

// Collector is a bounded, sampling trace buffer. Admission is 1-in-N
// counter sampling (deterministic, cheap, unbiased for arrival-order-
// independent statistics); storage is a ring that overwrites the oldest
// trace when full, counting each overwrite as a drop. All methods are
// safe for concurrent use; Observe is O(1) and never blocks on
// consumers.
type Collector struct {
	mu    sync.Mutex
	buf   []Trace
	start int // index of the oldest trace
	n     int // resident count

	sampleEvery int64
	observed    int64
	sampled     int64
	dropped     int64

	// demand is the per-design EWMA of the serving proposal mix: every
	// observation (sampled or not) decays the vector and adds demandAlpha
	// to the proposed design's share. The portfolio rebalancer reads it
	// to keep the fleet's loaded bitstreams tracking the traffic mix.
	// demandN counts the observations behind it — full traces plus the
	// proposal-only observations the fast path records.
	demand  [sim.NumDesigns]float64
	demandN int64
}

// demandAlpha is the EWMA weight of one observation: a half-life of
// ~44 observations, fast enough to follow a workload phase shift within
// one trace window, slow enough that a burst of one request type does
// not thrash the fleet's portfolio.
const demandAlpha = 1.0 / 64

// NewCollector returns a collector holding at most capacity traces,
// admitting one in every sampleEvery observations (<=1 admits all).
func NewCollector(capacity, sampleEvery int) *Collector {
	if capacity < 1 {
		capacity = 1
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &Collector{buf: make([]Trace, capacity), sampleEvery: int64(sampleEvery)}
}

// Observe offers one trace. It returns true when the trace was admitted
// by the sampler and buffered.
func (c *Collector) Observe(t Trace) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observed++
	c.noteDemandLocked(t.Predicted)
	if (c.observed-1)%c.sampleEvery != 0 {
		return false
	}
	c.sampled++
	if c.n == len(c.buf) {
		// Ring full: overwrite the oldest trace and account the loss.
		c.buf[c.start] = t
		c.start = (c.start + 1) % len(c.buf)
		c.dropped++
		return true
	}
	c.buf[(c.start+c.n)%len(c.buf)] = t
	c.n++
	return true
}

// Len reports the resident trace count.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Snapshot copies the resident traces, oldest first.
func (c *Collector) Snapshot() []Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Trace, c.n)
	for i := 0; i < c.n; i++ {
		out[i] = c.buf[(c.start+i)%len(c.buf)]
	}
	return out
}

// Window copies the most recent n traces (all of them when fewer are
// resident), oldest first.
func (c *Collector) Window(n int) []Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n > c.n {
		n = c.n
	}
	if n < 0 {
		n = 0
	}
	out := make([]Trace, n)
	for i := 0; i < n; i++ {
		out[i] = c.buf[(c.start+c.n-n+i)%len(c.buf)]
	}
	return out
}

// noteDemandLocked folds one proposal into the demand EWMA; c.mu must
// be held.
func (c *Collector) noteDemandLocked(id sim.DesignID) {
	if id < 0 || int(id) >= len(c.demand) {
		return
	}
	for i := range c.demand {
		c.demand[i] *= 1 - demandAlpha
	}
	c.demand[id] += demandAlpha
	c.demandN++
}

// ObserveProposal records one served proposal into the demand EWMA
// without offering a trace — the fast path's contribution to the
// portfolio signal: a fast-tier hit never simulates (so it has no
// training trace to offer), but its proposed design is exactly the
// bitstream demand the rebalancer must track.
func (c *Collector) ObserveProposal(id sim.DesignID) {
	c.mu.Lock()
	c.noteDemandLocked(id)
	c.mu.Unlock()
}

// Demand returns the normalized per-design EWMA of the serving proposal
// mix (summing to 1) and the number of observations behind it. Before
// any observation the mix is all zeros — callers should treat a small n
// as "no signal yet" rather than acting on the early, noisy estimate.
func (c *Collector) Demand() (mix [sim.NumDesigns]float64, n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum float64
	for _, v := range c.demand {
		sum += v
	}
	if sum <= 0 {
		return mix, c.demandN
	}
	for i, v := range c.demand {
		mix[i] = v / sum
	}
	return mix, c.demandN
}

// Stats snapshots the counters.
func (c *Collector) Stats() CollectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CollectorStats{
		Observed:    c.observed,
		Sampled:     c.sampled,
		Dropped:     c.dropped,
		Resident:    c.n,
		Capacity:    len(c.buf),
		SampleEvery: int(c.sampleEvery),
	}
}
