package online

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"misam/internal/features"
	"misam/internal/sim"
)

// VerifyJob is one fast-path decision queued for asynchronous audit: the
// request's features, what the model proposed, and a closure that runs
// the full four-design simulation when a worker gets to it. The closure
// is supplied by the serving layer (it typically routes through the
// analysis cache, so an audited pair's full Analysis becomes resident for
// future requests) — the verifier itself stays ignorant of how
// simulations are produced and so free of upward package dependencies.
type VerifyJob struct {
	Features  features.Vector
	Predicted sim.DesignID
	// ModelVersion is the registry version whose compiled tree proposed
	// Predicted, stamped into the audit trace for per-version accuracy.
	ModelVersion uint64
	Simulate     func(ctx context.Context) ([sim.NumDesigns]sim.Result, error)
}

// VerifierStats snapshot the audit counters. The accounting invariant the
// hammer test pins: Verified + Errors + Resident(queue) ≤ Offered, and
// Offered = accepted + Dropped.
type VerifierStats struct {
	// Offered counts every job handed to Offer (accepted or not).
	Offered int64 `json:"offered"`
	// Dropped counts jobs rejected because the queue was full — audit
	// coverage lost to backpressure, never blocking the serving path.
	Dropped int64 `json:"dropped"`
	// Verified counts completed re-simulations.
	Verified int64 `json:"verified"`
	// Agreed counts verified jobs whose predicted design matched the
	// simulated argmin. Agreed/Verified is the live estimate of the
	// model's accuracy on the high-confidence slice.
	Agreed int64 `json:"agreed"`
	// Errors counts simulations that failed (or were cancelled by Close).
	Errors int64 `json:"errors"`
	// Workers and QueueCap echo the configuration.
	Workers  int `json:"workers"`
	QueueCap int `json:"queue_cap"`
}

// Verifier is the bounded background audit pool behind the fast path.
// Once prediction replaces simulation on the request path, the online
// adaptation loop (PR 4) starves: no simulations means no labelled
// traces, so drift detection goes blind exactly when a cheap, stale model
// is serving every request. The verifier closes that loop — a sample of
// fast-path hits is re-simulated off the request path, compared against
// the model's proposal, and fed to the Collector as ordinary labelled
// traces.
//
// Offer never blocks: a full queue drops the job and counts it, because
// audit coverage is best-effort while serving latency is the product.
type Verifier struct {
	col  *Collector
	jobs chan VerifyJob
	wg   sync.WaitGroup

	// ctx cancels in-flight simulations on Close so shutdown does not
	// wait out a slow cycle-level run.
	ctx    context.Context
	cancel context.CancelFunc

	closeOnce sync.Once

	workers  int
	offered  atomic.Int64
	dropped  atomic.Int64
	verified atomic.Int64
	agreed   atomic.Int64
	errors   atomic.Int64
}

// NewVerifier starts a pool of workers draining a queue of at most queue
// jobs into col. workers and queue are clamped to ≥1.
func NewVerifier(col *Collector, workers, queue int) *Verifier {
	if workers < 1 {
		workers = 1
	}
	if queue < 1 {
		queue = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	v := &Verifier{
		col:     col,
		jobs:    make(chan VerifyJob, queue),
		ctx:     ctx,
		cancel:  cancel,
		workers: workers,
	}
	v.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go v.worker()
	}
	return v
}

// Offer enqueues a job without blocking. It reports whether the job was
// accepted; false means the queue was full (or the verifier closed) and
// the job was dropped.
func (v *Verifier) Offer(j VerifyJob) bool {
	v.offered.Add(1)
	if v.ctx.Err() != nil {
		v.dropped.Add(1)
		return false
	}
	select {
	case v.jobs <- j:
		return true
	default:
		v.dropped.Add(1)
		return false
	}
}

func (v *Verifier) worker() {
	defer v.wg.Done()
	for {
		select {
		case <-v.ctx.Done():
			// Drain what remains so accepted jobs are always accounted
			// (as errors) rather than silently vanishing.
			for {
				select {
				case <-v.jobs:
					v.errors.Add(1)
				default:
					return
				}
			}
		case j := <-v.jobs:
			v.run(j)
		}
	}
}

// run re-simulates one fast-path decision and feeds the audit trace to
// the collector.
func (v *Verifier) run(j VerifyJob) {
	results, err := j.Simulate(v.ctx)
	if err != nil {
		v.errors.Add(1)
		return
	}
	best := sim.DesignID(0)
	for _, id := range sim.AllDesigns {
		if results[id].Seconds < results[best].Seconds {
			best = id
		}
	}
	v.verified.Add(1)
	if best == j.Predicted {
		v.agreed.Add(1)
	}
	tr := Trace{
		Features:     j.Features,
		Predicted:    j.Predicted,
		Best:         best,
		ModelVersion: j.ModelVersion,
	}
	for _, id := range sim.AllDesigns {
		tr.Seconds[id] = results[id].Seconds
		tr.Cycles[id] = results[id].Cycles
		tr.Pruned[id] = results[id].Pruned
	}
	if v.col != nil {
		v.col.Observe(tr)
	}
}

// Drain blocks until the queue is empty and all in-flight jobs have
// completed, or ctx expires. It is a test/benchmark convenience — the
// serving path never waits on the verifier.
func (v *Verifier) Drain(ctx context.Context) error {
	for {
		if len(v.jobs) == 0 && v.inFlightSettled() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// inFlightSettled reports whether every accepted job has reached a
// terminal counter. Accepted = offered - dropped; terminal = verified +
// errors.
func (v *Verifier) inFlightSettled() bool {
	return v.verified.Load()+v.errors.Load() >= v.offered.Load()-v.dropped.Load()
}

// Close stops the workers. In-flight simulations are cancelled; queued
// jobs are counted as errors. Safe to call more than once.
func (v *Verifier) Close() {
	v.closeOnce.Do(func() {
		v.cancel()
		v.wg.Wait()
	})
}

// Stats snapshots the counters.
func (v *Verifier) Stats() VerifierStats {
	return VerifierStats{
		Offered:  v.offered.Load(),
		Dropped:  v.dropped.Load(),
		Verified: v.verified.Load(),
		Agreed:   v.agreed.Load(),
		Errors:   v.errors.Load(),
		Workers:  v.workers,
		QueueCap: cap(v.jobs),
	}
}
