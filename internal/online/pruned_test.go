package online

import (
	"context"
	"math"
	"testing"
	"time"

	"misam/internal/features"
	"misam/internal/sim"
)

// TestVerifierStampsPrunedTraces: audit traces produced from the pruned
// slow tier carry the per-design Pruned marks, and the argmin is still
// computed correctly (pruned losers report bounds strictly worse than
// the winner, so strict-< argmin is unaffected).
func TestVerifierStampsPrunedTraces(t *testing.T) {
	col := NewCollector(8, 1)
	v := NewVerifier(col, 1, 4)
	defer v.Close()

	results := verifyResults(sim.Design2)
	results[sim.Design4].Pruned = true
	results[sim.Design4].Seconds = 2 // lower bound, still > winner's 1
	v.Offer(VerifyJob{
		Predicted: sim.Design2,
		Simulate: func(context.Context) ([sim.NumDesigns]sim.Result, error) {
			return results, nil
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := v.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	traces := col.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("collector holds %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Best != sim.Design2 {
		t.Fatalf("trace Best = %v, want %v", tr.Best, sim.Design2)
	}
	want := [sim.NumDesigns]bool{}
	want[sim.Design4] = true
	if tr.Pruned != want {
		t.Fatalf("trace Pruned = %v, want %v", tr.Pruned, want)
	}
	if tr.Pruned[tr.Best] {
		t.Fatal("winner marked pruned")
	}
}

// fixedSelector always proposes one design, so shadowEval's per-trace
// "chosen" is under test control.
type fixedSelector sim.DesignID

func (s fixedSelector) Select(features.Vector) sim.DesignID { return sim.DesignID(s) }

// TestShadowEvalSkipsPrunedChosen: when the selector's pick was only
// bounded (not simulated to completion) in a trace, its lower-bound
// seconds must not enter the geomean slowdown — the bound would
// understate how bad the pick really was.
func TestShadowEvalSkipsPrunedChosen(t *testing.T) {
	mk := func(pruned bool) Trace {
		var tr Trace
		tr.Best = sim.Design1
		tr.Seconds = [sim.NumDesigns]float64{1e-3, 2e-3, 5e-3, 3e-3}
		if pruned {
			tr.Pruned[sim.Design3] = true
			tr.Seconds[sim.Design3] = 2e-3 // bound: true cost unknown, > winner
		}
		return tr
	}
	traces := []Trace{mk(false), mk(false), mk(true), mk(true)}
	geomean, acc := shadowEval(fixedSelector(sim.Design3), traces)
	if acc != 0 {
		t.Fatalf("accuracy %.3f, want 0 (selector never picks the argmin)", acc)
	}
	// Only the two exact traces contribute log(5e-3/1e-3); the two pruned
	// ones are skipped (the divisor stays len(traces), matching the
	// existing degenerate-trace handling).
	want := math.Exp(2 * math.Log(5) / 4)
	if math.Abs(geomean-want) > 1e-9 {
		t.Fatalf("geomean %.6f, want %.6f (pruned bounds leaked into the ratio)", geomean, want)
	}
}

// prunedSynthTraces marks design id pruned (with a plausible lower bound
// just above the winner) in every nth trace of a synthetic stream.
func prunedSynthTraces(seed int64, n int, id sim.DesignID, every int) []Trace {
	traces := append(synthTraces(seed, n/2, false, true), synthTraces(seed+1, n-n/2, true, true)...)
	for i := range traces {
		if i%every != 0 {
			continue
		}
		traces[i].Pruned[id] = true
		traces[i].Seconds[id] = traces[i].Seconds[traces[i].Best] * 1.5
	}
	return traces
}

// TestRetrainInheritsRegressorForFullyPrunedDesign: a design with zero
// exact latency samples keeps the incumbent's regressor instead of
// fitting one to lower bounds.
func TestRetrainInheritsRegressorForFullyPrunedDesign(t *testing.T) {
	incumbent := incumbentSnapshot(t, false)
	traces := prunedSynthTraces(21, 120, sim.Design4, 1) // every trace pruned for D4
	cand, _, err := Retrain(incumbent, traces, RetrainConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cand.Engine().Predictor.Regs[sim.Design4], incumbent.Engine().Predictor.Regs[sim.Design4]; got != want {
		t.Fatal("candidate did not inherit the incumbent's regressor for the fully-pruned design")
	}
	for _, id := range sim.AllDesigns[:3] {
		if cand.Engine().Predictor.Regs[id] == incumbent.Engine().Predictor.Regs[id] {
			t.Fatalf("design %v had exact samples but kept the incumbent regressor", id)
		}
	}
}

// TestRetrainExcludesPrunedLatenciesFromRegressor: with a mix of exact
// and pruned samples for one design, the refreshed regressor is fit only
// to the exact ones. The synthetic stream prices design 4 at a constant
// 5e-3 s when simulated exactly, so the candidate must predict that — a
// fit polluted by the 1.5e-3 s bounds would be pulled low.
func TestRetrainExcludesPrunedLatenciesFromRegressor(t *testing.T) {
	incumbent := incumbentSnapshot(t, false)
	traces := prunedSynthTraces(22, 120, sim.Design4, 2) // half pruned for D4
	cand, _, err := Retrain(incumbent, traces, RetrainConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range traces {
		if tr.Pruned[sim.Design4] {
			continue
		}
		got := cand.Engine().Predictor.Predict(tr.Features, sim.Design4)
		if math.Abs(got-5e-3) > 5e-4 {
			t.Fatalf("regressor predicts %.4g s for a design whose exact corpus is constant 5e-3 s", got)
		}
	}
}
