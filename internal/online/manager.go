package online

import (
	"fmt"
	"sync"
	"time"

	"misam/internal/registry"
)

// Config bundles the manager's knobs.
type Config struct {
	Drift   DriftConfig
	Retrain RetrainConfig
	// Interval is the background loop's drift-check cadence; zero
	// disables the loop (drift checks and retrains happen on demand
	// only).
	Interval time.Duration
}

// ManagerStats snapshot the manager's counters for /v1/stats.
type ManagerStats struct {
	// Calibrated reports whether a baseline reference exists yet (false
	// only while a file-loaded deployment is still self-calibrating).
	Calibrated bool `json:"calibrated"`
	// DriftChecks and DriftTrips count detector evaluations and how many
	// reported drift.
	DriftChecks int64 `json:"drift_checks"`
	DriftTrips  int64 `json:"drift_trips"`
	// Retrains, Promotions and Rejections count retraining attempts and
	// their verdicts (attempts that errored — e.g. too few traces —
	// count toward Retrains only).
	Retrains   int64 `json:"retrains"`
	Promotions int64 `json:"promotions"`
	Rejections int64 `json:"rejections"`
	// LastDrift and LastOutcome are the most recent detector report and
	// retraining outcome, when any.
	LastDrift   *DriftReport `json:"last_drift,omitempty"`
	LastOutcome *Outcome     `json:"last_outcome,omitempty"`
}

// Manager owns the adaptation loop: it watches the collector for drift
// against the baseline and retrains/promotes through the registry. All
// methods are safe for concurrent use; at most one retrain runs at a
// time (concurrent triggers coalesce into an error for the loser rather
// than queueing duplicate training work).
type Manager struct {
	reg *registry.Registry
	col *Collector
	cfg Config

	mu         sync.Mutex
	baseline   *Baseline
	lastDrift  *DriftReport
	lastOut    *Outcome
	checks     int64
	trips      int64
	retrains   int64
	promotions int64
	rejections int64
	retraining bool
	seed       int64

	loopOnce sync.Once
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewManager wires the adaptation loop over a registry and a collector.
// baseline may be nil — the manager then self-calibrates by freezing the
// first full drift window of traces as the reference.
func NewManager(reg *registry.Registry, col *Collector, baseline *Baseline, cfg Config) *Manager {
	cfg.Drift = cfg.Drift.withDefaults()
	cfg.Retrain = cfg.Retrain.withDefaults()
	return &Manager{
		reg:      reg,
		col:      col,
		cfg:      cfg,
		baseline: baseline,
		seed:     cfg.Retrain.Seed,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Registry exposes the model registry behind the manager.
func (m *Manager) Registry() *registry.Registry { return m.reg }

// Collector exposes the trace collector behind the manager.
func (m *Manager) Collector() *Collector { return m.col }

// Baseline returns the current reference distribution (nil while
// self-calibration is still waiting for traces).
func (m *Manager) Baseline() *Baseline {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.baseline
}

// CheckDrift runs the detector over the collector's recent window,
// recording the report. While no baseline exists it attempts
// self-calibration first; until enough traces have arrived the report
// says so and Drifted stays false.
func (m *Manager) CheckDrift() DriftReport {
	traces := m.col.Snapshot()

	m.mu.Lock()
	if m.baseline == nil {
		// Self-calibration: freeze the first full window as the
		// reference. Requiring a complete window (not just MinSamples)
		// keeps the reference from being a sliver of the first regime.
		if len(traces) >= m.cfg.Drift.Window {
			if b, err := BaselineFromTraces(traces[:m.cfg.Drift.Window]); err == nil {
				m.baseline = b
			}
		}
		if m.baseline == nil {
			rep := DriftReport{Samples: len(traces),
				Reasons: []string{fmt.Sprintf("calibrating: %d of %d traces", len(traces), m.cfg.Drift.Window)}}
			m.checks++
			m.lastDrift = &rep
			m.mu.Unlock()
			return rep
		}
	}
	baseline := m.baseline
	m.mu.Unlock()

	rep := baseline.Detect(traces, m.cfg.Drift)

	m.mu.Lock()
	m.checks++
	if rep.Drifted {
		m.trips++
	}
	m.lastDrift = &rep
	m.mu.Unlock()
	return rep
}

// RetrainNow synchronously trains a candidate on the collected traces,
// shadow-evaluates it, and — when it wins — publishes it as the new
// current version. note annotates the promoted snapshot (e.g. the drift
// reason, or "operator request"). Only one retrain runs at a time; a
// concurrent call fails fast instead of queueing.
func (m *Manager) RetrainNow(note string) (Outcome, error) {
	m.mu.Lock()
	if m.retraining {
		m.mu.Unlock()
		return Outcome{}, fmt.Errorf("online: a retrain is already in progress")
	}
	m.retraining = true
	m.retrains++
	m.seed++
	seed := m.seed
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.retraining = false
		m.mu.Unlock()
	}()

	cfg := m.cfg.Retrain
	cfg.Seed = seed
	traces := m.col.Snapshot()
	incumbent := m.reg.Current()
	candidate, out, err := Retrain(incumbent, traces, cfg)
	if err != nil {
		return out, err
	}
	if out.Promote {
		if note != "" {
			candidate.SetNote(note)
		}
		out.CandidateVersion = m.reg.Publish(candidate)
	}

	m.mu.Lock()
	if out.Promote {
		m.promotions++
	} else {
		m.rejections++
	}
	m.lastOut = &out
	m.mu.Unlock()
	return out, nil
}

// Start launches the background loop when an interval is configured:
// every tick it checks drift and retrains when the detector trips. It is
// a no-op for Interval <= 0 and idempotent across calls.
func (m *Manager) Start() {
	m.loopOnce.Do(func() {
		if m.cfg.Interval <= 0 {
			close(m.done)
			return
		}
		go func() {
			defer close(m.done)
			t := time.NewTicker(m.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-m.stop:
					return
				case <-t.C:
					if rep := m.CheckDrift(); rep.Drifted {
						reason := "drift"
						if len(rep.Reasons) > 0 {
							reason = rep.Reasons[0]
						}
						// Best-effort: rejections and too-few-traces
						// errors are recorded in the stats, not fatal.
						_, _ = m.RetrainNow(reason)
					}
				}
			}
		}()
	})
}

// Close stops the background loop (if any) and waits for it to exit.
func (m *Manager) Close() {
	m.Start() // ensure done is eventually closed even if Start was never called
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

// Stats snapshots the manager counters.
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return ManagerStats{
		Calibrated:  m.baseline != nil,
		DriftChecks: m.checks,
		DriftTrips:  m.trips,
		Retrains:    m.retrains,
		Promotions:  m.promotions,
		Rejections:  m.rejections,
		LastDrift:   m.lastDrift,
		LastOutcome: m.lastOut,
	}
}
