package online

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"misam/internal/features"
	"misam/internal/sim"
)

// verifyResults builds a result set whose argmin is best.
func verifyResults(best sim.DesignID) [sim.NumDesigns]sim.Result {
	var out [sim.NumDesigns]sim.Result
	for _, id := range sim.AllDesigns {
		out[id] = sim.Result{Design: id, Seconds: 10 + float64(id), Cycles: 1000 + int64(id)}
	}
	out[best].Seconds = 1
	return out
}

func verifyJob(predicted, best sim.DesignID) VerifyJob {
	var v features.Vector
	v[0] = float64(predicted)
	return VerifyJob{
		Features:     v,
		Predicted:    predicted,
		ModelVersion: 7,
		Simulate: func(context.Context) ([sim.NumDesigns]sim.Result, error) {
			return verifyResults(best), nil
		},
	}
}

// TestVerifierFeedsCollector: verified jobs become labelled traces with
// the simulated argmin as Best, and agreement is counted correctly.
func TestVerifierFeedsCollector(t *testing.T) {
	col := NewCollector(64, 1)
	v := NewVerifier(col, 2, 16)
	defer v.Close()

	if !v.Offer(verifyJob(sim.Design1, sim.Design1)) { // agree
		t.Fatal("offer 1 rejected")
	}
	if !v.Offer(verifyJob(sim.Design1, sim.Design3)) { // disagree
		t.Fatal("offer 2 rejected")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := v.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	st := v.Stats()
	if st.Offered != 2 || st.Verified != 2 || st.Agreed != 1 || st.Dropped != 0 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want 2 offered / 2 verified / 1 agreed", st)
	}
	traces := col.Snapshot()
	if len(traces) != 2 {
		t.Fatalf("collector holds %d traces, want 2", len(traces))
	}
	for _, tr := range traces {
		if tr.ModelVersion != 7 {
			t.Fatalf("trace model version %d, want 7", tr.ModelVersion)
		}
		if tr.Seconds[tr.Best] >= tr.Seconds[(tr.Best+1)%sim.NumDesigns] {
			t.Fatalf("trace Best %v is not the argmin of %v", tr.Best, tr.Seconds)
		}
	}
}

// TestVerifierBackpressureDrops: a full queue rejects Offer without
// blocking, and the drop is counted.
func TestVerifierBackpressureDrops(t *testing.T) {
	col := NewCollector(64, 1)
	v := NewVerifier(col, 1, 1)
	defer v.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	slow := VerifyJob{Simulate: func(context.Context) ([sim.NumDesigns]sim.Result, error) {
		once.Do(func() { close(started) })
		<-block
		return verifyResults(0), nil
	}}
	// First job occupies the worker; second fills the 1-slot queue; the
	// third must be dropped immediately.
	if !v.Offer(slow) {
		t.Fatal("offer 1 rejected")
	}
	<-started
	if !v.Offer(slow) {
		t.Fatal("offer 2 rejected with an empty queue")
	}
	done := make(chan bool, 1)
	go func() { done <- v.Offer(slow) }()
	select {
	case accepted := <-done:
		if accepted {
			t.Fatal("offer 3 accepted past a full queue")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Offer blocked on a full queue")
	}
	close(block)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := v.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := v.Stats()
	if st.Offered != 3 || st.Dropped != 1 || st.Verified != 2 {
		t.Fatalf("stats = %+v, want 3 offered / 1 dropped / 2 verified", st)
	}
	if st.Verified+st.Dropped > st.Offered {
		t.Fatalf("accounting broken: verified %d + dropped %d > offered %d", st.Verified, st.Dropped, st.Offered)
	}
}

// TestVerifierSimulateError: failed simulations count as errors and feed
// nothing to the collector.
func TestVerifierSimulateError(t *testing.T) {
	col := NewCollector(64, 1)
	v := NewVerifier(col, 1, 4)
	defer v.Close()
	v.Offer(VerifyJob{Simulate: func(context.Context) ([sim.NumDesigns]sim.Result, error) {
		return [sim.NumDesigns]sim.Result{}, errors.New("boom")
	}})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := v.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := v.Stats()
	if st.Errors != 1 || st.Verified != 0 {
		t.Fatalf("stats = %+v, want 1 error / 0 verified", st)
	}
	if col.Len() != 0 {
		t.Fatalf("collector holds %d traces after a failed simulation, want 0", col.Len())
	}
}

// TestVerifierCloseCancelsInFlight: Close returns even with a simulation
// stuck until its context is cancelled, and Offer after Close drops.
func TestVerifierCloseCancelsInFlight(t *testing.T) {
	col := NewCollector(64, 1)
	v := NewVerifier(col, 1, 4)
	started := make(chan struct{})
	v.Offer(VerifyJob{Simulate: func(ctx context.Context) ([sim.NumDesigns]sim.Result, error) {
		close(started)
		<-ctx.Done()
		return [sim.NumDesigns]sim.Result{}, ctx.Err()
	}})
	<-started
	closed := make(chan struct{})
	go func() { v.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not cancel the in-flight simulation")
	}
	if v.Offer(verifyJob(0, 0)) {
		t.Fatal("Offer accepted after Close")
	}
	st := v.Stats()
	if st.Errors != 1 {
		t.Fatalf("cancelled in-flight job not counted as error: %+v", st)
	}
}
