package reconfig

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"misam/internal/features"
	"misam/internal/sim"
	"misam/internal/sparse"
)

// loaded is shorthand for a state with the given design programmed.
func loaded(id sim.DesignID) State { return State{Loaded: id, HasLoaded: true} }

// TestThresholdMonotonicity: raising the threshold can only make the
// engine switch at the same or smaller amortization, never later.
func TestThresholdMonotonicity(t *testing.T) {
	_, base := trainSmall(t)
	rng := rand.New(rand.NewSource(31))
	a := sparse.Uniform(rng, 3000, 3000, 0.001)
	bm := sparse.Uniform(rng, 3000, 256, 0.05)
	v := features.Extract(a, bm)

	minUnits := func(threshold float64) float64 {
		eng := NewEngine(base.Predictor, DefaultTimeModel(), threshold)
		for units := 1.0; units <= 1<<26; units *= 2 {
			if d := eng.Decide(loaded(sim.Design1), v, sim.Design4, units); d.Target == sim.Design4 {
				return units
			}
		}
		return 1 << 27
	}
	loose := minUnits(0.8)
	strict := minUnits(0.05)
	if loose > strict {
		t.Errorf("loose threshold switches at %v units, strict at %v; monotonicity violated", loose, strict)
	}
}

// TestDecideNeverSwitchesToSlowerPrediction: if the predictor thinks the
// proposal is slower, the engine must keep the current design regardless
// of amortization.
func TestDecideNeverSwitchesToSlowerPrediction(t *testing.T) {
	_, eng := trainSmall(t)
	rng := rand.New(rand.NewSource(32))
	found := false
	for i := 0; i < 30 && !found; i++ {
		a := sparse.Uniform(rng, 500+i*50, 500+i*50, 0.01)
		bm := sparse.DenseRandom(rng, 500+i*50, 64)
		v := features.Extract(a, bm)
		// Find a (current, proposal) ordering where the proposal is
		// predicted slower.
		for _, cur := range sim.AllDesigns {
			for _, prop := range sim.AllDesigns {
				if cur == prop {
					continue
				}
				if eng.Predictor.Predict(v, prop) > eng.Predictor.Predict(v, cur) {
					if d := eng.Decide(loaded(cur), v, prop, 1e12); d.Target != cur {
						t.Fatalf("engine switched %v→%v despite predicted slowdown", cur, prop)
					}
					found = true
				}
			}
		}
	}
	if !found {
		t.Skip("no predicted-slower pair found in the sweep")
	}
}

func TestPartialReconfigMonotoneInFraction(t *testing.T) {
	m := DefaultTimeModel()
	f := func(aIn, bIn uint8) bool {
		fa := float64(aIn) / 255
		fb := float64(bIn) / 255
		if fa > fb {
			fa, fb = fb, fa
		}
		return m.PartialReconfig(sim.Design1, fa) <= m.PartialReconfig(sim.Design1, fb)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamSwitchesOnStructureChange: a matrix whose character changes
// mid-stream should trigger at least one free (shared-bitstream) design
// change when starting from Design 2.
func TestStreamSwitchesOnStructureChange(t *testing.T) {
	_, eng := trainSmall(t)
	dev := NewDevice("test", eng)
	dev.ForceLoad(sim.Design2)
	rng := rand.New(rand.NewSource(33))

	// Top half regular banded, bottom half heavy-tailed.
	const n = 20000
	m := sparse.NewCOO(n, n)
	upper := sparse.Banded(rng, n/2, n, 4, 0.8)
	for r := 0; r < upper.Rows; r++ {
		cols, vals := upper.Row(r)
		for i, c := range cols {
			m.Append(r, c, vals[i])
		}
	}
	lower := sparse.PowerLaw(rng, n/2, n, n*3, 1.5)
	for r := 0; r < lower.Rows; r++ {
		cols, vals := lower.Row(r)
		for i, c := range cols {
			m.Append(n/2+r, c, vals[i])
		}
	}
	m.Normalize()
	a := m.ToCSR()
	b := sparse.DenseRandom(rng, n, 32)

	// An imbalance-keyed selector: Design 3 for heavy-tailed tiles,
	// Design 2 otherwise — both on the shared bitstream, so every switch
	// the engine accepts must be free.
	sel := imbalanceSelector{}
	res, err := dev.Stream(context.Background(), rng, sel, a, b, 2500, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) < 5 {
		t.Fatalf("expected several tiles, got %d", len(res.Outcomes))
	}
	proposals := map[sim.DesignID]bool{}
	for _, o := range res.Outcomes {
		proposals[o.Proposed] = true
		if o.Decision.Target != sim.Design2 && o.Decision.Target != sim.Design3 {
			t.Fatalf("engine left the shared bitstream: %v", o.Decision.Target)
		}
	}
	if !proposals[sim.Design2] || !proposals[sim.Design3] {
		t.Fatalf("structure change not visible in proposals: %v", proposals)
	}
	// Every accepted D2↔D3 move shares the bitstream: zero switch cost.
	if res.ReconfigSeconds != 0 {
		t.Errorf("shared-bitstream stream paid %.2fs reconfiguration", res.ReconfigSeconds)
	}
	if res.TotalSeconds != res.ComputeSeconds+res.ReconfigSeconds {
		t.Error("stream totals inconsistent")
	}
}

// imbalanceSelector proposes Design 3 for heavy-tailed tiles and Design 2
// otherwise.
type imbalanceSelector struct{}

func (imbalanceSelector) Select(v features.Vector) sim.DesignID {
	if v[features.ALoadImbalanceRow] > 4 {
		return sim.Design3
	}
	return sim.Design2
}

// TestDecideProposalEqualsLoaded is the trivial fast path.
func TestDecideProposalEqualsLoaded(t *testing.T) {
	_, eng := trainSmall(t)
	var v features.Vector
	d := eng.Decide(loaded(sim.Design3), v, sim.Design3, 100)
	if d.Reconfigure || d.Target != sim.Design3 || d.ReconfigSeconds != 0 {
		t.Errorf("no-op proposal mishandled: %+v", d)
	}
}

// TestDecideClampsUnits: remainingUnits below 1 behaves like 1.
func TestDecideClampsUnits(t *testing.T) {
	_, eng := trainSmall(t)
	var v features.Vector
	a := eng.Decide(loaded(sim.Design1), v, sim.Design2, 0)
	b := eng.Decide(loaded(sim.Design1), v, sim.Design2, 1)
	if a.Target != b.Target {
		t.Error("units clamp changed the decision")
	}
}

// TestDecideIsPure: the engine is stateless — the same inputs always give
// the same verdict, and deciding never perturbs anything observable.
func TestDecideIsPure(t *testing.T) {
	_, eng := trainSmall(t)
	rng := rand.New(rand.NewSource(77))
	a := sparse.Uniform(rng, 800, 800, 0.01)
	b := sparse.DenseRandom(rng, 800, 32)
	v := features.Extract(a, b)
	for _, st := range []State{{}, loaded(sim.Design1), loaded(sim.Design3)} {
		first := eng.Decide(st, v, sim.Design4, 1e6)
		for i := 0; i < 5; i++ {
			if got := eng.Decide(st, v, sim.Design4, 1e6); got != first {
				t.Fatalf("Decide not deterministic: %+v vs %+v", got, first)
			}
		}
	}
}

// TestDeviceConcurrentUse exercises one device from several goroutines;
// run with -race to verify the state guard. The shared engine is pure, so
// the only synchronization is the device's.
func TestDeviceConcurrentUse(t *testing.T) {
	_, eng := trainSmall(t)
	dev := NewDevice("race", eng)
	dev.ForceLoad(sim.Design1)
	var v features.Vector
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				dev.DecideApply(v, sim.AllDesigns[(g+i)%4], float64(i+1))
				dev.Loaded()
				dev.Stats()
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if _, ok := dev.Loaded(); !ok {
		t.Error("device lost its state under concurrency")
	}
	if got := dev.Stats().Requests; got != 8*200 {
		t.Errorf("committed %d transactions, want %d", got, 8*200)
	}
}

// TestStreamCancellation: a context cancelled mid-stream stops between
// tiles with context.Canceled, and the device commits the partial state.
func TestStreamCancellation(t *testing.T) {
	_, eng := trainSmall(t)
	dev := NewDevice("cancel", eng)
	rng := rand.New(rand.NewSource(41))
	a := sparse.Uniform(rng, 4000, 1000, 0.01)
	b := sparse.DenseRandom(rng, 1000, 32)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := dev.Stream(ctx, rng, fixedSelector{sim.Design1}, a, b, 500, 1000)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.Outcomes) != 0 {
		t.Errorf("pre-cancelled stream executed %d tiles", len(res.Outcomes))
	}
	if _, ok := dev.Loaded(); ok {
		t.Error("cancelled-before-start stream should not have programmed a bitstream")
	}
}
