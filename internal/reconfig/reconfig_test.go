package reconfig

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"misam/internal/dataset"
	"misam/internal/features"
	"misam/internal/mltree"
	"misam/internal/sim"
	"misam/internal/sparse"
)

func TestFullReconfigInPaperWindow(t *testing.T) {
	m := DefaultTimeModel()
	for _, id := range sim.AllDesigns {
		got := m.FullReconfig(id)
		// §6.1: "full bitstream reconfiguration ... typically takes 3–4
		// seconds".
		if got < 3.0 || got > 4.2 {
			t.Errorf("%v full reconfig %.2fs outside the 3–4s window", id, got)
		}
	}
}

func TestPartialReconfigCheaperForSmallRegions(t *testing.T) {
	m := DefaultTimeModel()
	small := m.PartialReconfig(sim.Design1, 0.05)
	full := m.FullReconfig(sim.Design1)
	// §6.1: small dynamic regions take "several hundred milliseconds".
	if small > 0.5 {
		t.Errorf("small-region partial reconfig %.2fs, want sub-half-second", small)
	}
	if m.PartialReconfig(sim.Design1, 1) < full {
		t.Error("full-fabric partial reconfig should not undercut full reconfig")
	}
	if m.PartialReconfig(sim.Design1, -1) != m.PartialReconfig(sim.Design1, 0) {
		t.Error("fraction not clamped")
	}
}

func TestSwitchSharedBitstreamIsFree(t *testing.T) {
	m := DefaultTimeModel()
	if got := m.Switch(sim.Design2, sim.Design3); got != 0 {
		t.Errorf("D2→D3 switch cost %.2f, want 0 (shared bitstream)", got)
	}
	if got := m.Switch(sim.Design1, sim.Design4); got == 0 {
		t.Error("D1→D4 switch should cost a full reconfiguration")
	}
	if got := m.Switch(sim.Design1, sim.Design1); got != 0 {
		t.Error("no-op switch should be free")
	}
}

// trainSmall builds a corpus, predictor and engine for engine tests.
func trainSmall(t *testing.T) (*dataset.Corpus, *Engine) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	c, err := dataset.GenerateClassifier(rng, 100, 512)
	if err != nil {
		t.Fatal(err)
	}
	p, err := TrainLatencyPredictor(c, mltree.Config{MaxDepth: 12, MinSamplesLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	return c, NewEngine(p, DefaultTimeModel(), 0.20)
}

func TestLatencyPredictorTracksSimulator(t *testing.T) {
	c, eng := trainSmall(t)
	var pred, truth []float64
	for _, s := range c.Samples {
		for _, id := range sim.AllDesigns {
			pred = append(pred, eng.Predictor.PredictTarget(s.Features, id))
			truth = append(truth, dataset.LatencyTarget(s.LatencySec[id]))
		}
	}
	r2 := mltree.R2(pred, truth)
	if r2 < 0.9 {
		t.Errorf("latency predictor training R² = %.3f, want >= 0.9", r2)
	}
}

func TestDecideFirstLoadAlwaysSwitches(t *testing.T) {
	_, eng := trainSmall(t)
	var v features.Vector
	d := eng.Decide(State{}, v, sim.Design2, 1)
	if !d.Reconfigure || d.Target != sim.Design2 {
		t.Errorf("cold engine should program the proposal: %+v", d)
	}
	if d.ReconfigSeconds <= 0 {
		t.Error("initial programming should cost time")
	}
}

func TestDecideKeepsCurrentWhenGainSmall(t *testing.T) {
	_, eng := trainSmall(t)
	// A single small unit: 3.5s of reconfiguration can never beat a
	// microsecond-scale gain.
	rng := rand.New(rand.NewSource(5))
	a := sparse.Uniform(rng, 200, 200, 0.02)
	b := sparse.DenseRandom(rng, 200, 64)
	v := features.Extract(a, b)
	d := eng.Decide(State{Loaded: sim.Design1, HasLoaded: true}, v, sim.Design2, 1)
	if d.Reconfigure || d.Target != sim.Design1 {
		t.Errorf("engine switched for a tiny workload: %+v", d)
	}
}

func TestDecideSwitchesWhenAmortized(t *testing.T) {
	_, eng := trainSmall(t)
	// Find a workload where Design 4 clearly beats Design 1 and scale the
	// remaining units until the amortized gain dwarfs the 3.5s switch.
	rng := rand.New(rand.NewSource(6))
	a := sparse.Uniform(rng, 2000, 2000, 0.002)
	b := sparse.Uniform(rng, 2000, 2000, 0.0005)
	v := features.Extract(a, b)
	cur := eng.Predictor.Predict(v, sim.Design1)
	best := eng.Predictor.Predict(v, sim.Design4)
	if best >= cur {
		t.Skip("predictor does not favor Design 4 on this draw")
	}
	units := eng.Times.FullReconfig(sim.Design4)/(eng.Threshold*(cur-best)) + 10
	d := eng.Decide(State{Loaded: sim.Design1, HasLoaded: true}, v, sim.Design4, units)
	if !d.Reconfigure || d.Target != sim.Design4 {
		t.Errorf("engine refused an amortized win: %+v (gain %.3f)", d, d.Gain)
	}
}

func TestDecideSharedBitstreamSwitchIsFree(t *testing.T) {
	_, eng := trainSmall(t)
	rng := rand.New(rand.NewSource(7))
	a := sparse.Imbalanced(rng, 1500, 1500, 15000, 0.01, 0.9)
	b := sparse.DenseRandom(rng, 1500, 32)
	v := features.Extract(a, b)
	cur := eng.Predictor.Predict(v, sim.Design2)
	best := eng.Predictor.Predict(v, sim.Design3)
	if best >= cur {
		t.Skip("predictor does not favor Design 3 on this draw")
	}
	d := eng.Decide(State{Loaded: sim.Design2, HasLoaded: true}, v, sim.Design3, 1)
	if d.Target != sim.Design3 {
		t.Errorf("free D2→D3 switch refused: %+v", d)
	}
	if d.ReconfigSeconds != 0 {
		t.Errorf("shared-bitstream switch charged %.2fs", d.ReconfigSeconds)
	}
}

func TestApplyUpdatesState(t *testing.T) {
	var st State
	if st.HasLoaded {
		t.Fatal("zero state should have no bitstream")
	}
	st = st.Apply(Decision{Target: sim.Design3})
	if !st.HasLoaded || st.Loaded != sim.Design3 {
		t.Errorf("State.Apply = %+v", st)
	}

	_, eng := trainSmall(t)
	dev := NewDevice("apply", eng)
	if _, ok := dev.Loaded(); ok {
		t.Fatal("fresh device should have no bitstream")
	}
	dev.Apply(Decision{Target: sim.Design3, Reconfigure: true, ReconfigSeconds: 3.5})
	if id, ok := dev.Loaded(); !ok || id != sim.Design3 {
		t.Errorf("Loaded = %v, %v", id, ok)
	}
	stats := dev.Stats()
	if stats.Requests != 1 || stats.Reconfigs != 1 || stats.ReconfigSeconds != 3.5 {
		t.Errorf("stats not committed: %+v", stats)
	}
}

func TestRandomRowTilesCoverAndBound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(rowsIn uint16, minIn, maxIn uint8) bool {
		rows := int(rowsIn)%5000 + 1
		minT := int(minIn)%100 + 1
		maxT := minT + int(maxIn)%200
		tiles := RandomRowTiles(rng, rows, minT, maxT)
		prev := 0
		for i, s := range tiles {
			if s.Lo != prev {
				return false
			}
			prev = s.Hi
			h := s.Hi - s.Lo
			if h > maxT {
				return false
			}
			// Only the final tile may undershoot the minimum.
			if h < minT && i != len(tiles)-1 {
				return false
			}
		}
		return prev == rows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceRows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := sparse.Uniform(rng, 50, 40, 0.2)
	s := SliceRows(a, 10, 30)
	if s.Rows != 20 || s.Cols != 40 {
		t.Fatalf("slice dims %dx%d", s.Rows, s.Cols)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid slice: %v", err)
	}
	for r := 0; r < 20; r++ {
		cols, vals := s.Row(r)
		origCols, origVals := a.Row(r + 10)
		if len(cols) != len(origCols) {
			t.Fatalf("row %d length mismatch", r)
		}
		for i := range cols {
			if cols[i] != origCols[i] || vals[i] != origVals[i] {
				t.Fatalf("row %d entry %d mismatch", r, i)
			}
		}
	}
	// Clamping.
	whole := SliceRows(a, -5, 99)
	if whole.Rows != 50 {
		t.Errorf("clamped slice rows %d, want 50", whole.Rows)
	}
}

type fixedSelector struct{ id sim.DesignID }

func (f fixedSelector) Select(features.Vector) sim.DesignID { return f.id }

func TestStreamExecutesAllTiles(t *testing.T) {
	_, eng := trainSmall(t)
	dev := NewDevice("stream", eng)
	dev.ForceLoad(sim.Design1)
	rng := rand.New(rand.NewSource(10))
	a := sparse.Uniform(rng, 3000, 1000, 0.01)
	b := sparse.DenseRandom(rng, 1000, 64)
	res, err := dev.Stream(context.Background(), rng, fixedSelector{sim.Design1}, a, b, 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) < 3 {
		t.Fatalf("expected multiple tiles, got %d", len(res.Outcomes))
	}
	if res.Reconfigs != 0 {
		t.Errorf("fixed selector on loaded design should never reconfigure, got %d", res.Reconfigs)
	}
	if res.TotalSeconds != res.ComputeSeconds+res.ReconfigSeconds {
		t.Error("totals inconsistent")
	}
	if res.OracleSeconds > res.ComputeSeconds+1e-12 {
		t.Error("oracle cannot be slower than the executed schedule")
	}
}
