// Package reconfig implements Misam's reconfiguration engine (§3.3): a
// latency-predictor model estimates how the predicted-best design and the
// currently loaded design would perform, a reconfiguration-time model
// prices the bitstream switch (3–4 s full reconfiguration on the U55C,
// §6.1; zero between Designs 2 and 3, which share a bitstream), and a
// user-tunable threshold decides whether switching pays off. A streaming
// executor applies the decision at tile granularity over large matrices.
//
// The package separates two concerns: Engine is the immutable pricing and
// prediction model — trained once, safe to share across any number of
// accelerators — while Device (device.go) owns the mutable per-accelerator
// state (which bitstream is loaded, per-device counters) and serializes
// the decide/apply transaction against it.
package reconfig

import (
	"context"
	"fmt"
	"math/rand"

	"misam/internal/dataset"
	"misam/internal/features"
	"misam/internal/memo"
	"misam/internal/mltree"
	"misam/internal/sim"
	"misam/internal/sparse"
)

// Mode selects how a design switch is realized (§6.1): a full bitstream
// load, partial reconfiguration of a dynamic region, or a CGRA-style
// context switch ("reconfiguration times in the microsecond to
// millisecond range").
type Mode int

const (
	// FullBitstream reprograms the whole fabric (3–4 s on the U55C).
	FullBitstream Mode = iota
	// PartialRegion reprograms only a dynamic region sized to the target
	// design's footprint ("several hundred milliseconds" for small
	// regions, §6.1).
	PartialRegion
	// CGRA models a coarse-grained reconfigurable array context switch.
	CGRA
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case FullBitstream:
		return "full"
	case PartialRegion:
		return "partial"
	case CGRA:
		return "cgra"
	default:
		return "unknown"
	}
}

// TimeModel prices FPGA reconfiguration.
type TimeModel struct {
	// PCIeBandwidth is the host→card link (6.4 GB/s over PCIe Gen4 x8,
	// §6.1).
	PCIeBandwidth float64
	// ProgramBase is the fabric-programming floor, "the primary
	// contributor to this overhead" (§6.1).
	ProgramBase float64
	// ProgramPerByte scales programming time with bitstream size.
	ProgramPerByte float64
	// PartialBase and PartialFraction model partial reconfiguration of a
	// dynamic region covering `fraction` of the fabric (§6.1: "several
	// hundred milliseconds" for small regions, approaching full
	// reconfiguration as the region grows).
	PartialBase float64
	// CGRASeconds is the context-switch time of a CGRA target (§6.1
	// places it in the microsecond-to-millisecond range).
	CGRASeconds float64
	// Mode selects the switching mechanism; the zero value is
	// FullBitstream, the paper's prototype.
	Mode Mode
}

// DefaultTimeModel reproduces the §6.1 measurements: full bitstream
// switches land in the 3–4 s window.
func DefaultTimeModel() TimeModel {
	return TimeModel{
		PCIeBandwidth:  6.4e9,
		ProgramBase:    2.6,
		ProgramPerByte: 1.2e-8,
		PartialBase:    0.15,
		CGRASeconds:    500e-6,
	}
}

// WithMode returns a copy of the model switched to the given mode.
func (m TimeModel) WithMode(mode Mode) TimeModel {
	m.Mode = mode
	return m
}

// FullReconfig returns the seconds to load design id from scratch.
func (m TimeModel) FullReconfig(id sim.DesignID) float64 {
	bytes := float64(sim.BitstreamBytes(id))
	return bytes/m.PCIeBandwidth + m.ProgramBase + bytes*m.ProgramPerByte
}

// PartialReconfig returns the seconds to reprogram a dynamic region
// covering fraction of the fabric.
func (m TimeModel) PartialReconfig(id sim.DesignID, fraction float64) float64 {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	return m.PartialBase + fraction*m.FullReconfig(id)
}

// Switch returns the cost of moving from design `from` to design `to`:
// zero when they share a bitstream ("transitions between design 2 and
// design 3 do not incur reconfiguration overhead", §5.2); otherwise the
// cost of the model's reconfiguration mode.
func (m TimeModel) Switch(from, to sim.DesignID) float64 {
	if sim.SharedBitstream(from, to) {
		return 0
	}
	switch m.Mode {
	case PartialRegion:
		// The dynamic region must cover the target design's largest
		// resource class.
		return m.PartialReconfig(to, sim.DesignResources(to).Max()/100)
	case CGRA:
		return m.CGRASeconds
	default:
		return m.FullReconfig(to)
	}
}

// LatencyPredictor is the engine's secondary model (§3.3): one regression
// tree per design over the matrix features, trained on simulated
// latencies and achieving the Figure 9 accuracy. Separate trees per
// design guarantee the predictor can always distinguish designs — a
// single tree with a design one-hot can pool all four into one leaf and
// predict zero gain everywhere (compare BenchmarkAblationOneHotPredictor).
type LatencyPredictor struct {
	Regs [sim.NumDesigns]*mltree.Regressor
}

// TrainLatencyPredictor fits the per-design regression trees on a
// labelled corpus.
func TrainLatencyPredictor(c *dataset.Corpus, cfg mltree.Config) (*LatencyPredictor, error) {
	x := c.X()
	p := &LatencyPredictor{}
	for _, id := range sim.AllDesigns {
		y := make([]float64, len(c.Samples))
		for i := range c.Samples {
			y[i] = dataset.LatencyTarget(c.Samples[i].LatencySec[id])
		}
		reg, err := mltree.TrainRegressor(x, y, cfg)
		if err != nil {
			return nil, fmt.Errorf("reconfig: train latency predictor for %v: %w", id, err)
		}
		p.Regs[id] = reg
	}
	return p, nil
}

// Predict estimates the latency in seconds of running a workload with the
// given features on the given design.
func (p *LatencyPredictor) Predict(v features.Vector, id sim.DesignID) float64 {
	return dataset.LatencyFromTarget(p.Regs[id].Predict(v.Slice()))
}

// PredictTarget returns the raw log10-milliseconds regression output,
// the space in which Figure 9's MAE is reported.
func (p *LatencyPredictor) PredictTarget(v features.Vector, id sim.DesignID) float64 {
	return p.Regs[id].Predict(v.Slice())
}

// PredictAll estimates the latency of every design for one feature
// vector — the fast path's stand-in for the four cycle simulations.
func (p *LatencyPredictor) PredictAll(v features.Vector) [sim.NumDesigns]float64 {
	var out [sim.NumDesigns]float64
	x := v.Slice()
	for _, id := range sim.AllDesigns {
		out[id] = dataset.LatencyFromTarget(p.Regs[id].Predict(x))
	}
	return out
}

// Engine combines the predictor, the time model and the threshold rule.
// An Engine is strictly immutable after construction: it holds no
// accelerator state and every method is a pure function, so one Engine
// may be shared by any number of Devices (and goroutines) without
// synchronization. The loaded-bitstream state it prices against is passed
// in explicitly as a State — Device owns that state.
type Engine struct {
	Predictor *LatencyPredictor
	Times     TimeModel
	// Threshold is the §3.3 knob: "reconfiguration is triggered only when
	// its overhead is less than [Threshold] of the expected gain"
	// (default 0.20).
	Threshold float64
}

// NewEngine returns an immutable pricing/prediction engine.
func NewEngine(p *LatencyPredictor, times TimeModel, threshold float64) *Engine {
	if threshold <= 0 {
		threshold = 0.20
	}
	return &Engine{Predictor: p, Times: times, Threshold: threshold}
}

// State is the bitstream state of one accelerator: which design is
// currently programmed, if any. The zero value means "nothing loaded".
type State struct {
	Loaded    sim.DesignID
	HasLoaded bool
}

// Decision is the engine's verdict for one workload (or tile stream).
type Decision struct {
	// Target is the design that will execute.
	Target sim.DesignID
	// Reconfigure reports whether a bitstream switch was triggered.
	Reconfigure bool
	// PredictedCurrent and PredictedBest are per-unit latency estimates
	// for the loaded design and the proposed design.
	PredictedCurrent float64
	PredictedBest    float64
	// ReconfigSeconds is the switch overhead charged (0 if none needed).
	ReconfigSeconds float64
	// Gain is the predicted total saving (over remaining work) of
	// switching, before overhead.
	Gain float64
}

// Decide evaluates whether an accelerator in state st should switch to
// `proposed` for a workload with the given features. It is a pure
// function of (st, v, proposed, remainingUnits) — committing the verdict
// to a real accelerator is Device.Apply's job. remainingUnits is the
// amortization factor — how many more tile-sized units of this workload
// will run on whichever bitstream is chosen (§5.2: "the reconfiguration
// cost is amortized over tiled processing"); pass 1 for a one-shot
// workload.
func (e *Engine) Decide(st State, v features.Vector, proposed sim.DesignID, remainingUnits float64) Decision {
	if remainingUnits < 1 {
		remainingUnits = 1
	}
	if !st.HasLoaded {
		// Nothing loaded: programming is mandatory, so pick the proposal.
		return Decision{
			Target:          proposed,
			Reconfigure:     true,
			PredictedBest:   e.Predictor.Predict(v, proposed),
			ReconfigSeconds: e.Times.FullReconfig(proposed),
		}
	}
	cur := e.Predictor.Predict(v, st.Loaded)
	best := e.Predictor.Predict(v, proposed)
	d := Decision{
		Target:           st.Loaded,
		PredictedCurrent: cur,
		PredictedBest:    best,
	}
	if proposed == st.Loaded {
		d.Target = proposed
		return d
	}
	overhead := e.Times.Switch(st.Loaded, proposed)
	gain := (cur - best) * remainingUnits
	d.Gain = gain
	if gain > 0 && overhead < e.Threshold*gain {
		d.Target = proposed
		d.Reconfigure = overhead > 0
		d.ReconfigSeconds = overhead
	}
	return d
}

// Apply folds a decision into a state value. It is the pure counterpart
// of Device.Apply.
func (st State) Apply(d Decision) State {
	return State{Loaded: d.Target, HasLoaded: true}
}

// Tile streaming (§3.3): "large matrices are divided into smaller tiles
// of varying sizes, typically ranging from 10k to 50k ... tile sizes are
// selected randomly from within this range" to avoid dimension bias.

// StreamTileMin and StreamTileMax bound the random tile heights.
const (
	StreamTileMin = 10_000
	StreamTileMax = 50_000
)

// RandomRowTiles partitions `rows` of A into random-height tiles in
// [minRows, maxRows].
func RandomRowTiles(rng *rand.Rand, rows, minRows, maxRows int) []sim.Span {
	if minRows < 1 {
		minRows = 1
	}
	if maxRows < minRows {
		maxRows = minRows
	}
	var tiles []sim.Span
	for lo := 0; lo < rows; {
		h := minRows
		if maxRows > minRows {
			h += rng.Intn(maxRows - minRows + 1)
		}
		hi := lo + h
		if hi > rows {
			hi = rows
		}
		tiles = append(tiles, sim.Span{Lo: lo, Hi: hi})
		lo = hi
	}
	return tiles
}

// SliceRows extracts A[lo:hi, :] as a CSR sharing no storage with A.
func SliceRows(a *sparse.CSR, lo, hi int) *sparse.CSR {
	if lo < 0 {
		lo = 0
	}
	if hi > a.Rows {
		hi = a.Rows
	}
	out := &sparse.CSR{Rows: hi - lo, Cols: a.Cols, RowPtr: make([]int, hi-lo+1)}
	base := a.RowPtr[lo]
	n := a.RowPtr[hi] - base
	out.ColIdx = append([]int(nil), a.ColIdx[base:base+n]...)
	out.Val = append([]float64(nil), a.Val[base:base+n]...)
	for r := lo; r < hi; r++ {
		out.RowPtr[r-lo+1] = a.RowPtr[r+1] - base
	}
	return out
}

// TileOutcome records one streamed tile's execution.
type TileOutcome struct {
	Tile        sim.Span
	Proposed    sim.DesignID
	Decision    Decision
	ActualSec   float64 // simulated latency on the chosen design
	OptimalSec  float64 // simulated latency on the per-tile best design
	ReconfigSec float64
}

// StreamResult summarizes a streamed execution.
type StreamResult struct {
	Outcomes []TileOutcome
	// TotalSeconds includes compute and reconfigurations.
	TotalSeconds float64
	// ComputeSeconds excludes reconfiguration overhead.
	ComputeSeconds float64
	// ReconfigSeconds is the total switching time paid.
	ReconfigSeconds float64
	// OracleSeconds is the per-tile-optimal compute time with free
	// reconfiguration — the "best design" bar of Figure 8.
	OracleSeconds float64
	Reconfigs     int
}

// Selector proposes a design for a feature vector (the root package's
// trained classifier satisfies this).
type Selector interface {
	Select(v features.Vector) sim.DesignID
}

// Stream executes A×B tile-by-tile under the engine's pricing: features
// are extracted per tile, the selector proposes a design, and the engine
// decides whether switching pays off given the remaining tile count.
// The bitstream state starts from st and is threaded through the tiles;
// the final state is returned alongside the result so a Device can commit
// it. ctx cancels the stream between tiles and aborts the per-tile
// simulations mid-flight.
func (e *Engine) Stream(ctx context.Context, rng *rand.Rand, sel Selector, a, b *sparse.CSR, minTile, maxTile int, st State) (StreamResult, State, error) {
	return e.StreamCached(ctx, rng, sel, a, b, minTile, maxTile, st, nil)
}

// tileAnalysis derives one tile's design-independent artifacts: the full
// feature vector, all four design simulations (one shared-precompute
// pass covers both the executed design and the per-tile oracle — the
// chosen design is always one of the four, so its result needs no second
// simulation), and the baseline statistics. Every field is populated so
// a cache entry built here is complete for any later consumer, including
// the serving path.
func tileAnalysis(ctx context.Context, a, b *sparse.CSR) (*memo.Analysis, error) {
	wl, err := sim.NewWorkload(a, b)
	if err != nil {
		return nil, err
	}
	an := &memo.Analysis{Features: features.Extract(a, b)}
	if an.Results, err = wl.SimulateAllCtx(ctx); err != nil {
		return nil, err
	}
	an.Baseline = wl.BaselineStats()
	return an, nil
}

// StreamCached is Stream backed by a content-addressed analysis cache
// (nil disables caching): per-tile features and simulations are keyed by
// the operand bytes, so re-streaming a matrix — or re-encountering a
// tile by content — skips straight to the pricing decision. The decision
// itself is never cached; it depends on the bitstream state threaded
// through the stream.
func (e *Engine) StreamCached(ctx context.Context, rng *rand.Rand, sel Selector, a, b *sparse.CSR, minTile, maxTile int, st State, cache *memo.Cache) (StreamResult, State, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	tiles := RandomRowTiles(rng, a.Rows, minTile, maxTile)
	var res StreamResult
	var bfp sparse.Fingerprint
	if cache != nil {
		bfp = b.Fingerprint()
	}
	for i, span := range tiles {
		if err := ctx.Err(); err != nil {
			return res, st, err
		}
		tile := SliceRows(a, span.Lo, span.Hi)
		var an *memo.Analysis
		var err error
		if cache != nil {
			an, _, err = cache.Do(ctx, memo.PairKey(tile.Fingerprint(), bfp),
				func(ctx context.Context) (*memo.Analysis, error) { return tileAnalysis(ctx, tile, b) })
		} else {
			an, err = tileAnalysis(ctx, tile, b)
		}
		if err != nil {
			return res, st, fmt.Errorf("reconfig: tile %d: %w", i, err)
		}
		proposed := sel.Select(an.Features)
		dec := e.Decide(st, an.Features, proposed, float64(len(tiles)-i))
		st = st.Apply(dec)

		all := an.Results
		actual := all[dec.Target]
		opt := all[sim.BestDesign(all)].Seconds

		out := TileOutcome{
			Tile:        span,
			Proposed:    proposed,
			Decision:    dec,
			ActualSec:   actual.Seconds,
			OptimalSec:  opt,
			ReconfigSec: dec.ReconfigSeconds,
		}
		res.Outcomes = append(res.Outcomes, out)
		res.ComputeSeconds += actual.Seconds
		res.ReconfigSeconds += dec.ReconfigSeconds
		res.OracleSeconds += opt
		if dec.Reconfigure {
			res.Reconfigs++
		}
	}
	res.TotalSeconds = res.ComputeSeconds + res.ReconfigSeconds
	return res, st, nil
}
