package reconfig

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"

	"misam/internal/features"
	"misam/internal/memo"
	"misam/internal/sim"
	"misam/internal/sparse"
)

// DeviceStats are the running counters of one accelerator. All fields
// are cumulative since the device was created.
type DeviceStats struct {
	// Requests counts committed decide/apply transactions (one per
	// analyzed workload; streamed tiles count individually under Tiles).
	Requests int64
	// Reconfigs counts bitstream switches actually triggered.
	Reconfigs int64
	// ReconfigSeconds is the total switching time charged.
	ReconfigSeconds float64
	// Tiles counts tiles executed through Stream.
	Tiles int64
	// ReconfigsAvoided counts placement affinity hits: acquisitions that
	// landed on this device because it already held (or shared a
	// bitstream with) the request's predicted winner, so the request
	// paid no switch it would otherwise have risked on an arbitrary
	// device. The fleet's placement layer increments it at checkout.
	ReconfigsAvoided int64
}

// Device is one (simulated) reconfigurable accelerator: it owns the
// mutable state an Engine only prices — the currently loaded bitstream
// and per-device counters — and serializes the decide/apply transaction
// against that state. The Engine behind it is immutable and may be shared
// by many devices; the Device's own methods are safe for concurrent use.
//
// A Device does not serialize the simulations that follow a decision;
// callers that need whole-request exclusivity (one in-flight analyze per
// accelerator, as a host daemon fronting real hardware would) check
// devices in and out of a fleet.Fleet instead.
type Device struct {
	name   string
	engine *Engine

	// loaded mirrors st.{Loaded,HasLoaded} as a single packed word
	// (0 = nothing loaded, otherwise DesignID+1) so Loaded is wait-free:
	// the placement layer scans every device's bitstream on its hot path
	// and must never contend with an in-flight DecideApply holding mu.
	// Written only under mu (all st writers), read without it.
	loaded atomic.Uint32

	// avoided is DeviceStats.ReconfigsAvoided. It is written by the
	// fleet at checkout time — outside the decide/apply transaction —
	// so it lives beside mu rather than under it.
	avoided atomic.Int64

	mu    sync.Mutex
	st    State
	stats DeviceStats
}

// NewDevice returns a device with no bitstream loaded, pricing its
// decisions with the given engine.
func NewDevice(name string, e *Engine) *Device {
	return &Device{name: name, engine: e}
}

// Name identifies the device (e.g. "fpga0").
func (d *Device) Name() string { return d.name }

// Engine returns the immutable pricing engine behind the device.
func (d *Device) Engine() *Engine { return d.engine }

// storeLoadedLocked refreshes the wait-free bitstream mirror; d.mu must
// be held (it is the only place st is written, so the mirror can never
// tear or go stale against the lock-protected truth).
func (d *Device) storeLoadedLocked() {
	if d.st.HasLoaded {
		d.loaded.Store(uint32(d.st.Loaded) + 1)
	} else {
		d.loaded.Store(0)
	}
}

// Loaded reports the currently loaded design; ok is false before the
// first load. It is wait-free — a single atomic load — so placement
// scans never block behind an in-flight decide/apply transaction.
func (d *Device) Loaded() (sim.DesignID, bool) {
	packed := d.loaded.Load()
	if packed == 0 {
		return 0, false
	}
	return sim.DesignID(packed - 1), true
}

// LoadedState is Loaded as a State value, for cost-model scoring.
func (d *Device) LoadedState() State {
	id, ok := d.Loaded()
	return State{Loaded: id, HasLoaded: ok}
}

// CountReconfigAvoided records one placement affinity hit (see
// DeviceStats.ReconfigsAvoided). Called by the fleet, not by requests.
func (d *Device) CountReconfigAvoided() { d.avoided.Add(1) }

// State snapshots the device's bitstream state.
func (d *Device) State() State {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.st
}

// Stats snapshots the device's counters.
func (d *Device) Stats() DeviceStats {
	d.mu.Lock()
	st := d.stats
	d.mu.Unlock()
	st.ReconfigsAvoided = d.avoided.Load()
	return st
}

// ForceLoad installs a bitstream unconditionally (initial programming,
// or a rebalancer preload on an idle device the caller has checked out).
func (d *Device) ForceLoad(id sim.DesignID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.st = State{Loaded: id, HasLoaded: true}
	d.storeLoadedLocked()
}

// Decide prices a proposal against the device's current state without
// committing anything — a read-only peek. Use DecideApply for the real
// transaction.
func (d *Device) Decide(v features.Vector, proposed sim.DesignID, remainingUnits float64) Decision {
	d.mu.Lock()
	st := d.st
	d.mu.Unlock()
	return d.engine.Decide(st, v, proposed, remainingUnits)
}

// Apply commits a decision to the device's bitstream state and counters.
func (d *Device) Apply(dec Decision) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.commitLocked(dec)
}

// DecideApply runs the decide/apply transaction atomically: the decision
// is priced against the state it is committed over, so two concurrent
// callers can never both decide against the same stale bitstream.
func (d *Device) DecideApply(v features.Vector, proposed sim.DesignID, remainingUnits float64) Decision {
	return d.DecideApplyWith(nil, v, proposed, remainingUnits)
}

// DecideApplyWith is DecideApply priced with a caller-supplied engine
// (nil uses the device's own). The registry-backed serving path passes
// the engine of the model snapshot it grabbed for the request, so the
// selector proposal and the pricing prediction always come from one
// consistent snapshot even while a promotion hot-swaps the registry.
func (d *Device) DecideApplyWith(e *Engine, v features.Vector, proposed sim.DesignID, remainingUnits float64) Decision {
	if e == nil {
		e = d.engine
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	dec := e.Decide(d.st, v, proposed, remainingUnits)
	d.commitLocked(dec)
	return dec
}

// commitLocked folds a decision into state and stats; d.mu must be held.
func (d *Device) commitLocked(dec Decision) {
	d.st = d.st.Apply(dec)
	d.storeLoadedLocked()
	d.stats.Requests++
	if dec.Reconfigure {
		d.stats.Reconfigs++
	}
	d.stats.ReconfigSeconds += dec.ReconfigSeconds
}

// Stream executes A×B tile-by-tile on this device (§3.3), starting from
// the device's current bitstream and committing the final state when the
// stream completes or is cancelled. Per-tile decisions inside the stream
// are not visible to concurrent DecideApply callers until the commit;
// check the device out of a fleet for whole-stream exclusivity.
func (d *Device) Stream(ctx context.Context, rng *rand.Rand, sel Selector, a, b *sparse.CSR, minTile, maxTile int) (StreamResult, error) {
	return d.StreamCached(ctx, rng, sel, a, b, minTile, maxTile, nil)
}

// StreamCached is Stream backed by a content-addressed analysis cache
// (nil disables caching); see Engine.StreamCached.
func (d *Device) StreamCached(ctx context.Context, rng *rand.Rand, sel Selector, a, b *sparse.CSR, minTile, maxTile int, cache *memo.Cache) (StreamResult, error) {
	d.mu.Lock()
	st := d.st
	d.mu.Unlock()

	res, final, err := d.engine.StreamCached(ctx, rng, sel, a, b, minTile, maxTile, st, cache)

	d.mu.Lock()
	d.st = final
	d.storeLoadedLocked()
	d.stats.Tiles += int64(len(res.Outcomes))
	d.stats.Reconfigs += int64(res.Reconfigs)
	d.stats.ReconfigSeconds += res.ReconfigSeconds
	d.mu.Unlock()
	return res, err
}
