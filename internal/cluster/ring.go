// Package cluster shards the Misam serving layer across nodes. The
// whole stack below it was built for this: analysis cache entries are
// content-addressed by operand fingerprints (memo.PairKey), model
// snapshots are immutable and versioned, and the binary wire format is
// self-delimiting — so a request can be routed to the node that owns its
// key, its body forwarded byte for byte, and the owner's warm cache and
// singleflight coalescing keep working at fleet scale with zero
// re-keying.
//
// Three pieces:
//
//   - Ring: a consistent-hash ring over the member set (virtual nodes
//     seeded by member ID), keyed on the operand pair's memo.Key. Every
//     node computes the same owner for the same key, and membership
//     changes remap only the departed member's share.
//   - Cluster: the peer table — one bounded-connection HTTP client per
//     peer, forwarding with per-attempt timeouts and N retries, and the
//     counters behind GET /v1/cluster. A forward that exhausts its
//     retries degrades to serving locally: a dead peer costs cache
//     locality, never availability.
//   - Replicator: registry replication. Each node pushes its current
//     model snapshot to every peer each sync interval (and immediately
//     after a local promotion or rollback); receivers apply a push only
//     when its Lamport (seq, origin) stamp is newer than their own, so
//     the latest operator action wins cluster-wide and re-deliveries are
//     idempotent.
package cluster

import (
	"fmt"
	"sort"

	"misam/internal/memo"
)

// DefaultVNodes is the virtual-node count per member. 64 points per
// member keeps the ownership shares of small clusters within a few
// percent of uniform while the ring stays tiny (N*64 points).
const DefaultVNodes = 64

// ringPoint is one virtual node: a position on the 64-bit ring owned by
// a member.
type ringPoint struct {
	point  uint64
	member int // index into Ring.members
}

// Ring is an immutable consistent-hash ring over a member set. Build it
// once from the full membership (self included); Owner is safe for
// concurrent use.
type Ring struct {
	members []string
	points  []ringPoint
}

// NewRing builds a ring with vnodes virtual nodes per member (<= 0 uses
// DefaultVNodes). Member order does not matter: the points depend only
// on the member IDs, so every node that knows the same membership —
// regardless of how its -peers list was ordered — computes the same
// owner for every key.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("cluster: duplicate ring member %q", sorted[i])
		}
	}
	r := &Ring{
		members: sorted,
		points:  make([]ringPoint, 0, len(sorted)*vnodes),
	}
	for mi, m := range sorted {
		// Seed the member's point sequence from its ID alone: a
		// splitmix64 walk from the hashed ID gives well-spread,
		// order-independent points.
		h := hashString(m)
		for v := 0; v < vnodes; v++ {
			h += 0x9e3779b97f4a7c15
			r.points = append(r.points, ringPoint{point: mix64(h), member: mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].point != r.points[j].point {
			return r.points[i].point < r.points[j].point
		}
		// Colliding points tie-break on member ID so every node breaks
		// the (astronomically unlikely) tie the same way.
		return r.members[r.points[i].member] < r.members[r.points[j].member]
	})
	return r, nil
}

// Members returns the member IDs in ring (sorted) order.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Owner returns the member owning key: the first virtual node at or
// clockwise of the key's ring position.
func (r *Ring) Owner(key memo.Key) string {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].point >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point to the ring's start
	}
	return r.members[r.points[i].member]
}

// Shares estimates each member's ownership fraction from its share of
// ring arc length — the expected fraction of keys it owns.
func (r *Ring) Shares() map[string]float64 {
	shares := make(map[string]float64, len(r.members))
	if len(r.points) == 0 {
		return shares
	}
	// The arc ending at point i belongs to point i's member.
	prev := r.points[len(r.points)-1].point
	for _, p := range r.points {
		arc := p.point - prev // uint64 wrap-around handles the seam
		shares[r.members[p.member]] += float64(arc) / (1 << 64)
		prev = p.point
	}
	return shares
}

// hashKey maps a memo.Key onto the ring. The key is already a mixed
// 128-bit content address; hashing its byte image (the stable wire form
// memo.Key.Bytes defines) folds it to the ring's 64-bit space without
// correlating with the vnode point sequence.
func hashKey(k memo.Key) uint64 {
	b := k.Bytes()
	h := uint64(14695981039346656037) // FNV-64a offset basis
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return mix64(h)
}

// hashString is FNV-64a over the member ID.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
