package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"misam/internal/memo"
)

func testMembers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://node-%d:8080", i)
	}
	return out
}

func randKeys(n int, seed int64) []memo.Key {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]memo.Key, n)
	for i := range keys {
		keys[i] = memo.Key{Hi: rng.Uint64(), Lo: rng.Uint64()}
	}
	return keys
}

// TestRingBalance pins the distribution property: with the default
// vnode count every member's observed key share stays inside a
// tolerance band around 1/N, and the arc-length Shares estimate tracks
// the observed shares.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			members := testMembers(n)
			r, err := NewRing(members, 0)
			if err != nil {
				t.Fatal(err)
			}
			keys := randKeys(40000, int64(n))
			counts := make(map[string]int, n)
			for _, k := range keys {
				counts[r.Owner(k)]++
			}
			want := float64(len(keys)) / float64(n)
			// 64 vnodes/member keeps shares within a factor ~2 of uniform
			// with overwhelming probability; the band is deterministic here
			// because keys and members are fixed.
			lo, hi := want*0.45, want*2.2
			for _, m := range members {
				if c := counts[m]; float64(c) < lo || float64(c) > hi {
					t.Errorf("member %s owns %d of %d keys, outside [%.0f, %.0f]", m, c, len(keys), lo, hi)
				}
			}
			shares := r.Shares()
			var sum float64
			for _, m := range members {
				sum += shares[m]
				observed := float64(counts[m]) / float64(len(keys))
				if diff := shares[m] - observed; diff > 0.02 || diff < -0.02 {
					t.Errorf("member %s: arc share %.4f vs observed %.4f", m, shares[m], observed)
				}
			}
			if sum < 0.999 || sum > 1.001 {
				t.Errorf("shares sum to %.6f, want 1", sum)
			}
		})
	}
}

// TestRingMinimalRemap pins consistent hashing's reason to exist:
// removing one member remaps ONLY the keys that member owned — every
// other key keeps its owner — and the remapped fraction is ~1/N.
func TestRingMinimalRemap(t *testing.T) {
	const n = 5
	members := testMembers(n)
	full, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	removed := members[2]
	reduced, err := NewRing(append(append([]string(nil), members[:2]...), members[3:]...), 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := randKeys(40000, 7)
	remapped := 0
	for _, k := range keys {
		before, after := full.Owner(k), reduced.Owner(k)
		if before == removed {
			remapped++
			if after == removed {
				t.Fatalf("key %v still owned by removed member", k)
			}
			continue
		}
		if before != after {
			t.Fatalf("key %v moved %s -> %s though its owner stayed in the ring", k, before, after)
		}
	}
	frac := float64(remapped) / float64(len(keys))
	if frac < 0.5/n || frac > 2.2/n {
		t.Errorf("removal remapped %.3f of keys, want ~1/%d", frac, n)
	}
}

// TestRingDeterminism pins that every node computes the same owner for
// the same key: rings built from any permutation of the member list are
// identical.
func TestRingDeterminism(t *testing.T) {
	members := testMembers(6)
	base, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := randKeys(5000, 11)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 4; trial++ {
		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r, err := NewRing(shuffled, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if got, want := r.Owner(k), base.Owner(k); got != want {
				t.Fatalf("trial %d: key %v owned by %s, want %s", trial, k, got, want)
			}
		}
	}
}

func TestRingRejectsDuplicates(t *testing.T) {
	if _, err := NewRing([]string{"http://a:1", "http://b:1", "http://a:1"}, 0); err == nil {
		t.Fatal("duplicate member accepted")
	}
}

func TestRingSingleMemberOwnsEverything(t *testing.T) {
	r, err := NewRing([]string{"http://solo:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range randKeys(100, 3) {
		if r.Owner(k) != "http://solo:1" {
			t.Fatal("single-member ring routed a key elsewhere")
		}
	}
}
