package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"misam/internal/memo"
)

// Named configuration errors. misam-serve validates its -peers list
// against these at startup — a malformed peer must fail the process
// before it serves a single request, not at the first forward.
var (
	// ErrBadPeer marks a peer address that does not parse as an absolute
	// http(s) URL (scheme-less entries are the classic operator typo:
	// "localhost:8081" parses as scheme "localhost").
	ErrBadPeer = errors.New("cluster: malformed peer address")
	// ErrDuplicatePeer marks the same node listed twice (after URL
	// normalization), which would double its ring share.
	ErrDuplicatePeer = errors.New("cluster: duplicate peer address")
	// ErrSelfPeer marks a -peers entry naming this node itself: the ring
	// already includes self, and a self-peer would make the node forward
	// requests to its own listener.
	ErrSelfPeer = errors.New("cluster: peer list includes this node")
)

// ForwardedHeader marks a request that already crossed one forwarding
// hop. A receiving node always serves such a request locally — even if
// its own ring disagrees about the owner — so misconfigured or briefly
// divergent memberships can never bounce a request between nodes.
const ForwardedHeader = "X-Misam-Forwarded"

// Config describes one node's view of the cluster.
type Config struct {
	// Self is this node's advertised base URL — the exact string the
	// other members carry in their peer lists (e.g. http://10.0.0.1:8080).
	// Member identity is this string: all nodes must agree on it.
	Self string
	// Peers are the other members' base URLs.
	Peers []string
	// VNodes is the virtual-node count per member (<= 0 uses
	// DefaultVNodes).
	VNodes int
	// ForwardRetries is how many additional transport attempts a forward
	// gets after the first fails (< 0 means 0; default 1). When every
	// attempt fails the request is served locally instead.
	ForwardRetries int
	// ForwardTimeout bounds each forward attempt (default 15s).
	ForwardTimeout time.Duration
	// MaxConnsPerPeer bounds the connection pool to each peer
	// (default 32).
	MaxConnsPerPeer int
	// SyncInterval is the registry replication push cadence
	// (default 2s).
	SyncInterval time.Duration
}

const (
	defaultForwardRetries  = 1
	defaultForwardTimeout  = 15 * time.Second
	defaultMaxConnsPerPeer = 32
	defaultSyncInterval    = 2 * time.Second
)

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.ForwardRetries < 0 {
		c.ForwardRetries = 0
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = defaultForwardTimeout
	}
	if c.MaxConnsPerPeer <= 0 {
		c.MaxConnsPerPeer = defaultMaxConnsPerPeer
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = defaultSyncInterval
	}
	return c
}

// normalizeAddr canonicalizes one member address: an absolute http(s)
// URL with a host, lowercased scheme/host, no trailing slash.
func normalizeAddr(addr string) (string, error) {
	addr = strings.TrimSpace(addr)
	if addr == "" {
		return "", fmt.Errorf("%w: empty address", ErrBadPeer)
	}
	u, err := url.Parse(addr)
	if err != nil {
		return "", fmt.Errorf("%w: %q: %v", ErrBadPeer, addr, err)
	}
	scheme := strings.ToLower(u.Scheme)
	if scheme != "http" && scheme != "https" {
		return "", fmt.Errorf("%w: %q needs an http:// or https:// scheme", ErrBadPeer, addr)
	}
	if u.Host == "" {
		return "", fmt.Errorf("%w: %q has no host", ErrBadPeer, addr)
	}
	base := scheme + "://" + strings.ToLower(u.Host)
	if p := strings.TrimSuffix(u.Path, "/"); p != "" {
		base += p
	}
	return base, nil
}

// ValidateConfig normalizes and validates the member addresses, and
// returns the canonical (self, peers) pair. It fails with ErrBadPeer,
// ErrDuplicatePeer or ErrSelfPeer — the fail-fast gate misam-serve runs
// before binding its listener.
func ValidateConfig(self string, peers []string) (string, []string, error) {
	selfN, err := normalizeAddr(self)
	if err != nil {
		return "", nil, fmt.Errorf("node id: %w", err)
	}
	seen := map[string]bool{selfN: true}
	out := make([]string, 0, len(peers))
	for _, p := range peers {
		pn, err := normalizeAddr(p)
		if err != nil {
			return "", nil, err
		}
		if pn == selfN {
			return "", nil, fmt.Errorf("%w: %q is the node's own address", ErrSelfPeer, p)
		}
		if seen[pn] {
			return "", nil, fmt.Errorf("%w: %q listed twice", ErrDuplicatePeer, p)
		}
		seen[pn] = true
		out = append(out, pn)
	}
	return selfN, out, nil
}

// peer is one remote member: its bounded HTTP client plus health and
// forwarding counters.
type peer struct {
	id     string
	client *http.Client

	forwards    atomic.Int64 // forward attempts routed here (successful responses)
	errors      atomic.Int64 // transport attempts that failed
	fallbacks   atomic.Int64 // requests served locally after retries ran out
	syncPushes  atomic.Int64 // replication pushes accepted by this peer
	syncErrors  atomic.Int64 // replication pushes that failed in transport
	consecFails atomic.Int64 // consecutive transport failures (0 = healthy)
}

// Cluster is one node's runtime view: the ring, the peer table, and the
// loop-prevention identity. All methods are safe for concurrent use.
type Cluster struct {
	cfg   Config
	self  string
	ring  *Ring
	peers map[string]*peer

	forwardedIn atomic.Int64 // requests that arrived with ForwardedHeader
	servedLocal atomic.Int64 // routed requests this node owned itself
}

// New validates cfg and builds the node's cluster view. The ring spans
// self plus every peer.
func New(cfg Config) (*Cluster, error) {
	self, peers, err := ValidateConfig(cfg.Self, cfg.Peers)
	if err != nil {
		return nil, err
	}
	cfg.Self, cfg.Peers = self, peers
	cfg = cfg.withDefaults()
	ring, err := NewRing(append([]string{self}, peers...), cfg.VNodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, self: self, ring: ring, peers: make(map[string]*peer, len(peers))}
	for _, p := range peers {
		c.peers[p] = &peer{
			id: p,
			client: &http.Client{
				Transport: &http.Transport{
					MaxConnsPerHost:     cfg.MaxConnsPerPeer,
					MaxIdleConnsPerHost: cfg.MaxConnsPerPeer,
					IdleConnTimeout:     90 * time.Second,
				},
			},
		}
	}
	return c, nil
}

// Self is this node's canonical member ID.
func (c *Cluster) Self() string { return c.self }

// Ring exposes the membership ring.
func (c *Cluster) Ring() *Ring { return c.ring }

// SyncInterval is the configured replication cadence.
func (c *Cluster) SyncInterval() time.Duration { return c.cfg.SyncInterval }

// Owner resolves the member owning key. self reports whether that
// member is this node.
func (c *Cluster) Owner(key memo.Key) (member string, self bool) {
	member = c.ring.Owner(key)
	return member, member == c.self
}

// NoteForwardedIn records a request that arrived pre-forwarded (and is
// therefore served locally unconditionally).
func (c *Cluster) NoteForwardedIn() { c.forwardedIn.Add(1) }

// NoteServedLocal records a routed request this node owned itself.
func (c *Cluster) NoteServedLocal() { c.servedLocal.Add(1) }

// ErrUnknownPeer reports a forward target outside the configured
// membership — a programming error, not a runtime condition.
var ErrUnknownPeer = errors.New("cluster: unknown peer")

// Forward proxies one request body to member, byte for byte: no decode,
// no re-encode, the peer's response returned verbatim. Transport
// failures are retried up to cfg.ForwardRetries additional times, each
// attempt under its own ForwardTimeout slice of ctx; any HTTP response
// (whatever its status) is the owner's answer and is never retried. When
// every attempt fails the caller should fall back to serving locally
// (and record it via NoteFallback).
func (c *Cluster) Forward(ctx context.Context, member, path, contentType string, body []byte) (status int, respCT string, respBody []byte, err error) {
	p, ok := c.peers[member]
	if !ok {
		return 0, "", nil, fmt.Errorf("%w: %q", ErrUnknownPeer, member)
	}
	attempts := 1 + c.cfg.ForwardRetries
	for i := 0; i < attempts; i++ {
		if err = ctx.Err(); err != nil {
			return 0, "", nil, err
		}
		status, respCT, respBody, err = c.forwardOnce(ctx, p, path, contentType, body)
		if err == nil {
			p.forwards.Add(1)
			p.consecFails.Store(0)
			return status, respCT, respBody, nil
		}
		p.errors.Add(1)
		p.consecFails.Add(1)
	}
	return 0, "", nil, err
}

func (c *Cluster) forwardOnce(ctx context.Context, p *peer, path, contentType string, body []byte) (int, string, []byte, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, p.id+path, bytes.NewReader(body))
	if err != nil {
		return 0, "", nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	req.Header.Set(ForwardedHeader, c.self)
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", nil, err
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), out, nil
}

// NoteFallback records a request whose owner could not be reached and
// was served locally instead — the graceful-degradation counter the
// failure-path tests assert on.
func (c *Cluster) NoteFallback(member string) {
	if p, ok := c.peers[member]; ok {
		p.fallbacks.Add(1)
	}
}

// Get issues a GET to a peer endpoint (stats fan-out) under one
// ForwardTimeout, marked with the forwarded header so the peer answers
// with its local view.
func (c *Cluster) Get(ctx context.Context, member, path string) (int, []byte, error) {
	p, ok := c.peers[member]
	if !ok {
		return 0, nil, fmt.Errorf("%w: %q", ErrUnknownPeer, member)
	}
	actx, cancel := context.WithTimeout(ctx, c.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, p.id+path, nil)
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set(ForwardedHeader, c.self)
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// PeerIDs returns the peer member IDs in ring order (self excluded).
func (c *Cluster) PeerIDs() []string {
	out := make([]string, 0, len(c.peers))
	for _, m := range c.ring.members {
		if m != c.self {
			out = append(out, m)
		}
	}
	return out
}

// MemberStats is one member's row in the GET /v1/cluster report.
type MemberStats struct {
	Node string `json:"node"`
	Self bool   `json:"self,omitempty"`
	// Share is the member's expected fraction of the key space.
	Share float64 `json:"share"`
	// Healthy is false while the last transport attempt to this peer
	// failed and no attempt has succeeded since (always true for self).
	Healthy bool `json:"healthy"`
	// Forwards counts requests this node proxied to the member;
	// ForwardErrors counts failed transport attempts; Fallbacks counts
	// requests owned by the member but served locally after retries ran
	// out.
	Forwards      int64 `json:"forwards"`
	ForwardErrors int64 `json:"forward_errors"`
	Fallbacks     int64 `json:"fallbacks"`
	// SyncPushes / SyncErrors count registry replication pushes to the
	// member.
	SyncPushes int64 `json:"sync_pushes"`
	SyncErrors int64 `json:"sync_errors"`
}

// Stats is the node-local cluster counters snapshot.
type Stats struct {
	Self string `json:"self"`
	// ForwardedIn counts requests that arrived already forwarded;
	// ServedLocal counts routed requests this node owned itself.
	ForwardedIn int64         `json:"forwarded_in"`
	ServedLocal int64         `json:"served_local"`
	Members     []MemberStats `json:"members"`
}

// Stats snapshots the ring membership and per-peer counters, self
// first, peers in ring order.
func (c *Cluster) Stats() Stats {
	shares := c.ring.Shares()
	st := Stats{
		Self:        c.self,
		ForwardedIn: c.forwardedIn.Load(),
		ServedLocal: c.servedLocal.Load(),
	}
	st.Members = append(st.Members, MemberStats{
		Node: c.self, Self: true, Share: shares[c.self], Healthy: true,
	})
	for _, id := range c.PeerIDs() {
		p := c.peers[id]
		st.Members = append(st.Members, MemberStats{
			Node:          id,
			Share:         shares[id],
			Healthy:       p.consecFails.Load() == 0,
			Forwards:      p.forwards.Load(),
			ForwardErrors: p.errors.Load(),
			Fallbacks:     p.fallbacks.Load(),
			SyncPushes:    p.syncPushes.Load(),
			SyncErrors:    p.syncErrors.Load(),
		})
	}
	return st
}
