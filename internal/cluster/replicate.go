package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// SyncPayload is the POST /v1/models/sync body: a full model snapshot
// stamped with a Lamport (Seq, Origin) pair. Pushing the whole payload
// every interval (anti-entropy) rather than only on change means a peer
// that was down converges within one interval of returning, with no
// missed-delta bookkeeping.
type SyncPayload struct {
	// Origin is the member ID of the node whose local change (train,
	// retrain promotion, rollback) produced this content.
	Origin string `json:"origin"`
	// Seq is the Lamport sequence of that change. A receiver applies the
	// payload iff (Seq, Origin) is lexicographically newer than the stamp
	// of the content it serves — so the latest operator action wins
	// cluster-wide and re-deliveries are no-ops.
	Seq uint64 `json:"seq"`
	// Version is the origin node's local registry version for the
	// content, carried for observability only: versions are minted
	// per-node and diverge, the stamp is what orders content.
	Version uint64 `json:"version"`
	Note    string `json:"note"`
	// Model is the serialized model set (misam.Framework.Save format).
	Model []byte `json:"model"`
}

// SyncPath is the registry replication endpoint.
const SyncPath = "/v1/models/sync"

// Replicator keeps the registry converged across members. It watches
// the local registry for changes (promotions AND rollbacks — any
// version movement not caused by a sync apply), stamps each with a
// Lamport (seq, self) pair, and pushes the full current snapshot to
// every peer each sync interval. HandleSync is the receiving side.
type Replicator struct {
	c *Cluster

	// export snapshots the current model set: serialized bytes plus the
	// local registry version they correspond to.
	export func() ([]byte, uint64, error)
	// apply installs a received model set and returns the local registry
	// version it was published as.
	apply func(model []byte, note string) (uint64, error)
	// version reads the current local registry version.
	version func() uint64

	mu sync.Mutex
	// seq/origin stamp the content currently served; lastVersion is the
	// local registry version that content carries, used to detect local
	// changes (a rollback moves the version down — any difference
	// counts).
	seq         uint64
	origin      string
	lastVersion uint64

	applies int64 // pushes applied (for /v1/cluster observability)
}

// NewReplicator wires a replicator over the cluster's peer table.
func NewReplicator(c *Cluster, export func() ([]byte, uint64, error), apply func([]byte, string) (uint64, error), version func() uint64) *Replicator {
	r := &Replicator{c: c, export: export, apply: apply, version: version}
	r.lastVersion = version()
	if r.lastVersion != 0 {
		// The boot model (train/load) is a local change at seq 1.
		r.seq, r.origin = 1, c.Self()
	}
	return r
}

// Run pushes to every peer each sync interval until ctx is done.
func (r *Replicator) Run(ctx context.Context) {
	t := time.NewTicker(r.c.SyncInterval())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.SyncNow(ctx)
		}
	}
}

// SyncNow pushes the current snapshot to every peer immediately — the
// retrain and rollback handlers call it so an operator action
// propagates without waiting out the interval. Push failures are
// counted per peer and otherwise ignored: the next interval retries.
func (r *Replicator) SyncNow(ctx context.Context) {
	payload, ok := r.snapshotPayload()
	if !ok {
		return
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return
	}
	var wg sync.WaitGroup
	for _, id := range r.c.PeerIDs() {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			r.pushOne(ctx, id, body)
		}(id)
	}
	wg.Wait()
}

func (r *Replicator) pushOne(ctx context.Context, member string, body []byte) {
	p, ok := r.c.peers[member]
	if !ok {
		return
	}
	actx, cancel := context.WithTimeout(ctx, r.c.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, member+SyncPath, bytes.NewReader(body))
	if err != nil {
		p.syncErrors.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, r.c.Self())
	resp, err := p.client.Do(req)
	if err != nil {
		p.syncErrors.Add(1)
		return
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		p.syncErrors.Add(1)
		return
	}
	p.syncPushes.Add(1)
}

// snapshotPayload captures the current model under the stamp lock,
// first folding in any unstamped local change.
func (r *Replicator) snapshotPayload() (SyncPayload, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.noteLocalChangeLocked()
	if r.origin == "" {
		return SyncPayload{}, false // no model published yet
	}
	model, ver, err := r.export()
	if err != nil {
		return SyncPayload{}, false
	}
	return SyncPayload{
		Origin:  r.origin,
		Seq:     r.seq,
		Version: ver,
		Note:    fmt.Sprintf("sync from %s (seq %d)", r.origin, r.seq),
		Model:   model,
	}, true
}

// noteLocalChangeLocked detects a registry version that moved (in
// either direction — retrain promotions go up, rollbacks go down)
// without a sync apply, and stamps it as a fresh local change that
// outranks everything this node has seen.
func (r *Replicator) noteLocalChangeLocked() {
	cur := r.version()
	if cur != r.lastVersion {
		r.seq++
		r.origin = r.c.Self()
		r.lastVersion = cur
	}
}

// HandleSync is the receiving side of POST /v1/models/sync: apply the
// payload iff its stamp is newer than the stamp of the content this
// node serves. Returns whether it applied.
func (r *Replicator) HandleSync(p SyncPayload) (applied bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.noteLocalChangeLocked()
	if p.Seq < r.seq || (p.Seq == r.seq && p.Origin <= r.origin) {
		return false, nil // not newer (or identical content): idempotent no-op
	}
	ver, err := r.apply(p.Model, p.Note)
	if err != nil {
		return false, err
	}
	r.seq, r.origin, r.lastVersion = p.Seq, p.Origin, ver
	r.applies++
	return true, nil
}

// Stamp reports the Lamport stamp of the content this node serves and
// how many sync pushes it has applied (for GET /v1/cluster).
func (r *Replicator) Stamp() (seq uint64, origin string, applies int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.noteLocalChangeLocked()
	return r.seq, r.origin, r.applies
}
