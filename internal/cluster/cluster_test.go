package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestValidateConfigNamedErrors(t *testing.T) {
	cases := []struct {
		name  string
		self  string
		peers []string
		want  error
	}{
		{"scheme-less peer", "http://a:1", []string{"b:8080"}, ErrBadPeer},
		{"empty peer", "http://a:1", []string{" "}, ErrBadPeer},
		{"ftp scheme", "http://a:1", []string{"ftp://b:1"}, ErrBadPeer},
		{"no host", "http://a:1", []string{"http://"}, ErrBadPeer},
		{"duplicate peer", "http://a:1", []string{"http://b:1", "http://b:1"}, ErrDuplicatePeer},
		{"duplicate after normalization", "http://a:1", []string{"http://B:1", "http://b:1/"}, ErrDuplicatePeer},
		{"self peer", "http://a:1", []string{"http://a:1"}, ErrSelfPeer},
		{"self peer case-insensitive", "http://A:1", []string{"http://a:1"}, ErrSelfPeer},
		{"bad self", "a:1", []string{"http://b:1"}, ErrBadPeer},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := ValidateConfig(tc.self, tc.peers); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestValidateConfigNormalizes(t *testing.T) {
	self, peers, err := ValidateConfig("HTTP://Node-A:8080/", []string{"http://node-b:8080"})
	if err != nil {
		t.Fatal(err)
	}
	if self != "http://node-a:8080" {
		t.Fatalf("self normalized to %q", self)
	}
	if len(peers) != 1 || peers[0] != "http://node-b:8080" {
		t.Fatalf("peers normalized to %v", peers)
	}
}

func TestForwardProxiesBytesAndMarksHop(t *testing.T) {
	var gotBody atomic.Value
	var gotHeader atomic.Value
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b := make([]byte, r.ContentLength)
		_, _ = r.Body.Read(b)
		gotBody.Store(string(b))
		gotHeader.Store(r.Header.Get(ForwardedHeader))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTeapot) // arbitrary status must pass through
		_, _ = w.Write([]byte(`{"ok":true}`))
	}))
	defer peer.Close()

	c, err := New(Config{Self: "http://self:1", Peers: []string{peer.URL}})
	if err != nil {
		t.Fatal(err)
	}
	status, ct, body, err := c.Forward(context.Background(), peer.URL, "/v1/analyze", "application/json", []byte(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTeapot || ct != "application/json" || string(body) != `{"ok":true}` {
		t.Fatalf("forward returned status=%d ct=%q body=%q", status, ct, body)
	}
	if gotBody.Load() != `{"x":1}` {
		t.Fatalf("peer saw body %q", gotBody.Load())
	}
	if gotHeader.Load() != "http://self:1" {
		t.Fatalf("peer saw forwarded header %q", gotHeader.Load())
	}
	st := c.Stats()
	if st.Members[1].Forwards != 1 || st.Members[1].ForwardErrors != 0 || !st.Members[1].Healthy {
		t.Fatalf("counters after success: %+v", st.Members[1])
	}
}

func TestForwardRetriesThenFails(t *testing.T) {
	// A listener that is already closed: every attempt is a transport
	// error, so the retry budget is spent and the caller must fall back.
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close()

	c, err := New(Config{Self: "http://self:1", Peers: []string{url}, ForwardRetries: 2, ForwardTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Forward(context.Background(), url, "/v1/analyze", "application/json", []byte("{}")); err == nil {
		t.Fatal("forward to dead peer succeeded")
	}
	c.NoteFallback(url)
	st := c.Stats()
	if st.Members[1].ForwardErrors != 3 {
		t.Fatalf("want 3 attempts (1+2 retries), got %d", st.Members[1].ForwardErrors)
	}
	if st.Members[1].Fallbacks != 1 {
		t.Fatalf("fallback counter = %d, want 1", st.Members[1].Fallbacks)
	}
	if st.Members[1].Healthy {
		t.Fatal("dead peer reported healthy")
	}
}

func TestForwardUnknownPeer(t *testing.T) {
	c, err := New(Config{Self: "http://self:1", Peers: []string{"http://peer:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Forward(context.Background(), "http://stranger:1", "/x", "", nil); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("got %v, want ErrUnknownPeer", err)
	}
}

// fakeNode is an in-memory model store for replicator ordering tests.
type fakeNode struct {
	model   []byte
	version uint64
}

func newFakeReplicator(t *testing.T, self string, boot []byte) (*Replicator, *fakeNode) {
	t.Helper()
	c, err := New(Config{Self: self, Peers: nil})
	if err != nil {
		t.Fatal(err)
	}
	n := &fakeNode{model: boot, version: 1}
	r := NewReplicator(c,
		func() ([]byte, uint64, error) { return n.model, n.version, nil },
		func(m []byte, _ string) (uint64, error) { n.model = m; n.version++; return n.version, nil },
		func() uint64 { return n.version })
	return r, n
}

func TestReplicatorStampOrdering(t *testing.T) {
	r, n := newFakeReplicator(t, "http://b:1", []byte("boot-b"))

	// Boot content is stamped (1, self).
	if seq, origin, _ := r.Stamp(); seq != 1 || origin != "http://b:1" {
		t.Fatalf("boot stamp (%d, %s)", seq, origin)
	}

	// A newer remote stamp applies.
	applied, err := r.HandleSync(SyncPayload{Origin: "http://a:1", Seq: 2, Model: []byte("from-a")})
	if err != nil || !applied {
		t.Fatalf("newer push: applied=%v err=%v", applied, err)
	}
	if string(n.model) != "from-a" || n.version != 2 {
		t.Fatalf("apply left model=%q version=%d", n.model, n.version)
	}

	// Re-delivery of the same stamp is a no-op (idempotence).
	applied, err = r.HandleSync(SyncPayload{Origin: "http://a:1", Seq: 2, Model: []byte("from-a")})
	if err != nil || applied {
		t.Fatalf("re-delivery applied=%v err=%v", applied, err)
	}

	// An older stamp is rejected.
	applied, _ = r.HandleSync(SyncPayload{Origin: "http://z:1", Seq: 1, Model: []byte("stale")})
	if applied {
		t.Fatal("stale push applied")
	}

	// Equal seq ties break on origin: a higher origin wins.
	applied, _ = r.HandleSync(SyncPayload{Origin: "http://c:1", Seq: 2, Model: []byte("from-c")})
	if !applied {
		t.Fatal("equal-seq higher-origin push rejected")
	}

	// A local change (version moved without a sync apply) outranks the
	// remote stamp: it bumps seq past everything seen.
	n.version++ // simulate a local rollback/promotion
	if seq, origin, _ := r.Stamp(); seq != 3 || origin != "http://b:1" {
		t.Fatalf("local change stamped (%d, %s), want (3, self)", seq, origin)
	}
	applied, _ = r.HandleSync(SyncPayload{Origin: "http://a:1", Seq: 2, Model: []byte("old-a")})
	if applied {
		t.Fatal("push older than local change applied")
	}
}
