// Package placement is the cost-model-driven device-selection layer of
// the serving stack. The reconfiguration engine (internal/reconfig)
// prices a bitstream switch on *one* device; at fleet scale the
// expensive decision is *which* device takes a request — a request
// whose winning design is already loaded on fpga2 should not land on
// fpga0 and pay a full reconfiguration anyway.
//
// The package has two halves:
//
//   - Request (placement.go) scores each (device, design) candidate for
//     one request as predicted compute latency plus reconfiguration
//     charge plus a queue-pressure term, mirroring exactly the decision the
//     acquired device will commit — same model snapshot, same
//     threshold rule — so the cost-model argmin is the cheapest real
//     outcome, not an estimate that can disagree with the device. It
//     satisfies fleet.Scorer, and is the learned-cost-model placement
//     shape of SambaNova's "Learned Cost Model for Placement on
//     Reconfigurable Dataflow Hardware" scaled to this stack: predict
//     the cost of every candidate placement, pick the argmin.
//
//   - Rebalancer (rebalancer.go) is the background portfolio
//     optimizer: it reads the trace collector's per-design demand EWMA
//     and preloads bitstreams on idle devices so the fleet's portfolio
//     tracks the traffic mix — single-flight, bounded per tick, and
//     inert when traffic is uniform.
//
// Placement is strictly advisory: it changes which device a request
// checks out, never the analysis pipeline, so reports stay bit-identical
// in every design-independent field (argmin, cycles, baselines) to the
// FIFO pool's.
package placement

import (
	"misam/internal/features"
	"misam/internal/reconfig"
	"misam/internal/sim"
)

// DefaultQueueWeight scales the queue-pressure term: each request queued
// fleet-wide inflates a candidate's reconfiguration charge by this
// fraction, so under congestion the model avoids spending the last idle
// device on a bitstream switch that also delays everyone behind it.
const DefaultQueueWeight = 0.5

// Request is the placement cost model for one request, built once from
// a model snapshot's engine and reused across every candidate device.
// All four per-design latency predictions are computed up front
// (LatencyPredictor.PredictAll), so scoring a candidate is arithmetic
// only — no tree walks on the fleet's selection path. A Request is
// immutable after construction and safe for concurrent use.
//
// Building the request from one registry snapshot's engine keeps
// scoring consistent under hot-swap: the proposal, the candidate scores
// and the acquired device's decide/apply transaction all price with the
// same model generation.
type Request struct {
	times       reconfig.TimeModel
	threshold   float64
	lat         [sim.NumDesigns]float64
	proposed    sim.DesignID
	queueWeight float64
}

// NewRequest builds the cost model for one request: the snapshot
// engine's pricing, the predicted latency of every design for v, and
// the selector's proposed design. queueWeight <= 0 uses
// DefaultQueueWeight.
func NewRequest(e *reconfig.Engine, v features.Vector, proposed sim.DesignID, queueWeight float64) *Request {
	if queueWeight <= 0 {
		queueWeight = DefaultQueueWeight
	}
	return &Request{
		times:       e.Times,
		threshold:   e.Threshold,
		lat:         e.Predictor.PredictAll(v),
		proposed:    proposed,
		queueWeight: queueWeight,
	}
}

// Proposed is the selector's proposed design behind this request.
func (r *Request) Proposed() sim.DesignID { return r.proposed }

// PredictedSeconds is the predicted compute latency of design id for
// this request.
func (r *Request) PredictedSeconds(id sim.DesignID) float64 { return r.lat[id] }

// Score prices serving this request on a device in bitstream state st
// while `queued` requests wait fleet-wide: the predicted compute
// latency of whatever design the device would actually run, plus the
// reconfiguration charge if the device would switch, with the charge
// inflated by queueWeight per queued request. It mirrors
// reconfig.Engine.Decide (remainingUnits = 1) exactly — same predictor,
// same threshold, same shared-bitstream rule — so the argmin device is
// the one on which the committed decision really is cheapest.
func (r *Request) Score(st reconfig.State, queued int) float64 {
	congestion := 1 + r.queueWeight*float64(queued)
	if !st.HasLoaded {
		// Nothing loaded: programming is mandatory, and the device will
		// pick the proposal.
		return r.lat[r.proposed] + r.times.FullReconfig(r.proposed)*congestion
	}
	if st.Loaded == r.proposed {
		return r.lat[r.proposed]
	}
	cur, best := r.lat[st.Loaded], r.lat[r.proposed]
	overhead := r.times.Switch(st.Loaded, r.proposed)
	if gain := cur - best; gain > 0 && overhead < r.threshold*gain {
		// The device would switch: charge the move.
		return best + overhead*congestion
	}
	// The device would stay on its loaded design and eat the slowdown.
	return cur
}

var _ interface {
	Score(reconfig.State, int) float64
} = (*Request)(nil)
