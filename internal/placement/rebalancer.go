package placement

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"misam/internal/fleet"
	"misam/internal/reconfig"
	"misam/internal/sim"
)

// DemandSource supplies the traffic's per-design demand mix: a
// normalized share per design (summing to 1 once warm) and the number
// of observations behind it. internal/online.Collector.Demand is the
// production implementation — the serving path already records every
// proposal there.
type DemandSource interface {
	Demand() (mix [sim.NumDesigns]float64, n int64)
}

// RebalancerConfig tunes the background portfolio optimizer. The zero
// value is a sensible deployment.
type RebalancerConfig struct {
	// Interval is the background tick cadence (default 5s).
	Interval time.Duration
	// MaxLoadsPerTick bounds how many bitstreams one tick may preload
	// (default 1) — rebalancing must trickle, never storm the fleet.
	MaxLoadsPerTick int
	// MinObservations is the demand-sample floor before the rebalancer
	// acts at all (default 64): the EWMA needs warmup before it means
	// anything.
	MinObservations int64
	// UniformSlack keeps the rebalancer inert while the demand mix is
	// within this much of uniform (default 0.10): when traffic spreads
	// evenly across designs there is no portfolio worth chasing, and
	// preloading would only churn bitstreams.
	UniformSlack float64
}

func (c RebalancerConfig) withDefaults() RebalancerConfig {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.MaxLoadsPerTick <= 0 {
		c.MaxLoadsPerTick = 1
	}
	if c.MinObservations <= 0 {
		c.MinObservations = 64
	}
	if c.UniformSlack <= 0 {
		c.UniformSlack = 0.10
	}
	return c
}

// RebalancerStats are the optimizer's counters, cumulative since
// construction.
type RebalancerStats struct {
	// Ticks counts rebalance passes that ran (manual or background).
	Ticks int64 `json:"ticks"`
	// Loads counts bitstreams preloaded onto idle devices.
	Loads int64 `json:"loads"`
	// SkippedCold counts ticks skipped for a demand sample below the
	// floor; SkippedUniform counts ticks where the mix was within slack
	// of uniform (nothing worth chasing); SkippedBusy counts ticks that
	// wanted to move a bitstream but found no idle surplus device.
	SkippedCold    int64 `json:"skipped_cold"`
	SkippedUniform int64 `json:"skipped_uniform"`
	SkippedBusy    int64 `json:"skipped_busy"`
	// LastDemand is the demand mix the last acting tick saw.
	LastDemand []float64 `json:"last_demand,omitempty"`
}

// Rebalancer keeps the fleet's bitstream portfolio tracking the traffic
// mix: each tick it apportions the fleet across designs by demand share
// (largest-remainder), finds deficit designs, and preloads them onto
// idle devices currently holding surplus bitstreams — through
// Fleet.TryAcquire, so a preload never delays a request. All methods
// are safe for concurrent use; ticks are single-flight.
type Rebalancer struct {
	fl     *fleet.Fleet
	demand DemandSource
	cfg    RebalancerConfig

	ticking atomic.Bool // single-flight guard: Tick vs background loop
	started atomic.Bool

	mu    sync.Mutex
	stats RebalancerStats

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewRebalancer builds a rebalancer over fl driven by the demand
// source. Call Start for the background loop, or Tick directly for
// deterministic drivers and tests.
func NewRebalancer(fl *fleet.Fleet, demand DemandSource, cfg RebalancerConfig) *Rebalancer {
	return &Rebalancer{
		fl:     fl,
		demand: demand,
		cfg:    cfg.withDefaults(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Start launches the background loop (idempotent). Call Close to stop
// it.
func (r *Rebalancer) Start() {
	if !r.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.Tick()
			case <-r.stop:
				return
			}
		}
	}()
}

// Close stops the background loop and waits for it to exit. A
// rebalancer that was never Started may still be Closed.
func (r *Rebalancer) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	if r.started.Load() {
		<-r.done
	}
}

// Stats snapshots the counters.
func (r *Rebalancer) Stats() RebalancerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stats
	st.LastDemand = append([]float64(nil), r.stats.LastDemand...)
	return st
}

// Tick runs one rebalance pass and reports how many bitstreams it
// preloaded. Concurrent ticks are single-flight: a pass that finds one
// already running returns 0 immediately.
func (r *Rebalancer) Tick() int {
	if !r.ticking.CompareAndSwap(false, true) {
		return 0
	}
	defer r.ticking.Store(false)

	mix, n := r.demand.Demand()
	r.mu.Lock()
	r.stats.Ticks++
	r.mu.Unlock()
	if n < r.cfg.MinObservations {
		r.count(func(s *RebalancerStats) { s.SkippedCold++ })
		return 0
	}
	maxShare := 0.0
	for _, v := range mix {
		if v > maxShare {
			maxShare = v
		}
	}
	if maxShare-1.0/float64(sim.NumDesigns) <= r.cfg.UniformSlack {
		r.count(func(s *RebalancerStats) { s.SkippedUniform++ })
		return 0
	}

	targets := apportion(mix, r.fl.Size())
	devs := r.fl.Devices()

	// Holdings over the whole fleet (busy devices included — a busy
	// device's bitstream serves traffic too; the wait-free Loaded read
	// makes this scan contention-free).
	var have [sim.NumDesigns]int
	unloaded := 0
	for _, d := range devs {
		if id, ok := d.Loaded(); ok {
			have[id]++
		} else {
			unloaded++
		}
	}

	loads := 0
	wanted := false
	for loads < r.cfg.MaxLoadsPerTick {
		// Largest deficit first: the most under-served design gets the
		// next preload.
		deficit, want := -1, 0
		for _, id := range sim.AllDesigns {
			if d := targets[id] - have[id]; d > want {
				deficit, want = int(id), d
			}
		}
		if deficit < 0 {
			break
		}
		wanted = true
		target := sim.DesignID(deficit)
		moved := false
		// Donor order: an unloaded device first (programming it is pure
		// gain), then the device holding the largest-surplus design.
		for _, d := range pickDonors(devs, targets, have, unloaded > 0) {
			if !r.fl.TryAcquire(d) {
				continue
			}
			if id, ok := d.Loaded(); ok {
				have[id]--
			} else {
				unloaded--
			}
			d.ForceLoad(target)
			have[target]++
			r.fl.Release(d)
			loads++
			moved = true
			break
		}
		if !moved {
			break
		}
	}
	r.mu.Lock()
	r.stats.Loads += int64(loads)
	if wanted && loads == 0 {
		r.stats.SkippedBusy++
	}
	r.stats.LastDemand = mix[:]
	r.mu.Unlock()
	return loads
}

func (r *Rebalancer) count(f func(*RebalancerStats)) {
	r.mu.Lock()
	f(&r.stats)
	r.mu.Unlock()
}

// pickDonors orders candidate devices to take the next preload:
// unloaded devices first (programming them is pure gain), then devices
// whose loaded design is held in surplus, most surplus first. Devices
// holding a design at or below its target are never donors — the
// rebalancer only converts excess capacity, it never robs a design the
// traffic still wants.
func pickDonors(devs []*reconfig.Device, targets, have [sim.NumDesigns]int, anyUnloaded bool) []*reconfig.Device {
	type cand struct {
		d       *reconfig.Device
		surplus int // math.MaxInt stands in for "unloaded"
	}
	var cands []cand
	for _, d := range devs {
		id, ok := d.Loaded()
		if !ok {
			cands = append(cands, cand{d, int(^uint(0) >> 1)})
			continue
		}
		if s := have[id] - targets[id]; s > 0 {
			cands = append(cands, cand{d, s})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].surplus > cands[j].surplus })
	out := make([]*reconfig.Device, len(cands))
	for i, c := range cands {
		out[i] = c.d
	}
	return out
}

// apportion distributes n fleet slots across designs proportionally to
// mix using the largest-remainder method, so target counts always sum
// to n and every design with meaningful share gets representation
// before any design doubles up.
func apportion(mix [sim.NumDesigns]float64, n int) [sim.NumDesigns]int {
	var out [sim.NumDesigns]int
	type rem struct {
		id   sim.DesignID
		frac float64
	}
	rems := make([]rem, 0, sim.NumDesigns)
	used := 0
	for _, id := range sim.AllDesigns {
		exact := mix[id] * float64(n)
		whole := int(exact)
		out[id] = whole
		used += whole
		rems = append(rems, rem{id, exact - float64(whole)})
	}
	for used < n {
		// Largest remainder takes the next slot; ties break on lower id
		// for determinism.
		best := 0
		for i := 1; i < len(rems); i++ {
			if rems[i].frac > rems[best].frac {
				best = i
			}
		}
		out[rems[best].id]++
		rems[best].frac = -1
		used++
	}
	return out
}
