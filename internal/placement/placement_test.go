package placement

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"misam/internal/dataset"
	"misam/internal/features"
	"misam/internal/fleet"
	"misam/internal/mltree"
	"misam/internal/reconfig"
	"misam/internal/sim"
)

var (
	testEngine     *reconfig.Engine
	testEngineOnce sync.Once
	testEngineErr  error
)

func smallEngine(t *testing.T) *reconfig.Engine {
	t.Helper()
	testEngineOnce.Do(func() {
		rng := rand.New(rand.NewSource(23))
		c, err := dataset.GenerateClassifier(rng, 60, 384)
		if err != nil {
			testEngineErr = err
			return
		}
		p, err := reconfig.TrainLatencyPredictor(c, mltree.Config{MaxDepth: 10, MinSamplesLeaf: 2})
		if err != nil {
			testEngineErr = err
			return
		}
		testEngine = reconfig.NewEngine(p, reconfig.DefaultTimeModel(), 0.20)
	})
	if testEngineErr != nil {
		t.Fatal(testEngineErr)
	}
	return testEngine
}

func randVector(rng *rand.Rand) features.Vector {
	var v features.Vector
	for i := range v {
		v[i] = rng.Float64() * 10
	}
	return v
}

// TestScoreMirrorsDecide is the cost model's core property: with no
// queue pressure, Score(st, 0) must equal the latency plus
// reconfiguration charge of the decision the device would actually
// commit — lat[dec.Target] + dec.ReconfigSeconds — for every bitstream
// state. If the two ever diverge, the argmin device is no longer the
// cheapest real outcome.
func TestScoreMirrorsDecide(t *testing.T) {
	e := smallEngine(t)
	rng := rand.New(rand.NewSource(99))
	states := []reconfig.State{{}}
	for _, id := range sim.AllDesigns {
		states = append(states, reconfig.State{Loaded: id, HasLoaded: true})
	}
	for trial := 0; trial < 200; trial++ {
		v := randVector(rng)
		proposed := sim.AllDesigns[trial%len(sim.AllDesigns)]
		req := NewRequest(e, v, proposed, 0)
		for _, st := range states {
			dec := e.Decide(st, v, proposed, 1)
			want := e.Predictor.Predict(v, dec.Target) + dec.ReconfigSeconds
			got := req.Score(st, 0)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d state %+v proposed %v: Score = %g, Decide implies %g (target %v, reconfig %g)",
					trial, st, proposed, got, want, dec.Target, dec.ReconfigSeconds)
			}
		}
	}
}

// TestScoreQueuePressure: queue pressure inflates only reconfiguration
// charges. A candidate already holding the proposal costs the same at
// any queue depth; a candidate that must switch gets monotonically more
// expensive as the queue grows.
func TestScoreQueuePressure(t *testing.T) {
	e := smallEngine(t)
	rng := rand.New(rand.NewSource(7))
	found := false
	for trial := 0; trial < 100 && !found; trial++ {
		v := randVector(rng)
		for _, proposed := range sim.AllDesigns {
			req := NewRequest(e, v, proposed, 0.5)
			hit := reconfig.State{Loaded: proposed, HasLoaded: true}
			if req.Score(hit, 0) != req.Score(hit, 8) {
				t.Fatalf("loaded-match score varies with queue depth")
			}
			empty := reconfig.State{}
			s0, s4, s8 := req.Score(empty, 0), req.Score(empty, 4), req.Score(empty, 8)
			if !(s0 < s4 && s4 < s8) {
				t.Fatalf("empty-device score not monotone in queue depth: %g, %g, %g", s0, s4, s8)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no scoring candidates exercised")
	}
}

// fakeDemand is a scriptable DemandSource for rebalancer tests.
type fakeDemand struct {
	mu  sync.Mutex
	mix [sim.NumDesigns]float64
	n   int64
}

func (f *fakeDemand) set(mix [sim.NumDesigns]float64, n int64) {
	f.mu.Lock()
	f.mix, f.n = mix, n
	f.mu.Unlock()
}

func (f *fakeDemand) Demand() ([sim.NumDesigns]float64, int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mix, f.n
}

// bareFleet builds an n-device fleet with no engine: rebalancer tests
// only touch ForceLoad/Loaded, which never consult one.
func bareFleet(n int) *fleet.Fleet {
	devs := make([]*reconfig.Device, n)
	for i := range devs {
		devs[i] = reconfig.NewDevice("d"+string(rune('0'+i)), nil)
	}
	return fleet.FromDevices(devs)
}

func holdings(fl *fleet.Fleet) [sim.NumDesigns]int {
	var have [sim.NumDesigns]int
	for _, d := range fl.Devices() {
		if id, ok := d.Loaded(); ok {
			have[id]++
		}
	}
	return have
}

func TestRebalancerSkipsColdAndUniform(t *testing.T) {
	fl := bareFleet(4)
	demand := &fakeDemand{}
	rb := NewRebalancer(fl, demand, RebalancerConfig{MinObservations: 64, UniformSlack: 0.10})

	// Cold: sample below the floor, regardless of skew.
	demand.set([sim.NumDesigns]float64{0.9, 0.1, 0, 0}, 10)
	if got := rb.Tick(); got != 0 {
		t.Fatalf("cold tick preloaded %d bitstreams", got)
	}
	// Uniform: warm sample, but nothing worth chasing.
	demand.set([sim.NumDesigns]float64{0.27, 0.25, 0.24, 0.24}, 1000)
	if got := rb.Tick(); got != 0 {
		t.Fatalf("uniform tick preloaded %d bitstreams", got)
	}
	st := rb.Stats()
	if st.Ticks != 2 || st.SkippedCold != 1 || st.SkippedUniform != 1 || st.Loads != 0 {
		t.Errorf("stats = %+v, want 2 ticks, 1 cold skip, 1 uniform skip, 0 loads", st)
	}
	if holdings(fl) != ([sim.NumDesigns]int{}) {
		t.Errorf("inert rebalancer touched device state: %v", holdings(fl))
	}
}

func TestRebalancerConvergesToDemand(t *testing.T) {
	fl := bareFleet(4)
	demand := &fakeDemand{}
	rb := NewRebalancer(fl, demand, RebalancerConfig{MinObservations: 16})

	// Skewed mix: 3 slots of Design1, 1 of Design2 by largest remainder.
	mix := [sim.NumDesigns]float64{0.70, 0.30, 0, 0}
	demand.set(mix, 500)
	want := apportion(mix, fl.Size())
	for i := 0; i < 10; i++ {
		rb.Tick()
	}
	if got := holdings(fl); got != want {
		t.Fatalf("portfolio after skewed demand = %v, want %v", got, want)
	}
	loadsAfterConverge := rb.Stats().Loads

	// Converged portfolio: further ticks must be no-ops.
	for i := 0; i < 3; i++ {
		if rb.Tick() != 0 {
			t.Fatal("tick on a converged portfolio preloaded a bitstream")
		}
	}
	if rb.Stats().Loads != loadsAfterConverge {
		t.Fatal("converged ticks counted loads")
	}

	// Demand shifts: the portfolio must follow.
	mix = [sim.NumDesigns]float64{0.10, 0.10, 0.75, 0.05}
	demand.set(mix, 500)
	want = apportion(mix, fl.Size())
	for i := 0; i < 10; i++ {
		rb.Tick()
	}
	if got := holdings(fl); got != want {
		t.Fatalf("portfolio after demand shift = %v, want %v", got, want)
	}
}

func TestRebalancerSkipsBusyFleet(t *testing.T) {
	fl := bareFleet(2)
	demand := &fakeDemand{}
	demand.set([sim.NumDesigns]float64{0.9, 0.1, 0, 0}, 500)
	rb := NewRebalancer(fl, demand, RebalancerConfig{MinObservations: 16})

	// Hold every device: the rebalancer wants to preload but must never
	// wait for (or steal) a busy device.
	var held []*reconfig.Device
	for _, d := range fl.Devices() {
		if !fl.TryAcquire(d) {
			t.Fatal("TryAcquire on idle fleet failed")
		}
		held = append(held, d)
	}
	if got := rb.Tick(); got != 0 {
		t.Fatalf("busy tick preloaded %d bitstreams", got)
	}
	if st := rb.Stats(); st.SkippedBusy != 1 {
		t.Errorf("SkippedBusy = %d, want 1", st.SkippedBusy)
	}
	for _, d := range held {
		fl.Release(d)
	}
	if got := rb.Tick(); got == 0 {
		t.Fatal("idle fleet tick preloaded nothing under skewed demand")
	}
}

func TestRebalancerBoundedLoadsPerTick(t *testing.T) {
	fl := bareFleet(6)
	demand := &fakeDemand{}
	demand.set([sim.NumDesigns]float64{1, 0, 0, 0}, 500)
	rb := NewRebalancer(fl, demand, RebalancerConfig{MinObservations: 16, MaxLoadsPerTick: 2})
	if got := rb.Tick(); got != 2 {
		t.Fatalf("tick preloaded %d bitstreams, MaxLoadsPerTick is 2", got)
	}
}

func TestRebalancerStartClose(t *testing.T) {
	fl := bareFleet(2)
	demand := &fakeDemand{}
	rb := NewRebalancer(fl, demand, RebalancerConfig{Interval: time.Millisecond})
	rb.Start()
	rb.Start() // idempotent
	rb.Close()
	rb.Close() // idempotent
	// A never-started rebalancer must also close cleanly.
	NewRebalancer(fl, demand, RebalancerConfig{}).Close()
}

func TestApportion(t *testing.T) {
	cases := []struct {
		mix  [sim.NumDesigns]float64
		n    int
		want [sim.NumDesigns]int
	}{
		{[sim.NumDesigns]float64{1, 0, 0, 0}, 4, [sim.NumDesigns]int{4, 0, 0, 0}},
		{[sim.NumDesigns]float64{0.5, 0.5, 0, 0}, 4, [sim.NumDesigns]int{2, 2, 0, 0}},
		{[sim.NumDesigns]float64{0.70, 0.30, 0, 0}, 4, [sim.NumDesigns]int{3, 1, 0, 0}},
		{[sim.NumDesigns]float64{0.4, 0.3, 0.2, 0.1}, 5, [sim.NumDesigns]int{2, 2, 1, 0}},
		{[sim.NumDesigns]float64{0.25, 0.25, 0.25, 0.25}, 3, [sim.NumDesigns]int{1, 1, 1, 0}},
	}
	for _, c := range cases {
		got := apportion(c.mix, c.n)
		if got != c.want {
			t.Errorf("apportion(%v, %d) = %v, want %v", c.mix, c.n, got, c.want)
		}
		sum := 0
		for _, v := range got {
			sum += v
		}
		if sum != c.n {
			t.Errorf("apportion(%v, %d) sums to %d", c.mix, c.n, sum)
		}
	}
}
