package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(2,2,2) = %v, want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty GeoMean should be 0")
	}
	// Non-positive entries skipped.
	if got := GeoMean([]float64{-5, 0, 8, 2}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean with junk = %v, want 4", got)
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 || Min(xs) != 1 || Max(xs) != 3 {
		t.Error("mean/min/max wrong")
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty inputs should give 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Error("extreme percentiles wrong")
	}
	if Percentile(xs, 50) != 3 {
		t.Errorf("median = %v, want 3", Percentile(xs, 50))
	}
	if got := Percentile([]float64{1, 2}, 50); got != 1.5 {
		t.Errorf("interpolated median = %v, want 1.5", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("N=%d Mean=%v", s.N, s.Mean)
	}
	if math.Abs(s.StandardDeviation-2.138) > 0.01 {
		t.Errorf("stddev = %v, want ≈2.138 (sample)", s.StandardDeviation)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Error("extrema wrong")
	}
}

func TestPropertyGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			v := math.Abs(x)
			if v > 1e-9 && !math.IsInf(v, 0) && !math.IsNaN(v) && v < 1e100 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []float64, aIn, bIn uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsInf(x, 0) && !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := float64(aIn) / 255 * 100
		b := float64(bIn) / 255 * 100
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
