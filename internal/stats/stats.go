// Package stats provides the summary statistics the evaluation section
// reports: geometric means of speedups, MAE/R² of predictions, and simple
// distribution summaries.
package stats

import (
	"math"
	"sort"
)

// GeoMean returns the geometric mean of xs. Non-positive entries are
// skipped (a speedup is positive by construction); an empty input gives 0.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min and Max return the extrema (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by linear
// interpolation over the sorted copy of xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N                 int
	Mean, GeoMean     float64
	Min, Median, Max  float64
	P25, P75          float64
	StandardDeviation float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{
		N:       len(xs),
		Mean:    Mean(xs),
		GeoMean: GeoMean(xs),
		Min:     Min(xs),
		Max:     Max(xs),
		Median:  Percentile(xs, 50),
		P25:     Percentile(xs, 25),
		P75:     Percentile(xs, 75),
	}
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StandardDeviation = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}
